// tmir_lint: run the full static-analysis pipeline over every built-in
// kernel and report per-pass statistics and diagnostics.
//
//   verify -> tm_mark -> tm_lint -> tm_optimize -> verify
//
//   $ ./tmir_lint            # all kernels
//   $ ./tmir_lint probe      # just the named kernel(s)
//
// Exit code 0 when every stage is clean, 2 on any diagnostic — CI can
// gate on it directly.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "tmir/analysis/lint.hpp"
#include "tmir/analysis/verify.hpp"
#include "tmir/ir.hpp"
#include "tmir/kernels.hpp"
#include "tmir/passes.hpp"

namespace {

using namespace semstm::tmir;

struct NamedKernel {
  const char* name;
  Function (*build)();
};

Function build_reserve4() { return build_reserve_kernel(4); }
Function build_center8() { return build_center_update_kernel(8); }

constexpr NamedKernel kKernels[] = {
    {"probe", build_probe_kernel},
    {"insert", build_insert_kernel},
    {"remove", build_remove_kernel},
    {"reserve", build_reserve4},
    {"center_update", build_center8},
};

std::size_t print_diags(const Function& f, const char* stage,
                        const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    std::printf("  %s: DIAGNOSTIC %s\n", stage,
                format_diagnostic(f, d).c_str());
  }
  return diags.size();
}

std::size_t lint_kernel(const NamedKernel& k) {
  Function f = k.build();
  std::size_t issues = 0;

  std::printf("== %s: %zu blocks, %u temps, %u locals, %zu TM loads ==\n",
              k.name, f.blocks.size(), f.num_temps, f.num_locals,
              f.count_op(Op::kTmLoad));
  issues += print_diags(f, "verify(raw)", pass_verify(f));

  const MarkStats ms = pass_tm_mark(f);
  std::printf("  tm_mark:     s1r=%zu s2r=%zu sw=%zu skipped_clobbered=%zu\n",
              ms.s1r, ms.s2r, ms.sw, ms.skipped_clobbered);
  issues += print_diags(f, "verify(marked)", pass_verify(f));

  LintStats ls;
  issues += print_diags(f, "tm_lint", pass_tm_lint(f, &ls));
  std::printf("  tm_lint:     re-proved %zu s1r + %zu s2r + %zu sw rewrites\n",
              ls.checked_s1r, ls.checked_s2r, ls.checked_sw);

  const OptimizeStats os = pass_tm_optimize(f);
  const OpCount loads = f.count(Op::kTmLoad);
  std::printf("  tm_optimize: removed_tm_loads=%zu removed_other=%zu\n",
              os.removed_tm_loads, os.removed_other);
  std::printf("  TM loads:    %zu live / %zu dead (was %zu)\n", loads.live,
              loads.dead, loads.total());
  issues += print_diags(f, "verify(optimized)", pass_verify(f));
  issues += print_diags(f, "tm_lint(optimized)", pass_tm_lint(f));

  if (os.removed_tm_loads != loads.dead) {
    std::printf("  DIAGNOSTIC stats drift: removed_tm_loads=%zu but %zu dead "
                "loads in the IR\n",
                os.removed_tm_loads, loads.dead);
    ++issues;
  }
  return issues;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t issues = 0;
  std::size_t matched = 0;
  for (const NamedKernel& k : kKernels) {
    bool wanted = argc < 2;
    for (int i = 1; i < argc; ++i) {
      wanted = wanted || std::strcmp(argv[i], k.name) == 0;
    }
    if (!wanted) continue;
    ++matched;
    issues += lint_kernel(k);
  }
  if (matched == 0) {
    std::fprintf(stderr, "tmir_lint: no kernel matches; known:");
    for (const NamedKernel& k : kKernels) std::fprintf(stderr, " %s", k.name);
    std::fprintf(stderr, "\n");
    return 2;
  }
  if (issues != 0) {
    std::printf("tmir_lint: %zu diagnostics\n", issues);
    return 2;
  }
  std::printf("tmir_lint: all pipelines clean\n");
  return 0;
}
