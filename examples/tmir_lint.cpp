// tmir_lint: run the full static-analysis pipeline over every built-in
// kernel and report per-pass statistics and diagnostics.
//
// Two pipelines run per kernel and are reported side by side:
//
//   baseline:  verify -> tm_mark(alias off) -> tm_lint -> tm_optimize
//   alias:     verify -> tm_rbe -> tm_mark -> tm_lint -> tm_optimize
//
// with a verify + lint sweep after every mutating stage. The per-kernel
// `barriers before/after` lines count statically live TM barriers
// (loads + stores + semantic cmps/incs) — the instrumentation the
// interpreter would actually execute on a straight-line pass.
//
//   $ ./tmir_lint            # all kernels, text report
//   $ ./tmir_lint probe      # just the named kernel(s)
//   $ ./tmir_lint --json     # machine-readable report for CI
//
// Exit code 0 when every stage is clean, 2 on any diagnostic — CI can
// gate on it directly (scripts/ci_lint.sh does).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "tmir/analysis/lint.hpp"
#include "tmir/analysis/verify.hpp"
#include "tmir/ir.hpp"
#include "tmir/kernels.hpp"
#include "tmir/passes.hpp"

namespace {

using namespace semstm::tmir;

struct NamedKernel {
  const char* name;
  Function (*build)();
};

Function build_reserve4() { return build_reserve_kernel(4); }
Function build_center8() { return build_center_update_kernel(8); }

constexpr NamedKernel kKernels[] = {
    {"probe", build_probe_kernel},
    {"insert", build_insert_kernel},
    {"remove", build_remove_kernel},
    {"reserve", build_reserve4},
    {"center_update", build_center8},
};

/// Statically live TM barriers: what a straight-line execution would pay.
std::size_t live_barriers(const Function& f) {
  return f.count(Op::kTmLoad).live + f.count(Op::kTmStore).live +
         f.count(Op::kTmCmp1).live + f.count(Op::kTmCmp2).live +
         f.count(Op::kTmInc).live;
}

struct KernelReport {
  std::string name;
  std::size_t issues = 0;
  std::size_t barriers_before = 0;
  // baseline pipeline (PR 5: no alias analysis, no rbe)
  MarkStats base_mark;
  OptimizeStats base_opt;
  std::size_t base_barriers_after = 0;
  // alias pipeline (rbe + alias-aware mark)
  RbeStats rbe;
  MarkStats mark;
  OptimizeStats opt;
  LintStats lint;
  std::size_t barriers_after = 0;
  std::size_t tm_loads_live = 0;
  std::size_t tm_loads_dead = 0;
};

std::size_t print_diags(const Function& f, const char* stage,
                        const std::vector<Diagnostic>& diags, bool quiet) {
  for (const Diagnostic& d : diags) {
    std::fprintf(quiet ? stderr : stdout, "  %s: DIAGNOSTIC %s\n", stage,
                 format_diagnostic(f, d).c_str());
  }
  return diags.size();
}

KernelReport lint_kernel(const NamedKernel& k, bool json) {
  KernelReport r;
  r.name = k.name;

  // Baseline pipeline — the comparison column.
  {
    Function f = k.build();
    r.barriers_before = live_barriers(f);
    r.issues += print_diags(f, "base/verify(raw)", pass_verify(f), json);
    r.base_mark = pass_tm_mark(f, {.use_alias = false});
    r.issues += print_diags(f, "base/verify(marked)", pass_verify(f), json);
    r.issues += print_diags(f, "base/tm_lint", pass_tm_lint(f), json);
    r.base_opt = pass_tm_optimize(f);
    r.issues += print_diags(f, "base/verify(optimized)", pass_verify(f), json);
    r.issues += print_diags(f, "base/tm_lint(optimized)", pass_tm_lint(f),
                            json);
    r.base_barriers_after = live_barriers(f);
  }

  // Alias pipeline — redundant-barrier elimination, then alias-aware mark.
  Function f = k.build();
  r.issues += print_diags(f, "verify(raw)", pass_verify(f), json);
  r.rbe = pass_tm_rbe(f);
  r.issues += print_diags(f, "verify(rbe)", pass_verify(f), json);
  r.issues += print_diags(f, "tm_lint(rbe)", pass_tm_lint(f), json);
  r.mark = pass_tm_mark(f);
  r.issues += print_diags(f, "verify(marked)", pass_verify(f), json);
  r.issues += print_diags(f, "tm_lint", pass_tm_lint(f, &r.lint), json);
  r.opt = pass_tm_optimize(f);
  r.issues += print_diags(f, "verify(optimized)", pass_verify(f), json);
  r.issues += print_diags(f, "tm_lint(optimized)", pass_tm_lint(f), json);
  r.barriers_after = live_barriers(f);
  const OpCount loads = f.count(Op::kTmLoad);
  r.tm_loads_live = loads.live;
  r.tm_loads_dead = loads.dead;

  // Every dead TM load must trace to exactly one killer.
  const std::size_t forwarded =
      r.rbe.load_load_forwarded + r.rbe.store_load_forwarded;
  if (r.opt.removed_tm_loads + forwarded != loads.dead) {
    std::fprintf(stderr,
                 "  DIAGNOSTIC stats drift: removed=%zu forwarded=%zu but "
                 "%zu dead loads in the IR\n",
                 r.opt.removed_tm_loads, forwarded, loads.dead);
    ++r.issues;
  }
  return r;
}

void print_text(const KernelReport& r) {
  std::printf("== %s ==\n", r.name.c_str());
  std::printf("  baseline:    s1r=%zu s2r=%zu sw=%zu skipped_clobbered=%zu "
              "removed_tm_loads=%zu\n",
              r.base_mark.s1r, r.base_mark.s2r, r.base_mark.sw,
              r.base_mark.skipped_clobbered, r.base_opt.removed_tm_loads);
  std::printf("  tm_rbe:      load_load=%zu store_load=%zu dead_stores=%zu\n",
              r.rbe.load_load_forwarded, r.rbe.store_load_forwarded,
              r.rbe.dead_stores);
  std::printf("  tm_mark:     s1r=%zu s2r=%zu sw=%zu recovered_noalias=%zu "
              "skipped_clobbered=%zu\n",
              r.mark.s1r, r.mark.s2r, r.mark.sw, r.mark.recovered_noalias,
              r.mark.skipped_clobbered);
  std::printf("  tm_lint:     re-proved %zu s1r + %zu s2r + %zu sw + "
              "%zu forwards + %zu dead stores\n",
              r.lint.checked_s1r, r.lint.checked_s2r, r.lint.checked_sw,
              r.lint.checked_rbe_forwards, r.lint.checked_rbe_dead_stores);
  std::printf("  tm_optimize: removed_tm_loads=%zu removed_other=%zu\n",
              r.opt.removed_tm_loads, r.opt.removed_other);
  std::printf("  TM loads:    %zu live / %zu dead\n", r.tm_loads_live,
              r.tm_loads_dead);
  std::printf("  barriers:    before=%zu baseline=%zu alias=%zu\n",
              r.barriers_before, r.base_barriers_after, r.barriers_after);
}

void print_json(const std::vector<KernelReport>& reports,
                std::size_t issues) {
  std::printf("{\n  \"kernels\": [\n");
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const KernelReport& r = reports[i];
    std::printf("    {\n");
    std::printf("      \"name\": \"%s\",\n", r.name.c_str());
    std::printf("      \"issues\": %zu,\n", r.issues);
    std::printf("      \"barriers_before\": %zu,\n", r.barriers_before);
    std::printf("      \"barriers_after\": %zu,\n", r.barriers_after);
    std::printf("      \"baseline\": {\"s1r\": %zu, \"s2r\": %zu, "
                "\"sw\": %zu, \"skipped_clobbered\": %zu, "
                "\"removed_tm_loads\": %zu, \"barriers_after\": %zu},\n",
                r.base_mark.s1r, r.base_mark.s2r, r.base_mark.sw,
                r.base_mark.skipped_clobbered, r.base_opt.removed_tm_loads,
                r.base_barriers_after);
    std::printf("      \"alias\": {\"rbe_load_load\": %zu, "
                "\"rbe_store_load\": %zu, \"rbe_dead_stores\": %zu, "
                "\"s1r\": %zu, \"s2r\": %zu, \"sw\": %zu, "
                "\"recovered_noalias\": %zu, \"skipped_clobbered\": %zu, "
                "\"removed_tm_loads\": %zu, \"tm_loads_live\": %zu}\n",
                r.rbe.load_load_forwarded, r.rbe.store_load_forwarded,
                r.rbe.dead_stores, r.mark.s1r, r.mark.s2r, r.mark.sw,
                r.mark.recovered_noalias, r.mark.skipped_clobbered,
                r.opt.removed_tm_loads, r.tm_loads_live);
    std::printf("    }%s\n", i + 1 < reports.size() ? "," : "");
  }
  std::printf("  ],\n  \"issues\": %zu\n}\n", issues);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<const char*> wanted_names;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      wanted_names.push_back(argv[i]);
    }
  }

  std::size_t issues = 0;
  std::vector<KernelReport> reports;
  for (const NamedKernel& k : kKernels) {
    bool wanted = wanted_names.empty();
    for (const char* n : wanted_names) {
      wanted = wanted || std::strcmp(n, k.name) == 0;
    }
    if (!wanted) continue;
    KernelReport r = lint_kernel(k, json);
    issues += r.issues;
    if (!json) print_text(r);
    reports.push_back(std::move(r));
  }
  if (reports.empty()) {
    std::fprintf(stderr, "tmir_lint: no kernel matches; known:");
    for (const NamedKernel& k : kKernels) std::fprintf(stderr, " %s", k.name);
    std::fprintf(stderr, "\n");
    return 2;
  }
  if (json) {
    print_json(reports, issues);
  } else if (issues != 0) {
    std::printf("tmir_lint: %zu diagnostics\n", issues);
  } else {
    std::printf("tmir_lint: all pipelines clean\n");
  }
  return issues != 0 ? 2 : 0;
}
