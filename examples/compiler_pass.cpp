// The compiler path, end to end (paper §6): build the hashtable probe as
// plain IR (what GCC's gimplifier emits), run tm_mark + tm_optimize, show
// what the passes found and removed, then execute both pipelines
// transactionally and verify they agree.
//
//   $ ./compiler_pass
#include <cstdio>

#include "containers/tarray.hpp"
#include "semstm.hpp"
#include "tmir/interp.hpp"
#include "tmir/kernels.hpp"
#include "tmir/passes.hpp"

int main() {
  using namespace semstm;
  using namespace semstm::tmir;

  Function raw = build_probe_kernel();
  Function marked = build_probe_kernel();

  std::printf("== tm_mark: semantic pattern detection ==\n");
  const MarkStats ms = pass_tm_mark(marked);
  std::printf("  _ITM_S1R (address-value compares) : %zu\n", ms.s1r);
  std::printf("  _ITM_S2R (address-address compares): %zu\n", ms.s2r);
  std::printf("  _ITM_SW  (increments)              : %zu\n", ms.sw);

  std::printf("== tm_optimize: never-live TM read elimination ==\n");
  const OptimizeStats os = pass_tm_optimize(marked);
  std::printf("  removed TM loads: %zu, removed other dead defs: %zu\n",
              os.removed_tm_loads, os.removed_other);
  std::printf("  TM loads: %zu (before) -> %zu (after)\n",
              raw.count_op(Op::kTmLoad), marked.count_op(Op::kTmLoad));
  std::printf("  semantic builtins now in the IR: %zu\n",
              marked.count_op(Op::kTmCmp1) + marked.count_op(Op::kTmCmp2));

  // Execute both pipelines against identical tables and compare.
  auto algo = make_algorithm("snorec");
  ThreadCtx ctx(algo->make_tx());
  CtxBinder bind(ctx);

  constexpr std::size_t kCap = 32;
  TArray<std::int64_t> states(kCap, 0), keys(kCap, 0);
  // Place keys 300 and 900 at their home slots (key % capacity).
  for (const std::int64_t key : {300, 900}) {
    const auto slot = static_cast<std::size_t>(key) % kCap;
    states[slot].unsafe_set(1);
    keys[slot].unsafe_set(key);
  }

  std::printf("== executing both pipelines transactionally ==\n");
  bool all_match = true;
  for (const word_t key : {300u, 900u, 555u}) {
    const word_t args[6] = {to_word(states[0].word()), to_word(keys[0].word()),
                            kCap - 1, key % kCap, key, kCap};
    const word_t a =
        atomically([&](Tx& tx) { return execute(tx, raw, args, 6); });
    const word_t b =
        atomically([&](Tx& tx) { return execute(tx, marked, args, 6); });
    std::printf("  probe(key=%llu): plain=%llu semantic=%llu %s\n",
                static_cast<unsigned long long>(key),
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b),
                a == b ? "OK" : "MISMATCH");
    all_match = all_match && a == b;
  }
  const TxStats& s = ctx.tx->stats;
  std::printf("stats: reads=%llu compares=%llu (the semantic pipeline "
              "replaced reads with compares)\n",
              static_cast<unsigned long long>(s.reads),
              static_cast<unsigned long long>(s.compares));
  return all_match ? 0 : 1;
}
