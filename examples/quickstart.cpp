// Quickstart: the semstm API in 60 lines.
//
//   $ ./quickstart [--algo snorec]
//
// Creates a TM system, runs a few transactions exercising the classical
// (TM_READ/TM_WRITE) and semantic (TM_GTE/TM_INC/TM_DEC) constructs, and
// prints what happened.
#include <cstdio>

#include "obs/report.hpp"
#include "semstm.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace semstm;
  Cli cli(argc, argv);
  const std::string algo_name = cli.get("algo", "snorec");

  // 1. Instantiate a TM algorithm (one per "TM system").
  auto algo = make_algorithm(algo_name);

  // 2. Bind a per-thread transaction descriptor.
  ThreadCtx ctx(algo->make_tx());
  CtxBinder bind(ctx);

  // 3. Declare transactional variables.
  TVar<long> checking(100);
  TVar<long> savings(0);

  // 4. Classical constructs: read and write.
  atomically([&](Tx& tx) {
    const long value = checking.get(tx);  // TM_READ
    checking.set(tx, value + 25);         // TM_WRITE
  });
  std::printf("after deposit:   checking=%ld savings=%ld\n",
              checking.unsafe_get(), savings.unsafe_get());

  // 5. Semantic constructs: the paper's TM-friendly API. The overdraft
  //    check is TM_GTE — the transaction stays valid as long as the
  //    *outcome* of the comparison holds, even if the balance changes.
  for (int i = 0; i < 3; ++i) {
    atomically([&](Tx& tx) {
      if (checking.gte(tx, 50)) {  // TM_GTE(checking, 50)
        checking.sub(tx, 50);      // TM_DEC(checking, 50)
        savings.add(tx, 50);       // TM_INC(savings, 50)
      }
    });
  }
  std::printf("after transfers: checking=%ld savings=%ld\n",
              checking.unsafe_get(), savings.unsafe_get());

  // 6. A transaction can return a value.
  const long total = atomically(
      [&](Tx& tx) { return checking.get(tx) + savings.get(tx); });
  std::printf("total=%ld (conserved)\n", total);

  const TxStats& s = ctx.tx->stats;
  std::printf(
      "stats [%s]: commits=%llu aborts=%llu reads=%llu writes=%llu "
      "compares=%llu increments=%llu\n",
      algo->name(), static_cast<unsigned long long>(s.commits),
      static_cast<unsigned long long>(s.aborts),
      static_cast<unsigned long long>(s.reads),
      static_cast<unsigned long long>(s.writes),
      static_cast<unsigned long long>(s.compares),
      static_cast<unsigned long long>(s.increments));

  // 7. Contention cartography: which locations this descriptor aborted
  //    over, via the public reporting API (obs/report.hpp). Single-threaded
  //    and conflict-free here — and empty in non-SEMSTM_TRACE builds — so
  //    this prints the truthful "none recorded" line; run a fig1 bench with
  //    --metrics-out and render it with tm_top for the real thing.
  const auto hot = obs::top_sites(ctx.tx->conflict_map(), 5);
  std::fputs(obs::render_hot_sites(hot).c_str(), stdout);
  return 0;
}
