// A miniature travel-reservation service (the Vacation motivation,
// Algorithm 4): clients book whichever candidate resource has free slots
// at the best price. The checks are semantic — a reservation "does not use
// the exact value of price or the amount of available resources, it just
// checks if the price is in the right range and resources are still
// available" (paper §3.1) — so concurrent price updates and bookings that
// keep those outcomes true do not abort each other.
//
//   $ ./reservation_system --algo stl2 --threads 8
#include <cstdio>

#include "containers/trbtree.hpp"
#include "semstm.hpp"
#include "sched/virtual_scheduler.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

struct Resource {
  semstm::TVar<std::int64_t> free_slots;
  semstm::TVar<std::int64_t> price;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace semstm;
  Cli cli(argc, argv);
  const std::string algo_name = cli.get("algo", "stl2");
  const unsigned threads = static_cast<unsigned>(cli.get_int("threads", 8));
  const std::uint64_t sessions =
      static_cast<std::uint64_t>(cli.get_int("sessions", 1500));
  constexpr std::size_t kResources = 128;
  constexpr std::int64_t kInitialSlots = 200;

  auto algo = make_algorithm(algo_name);
  const bool semantic = algo->semantic();

  // The catalogue: an RB-tree index over a record pool, as in STAMP.
  TRbMap catalogue(2 * kResources + 16);
  auto records = std::make_unique<Resource[]>(kResources);
  {
    ThreadCtx ctx(algo->make_tx());
    CtxBinder bind(ctx);
    Rng rng(2026);
    for (std::size_t id = 0; id < kResources; ++id) {
      records[id].free_slots.unsafe_set(kInitialSlots);
      records[id].price.unsafe_set(rng.between(80, 400));
      atomically([&](Tx& tx) {
        catalogue.insert(tx, static_cast<std::int64_t>(id),
                         static_cast<std::int64_t>(id));
      });
    }
  }

  std::vector<std::unique_ptr<ThreadCtx>> ctxs;
  std::vector<Rng> rngs;
  for (unsigned t = 0; t < threads; ++t) {
    ctxs.push_back(std::make_unique<ThreadCtx>(algo->make_tx()));
    rngs.emplace_back(77 + t);
  }
  std::uint64_t booked = 0;

  sched::VirtualScheduler sim;
  sim.run(threads, [&](unsigned tid) {
    CtxBinder bind(*ctxs[tid]);
    Rng& rng = rngs[tid];
    for (std::uint64_t s = 0; s < sessions; ++s) {
      if (rng.percent(15)) {  // price-update profile
        const auto id = static_cast<std::int64_t>(rng.below(kResources));
        const std::int64_t np = rng.between(80, 400);
        atomically([&](Tx& tx) {
          if (auto rec = catalogue.find(tx, id)) {
            records[static_cast<std::size_t>(*rec)].price.set(tx, np);
          }
        });
        continue;
      }
      // Reservation: scan 4 candidates, book the priciest available one.
      std::int64_t ids[4];
      for (auto& id : ids) {
        id = static_cast<std::int64_t>(rng.below(kResources));
      }
      const bool ok = atomically([&](Tx& tx) -> bool {
        std::int64_t best = -1;
        long max_price = -1;
        for (const std::int64_t id : ids) {
          const auto rec = catalogue.find(tx, id);
          if (!rec) continue;
          Resource& r = records[static_cast<std::size_t>(*rec)];
          const bool available =
              semantic ? r.free_slots.gt(tx, 0) : r.free_slots.get(tx) > 0;
          if (!available) continue;
          const bool pricier =
              semantic ? r.price.gt(tx, max_price) : r.price.get(tx) > max_price;
          if (pricier) {
            max_price = r.price.get(tx);
            best = *rec;
          }
        }
        if (best < 0) return false;
        Resource& r = records[static_cast<std::size_t>(best)];
        if (semantic) {
          r.free_slots.sub(tx, 1);
        } else {
          r.free_slots.set(tx, r.free_slots.get(tx) - 1);
        }
        return true;
      });
      if (ok) ++booked;
    }
  });

  // Conservation audit.
  std::int64_t remaining = 0;
  for (std::size_t id = 0; id < kResources; ++id) {
    remaining += records[id].free_slots.unsafe_get();
  }
  TxStats total;
  for (const auto& c : ctxs) total += c->tx->stats;

  std::printf("algorithm=%s threads=%u sessions=%llu\n", algo->name(), threads,
              static_cast<unsigned long long>(sessions));
  std::printf("booked=%llu remaining_slots=%lld (capacity %lld, conserved: %s)\n",
              static_cast<unsigned long long>(booked),
              static_cast<long long>(remaining),
              static_cast<long long>(kResources * kInitialSlots),
              remaining + static_cast<std::int64_t>(booked) ==
                      static_cast<std::int64_t>(kResources) * kInitialSlots
                  ? "yes"
                  : "NO");
  std::printf("commits=%llu aborts=%llu abort%%=%.2f promotions=%llu\n",
              static_cast<unsigned long long>(total.commits),
              static_cast<unsigned long long>(total.aborts), total.abort_pct(),
              static_cast<unsigned long long>(total.promotions));
  return 0;
}
