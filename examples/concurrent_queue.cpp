// The paper's queue example (Algorithm 3), live: producers and consumers
// hammer one bounded queue. With a semantic TM algorithm the dequeue's
// empty-check is a single address–address TM_EQ and the head advance a
// TM_INC, so enqueues and dequeues commute whenever the queue is
// non-empty — compare the abort counts:
//
//   $ ./concurrent_queue --algo norec     # classical constructs
//   $ ./concurrent_queue --algo snorec    # semantic constructs
#include <cstdio>

#include "containers/tqueue.hpp"
#include "semstm.hpp"
#include "sched/virtual_scheduler.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace semstm;
  Cli cli(argc, argv);
  const std::string algo_name = cli.get("algo", "snorec");
  const unsigned threads = static_cast<unsigned>(cli.get_int("threads", 8));
  const std::uint64_t ops = static_cast<std::uint64_t>(cli.get_int("ops", 2000));

  auto algo = make_algorithm(algo_name);
  TQueue queue(1024, /*use_semantics=*/algo->semantic());

  // Producers (even ids) and consumers (odd ids) on the virtual N-core
  // scheduler — deterministic and runnable on any machine.
  std::vector<std::unique_ptr<ThreadCtx>> ctxs;
  for (unsigned t = 0; t < threads; ++t) {
    ctxs.push_back(std::make_unique<ThreadCtx>(algo->make_tx()));
  }
  std::uint64_t produced = 0, consumed = 0;

  sched::VirtualScheduler sim;
  sim.run(threads, [&](unsigned tid) {
    CtxBinder bind(*ctxs[tid]);
    for (std::uint64_t i = 0; i < ops; ++i) {
      if (tid % 2 == 0) {
        if (atomically([&](Tx& tx) {
              return queue.enqueue(tx, static_cast<std::int64_t>(i));
            })) {
          ++produced;  // single carrier thread: plain counters are fine
        }
      } else {
        if (atomically([&](Tx& tx) { return queue.dequeue(tx); })) {
          ++consumed;
        }
      }
    }
  });

  TxStats total;
  for (const auto& c : ctxs) total += c->tx->stats;
  std::printf("algorithm=%s threads=%u\n", algo->name(), threads);
  std::printf("produced=%llu consumed=%llu left=%lld (conserved: %s)\n",
              static_cast<unsigned long long>(produced),
              static_cast<unsigned long long>(consumed),
              static_cast<long long>(queue.unsafe_size()),
              produced - consumed ==
                      static_cast<std::uint64_t>(queue.unsafe_size())
                  ? "yes"
                  : "NO");
  std::printf("commits=%llu aborts=%llu abort%%=%.2f\n",
              static_cast<unsigned long long>(total.commits),
              static_cast<unsigned long long>(total.aborts),
              total.abort_pct());
  return 0;
}
