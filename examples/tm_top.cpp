// tm_top: render a --metrics-out JSON-lines dump as a contention report.
//
//   $ ./tm_top --in metrics.jsonl [--top 10]
//
// For every run in the file it prints a header, ASCII sparklines of
// per-window throughput and abort rate (the burst/livelock phases run-end
// averages hide), peak-window callouts, and the ranked hot-site table
// (which addresses/orecs the run actually fought over).
//
// Exit status (relied on by scripts/ci_metrics_smoke.sh):
//   0  parsed and rendered at least one run
//   1  file readable but schema-invalid (or empty of runs)
//   2  file could not be opened
#include <cstdio>
#include <string>

#include "obs/report.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace semstm;
  Cli cli(argc, argv);
  const std::string in = cli.get("in", "");
  const auto top_k = static_cast<std::size_t>(cli.get_int("top", 10));
  if (in.empty()) {
    std::fprintf(stderr,
                 "usage: tm_top --in metrics.jsonl [--top N]\n"
                 "  (produce metrics.jsonl with a fig1 bench's "
                 "--metrics-out, SEMSTM_TRACE build)\n");
    return obs::kReportIoError;
  }
  std::string report;
  const int status = obs::render_metrics_report(in, top_k, report);
  if (status == obs::kReportOk) {
    std::fputs(report.c_str(), stdout);
  } else {
    std::fputs(report.c_str(), stderr);
  }
  return status;
}
