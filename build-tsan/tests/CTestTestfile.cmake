# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_semantics[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_word[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_writeset[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_readset[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_conformance[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_opacity[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_stress[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_containers[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_workloads[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_tmir[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_properties[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_phases[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_contention[1]_include.cmake")
