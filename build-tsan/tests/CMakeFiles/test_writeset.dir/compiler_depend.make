# Empty compiler generated dependencies file for test_writeset.
# This may be replaced when dependencies are built.
