# Empty compiler generated dependencies file for test_readset.
# This may be replaced when dependencies are built.
