# Empty compiler generated dependencies file for reservation_system.
# This may be replaced when dependencies are built.
