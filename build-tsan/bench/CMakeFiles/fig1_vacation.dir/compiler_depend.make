# Empty compiler generated dependencies file for fig1_vacation.
# This may be replaced when dependencies are built.
