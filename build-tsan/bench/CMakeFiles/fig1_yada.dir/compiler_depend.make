# Empty compiler generated dependencies file for fig1_yada.
# This may be replaced when dependencies are built.
