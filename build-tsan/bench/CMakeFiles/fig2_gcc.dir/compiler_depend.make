# Empty compiler generated dependencies file for fig2_gcc.
# This may be replaced when dependencies are built.
