# Empty compiler generated dependencies file for fig1_kmeans.
# This may be replaced when dependencies are built.
