// Labyrinth (STAMP): a multi-path maze router on a three-dimensional
// uniform grid (Lee's algorithm). Each transaction routes one point pair:
// it expands a breadth-first wavefront over a *private copy* of the grid,
// backtraces a path, then validates that every path cell is still empty —
// the isEmpty-style checks the paper turns into semantic TM_EQ compares —
// and claims the cells.
//
// Two variants, matching Figures 1k-1n:
//  - kCopyInsideTx ("Labyrinth 1"): the grid snapshot + expansion happen
//    inside the transaction, so an abort redoes all of it (long txs).
//  - kCopyOutsideTx ("Labyrinth 2", the [Ruan et al. 2014] optimization):
//    snapshot + expansion run before the transaction; the transaction only
//    validates and writes the path (short txs, less gain from semantics).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "containers/tarray.hpp"
#include "core/atomically.hpp"
#include "workloads/mono.hpp"

namespace semstm {

class LabyrinthWorkload final : public MonoWorkload<LabyrinthWorkload> {
 public:
  enum class Variant { kCopyInsideTx, kCopyOutsideTx };

  struct Params {
    std::size_t x = 48, y = 48, z = 3;
    Variant variant = Variant::kCopyInsideTx;
    unsigned route_attempts = 3;  // re-expansions before giving up a pair
  };

  LabyrinthWorkload(Params p, bool semantic)
      : p_(p),
        semantic_(semantic),
        cells_(p.x * p.y * p.z),
        grid_(p.x * p.y * p.z, kEmpty) {}

  template <typename TxT>

  void op_t(unsigned, Rng& rng) {
    const std::size_t src = random_cell(rng);
    const std::size_t dst = random_cell(rng);
    if (src == dst) return;

    for (unsigned attempt = 0; attempt < p_.route_attempts; ++attempt) {
      // The lambda returns the number of cells claimed (0 = failed), so the
      // bookkeeping below only counts *committed* claims exactly once.
      std::size_t claimed = 0;
      const std::int64_t path_id =
          1 + static_cast<std::int64_t>(
                  next_path_.fetch_add(1, std::memory_order_acq_rel));

      if (p_.variant == Variant::kCopyOutsideTx) {
        // Optimized variant: snapshot + expansion outside the transaction.
        std::vector<std::size_t> path = expand(snapshot(), src, dst);
        if (path.empty()) return;  // permanently blocked
        claimed = atomically<TxT>([&](TxT& tx) -> std::size_t {
          return claim_path(tx, path, path_id) ? path.size() : 0;
        });
      } else {
        // Original variant: everything inside; an abort redoes the copy
        // and the expansion.
        claimed = atomically<TxT>([&](TxT& tx) -> std::size_t {
          std::vector<std::size_t> path = expand(snapshot(), src, dst);
          if (path.empty()) return 0;
          return claim_path(tx, path, path_id) ? path.size() : 0;
        });
      }
      if (claimed > 0) {
        total_path_cells_.fetch_add(claimed, std::memory_order_relaxed);
        routed_count_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // Validation failed against a concurrent route: re-expand on a fresh
      // snapshot (STAMP's retry-on-failure loop).
    }
  }

  void verify() override {
    // Every claimed cell belongs to exactly one path (claim_path only
    // writes cells it validated empty), so the number of non-empty cells
    // must equal the total claimed length.
    std::size_t occupied = 0;
    for (std::size_t i = 0; i < cells_; ++i) {
      if (grid_[i].unsafe_get() != kEmpty) ++occupied;
    }
    if (occupied != total_path_cells_.load(std::memory_order_relaxed)) {
      throw std::logic_error("labyrinth: paths overlap or cells leaked");
    }
  }

  std::uint64_t routed_count() const noexcept { return routed_count_.load(std::memory_order_relaxed); }

 private:
  static constexpr std::int64_t kEmpty = 0;

  std::size_t random_cell(Rng& rng) const {
    return static_cast<std::size_t>(rng.below(cells_));
  }

  std::size_t idx(std::size_t x, std::size_t y, std::size_t z) const {
    return (z * p_.y + y) * p_.x + x;
  }

  /// Non-transactional snapshot of the grid (plain memcpy in STAMP; the
  /// instrumented reads are only the per-path validation reads below).
  std::vector<std::int64_t> snapshot() const {
    std::vector<std::int64_t> copy(cells_);
    for (std::size_t i = 0; i < cells_; ++i) copy[i] = grid_[i].unsafe_get();
    sched::tick(sched::Cost::kWork * (cells_ / 64 + 1));  // charge the copy
    return copy;
  }

  /// Lee-style BFS over the private snapshot; returns the dst->src path
  /// (empty when unreachable).
  std::vector<std::size_t> expand(std::vector<std::int64_t> copy,
                                  std::size_t src, std::size_t dst) const {
    std::vector<std::int32_t> dist(cells_, -1);
    std::vector<std::size_t> queue;
    queue.reserve(cells_);
    dist[src] = 0;
    queue.push_back(src);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::size_t c = queue[head];
      if (c == dst) break;
      const std::size_t cx = c % p_.x;
      const std::size_t cy = (c / p_.x) % p_.y;
      const std::size_t cz = c / (p_.x * p_.y);
      const std::size_t neighbors[6] = {
          cx > 0 ? idx(cx - 1, cy, cz) : c,
          cx + 1 < p_.x ? idx(cx + 1, cy, cz) : c,
          cy > 0 ? idx(cx, cy - 1, cz) : c,
          cy + 1 < p_.y ? idx(cx, cy + 1, cz) : c,
          cz > 0 ? idx(cx, cy, cz - 1) : c,
          cz + 1 < p_.z ? idx(cx, cy, cz + 1) : c,
      };
      for (const std::size_t n : neighbors) {
        if (n == c || dist[n] >= 0) continue;
        if (n != dst && copy[n] != kEmpty) continue;
        dist[n] = dist[c] + 1;
        queue.push_back(n);
      }
    }
    sched::tick(sched::Cost::kWork * (queue.size() / 16 + 1));  // expansion
    if (dist[dst] < 0 || copy[dst] != kEmpty || copy[src] != kEmpty) {
      return {};
    }
    // Backtrace from dst following decreasing distance.
    std::vector<std::size_t> path;
    std::size_t c = dst;
    path.push_back(c);
    while (c != src) {
      const std::size_t cx = c % p_.x;
      const std::size_t cy = (c / p_.x) % p_.y;
      const std::size_t cz = c / (p_.x * p_.y);
      const std::size_t neighbors[6] = {
          cx > 0 ? idx(cx - 1, cy, cz) : c,
          cx + 1 < p_.x ? idx(cx + 1, cy, cz) : c,
          cy > 0 ? idx(cx, cy - 1, cz) : c,
          cy + 1 < p_.y ? idx(cx, cy + 1, cz) : c,
          cz > 0 ? idx(cx, cy, cz - 1) : c,
          cz + 1 < p_.z ? idx(cx, cy, cz + 1) : c,
      };
      std::size_t next = c;
      for (const std::size_t n : neighbors) {
        if (n != c && dist[n] == dist[c] - 1) {
          next = n;
          break;
        }
      }
      if (next == c) return {};  // should not happen
      c = next;
      path.push_back(c);
    }
    return path;
  }

  /// Transactional validation + claim. The emptiness checks are the
  /// paper's semantic candidates (isEmpty -> TM_EQ).
  template <typename TxT>
  bool claim_path(TxT& tx, const std::vector<std::size_t>& path,
                  std::int64_t path_id) {
    for (const std::size_t c : path) {
      const bool empty =
          semantic_ ? grid_[c].eq(tx, kEmpty) : grid_[c].get(tx) == kEmpty;
      if (!empty) return false;  // taken since the snapshot
    }
    for (const std::size_t c : path) grid_[c].set(tx, path_id);
    return true;
  }

  Params p_;
  bool semantic_;
  std::size_t cells_;
  TArray<std::int64_t> grid_;
  std::atomic<std::uint64_t> next_path_{0};
  std::atomic<std::size_t> total_path_cells_{0};
  std::atomic<std::uint64_t> routed_count_{0};
};

}  // namespace semstm
