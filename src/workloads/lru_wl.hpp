// LRU-Cache micro-benchmark (paper §7.1): an m × n software cache with
// frequency-based replacement; "each transaction either sets or looks up
// multiple entries in the cache".
#pragma once

#include <cstdint>

#include "containers/tlru.hpp"
#include "core/atomically.hpp"
#include "workloads/mono.hpp"

namespace semstm {

class LruWorkload final : public MonoWorkload<LruWorkload> {
 public:
  struct Params {
    std::size_t lines = 64;
    std::size_t buckets = 8;
    std::size_t key_space = 2048;
    unsigned entries_per_tx = 4;
    unsigned set_pct = 50;
  };

  LruWorkload(Params p, bool semantic)
      : p_(p), cache_(p.lines, p.buckets, semantic) {}

  template <typename TxT>

  void op_t(unsigned, Rng& rng) {
    std::int64_t keys[16];
    for (unsigned i = 0; i < p_.entries_per_tx; ++i) {
      keys[i] = static_cast<std::int64_t>(rng.below(p_.key_space));
    }
    const bool is_set = rng.percent(p_.set_pct);
    atomically<TxT>([&](TxT& tx) {
      for (unsigned i = 0; i < p_.entries_per_tx; ++i) {
        if (is_set) {
          cache_.set(tx, keys[i], keys[i] * 2);
        } else {
          (void)cache_.lookup(tx, keys[i]);
        }
      }
    });
  }

  const TLruCache& cache() const noexcept { return cache_; }

 private:
  Params p_;
  TLruCache cache_;
};

}  // namespace semstm
