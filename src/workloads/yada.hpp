// Yada (STAMP): Ruppert's Delaunay mesh refinement. Threads pull "bad"
// triangles (minimum angle below a threshold), read the surrounding cavity
// and retriangulate it, which may spoil neighbours and feed the worklist.
//
// Geometry substitution (see DESIGN.md): full Delaunay cavity computation
// is replaced by a fixed triangle-adjacency mesh whose refinement step has
// the same *transactional* shape — a couple of threshold checks (the cmp
// candidates; Table 3 shows only ~5% of Yada's reads become compares),
// a cavity's worth of structural reads (vertex coordinates + quality of
// ~2 rings of neighbours), and a handful of writes that update the cavity
// and degrade its boundary. Conflicts arise exactly as in Yada: between
// refinements of overlapping cavities.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "containers/tarray.hpp"
#include "core/atomically.hpp"
#include "workloads/mono.hpp"

namespace semstm {

class YadaWorkload final : public MonoWorkload<YadaWorkload> {
 public:
  struct Params {
    std::size_t mesh_w = 48;        // triangles arranged on a W x H grid
    std::size_t mesh_h = 48;
    std::int64_t min_quality = 40;  // "minimum angle" threshold (scaled)
    std::int64_t max_quality = 100;
  };

  YadaWorkload(Params p, bool semantic)
      : p_(p),
        semantic_(semantic),
        count_(p.mesh_w * p.mesh_h),
        quality_(count_, 0),
        coords_(count_ * 6, 0) {}

  void setup(Rng& rng) override {
    for (std::size_t t = 0; t < count_; ++t) {
      quality_[t].unsafe_set(rng.between(10, p_.max_quality));
      for (std::size_t v = 0; v < 6; ++v) {
        coords_[t * 6 + v].unsafe_set(rng.between(0, 1 << 20));
      }
    }
  }

  template <typename TxT>

  void op_t(unsigned, Rng& rng) {
    const std::size_t t = static_cast<std::size_t>(rng.below(count_));
    const std::int64_t improved = rng.between(p_.min_quality, p_.max_quality);
    const bool refined = atomically<TxT>([&](TxT& tx) -> bool {
      // Is this triangle bad? (the angle-threshold check — cmp candidate)
      const bool bad = semantic_ ? quality_[t].lt(tx, p_.min_quality)
                                 : quality_[t].get(tx) < p_.min_quality;
      if (!bad) return false;

      // Read the cavity: two rings of neighbours, vertex coordinates and
      // quality — the structural reads that dominate Yada's profile.
      std::int64_t checksum = 0;
      for (const std::size_t n : cavity(t)) {
        for (std::size_t v = 0; v < 6; ++v) {
          checksum += coords_[n * 6 + v].get(tx);
        }
        checksum += quality_[t == n ? t : n].get(tx);
      }

      // Retriangulate: fix the centre, perturb its coordinates, and
      // degrade the immediate boundary (which may create new bad work).
      quality_[t].set(tx, improved);
      for (std::size_t v = 0; v < 3; ++v) {
        coords_[t * 6 + v].set(tx, (checksum >> v) & ((1 << 20) - 1));
      }
      for (const std::size_t n : ring1(t)) {
        const std::int64_t q = quality_[n].get(tx);
        if (q > p_.min_quality / 2) quality_[n].set(tx, q - 1);
      }
      return true;
    });
    if (refined) refinements_.fetch_add(1, std::memory_order_relaxed);
  }

  void verify() override {
    for (std::size_t t = 0; t < count_; ++t) {
      const std::int64_t q = quality_[t].unsafe_get();
      if (q < 0 || q > p_.max_quality) {
        throw std::logic_error("yada: triangle quality out of range");
      }
    }
  }

  std::uint64_t refinements() const noexcept { return refinements_.load(std::memory_order_relaxed); }

 private:
  std::size_t clamp_idx(std::int64_t x, std::int64_t y) const {
    const auto w = static_cast<std::int64_t>(p_.mesh_w);
    const auto h = static_cast<std::int64_t>(p_.mesh_h);
    x = (x % w + w) % w;
    y = (y % h + h) % h;
    return static_cast<std::size_t>(y * w + x);
  }

  /// Immediate neighbours (ring 1): shared-edge triangles.
  std::vector<std::size_t> ring1(std::size_t t) const {
    const auto x = static_cast<std::int64_t>(t % p_.mesh_w);
    const auto y = static_cast<std::int64_t>(t / p_.mesh_w);
    return {clamp_idx(x - 1, y), clamp_idx(x + 1, y), clamp_idx(x, y - 1),
            clamp_idx(x, y + 1)};
  }

  /// The refinement cavity: centre + two rings (~13 triangles).
  std::vector<std::size_t> cavity(std::size_t t) const {
    const auto x = static_cast<std::int64_t>(t % p_.mesh_w);
    const auto y = static_cast<std::int64_t>(t / p_.mesh_w);
    std::vector<std::size_t> out;
    out.reserve(13);
    out.push_back(t);
    for (std::int64_t dy = -2; dy <= 2; ++dy) {
      for (std::int64_t dx = -2; dx <= 2; ++dx) {
        if (dx == 0 && dy == 0) continue;
        if (std::abs(dx) + std::abs(dy) <= 2) {
          out.push_back(clamp_idx(x + dx, y + dy));
        }
      }
    }
    return out;
  }

  Params p_;
  bool semantic_;
  std::size_t count_;
  TArray<std::int64_t> quality_;
  TArray<std::int64_t> coords_;
  std::atomic<std::uint64_t> refinements_{0};
};

}  // namespace semstm
