// MonoWorkload: the monomorphization adapter between the Workload
// interface and the two-tier dispatch design (DESIGN.md §4.12).
//
// A workload derives from MonoWorkload<Self> and implements ONE body,
//
//   template <typename TxT> void op_t(unsigned tid, Rng& rng);
//
// written against the deduced descriptor type (its atomically<TxT> lambdas
// take TxT&, and every TVar/container call forwards TxT). The mixin then
// provides both Workload entry points from that single source:
//
//  - op()      instantiates op_t<Tx>: the type-erased tier, one virtual
//              call per TM access — the baseline every prior session used.
//  - run_ops() switches once per thread-loop over the algorithm id
//              (dispatch_algorithm) and instantiates op_t<Core> for the
//              concrete descriptor: zero virtual calls inside the loop.
//
// Both instantiations execute the same statements against the same
// descriptor object, which is what makes the bit-identical-statistics
// parity check of tests/test_dispatch.cpp meaningful.
#pragma once

#include <cstdint>

#include "core/dispatch.hpp"
#include "workloads/driver.hpp"

namespace semstm {

template <typename Derived>
class MonoWorkload : public Workload {
 public:
  void op(unsigned tid, Rng& rng) final {
    static_cast<Derived&>(*this).template op_t<Tx>(tid, rng);
  }

  void run_ops(AlgoId algo, unsigned tid, Rng& rng,
               std::uint64_t ops) final {
    dispatch_algorithm(algo, [&](auto tag) {
      using TxT = typename decltype(tag)::tx_type;
      Derived& self = static_cast<Derived&>(*this);
      for (std::uint64_t i = 0; i < ops; ++i) {
        self.template op_t<TxT>(tid, rng);
      }
    });
  }
};

}  // namespace semstm
