#include "workloads/driver.hpp"

#include <vector>

#include "core/context.hpp"
#include "sched/thread_runner.hpp"
#include "sched/virtual_scheduler.hpp"
#include "util/timing.hpp"

namespace semstm {

RunResult run_workload(const RunConfig& cfg, Workload& workload) {
  auto algo = make_algorithm(cfg.algo, cfg.algo_opts);

  SplitMix64 seeder(cfg.seed);
  const std::uint64_t setup_seed = seeder.next();
  Rng setup_rng(setup_seed);
  workload.setup(setup_rng);

  // Descriptors and RNG streams are created up front so results do not
  // depend on thread startup order.
  std::vector<std::unique_ptr<ThreadCtx>> ctxs;
  std::vector<Rng> rngs;
  ctxs.reserve(cfg.threads);
  rngs.reserve(cfg.threads);
  for (unsigned t = 0; t < cfg.threads; ++t) {
    const std::uint64_t s = seeder.next();
    // The contention-manager seed stream is decorrelated from the workload
    // stream (distinct per thread AND per purpose) so backoff randomization
    // never echoes workload choices.
    ctxs.push_back(std::make_unique<ThreadCtx>(
        algo->make_tx(), s ^ 0xB0FF,
        make_contention_manager(cfg.cm, s ^ 0xB0FF, cfg.retry_limit)));
    rngs.emplace_back(s);
  }
  if (cfg.trace != nullptr) {
    cfg.trace->prepare(cfg.threads);
    for (unsigned t = 0; t < cfg.threads; ++t) {
      ctxs[t]->tx->bind_trace(&cfg.trace->ring(t));
    }
  }
  if (cfg.metrics != nullptr) {
    cfg.metrics->prepare(cfg.threads);
    for (unsigned t = 0; t < cfg.threads; ++t) {
      ctxs[t]->tx->bind_metrics(&cfg.metrics->series(t));
    }
  }

  if (!cfg.ops_by_thread.empty() && cfg.ops_by_thread.size() != cfg.threads) {
    std::fprintf(stderr,
                 "error: ops_by_thread has %zu entries for %u threads\n",
                 cfg.ops_by_thread.size(), cfg.threads);
    std::exit(2);
  }

  const AlgoId aid = algo_id(cfg.algo);
  auto body = [&](unsigned tid) {
    CtxBinder bind(*ctxs[tid]);
    Rng& rng = rngs[tid];
    const std::uint64_t ops = cfg.ops_by_thread.empty()
                                  ? cfg.ops_per_thread
                                  : cfg.ops_by_thread[tid];
    if (cfg.dispatch == Dispatch::kStatic) {
      workload.run_ops(aid, tid, rng, ops);
    } else {
      for (std::uint64_t i = 0; i < ops; ++i) {
        workload.op(tid, rng);
      }
    }
  };

  RunResult r;
  Timer timer;
  if (cfg.mode == ExecMode::kSim) {
    sched::VirtualScheduler sim(
        sched::SimOptions{.seed = seeder.next(), .quantum = cfg.sim_quantum});
    const sched::SimResult sr = sim.run(cfg.threads, body);
    r.makespan = sr.makespan;
    r.wall_seconds = timer.seconds();
    r.units = "ticks";
  } else {
    const sched::RealResult rr = sched::run_threads(cfg.threads, body);
    r.wall_seconds = rr.seconds;
    r.units = "ns";  // obs::now_ticks() is steady_clock ns under real threads
  }

  for (const auto& ctx : ctxs) r.stats += ctx->tx->stats;
  r.abort_pct = r.stats.abort_pct();

  // Contention cartography (empty in gate-off builds: the per-descriptor
  // maps never record and the series never open). Flushing after the run —
  // rather than sampling with a clock — keeps sim-mode final windows
  // correct: outside sim.run() the virtual clock is gone.
  if (cfg.metrics != nullptr) {
    for (unsigned t = 0; t < cfg.threads; ++t) {
      cfg.metrics->series(t).flush(ctxs[t]->tx->stats);
    }
    r.windows = cfg.metrics->merged();
  }
  obs::ConflictMap merged(12);  // 4096 run-level sites
  for (const auto& ctx : ctxs) merged.merge(ctx->tx->conflict_map());
  r.conflict_overflow = merged.overflow();
  r.hot_sites = obs::top_sites(merged, cfg.top_k_sites);
  if (cfg.mode == ExecMode::kSim) {
    r.throughput = r.makespan == 0
                       ? 0.0
                       : static_cast<double>(r.stats.commits) * 1e6 /
                             static_cast<double>(r.makespan);
  } else {
    r.throughput = r.wall_seconds == 0.0
                       ? 0.0
                       : static_cast<double>(r.stats.commits) / r.wall_seconds;
  }
  return r;
}

}  // namespace semstm
