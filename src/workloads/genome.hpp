// Genome (STAMP): gene sequencing. The transactional hot phase inserts DNA
// segments into a shared chained hash set to deduplicate them; the reads
// are chain traversals comparing segment keys.
//
// As in the paper (Table 3), Genome exposes essentially no TM-friendly
// semantics to the compiler pass — STAMP's hashtable compares keys through
// a function-pointer comparator the pass cannot see through — so both the
// base and "semantic" builds of this workload use plain reads/writes. It
// exists to reproduce the Table 3 profile (read-heavy, few writes, ~zero
// semantic operations), which is why the paper excludes it from Figure 1.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "containers/tarray.hpp"
#include "core/atomically.hpp"
#include "workloads/mono.hpp"

namespace semstm {

class GenomeWorkload final : public MonoWorkload<GenomeWorkload> {
 public:
  struct Params {
    std::size_t buckets = 64;          // few buckets -> long chains (reads)
    std::size_t segment_space = 1024;  // distinct segment values
    unsigned segments_per_tx = 4;
    std::size_t pool_capacity = 1 << 16;
  };

  GenomeWorkload(Params p, bool /*semantic: intentionally unused*/)
      : p_(p),
        heads_(p.buckets, nullptr),
        pool_(std::make_unique<Node[]>(p.pool_capacity)) {}

  template <typename TxT>

  void op_t(unsigned, Rng& rng) {
    std::int64_t segs[8];
    for (unsigned i = 0; i < p_.segments_per_tx; ++i) {
      segs[i] = static_cast<std::int64_t>(rng.below(p_.segment_space));
    }
    atomically<TxT>([&](TxT& tx) {
      for (unsigned i = 0; i < p_.segments_per_tx; ++i) {
        insert_unique(tx, segs[i]);
      }
    });
  }

  void verify() override {
    // Deduplication invariant: no segment value appears twice in a chain.
    for (std::size_t b = 0; b < p_.buckets; ++b) {
      for (Node* n = heads_[b].unsafe_get(); n != nullptr;
           n = n->next.unsafe_get()) {
        for (Node* m = n->next.unsafe_get(); m != nullptr;
             m = m->next.unsafe_get()) {
          if (n->key.unsafe_get() == m->key.unsafe_get()) {
            throw std::logic_error("genome: duplicate segment inserted");
          }
        }
      }
    }
  }

  std::size_t unsafe_unique_segments() const {
    std::size_t n = 0;
    for (std::size_t b = 0; b < p_.buckets; ++b) {
      for (Node* node = heads_[b].unsafe_get(); node != nullptr;
           node = node->next.unsafe_get()) {
        ++n;
      }
    }
    return n;
  }

 private:
  struct Node {
    TVar<std::int64_t> key;
    TVar<Node*> next{nullptr};
  };

  template <typename TxT>
  void insert_unique(TxT& tx, std::int64_t key) {
    const std::size_t b =
        static_cast<std::size_t>(static_cast<std::uint64_t>(key) *
                                 0x9E3779B97F4A7C15ULL >> 32) %
        p_.buckets;
    Node* head = heads_[b].get(tx);
    for (Node* n = head; n != nullptr; n = n->next.get(tx)) {
      if (n->key.get(tx) == key) return;  // already deduplicated
    }
    const std::size_t slot = next_.fetch_add(1, std::memory_order_acq_rel);
    if (slot >= p_.pool_capacity) {
      throw std::logic_error("genome: node pool exhausted");
    }
    Node* fresh = &pool_[slot];
    fresh->key.unsafe_set(key);
    fresh->next.unsafe_set(nullptr);
    fresh->next.set(tx, head);  // prepend
    heads_[b].set(tx, fresh);
  }

  Params p_;
  TArray<Node*> heads_;
  std::unique_ptr<Node[]> pool_;
  std::atomic<std::size_t> next_{0};
};

}  // namespace semstm
