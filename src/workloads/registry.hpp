// Workload registry: canonical instances of every benchmark in the
// paper's evaluation (three micro-benchmarks + seven STAMP applications),
// constructable by name in base or semantic form.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "workloads/driver.hpp"

namespace semstm {

/// All workload names, in the paper's Table 3 column order.
const std::vector<std::string>& workload_names();

/// Create a workload by name ("hashtable", "bank", "lru", "vacation",
/// "kmeans", "labyrinth", "labyrinth2", "yada", "ssca2", "genome",
/// "intruder") with default parameters. Throws std::invalid_argument for
/// unknown names.
std::unique_ptr<Workload> make_workload(std::string_view name, bool semantic);

}  // namespace semstm
