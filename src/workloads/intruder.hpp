// Intruder (STAMP): network intrusion detection. The transactional kernel
// dequeues a packet fragment and threads it into its flow's reassembly
// state; a flow whose last fragment arrived is retired to the "done" side.
//
// Like Genome, Intruder exposes almost no TM-friendly patterns (Table 3:
// no compares/increments detected), so both builds run the plain
// read/write form; it participates in Table 3 only.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>

#include "containers/tarray.hpp"
#include "containers/tqueue.hpp"
#include "core/atomically.hpp"
#include "workloads/mono.hpp"

namespace semstm {

class IntruderWorkload final : public MonoWorkload<IntruderWorkload> {
 public:
  struct Params {
    std::size_t flows = 256;
    unsigned fragments_per_flow = 8;
    std::size_t queue_capacity = 1 << 14;
  };

  IntruderWorkload(Params p, bool /*semantic: intentionally unused*/)
      : p_(p),
        packets_(p.queue_capacity, /*use_semantics=*/false),
        received_(p.flows, 0),
        done_(p.flows, 0) {}

  void setup(Rng& rng) override {
    auto algo = make_algorithm("cgl");
    ThreadCtx ctx(algo->make_tx());
    CtxBinder bind(ctx);
    // Pre-capture the packet stream: every flow's fragments, shuffled.
    std::vector<std::int64_t> stream;
    stream.reserve(p_.flows * p_.fragments_per_flow);
    for (std::size_t f = 0; f < p_.flows; ++f) {
      for (unsigned k = 0; k < p_.fragments_per_flow; ++k) {
        stream.push_back(static_cast<std::int64_t>(f));
      }
    }
    for (std::size_t i = stream.size(); i > 1; --i) {
      std::swap(stream[i - 1], stream[rng.below(i)]);
    }
    for (const std::int64_t pkt : stream) {
      atomically([&](Tx& tx) { (void)packets_.enqueue(tx, pkt); });
    }
  }

  template <typename TxT>

  void op_t(unsigned, Rng&) {
    atomically<TxT>([&](TxT& tx) {
      const auto pkt = packets_.dequeue(tx);
      if (!pkt) return;  // stream drained
      const auto flow = static_cast<std::size_t>(*pkt);
      const std::int64_t have = received_[flow].get(tx);
      received_[flow].set(tx, have + 1);
      if (have + 1 == static_cast<std::int64_t>(p_.fragments_per_flow)) {
        done_[flow].set(tx, 1);
      }
    });
  }

  void verify() override {
    // Fragment conservation: processed + still queued == injected.
    std::int64_t processed = 0;
    for (std::size_t f = 0; f < p_.flows; ++f) {
      const std::int64_t got = received_[f].unsafe_get();
      if (got > static_cast<std::int64_t>(p_.fragments_per_flow)) {
        throw std::logic_error("intruder: flow over-received fragments");
      }
      if (done_[f].unsafe_get() &&
          got != static_cast<std::int64_t>(p_.fragments_per_flow)) {
        throw std::logic_error("intruder: flow retired early");
      }
      processed += got;
    }
    const auto injected =
        static_cast<std::int64_t>(p_.flows * p_.fragments_per_flow);
    if (processed + packets_.unsafe_size() != injected) {
      throw std::logic_error("intruder: fragments lost or duplicated");
    }
  }

 private:
  Params p_;
  TQueue packets_;
  TArray<std::int64_t> received_;
  TArray<std::int64_t> done_;
};

}  // namespace semstm
