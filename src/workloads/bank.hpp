// Bank micro-benchmark (paper §7): each transaction performs up to 10
// transfers between accounts, each guarded by an overdraft check ("skip
// the transfer if the account balance is insufficient").
//
// Semantic build: the overdraft check is TM_GTE and the balance moves are
// TM_INC/TM_DEC. Base build: plain transactional reads/writes.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "containers/tarray.hpp"
#include "core/atomically.hpp"
#include "workloads/mono.hpp"

namespace semstm {

class BankWorkload final : public MonoWorkload<BankWorkload> {
 public:
  struct Params {
    std::size_t accounts = 1024;
    long initial_balance = 1000;
    unsigned max_transfers_per_tx = 10;
    long max_amount = 100;
    /// Zipfian-style hot-account skew: when hot_accounts > 0 and
    /// hot_pct > 0, each account pick lands in [0, hot_accounts) with
    /// probability hot_pct% and stays uniform over all accounts otherwise.
    /// This is the contention-cartography testbed: the hot words are known
    /// in advance, so a conflict map's #1 site is checkable against
    /// account_word(0..hot_accounts).
    std::size_t hot_accounts = 0;
    unsigned hot_pct = 0;
  };

  BankWorkload(Params p, bool semantic)
      : p_(p), semantic_(semantic), accounts_(p.accounts, p.initial_balance) {}

  /// The transactional word backing account `i` — the ground-truth address
  /// for hot-site assertions (tests) and report cross-checks.
  const tword* account_word(std::size_t i) const noexcept {
    return accounts_[i].word();
  }

  template <typename TxT>

  void op_t(unsigned, Rng& rng) {
    // Pre-draw the transfer plan outside the transaction so retries replay
    // the same logical operation.
    struct Transfer {
      std::size_t src, dst;
      long amount;
    };
    Transfer plan[16];
    const unsigned n =
        1 + static_cast<unsigned>(rng.below(p_.max_transfers_per_tx));
    for (unsigned i = 0; i < n; ++i) {
      plan[i].src = pick_account(rng);
      plan[i].dst = pick_account(rng);
      plan[i].amount = rng.between(1, p_.max_amount);
    }
    atomically<TxT>([&](TxT& tx) {
      for (unsigned i = 0; i < n; ++i) {
        const auto& t = plan[i];
        if (t.src == t.dst) continue;
        if (semantic_) {
          if (accounts_[t.src].gte(tx, t.amount)) {  // TM_GTE
            accounts_[t.src].sub(tx, t.amount);      // TM_DEC
            accounts_[t.dst].add(tx, t.amount);      // TM_INC
          }
        } else {
          const long balance = accounts_[t.src].get(tx);
          if (balance >= t.amount) {
            accounts_[t.src].set(tx, balance - t.amount);
            accounts_[t.dst].set(tx, accounts_[t.dst].get(tx) + t.amount);
          }
        }
      }
    });
  }

  void verify() override {
    long long total = 0;
    for (std::size_t i = 0; i < p_.accounts; ++i) {
      const long b = accounts_[i].unsafe_get();
      if (b < 0) throw std::logic_error("bank: overdraft detected");
      total += b;
    }
    const long long expected =
        static_cast<long long>(p_.accounts) * p_.initial_balance;
    if (total != expected) throw std::logic_error("bank: money not conserved");
  }

 private:
  std::size_t pick_account(Rng& rng) {
    if (p_.hot_accounts > 0 && rng.percent(p_.hot_pct)) {
      return static_cast<std::size_t>(rng.below(p_.hot_accounts));
    }
    return static_cast<std::size_t>(rng.below(p_.accounts));
  }

  Params p_;
  bool semantic_;
  TArray<long> accounts_;
};

}  // namespace semstm
