#include "workloads/registry.hpp"

#include <stdexcept>

#include "workloads/bank.hpp"
#include "workloads/genome.hpp"
#include "workloads/hashtable_wl.hpp"
#include "workloads/intruder.hpp"
#include "workloads/kmeans.hpp"
#include "workloads/labyrinth.hpp"
#include "workloads/lru_wl.hpp"
#include "workloads/ssca2.hpp"
#include "workloads/vacation.hpp"
#include "workloads/yada.hpp"

namespace semstm {

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names = {
      "hashtable", "bank", "lru",  "vacation", "kmeans",  "labyrinth",
      "labyrinth2", "yada", "ssca2", "genome",  "intruder"};
  return names;
}

std::unique_ptr<Workload> make_workload(std::string_view name, bool semantic) {
  if (name == "hashtable") {
    return std::make_unique<HashtableWorkload>(HashtableWorkload::Params{},
                                               semantic);
  }
  if (name == "bank") {
    return std::make_unique<BankWorkload>(BankWorkload::Params{}, semantic);
  }
  if (name == "lru") {
    return std::make_unique<LruWorkload>(LruWorkload::Params{}, semantic);
  }
  if (name == "vacation") {
    return std::make_unique<VacationWorkload>(VacationWorkload::Params{},
                                              semantic);
  }
  if (name == "kmeans") {
    return std::make_unique<KmeansWorkload>(KmeansWorkload::Params{},
                                            semantic);
  }
  if (name == "labyrinth") {
    return std::make_unique<LabyrinthWorkload>(LabyrinthWorkload::Params{},
                                               semantic);
  }
  if (name == "labyrinth2") {
    LabyrinthWorkload::Params p;
    p.variant = LabyrinthWorkload::Variant::kCopyOutsideTx;
    return std::make_unique<LabyrinthWorkload>(p, semantic);
  }
  if (name == "yada") {
    return std::make_unique<YadaWorkload>(YadaWorkload::Params{}, semantic);
  }
  if (name == "ssca2") {
    return std::make_unique<Ssca2Workload>(Ssca2Workload::Params{}, semantic);
  }
  if (name == "genome") {
    return std::make_unique<GenomeWorkload>(GenomeWorkload::Params{},
                                            semantic);
  }
  if (name == "intruder") {
    return std::make_unique<IntruderWorkload>(IntruderWorkload::Params{},
                                              semantic);
  }
  throw std::invalid_argument("unknown workload: " + std::string(name));
}

}  // namespace semstm
