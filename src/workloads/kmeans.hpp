// Kmeans (STAMP): clustering where the transactional hot spot is the
// accumulation of points into the new cluster centers (paper Algorithm 5).
//
// The nearest-center search is non-transactional (it reads the stable
// center snapshot of the current iteration, as STAMP does); the update
// transaction bumps new_centers_len[index] and adds every feature into
// new_centers[index][j] — pure TM_INC traffic in the semantic build
// (Table 3: 25 increments, zero reads/writes), read+write in the base.
// Features are fixed-point integers so increments are exact words.
#pragma once

#include <cstdint>
#include <vector>

#include "containers/tarray.hpp"
#include "core/atomically.hpp"
#include "workloads/mono.hpp"

namespace semstm {

class KmeansWorkload final : public MonoWorkload<KmeansWorkload> {
 public:
  struct Params {
    std::size_t points = 2048;
    std::size_t clusters = 16;
    std::size_t features = 24;  // Alg. 5 does 1 + features increments
  };

  KmeansWorkload(Params p, bool semantic)
      : p_(p),
        semantic_(semantic),
        new_centers_len_(p.clusters, 0),
        new_centers_(p.clusters * p.features, 0) {}

  void setup(Rng& rng) override {
    features_.resize(p_.points * p_.features);
    for (auto& f : features_) f = rng.between(0, 1000);
    centers_.resize(p_.clusters * p_.features);
    for (auto& c : centers_) c = rng.between(0, 1000);
    next_point_.store(0, std::memory_order_relaxed);
  }

  template <typename TxT>

  void op_t(unsigned, Rng&) {
    const std::size_t i =
        next_point_.fetch_add(1, std::memory_order_acq_rel) % p_.points;

    // Non-transactional: nearest center by squared distance.
    std::size_t index = 0;
    std::int64_t best = INT64_MAX;
    for (std::size_t c = 0; c < p_.clusters; ++c) {
      std::int64_t d = 0;
      for (std::size_t j = 0; j < p_.features; ++j) {
        const std::int64_t diff =
            features_[i * p_.features + j] - centers_[c * p_.features + j];
        d += diff * diff;
      }
      sched::tick(sched::Cost::kWork);  // charge the non-tx math
      if (d < best) {
        best = d;
        index = c;
      }
    }

    // Transactional center update (Algorithm 5).
    atomically<TxT>([&](TxT& tx) {
      if (semantic_) {
        new_centers_len_[index].add(tx, 1);  // TM_INC(len, 1)
        for (std::size_t j = 0; j < p_.features; ++j) {
          new_centers_[index * p_.features + j].add(
              tx, features_[i * p_.features + j]);  // TM_INC(center, feature)
        }
      } else {
        new_centers_len_[index].set(tx, new_centers_len_[index].get(tx) + 1);
        for (std::size_t j = 0; j < p_.features; ++j) {
          auto& cell = new_centers_[index * p_.features + j];
          cell.set(tx, cell.get(tx) + features_[i * p_.features + j]);
        }
      }
    });
    processed_.fetch_add(1, std::memory_order_relaxed);
  }

  void verify() override {
    std::int64_t assigned = 0;
    for (std::size_t c = 0; c < p_.clusters; ++c) {
      assigned += new_centers_len_[c].unsafe_get();
    }
    if (assigned !=
        static_cast<std::int64_t>(processed_.load(std::memory_order_relaxed))) {
      throw std::logic_error("kmeans: lost center updates");
    }
  }

 private:
  Params p_;
  bool semantic_;
  std::vector<std::int64_t> features_;  // read-only during the run
  std::vector<std::int64_t> centers_;   // stable snapshot of this iteration
  TArray<std::int64_t> new_centers_len_;
  TArray<std::int64_t> new_centers_;
  std::atomic<std::size_t> next_point_{0};
  std::atomic<std::size_t> processed_{0};
};

}  // namespace semstm
