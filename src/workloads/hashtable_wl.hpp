// Hashtable micro-benchmark (paper §7.1): "a collection of set and get
// operations, where each transaction performed 10 set/get operations" over
// the open-addressing table of Algorithm 2.
#pragma once

#include <cstdint>

#include "containers/topen_hashtable.hpp"
#include "core/atomically.hpp"
#include "workloads/mono.hpp"

namespace semstm {

class HashtableWorkload final : public MonoWorkload<HashtableWorkload> {
 public:
  // Defaults target the paper's regime: a heavily loaded table where
  // probes traverse long chains of cells (Table 3 counts thousands of
  // probe reads per transaction), so concurrent insert/remove churn keeps
  // touching probed cells *without* changing the probe conditions'
  // outcomes — the semantic savings the benchmark demonstrates.
  struct Params {
    std::size_t capacity = 4096;  // power of two
    std::size_t key_space = 3584;
    unsigned ops_per_tx = 10;
    unsigned insert_pct = 20;
    unsigned remove_pct = 20;  // remainder: lookups
    double prefill = 0.85;
  };

  HashtableWorkload(Params p, bool semantic)
      : p_(p), table_(p.capacity, semantic) {}

  /// Explicit probe-mode variant (used by the ablation study).
  HashtableWorkload(Params p, TOpenHashTable::ProbeMode mode)
      : p_(p), table_(p.capacity, mode) {}

  void setup(Rng& rng) override {
    // Non-transactional prefill through a CGL context would be overkill;
    // fill via a scratch transaction-free path: keys are inserted with the
    // public API before any concurrency starts, so a temporary context of
    // the *cgl* algorithm keeps this simple and safe.
    auto algo = make_algorithm("cgl");
    ThreadCtx ctx(algo->make_tx());
    CtxBinder bind(ctx);
    const auto target =
        static_cast<std::size_t>(p_.prefill * static_cast<double>(p_.key_space));
    std::size_t inserted = 0;
    while (inserted < target) {
      const auto key = static_cast<std::int64_t>(rng.below(p_.key_space));
      inserted += atomically([&](Tx& tx) { return table_.insert(tx, key); });
    }
  }

  template <typename TxT>

  void op_t(unsigned, Rng& rng) {
    struct Op {
      std::int64_t key;
      unsigned kind;  // 0 insert, 1 remove, 2 lookup
    };
    Op plan[32];
    for (unsigned i = 0; i < p_.ops_per_tx; ++i) {
      plan[i].key = static_cast<std::int64_t>(rng.below(p_.key_space));
      const auto roll = static_cast<unsigned>(rng.below(100));
      plan[i].kind = roll < p_.insert_pct                  ? 0u
                     : roll < p_.insert_pct + p_.remove_pct ? 1u
                                                            : 2u;
    }
    atomically<TxT>([&](TxT& tx) {
      for (unsigned i = 0; i < p_.ops_per_tx; ++i) {
        switch (plan[i].kind) {
          case 0: (void)table_.insert(tx, plan[i].key); break;
          case 1: (void)table_.remove(tx, plan[i].key); break;
          default: (void)table_.contains(tx, plan[i].key); break;
        }
      }
    });
  }

  const TOpenHashTable& table() const noexcept { return table_; }

 private:
  Params p_;
  TOpenHashTable table_;
};

}  // namespace semstm
