// The experiment driver: runs a Workload under (algorithm × execution mode
// × thread count) and aggregates statistics — the engine behind every
// figure bench.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithm.hpp"
#include "core/stats.hpp"
#include "obs/conflict_map.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "runtime/contention.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace semstm {

/// A benchmark workload. setup() runs once (non-transactionally); op()
/// executes one outer operation — usually exactly one transaction — and is
/// called ops_per_thread times per logical thread; verify() checks
/// workload invariants after the run (used by the integration tests).
///
/// run_ops() is a thread's whole inner loop. The default implementation
/// simply calls op() `ops` times (virtual dispatch per access); workloads
/// deriving from MonoWorkload (workloads/mono.hpp) override it to
/// monomorphize the loop on the algorithm's concrete descriptor type, so
/// the per-access TM calls devirtualize (DESIGN.md §4.12). The driver
/// selects between the two through RunConfig::dispatch.
class Workload {
 public:
  virtual ~Workload() = default;
  virtual void setup(Rng& rng) { (void)rng; }
  virtual void op(unsigned tid, Rng& rng) = 0;
  virtual void run_ops(AlgoId algo, unsigned tid, Rng& rng,
                       std::uint64_t ops) {
    (void)algo;
    for (std::uint64_t i = 0; i < ops; ++i) op(tid, rng);
  }
  virtual void verify() {}
};

enum class ExecMode : std::uint8_t {
  kSim,   ///< fiber-based virtual N-core scheduler (deterministic)
  kReal,  ///< real std::thread concurrency
};

/// How worker loops reach the TM runtime.
enum class Dispatch : std::uint8_t {
  kVirtual,  ///< op() through the type-erased Tx interface
  kStatic,   ///< run_ops() monomorphized on the concrete descriptor
};

/// Split `total` operations across `threads` with no remainder loss: the
/// first `total % threads` threads run one extra op, so the sum is exactly
/// `total` at every thread count (the fixed-total-work invariant the
/// completion-time figures compare across the sweep). Exits loudly when
/// total < threads — some threads would run zero ops and the "completion
/// time of the same work" comparison would be silently meaningless.
inline std::vector<std::uint64_t> split_total_ops(std::uint64_t total,
                                                  unsigned threads) {
  if (threads == 0 || total < threads) {
    std::fprintf(stderr,
                 "error: fixed total work of %llu ops cannot be split over "
                 "%u threads (need at least one op per thread)\n",
                 static_cast<unsigned long long>(total), threads);
    std::exit(2);
  }
  std::vector<std::uint64_t> per(threads, total / threads);
  for (std::uint64_t t = 0; t < total % threads; ++t) ++per[t];
  return per;
}

struct RunConfig {
  std::string algo = "norec";
  unsigned threads = 4;
  ExecMode mode = ExecMode::kSim;
  std::uint64_t ops_per_thread = 1000;
  /// When non-empty (size must equal `threads`), overrides ops_per_thread
  /// with an explicit per-thread op count — the fixed-total-work path
  /// (split_total_ops) uses this to distribute the division remainder.
  std::vector<std::uint64_t> ops_by_thread;
  std::uint64_t seed = 0xC0FFEE;
  /// Dispatch tier for the worker loops. Static is the default: it is the
  /// fast path, and workloads not opting in (no run_ops override) fall
  /// back to the virtual loop transparently.
  Dispatch dispatch = Dispatch::kStatic;
  AlgoOptions algo_opts{};
  /// Simulator scheduling slack (see sched::SimOptions::quantum).
  std::uint64_t sim_quantum = 0;
  /// Contention-manager policy: "backoff", "yield" or "bounded"
  /// (runtime/contention.hpp). Defaults honour SEMSTM_CM / SEMSTM_RETRY_LIMIT
  /// so whole bench sweeps can be re-run under a different policy without
  /// touching every invocation; per-bench CLI flags override.
  std::string cm = env_or("SEMSTM_CM", "backoff");
  /// Consecutive-abort limit before the "bounded" policy goes serial.
  std::uint64_t retry_limit = env_u64_or("SEMSTM_RETRY_LIMIT",
                                         kDefaultRetryLimit);
  /// Optional trace sink (src/obs). When non-null the driver sizes one
  /// SPSC ring per thread and binds it to that thread's descriptor, so the
  /// retry loop streams begin/commit/abort/fallback/semantic-op events into
  /// it. Only populated in SEMSTM_TRACE builds; harmless to set otherwise
  /// (the rings simply stay empty). The collector must outlive the run.
  obs::TraceCollector* trace = nullptr;
  /// Optional windowed-metrics sink (obs/metrics.hpp). When non-null the
  /// driver binds one WindowSeries per thread, the retry loop samples at
  /// every attempt end, and the driver flushes + merges at run end into
  /// RunResult::windows. Same gate discipline as `trace`: only populated
  /// in SEMSTM_TRACE builds, harmless otherwise. Must outlive the run.
  obs::MetricsCollector* metrics = nullptr;
  /// Hot-site ranking depth for RunResult::hot_sites.
  std::size_t top_k_sites = 10;
};

struct RunResult {
  TxStats stats;                  ///< aggregated over all threads
  std::uint64_t makespan = 0;     ///< virtual ticks (sim mode)
  double wall_seconds = 0.0;      ///< wall time (both modes)
  /// Committed transactions per unit of parallel time: per mega-tick in
  /// sim mode, per second in real mode.
  double throughput = 0.0;
  double abort_pct = 0.0;
  /// Time base of makespan, trace timestamps and metrics windows:
  /// "ticks" (sim mode, virtual scheduler) or "ns" (real threads).
  const char* units = "ticks";
  /// Contention cartography (SEMSTM_TRACE builds; empty otherwise).
  /// hot_sites is the run-level top-K merge of every descriptor's
  /// ConflictMap; conflict_overflow counts sites dropped by full tables
  /// (ranking is a lower bound when non-zero). windows is filled only
  /// when cfg.metrics was set.
  std::vector<obs::ConflictMap::Site> hot_sites;
  std::uint64_t conflict_overflow = 0;
  std::vector<obs::WindowRow> windows;
};

/// Execute `workload` under `cfg`. setup() is called before threads start.
RunResult run_workload(const RunConfig& cfg, Workload& workload);

}  // namespace semstm
