// SSCA2 (STAMP): scalable graph-analysis kernel 1 — parallel construction
// of the adjacency structure. Each transaction places one directed edge:
// it reads the target node's insertion cursor, stores the edge endpoint,
// and advances the cursor. The cursor bump is the paper's TM_INC candidate
// (Table 3: base 2 reads / 2 writes vs semantic 1 read / 1 write / 1 inc).
#pragma once

#include <cstdint>
#include <stdexcept>

#include "containers/tarray.hpp"
#include "core/atomically.hpp"
#include "workloads/mono.hpp"

namespace semstm {

class Ssca2Workload final : public MonoWorkload<Ssca2Workload> {
 public:
  struct Params {
    std::size_t nodes = 512;
    std::size_t max_degree = 64;
  };

  Ssca2Workload(Params p, bool semantic)
      : p_(p),
        semantic_(semantic),
        cursor_(p.nodes, 0),
        degree_(p.nodes, 0),
        adjacency_(p.nodes * p.max_degree, -1) {}

  template <typename TxT>

  void op_t(unsigned, Rng& rng) {
    const auto u = static_cast<std::size_t>(rng.below(p_.nodes));
    const auto v = static_cast<std::int64_t>(rng.below(p_.nodes));
    const bool placed = atomically<TxT>([&](TxT& tx) -> bool {
      const std::int64_t j = cursor_[u].get(tx);  // insertion point
      if (j >= static_cast<std::int64_t>(p_.max_degree)) return false;
      adjacency_[u * p_.max_degree + static_cast<std::size_t>(j)].set(tx, v);
      if (semantic_) {
        // The j-cursor was already read to place the edge, so bumping the
        // *degree counter* is the clean TM_INC (no read of it needed).
        cursor_[u].set(tx, j + 1);
        degree_[u].add(tx, 1);  // TM_INC
      } else {
        cursor_[u].set(tx, j + 1);
        degree_[u].set(tx, degree_[u].get(tx) + 1);
      }
      return true;
    });
    if (placed) edges_placed_.fetch_add(1, std::memory_order_relaxed);
  }

  void verify() override {
    for (std::size_t u = 0; u < p_.nodes; ++u) {
      const std::int64_t c = cursor_[u].unsafe_get();
      if (c != degree_[u].unsafe_get()) {
        throw std::logic_error("ssca2: cursor and degree diverged");
      }
      for (std::int64_t j = 0; j < c; ++j) {
        if (adjacency_[u * p_.max_degree + static_cast<std::size_t>(j)]
                .unsafe_get() < 0) {
          throw std::logic_error("ssca2: hole in adjacency list");
        }
      }
    }
  }

  std::uint64_t edges_placed() const noexcept { return edges_placed_.load(std::memory_order_relaxed); }

 private:
  Params p_;
  bool semantic_;
  TArray<std::int64_t> cursor_;
  TArray<std::int64_t> degree_;
  TArray<std::int64_t> adjacency_;
  std::atomic<std::uint64_t> edges_placed_{0};
};

}  // namespace semstm
