// Vacation (STAMP): an in-memory travel-reservation OLTP emulation.
//
// The database is three red-black-tree tables (cars, flights, rooms) of
// resource records plus a customer table, mirroring STAMP's manager. The
// dominant profile is make-reservation (paper Algorithm 4): scan a handful
// of candidate records, check numFree > 0 and track the best price with
// price > max_price — both TM_GT in the semantic build — then grab the
// chosen resource with TM_INC(numFree, -1). A post-booking sanity check
// re-reads numFree, which *promotes* the increment (the effect the paper
// calls out: "almost all the inc operations were promoted ... because of
// an additional sanity check"). Most reads stay plain tree-internal reads
// (Table 3: ~7% of reads become compares).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "containers/trbtree.hpp"
#include "core/atomically.hpp"
#include "workloads/mono.hpp"

namespace semstm {

class VacationWorkload final : public MonoWorkload<VacationWorkload> {
 public:
  struct Params {
    std::size_t relations = 256;   // records per resource table
    std::size_t customers = 256;
    unsigned queries_per_tx = 4;   // candidate records scanned (Alg. 4 loop)
    unsigned reserve_pct = 80;     // profiles: reserve / update / delete
    unsigned update_pct = 10;
    long initial_free = 100;
  };

  VacationWorkload(Params p, bool semantic)
      : p_(p),
        semantic_(semantic),
        cars_(2 * p.relations + 16),
        flights_(2 * p.relations + 16),
        rooms_(2 * p.relations + 16),
        customers_(2 * p.customers + 16),
        record_count_(3 * p.relations),
        records_(std::make_unique<Record[]>(3 * p.relations)) {}

  void setup(Rng& rng) override {
    auto algo = make_algorithm("cgl");
    ThreadCtx ctx(algo->make_tx());
    CtxBinder bind(ctx);
    TRbMap* tables[3] = {&cars_, &flights_, &rooms_};
    std::size_t slot = 0;
    for (int t = 0; t < 3; ++t) {
      for (std::size_t id = 0; id < p_.relations; ++id, ++slot) {
        records_[slot].num_free.unsafe_set(p_.initial_free);
        records_[slot].price.unsafe_set(rng.between(50, 500));
        total_capacity_ += p_.initial_free;
        atomically([&](Tx& tx) {
          tables[t]->insert(tx, static_cast<std::int64_t>(id),
                            static_cast<std::int64_t>(slot));
        });
      }
    }
    for (std::size_t c = 0; c < p_.customers; ++c) {
      atomically([&](Tx& tx) {
        customers_.insert(tx, static_cast<std::int64_t>(c), 0);
      });
    }
  }

  template <typename TxT>

  void op_t(unsigned, Rng& rng) {
    const auto roll = static_cast<unsigned>(rng.below(100));
    if (roll < p_.reserve_pct) {
      make_reservation<TxT>(rng);
    } else if (roll < p_.reserve_pct + p_.update_pct) {
      update_tables<TxT>(rng);
    } else {
      delete_customer<TxT>(rng);
    }
  }

  void verify() override {
    // Conservation: every successful booking moved exactly one unit from
    // numFree; free units + bookings must equal the initial capacity.
    std::int64_t free_units = 0;
    for (std::size_t i = 0; i < record_count_; ++i) {
      const std::int64_t f = records_[i].num_free.unsafe_get();
      if (f < 0) {
        throw std::logic_error("vacation: negative free count (oversold)");
      }
      free_units += f;
    }
    const auto booked =
        static_cast<std::int64_t>(bookings_.load(std::memory_order_relaxed));
    if (free_units + booked != total_capacity_) {
      throw std::logic_error("vacation: resource units not conserved");
    }
  }

 private:
  struct Record {
    TVar<std::int64_t> num_free;
    TVar<std::int64_t> price;
  };

  TRbMap& table_of(unsigned t) {
    return t == 0 ? cars_ : t == 1 ? flights_ : rooms_;
  }

  /// Paper Algorithm 4.
  template <typename TxT>
  void make_reservation(Rng& rng) {
    const unsigned t = static_cast<unsigned>(rng.below(3));
    std::int64_t ids[8];
    for (unsigned q = 0; q < p_.queries_per_tx; ++q) {
      ids[q] = static_cast<std::int64_t>(rng.below(p_.relations));
    }
    const auto customer = static_cast<std::int64_t>(rng.below(p_.customers));
    TRbMap& table = table_of(t);

    const bool booked = atomically<TxT>([&](TxT& tx) -> bool {
      long max_price = -1;
      std::int64_t max_id = -1;
      for (unsigned q = 0; q < p_.queries_per_tx; ++q) {
        const auto res = table.find(tx, ids[q]);
        if (!res) continue;
        Record& rec = records_[static_cast<std::size_t>(*res)];
        if (semantic_) {
          if (rec.num_free.gt(tx, 0)) {          // TM_GT(numFree, 0)
            if (rec.price.gt(tx, max_price)) {   // TM_GT(price, max_price)
              max_price = rec.price.get(tx);
              max_id = ids[q];
            }
          }
        } else {
          if (rec.num_free.get(tx) > 0) {
            const long price = rec.price.get(tx);
            if (price > max_price) {
              max_price = price;
              max_id = ids[q];
            }
          }
        }
      }
      if (max_id < 0) return false;
      const auto chosen = table.find(tx, max_id);
      if (!chosen) return false;
      Record& rec = records_[static_cast<std::size_t>(*chosen)];
      if (semantic_) {
        rec.num_free.sub(tx, 1);  // TM_INC(numFree, -1)
      } else {
        rec.num_free.set(tx, rec.num_free.get(tx) - 1);
      }
      // Sanity check (STAMP's reservation_info invariants): re-reading the
      // counter promotes the pending increment.
      if (rec.num_free.get(tx) < 0) {
        rec.num_free.set(tx, 0);  // never happens; mirrors STAMP's guard
        return false;
      }
      // Bill the customer.
      if (auto bill = customers_.find_slot(tx, customer)) {
        if (semantic_) {
          bill->add(tx, max_price);
        } else {
          bill->set(tx, bill->get(tx) + max_price);
        }
      }
      return true;
    });
    if (booked) bookings_.fetch_add(1, std::memory_order_relaxed);
  }

  /// The "update offers" profile: change prices / add capacity.
  template <typename TxT>
  void update_tables(Rng& rng) {
    const unsigned t = static_cast<unsigned>(rng.below(3));
    const auto id = static_cast<std::int64_t>(rng.below(p_.relations));
    const long new_price = rng.between(50, 500);
    TRbMap& table = table_of(t);
    atomically<TxT>([&](TxT& tx) {
      const auto res = table.find(tx, id);
      if (!res) return;
      Record& rec = records_[static_cast<std::size_t>(*res)];
      rec.price.set(tx, new_price);
    });
  }

  template <typename TxT>
  void delete_customer(Rng& rng) {
    const auto customer = static_cast<std::int64_t>(rng.below(p_.customers));
    atomically<TxT>([&](TxT& tx) {
      if (customers_.erase(tx, customer)) {
        customers_.insert(tx, customer, 0);  // re-open the account
      }
    });
  }

  Params p_;
  bool semantic_;
  TRbMap cars_, flights_, rooms_, customers_;
  std::size_t record_count_;
  std::unique_ptr<Record[]> records_;
  std::int64_t total_capacity_ = 0;
  std::atomic<std::uint64_t> bookings_{0};
};

}  // namespace semstm
