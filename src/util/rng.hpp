// Deterministic pseudo-random number generation for workloads and tests.
//
// All randomness in semstm flows through these generators so that every
// experiment is reproducible from a single 64-bit seed.
#pragma once

#include <cstdint>

namespace semstm {

/// SplitMix64: used to expand a user seed into stream seeds.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the workhorse generator (per-thread streams).
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed = 0x5EED5EED5EEDULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire-style multiply-shift reduction; bias is negligible for
    // benchmark/test purposes.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial: true with probability pct/100.
  constexpr bool percent(unsigned pct) noexcept { return below(100) < pct; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace semstm
