// Minimal command-line option parsing for the benchmark binaries.
//
// Supports "--key=value", "--key value" and bare "--flag" forms. Unknown
// arguments are reported so that typos in sweep scripts fail loudly — and
// so are malformed numbers: "--ops=10k" or "--threads=2;4" exit(2) with
// the offending token instead of silently parsing a prefix.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace semstm {

namespace detail {

/// Strict end-pointer numeric parse: the whole token must be consumed.
/// `what` names the source ("--ops", "SEMSTM_RETRY_LIMIT") in the error.
[[noreturn]] inline void die_bad_number(const char* what, const char* tok) {
  std::fprintf(stderr, "error: %s: malformed number '%s'\n", what, tok);
  std::exit(2);
}

inline std::int64_t parse_i64(const char* what, const std::string& tok) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  if (tok.empty() || end != tok.c_str() + tok.size() || errno == ERANGE) {
    die_bad_number(what, tok.c_str());
  }
  return static_cast<std::int64_t>(v);
}

inline std::uint64_t parse_u64(const char* what, const std::string& tok) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (tok.empty() || end != tok.c_str() + tok.size() || errno == ERANGE ||
      tok[0] == '-') {
    die_bad_number(what, tok.c_str());
  }
  return static_cast<std::uint64_t>(v);
}

inline double parse_f64(const char* what, const std::string& tok) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (tok.empty() || end != tok.c_str() + tok.size() || errno == ERANGE) {
    die_bad_number(what, tok.c_str());
  }
  return v;
}

}  // namespace detail

/// Environment-variable fallback for run-wide defaults (e.g. SEMSTM_CM).
/// CLI flags always win: callers use `cli.get(key, env_or(...))`.
inline std::string env_or(const char* var, const char* dflt) {
  // Read-only env access during single-threaded startup; no setenv anywhere
  // in the library, so the getenv data race clang-tidy guards against
  // cannot occur. NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* v = std::getenv(var);
  return (v != nullptr && *v != '\0') ? std::string(v) : std::string(dflt);
}

inline std::uint64_t env_u64_or(const char* var, std::uint64_t dflt) {
  // Same single-threaded-startup contract as env_or above.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* v = std::getenv(var);
  return (v != nullptr && *v != '\0') ? detail::parse_u64(var, v) : dflt;
}

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
        std::exit(2);
      }
      arg = arg.substr(2);
      auto eq = arg.find('=');
      if (eq != std::string::npos) {
        kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        kv_[arg] = argv[++i];
      } else {
        kv_[arg] = "1";  // bare flag
      }
    }
  }

  bool has(const std::string& key) const { return kv_.count(key) != 0; }

  std::string get(const std::string& key, const std::string& dflt) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? dflt : it->second;
  }

  std::int64_t get_int(const std::string& key, std::int64_t dflt) const {
    auto it = kv_.find(key);
    if (it == kv_.end()) return dflt;
    return detail::parse_i64(("--" + key).c_str(), it->second);
  }

  double get_double(const std::string& key, double dflt) const {
    auto it = kv_.find(key);
    if (it == kv_.end()) return dflt;
    return detail::parse_f64(("--" + key).c_str(), it->second);
  }

  /// Parse "1,2,4,8" style lists (used for thread sweeps). Every element
  /// must be a complete unsigned number: "2;4" or "4x" fail loudly.
  std::vector<unsigned> get_list(const std::string& key,
                                 std::vector<unsigned> dflt) const {
    auto it = kv_.find(key);
    if (it == kv_.end()) return dflt;
    std::vector<unsigned> out;
    const std::string& s = it->second;
    const std::string what = "--" + key;
    std::size_t pos = 0;
    while (pos <= s.size()) {
      auto comma = s.find(',', pos);
      if (comma == std::string::npos) comma = s.size();
      const std::uint64_t v =
          detail::parse_u64(what.c_str(), s.substr(pos, comma - pos));
      if (v > 0xFFFFFFFFull) detail::die_bad_number(what.c_str(), s.c_str());
      out.push_back(static_cast<unsigned>(v));
      pos = comma + 1;
    }
    return out;
  }

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace semstm
