// Minimal command-line option parsing for the benchmark binaries.
//
// Supports "--key=value", "--key value" and bare "--flag" forms. Unknown
// arguments are reported so that typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace semstm {

/// Environment-variable fallback for run-wide defaults (e.g. SEMSTM_CM).
/// CLI flags always win: callers use `cli.get(key, env_or(...))`.
inline std::string env_or(const char* var, const char* dflt) {
  const char* v = std::getenv(var);
  return (v != nullptr && *v != '\0') ? std::string(v) : std::string(dflt);
}

inline std::uint64_t env_u64_or(const char* var, std::uint64_t dflt) {
  const char* v = std::getenv(var);
  return (v != nullptr && *v != '\0') ? std::strtoull(v, nullptr, 10) : dflt;
}

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
        std::exit(2);
      }
      arg = arg.substr(2);
      auto eq = arg.find('=');
      if (eq != std::string::npos) {
        kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        kv_[arg] = argv[++i];
      } else {
        kv_[arg] = "1";  // bare flag
      }
    }
  }

  bool has(const std::string& key) const { return kv_.count(key) != 0; }

  std::string get(const std::string& key, const std::string& dflt) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? dflt : it->second;
  }

  std::int64_t get_int(const std::string& key, std::int64_t dflt) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? dflt : std::strtoll(it->second.c_str(), nullptr, 10);
  }

  double get_double(const std::string& key, double dflt) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
  }

  /// Parse "1,2,4,8" style lists (used for thread sweeps).
  std::vector<unsigned> get_list(const std::string& key,
                                 std::vector<unsigned> dflt) const {
    auto it = kv_.find(key);
    if (it == kv_.end()) return dflt;
    std::vector<unsigned> out;
    const std::string& s = it->second;
    std::size_t pos = 0;
    while (pos < s.size()) {
      auto comma = s.find(',', pos);
      if (comma == std::string::npos) comma = s.size();
      out.push_back(static_cast<unsigned>(
          std::strtoul(s.substr(pos, comma - pos).c_str(), nullptr, 10)));
      pos = comma + 1;
    }
    return out;
  }

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace semstm
