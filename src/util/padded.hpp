// Cache-line padding helpers to avoid false sharing between per-thread slots.
#pragma once

#include <cstddef>
#include <new>

namespace semstm {

// Fixed at 64 (the x86-64 line size) rather than
// std::hardware_destructive_interference_size so the layout is ABI-stable
// across translation units and compiler flags.
inline constexpr std::size_t kCacheLine = 64;

/// A T padded out to (a multiple of) a cache line.
template <typename T>
struct alignas(kCacheLine) Padded {
  T value{};

  Padded() = default;
  explicit Padded(const T& v) : value(v) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

}  // namespace semstm
