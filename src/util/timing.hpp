// Wall-clock timing helper used by the benchmark harness.
#pragma once

#include <chrono>

namespace semstm {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace semstm
