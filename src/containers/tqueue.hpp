// Transactional bounded array queue — the paper's Algorithm 3.
//
// The empty check of dequeue is `head == tail`. In semantic mode it is a
// single address–address TM_EQ, and the head advance is a TM_INC, so a
// dequeue commutes with a concurrent enqueue whenever the queue stays
// non-empty — the concurrency the paper's queue example re-enables.
#pragma once

#include <cstdint>
#include <optional>

#include "containers/tarray.hpp"

namespace semstm {

class TQueue {
 public:
  using Value = std::int64_t;

  TQueue(std::size_t capacity, bool use_semantics)
      : capacity_(capacity), semantic_(use_semantics), items_(capacity, 0) {}

  /// Enqueue; returns false when full.
  template <typename TxT>
  bool enqueue(TxT& tx, Value v) {
    // tail is written below, so the plain read is write-after-read — safe
    // under every algorithm (§4.1).
    const std::int64_t t = tail_.get(tx);
    const bool full =
        semantic_
            ? !head_.gt(tx, t - static_cast<std::int64_t>(capacity_))
            : head_.get(tx) <= t - static_cast<std::int64_t>(capacity_);
    if (full) return false;
    items_[static_cast<std::size_t>(t) % capacity_].set(tx, v);
    if (semantic_) {
      tail_.add(tx, 1);
    } else {
      tail_.set(tx, t + 1);
    }
    return true;
  }

  /// Dequeue (Algorithm 3); returns nullopt when empty.
  template <typename TxT>
  std::optional<Value> dequeue(TxT& tx) {
    if (semantic_) {
      if (head_.eq(tx, tail_)) return std::nullopt;  // TM_EQ(head, tail)
      const std::int64_t h = head_.get(tx);  // promoted below by TM_INC path
      const Value item = items_[static_cast<std::size_t>(h) % capacity_].get(tx);
      head_.add(tx, 1);  // TM_INC(head, 1)
      return item;
    }
    const std::int64_t h = head_.get(tx);
    if (h == tail_.get(tx)) return std::nullopt;
    const Value item = items_[static_cast<std::size_t>(h) % capacity_].get(tx);
    head_.set(tx, h + 1);
    return item;
  }

  template <typename TxT>
  bool empty(TxT& tx) {
    return semantic_ ? head_.eq(tx, tail_) : head_.get(tx) == tail_.get(tx);
  }

  std::int64_t unsafe_size() const {
    return tail_.unsafe_get() - head_.unsafe_get();
  }

 private:
  std::size_t capacity_;
  bool semantic_;
  TVar<std::int64_t> head_{0};
  TVar<std::int64_t> tail_{0};
  TArray<Value> items_;
};

}  // namespace semstm
