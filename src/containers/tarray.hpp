// TArray<T>: a fixed-size array of transactional words.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>

#include "core/tvar.hpp"

namespace semstm {

template <WordRepresentable T>
class TArray {
 public:
  explicit TArray(std::size_t n, T init = T{})
      : size_(n), slots_(std::make_unique<TVar<T>[]>(n)) {
    for (std::size_t i = 0; i < n; ++i) slots_[i].unsafe_set(init);
  }

  std::size_t size() const noexcept { return size_; }

  TVar<T>& operator[](std::size_t i) noexcept {
    assert(i < size_);
    return slots_[i];
  }
  const TVar<T>& operator[](std::size_t i) const noexcept {
    assert(i < size_);
    return slots_[i];
  }

 private:
  std::size_t size_;
  std::unique_ptr<TVar<T>[]> slots_;
};

}  // namespace semstm
