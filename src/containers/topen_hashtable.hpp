// Transactional hashtable with open addressing — the paper's Algorithm 2.
//
// Probing walks a chain of conditional expressions ("cell not FREE, and
// either REMOVED or holding a different key"). In semantic mode every one
// of those checks is a TM_EQ/TM_NEQ construct, so a concurrent writer that
// touches a probed cell without changing the outcome of the checks does
// not abort the prober; in base mode they are plain transactional reads
// (the configuration the paper's NOrec/TL2 curves use).
#pragma once

#include <cstdint>
#include <optional>

#include "containers/tarray.hpp"
#include "core/atomically.hpp"

namespace semstm {

class TOpenHashTable {
 public:
  using Key = std::int64_t;

  enum State : std::int64_t { kFree = 0, kBusy = 1, kRemoved = 2 };

  /// How the probe's conditions are expressed:
  ///  kBase        — classical transactional reads (NOrec/TL2 curves)
  ///  kPerOperator — each comparison is an independent semantic cmp
  ///  kClause      — the continuation disjunction is ONE cmp_or clause
  ///                 (the paper's composed conditional; default semantic)
  enum class ProbeMode : std::uint8_t { kBase, kPerOperator, kClause };

  /// capacity must be a power of two.
  TOpenHashTable(std::size_t capacity, ProbeMode mode)
      : mask_(capacity - 1),
        mode_(mode),
        states_(capacity, kFree),
        keys_(capacity, 0) {
    assert((capacity & mask_) == 0 && "capacity must be a power of two");
  }

  /// Convenience: true = clause-level semantics, false = classical reads.
  TOpenHashTable(std::size_t capacity, bool use_semantics)
      : TOpenHashTable(capacity,
                       use_semantics ? ProbeMode::kClause : ProbeMode::kBase) {}

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Returns true if `key` is present (Algorithm 2's probe).
  template <typename TxT>
  bool contains(TxT& tx, Key key) { return find_slot(tx, key).has_value(); }

  /// Insert `key`; returns false if it was already present or the table is
  /// full.
  template <typename TxT>
  bool insert(TxT& tx, Key key) {
    std::size_t index = hash(key);
    std::optional<std::size_t> first_reusable;
    for (std::size_t step = 0; step <= mask_; ++step) {
      if (state_is(tx, index, kFree)) {
        const std::size_t target = first_reusable.value_or(index);
        keys_[target].set(tx, key);
        states_[target].set(tx, kBusy);
        return true;
      }
      if (state_is(tx, index, kRemoved)) {
        if (!first_reusable) first_reusable = index;
      } else if (key_is(tx, index, key)) {
        return false;  // already present
      }
      index = (index + kProbe) & mask_;
    }
    if (first_reusable) {
      keys_[*first_reusable].set(tx, key);
      states_[*first_reusable].set(tx, kBusy);
      return true;
    }
    return false;  // full
  }

  /// Remove `key`; returns false if absent. Uses tombstones (kRemoved).
  template <typename TxT>
  bool remove(TxT& tx, Key key) {
    const auto slot = find_slot(tx, key);
    if (!slot) return false;
    states_[*slot].set(tx, kRemoved);
    return true;
  }

  /// Non-transactional population count (setup/verification only).
  std::size_t unsafe_size() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i <= mask_; ++i) {
      if (states_[i].unsafe_get() == kBusy) ++n;
    }
    return n;
  }

 private:
  static constexpr std::size_t kProbe = 1;  // linear probing

  std::size_t hash(Key key) const noexcept {
    auto h = static_cast<std::uint64_t>(key);
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h) & mask_;
  }

  bool semantic() const noexcept { return mode_ != ProbeMode::kBase; }

  template <typename TxT>
  bool state_is(TxT& tx, std::size_t i, State s) {
    return semantic() ? states_[i].eq(tx, s) : states_[i].get(tx) == s;
  }
  template <typename TxT>
  bool key_is(TxT& tx, std::size_t i, Key key) {
    return semantic() ? keys_[i].eq(tx, key) : keys_[i].get(tx) == key;
  }

  /// Algorithm 2: probe until a FREE cell (absent) or a matching BUSY cell.
  ///
  /// Semantic build: per probed cell, the continuation predicate
  /// `state == REMOVED || key != value` is ONE composed semantic read
  /// (Tx::cmp_or) — this is what lets a prober survive the cell being
  /// removed, or recycled for a different key, in between: the clause
  /// outcome is preserved even though both stored values changed.
  template <typename TxT>
  std::optional<std::size_t> find_slot(TxT& tx, Key key) {
    std::size_t index = hash(key);
    for (std::size_t step = 0; step <= mask_; ++step) {
      // while (state != FREE && (state == REMOVED || key != value)) probe.
      if (mode_ == ProbeMode::kClause) {
        if (states_[index].eq(tx, kFree)) return std::nullopt;
        const CmpTerm pass[2] = {
            term<std::int64_t>(states_[index], Rel::EQ, kRemoved),
            term<std::int64_t>(keys_[index], Rel::NEQ, key),
        };
        if (!tx.cmp_or(pass, 2)) return index;  // BUSY and key matches
      } else {
        // kBase and kPerOperator share the structure; they differ in
        // whether each comparison is a plain read or a recorded cmp.
        if (state_is(tx, index, kFree)) return std::nullopt;
        if (!state_is(tx, index, kRemoved) && key_is(tx, index, key)) {
          return index;
        }
      }
      index = (index + kProbe) & mask_;
    }
    return std::nullopt;
  }

  std::size_t mask_;
  ProbeMode mode_;
  TArray<std::int64_t> states_;
  TArray<Key> keys_;
};

}  // namespace semstm
