// Transactional red-black tree map — the in-memory-database substrate of
// the Vacation benchmark (STAMP keeps its reservation tables in RB-trees).
//
// Nodes live in a pre-allocated pool handed out by a non-transactional
// bump allocator: a node claimed by a transaction that later aborts is
// simply leaked back into the arena's dead space (standard STM practice —
// safe memory reclamation is orthogonal to this paper). Removal is lazy
// (a `present` flag) so the tree structure only ever grows, which keeps
// rebalancing transactional logic identical to the sequential CLRS code.
//
// Key comparisons during descent are plain transactional reads by default,
// matching STAMP's profile (the paper observes that most Vacation reads
// are internal tree reads that its GCC pass does not transform). With
// `semantic_descent` the lookup path instead uses TM_EQ/TM_GT compares —
// the "semantic tree" extension explored in bench/ablation.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>

#include "core/tvar.hpp"

namespace semstm {

class TRbMap {
 public:
  using Key = std::int64_t;
  using Value = std::int64_t;

  explicit TRbMap(std::size_t pool_capacity, bool semantic_descent = false)
      : capacity_(pool_capacity),
        semantic_(semantic_descent),
        pool_(std::make_unique<Node[]>(pool_capacity)) {}

  /// Insert (or revive a lazily-deleted key). Returns false if the key was
  /// already present.
  template <typename TxT>
  bool insert(TxT& tx, Key key, Value value) {
    Node* parent = nullptr;
    Node* cur = root_.get(tx);
    bool went_left = false;
    while (cur != nullptr) {
      const Key ck = cur->key.get(tx);  // structural: always a plain read
      if (key == ck) {
        if (cur->present.get(tx)) return false;
        cur->present.set(tx, 1);
        cur->value.set(tx, value);
        return true;
      }
      parent = cur;
      went_left = key < ck;
      cur = went_left ? cur->left.get(tx) : cur->right.get(tx);
    }

    Node* z = allocate(key, value);
    z->parent.set(tx, parent);
    if (parent == nullptr) {
      root_.set(tx, z);
    } else if (went_left) {
      parent->left.set(tx, z);
    } else {
      parent->right.set(tx, z);
    }
    insert_fixup(tx, z);
    return true;
  }

  template <typename TxT>
  std::optional<Value> find(TxT& tx, Key key) {
    Node* n = descend(tx, key);
    if (n == nullptr || !n->present.get(tx)) return std::nullopt;
    return n->value.get(tx);
  }

  template <typename TxT>
  bool contains(TxT& tx, Key key) { return find(tx, key).has_value(); }

  /// Overwrite the value of an existing key; returns false if absent.
  template <typename TxT>
  bool update(TxT& tx, Key key, Value value) {
    Node* n = descend(tx, key);
    if (n == nullptr || !n->present.get(tx)) return false;
    n->value.set(tx, value);
    return true;
  }

  /// Lazy removal; returns false if absent.
  template <typename TxT>
  bool erase(TxT& tx, Key key) {
    Node* n = descend(tx, key);
    if (n == nullptr || !n->present.get(tx)) return false;
    n->present.set(tx, 0);
    return true;
  }

  /// Node handle access for workloads that pin a record and then operate
  /// on its fields (Vacation reads/updates reservation attributes).
  template <typename TxT>
  TVar<Value>* find_slot(TxT& tx, Key key) {
    Node* n = descend(tx, key);
    if (n == nullptr || !n->present.get(tx)) return nullptr;
    return &n->value;
  }

  // -- Non-transactional helpers (setup / verification) ----------------------

  std::size_t unsafe_count() const { return unsafe_count(root_.unsafe_get()); }

  /// Checks BST order + red-black invariants; returns black height, or -1
  /// on violation. For tests.
  int unsafe_validate() const {
    bool ok = true;
    const int bh = check(root_.unsafe_get(), nullptr, nullptr, ok);
    if (root_.unsafe_get() != nullptr &&
        root_.unsafe_get()->color.unsafe_get() != kBlack) {
      ok = false;
    }
    return ok ? bh : -1;
  }

  std::size_t pool_used() const {
    return next_.load(std::memory_order_acquire);
  }

 private:
  static constexpr std::int64_t kRed = 1;
  static constexpr std::int64_t kBlack = 0;

  struct Node {
    TVar<Key> key;
    TVar<Value> value;
    TVar<Node*> left{nullptr};
    TVar<Node*> right{nullptr};
    TVar<Node*> parent{nullptr};
    TVar<std::int64_t> color{kRed};
    TVar<std::int64_t> present{1};
  };

  Node* allocate(Key key, Value value) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_acq_rel);
    assert(i < capacity_ && "TRbMap node pool exhausted");
    Node* n = &pool_[i];
    n->key.unsafe_set(key);
    n->value.unsafe_set(value);
    n->left.unsafe_set(nullptr);
    n->right.unsafe_set(nullptr);
    n->parent.unsafe_set(nullptr);
    n->color.unsafe_set(kRed);
    n->present.unsafe_set(1);
    return n;
  }

  template <typename TxT>
  Node* descend(TxT& tx, Key key) {
    Node* cur = root_.get(tx);
    if (semantic_) {
      while (cur != nullptr) {
        if (cur->key.eq(tx, key)) return cur;          // TM_EQ
        cur = cur->key.gt(tx, key) ? cur->left.get(tx)  // TM_GT
                                   : cur->right.get(tx);
      }
      return nullptr;
    }
    while (cur != nullptr) {
      const Key ck = cur->key.get(tx);
      if (key == ck) return cur;
      cur = key < ck ? cur->left.get(tx) : cur->right.get(tx);
    }
    return nullptr;
  }

  template <typename TxT>
  void rotate_left(TxT& tx, Node* x) {
    Node* y = x->right.get(tx);
    Node* yl = y->left.get(tx);
    x->right.set(tx, yl);
    if (yl != nullptr) yl->parent.set(tx, x);
    Node* xp = x->parent.get(tx);
    y->parent.set(tx, xp);
    if (xp == nullptr) {
      root_.set(tx, y);
    } else if (xp->left.get(tx) == x) {
      xp->left.set(tx, y);
    } else {
      xp->right.set(tx, y);
    }
    y->left.set(tx, x);
    x->parent.set(tx, y);
  }

  template <typename TxT>
  void rotate_right(TxT& tx, Node* x) {
    Node* y = x->left.get(tx);
    Node* yr = y->right.get(tx);
    x->left.set(tx, yr);
    if (yr != nullptr) yr->parent.set(tx, x);
    Node* xp = x->parent.get(tx);
    y->parent.set(tx, xp);
    if (xp == nullptr) {
      root_.set(tx, y);
    } else if (xp->right.get(tx) == x) {
      xp->right.set(tx, y);
    } else {
      xp->left.set(tx, y);
    }
    y->right.set(tx, x);
    x->parent.set(tx, y);
  }

  template <typename TxT>
  void insert_fixup(TxT& tx, Node* z) {
    while (true) {
      Node* p = z->parent.get(tx);
      if (p == nullptr || p->color.get(tx) == kBlack) break;
      Node* g = p->parent.get(tx);  // exists: p is red, so not the root
      if (g->left.get(tx) == p) {
        Node* uncle = g->right.get(tx);
        if (uncle != nullptr && uncle->color.get(tx) == kRed) {
          p->color.set(tx, kBlack);
          uncle->color.set(tx, kBlack);
          g->color.set(tx, kRed);
          z = g;
        } else {
          if (p->right.get(tx) == z) {
            z = p;
            rotate_left(tx, z);
            p = z->parent.get(tx);
            g = p->parent.get(tx);
          }
          p->color.set(tx, kBlack);
          g->color.set(tx, kRed);
          rotate_right(tx, g);
        }
      } else {
        Node* uncle = g->left.get(tx);
        if (uncle != nullptr && uncle->color.get(tx) == kRed) {
          p->color.set(tx, kBlack);
          uncle->color.set(tx, kBlack);
          g->color.set(tx, kRed);
          z = g;
        } else {
          if (p->left.get(tx) == z) {
            z = p;
            rotate_right(tx, z);
            p = z->parent.get(tx);
            g = p->parent.get(tx);
          }
          p->color.set(tx, kBlack);
          g->color.set(tx, kRed);
          rotate_left(tx, g);
        }
      }
    }
    Node* r = root_.get(tx);
    if (r->color.get(tx) != kBlack) r->color.set(tx, kBlack);
  }

  std::size_t unsafe_count(const Node* n) const {
    if (n == nullptr) return 0;
    return (n->present.unsafe_get() ? 1 : 0) +
           unsafe_count(n->left.unsafe_get()) +
           unsafe_count(n->right.unsafe_get());
  }

  int check(const Node* n, const Key* lo, const Key* hi, bool& ok) const {
    if (n == nullptr) return 1;
    const Key k = n->key.unsafe_get();
    if ((lo != nullptr && k <= *lo) || (hi != nullptr && k >= *hi)) ok = false;
    const bool red = n->color.unsafe_get() == kRed;
    const Node* l = n->left.unsafe_get();
    const Node* r = n->right.unsafe_get();
    if (red) {
      if ((l != nullptr && l->color.unsafe_get() == kRed) ||
          (r != nullptr && r->color.unsafe_get() == kRed)) {
        ok = false;  // red node with red child
      }
    }
    const int bl = check(l, lo, &k, ok);
    const int br = check(r, &k, hi, ok);
    if (bl != br) ok = false;  // unequal black heights
    return bl + (red ? 0 : 1);
  }

  std::size_t capacity_;
  bool semantic_;
  std::unique_ptr<Node[]> pool_;
  std::atomic<std::size_t> next_{0};
  TVar<Node*> root_{nullptr};
};

}  // namespace semstm
