// Transactional software cache — the paper's LRU-Cache micro benchmark.
//
// An m × n grid: m cache lines of n buckets each; a bucket holds a tag, a
// hit-frequency counter and a data word. Lookups scan the line comparing
// tags; a hit bumps the frequency (TM_INC); a miss on set() evicts the
// least-frequently-used bucket of the line (frequency comparisons are
// address–address TM compares in semantic mode — the transformation that
// turns 93% of the benchmark's reads into cmp operations, Table 3).
#pragma once

#include <cstdint>
#include <optional>

#include "containers/tarray.hpp"

namespace semstm {

class TLruCache {
 public:
  using Key = std::int64_t;
  using Value = std::int64_t;

  TLruCache(std::size_t lines, std::size_t buckets_per_line,
            bool use_semantics)
      : lines_(lines),
        buckets_(buckets_per_line),
        semantic_(use_semantics),
        tags_(lines * buckets_per_line, kEmptyTag),
        freqs_(lines * buckets_per_line, 0),
        data_(lines * buckets_per_line, 0) {}

  /// Lookup `key`; on a hit bumps its frequency and returns the data.
  template <typename TxT>
  std::optional<Value> lookup(TxT& tx, Key key) {
    const std::size_t base = line_of(key) * buckets_;
    for (std::size_t j = 0; j < buckets_; ++j) {
      if (tag_is(tx, base + j, key)) {
        bump(tx, base + j);
        return data_[base + j].get(tx);
      }
    }
    return std::nullopt;
  }

  /// Insert or update `key`, evicting the line's least-frequently-used
  /// bucket on a miss.
  template <typename TxT>
  void set(TxT& tx, Key key, Value value) {
    const std::size_t base = line_of(key) * buckets_;
    for (std::size_t j = 0; j < buckets_; ++j) {
      if (tag_is(tx, base + j, key)) {
        data_[base + j].set(tx, value);
        bump(tx, base + j);
        return;
      }
    }
    // Miss: find the victim with minimum frequency. In semantic mode each
    // pairwise comparison is an address–address TM_LT.
    std::size_t victim = base;
    for (std::size_t j = 1; j < buckets_; ++j) {
      const bool smaller =
          semantic_ ? freqs_[base + j].lt(tx, freqs_[victim])
                    : freqs_[base + j].get(tx) < freqs_[victim].get(tx);
      if (smaller) victim = base + j;
    }
    tags_[victim].set(tx, key);
    data_[victim].set(tx, value);
    freqs_[victim].set(tx, 1);
  }

  std::size_t lines() const noexcept { return lines_; }
  std::size_t buckets_per_line() const noexcept { return buckets_; }

  /// Non-transactional occupancy (verification only).
  std::size_t unsafe_occupied() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < lines_ * buckets_; ++i) {
      if (tags_[i].unsafe_get() != kEmptyTag) ++n;
    }
    return n;
  }

 private:
  static constexpr Key kEmptyTag = INT64_MIN;

  std::size_t line_of(Key key) const noexcept {
    auto h = static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ULL;
    return static_cast<std::size_t>(h >> 32) % lines_;
  }

  template <typename TxT>
  bool tag_is(TxT& tx, std::size_t i, Key key) {
    return semantic_ ? tags_[i].eq(tx, key) : tags_[i].get(tx) == key;
  }

  template <typename TxT>
  void bump(TxT& tx, std::size_t i) {
    if (semantic_) {
      freqs_[i].add(tx, 1);  // TM_INC
    } else {
      freqs_[i].set(tx, freqs_[i].get(tx) + 1);
    }
  }

  std::size_t lines_;
  std::size_t buckets_;
  bool semantic_;
  TArray<Key> tags_;
  TArray<std::int64_t> freqs_;
  TArray<Value> data_;
};

}  // namespace semstm
