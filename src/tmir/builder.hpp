// Fluent construction of tmir functions (the role of gimplification).
#pragma once

#include <cassert>
#include <utility>

#include "tmir/analysis/verify.hpp"
#include "tmir/ir.hpp"

namespace semstm::tmir {

class Builder {
 public:
  explicit Builder(std::string name, std::uint32_t num_args,
                   std::uint32_t num_locals) {
    f_.name = std::move(name);
    f_.num_args = num_args;
    f_.num_locals = num_locals;
    f_.blocks.emplace_back();  // entry block
  }

  /// Create a new (empty) block; returns its id.
  std::uint32_t new_block() {
    f_.blocks.emplace_back();
    return static_cast<std::uint32_t>(f_.blocks.size() - 1);
  }

  void set_block(std::uint32_t b) {
    assert(b < f_.blocks.size());
    cur_ = b;
  }
  std::uint32_t cur_block() const noexcept { return cur_; }

  // -- Value producers -------------------------------------------------------

  std::int32_t konst(word_t v) { return emit_val({.op = Op::kConst, .imm = v}); }
  std::int32_t arg(std::uint32_t i) {
    assert(i < f_.num_args);
    return emit_val({.op = Op::kArg, .imm = i});
  }
  std::int32_t load_local(std::uint32_t slot) {
    assert(slot < f_.num_locals);
    return emit_val({.op = Op::kLoadLocal, .imm = slot});
  }
  std::int32_t add(std::int32_t a, std::int32_t b) {
    return emit_val({.op = Op::kAdd, .a = a, .b = b});
  }
  std::int32_t sub(std::int32_t a, std::int32_t b) {
    return emit_val({.op = Op::kSub, .a = a, .b = b});
  }
  std::int32_t mul(std::int32_t a, std::int32_t b) {
    return emit_val({.op = Op::kMul, .a = a, .b = b});
  }
  std::int32_t band(std::int32_t a, std::int32_t b) {
    return emit_val({.op = Op::kAnd, .a = a, .b = b});
  }
  std::int32_t cmp(Rel rel, std::int32_t a, std::int32_t b) {
    return emit_val({.op = Op::kCmp, .rel = rel, .a = a, .b = b});
  }
  /// Transactional load through an address temp (a holds a tword*).
  std::int32_t tm_load(std::int32_t addr) {
    return emit_val({.op = Op::kTmLoad, .a = addr});
  }

  // -- Effects ---------------------------------------------------------------

  void store_local(std::uint32_t slot, std::int32_t v) {
    emit({.op = Op::kStoreLocal, .a = v, .imm = slot});
  }
  void tm_store(std::int32_t addr, std::int32_t v) {
    emit({.op = Op::kTmStore, .a = addr, .b = v});
  }

  // -- Terminators -----------------------------------------------------------

  void br(std::uint32_t target) { emit({.op = Op::kBr, .imm = target}); }
  void cbr(std::int32_t cond, std::uint32_t then_b, std::uint32_t else_b) {
    emit({.op = Op::kCbr,
          .a = cond,
          .b = static_cast<std::int32_t>(else_b),
          .imm = then_b});
  }
  void ret(std::int32_t v) { emit({.op = Op::kRet, .a = v}); }

  /// Hand back the finished function. In Debug builds the structural
  /// verifier runs first and aborts with located diagnostics on malformed
  /// IR — a Builder bug, not a user error. Tests that construct malformed
  /// IR on purpose use take(), which skips the check.
  Function finish() {
    debug_verify(f_, "at Builder::finish()");
    return take();
  }

  Function take() { return std::move(f_); }

 private:
  std::int32_t emit_val(Instr i) {
    i.dst = static_cast<std::int32_t>(f_.num_temps++);
    emit(i);
    return i.dst;
  }
  void emit(const Instr& i) { f_.blocks[cur_].code.push_back(i); }

  Function f_;
  std::uint32_t cur_ = 0;
};

}  // namespace semstm::tmir
