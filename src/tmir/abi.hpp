// The extended TM ABI of the paper's Table 2.
//
// GCC lowers statements in a _transaction_atomic block to libitm ABI
// calls; the paper adds three entry points for the semantic constructs.
// Here the ABI is the seam between the tmir interpreter and the semstm
// algorithms: non-semantic algorithms implement the S-calls by delegating
// to the classical read/write handlers (exactly libitm's behaviour, and
// the paper's "NOrec Modified-GCC" configuration), semantic algorithms
// (S-NOrec) handle them natively.
//
// Each entry point is templated on the descriptor type: instantiated with
// Tx it is the type-erased ABI (one virtual call per barrier, the shape of
// a real libitm dispatch table); instantiated with a concrete core the
// barrier inlines into the interpreter loop (DESIGN.md §4.12).
#pragma once

#include "core/tx.hpp"

namespace semstm::tmir::abi {

/// _ITM_RU8: classical transactional read.
template <typename TxT>
word_t itm_read(TxT& tx, const tword* addr) {
  return tx.read(addr);
}

/// _ITM_WU8: classical transactional write.
template <typename TxT>
void itm_write(TxT& tx, tword* addr, word_t v) {
  tx.write(addr, v);
}

/// _ITM_S1R: address–value semantic read (conditional).
template <typename TxT>
bool itm_s1r(TxT& tx, const tword* addr, Rel rel, word_t operand) {
  return tx.cmp(addr, rel, operand);
}

/// _ITM_S2R: address–address semantic read (conditional).
template <typename TxT>
bool itm_s2r(TxT& tx, const tword* a, Rel rel, const tword* b) {
  return tx.cmp2(a, rel, b);
}

/// _ITM_SW: semantic write (deferred increment).
template <typename TxT>
void itm_sw(TxT& tx, tword* addr, word_t delta) {
  tx.inc(addr, delta);
}

}  // namespace semstm::tmir::abi
