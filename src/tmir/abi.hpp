// The extended TM ABI of the paper's Table 2.
//
// GCC lowers statements in a _transaction_atomic block to libitm ABI
// calls; the paper adds three entry points for the semantic constructs.
// Here the ABI is the seam between the tmir interpreter and the semstm
// algorithms: non-semantic algorithms implement the S-calls by delegating
// to the classical read/write handlers (exactly libitm's behaviour, and
// the paper's "NOrec Modified-GCC" configuration), semantic algorithms
// (S-NOrec) handle them natively.
#pragma once

#include "core/tx.hpp"

namespace semstm::tmir::abi {

/// _ITM_RU8: classical transactional read.
inline word_t itm_read(Tx& tx, const tword* addr) { return tx.read(addr); }

/// _ITM_WU8: classical transactional write.
inline void itm_write(Tx& tx, tword* addr, word_t v) { tx.write(addr, v); }

/// _ITM_S1R: address–value semantic read (conditional).
inline bool itm_s1r(Tx& tx, const tword* addr, Rel rel, word_t operand) {
  return tx.cmp(addr, rel, operand);
}

/// _ITM_S2R: address–address semantic read (conditional).
inline bool itm_s2r(Tx& tx, const tword* a, Rel rel, const tword* b) {
  return tx.cmp2(a, rel, b);
}

/// _ITM_SW: semantic write (deferred increment).
inline void itm_sw(Tx& tx, tword* addr, word_t delta) { tx.inc(addr, delta); }

}  // namespace semstm::tmir::abi
