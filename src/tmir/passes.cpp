#include "tmir/passes.hpp"

#include <vector>

#include "tmir/analysis/cfg.hpp"
#include "tmir/analysis/liveness.hpp"
#include "tmir/analysis/verify.hpp"

namespace semstm::tmir {

namespace {

/// Mirror a relation across operand swap: (a REL b) == (b mirror(REL) a).
Rel mirror(Rel r) noexcept {
  switch (r) {
    case Rel::EQ:  return Rel::EQ;
    case Rel::NEQ: return Rel::NEQ;
    case Rel::SLT: return Rel::SGT;
    case Rel::SLE: return Rel::SGE;
    case Rel::SGT: return Rel::SLT;
    case Rel::SGE: return Rel::SLE;
    case Rel::ULT: return Rel::UGT;
    case Rel::ULE: return Rel::UGE;
    case Rel::UGT: return Rel::ULT;
    case Rel::UGE: return Rel::ULE;
  }
  return r;
}

/// Map temp -> its defining instruction (temps are single-assignment).
std::vector<Instr*> def_map(Function& f) {
  std::vector<Instr*> defs(f.num_temps, nullptr);
  for (Block& b : f.blocks) {
    for (Instr& i : b.code) {
      if (!i.dead && produces_value(i.op) && i.dst >= 0) {
        defs[static_cast<std::size_t>(i.dst)] = &i;
      }
    }
  }
  return defs;
}

bool is_literal_or_local(const Instr* def) noexcept {
  return def != nullptr && (def->op == Op::kConst || def->op == Op::kArg ||
                            def->op == Op::kLoadLocal);
}

bool defined_in_block(const Block& b, const Instr* def) noexcept {
  return def >= b.code.data() && def < b.code.data() + b.code.size();
}

/// Any live TM write strictly between `from` and `to` in block `b`? With
/// no alias analysis every TM write may hit the origin load's address, so
/// a rewrite across one would observe a different value than the original
/// expression did — the legality condition pass_tm_lint re-checks.
bool tm_write_between(const Instr* from, const Instr* to) {
  for (const Instr* i = from + 1; i < to; ++i) {
    if (i->dead) continue;
    if (i->op == Op::kTmStore || i->op == Op::kTmInc) return true;
  }
  return false;
}

}  // namespace

MarkStats pass_tm_mark(Function& f) {
  MarkStats stats;
  auto defs = def_map(f);

  for (Block& b : f.blocks) {
    // Which temps feed a conditional branch in this block?
    std::vector<bool> feeds_cbr(f.num_temps, false);
    for (const Instr& i : b.code) {
      if (i.op == Op::kCbr && i.a >= 0) {
        feeds_cbr[static_cast<std::size_t>(i.a)] = true;
      }
    }

    for (Instr& i : b.code) {
      if (i.dead) continue;

      // -- cmp pattern: conditional over direct TM load origins ------------
      if (i.op == Op::kCmp && i.dst >= 0 &&
          feeds_cbr[static_cast<std::size_t>(i.dst)]) {
        Instr* da = i.a >= 0 ? defs[static_cast<std::size_t>(i.a)] : nullptr;
        Instr* db = i.b >= 0 ? defs[static_cast<std::size_t>(i.b)] : nullptr;
        const bool a_load = da != nullptr && da->op == Op::kTmLoad &&
                            defined_in_block(b, da);
        const bool b_load = db != nullptr && db->op == Op::kTmLoad &&
                            defined_in_block(b, db);
        const bool a_clear = a_load && !tm_write_between(da, &i);
        const bool b_clear = b_load && !tm_write_between(db, &i);
        if ((a_load && !a_clear) || (b_load && !b_clear)) {
          ++stats.skipped_clobbered;
          continue;
        }
        if (a_clear && b_clear) {
          // _ITM_S2R: both origins are direct transactional accesses.
          i.op = Op::kTmCmp2;
          i.src_a = i.a;  // origin load temps, for the lint's re-proof
          i.src_b = i.b;
          i.a = da->a;    // address temps
          i.b = db->a;
          ++stats.s2r;
        } else if (a_clear && is_literal_or_local(db)) {
          i.op = Op::kTmCmp1;
          i.src_a = i.a;
          i.a = da->a;
          ++stats.s1r;
        } else if (b_clear && is_literal_or_local(da)) {
          // (value REL load) == (load mirror(REL) value).
          const std::int32_t value_temp = i.a;
          i.op = Op::kTmCmp1;
          i.rel = mirror(i.rel);
          i.src_a = i.b;
          i.a = db->a;       // address temp of the load
          i.b = value_temp;  // literal/local operand
          ++stats.s1r;
        }
        continue;
      }

      // -- inc pattern: TM_STORE(addr, TM_LOAD(addr) +/- delta) ------------
      if (i.op == Op::kTmStore && i.b >= 0) {
        Instr* dv = defs[static_cast<std::size_t>(i.b)];
        if (dv == nullptr || !defined_in_block(b, dv)) continue;
        if (dv->op != Op::kAdd && dv->op != Op::kSub) continue;
        Instr* dx = dv->a >= 0 ? defs[static_cast<std::size_t>(dv->a)] : nullptr;
        Instr* dy = dv->b >= 0 ? defs[static_cast<std::size_t>(dv->b)] : nullptr;

        // load on the left: store(addr, load(addr) +/- delta)
        if (dx != nullptr && dx->op == Op::kTmLoad && dx->a == i.a &&
            defined_in_block(b, dx) && is_literal_or_local(dy)) {
          if (tm_write_between(dx, &i)) {
            ++stats.skipped_clobbered;
            continue;
          }
          i.src_a = dv->a;  // origin load temp
          i.src_b = i.b;    // arithmetic temp
          i.op = Op::kTmInc;
          i.b = dv->b;                            // delta temp
          i.imm = dv->op == Op::kSub ? 1 : 0;     // 1 = negate delta
          ++stats.sw;
          continue;
        }
        // load on the right (add only: c - load is not an increment)
        if (dv->op == Op::kAdd && dy != nullptr && dy->op == Op::kTmLoad &&
            dy->a == i.a && defined_in_block(b, dy) &&
            is_literal_or_local(dx)) {
          if (tm_write_between(dy, &i)) {
            ++stats.skipped_clobbered;
            continue;
          }
          i.src_a = dv->b;
          i.src_b = i.b;
          i.op = Op::kTmInc;
          i.b = dv->a;
          i.imm = 0;
          ++stats.sw;
          continue;
        }
      }
    }
  }
  f.marked = true;
  debug_verify(f, "after pass_tm_mark");
  return stats;
}

OptimizeStats pass_tm_optimize(Function& f) {
  OptimizeStats stats;
  const Cfg cfg(f);

  auto kill = [&](Instr& i) {
    i.dead = true;
    if (i.op == Op::kTmLoad) {
      ++stats.removed_tm_loads;
    } else {
      ++stats.removed_other;
    }
  };

  // Unreachable blocks never execute; their code (terminators included)
  // is summarily dead and excluded from the liveness problem below.
  for (std::size_t b = 0; b < f.blocks.size(); ++b) {
    if (cfg.reachable(b)) continue;
    for (Instr& i : f.blocks[b].code) {
      if (!i.dead) kill(i);
    }
  }

  // Liveness-driven sweep, to fixpoint: removing an instruction erases
  // its uses, which can turn an upstream definition in another block
  // dead — block-summary liveness must then be recomputed. Within one
  // block a single backward walk already cascades (the running live set
  // never gains the uses of a killed instruction).
  bool changed = true;
  while (changed) {
    changed = false;
    const Liveness lv = compute_liveness(f, cfg);
    for (const std::uint32_t b : cfg.rpo()) {
      Block& blk = f.blocks[b];
      BitSet live = lv.sets.out[b];
      for (auto it = blk.code.rbegin(); it != blk.code.rend(); ++it) {
        Instr& i = *it;
        if (i.dead) continue;
        // is_pure excludes the kTmCmp builtins, honouring the contract
        // that tm_optimize never deletes programmer-visible semantics.
        const bool dead_def = is_pure(i.op) && i.dst >= 0 &&
                              !live.test(static_cast<std::size_t>(i.dst));
        const bool dead_store =
            i.op == Op::kStoreLocal &&
            !live.test(f.num_temps + static_cast<std::size_t>(i.imm));
        if (dead_def || dead_store) {
          kill(i);
          changed = true;
          continue;  // its uses never enter the live set
        }
        detail::step_backward(i, f.num_temps, live);
      }
    }
  }
  debug_verify(f, "after pass_tm_optimize");
  return stats;
}

OptimizeStats pass_tm_optimize_zero_uses(Function& f) {
  OptimizeStats stats;
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<std::uint32_t> uses(f.num_temps, 0);
    for (const Block& b : f.blocks) {
      for (const Instr& i : b.code) {
        if (i.dead) continue;
        for_each_use(i, [&](std::int32_t t) {
          if (t >= 0) ++uses[static_cast<std::size_t>(t)];
        });
      }
    }
    for (Block& b : f.blocks) {
      for (Instr& i : b.code) {
        if (i.dead || !produces_value(i.op) || i.dst < 0) continue;
        if (uses[static_cast<std::size_t>(i.dst)] != 0) continue;
        // Never-live definition. TmCmp builtins are pure too, but removing
        // them is left to tm_mark's caller (they carry the semantics the
        // programmer asked for); everything else pure goes.
        if (i.op == Op::kTmCmp1 || i.op == Op::kTmCmp2) continue;
        i.dead = true;
        changed = true;
        if (i.op == Op::kTmLoad) {
          ++stats.removed_tm_loads;
        } else {
          ++stats.removed_other;
        }
      }
    }
  }
  return stats;
}

}  // namespace semstm::tmir
