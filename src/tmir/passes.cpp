#include "tmir/passes.hpp"

#include <vector>

namespace semstm::tmir {

namespace {

/// Mirror a relation across operand swap: (a REL b) == (b mirror(REL) a).
Rel mirror(Rel r) noexcept {
  switch (r) {
    case Rel::EQ:  return Rel::EQ;
    case Rel::NEQ: return Rel::NEQ;
    case Rel::SLT: return Rel::SGT;
    case Rel::SLE: return Rel::SGE;
    case Rel::SGT: return Rel::SLT;
    case Rel::SGE: return Rel::SLE;
    case Rel::ULT: return Rel::UGT;
    case Rel::ULE: return Rel::UGE;
    case Rel::UGT: return Rel::ULT;
    case Rel::UGE: return Rel::ULE;
  }
  return r;
}

/// Map temp -> its defining instruction (temps are single-assignment).
std::vector<Instr*> def_map(Function& f) {
  std::vector<Instr*> defs(f.num_temps, nullptr);
  for (Block& b : f.blocks) {
    for (Instr& i : b.code) {
      if (!i.dead && produces_value(i.op) && i.dst >= 0) {
        defs[static_cast<std::size_t>(i.dst)] = &i;
      }
    }
  }
  return defs;
}

bool is_literal_or_local(const Instr* def) noexcept {
  return def != nullptr && (def->op == Op::kConst || def->op == Op::kArg ||
                            def->op == Op::kLoadLocal);
}

bool defined_in_block(const Block& b, const Instr* def) noexcept {
  return def >= b.code.data() && def < b.code.data() + b.code.size();
}

/// Visit every temp operand of an instruction (excluding block ids).
template <typename Fn>
void for_each_use(const Instr& i, Fn&& fn) {
  switch (i.op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kAnd:
    case Op::kCmp:
    case Op::kTmStore:
    case Op::kTmCmp1:
    case Op::kTmCmp2:
    case Op::kTmInc:
      fn(i.a);
      fn(i.b);
      break;
    case Op::kTmLoad:
    case Op::kStoreLocal:
    case Op::kCbr:  // b is a block id, not a temp
      fn(i.a);
      break;
    case Op::kRet:
      if (i.a >= 0) fn(i.a);
      break;
    default:
      break;  // kConst/kArg/kLoadLocal/kBr: no temp uses
  }
}

}  // namespace

MarkStats pass_tm_mark(Function& f) {
  MarkStats stats;
  auto defs = def_map(f);

  for (Block& b : f.blocks) {
    // Which temps feed a conditional branch in this block?
    std::vector<bool> feeds_cbr(f.num_temps, false);
    for (const Instr& i : b.code) {
      if (i.op == Op::kCbr && i.a >= 0) {
        feeds_cbr[static_cast<std::size_t>(i.a)] = true;
      }
    }

    for (Instr& i : b.code) {
      if (i.dead) continue;

      // -- cmp pattern: conditional over direct TM load origins ------------
      if (i.op == Op::kCmp && i.dst >= 0 &&
          feeds_cbr[static_cast<std::size_t>(i.dst)]) {
        Instr* da = i.a >= 0 ? defs[static_cast<std::size_t>(i.a)] : nullptr;
        Instr* db = i.b >= 0 ? defs[static_cast<std::size_t>(i.b)] : nullptr;
        const bool a_load = da != nullptr && da->op == Op::kTmLoad &&
                            defined_in_block(b, da);
        const bool b_load = db != nullptr && db->op == Op::kTmLoad &&
                            defined_in_block(b, db);
        if (a_load && b_load) {
          // _ITM_S2R: both origins are direct transactional accesses.
          i.op = Op::kTmCmp2;
          i.a = da->a;  // address temps
          i.b = db->a;
          ++stats.s2r;
        } else if (a_load && is_literal_or_local(db)) {
          i.op = Op::kTmCmp1;
          i.a = da->a;
          ++stats.s1r;
        } else if (b_load && is_literal_or_local(da)) {
          // (value REL load) == (load mirror(REL) value).
          const std::int32_t value_temp = i.a;
          i.op = Op::kTmCmp1;
          i.rel = mirror(i.rel);
          i.a = db->a;       // address temp of the load
          i.b = value_temp;  // literal/local operand
          ++stats.s1r;
        }
        continue;
      }

      // -- inc pattern: TM_STORE(addr, TM_LOAD(addr) +/- delta) ------------
      if (i.op == Op::kTmStore && i.b >= 0) {
        Instr* dv = defs[static_cast<std::size_t>(i.b)];
        if (dv == nullptr || !defined_in_block(b, dv)) continue;
        if (dv->op != Op::kAdd && dv->op != Op::kSub) continue;
        Instr* dx = dv->a >= 0 ? defs[static_cast<std::size_t>(dv->a)] : nullptr;
        Instr* dy = dv->b >= 0 ? defs[static_cast<std::size_t>(dv->b)] : nullptr;

        // load on the left: store(addr, load(addr) +/- delta)
        if (dx != nullptr && dx->op == Op::kTmLoad && dx->a == i.a &&
            is_literal_or_local(dy)) {
          i.op = Op::kTmInc;
          i.b = dv->b;                            // delta temp
          i.imm = dv->op == Op::kSub ? 1 : 0;     // 1 = negate delta
          ++stats.sw;
          continue;
        }
        // load on the right (add only: c - load is not an increment)
        if (dv->op == Op::kAdd && dy != nullptr && dy->op == Op::kTmLoad &&
            dy->a == i.a && is_literal_or_local(dx)) {
          i.op = Op::kTmInc;
          i.b = dv->a;
          i.imm = 0;
          ++stats.sw;
          continue;
        }
      }
    }
  }
  return stats;
}

OptimizeStats pass_tm_optimize(Function& f) {
  OptimizeStats stats;
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<std::uint32_t> uses(f.num_temps, 0);
    for (const Block& b : f.blocks) {
      for (const Instr& i : b.code) {
        if (i.dead) continue;
        for_each_use(i, [&](std::int32_t t) {
          if (t >= 0) ++uses[static_cast<std::size_t>(t)];
        });
      }
    }
    for (Block& b : f.blocks) {
      for (Instr& i : b.code) {
        if (i.dead || !produces_value(i.op) || i.dst < 0) continue;
        if (uses[static_cast<std::size_t>(i.dst)] != 0) continue;
        // Never-live definition. TmCmp builtins are pure too, but removing
        // them is left to tm_mark's caller (they carry the semantics the
        // programmer asked for); everything else pure goes.
        if (i.op == Op::kTmCmp1 || i.op == Op::kTmCmp2) continue;
        i.dead = true;
        changed = true;
        if (i.op == Op::kTmLoad) {
          ++stats.removed_tm_loads;
        } else {
          ++stats.removed_other;
        }
      }
    }
  }
  return stats;
}

}  // namespace semstm::tmir
