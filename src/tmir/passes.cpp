#include "tmir/passes.hpp"

#include <optional>
#include <utility>
#include <vector>

#include "tmir/analysis/alias.hpp"
#include "tmir/analysis/cfg.hpp"
#include "tmir/analysis/liveness.hpp"
#include "tmir/analysis/verify.hpp"

namespace semstm::tmir {

namespace {

/// Mirror a relation across operand swap: (a REL b) == (b mirror(REL) a).
Rel mirror(Rel r) noexcept {
  switch (r) {
    case Rel::EQ:  return Rel::EQ;
    case Rel::NEQ: return Rel::NEQ;
    case Rel::SLT: return Rel::SGT;
    case Rel::SLE: return Rel::SGE;
    case Rel::SGT: return Rel::SLT;
    case Rel::SGE: return Rel::SLE;
    case Rel::ULT: return Rel::UGT;
    case Rel::ULE: return Rel::UGE;
    case Rel::UGT: return Rel::ULT;
    case Rel::UGE: return Rel::ULE;
  }
  return r;
}

/// Map temp -> its defining instruction (temps are single-assignment).
std::vector<Instr*> def_map(Function& f) {
  std::vector<Instr*> defs(f.num_temps, nullptr);
  for (Block& b : f.blocks) {
    for (Instr& i : b.code) {
      if (!i.dead && produces_value(i.op) && i.dst >= 0) {
        defs[static_cast<std::size_t>(i.dst)] = &i;
      }
    }
  }
  return defs;
}

bool is_literal_or_local(const Instr* def) noexcept {
  return def != nullptr && (def->op == Op::kConst || def->op == Op::kArg ||
                            def->op == Op::kLoadLocal);
}

bool defined_in_block(const Block& b, const Instr* def) noexcept {
  return def >= b.code.data() && def < b.code.data() + b.code.size();
}

/// Any live TM write strictly between `from` and `to` that could hit the
/// address in temp `addr`? Without alias analysis every TM write may hit
/// it; with it, provably no-alias writes are crossed (and reported via
/// `recovered` so MarkStats::recovered_noalias can count the rewrites the
/// PR 5 pass refused). The legality condition pass_tm_lint re-checks.
bool tm_write_between(const AliasAnalysis* aa, const Instr* from,
                      const Instr* to, std::int32_t addr, bool* recovered) {
  if (aa == nullptr) {
    for (const Instr* i = from + 1; i < to; ++i) {
      if (i->dead) continue;
      if (i->op == Op::kTmStore || i->op == Op::kTmInc) return true;
    }
    return false;
  }
  bool saw_write = false;
  if (aa->clobbers_between(from, to, addr, &saw_write)) return true;
  if (saw_write && recovered != nullptr) *recovered = true;
  return false;
}

}  // namespace

MarkStats pass_tm_mark(Function& f, const MarkOptions& opts) {
  MarkStats stats;
  auto defs = def_map(f);
  std::optional<Cfg> cfg;
  std::optional<AliasAnalysis> alias;
  if (opts.use_alias) {
    cfg.emplace(f);
    alias.emplace(f, *cfg);
  }
  const AliasAnalysis* aa = alias ? &*alias : nullptr;

  // Stores that pass_tm_rbe recorded as witnesses — a kRbeStoreLoad husk's
  // forwarded value, or the overwriter a kRbeDeadStore husk points at —
  // must stay plain stores: the lint re-proves those eliminations by
  // finding a kTmStore with exactly the recorded (address, value) operands,
  // and an inc rewrite would erase the value temp from the instruction.
  std::vector<std::pair<std::int32_t, std::int32_t>> witness_stores;
  for (const Block& b : f.blocks) {
    for (const Instr& i : b.code) {
      if (i.dead &&
          (i.elim == Elim::kRbeStoreLoad || i.elim == Elim::kRbeDeadStore)) {
        witness_stores.emplace_back(i.src_b, i.src_a);  // (address, value)
      }
    }
  }
  const auto is_witness_store = [&](const Instr& s) {
    for (const auto& [addr, value] : witness_stores) {
      if (s.a == addr && s.b == value) return true;
    }
    return false;
  };

  for (Block& b : f.blocks) {
    // Which temps feed a conditional branch in this block?
    std::vector<bool> feeds_cbr(f.num_temps, false);
    for (const Instr& i : b.code) {
      if (i.op == Op::kCbr && i.a >= 0) {
        feeds_cbr[static_cast<std::size_t>(i.a)] = true;
      }
    }

    for (Instr& i : b.code) {
      if (i.dead) continue;

      // -- cmp pattern: conditional over direct TM load origins ------------
      if (i.op == Op::kCmp && i.dst >= 0 &&
          feeds_cbr[static_cast<std::size_t>(i.dst)]) {
        Instr* da = i.a >= 0 ? defs[static_cast<std::size_t>(i.a)] : nullptr;
        Instr* db = i.b >= 0 ? defs[static_cast<std::size_t>(i.b)] : nullptr;
        const bool a_load = da != nullptr && da->op == Op::kTmLoad &&
                            defined_in_block(b, da);
        const bool b_load = db != nullptr && db->op == Op::kTmLoad &&
                            defined_in_block(b, db);
        bool recovered = false;
        const bool a_clear =
            a_load && !tm_write_between(aa, da, &i, da->a, &recovered);
        const bool b_clear =
            b_load && !tm_write_between(aa, db, &i, db->a, &recovered);
        if ((a_load && !a_clear) || (b_load && !b_clear)) {
          ++stats.skipped_clobbered;
          continue;
        }
        if (a_clear && b_clear) {
          // _ITM_S2R: both origins are direct transactional accesses.
          i.op = Op::kTmCmp2;
          i.src_a = i.a;  // origin load temps, for the lint's re-proof
          i.src_b = i.b;
          i.a = da->a;    // address temps
          i.b = db->a;
          ++stats.s2r;
          stats.recovered_noalias += recovered ? 1 : 0;
        } else if (a_clear && is_literal_or_local(db)) {
          i.op = Op::kTmCmp1;
          i.src_a = i.a;
          i.a = da->a;
          ++stats.s1r;
          stats.recovered_noalias += recovered ? 1 : 0;
        } else if (b_clear && is_literal_or_local(da)) {
          // (value REL load) == (load mirror(REL) value).
          const std::int32_t value_temp = i.a;
          i.op = Op::kTmCmp1;
          i.rel = mirror(i.rel);
          i.src_a = i.b;
          i.a = db->a;       // address temp of the load
          i.b = value_temp;  // literal/local operand
          ++stats.s1r;
          stats.recovered_noalias += recovered ? 1 : 0;
        }
        continue;
      }

      // -- inc pattern: TM_STORE(addr, TM_LOAD(addr) +/- delta) ------------
      if (i.op == Op::kTmStore && i.b >= 0) {
        if (is_witness_store(i)) continue;  // pinned by an RBE provenance link
        Instr* dv = defs[static_cast<std::size_t>(i.b)];
        if (dv == nullptr || !defined_in_block(b, dv)) continue;
        if (dv->op != Op::kAdd && dv->op != Op::kSub) continue;
        Instr* dx = dv->a >= 0 ? defs[static_cast<std::size_t>(dv->a)] : nullptr;
        Instr* dy = dv->b >= 0 ? defs[static_cast<std::size_t>(dv->b)] : nullptr;

        // The load's address and the store's must refer to the same word:
        // same temp, or proven must-alias (RBE load merging can leave the
        // surviving load holding a different but equal-valued address temp).
        const auto same_addr = [&](const Instr* load) {
          return load->a == i.a ||
                 (aa != nullptr && aa->must_alias(load->a, i.a));
        };
        // load on the left: store(addr, load(addr) +/- delta)
        if (dx != nullptr && dx->op == Op::kTmLoad && same_addr(dx) &&
            defined_in_block(b, dx) && is_literal_or_local(dy)) {
          bool recovered = false;
          if (tm_write_between(aa, dx, &i, i.a, &recovered)) {
            ++stats.skipped_clobbered;
            continue;
          }
          i.src_a = dv->a;  // origin load temp
          i.src_b = i.b;    // arithmetic temp
          i.op = Op::kTmInc;
          i.b = dv->b;                            // delta temp
          i.imm = dv->op == Op::kSub ? 1 : 0;     // 1 = negate delta
          ++stats.sw;
          stats.recovered_noalias += recovered ? 1 : 0;
          continue;
        }
        // load on the right (add only: c - load is not an increment)
        if (dv->op == Op::kAdd && dy != nullptr && dy->op == Op::kTmLoad &&
            same_addr(dy) && defined_in_block(b, dy) &&
            is_literal_or_local(dx)) {
          bool recovered = false;
          if (tm_write_between(aa, dy, &i, i.a, &recovered)) {
            ++stats.skipped_clobbered;
            continue;
          }
          i.src_a = dv->b;
          i.src_b = i.b;
          i.op = Op::kTmInc;
          i.b = dv->a;
          i.imm = 0;
          ++stats.sw;
          stats.recovered_noalias += recovered ? 1 : 0;
          continue;
        }
      }
    }
  }
  f.marked = true;
  debug_verify(f, "after pass_tm_mark");
  return stats;
}

RbeStats pass_tm_rbe(Function& f) {
  RbeStats stats;
  const Cfg cfg(f);
  const AliasAnalysis aa(f, cfg);

  // Rewrite every use of `from` — in live and dead instructions alike, so
  // husks stay verifier-consistent — to `to`. Provenance links are *not*
  // uses and stay untouched: they name recorded origins.
  const auto replace_uses = [&](std::int32_t from, std::int32_t to) {
    for (Block& blk : f.blocks) {
      for (Instr& i : blk.code) {
        for_each_use_ref(i, [&](std::int32_t& t) {
          if (t == from) t = to;
        });
      }
    }
  };

  for (Block& blk : f.blocks) {
    auto& code = blk.code;
    for (std::size_t idx = 0; idx < code.size(); ++idx) {
      Instr& i = code[idx];
      if (i.dead) continue;

      // -- forwarding: a load of a must-alias address reuses the earlier
      //    temp; scanning stops at the first possibly-aliasing write -----
      if (i.op == Op::kTmLoad) {
        for (std::size_t k = idx; k-- > 0;) {
          const Instr& p = code[k];
          if (p.dead) continue;
          if (p.op == Op::kTmStore) {
            const AliasResult r = aa.alias(p.a, i.a);
            if (r == AliasResult::kMustAlias) {
              replace_uses(i.dst, p.b);
              i.dead = true;
              i.elim = Elim::kRbeStoreLoad;
              i.src_a = p.b;  // the value the load would have observed
              i.src_b = p.a;  // the witness store's address temp
              ++stats.store_load_forwarded;
              break;
            }
            if (r == AliasResult::kMayAlias) break;
          } else if (p.op == Op::kTmInc) {
            // An increment both writes the word and holds its result in no
            // temp: any non-disjoint inc ends the scan.
            if (aa.alias(p.a, i.a) != AliasResult::kNoAlias) break;
          } else if (p.op == Op::kTmLoad) {
            if (aa.must_alias(p.a, i.a)) {
              replace_uses(i.dst, p.dst);
              i.dead = true;
              i.elim = Elim::kRbeLoadLoad;
              i.src_a = p.dst;
              ++stats.load_load_forwarded;
              break;
            }
            // Loads never clobber: keep scanning past may-alias loads.
          }
        }
        continue;
      }

      // -- dead stores: an earlier must-alias store whose value cannot be
      //    read before this store overwrites it ------------------------
      if (i.op == Op::kTmStore) {
        for (std::size_t k = idx; k-- > 0;) {
          Instr& p = code[k];
          if (p.dead || p.op != Op::kTmStore) continue;
          if (!aa.must_alias(p.a, i.a)) continue;
          bool read_between = false;
          for (std::size_t m = k + 1; m < idx && !read_between; ++m) {
            const Instr& q = code[m];
            if (q.dead) continue;
            switch (q.op) {
              case Op::kTmLoad:
              case Op::kTmCmp1:
              case Op::kTmInc:
                read_between = aa.alias(q.a, p.a) != AliasResult::kNoAlias;
                break;
              case Op::kTmCmp2:
                read_between = aa.alias(q.a, p.a) != AliasResult::kNoAlias ||
                               aa.alias(q.b, p.a) != AliasResult::kNoAlias;
                break;
              default:
                break;
            }
          }
          if (read_between) continue;
          p.dead = true;
          p.elim = Elim::kRbeDeadStore;
          p.src_a = i.b;  // the overwriting store's value temp ...
          p.src_b = i.a;  // ... and address temp, for the lint re-proof
          ++stats.dead_stores;
        }
        continue;
      }
    }
  }
  debug_verify(f, "after pass_tm_rbe");
  return stats;
}

OptimizeStats pass_tm_optimize(Function& f) {
  OptimizeStats stats;
  const Cfg cfg(f);

  auto kill = [&](Instr& i) {
    i.dead = true;
    i.elim = Elim::kDeadCode;
    if (i.op == Op::kTmLoad) {
      ++stats.removed_tm_loads;
    } else {
      ++stats.removed_other;
    }
  };

  // Unreachable blocks never execute; their code (terminators included)
  // is summarily dead and excluded from the liveness problem below.
  for (std::size_t b = 0; b < f.blocks.size(); ++b) {
    if (cfg.reachable(b)) continue;
    for (Instr& i : f.blocks[b].code) {
      if (!i.dead) kill(i);
    }
  }

  // Liveness-driven sweep, to fixpoint: removing an instruction erases
  // its uses, which can turn an upstream definition in another block
  // dead — block-summary liveness must then be recomputed. Within one
  // block a single backward walk already cascades (the running live set
  // never gains the uses of a killed instruction).
  bool changed = true;
  while (changed) {
    changed = false;
    const Liveness lv = compute_liveness(f, cfg);
    for (const std::uint32_t b : cfg.rpo()) {
      Block& blk = f.blocks[b];
      BitSet live = lv.sets.out[b];
      for (auto it = blk.code.rbegin(); it != blk.code.rend(); ++it) {
        Instr& i = *it;
        if (i.dead) continue;
        // is_pure excludes the kTmCmp builtins, honouring the contract
        // that tm_optimize never deletes programmer-visible semantics.
        const bool dead_def = is_pure(i.op) && i.dst >= 0 &&
                              !live.test(static_cast<std::size_t>(i.dst));
        const bool dead_store =
            i.op == Op::kStoreLocal &&
            !live.test(f.num_temps + static_cast<std::size_t>(i.imm));
        if (dead_def || dead_store) {
          kill(i);
          changed = true;
          continue;  // its uses never enter the live set
        }
        detail::step_backward(i, f.num_temps, live);
      }
    }
  }
  debug_verify(f, "after pass_tm_optimize");
  return stats;
}

OptimizeStats pass_tm_optimize_zero_uses(Function& f) {
  OptimizeStats stats;
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<std::uint32_t> uses(f.num_temps, 0);
    for (const Block& b : f.blocks) {
      for (const Instr& i : b.code) {
        if (i.dead) continue;
        for_each_use(i, [&](std::int32_t t) {
          if (t >= 0) ++uses[static_cast<std::size_t>(t)];
        });
      }
    }
    for (Block& b : f.blocks) {
      for (Instr& i : b.code) {
        if (i.dead || !produces_value(i.op) || i.dst < 0) continue;
        if (uses[static_cast<std::size_t>(i.dst)] != 0) continue;
        // Never-live definition. TmCmp builtins are pure too, but removing
        // them is left to tm_mark's caller (they carry the semantics the
        // programmer asked for); everything else pure goes.
        if (i.op == Op::kTmCmp1 || i.op == Op::kTmCmp2) continue;
        i.dead = true;
        i.elim = Elim::kDeadCode;
        changed = true;
        if (i.op == Op::kTmLoad) {
          ++stats.removed_tm_loads;
        } else {
          ++stats.removed_other;
        }
      }
    }
  }
  return stats;
}

}  // namespace semstm::tmir
