#include "tmir/interp.hpp"

namespace semstm::tmir {

// The interpreter body lives in the header as a template over the
// descriptor type; this TU provides the one instantiation every
// virtual-dispatch caller shares.
template word_t execute<Tx>(Tx&, const Function&, const word_t*, std::size_t,
                            const InterpOptions&);

}  // namespace semstm::tmir
