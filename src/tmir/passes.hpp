// The paper's two GIMPLE passes (§6), reimplemented over tmir.
#pragma once

#include "tmir/ir.hpp"

namespace semstm::tmir {

struct MarkStats {
  std::size_t s1r = 0;  ///< cmps rewritten to _ITM_S1R (address–value)
  std::size_t s2r = 0;  ///< cmps rewritten to _ITM_S2R (address–address)
  std::size_t sw = 0;   ///< stores rewritten to _ITM_SW (increment)
};

/// tm_mark extension: detect the cmp and inc code patterns.
///
///  - cmp: a kCmp feeding a conditional branch whose operand origins are
///    one (or two) direct TM loads, the other a literal or local — rewrite
///    to kTmCmp1 / kTmCmp2. The feeding TM loads are left in place (they
///    become never-live and are removed by tm_optimize), matching the
///    paper's two-pass structure.
///  - inc: a kTmStore whose stored value originates from `TM_LOAD(same
///    address) +/- (literal | local)` — rewrite to kTmInc.
///
/// Pattern matching is local (origins must be in the same block as the
/// use), mirroring the paper's "we look for simple expression patterns
/// that usually reside in the same basic block — no complex alias
/// analysis".
MarkStats pass_tm_mark(Function& f);

struct OptimizeStats {
  std::size_t removed_tm_loads = 0;
  std::size_t removed_other = 0;
};

/// tm_optimize: remove TM reads (and other pure statements) that define
/// never-live temporaries — notably the read half of every rewritten
/// increment. Conservative: only statements whose result is provably
/// unused (single-assignment temps with zero uses) are removed.
OptimizeStats pass_tm_optimize(Function& f);

}  // namespace semstm::tmir
