// The paper's two GIMPLE passes (§6), reimplemented over tmir.
#pragma once

#include "tmir/ir.hpp"

namespace semstm::tmir {

struct MarkStats {
  std::size_t s1r = 0;  ///< cmps rewritten to _ITM_S1R (address–value)
  std::size_t s2r = 0;  ///< cmps rewritten to _ITM_S2R (address–address)
  std::size_t sw = 0;   ///< stores rewritten to _ITM_SW (increment)
  /// Candidate patterns skipped because a possibly-aliasing TM write sat
  /// between the origin load and the use — rewriting those would change
  /// which value the comparison/increment observes (the legality condition
  /// pass_tm_lint re-proves for every rewrite that *was* made).
  std::size_t skipped_clobbered = 0;
  /// Rewrites that *did* cross one or more intervening TM writes, each
  /// proven no-alias by AliasAnalysis — exactly the patterns the PR 5
  /// no-alias-analysis pass counted under skipped_clobbered. Always zero
  /// with MarkOptions::use_alias off.
  std::size_t recovered_noalias = 0;
};

struct MarkOptions {
  /// Consult AliasAnalysis so rewrites survive across provably
  /// non-aliasing TM writes. Off reproduces the PR 5 baseline exactly:
  /// any intervening TM write refuses the rewrite.
  bool use_alias = true;
};

/// tm_mark extension: detect the cmp and inc code patterns.
///
///  - cmp: a kCmp feeding a conditional branch whose operand origins are
///    one (or two) direct TM loads, the other a literal or local — rewrite
///    to kTmCmp1 / kTmCmp2. The feeding TM loads are left in place (they
///    become never-live and are removed by tm_optimize), matching the
///    paper's two-pass structure.
///  - inc: a kTmStore whose stored value originates from `TM_LOAD(same
///    address) +/- (literal | local)` — rewrite to kTmInc.
///
/// Pattern matching is local (origins must be in the same block as the
/// use), mirroring the paper's "we look for simple expression patterns
/// that usually reside in the same basic block". A rewrite is refused when
/// a TM write that may alias the origin address intervenes between the
/// origin load and its use; with the address-provenance analysis
/// (analysis/alias.hpp, the default) provably non-aliasing writes no
/// longer block the rewrite, and the inc pattern accepts a load whose
/// address must-alias the store's rather than requiring the same temp.
///
/// Each rewritten instruction records its origin temps in src_a/src_b and
/// the function is flagged `marked`; pass_tm_lint independently re-proves
/// every recorded rewrite from reaching definitions and its own alias
/// analysis.
MarkStats pass_tm_mark(Function& f, const MarkOptions& opts = {});

struct RbeStats {
  std::size_t load_load_forwarded = 0;   ///< kTmLoad reused an earlier load
  std::size_t store_load_forwarded = 0;  ///< kTmLoad reused a stored value
  std::size_t dead_stores = 0;           ///< kTmStore overwritten unread
  std::size_t total() const noexcept {
    return load_load_forwarded + store_load_forwarded + dead_stores;
  }
};

/// Redundant-barrier elimination, block-local, driven by AliasAnalysis:
///   - a kTmLoad whose address must-aliases an earlier same-block load or
///     store with no possibly-aliasing TM write in between is forwarded:
///     its uses are rewritten to the prior temp and the load dies
///     (Elim::kRbeLoadLoad / kRbeStoreLoad, replacement temp in src_a,
///     witness store's address temp in src_b);
///   - a kTmStore overwritten by a later same-block must-alias store with
///     no possibly-aliasing TM read in between dies
///     (Elim::kRbeDeadStore, overwriting store's value/address temps in
///     src_a/src_b).
/// Store elimination relies on the transaction making buffered or
/// lock-isolated writes: no other transaction can observe the window
/// between the two stores, and an abort rolls both back. Local-slot
/// traffic is never a TM clobber (the shadow array is disjoint from TM
/// heap words by construction). Run before pass_tm_mark so forwarding is
/// decided on raw loads/stores; every elimination carries provenance that
/// pass_tm_lint re-proves.
RbeStats pass_tm_rbe(Function& f);

struct OptimizeStats {
  std::size_t removed_tm_loads = 0;
  std::size_t removed_other = 0;
};

/// tm_optimize: delete statements whose results are dead — notably the
/// read half of every rewritten increment and compare. Built on the
/// backward liveness analysis (tmir/analysis/liveness.hpp) over temps and
/// local slots, iterated to fixpoint:
///   - pure value producers (is_pure) defining a non-live temp die;
///   - kStoreLocal to a slot that is not live-out of the store dies;
///   - every instruction in an unreachable block dies.
/// kTmCmp1/kTmCmp2 are pure but never removed here: they carry the
/// semantics the programmer asked for, and dropping them is the caller's
/// decision. TM loads are the headline removal (the paper's read-set
/// reduction); they are counted separately.
OptimizeStats pass_tm_optimize(Function& f);

/// The pre-analysis heuristic this repo shipped first: iteratively remove
/// single-assignment definitions with zero syntactic uses. Kept as the
/// differential baseline — tests assert the liveness pass removes at
/// least as many dead TM loads on every kernel with identical execution.
OptimizeStats pass_tm_optimize_zero_uses(Function& f);

}  // namespace semstm::tmir
