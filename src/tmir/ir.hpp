// tmir: a miniature GIMPLE-like intermediate representation.
//
// This is the substrate standing in for the paper's GCC integration (§6).
// Like GIMPLE after gimplification, code is three-operand statements over
// single-assignment temporaries, organised into basic blocks with explicit
// conditional branches; transactional accesses are explicit TM_LOAD /
// TM_STORE statements (what GCC's tm_mark pass emits for every shared
// access inside a _transaction_atomic block).
//
// The two optimization passes of the paper operate on this IR:
//   pass_tm_mark:     detect cmp / inc patterns, rewrite them to the
//                     semantic builtins (_ITM_S1R / _ITM_S2R / _ITM_SW).
//   pass_tm_optimize: remove TM loads feeding only never-live temporaries
//                     (the read half of a rewritten increment, and any
//                     other dead transactional read).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/semantics.hpp"
#include "core/word.hpp"

namespace semstm::tmir {

enum class Op : std::uint8_t {
  // Value producers (dst = ...)
  kConst,       // dst = imm
  kArg,         // dst = args[imm]
  kLoadLocal,   // dst = locals[imm]
  kAdd,         // dst = a + b
  kSub,         // dst = a - b
  kMul,         // dst = a * b
  kAnd,         // dst = a & b
  kCmp,         // dst = (a REL b)
  kTmLoad,      // dst = TM_READ(*(tword*)a)
  // Effects
  kStoreLocal,  // locals[imm] = a
  kTmStore,     // TM_WRITE(*(tword*)a, b)
  // Terminators
  kBr,          // goto blocks[imm]
  kCbr,         // if (a) goto blocks[imm] else goto blocks[b]
  kRet,         // return a
  // Semantic builtins (only produced by pass_tm_mark)
  kTmCmp1,      // dst = _ITM_S1R: cmp(*(tword*)a REL b-value)
  kTmCmp2,      // dst = _ITM_S2R: cmp(*(tword*)a REL *(tword*)b)
  kTmInc,       // _ITM_SW: inc(*(tword*)a, delta b)
};

constexpr bool produces_value(Op op) noexcept {
  switch (op) {
    case Op::kConst:
    case Op::kArg:
    case Op::kLoadLocal:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kAnd:
    case Op::kCmp:
    case Op::kTmLoad:
    case Op::kTmCmp1:
    case Op::kTmCmp2:
      return true;
    default:
      return false;
  }
}

constexpr bool is_terminator(Op op) noexcept {
  return op == Op::kBr || op == Op::kCbr || op == Op::kRet;
}

/// One three-operand statement. `dst` and the operands `a`/`b` are temp
/// ids; `imm` carries constants / local slots / branch targets.
struct Instr {
  Op op = Op::kConst;
  Rel rel = Rel::EQ;  // kCmp / kTmCmp*
  std::int32_t dst = -1;
  std::int32_t a = -1;
  std::int32_t b = -1;
  word_t imm = 0;
  bool dead = false;  ///< marked by passes; skipped by the interpreter
};

struct Block {
  std::vector<Instr> code;
};

/// A function: blocks[0] is the entry. Temps are single-assignment by
/// construction (the Builder enforces it); locals are mutable slots.
struct Function {
  std::string name;
  std::vector<Block> blocks;
  std::uint32_t num_temps = 0;
  std::uint32_t num_locals = 0;
  std::uint32_t num_args = 0;

  /// Count of live (non-dead) instructions with the given op.
  std::size_t count_op(Op op) const noexcept {
    std::size_t n = 0;
    for (const Block& b : blocks) {
      for (const Instr& i : b.code) {
        if (!i.dead && i.op == op) ++n;
      }
    }
    return n;
  }
};

}  // namespace semstm::tmir
