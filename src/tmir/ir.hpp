// tmir: a miniature GIMPLE-like intermediate representation.
//
// This is the substrate standing in for the paper's GCC integration (§6).
// Like GIMPLE after gimplification, code is three-operand statements over
// single-assignment temporaries, organised into basic blocks with explicit
// conditional branches; transactional accesses are explicit TM_LOAD /
// TM_STORE statements (what GCC's tm_mark pass emits for every shared
// access inside a _transaction_atomic block).
//
// The two optimization passes of the paper operate on this IR:
//   pass_tm_mark:     detect cmp / inc patterns, rewrite them to the
//                     semantic builtins (_ITM_S1R / _ITM_S2R / _ITM_SW).
//   pass_tm_optimize: remove TM loads feeding only never-live temporaries
//                     (the read half of a rewritten increment, and any
//                     other dead transactional read).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/semantics.hpp"
#include "core/word.hpp"

namespace semstm::tmir {

enum class Op : std::uint8_t {
  // Value producers (dst = ...)
  kConst,       // dst = imm
  kArg,         // dst = args[imm]
  kLoadLocal,   // dst = locals[imm]
  kAdd,         // dst = a + b
  kSub,         // dst = a - b
  kMul,         // dst = a * b
  kAnd,         // dst = a & b
  kCmp,         // dst = (a REL b)
  kTmLoad,      // dst = TM_READ(*(tword*)a)
  // Effects
  kStoreLocal,  // locals[imm] = a
  kTmStore,     // TM_WRITE(*(tword*)a, b)
  // Terminators
  kBr,          // goto blocks[imm]
  kCbr,         // if (a) goto blocks[imm] else goto blocks[b]
  kRet,         // return a
  // Semantic builtins (only produced by pass_tm_mark)
  kTmCmp1,      // dst = _ITM_S1R: cmp(*(tword*)a REL b-value)
  kTmCmp2,      // dst = _ITM_S2R: cmp(*(tword*)a REL *(tword*)b)
  kTmInc,       // _ITM_SW: inc(*(tword*)a, delta b)
};

constexpr bool produces_value(Op op) noexcept {
  switch (op) {
    case Op::kConst:
    case Op::kArg:
    case Op::kLoadLocal:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kAnd:
    case Op::kCmp:
    case Op::kTmLoad:
    case Op::kTmCmp1:
    case Op::kTmCmp2:
      return true;
    default:
      return false;
  }
}

constexpr bool is_terminator(Op op) noexcept {
  return op == Op::kBr || op == Op::kCbr || op == Op::kRet;
}

/// Why a dead instruction was killed. Dead instructions stay in the IR as
/// husks (positions frozen for provenance), so the kill reason must be
/// recorded alongside: pass_tm_lint re-proves each redundant-barrier
/// elimination from its Elim kind + src links, and a dead TM barrier with a
/// forged or missing justification is a lint error, not a silent trust.
enum class Elim : std::uint8_t {
  kNone = 0,       ///< not killed, or killed by hand-written test IR
  kDeadCode,       ///< tm_optimize: definition never live / block unreachable
  kRbeLoadLoad,    ///< rbe: load forwarded from an earlier must-alias load
  kRbeStoreLoad,   ///< rbe: load forwarded from an earlier must-alias store
  kRbeDeadStore,   ///< rbe: store overwritten before any possible read
};

/// One three-operand statement. `dst` and the operands `a`/`b` are temp
/// ids; `imm` carries constants / local slots / branch targets.
///
/// `src_a`/`src_b` are *provenance links*, recorded by pass_tm_mark on the
/// semantic builtins it emits: the temp ids of the original TM-load result
/// (src_a; both loads for kTmCmp2 via src_a/src_b) and, for kTmInc, the
/// arithmetic temp that computed the stored value (src_b). pass_tm_rbe
/// records them too: the replacement temp (src_a) and, where the witness is
/// a store, its address temp (src_b). They are not operands — the
/// interpreter never reads them and tm_optimize is free to kill the
/// instructions they name — but pass_tm_lint uses them to independently
/// re-prove that each rewrite or elimination was legal, and pass_verify
/// checks the links themselves are structurally sane (in range, defined,
/// dominating).
struct Instr {
  Op op = Op::kConst;
  Rel rel = Rel::EQ;  // kCmp / kTmCmp*
  std::int32_t dst = -1;
  std::int32_t a = -1;
  std::int32_t b = -1;
  word_t imm = 0;
  bool dead = false;  ///< marked by passes; skipped by the interpreter
  std::int32_t src_a = -1;  ///< provenance: origin TM-load temp
  std::int32_t src_b = -1;  ///< provenance: second load (S2R) / arith (SW)
  Elim elim = Elim::kNone;  ///< why `dead` was set (kNone while live)
};

struct Block {
  std::vector<Instr> code;
};

/// Live/dead instruction counts for one opcode. Passes mark instructions
/// dead rather than erasing them, so meaningful statistics after
/// tm_optimize need both sides of the split — `count_op` alone silently
/// drifted from MarkStats once loads started dying.
struct OpCount {
  std::size_t live = 0;
  std::size_t dead = 0;
  std::size_t total() const noexcept { return live + dead; }
};

/// A function: blocks[0] is the entry. Temps are single-assignment by
/// construction (the Builder enforces it); locals are mutable slots.
struct Function {
  std::string name;
  std::vector<Block> blocks;
  std::uint32_t num_temps = 0;
  std::uint32_t num_locals = 0;
  std::uint32_t num_args = 0;
  /// Set by pass_tm_mark: semantic builtins are only well-formed after the
  /// marking stage has run (pass_verify's staging rule).
  bool marked = false;

  /// Count of live (non-dead) instructions with the given op.
  std::size_t count_op(Op op) const noexcept { return count(op).live; }

  /// Live and dead counts for the given op.
  OpCount count(Op op) const noexcept {
    OpCount c;
    for (const Block& b : blocks) {
      for (const Instr& i : b.code) {
        if (i.op != op) continue;
        if (i.dead) {
          ++c.dead;
        } else {
          ++c.live;
        }
      }
    }
    return c;
  }
};

/// Visit every temp *operand* of an instruction as a mutable reference
/// (block ids, immediates and provenance links are not uses). The single
/// switch behind both `for_each_use` and pass_tm_rbe's operand rewriting,
/// so the notion of "use" cannot drift between reading and rewriting.
template <typename Fn>
void for_each_use_ref(Instr& i, Fn&& fn) {
  switch (i.op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kAnd:
    case Op::kCmp:
    case Op::kTmStore:
    case Op::kTmCmp1:
    case Op::kTmCmp2:
    case Op::kTmInc:
      fn(i.a);
      fn(i.b);
      break;
    case Op::kTmLoad:
    case Op::kStoreLocal:
    case Op::kCbr:  // b is a block id, not a temp
      fn(i.a);
      break;
    case Op::kRet:
      if (i.a >= 0) fn(i.a);
      break;
    default:
      break;  // kConst/kArg/kLoadLocal/kBr: no temp uses
  }
}

/// Visit every temp *operand* of an instruction by value. Shared by the
/// passes, the analyses and the verifier.
template <typename Fn>
void for_each_use(const Instr& i, Fn&& fn) {
  // Safe const_cast: the by-value adapter never writes through the refs.
  for_each_use_ref(const_cast<Instr&>(i),
                   [&](std::int32_t& t) { fn(static_cast<std::int32_t>(t)); });
}

/// True for ops whose only effect is defining `dst` — the set tm_optimize
/// may delete when the definition is dead. The semantic compares are pure
/// too, but they carry programmer-requested semantics and are excluded by
/// the pass itself, not here.
constexpr bool is_pure(Op op) noexcept {
  switch (op) {
    case Op::kConst:
    case Op::kArg:
    case Op::kLoadLocal:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kAnd:
    case Op::kCmp:
    case Op::kTmLoad:
      return true;
    default:
      return false;
  }
}

}  // namespace semstm::tmir
