// Pre-built tmir kernels: the transactional code regions of the Figure 2
// benchmarks, expressed in IR as a compiler front end would emit them —
// plain TM loads/stores and ordinary compares/branches. Running
// pass_tm_mark + pass_tm_optimize over them produces the semantic
// (_ITM_S1R/S2R/SW) forms, exactly the paper's GCC pipeline.
#pragma once

#include "tmir/ir.hpp"

namespace semstm::tmir {

/// Open-addressing probe (Algorithm 2).
/// args: [0]=state_base [1]=key_base [2]=mask [3]=start_index [4]=key
///       [5]=probe_limit
/// returns 1 if key found, 0 otherwise.
Function build_probe_kernel();

/// Insert: probe for the key or the first FREE cell; claim it.
/// args as probe. Returns 1 if inserted, 0 if already present / gave up.
Function build_insert_kernel();

/// Remove: probe for the key; tombstone it. Returns 1 if removed.
Function build_remove_kernel();

/// Vacation reservation check (Algorithm 4) over `candidates` records.
/// args: [0]=numfree_base [1]=price_base [2..2+candidates)=record ids.
/// Scans candidates (numFree > 0, price > max_price), then decrements the
/// chosen record's numFree. Returns the chosen id + 1, or 0 if none.
Function build_reserve_kernel(unsigned candidates);

/// Kmeans centre update (Algorithm 5) over a single centre record laid out
/// as [len, center[0] .. center[features-1]].
/// args: [0]=record_base, [1..1+features)=feature values.
/// Loads every field first (front-end load hoisting), then increments the
/// length and adds each feature into its cell, then re-reads the length
/// and returns it (the new length). The hoisted shape is the alias-analysis
/// showcase: every store crosses the other fields' accesses — provably
/// disjoint cells of one record — and the trailing re-read is a
/// store-to-load forwarding target.
Function build_center_update_kernel(unsigned features);

}  // namespace semstm::tmir
