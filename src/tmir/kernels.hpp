// Pre-built tmir kernels: the transactional code regions of the Figure 2
// benchmarks, expressed in IR as a compiler front end would emit them —
// plain TM loads/stores and ordinary compares/branches. Running
// pass_tm_mark + pass_tm_optimize over them produces the semantic
// (_ITM_S1R/S2R/SW) forms, exactly the paper's GCC pipeline.
#pragma once

#include "tmir/ir.hpp"

namespace semstm::tmir {

/// Open-addressing probe (Algorithm 2).
/// args: [0]=state_base [1]=key_base [2]=mask [3]=start_index [4]=key
///       [5]=probe_limit
/// returns 1 if key found, 0 otherwise.
Function build_probe_kernel();

/// Insert: probe for the key or the first FREE cell; claim it.
/// args as probe. Returns 1 if inserted, 0 if already present / gave up.
Function build_insert_kernel();

/// Remove: probe for the key; tombstone it. Returns 1 if removed.
Function build_remove_kernel();

/// Vacation reservation check (Algorithm 4) over `candidates` records.
/// args: [0]=numfree_base [1]=price_base [2..2+candidates)=record ids.
/// Scans candidates (numFree > 0, price > max_price), then decrements the
/// chosen record's numFree. Returns the chosen id + 1, or 0 if none.
Function build_reserve_kernel(unsigned candidates);

/// Kmeans centre update (Algorithm 5):
/// args: [0]=len_addr [1]=center_base [2]=feature_base(non-TM constants
/// passed as immediate array base is not needed — features come as args)
/// Simplified: [0]=len_addr, [1]=center_base, [2..2+features)=feature
/// values. Increments the length counter and adds each feature into the
/// corresponding centre cell.
Function build_center_update_kernel(unsigned features);

}  // namespace semstm::tmir
