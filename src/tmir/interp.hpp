// The tmir interpreter: executes a function as the body of a transaction,
// lowering IR statements to the (extended) TM ABI of abi.hpp — the role
// GCC-generated code plays at run time.
//
// `instrument_locals` reproduces GCC's conservatism: inside a
// _transaction_atomic block GCC speculates *every* read and write,
// including provably-private ones, "while RSTM speculates only addresses
// accessed using its transactional API" (paper §7.2). With the flag set,
// local-slot accesses also go through TM barriers, which is what makes
// the GCC curves of Figure 2 sit below the RSTM curves of Figure 1.
#pragma once

#include <cstddef>

#include "core/tx.hpp"
#include "tmir/ir.hpp"

namespace semstm::tmir {

struct InterpOptions {
  bool instrument_locals = false;
  /// Shadow storage for instrumented locals, provided by the caller and at
  /// least `Function::num_locals` words long. REQUIRED when
  /// instrument_locals is set: the transaction's write-set keeps pointers
  /// into it until commit, so it must outlive the whole atomically() call
  /// (declare it outside the transaction body). execute() re-initializes
  /// the slots on entry, so retries after aborts are self-cleaning.
  tword* local_shadow = nullptr;
  std::size_t max_steps = 1u << 22;  ///< runaway-loop guard
};

/// Execute `f` under transaction `tx`. Returns the kRet operand (0 if the
/// function returns nothing). Throws std::runtime_error on malformed IR.
word_t execute(Tx& tx, const Function& f, const word_t* args,
               std::size_t nargs, const InterpOptions& opts = {});

}  // namespace semstm::tmir
