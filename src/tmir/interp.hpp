// The tmir interpreter: executes a function as the body of a transaction,
// lowering IR statements to the (extended) TM ABI of abi.hpp — the role
// GCC-generated code plays at run time.
//
// `instrument_locals` reproduces GCC's conservatism: inside a
// _transaction_atomic block GCC speculates *every* read and write,
// including provably-private ones, "while RSTM speculates only addresses
// accessed using its transactional API" (paper §7.2). With the flag set,
// local-slot accesses also go through TM barriers, which is what makes
// the GCC curves of Figure 2 sit below the RSTM curves of Figure 1.
//
// execute() is templated on the descriptor type (DESIGN.md §4.12): with
// TxT = Tx every barrier is a virtual call (the pre-built instantiation in
// interp.cpp — the default for existing callers); with a concrete core
// the whole interpreter loop monomorphizes and the barriers inline.
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "core/tx.hpp"
#include "sched/yieldpoint.hpp"
#include "tmir/abi.hpp"
#include "tmir/ir.hpp"

namespace semstm::tmir {

/// Diagnose-and-die for out-of-range ids in the IR being executed.
/// Malformed IR reaching the interpreter is a pass/builder bug that
/// previously surfaced as out-of-bounds vector indexing (UB in release
/// builds, where the assert-free operator[] just reads garbage); fail
/// loudly in every build instead, matching the die_no_ctx convention.
/// pass_verify catches all of these ahead of time — run it.
[[noreturn]] inline void die_malformed(const char* fname, const char* what,
                                       long long id, long long limit) noexcept {
  std::fprintf(stderr,
               "semstm tmir: malformed IR in %s: %s %lld out of range [0,%lld)"
               " — run pass_verify on this function\n",
               fname, what, id, limit);
  std::abort();
}

/// Executed-TM-barrier counters, accumulated across every execute() call
/// that shares the struct (aborted attempts included — an aborted
/// transaction still paid for its barriers). The quantitative side of the
/// paper's instrumentation-shrinking story: micro_ops exports these per
/// kernel so barrier-count regressions gate CI, not just nanoseconds.
struct BarrierCounts {
  std::uint64_t tm_loads = 0;      ///< kTmLoad barriers executed
  std::uint64_t tm_stores = 0;     ///< kTmStore barriers executed
  std::uint64_t tm_cmps = 0;       ///< kTmCmp1 + kTmCmp2 semantic reads
  std::uint64_t tm_incs = 0;       ///< kTmInc semantic writes
  std::uint64_t local_loads = 0;   ///< instrumented kLoadLocal (GCC mode)
  std::uint64_t local_stores = 0;  ///< instrumented kStoreLocal (GCC mode)
  std::uint64_t total() const noexcept {
    return tm_loads + tm_stores + tm_cmps + tm_incs + local_loads +
           local_stores;
  }
};

struct InterpOptions {
  bool instrument_locals = false;
  /// When set, every executed TM barrier is tallied here.
  BarrierCounts* barriers = nullptr;
  /// Shadow storage for instrumented locals, provided by the caller and at
  /// least `Function::num_locals` words long. REQUIRED when
  /// instrument_locals is set: the transaction's write-set keeps pointers
  /// into it until commit, so it must outlive the whole atomically() call
  /// (declare it outside the transaction body). execute() re-initializes
  /// the slots on entry, so retries after aborts are self-cleaning.
  tword* local_shadow = nullptr;
  std::size_t max_steps = 1u << 22;  ///< runaway-loop guard
};

/// Execute `f` under transaction `tx`. Returns the kRet operand (0 if the
/// function returns nothing). Throws std::runtime_error on malformed IR.
template <typename TxT = Tx>
word_t execute(TxT& tx, const Function& f, const word_t* args,
               std::size_t nargs, const InterpOptions& opts = {}) {
  if (nargs != f.num_args) {
    throw std::runtime_error("tmir: argument count mismatch for " + f.name);
  }
  std::vector<word_t> temps(f.num_temps, 0);
  // Plain local slots (library mode) and TM-instrumented shadows (GCC
  // mode). The shadows are private to this activation, but routing them
  // through the barriers charges the instrumentation cost GCC pays. They
  // are caller-owned: the write-set points into them until commit.
  std::vector<word_t> locals(f.num_locals, 0);
  tword* local_shadow = opts.local_shadow;
  if (opts.instrument_locals && f.num_locals > 0) {
    if (local_shadow == nullptr) {
      throw std::runtime_error(
          "tmir: instrument_locals requires a caller-provided local_shadow "
          "that outlives the transaction");
    }
    for (std::uint32_t i = 0; i < f.num_locals; ++i) {
      local_shadow[i].store(0, std::memory_order_relaxed);
    }
  }

  std::size_t steps = 0;
  std::size_t block = 0;
  for (;;) {
    if (block >= f.blocks.size()) {
      throw std::runtime_error("tmir: branch out of range in " + f.name);
    }
    const Block& b = f.blocks[block];
    bool jumped = false;
    for (const Instr& i : b.code) {
      if (i.dead) continue;
      if (++steps > opts.max_steps) {
        throw std::runtime_error("tmir: step limit exceeded in " + f.name);
      }
      sched::tick(sched::Cost::kWork);  // interpretation overhead
      auto t = [&](std::int32_t id) -> word_t& {
        if (id < 0 || static_cast<std::uint32_t>(id) >= f.num_temps) {
          die_malformed(f.name.c_str(), "temp", id, f.num_temps);
        }
        return temps[static_cast<std::size_t>(id)];
      };
      auto slot = [&](word_t s) -> std::size_t {
        if (s >= f.num_locals) {
          die_malformed(f.name.c_str(), "local slot",
                        static_cast<long long>(s), f.num_locals);
        }
        return static_cast<std::size_t>(s);
      };
      switch (i.op) {
        case Op::kConst:
          t(i.dst) = i.imm;
          break;
        case Op::kArg:
          if (i.imm >= nargs) {
            die_malformed(f.name.c_str(), "arg index",
                          static_cast<long long>(i.imm),
                          static_cast<long long>(nargs));
          }
          t(i.dst) = args[i.imm];
          break;
        case Op::kLoadLocal:
          if (opts.instrument_locals) {
            if (opts.barriers != nullptr) ++opts.barriers->local_loads;
            t(i.dst) = abi::itm_read(tx, &local_shadow[slot(i.imm)]);
          } else {
            t(i.dst) = locals[slot(i.imm)];
          }
          break;
        case Op::kStoreLocal:
          if (opts.instrument_locals) {
            if (opts.barriers != nullptr) ++opts.barriers->local_stores;
            abi::itm_write(tx, &local_shadow[slot(i.imm)], t(i.a));
          } else {
            locals[slot(i.imm)] = t(i.a);
          }
          break;
        case Op::kAdd:
          t(i.dst) = t(i.a) + t(i.b);
          break;
        case Op::kSub:
          t(i.dst) = t(i.a) - t(i.b);
          break;
        case Op::kMul:
          t(i.dst) = t(i.a) * t(i.b);
          break;
        case Op::kAnd:
          t(i.dst) = t(i.a) & t(i.b);
          break;
        case Op::kCmp:
          t(i.dst) = eval(i.rel, t(i.a), t(i.b)) ? 1 : 0;
          break;
        case Op::kTmLoad:
          if (opts.barriers != nullptr) ++opts.barriers->tm_loads;
          t(i.dst) = abi::itm_read(tx, reinterpret_cast<const tword*>(t(i.a)));
          break;
        case Op::kTmStore:
          if (opts.barriers != nullptr) ++opts.barriers->tm_stores;
          abi::itm_write(tx, reinterpret_cast<tword*>(t(i.a)), t(i.b));
          break;
        case Op::kTmCmp1:
          if (opts.barriers != nullptr) ++opts.barriers->tm_cmps;
          t(i.dst) = abi::itm_s1r(tx, reinterpret_cast<const tword*>(t(i.a)),
                                  i.rel, t(i.b))
                         ? 1
                         : 0;
          break;
        case Op::kTmCmp2:
          if (opts.barriers != nullptr) ++opts.barriers->tm_cmps;
          t(i.dst) = abi::itm_s2r(tx, reinterpret_cast<const tword*>(t(i.a)),
                                  i.rel,
                                  reinterpret_cast<const tword*>(t(i.b)))
                         ? 1
                         : 0;
          break;
        case Op::kTmInc: {
          if (opts.barriers != nullptr) ++opts.barriers->tm_incs;
          const word_t delta = i.imm == 1 ? word_t{0} - t(i.b) : t(i.b);
          abi::itm_sw(tx, reinterpret_cast<tword*>(t(i.a)), delta);
          break;
        }
        case Op::kBr:
          block = static_cast<std::size_t>(i.imm);
          jumped = true;
          break;
        case Op::kCbr:
          block = t(i.a) != 0 ? static_cast<std::size_t>(i.imm)
                              : static_cast<std::size_t>(i.b);
          jumped = true;
          break;
        case Op::kRet:
          return i.a >= 0 ? t(i.a) : 0;
      }
      if (jumped) break;
    }
    if (!jumped) {
      throw std::runtime_error("tmir: block fell through in " + f.name);
    }
  }
}

/// The type-erased instantiation is pre-built in interp.cpp so existing
/// Tx-typed callers don't each re-instantiate the interpreter loop.
extern template word_t execute<Tx>(Tx&, const Function&, const word_t*,
                                   std::size_t, const InterpOptions&);

}  // namespace semstm::tmir
