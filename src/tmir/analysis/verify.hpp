// pass_verify: the structural IR verifier.
//
// A Function is well-formed when every rule below holds; pass_verify
// returns one located diagnostic per violation instead of asserting, so
// tools (tmir_lint) can print them all and tests can assert on specific
// rule ids. Rule catalogue (DESIGN.md §4.13):
//
//   missing-terminator    reachable block has no live terminator at its end
//   terminator-not-last   live instruction after a live terminator
//   branch-out-of-range   kBr/kCbr target >= blocks.size()
//   missing-dst           produces_value(op) but dst < 0
//   dst-on-void           !produces_value(op) but dst >= 0
//   missing-operand       required temp operand is -1 (per-op arity)
//   temp-out-of-range     dst or operand temp id outside [0, num_temps)
//   multiple-assignment   two instructions (live or dead) define one temp
//   undefined-temp        live use of a temp with no defining instruction
//   use-of-dead-def       live use of a temp whose only def is dead-marked
//   def-not-dominating    def does not dominate a live use (reachable code)
//   arg-out-of-range      kArg index >= num_args
//   local-out-of-range    kLoadLocal/kStoreLocal slot >= num_locals
//   semantic-before-mark  kTmCmp1/kTmCmp2/kTmInc in an unmarked function
//   provenance-out-of-range  src_a/src_b names a temp outside [0, num_temps)
//   provenance-undefined     src_a/src_b names a temp with no definition
//   provenance-not-dominating  linked def is not earlier-in-block /
//                            dominating (kRbeDeadStore husks may link
//                            later same-block defs: the forward witness)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tmir/ir.hpp"

namespace semstm::tmir {

struct Diagnostic {
  std::uint32_t block = 0;
  std::uint32_t instr = 0;   ///< index into blocks[block].code
  const char* rule = "";     ///< stable rule id from the catalogue above
  std::string message;
};

/// Render "function:block:instr: [rule] message".
std::string format_diagnostic(const Function& f, const Diagnostic& d);

/// Check every rule; empty result == well-formed.
std::vector<Diagnostic> pass_verify(const Function& f);

/// Verify and abort (printing every diagnostic) on malformed IR. Called
/// after every pass and from Builder::finish() in Debug builds; compiled
/// out under NDEBUG so Release pipelines pay nothing.
void verify_or_die(const Function& f, const char* when);

inline void debug_verify([[maybe_unused]] const Function& f,
                         [[maybe_unused]] const char* when) {
#ifndef NDEBUG
  verify_or_die(f, when);
#endif
}

}  // namespace semstm::tmir
