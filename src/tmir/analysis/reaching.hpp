// Forward reaching definitions over temps and local slots.
//
// Each live instruction that defines something (a value producer's dst, a
// kStoreLocal's slot) is a *definition site* with a dense id. The solver
// computes which sites reach each block entry; a linear re-walk then
// answers "which definitions reach this instruction". For temps the
// answer is single-element by SSA construction — which is precisely what
// pass_tm_lint exploits: if the recorded origin of a semantic rewrite is
// not THE reaching definition of that temp, the rewrite's claim is false.
#pragma once

#include <cstdint>
#include <vector>

#include "tmir/analysis/cfg.hpp"
#include "tmir/analysis/dataflow.hpp"

namespace semstm::tmir {

struct DefSite {
  std::uint32_t block = 0;
  std::uint32_t instr = 0;   ///< index into blocks[block].code
  std::int32_t temp = -1;    ///< defined temp, or -1
  std::int32_t local = -1;   ///< defined local slot, or -1
};

class ReachingDefs {
 public:
  explicit ReachingDefs(const Function& f, const Cfg& cfg) : f_(&f) {
    // Enumerate definition sites and group them by what they define.
    temp_sites_.assign(f.num_temps, {});
    local_sites_.assign(f.num_locals, {});
    for (std::uint32_t b = 0; b < f.blocks.size(); ++b) {
      const Block& blk = f.blocks[b];
      for (std::uint32_t n = 0; n < blk.code.size(); ++n) {
        const Instr& i = blk.code[n];
        if (i.dead) continue;
        DefSite site{b, n, -1, -1};
        if (produces_value(i.op) && i.dst >= 0 &&
            static_cast<std::uint32_t>(i.dst) < f.num_temps) {
          site.temp = i.dst;
          temp_sites_[static_cast<std::size_t>(i.dst)].push_back(
              static_cast<std::uint32_t>(sites_.size()));
        } else if (i.op == Op::kStoreLocal &&
                   i.imm < static_cast<word_t>(f.num_locals)) {
          site.local = static_cast<std::int32_t>(i.imm);
          local_sites_[static_cast<std::size_t>(i.imm)].push_back(
              static_cast<std::uint32_t>(sites_.size()));
        } else {
          continue;
        }
        sites_.push_back(site);
      }
    }

    const std::size_t nsites = sites_.size();
    const std::size_t nb = f.blocks.size();
    std::vector<BitSet> gen(nb, BitSet(nsites));
    std::vector<BitSet> kill(nb, BitSet(nsites));
    for (std::size_t s = 0; s < nsites; ++s) {
      const DefSite& site = sites_[s];
      // Downward-exposed: a later same-target def in the block kills it.
      if (killed_later_in_block(site)) continue;
      gen[site.block].set(s);
    }
    for (std::size_t b = 0; b < nb; ++b) {
      for (std::size_t s = 0; s < nsites; ++s) {
        if (sites_[s].block == b) continue;
        if (block_defines(b, sites_[s])) kill[b].set(s);
      }
    }
    sets_ = solve(cfg, Direction::kForward, gen, kill, nsites);
  }

  const std::vector<DefSite>& sites() const noexcept { return sites_; }

  /// The definition sites reaching block entry.
  const BitSet& reach_in(std::size_t block) const noexcept {
    return sets_.in[block];
  }

  /// Does definition site `s` reach instruction `instr` of `block`?
  /// Computed by replaying the block prefix over the entry set.
  bool reaches(std::uint32_t s, std::uint32_t block,
               std::uint32_t instr) const {
    const DefSite& site = sites_[s];
    bool alive;
    if (site.block == block && site.instr < instr) {
      alive = true;  // defined earlier in this very block
    } else {
      alive = sets_.in[block].test(s);
    }
    if (!alive) return false;
    // Killed by an intervening same-target definition?
    const Block& blk = f_->blocks[block];
    const std::uint32_t from =
        site.block == block && site.instr < instr ? site.instr + 1 : 0;
    for (std::uint32_t n = from; n < instr && n < blk.code.size(); ++n) {
      const Instr& i = blk.code[n];
      if (i.dead) continue;
      if (site.temp >= 0 && produces_value(i.op) && i.dst == site.temp) {
        return false;
      }
      if (site.local >= 0 && i.op == Op::kStoreLocal &&
          i.imm == static_cast<word_t>(site.local)) {
        return false;
      }
    }
    return true;
  }

  /// All definition sites of `temp` (SSA ⇒ at most one in well-formed IR).
  const std::vector<std::uint32_t>& defs_of_temp(std::size_t t) const {
    return temp_sites_[t];
  }

 private:
  bool killed_later_in_block(const DefSite& site) const {
    const Block& blk = f_->blocks[site.block];
    for (std::uint32_t n = site.instr + 1; n < blk.code.size(); ++n) {
      const Instr& i = blk.code[n];
      if (i.dead) continue;
      if (site.temp >= 0 && produces_value(i.op) && i.dst == site.temp) {
        return true;
      }
      if (site.local >= 0 && i.op == Op::kStoreLocal &&
          i.imm == static_cast<word_t>(site.local)) {
        return true;
      }
    }
    return false;
  }

  bool block_defines(std::size_t b, const DefSite& site) const {
    for (const Instr& i : f_->blocks[b].code) {
      if (i.dead) continue;
      if (site.temp >= 0 && produces_value(i.op) && i.dst == site.temp) {
        return true;
      }
      if (site.local >= 0 && i.op == Op::kStoreLocal &&
          i.imm == static_cast<word_t>(site.local)) {
        return true;
      }
    }
    return false;
  }

  const Function* f_;
  std::vector<DefSite> sites_;
  std::vector<std::vector<std::uint32_t>> temp_sites_;
  std::vector<std::vector<std::uint32_t>> local_sites_;
  DataflowResult sets_;
};

}  // namespace semstm::tmir
