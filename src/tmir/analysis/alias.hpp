// Flow-sensitive address-provenance (alias) analysis over tmir temps.
//
// Every temp's value is abstracted as ⟨root, constant byte offset⟩ where
// the root is one of
//   kConst   — the value is a compile-time constant (offset *is* the value),
//   kArg     — args[id] + offset,
//   kOpaque  — the (unknown) runtime value of temp `id` itself + offset.
// Roots are symbolic: two opaque roots with the same temp id denote the
// same runtime word, two distinct roots may or may not coincide. The
// derivation chases SSA def chains (kAdd/kSub fold a constant side into the
// offset, kMul/kAnd fold only fully-constant operands) and resolves
// kLoadLocal flow-sensitively through a reaching-stores problem over local
// slots, solved on the dataflow.hpp worklist framework. A load whose slot
// is reached by exactly one store — and not by the implicit zero
// initialisation — takes the stored temp's abstract value; a slot reached
// only by the zero init is the constant 0; anything merged is opaque.
//
// The oracle: must_alias ⇔ same root and same offset (TM barriers address
// whole words, so alias is address equality); no_alias ⇔ same root and
// different offsets, or two distinct constants; everything else — in
// particular two *different* args, which a caller may bind to equal
// pointers — is may_alias.
//
// Soundness of the kLoadLocal resolution in cyclic CFGs: resolving the
// load to the stored temp u is only valid if u's register still holds the
// value the store wrote. Suppose it does not: then some path re-executed
// u's definition after the last store S and reached the load without
// re-executing S. Because u's definition dominates S, that path can be
// rerouted from the entry to the load avoiding S entirely; any store on
// the rerouted path would itself reach the load (contradicting the sole
// reaching store), and a store-free rerouting makes the zero init reach
// (contradicting pseudo-not-reaching). So "exactly one reaching store and
// no reaching zero-init" already excludes the stale-register hazard — no
// extra dominance check is needed. (Full argument: DESIGN.md §4.17.)
//
// Verdict scope: must/no verdicts compare the two address temps' values as
// of a single dynamic execution of one block — valid because straight-line
// execution between two points of the same block cannot re-execute any
// single-assignment def. Every in-tree consumer (tm_mark's clobber scan,
// pass_tm_rbe, the lint re-proofs) queries same-block position pairs only.
//
// Two views: the default sees live instructions only (what transforming
// passes run on); `include_dead = true` freezes the original program —
// dead husks' def chains and local stores still count — so pass_tm_lint
// can re-prove mark/rbe decisions *after* tm_optimize has killed the
// instructions they reasoned about.
#pragma once

#include <cstdint>
#include <vector>

#include "tmir/analysis/cfg.hpp"
#include "tmir/analysis/dataflow.hpp"
#include "tmir/ir.hpp"

namespace semstm::tmir {

enum class AliasResult : std::uint8_t { kNoAlias, kMayAlias, kMustAlias };

class AliasAnalysis {
 public:
  struct Value {
    enum class Root : std::uint8_t { kConst, kArg, kOpaque };
    Root root = Root::kOpaque;
    std::int32_t id = -1;  ///< arg index (kArg) / root temp id (kOpaque)
    word_t offset = 0;     ///< byte offset; the constant itself for kConst
  };

  AliasAnalysis(const Function& f, const Cfg& cfg, bool include_dead = false)
      : f_(f), include_dead_(include_dead) {
    const std::size_t nt = f.num_temps;
    defs_.assign(nt, Def{});
    for (std::size_t b = 0; b < f.blocks.size(); ++b) {
      const auto& code = f.blocks[b].code;
      for (std::size_t n = 0; n < code.size(); ++n) {
        const Instr& i = code[n];
        if (!visible(i)) continue;
        if (i.op == Op::kStoreLocal) {
          const auto slot = static_cast<std::size_t>(i.imm);
          if (slot < f.num_locals) {
            sites_.push_back({static_cast<std::int32_t>(b),
                              static_cast<std::int32_t>(n),
                              static_cast<std::int32_t>(slot), i.a});
          }
        }
        if (!produces_value(i.op) || i.dst < 0 ||
            static_cast<std::size_t>(i.dst) >= nt) {
          continue;
        }
        Def& d = defs_[static_cast<std::size_t>(i.dst)];
        if (d.count++ == 0) {
          d.block = static_cast<std::int32_t>(b);
          d.instr = static_cast<std::int32_t>(n);
        }
      }
    }
    solve_local_stores(cfg);
    state_.assign(nt, kNew);
    cyclic_.assign(nt, 0);
    values_.resize(nt);
    for (std::size_t t = 0; t < nt; ++t) {
      values_[t] = opaque(static_cast<std::int32_t>(t));
    }
    for (std::size_t t = 0; t < nt; ++t) compute(static_cast<std::int32_t>(t));
  }

  /// Abstract value of a temp (opaque-self for out-of-range ids).
  Value value_of(std::int32_t t) const {
    if (t < 0 || static_cast<std::size_t>(t) >= values_.size()) {
      return opaque(t);
    }
    return values_[static_cast<std::size_t>(t)];
  }

  /// Do the addresses held in temps `a` and `b` refer to the same word?
  AliasResult alias(std::int32_t a, std::int32_t b) const {
    const Value x = value_of(a);
    const Value y = value_of(b);
    if (x.root == y.root &&
        (x.root == Value::Root::kConst || x.id == y.id)) {
      return x.offset == y.offset ? AliasResult::kMustAlias
                                  : AliasResult::kNoAlias;
    }
    return AliasResult::kMayAlias;
  }

  bool must_alias(std::int32_t a, std::int32_t b) const {
    return alias(a, b) == AliasResult::kMustAlias;
  }
  bool no_alias(std::int32_t a, std::int32_t b) const {
    return alias(a, b) == AliasResult::kNoAlias;
  }

  /// Any *live* TM write in (from, to) — exclusive on both ends — that may
  /// or must alias the address in temp `addr`? `saw_tm_write`, when
  /// non-null, reports whether any live TM write was crossed at all (the
  /// signal behind MarkStats::recovered_noalias). The scan is always over
  /// live instructions: dead husks do not execute, so they cannot clobber.
  bool clobbers_between(const Instr* from, const Instr* to, std::int32_t addr,
                        bool* saw_tm_write = nullptr) const {
    for (const Instr* i = from + 1; i < to; ++i) {
      if (i->dead) continue;
      if (i->op != Op::kTmStore && i->op != Op::kTmInc) continue;
      if (saw_tm_write != nullptr) *saw_tm_write = true;
      if (alias(i->a, addr) != AliasResult::kNoAlias) return true;
    }
    return false;
  }

 private:
  struct Def {
    std::int32_t block = -1;
    std::int32_t instr = -1;
    std::uint32_t count = 0;  ///< >1 on malformed IR: treated as opaque
  };
  struct StoreSite {
    std::int32_t block;
    std::int32_t instr;
    std::int32_t slot;
    std::int32_t value_temp;
  };
  enum State : std::uint8_t { kNew, kBusy, kDone };

  static Value opaque(std::int32_t t) {
    return Value{Value::Root::kOpaque, t, 0};
  }

  bool visible(const Instr& i) const { return include_dead_ || !i.dead; }

  std::size_t pseudo_bit(std::size_t slot) const {
    return sites_.size() + slot;
  }

  /// Forward reaching problem: which local stores (plus one pseudo
  /// "zero-init at entry" fact per slot) reach each block boundary.
  void solve_local_stores(const Cfg& cfg) {
    const std::size_t nb = f_.blocks.size();
    const std::size_t nbits = sites_.size() + f_.num_locals;
    if (nbits == 0 || nb == 0) return;
    std::vector<BitSet> gen(nb, BitSet(nbits));
    std::vector<BitSet> kill(nb, BitSet(nbits));
    // stored[b * num_locals + s]: block b visibly stores slot s.
    std::vector<std::uint8_t> stored(nb * f_.num_locals, 0);
    for (const StoreSite& s : sites_) {
      stored[static_cast<std::size_t>(s.block) * f_.num_locals +
             static_cast<std::size_t>(s.slot)] = 1;
    }
    for (std::size_t i = 0; i < sites_.size(); ++i) {
      const StoreSite& s = sites_[i];
      // Downward-exposed: no later visible store to the same slot in-block.
      const auto& code = f_.blocks[static_cast<std::size_t>(s.block)].code;
      bool exposed = true;
      for (std::size_t n = static_cast<std::size_t>(s.instr) + 1;
           n < code.size(); ++n) {
        const Instr& p = code[n];
        if (visible(p) && p.op == Op::kStoreLocal &&
            p.imm == static_cast<word_t>(s.slot)) {
          exposed = false;
          break;
        }
      }
      if (exposed) gen[static_cast<std::size_t>(s.block)].set(i);
    }
    for (std::size_t b = 0; b < nb; ++b) {
      for (std::size_t s = 0; s < f_.num_locals; ++s) {
        if (!stored[b * f_.num_locals + s]) continue;
        for (std::size_t i = 0; i < sites_.size(); ++i) {
          if (static_cast<std::size_t>(sites_[i].slot) == s) kill[b].set(i);
        }
        kill[b].set(pseudo_bit(s));
      }
    }
    // The zero init is generated at the entry unless the entry block
    // itself overwrites the slot.
    for (std::size_t s = 0; s < f_.num_locals; ++s) {
      if (!stored[s]) gen[0].set(pseudo_bit(s));
    }
    flow_ = solve(cfg, Direction::kForward, gen, kill, nbits);
  }

  Value val(std::int32_t u) {
    if (u < 0 || static_cast<std::size_t>(u) >= values_.size()) {
      return opaque(u);
    }
    compute(u);
    return values_[static_cast<std::size_t>(u)];
  }

  void compute(std::int32_t t) {
    const auto idx = static_cast<std::size_t>(t);
    if (state_[idx] == kDone) return;
    if (state_[idx] == kBusy) {
      // Def chain loops through a local slot: the value is loop-carried.
      // values_[t] already holds the provisional opaque-self, which the
      // outer frame keeps (cyclic_), so every observer agrees.
      cyclic_[idx] = 1;
      return;
    }
    state_[idx] = kBusy;
    const Value v = derive(t);
    if (!cyclic_[idx]) values_[idx] = v;
    state_[idx] = kDone;
  }

  Value derive(std::int32_t t) {
    const Def& d = defs_[static_cast<std::size_t>(t)];
    if (d.block < 0 || d.count != 1) return opaque(t);
    const Instr& i =
        f_.blocks[static_cast<std::size_t>(d.block)]
            .code[static_cast<std::size_t>(d.instr)];
    switch (i.op) {
      case Op::kConst:
        return Value{Value::Root::kConst, -1, i.imm};
      case Op::kArg:
        return Value{Value::Root::kArg, static_cast<std::int32_t>(i.imm), 0};
      case Op::kAdd: {
        const Value a = val(i.a);
        const Value b = val(i.b);
        if (b.root == Value::Root::kConst) {
          return Value{a.root, a.id, a.offset + b.offset};
        }
        if (a.root == Value::Root::kConst) {
          return Value{b.root, b.id, b.offset + a.offset};
        }
        return opaque(t);
      }
      case Op::kSub: {
        const Value a = val(i.a);
        const Value b = val(i.b);
        if (b.root == Value::Root::kConst) {
          return Value{a.root, a.id, a.offset - b.offset};
        }
        return opaque(t);
      }
      case Op::kMul: {
        const Value a = val(i.a);
        const Value b = val(i.b);
        if (a.root == Value::Root::kConst && b.root == Value::Root::kConst) {
          return Value{Value::Root::kConst, -1, a.offset * b.offset};
        }
        return opaque(t);
      }
      case Op::kAnd: {
        const Value a = val(i.a);
        const Value b = val(i.b);
        if (a.root == Value::Root::kConst && b.root == Value::Root::kConst) {
          return Value{Value::Root::kConst, -1, a.offset & b.offset};
        }
        return opaque(t);
      }
      case Op::kLoadLocal:
        return resolve_local_load(t, d.block, d.instr, i.imm);
      default:
        // kTmLoad / kTmCmp* / kCmp: runtime values with no address algebra.
        return opaque(t);
    }
  }

  Value resolve_local_load(std::int32_t t, std::int32_t block,
                           std::int32_t instr, word_t slot_imm) {
    const auto slot = static_cast<std::size_t>(slot_imm);
    if (slot >= f_.num_locals) return opaque(t);
    const auto& code = f_.blocks[static_cast<std::size_t>(block)].code;
    // Closest preceding visible in-block store wins outright.
    for (std::int32_t k = instr - 1; k >= 0; --k) {
      const Instr& p = code[static_cast<std::size_t>(k)];
      if (!visible(p)) continue;
      if (p.op == Op::kStoreLocal &&
          static_cast<std::size_t>(p.imm) == slot) {
        return val(p.a);
      }
    }
    if (flow_.in.empty()) return opaque(t);
    const BitSet& in = flow_.in[static_cast<std::size_t>(block)];
    const bool pseudo = block == 0 || in.test(pseudo_bit(slot));
    std::int32_t sole = -1;
    std::size_t reaching = 0;
    for (std::size_t i = 0; i < sites_.size(); ++i) {
      if (static_cast<std::size_t>(sites_[i].slot) != slot) continue;
      if (in.test(i)) {
        sole = static_cast<std::int32_t>(i);
        ++reaching;
      }
    }
    if (reaching == 0 && pseudo) return Value{Value::Root::kConst, -1, 0};
    if (reaching == 1 && !pseudo) {
      return val(sites_[static_cast<std::size_t>(sole)].value_temp);
    }
    return opaque(t);
  }

  const Function& f_;
  const bool include_dead_;
  std::vector<Def> defs_;
  std::vector<StoreSite> sites_;
  DataflowResult flow_;
  std::vector<Value> values_;
  std::vector<std::uint8_t> state_;
  std::vector<std::uint8_t> cyclic_;
};

}  // namespace semstm::tmir
