// pass_tm_lint: semantic-rewrite legality checker.
//
// pass_tm_mark pattern-matches cmp/inc shapes and rewrites them to the
// paper's semantic builtins. A wrong rewrite does not crash — it silently
// changes transaction semantics, the worst failure mode a TM compiler can
// have. This pass is the independent re-proof: starting only from the IR
// and the provenance links tm_mark recorded (Instr::src_a/src_b), it
// re-derives via the analysis framework (reaching definitions + dominator
// tree) that every rewrite was legal:
//
//   kTmCmp1  src_a names a live-or-killed kTmLoad of exactly the claimed
//            address (operand a), that definition reaches the compare,
//            originates in the same block with no intervening TM write
//            (any kTmStore/kTmInc may alias — no alias analysis, so all
//            are barriers), and the value operand (b) is pure
//            (const/arg/local-load).
//   kTmCmp2  as kTmCmp1 for both of src_a/src_b against operands a/b.
//   kTmInc   src_b names the kAdd/kSub that computed the stored value,
//            consuming src_a (a kTmLoad whose address temp equals the
//            store address, operand a) and the pure delta (operand b);
//            the negate flag (imm) must match the kSub orientation; same
//            block, no intervening TM write between load and store.
//
// The lint runs its own include-dead AliasAnalysis (analysis/alias.hpp):
// intervening TM writes proven no-alias are crossed, anything else is a
// clobber, and the inc origin's address may be proven must-alias rather
// than the same temp — mirroring (but independently re-deriving) what
// pass_tm_mark accepted.
//
// pass_tm_rbe eliminations are re-proved too, from each dead husk's
// Elim tag + src links against the final program:
//
//   kRbeLoadLoad   src_a is an earlier same-block kTmLoad whose address is
//                  proven equal, with no possibly-aliasing live TM write
//                  in between.
//   kRbeStoreLoad  src_b/src_a match a preceding store's address/value
//                  operands (the witness may itself be a kRbeDeadStore
//                  husk — its own row proves the rest of the chain), the
//                  address proven equal, window clean as above.
//   kRbeDeadStore  a later same-block store with the recorded operands
//                  overwrites a proven-equal address, and no live TM read
//                  that may alias sits in between.
//
// Rule ids: lint-unmarked, lint-no-provenance, lint-origin-not-load,
// lint-origin-address, lint-origin-unreachable, lint-origin-not-local,
// lint-clobbered-origin, lint-impure-operand, lint-inc-shape,
// lint-rbe-shape, lint-rbe-forward, lint-rbe-dead-store.
//
// Run it after tm_mark (before or after tm_optimize — killed origin loads
// are still consulted through their dead husks). Empty result == every
// semantic builtin in the function is a proven-legal rewrite and every
// claimed elimination a proven-legal removal.
#pragma once

#include <vector>

#include "tmir/analysis/verify.hpp"  // Diagnostic
#include "tmir/ir.hpp"

namespace semstm::tmir {

struct LintStats {
  std::size_t checked_s1r = 0;
  std::size_t checked_s2r = 0;
  std::size_t checked_sw = 0;
  std::size_t checked_rbe_forwards = 0;     ///< kRbeLoadLoad + kRbeStoreLoad
  std::size_t checked_rbe_dead_stores = 0;  ///< kRbeDeadStore husks
};

std::vector<Diagnostic> pass_tm_lint(const Function& f,
                                     LintStats* stats = nullptr);

}  // namespace semstm::tmir
