// pass_tm_lint: semantic-rewrite legality checker.
//
// pass_tm_mark pattern-matches cmp/inc shapes and rewrites them to the
// paper's semantic builtins. A wrong rewrite does not crash — it silently
// changes transaction semantics, the worst failure mode a TM compiler can
// have. This pass is the independent re-proof: starting only from the IR
// and the provenance links tm_mark recorded (Instr::src_a/src_b), it
// re-derives via the analysis framework (reaching definitions + dominator
// tree) that every rewrite was legal:
//
//   kTmCmp1  src_a names a live-or-killed kTmLoad of exactly the claimed
//            address (operand a), that definition reaches the compare,
//            originates in the same block with no intervening TM write
//            (any kTmStore/kTmInc may alias — no alias analysis, so all
//            are barriers), and the value operand (b) is pure
//            (const/arg/local-load).
//   kTmCmp2  as kTmCmp1 for both of src_a/src_b against operands a/b.
//   kTmInc   src_b names the kAdd/kSub that computed the stored value,
//            consuming src_a (a kTmLoad whose address temp equals the
//            store address, operand a) and the pure delta (operand b);
//            the negate flag (imm) must match the kSub orientation; same
//            block, no intervening TM write between load and store.
//
// Rule ids: lint-unmarked, lint-no-provenance, lint-origin-not-load,
// lint-origin-address, lint-origin-unreachable, lint-origin-not-local,
// lint-clobbered-origin, lint-impure-operand, lint-inc-shape.
//
// Run it after tm_mark (before or after tm_optimize — killed origin loads
// are still consulted through their dead husks). Empty result == every
// semantic builtin in the function is a proven-legal rewrite.
#pragma once

#include <vector>

#include "tmir/analysis/verify.hpp"  // Diagnostic
#include "tmir/ir.hpp"

namespace semstm::tmir {

struct LintStats {
  std::size_t checked_s1r = 0;
  std::size_t checked_s2r = 0;
  std::size_t checked_sw = 0;
};

std::vector<Diagnostic> pass_tm_lint(const Function& f,
                                     LintStats* stats = nullptr);

}  // namespace semstm::tmir
