#include "tmir/analysis/lint.hpp"

#include <string>

#include "tmir/analysis/alias.hpp"
#include "tmir/analysis/cfg.hpp"
#include "tmir/analysis/reaching.hpp"

namespace semstm::tmir {

namespace {

/// Position of a temp's defining instruction, dead or alive. The lint
/// must keep seeing origin loads after tm_optimize killed them, so this
/// map is built over every instruction — unlike ReachingDefs, which only
/// tracks live definitions.
struct DefAt {
  std::int32_t block = -1;
  std::int32_t instr = -1;
  const Instr* ins = nullptr;
};

std::vector<DefAt> def_positions(const Function& f) {
  std::vector<DefAt> defs(f.num_temps);
  for (std::uint32_t b = 0; b < f.blocks.size(); ++b) {
    const Block& blk = f.blocks[b];
    for (std::uint32_t n = 0; n < blk.code.size(); ++n) {
      const Instr& i = blk.code[n];
      if (produces_value(i.op) && i.dst >= 0 &&
          static_cast<std::uint32_t>(i.dst) < f.num_temps) {
        DefAt& d = defs[static_cast<std::size_t>(i.dst)];
        if (d.block < 0) {
          d = {static_cast<std::int32_t>(b), static_cast<std::int32_t>(n),
               &i};
        }
      }
    }
  }
  return defs;
}

bool pure_operand(const DefAt& d) noexcept {
  return d.ins != nullptr && (d.ins->op == Op::kConst ||
                              d.ins->op == Op::kArg ||
                              d.ins->op == Op::kLoadLocal);
}

class Linter {
 public:
  explicit Linter(const Function& f, LintStats* stats)
      : f_(f), stats_(stats), cfg_(f), reach_(f, cfg_),
        // include_dead: the lint re-proves decisions the passes took on the
        // pre-optimize program, so dead husks' def chains must still
        // evaluate (their positions are frozen).
        aa_(f, cfg_, /*include_dead=*/true), defs_(def_positions(f)) {}

  std::vector<Diagnostic> run() {
    for (std::uint32_t b = 0; b < f_.blocks.size(); ++b) {
      const Block& blk = f_.blocks[b];
      for (std::uint32_t n = 0; n < blk.code.size(); ++n) {
        const Instr& i = blk.code[n];
        if (i.dead) {
          check_elimination(b, n, i);
          continue;
        }
        if (i.elim != Elim::kNone) {
          report(b, n, "lint-rbe-shape",
                 "live instruction carries an elimination tag");
        }
        switch (i.op) {
          case Op::kTmCmp1:
            if (stats_ != nullptr) ++stats_->checked_s1r;
            check_staged(b, n);
            if (check_origin(b, n, i.src_a, i.a, "origin")) {
              check_value_operand(b, n, i.b);
            }
            break;
          case Op::kTmCmp2:
            if (stats_ != nullptr) ++stats_->checked_s2r;
            check_staged(b, n);
            check_origin(b, n, i.src_a, i.a, "left origin");
            check_origin(b, n, i.src_b, i.b, "right origin");
            break;
          case Op::kTmInc:
            if (stats_ != nullptr) ++stats_->checked_sw;
            check_staged(b, n);
            check_inc(b, n, i);
            break;
          default:
            break;
        }
      }
    }
    return std::move(diags_);
  }

 private:
  void report(std::uint32_t b, std::uint32_t n, const char* rule,
              std::string msg) {
    diags_.push_back({b, n, rule, std::move(msg)});
  }

  void check_staged(std::uint32_t b, std::uint32_t n) {
    if (!f_.marked) {
      report(b, n, "lint-unmarked",
             "semantic builtin in a function never passed through tm_mark");
    }
  }

  const DefAt* def_of(std::int32_t t) const {
    if (t < 0 || static_cast<std::uint32_t>(t) >= f_.num_temps) {
      return nullptr;
    }
    const DefAt& d = defs_[static_cast<std::size_t>(t)];
    return d.block >= 0 ? &d : nullptr;
  }

  /// Re-prove that `origin_temp` is a TM load of address temp `addr`,
  /// local to block `b` before instruction `n`, still reaching it, with
  /// no intervening (potentially aliasing) TM write. Returns true when
  /// the origin itself held up, so callers can continue with operand
  /// checks without cascading noise.
  bool check_origin(std::uint32_t b, std::uint32_t n, std::int32_t origin_temp,
                    std::int32_t addr, const char* which) {
    if (origin_temp < 0) {
      report(b, n, "lint-no-provenance",
             std::string(which) + " of the rewrite was not recorded");
      return false;
    }
    const DefAt* d = def_of(origin_temp);
    if (d == nullptr) {
      report(b, n, "lint-no-provenance",
             std::string(which) + " temp t" + std::to_string(origin_temp) +
                 " has no definition");
      return false;
    }
    if (d->ins->op != Op::kTmLoad) {
      report(b, n, "lint-origin-not-load",
             std::string(which) + " t" + std::to_string(origin_temp) +
                 " is not defined by a TM load");
      return false;
    }
    // Same temp, or independently proven to hold the same address (the
    // mark pass accepts must-alias inc origins after RBE load merging).
    if (d->ins->a != addr && !aa_.must_alias(d->ins->a, addr)) {
      report(b, n, "lint-origin-address",
             std::string(which) + " loads address t" +
                 std::to_string(d->ins->a) + " but the builtin claims t" +
                 std::to_string(addr));
      return false;
    }
    if (d->block != static_cast<std::int32_t>(b) ||
        static_cast<std::uint32_t>(d->instr) >= n) {
      report(b, n, "lint-origin-not-local",
             std::string(which) + " load at " + std::to_string(d->block) +
                 ":" + std::to_string(d->instr) +
                 " does not locally precede the builtin");
      return false;
    }
    // Independent availability proof: when the load is still live, its
    // definition site must reach the builtin per the dataflow framework
    // (a killed load keeps its position, which the local check covered).
    if (!d->ins->dead) {
      bool reaches = false;
      for (const std::uint32_t s :
           reach_.defs_of_temp(static_cast<std::size_t>(origin_temp))) {
        reaches = reaches || reach_.reaches(s, b, n);
      }
      if (!reaches) {
        report(b, n, "lint-origin-unreachable",
               std::string(which) + " definition does not reach the builtin");
        return false;
      }
    }
    // A TM write between the load and the builtin that may alias its
    // address would make re-reading at the builtin observe a different
    // value than the original compare did. The lint runs its own
    // AliasAnalysis: provably disjoint writes are crossed, everything
    // else is a clobber.
    const Block& blk = f_.blocks[b];
    for (std::uint32_t k = static_cast<std::uint32_t>(d->instr) + 1; k < n;
         ++k) {
      const Instr& between = blk.code[k];
      if (between.dead) continue;
      if ((between.op == Op::kTmStore || between.op == Op::kTmInc) &&
          aa_.alias(between.a, addr) != AliasResult::kNoAlias) {
        report(b, n, "lint-clobbered-origin",
               "TM write at " + std::to_string(b) + ":" + std::to_string(k) +
                   " between the " + which + " load and the builtin may "
                   "alias its address");
        return false;
      }
    }
    return true;
  }

  void check_value_operand(std::uint32_t b, std::uint32_t n,
                           std::int32_t operand) {
    const DefAt* d = def_of(operand);
    if (d == nullptr || !pure_operand(*d)) {
      report(b, n, "lint-impure-operand",
             "value operand t" + std::to_string(operand) +
                 " is not a literal, argument or local load");
    }
  }

  void check_inc(std::uint32_t b, std::uint32_t n, const Instr& i) {
    const DefAt* arith = def_of(i.src_b);
    if (i.src_b < 0 || arith == nullptr) {
      report(b, n, "lint-no-provenance",
             "stored-value provenance of the increment was not recorded");
      return;
    }
    if (arith->ins->op != Op::kAdd && arith->ins->op != Op::kSub) {
      report(b, n, "lint-inc-shape",
             "stored value t" + std::to_string(i.src_b) +
                 " is not an add/sub");
      return;
    }
    // The store address (operand a) must equal the origin load's address.
    if (!check_origin(b, n, i.src_a, i.a, "increment origin")) return;

    const Instr& ar = *arith->ins;
    const bool negated = i.imm == 1;
    bool shape_ok;
    if (ar.op == Op::kSub) {
      // load - delta: the load must be the minuend and the flag set.
      shape_ok = negated && ar.a == i.src_a && ar.b == i.b;
    } else {
      shape_ok = !negated && ((ar.a == i.src_a && ar.b == i.b) ||
                              (ar.b == i.src_a && ar.a == i.b));
    }
    if (!shape_ok) {
      report(b, n, "lint-inc-shape",
             "increment delta/negation does not match the arithmetic that "
             "computed the stored value");
      return;
    }
    check_value_operand(b, n, i.b);
  }

  // -- pass_tm_rbe elimination re-proofs ----------------------------------
  // Every dead instruction claiming an RBE elimination is re-proved from
  // its provenance against the *final* program: dead instructions do not
  // execute, so only live intervening accesses can invalidate a claim,
  // while a witness store may itself be a kRbeDeadStore husk — its own
  // row re-proves the rest of the overwrite chain (transitively the
  // address is unread until a live store lands).

  void check_elimination(std::uint32_t b, std::uint32_t n, const Instr& i) {
    switch (i.elim) {
      case Elim::kNone:       // hand-killed test IR: not an RBE claim
      case Elim::kDeadCode:   // liveness kill: value never observed
        return;
      case Elim::kRbeLoadLoad:
        if (stats_ != nullptr) ++stats_->checked_rbe_forwards;
        check_load_forward(b, n, i, /*from_store=*/false);
        return;
      case Elim::kRbeStoreLoad:
        if (stats_ != nullptr) ++stats_->checked_rbe_forwards;
        check_load_forward(b, n, i, /*from_store=*/true);
        return;
      case Elim::kRbeDeadStore:
        if (stats_ != nullptr) ++stats_->checked_rbe_dead_stores;
        check_dead_store(b, n, i);
        return;
    }
  }

  /// Shared tail of both forwarding proofs: no live TM write in (from, n)
  /// that may alias the forwarded load's address.
  bool forward_window_clean(std::uint32_t b, std::uint32_t from,
                            std::uint32_t n, std::int32_t addr) {
    const Block& blk = f_.blocks[b];
    for (std::uint32_t k = from + 1; k < n; ++k) {
      const Instr& w = blk.code[k];
      if (w.dead) continue;
      if ((w.op == Op::kTmStore || w.op == Op::kTmInc) &&
          aa_.alias(w.a, addr) != AliasResult::kNoAlias) {
        report(b, n, "lint-rbe-forward",
               "TM write at " + std::to_string(b) + ":" + std::to_string(k) +
                   " between the forwarding source and the eliminated load "
                   "may alias its address");
        return false;
      }
    }
    return true;
  }

  void check_load_forward(std::uint32_t b, std::uint32_t n, const Instr& i,
                          bool from_store) {
    if (i.op != Op::kTmLoad) {
      report(b, n, "lint-rbe-shape",
             "forwarding elimination tag on a non-load instruction");
      return;
    }
    if (!from_store) {
      // src_a is the earlier load's result temp.
      const DefAt* d = def_of(i.src_a);
      if (i.src_a < 0 || d == nullptr) {
        report(b, n, "lint-no-provenance",
               "forwarded load records no replacement definition");
        return;
      }
      if (d->ins->op != Op::kTmLoad) {
        report(b, n, "lint-rbe-forward",
               "replacement t" + std::to_string(i.src_a) +
                   " is not defined by a TM load");
        return;
      }
      if (d->block != static_cast<std::int32_t>(b) ||
          static_cast<std::uint32_t>(d->instr) >= n) {
        report(b, n, "lint-rbe-forward",
               "source load does not locally precede the eliminated load");
        return;
      }
      if (d->ins->a != i.a && !aa_.must_alias(d->ins->a, i.a)) {
        report(b, n, "lint-rbe-forward",
               "source load address t" + std::to_string(d->ins->a) +
                   " is not proven equal to t" + std::to_string(i.a));
        return;
      }
      forward_window_clean(b, static_cast<std::uint32_t>(d->instr), n, i.a);
      return;
    }
    // Store-to-load: src_b is the witness store's address temp, src_a its
    // value temp. Find the latest preceding store with those operands.
    if (i.src_a < 0 || i.src_b < 0) {
      report(b, n, "lint-no-provenance",
             "store-forwarded load records no witness store operands");
      return;
    }
    if (i.src_b != i.a && !aa_.must_alias(i.src_b, i.a)) {
      report(b, n, "lint-rbe-forward",
             "witness store address t" + std::to_string(i.src_b) +
                 " is not proven equal to t" + std::to_string(i.a));
      return;
    }
    const Block& blk = f_.blocks[b];
    std::int32_t witness = -1;
    for (std::uint32_t k = n; k-- > 0;) {
      const Instr& p = blk.code[k];
      if (p.op != Op::kTmStore || p.a != i.src_b || p.b != i.src_a) continue;
      if (p.dead && p.elim != Elim::kRbeDeadStore) continue;
      witness = static_cast<std::int32_t>(k);
      break;
    }
    if (witness < 0) {
      report(b, n, "lint-rbe-forward",
             "no preceding store matches the recorded witness operands");
      return;
    }
    forward_window_clean(b, static_cast<std::uint32_t>(witness), n, i.a);
  }

  void check_dead_store(std::uint32_t b, std::uint32_t n, const Instr& i) {
    if (i.op != Op::kTmStore) {
      report(b, n, "lint-rbe-shape",
             "dead-store elimination tag on a non-store instruction");
      return;
    }
    if (i.src_a < 0 || i.src_b < 0) {
      report(b, n, "lint-no-provenance",
             "eliminated store records no overwriting store operands");
      return;
    }
    if (i.src_b != i.a && !aa_.must_alias(i.src_b, i.a)) {
      report(b, n, "lint-rbe-dead-store",
             "overwriting store address t" + std::to_string(i.src_b) +
                 " is not proven equal to t" + std::to_string(i.a));
      return;
    }
    // The earliest later store matching the recorded operands is the
    // overwrite witness with the tightest (most permissive) read window.
    const Block& blk = f_.blocks[b];
    std::int32_t witness = -1;
    for (std::uint32_t m = n + 1; m < blk.code.size(); ++m) {
      const Instr& q = blk.code[m];
      if (q.op != Op::kTmStore || q.a != i.src_b || q.b != i.src_a) continue;
      if (q.dead && q.elim != Elim::kRbeDeadStore) continue;
      witness = static_cast<std::int32_t>(m);
      break;
    }
    if (witness < 0) {
      report(b, n, "lint-rbe-dead-store",
             "no later store matches the recorded overwrite witness");
      return;
    }
    for (std::uint32_t m = n + 1; m < static_cast<std::uint32_t>(witness);
         ++m) {
      const Instr& q = blk.code[m];
      if (q.dead) continue;
      bool reads = false;
      switch (q.op) {
        case Op::kTmLoad:
        case Op::kTmCmp1:
        case Op::kTmInc:
          reads = aa_.alias(q.a, i.a) != AliasResult::kNoAlias;
          break;
        case Op::kTmCmp2:
          reads = aa_.alias(q.a, i.a) != AliasResult::kNoAlias ||
                  aa_.alias(q.b, i.a) != AliasResult::kNoAlias;
          break;
        default:
          break;
      }
      if (reads) {
        report(b, n, "lint-rbe-dead-store",
               "TM read at " + std::to_string(b) + ":" + std::to_string(m) +
                   " between the eliminated store and its overwrite may "
                   "observe the dropped value");
        return;
      }
    }
  }

  const Function& f_;
  LintStats* stats_;
  Cfg cfg_;
  ReachingDefs reach_;
  AliasAnalysis aa_;
  std::vector<DefAt> defs_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

std::vector<Diagnostic> pass_tm_lint(const Function& f, LintStats* stats) {
  return Linter(f, stats).run();
}

}  // namespace semstm::tmir
