// Control-flow graph view of a tmir Function: successor/predecessor maps,
// reachability, reverse postorder, and a dominator tree.
//
// Every analysis and checker in tmir/analysis builds on this instead of
// re-deriving block structure ad hoc. Construction is total: malformed
// input (blocks without terminators, out-of-range branch targets) yields a
// CFG with the offending edges dropped rather than undefined behaviour —
// pass_verify is the component that *reports* such IR, so the CFG it runs
// on must tolerate it.
#pragma once

#include <cstdint>
#include <vector>

#include "tmir/ir.hpp"

namespace semstm::tmir {

class Cfg {
 public:
  explicit Cfg(const Function& f) : nblocks_(f.blocks.size()) {
    succs_.resize(nblocks_);
    preds_.resize(nblocks_);
    for (std::size_t b = 0; b < nblocks_; ++b) {
      const Instr* term = live_terminator(f.blocks[b]);
      if (term == nullptr) continue;
      if (term->op == Op::kBr) {
        add_edge(b, static_cast<std::uint64_t>(term->imm));
      } else if (term->op == Op::kCbr) {
        add_edge(b, static_cast<std::uint64_t>(term->imm));
        add_edge(b, static_cast<std::uint64_t>(term->b));
      }
      // kRet: no successors.
    }
    compute_order();
    compute_dominators();
  }

  std::size_t num_blocks() const noexcept { return nblocks_; }
  const std::vector<std::uint32_t>& succs(std::size_t b) const noexcept {
    return succs_[b];
  }
  const std::vector<std::uint32_t>& preds(std::size_t b) const noexcept {
    return preds_[b];
  }

  /// Reachable from the entry block (block 0).
  bool reachable(std::size_t b) const noexcept { return rpo_index_[b] >= 0; }

  /// Reverse postorder over reachable blocks (entry first). Forward
  /// analyses converge fastest iterating in this order; backward analyses
  /// use its reverse.
  const std::vector<std::uint32_t>& rpo() const noexcept { return rpo_; }

  /// Immediate dominator of b, or -1 for the entry block and for
  /// unreachable blocks.
  std::int32_t idom(std::size_t b) const noexcept { return idom_[b]; }

  /// Does block a dominate block b? Unreachable blocks dominate nothing
  /// and are dominated by nothing (the query is only meaningful on the
  /// reachable subgraph).
  bool dominates(std::size_t a, std::size_t b) const noexcept {
    if (!reachable(a) || !reachable(b)) return false;
    // Walk b's dominator chain; depth is bounded by the tree height.
    std::int32_t n = static_cast<std::int32_t>(b);
    while (n >= 0) {
      if (static_cast<std::size_t>(n) == a) return true;
      n = idom_[static_cast<std::size_t>(n)];
    }
    return false;
  }

  /// The last non-dead instruction of a block iff it is a terminator,
  /// else nullptr. Shared with pass_verify so "what terminates a block"
  /// has one definition.
  static const Instr* live_terminator(const Block& blk) noexcept {
    for (auto it = blk.code.rbegin(); it != blk.code.rend(); ++it) {
      if (it->dead) continue;
      return is_terminator(it->op) ? &*it : nullptr;
    }
    return nullptr;
  }

 private:
  void add_edge(std::size_t from, std::uint64_t to) {
    if (to >= nblocks_) return;  // malformed target: verify reports it
    succs_[from].push_back(static_cast<std::uint32_t>(to));
    preds_[to].push_back(static_cast<std::uint32_t>(from));
  }

  void compute_order() {
    rpo_index_.assign(nblocks_, -1);
    if (nblocks_ == 0) return;
    // Iterative postorder DFS from the entry, then reverse.
    std::vector<std::uint8_t> state(nblocks_, 0);  // 0=new 1=open 2=done
    std::vector<std::pair<std::uint32_t, std::size_t>> stack{{0, 0}};
    state[0] = 1;
    std::vector<std::uint32_t> postorder;
    while (!stack.empty()) {
      auto& [b, next] = stack.back();
      if (next < succs_[b].size()) {
        const std::uint32_t s = succs_[b][next++];
        if (state[s] == 0) {
          state[s] = 1;
          stack.emplace_back(s, 0);
        }
      } else {
        state[b] = 2;
        postorder.push_back(b);
        stack.pop_back();
      }
    }
    rpo_.assign(postorder.rbegin(), postorder.rend());
    for (std::size_t i = 0; i < rpo_.size(); ++i) {
      rpo_index_[rpo_[i]] = static_cast<std::int32_t>(i);
    }
  }

  // Cooper–Harvey–Kennedy: iterate idom intersection over RPO.
  void compute_dominators() {
    idom_.assign(nblocks_, -1);
    if (nblocks_ == 0) return;
    idom_[0] = 0;  // sentinel: entry is its own idom during iteration
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 1; i < rpo_.size(); ++i) {
        const std::uint32_t b = rpo_[i];
        std::int32_t new_idom = -1;
        for (const std::uint32_t p : preds_[b]) {
          if (!reachable(p) || idom_[p] < 0) continue;
          new_idom = new_idom < 0
                         ? static_cast<std::int32_t>(p)
                         : intersect(static_cast<std::int32_t>(p), new_idom);
        }
        if (new_idom >= 0 && idom_[b] != new_idom) {
          idom_[b] = new_idom;
          changed = true;
        }
      }
    }
    idom_[0] = -1;  // drop the sentinel: the entry has no idom
  }

  std::int32_t intersect(std::int32_t a, std::int32_t b) const noexcept {
    while (a != b) {
      while (rpo_index_[static_cast<std::size_t>(a)] >
             rpo_index_[static_cast<std::size_t>(b)]) {
        a = idom_[static_cast<std::size_t>(a)];
      }
      while (rpo_index_[static_cast<std::size_t>(b)] >
             rpo_index_[static_cast<std::size_t>(a)]) {
        b = idom_[static_cast<std::size_t>(b)];
      }
    }
    return a;
  }

  std::size_t nblocks_;
  std::vector<std::vector<std::uint32_t>> succs_;
  std::vector<std::vector<std::uint32_t>> preds_;
  std::vector<std::uint32_t> rpo_;
  std::vector<std::int32_t> rpo_index_;
  std::vector<std::int32_t> idom_;
};

}  // namespace semstm::tmir
