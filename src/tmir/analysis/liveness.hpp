// Backward liveness over temps *and* local slots.
//
// Fact space: bit t in [0, num_temps) = "temp t is live", bit
// num_temps + s = "local slot s is live" (its current value may still be
// loaded). Locals matter because tmir locals are mutable slots, not SSA
// temps: a kStoreLocal is dead only if no path from it reaches a
// kLoadLocal of the same slot before the next store — exactly the
// question liveness answers and the zero-uses heuristic could not ask.
//
// Nothing is live out of a kRet (locals are function-private), so the
// boundary condition is the empty set at every exit block.
#pragma once

#include "tmir/analysis/cfg.hpp"
#include "tmir/analysis/dataflow.hpp"

namespace semstm::tmir {

struct Liveness {
  std::size_t num_temps = 0;
  /// Boundary sets per block over the temps+locals fact space.
  DataflowResult sets;

  bool temp_live_in(std::size_t block, std::size_t t) const noexcept {
    return sets.in[block].test(t);
  }
  bool temp_live_out(std::size_t block, std::size_t t) const noexcept {
    return sets.out[block].test(t);
  }
  bool local_live_out(std::size_t block, std::size_t slot) const noexcept {
    return sets.out[block].test(num_temps + slot);
  }
};

namespace detail {

/// Apply one instruction's liveness transfer to `live`, in reverse
/// program order: kill the definition, then gen the uses.
inline void step_backward(const Instr& i, std::size_t num_temps,
                          BitSet& live) {
  if (produces_value(i.op) && i.dst >= 0) {
    live.clear(static_cast<std::size_t>(i.dst));
  }
  if (i.op == Op::kStoreLocal) {
    live.clear(num_temps + static_cast<std::size_t>(i.imm));
  }
  for_each_use(i, [&](std::int32_t t) {
    if (t >= 0) live.set(static_cast<std::size_t>(t));
  });
  if (i.op == Op::kLoadLocal) {
    live.set(num_temps + static_cast<std::size_t>(i.imm));
  }
}

}  // namespace detail

/// Block-granular liveness via the worklist solver. Consumers needing
/// per-instruction liveness start from `sets.out[b]` and apply
/// detail::step_backward over the block's live code in reverse.
inline Liveness compute_liveness(const Function& f, const Cfg& cfg) {
  const std::size_t nbits = f.num_temps + f.num_locals;
  const std::size_t nb = f.blocks.size();
  std::vector<BitSet> gen(nb, BitSet(nbits));   // upward-exposed uses
  std::vector<BitSet> kill(nb, BitSet(nbits));  // definitions
  for (std::size_t b = 0; b < nb; ++b) {
    // Walking backward and applying the per-instruction transfer to an
    // empty "out" set yields exactly gen; tracking kills alongside keeps
    // the two consistent by construction.
    BitSet g(nbits), k(nbits);
    const Block& blk = f.blocks[b];
    for (auto it = blk.code.rbegin(); it != blk.code.rend(); ++it) {
      if (it->dead) continue;
      if (produces_value(it->op) && it->dst >= 0) {
        const auto d = static_cast<std::size_t>(it->dst);
        g.clear(d);
        k.set(d);
      }
      if (it->op == Op::kStoreLocal) {
        const std::size_t d = f.num_temps + static_cast<std::size_t>(it->imm);
        g.clear(d);
        k.set(d);
      }
      for_each_use(*it, [&](std::int32_t t) {
        if (t >= 0) g.set(static_cast<std::size_t>(t));
      });
      if (it->op == Op::kLoadLocal) {
        g.set(f.num_temps + static_cast<std::size_t>(it->imm));
      }
    }
    gen[b] = g;
    kill[b] = k;
  }

  Liveness lv;
  lv.num_temps = f.num_temps;
  lv.sets = solve(cfg, Direction::kBackward, gen, kill, nbits);
  return lv;
}

}  // namespace semstm::tmir
