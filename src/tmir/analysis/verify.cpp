#include "tmir/analysis/verify.hpp"

#include <cstdio>
#include <cstdlib>

#include "tmir/analysis/cfg.hpp"

namespace semstm::tmir {

namespace {

/// Which temp operands an op requires (a then b). Block-id operands
/// (kBr/kCbr targets) and the optional kRet value are handled separately.
struct Arity {
  bool a = false;
  bool b = false;
};

Arity required_operands(Op op) noexcept {
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kAnd:
    case Op::kCmp:
    case Op::kTmStore:
    case Op::kTmCmp1:
    case Op::kTmCmp2:
    case Op::kTmInc:
      return {true, true};
    case Op::kTmLoad:
    case Op::kStoreLocal:
    case Op::kCbr:
      return {true, false};
    default:
      return {false, false};
  }
}

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kConst:      return "const";
    case Op::kArg:        return "arg";
    case Op::kLoadLocal:  return "load_local";
    case Op::kAdd:        return "add";
    case Op::kSub:        return "sub";
    case Op::kMul:        return "mul";
    case Op::kAnd:        return "and";
    case Op::kCmp:        return "cmp";
    case Op::kTmLoad:     return "tm_load";
    case Op::kStoreLocal: return "store_local";
    case Op::kTmStore:    return "tm_store";
    case Op::kBr:         return "br";
    case Op::kCbr:        return "cbr";
    case Op::kRet:        return "ret";
    case Op::kTmCmp1:     return "tm_cmp1";
    case Op::kTmCmp2:     return "tm_cmp2";
    case Op::kTmInc:      return "tm_inc";
  }
  return "?";
}

struct DefPos {
  std::int32_t block = -1;
  std::int32_t instr = -1;
  bool dead = false;
};

class Verifier {
 public:
  explicit Verifier(const Function& f) : f_(f), cfg_(f) {}

  std::vector<Diagnostic> run() {
    collect_defs();
    for (std::uint32_t b = 0; b < f_.blocks.size(); ++b) {
      check_termination(b);
      const Block& blk = f_.blocks[b];
      for (std::uint32_t n = 0; n < blk.code.size(); ++n) {
        check_instr(b, n, blk.code[n]);
      }
    }
    return std::move(diags_);
  }

 private:
  void report(std::uint32_t b, std::uint32_t n, const char* rule,
              std::string msg) {
    diags_.push_back({b, n, rule, std::move(msg)});
  }

  bool temp_in_range(std::int32_t t) const noexcept {
    return t >= 0 && static_cast<std::uint32_t>(t) < f_.num_temps;
  }

  // First pass: definition positions per temp; duplicate assignments are
  // reported here so later rules can use "the" def unambiguously. Dead
  // instructions participate — single assignment is a property of the
  // whole IR, and dead defs are exactly what use-of-dead-def points at.
  void collect_defs() {
    defs_.assign(f_.num_temps, DefPos{});
    for (std::uint32_t b = 0; b < f_.blocks.size(); ++b) {
      const Block& blk = f_.blocks[b];
      for (std::uint32_t n = 0; n < blk.code.size(); ++n) {
        const Instr& i = blk.code[n];
        if (!produces_value(i.op) || !temp_in_range(i.dst)) continue;
        DefPos& d = defs_[static_cast<std::size_t>(i.dst)];
        if (d.block >= 0) {
          report(b, n, "multiple-assignment",
                 "temp t" + std::to_string(i.dst) + " already defined at " +
                     std::to_string(d.block) + ":" + std::to_string(d.instr));
          continue;
        }
        d = {static_cast<std::int32_t>(b), static_cast<std::int32_t>(n),
             i.dead};
      }
    }
  }

  void check_termination(std::uint32_t b) {
    if (!cfg_.reachable(b)) return;  // dead blocks carry no control flow
    const Block& blk = f_.blocks[b];
    std::int32_t term_at = -1;
    for (std::uint32_t n = 0; n < blk.code.size(); ++n) {
      const Instr& i = blk.code[n];
      if (i.dead) continue;
      if (term_at >= 0) {
        report(b, n, "terminator-not-last",
               std::string(op_name(i.op)) + " after terminator at index " +
                   std::to_string(term_at));
        break;  // one report per block is enough
      }
      if (is_terminator(i.op)) term_at = static_cast<std::int32_t>(n);
    }
    const bool ends_with_term = Cfg::live_terminator(blk) != nullptr;
    if (term_at < 0 || !ends_with_term) {
      const auto at =
          blk.code.empty()
              ? 0u
              : static_cast<std::uint32_t>(blk.code.size() - 1);
      if (term_at < 0) {
        report(b, at, "missing-terminator",
               "reachable block does not end in br/cbr/ret");
      }
    }
  }

  // A provenance link (src_a/src_b), when recorded, must name a temp that
  // is in range, defined somewhere, and defined at a position the linking
  // instruction could legally have observed: strictly earlier in the same
  // block or in a dominating block. Exception: a kRbeDeadStore husk links
  // the *overwriting* store's operands, which sit later in the same block
  // by construction — for those the same-block position requirement is
  // waived (pass_tm_lint re-proves the precise forward-witness shape).
  void check_provenance(std::uint32_t b, std::uint32_t n, const Instr& i,
                        std::int32_t t, const char* which) {
    if (t < 0) return;  // no link recorded
    if (!temp_in_range(t)) {
      report(b, n, "provenance-out-of-range",
             std::string(which) + " t" + std::to_string(t) +
                 " >= num_temps " + std::to_string(f_.num_temps));
      return;
    }
    const DefPos& d = defs_[static_cast<std::size_t>(t)];
    if (d.block < 0) {
      report(b, n, "provenance-undefined",
             std::string(which) + " t" + std::to_string(t) +
                 " is never defined");
      return;
    }
    if (!cfg_.reachable(b)) return;  // dominance undefined off-CFG
    const auto db = static_cast<std::uint32_t>(d.block);
    const bool forward_witness = i.dead && i.elim == Elim::kRbeDeadStore;
    const bool ok =
        db == b ? (forward_witness || static_cast<std::uint32_t>(d.instr) < n)
                : cfg_.dominates(db, b);
    if (!ok) {
      report(b, n, "provenance-not-dominating",
             std::string(which) + " t" + std::to_string(t) +
                 " defined at " + std::to_string(d.block) + ":" +
                 std::to_string(d.instr) + " does not dominate the link");
    }
  }

  void check_instr(std::uint32_t b, std::uint32_t n, const Instr& i) {
    // Arity: dst presence must match produces_value.
    if (produces_value(i.op) && i.dst < 0) {
      report(b, n, "missing-dst",
             std::string(op_name(i.op)) + " must define a temp");
    }
    if (!produces_value(i.op) && i.dst >= 0) {
      report(b, n, "dst-on-void",
             std::string(op_name(i.op)) + " cannot define a temp");
    }
    const Arity need = required_operands(i.op);
    if (need.a && i.a < 0) {
      report(b, n, "missing-operand",
             std::string(op_name(i.op)) + " requires operand a");
    }
    if (need.b && i.op != Op::kCbr && i.b < 0) {
      report(b, n, "missing-operand",
             std::string(op_name(i.op)) + " requires operand b");
    }

    // Temp-id ranges (dst and real temp operands).
    if (i.dst >= 0 && !temp_in_range(i.dst)) {
      report(b, n, "temp-out-of-range",
             "dst t" + std::to_string(i.dst) + " >= num_temps " +
                 std::to_string(f_.num_temps));
    }
    for_each_use(i, [&](std::int32_t t) {
      if (t >= 0 && !temp_in_range(t)) {
        report(b, n, "temp-out-of-range",
               "operand t" + std::to_string(t) + " >= num_temps " +
                   std::to_string(f_.num_temps));
      }
    });

    // Branch targets.
    if (i.op == Op::kBr || i.op == Op::kCbr) {
      if (i.imm >= f_.blocks.size()) {
        report(b, n, "branch-out-of-range",
               "target block " + std::to_string(i.imm) + " >= " +
                   std::to_string(f_.blocks.size()));
      }
      if (i.op == Op::kCbr &&
          (i.b < 0 ||
           static_cast<std::size_t>(i.b) >= f_.blocks.size())) {
        report(b, n, "branch-out-of-range",
               "else-target block " + std::to_string(i.b) + " >= " +
                   std::to_string(f_.blocks.size()));
      }
    }

    // Arg / local slot ranges.
    if (i.op == Op::kArg && i.imm >= f_.num_args) {
      report(b, n, "arg-out-of-range",
             "arg " + std::to_string(i.imm) + " >= num_args " +
                 std::to_string(f_.num_args));
    }
    if ((i.op == Op::kLoadLocal || i.op == Op::kStoreLocal) &&
        i.imm >= f_.num_locals) {
      report(b, n, "local-out-of-range",
             "local slot " + std::to_string(i.imm) + " >= num_locals " +
                 std::to_string(f_.num_locals));
    }

    // Provenance links: not operands, but downstream lint trusts them to
    // name real, earlier, dominating definitions — so a malformed link is
    // a structural error even on dead instructions (husks keep their
    // links precisely so they can be re-proved later).
    check_provenance(b, n, i, i.src_a, "src_a");
    check_provenance(b, n, i, i.src_b, "src_b");

    // Staging: semantic builtins exist only downstream of pass_tm_mark.
    if ((i.op == Op::kTmCmp1 || i.op == Op::kTmCmp2 || i.op == Op::kTmInc) &&
        !f_.marked) {
      report(b, n, "semantic-before-mark",
             std::string(op_name(i.op)) +
                 " present but the function has not been through tm_mark");
    }

    // Def/use discipline, for live uses only (a dead instruction's
    // operands are never evaluated).
    if (i.dead) return;
    for_each_use(i, [&](std::int32_t t) {
      if (!temp_in_range(t)) return;  // range rule already fired
      const DefPos& d = defs_[static_cast<std::size_t>(t)];
      if (d.block < 0) {
        report(b, n, "undefined-temp",
               "t" + std::to_string(t) + " is never defined");
        return;
      }
      if (d.dead) {
        report(b, n, "use-of-dead-def",
               "t" + std::to_string(t) + " defined by dead instruction at " +
                   std::to_string(d.block) + ":" + std::to_string(d.instr));
        return;
      }
      if (!cfg_.reachable(b)) return;  // dominance undefined off-CFG
      const auto db = static_cast<std::uint32_t>(d.block);
      const bool dominates =
          db == b ? static_cast<std::uint32_t>(d.instr) < n
                  : cfg_.dominates(db, b);
      if (!dominates) {
        report(b, n, "def-not-dominating",
               "use of t" + std::to_string(t) + " is not dominated by its " +
                   "definition at " + std::to_string(d.block) + ":" +
                   std::to_string(d.instr));
      }
    });
  }

  const Function& f_;
  Cfg cfg_;
  std::vector<DefPos> defs_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

std::string format_diagnostic(const Function& f, const Diagnostic& d) {
  return f.name + ":" + std::to_string(d.block) + ":" +
         std::to_string(d.instr) + ": [" + d.rule + "] " + d.message;
}

std::vector<Diagnostic> pass_verify(const Function& f) {
  return Verifier(f).run();
}

void verify_or_die(const Function& f, const char* when) {
  const std::vector<Diagnostic> diags = pass_verify(f);
  if (diags.empty()) return;
  std::fprintf(stderr, "semstm tmir: IR verification failed %s (%zu issues):\n",
               when, diags.size());
  for (const Diagnostic& d : diags) {
    std::fprintf(stderr, "  %s\n", format_diagnostic(f, d).c_str());
  }
  std::abort();
}

}  // namespace semstm::tmir
