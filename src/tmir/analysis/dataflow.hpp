// A small worklist dataflow framework over tmir CFGs.
//
// Analyses are union/gen-kill problems over dense bit vectors (the only
// kind tmir needs: liveness, reaching definitions). A client supplies the
// per-block GEN and KILL sets; the solver iterates to a fixpoint with a
// worklist seeded in the order that converges fastest for the chosen
// direction (reverse postorder forward, postorder backward).
//
// The framework is deliberately block-granular: consumers that need
// per-instruction precision (tm_optimize's dead-code walk, tm_lint's
// reaching check) take the block boundary sets and re-walk the block's
// code linearly, which is both simpler and cheaper than materialising
// per-instruction sets.
#pragma once

#include <cstdint>
#include <vector>

#include "tmir/analysis/cfg.hpp"

namespace semstm::tmir {

/// Dense fixed-width bitset (std::vector<bool> without the proxy pain,
/// with whole-word union/subtract for the transfer functions).
class BitSet {
 public:
  BitSet() = default;
  explicit BitSet(std::size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  void set(std::size_t i) noexcept { words_[i >> 6] |= 1ULL << (i & 63); }
  void clear(std::size_t i) noexcept { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  std::size_t size() const noexcept { return nbits_; }

  /// this |= other. Returns true if any bit changed.
  bool merge(const BitSet& other) noexcept {
    bool changed = false;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      const std::uint64_t nv = words_[w] | other.words_[w];
      changed |= nv != words_[w];
      words_[w] = nv;
    }
    return changed;
  }

  /// this = (in & ~kill) | gen — the canonical gen/kill transfer.
  void assign_transfer(const BitSet& in, const BitSet& gen,
                       const BitSet& kill) noexcept {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words_[w] = (in.words_[w] & ~kill.words_[w]) | gen.words_[w];
    }
  }

  bool operator==(const BitSet& other) const noexcept {
    return words_ == other.words_;
  }

  std::size_t count() const noexcept {
    std::size_t n = 0;
    for (const std::uint64_t w : words_) {
      n += static_cast<std::size_t>(__builtin_popcountll(w));
    }
    return n;
  }

 private:
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

enum class Direction { kForward, kBackward };

/// Per-block boundary sets of a solved dataflow problem. For a forward
/// problem `in[b]` is the meet over predecessors and `out[b]` its
/// transfer; for a backward problem the roles mirror (`out[b]` is the
/// meet over successors, `in[b]` the transfer).
struct DataflowResult {
  std::vector<BitSet> in;
  std::vector<BitSet> out;
};

/// Solve a union-meet gen/kill problem to fixpoint.
///
/// `gen[b]` / `kill[b]` must be block-summary sets: for forward problems,
/// facts generated/killed walking the block top-down; for backward
/// problems, bottom-up (i.e. upward-exposed uses for liveness).
inline DataflowResult solve(const Cfg& cfg, Direction dir,
                            const std::vector<BitSet>& gen,
                            const std::vector<BitSet>& kill,
                            std::size_t nbits) {
  const std::size_t nb = cfg.num_blocks();
  DataflowResult r;
  r.in.assign(nb, BitSet(nbits));
  r.out.assign(nb, BitSet(nbits));

  // Iteration order: RPO for forward, reverse RPO (≈ postorder) for
  // backward. Unreachable blocks are excluded — they have no facts.
  std::vector<std::uint32_t> order = cfg.rpo();
  if (dir == Direction::kBackward) {
    std::vector<std::uint32_t> rev(order.rbegin(), order.rend());
    order.swap(rev);
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::uint32_t b : order) {
      if (dir == Direction::kForward) {
        for (const std::uint32_t p : cfg.preds(b)) r.in[b].merge(r.out[p]);
        BitSet out(nbits);
        out.assign_transfer(r.in[b], gen[b], kill[b]);
        if (!(out == r.out[b])) {
          r.out[b] = out;
          changed = true;
        }
      } else {
        for (const std::uint32_t s : cfg.succs(b)) r.out[b].merge(r.in[s]);
        BitSet in(nbits);
        in.assign_transfer(r.out[b], gen[b], kill[b]);
        if (!(in == r.in[b])) {
          r.in[b] = in;
          changed = true;
        }
      }
    }
  }
  return r;
}

}  // namespace semstm::tmir
