#include "tmir/kernels.hpp"

#include <vector>

#include "tmir/builder.hpp"

namespace semstm::tmir {

namespace {

constexpr word_t kFree = 0;
constexpr word_t kBusy = 1;
constexpr word_t kRemoved = 2;

// Locals shared by the hash kernels.
constexpr std::uint32_t kLocIdx = 0;
constexpr std::uint32_t kLocStep = 1;

/// Emit `base + locals[kLocIdx] * 8` (a tword address).
std::int32_t cell_addr(Builder& b, std::int32_t base) {
  const std::int32_t idx = b.load_local(kLocIdx);
  const std::int32_t off = b.mul(idx, b.konst(8));
  return b.add(base, off);
}

/// Emit `locals[kLocIdx] = (locals[kLocIdx] + 1) & mask; ++step` and branch
/// back to `loop`, or to `fail` once step exceeds the probe limit.
void advance_probe(Builder& b, std::int32_t mask, std::int32_t limit,
                   std::uint32_t loop, std::uint32_t fail) {
  const std::int32_t idx = b.load_local(kLocIdx);
  b.store_local(kLocIdx, b.band(b.add(idx, b.konst(1)), mask));
  const std::int32_t step = b.add(b.load_local(kLocStep), b.konst(1));
  b.store_local(kLocStep, step);
  const std::int32_t done = b.cmp(Rel::UGE, step, limit);
  const std::uint32_t cont = b.new_block();
  b.cbr(done, fail, cont);
  b.set_block(cont);
  b.br(loop);
}

}  // namespace

Function build_probe_kernel() {
  Builder b("probe", /*num_args=*/6, /*num_locals=*/2);
  const std::int32_t state_base = b.arg(0);
  const std::int32_t key_base = b.arg(1);
  const std::int32_t mask = b.arg(2);
  const std::int32_t key = b.arg(4);
  const std::int32_t limit = b.arg(5);
  b.store_local(kLocIdx, b.arg(3));
  b.store_local(kLocStep, b.konst(0));

  const std::uint32_t loop = b.new_block();
  const std::uint32_t check_key = b.new_block();
  const std::uint32_t next = b.new_block();
  const std::uint32_t found = b.new_block();
  const std::uint32_t absent = b.new_block();
  b.br(loop);

  // Algorithm 2 issues a separate TM_READ(states[index]) per comparison
  // (`states[index] != FREE` and `states[index] == REMOVED`), so each
  // block holds its own load + cmp pair — the shape tm_mark matches.
  b.set_block(loop);
  const std::int32_t s1 = b.tm_load(cell_addr(b, state_base));
  b.cbr(b.cmp(Rel::EQ, s1, b.konst(kFree)), absent, check_key);

  b.set_block(check_key);
  const std::uint32_t key_cmp = b.new_block();
  const std::int32_t s2 = b.tm_load(cell_addr(b, state_base));
  b.cbr(b.cmp(Rel::EQ, s2, b.konst(kRemoved)), next, key_cmp);
  b.set_block(key_cmp);
  const std::int32_t k = b.tm_load(cell_addr(b, key_base));
  b.cbr(b.cmp(Rel::EQ, k, key), found, next);

  b.set_block(next);
  advance_probe(b, mask, limit, loop, absent);

  b.set_block(found);
  b.ret(b.konst(1));
  b.set_block(absent);
  b.ret(b.konst(0));
  return b.finish();
}

Function build_insert_kernel() {
  Builder b("insert", 6, 2);
  const std::int32_t state_base = b.arg(0);
  const std::int32_t key_base = b.arg(1);
  const std::int32_t mask = b.arg(2);
  const std::int32_t key = b.arg(4);
  const std::int32_t limit = b.arg(5);
  b.store_local(kLocIdx, b.arg(3));
  b.store_local(kLocStep, b.konst(0));

  const std::uint32_t loop = b.new_block();
  const std::uint32_t check_key = b.new_block();
  const std::uint32_t next = b.new_block();
  const std::uint32_t claim = b.new_block();
  const std::uint32_t dup = b.new_block();
  const std::uint32_t fail = b.new_block();
  b.br(loop);

  b.set_block(loop);
  const std::int32_t s = b.tm_load(cell_addr(b, state_base));
  b.cbr(b.cmp(Rel::NEQ, s, b.konst(kBusy)), claim, check_key);

  b.set_block(check_key);
  const std::int32_t k = b.tm_load(cell_addr(b, key_base));
  b.cbr(b.cmp(Rel::EQ, k, key), dup, next);

  b.set_block(next);
  advance_probe(b, mask, limit, loop, fail);

  b.set_block(claim);  // FREE or REMOVED cell: take it
  b.tm_store(cell_addr(b, key_base), key);
  b.tm_store(cell_addr(b, state_base), b.konst(kBusy));
  b.ret(b.konst(1));

  b.set_block(dup);
  b.ret(b.konst(0));
  b.set_block(fail);
  b.ret(b.konst(0));
  return b.finish();
}

Function build_remove_kernel() {
  Builder b("remove", 6, 2);
  const std::int32_t state_base = b.arg(0);
  const std::int32_t key_base = b.arg(1);
  const std::int32_t mask = b.arg(2);
  const std::int32_t key = b.arg(4);
  const std::int32_t limit = b.arg(5);
  b.store_local(kLocIdx, b.arg(3));
  b.store_local(kLocStep, b.konst(0));

  const std::uint32_t loop = b.new_block();
  const std::uint32_t check_key = b.new_block();
  const std::uint32_t key_cmp = b.new_block();
  const std::uint32_t next = b.new_block();
  const std::uint32_t kill = b.new_block();
  const std::uint32_t absent = b.new_block();
  b.br(loop);

  b.set_block(loop);
  const std::int32_t s1 = b.tm_load(cell_addr(b, state_base));
  b.cbr(b.cmp(Rel::EQ, s1, b.konst(kFree)), absent, check_key);

  b.set_block(check_key);
  const std::int32_t s2 = b.tm_load(cell_addr(b, state_base));
  b.cbr(b.cmp(Rel::EQ, s2, b.konst(kRemoved)), next, key_cmp);
  b.set_block(key_cmp);
  const std::int32_t k = b.tm_load(cell_addr(b, key_base));
  b.cbr(b.cmp(Rel::EQ, k, key), kill, next);

  b.set_block(next);
  advance_probe(b, mask, limit, loop, absent);

  b.set_block(kill);
  b.tm_store(cell_addr(b, state_base), b.konst(kRemoved));
  b.ret(b.konst(1));
  b.set_block(absent);
  b.ret(b.konst(0));
  return b.finish();
}

Function build_reserve_kernel(unsigned candidates) {
  // locals: 0 = max_price, 1 = best numFree address (0 = none)
  Builder b("reserve", 2 + candidates, 2);
  const std::int32_t numfree_base = b.arg(0);
  const std::int32_t price_base = b.arg(1);
  b.store_local(0, b.konst(static_cast<word_t>(-1)));
  b.store_local(1, b.konst(0));

  // Algorithm 4's candidate loop, unrolled (GIMPLE would unroll or we
  // would iterate over an id array; the access pattern is identical).
  for (unsigned q = 0; q < candidates; ++q) {
    const std::int32_t id = b.arg(2 + q);
    const std::int32_t off = b.mul(id, b.konst(8));
    const std::int32_t f_addr = b.add(numfree_base, off);
    const std::int32_t f = b.tm_load(f_addr);
    const std::uint32_t check_price = b.new_block();
    const std::uint32_t next = b.new_block();
    b.cbr(b.cmp(Rel::SGT, f, b.konst(0)), check_price, next);  // numFree > 0

    b.set_block(check_price);
    const std::int32_t p = b.tm_load(b.add(price_base, off));
    const std::int32_t mp = b.load_local(0);
    const std::uint32_t take = b.new_block();
    b.cbr(b.cmp(Rel::SGT, p, mp), take, next);  // price > max_price

    b.set_block(take);
    b.store_local(0, p);       // max_price = price (the read stays live)
    b.store_local(1, f_addr);  // remember the record
    b.br(next);

    b.set_block(next);
  }

  const std::int32_t best = b.load_local(1);
  const std::uint32_t do_inc = b.new_block();
  const std::uint32_t none = b.new_block();
  b.cbr(b.cmp(Rel::NEQ, best, b.konst(0)), do_inc, none);

  b.set_block(do_inc);  // TM_INC(numFree, -1): load + sub + store pattern
  const std::int32_t cur = b.tm_load(best);
  b.tm_store(best, b.sub(cur, b.konst(1)));
  b.ret(b.konst(1));

  b.set_block(none);
  b.ret(b.konst(0));
  return b.finish();
}

Function build_center_update_kernel(unsigned features) {
  Builder b("center_update", 1 + features, 0);
  const std::int32_t base = b.arg(0);

  // Front ends hoist the loads of a record ahead of the read-modify-write
  // stores (classic scheduling: issue all the loads, then the arithmetic,
  // then the stores). That leaves every store crossing the other fields'
  // loads and stores — disjoint cells of one record, but a pass without
  // alias analysis must treat each as a potential clobber.
  const std::int32_t len = b.tm_load(base);
  std::vector<std::int32_t> addrs;
  std::vector<std::int32_t> cells;
  for (unsigned j = 0; j < features; ++j) {
    const std::int32_t addr =
        b.add(base, b.konst(static_cast<word_t>(j + 1) * 8));
    addrs.push_back(addr);
    cells.push_back(b.tm_load(addr));
  }

  // record.len++ then record.center[j] += feature[j]
  b.tm_store(base, b.add(len, b.konst(1)));
  for (unsigned j = 0; j < features; ++j) {
    b.tm_store(addrs[j], b.add(cells[j], b.arg(1 + j)));
  }

  // Re-read the length for the caller — the redundant load a
  // store-to-load forwarding pass collapses into the stored value.
  const std::int32_t len2 = b.tm_load(base);
  b.ret(len2);
  return b.finish();
}

}  // namespace semstm::tmir
