#include <stdexcept>
#include <string>

#include "algos/cgl.hpp"
#include "algos/norec.hpp"
#include "algos/snorec.hpp"
#include "algos/stl2.hpp"
#include "algos/tl2.hpp"
#include "core/algorithm.hpp"

namespace semstm {

std::unique_ptr<Algorithm> make_algorithm(std::string_view name,
                                          const AlgoOptions& opts) {
  if (name == "cgl") return std::make_unique<CglAlgorithm>();
  if (name == "norec") return std::make_unique<NorecAlgorithm>();
  if (name == "snorec") return std::make_unique<SnorecAlgorithm>();
  if (name == "tl2") return std::make_unique<Tl2Algorithm>(opts);
  if (name == "stl2") return std::make_unique<Stl2Algorithm>(opts);
  throw std::invalid_argument("unknown TM algorithm: " + std::string(name));
}

const std::vector<std::string>& algorithm_names() {
  static const std::vector<std::string> names = {"cgl", "norec", "snorec",
                                                 "tl2", "stl2"};
  return names;
}

}  // namespace semstm
