#include <stdexcept>
#include <string>
#include <type_traits>

#include "core/algorithm.hpp"
#include "core/dispatch.hpp"

namespace semstm {

AlgoId algo_id(std::string_view name) {
  if (name == "cgl") return AlgoId::kCgl;
  if (name == "norec") return AlgoId::kNorec;
  if (name == "snorec") return AlgoId::kSnorec;
  if (name == "tl2") return AlgoId::kTl2;
  if (name == "stl2") return AlgoId::kStl2;
  throw std::invalid_argument("unknown TM algorithm: " + std::string(name));
}

std::unique_ptr<Algorithm> make_algorithm(std::string_view name,
                                          const AlgoOptions& opts) {
  // Plumbing check: OrecTable shifts 1 << orec_log2 without further
  // validation, so a typo'd value would either degenerate the table or
  // silently allocate gigabytes. Reject out-of-range values loudly here,
  // for every algorithm — the option travels in AlgoOptions regardless of
  // which algorithm consumes it.
  if (opts.orec_log2 < AlgoOptions::kOrecLog2Min ||
      opts.orec_log2 > AlgoOptions::kOrecLog2Max) {
    throw std::invalid_argument(
        "AlgoOptions.orec_log2 = " + std::to_string(opts.orec_log2) +
        " is out of range [" + std::to_string(AlgoOptions::kOrecLog2Min) +
        ", " + std::to_string(AlgoOptions::kOrecLog2Max) + "]");
  }
  return dispatch_algorithm(
      algo_id(name), [&](auto tag) -> std::unique_ptr<Algorithm> {
        using AlgoT = typename decltype(tag)::algorithm_type;
        if constexpr (std::is_constructible_v<AlgoT, const AlgoOptions&>) {
          return std::make_unique<AlgoT>(opts);
        } else {
          return std::make_unique<AlgoT>();
        }
      });
}

const std::vector<std::string>& algorithm_names() {
  static const std::vector<std::string> names = {"cgl", "norec", "snorec",
                                                 "tl2", "stl2"};
  return names;
}

}  // namespace semstm
