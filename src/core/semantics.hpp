// TM-friendly semantics: the relations of the paper's Table 1
// (TM_GT/TM_GTE/TM_LT/TM_LTE/TM_EQ/TM_NEQ) together with evaluation and
// inversion. A plain transactional read is modelled as a semantic EQ
// against the observed value (paper §4.1), which lets a single validator
// cover both value-based and semantic validation.
#pragma once

#include <cstdint>

#include "core/word.hpp"

namespace semstm {

/// Comparison relation. Ordered relations carry signedness (S*/U*) because
/// the raw word does not; TVar<T> picks the variant matching T.
enum class Rel : std::uint8_t {
  EQ,
  NEQ,
  SLT,  // signed <
  SLE,  // signed <=
  SGT,  // signed >
  SGE,  // signed >=
  ULT,  // unsigned <
  ULE,  // unsigned <=
  UGT,  // unsigned >
  UGE,  // unsigned >=
};

/// The logical inverse: used when a cmp evaluates to false — the read-set
/// then records the *inverted* relation, which must keep holding (Alg. 6
/// line 34, Alg. 7 lines 18/34).
constexpr Rel inverse(Rel r) noexcept {
  switch (r) {
    case Rel::EQ:  return Rel::NEQ;
    case Rel::NEQ: return Rel::EQ;
    case Rel::SLT: return Rel::SGE;
    case Rel::SLE: return Rel::SGT;
    case Rel::SGT: return Rel::SLE;
    case Rel::SGE: return Rel::SLT;
    case Rel::ULT: return Rel::UGE;
    case Rel::ULE: return Rel::UGT;
    case Rel::UGT: return Rel::ULE;
    case Rel::UGE: return Rel::ULT;
  }
  return Rel::EQ;  // unreachable
}

/// Evaluate `a REL b` on raw words.
constexpr bool eval(Rel r, word_t a, word_t b) noexcept {
  const auto sa = static_cast<std::int64_t>(a);
  const auto sb = static_cast<std::int64_t>(b);
  switch (r) {
    case Rel::EQ:  return a == b;
    case Rel::NEQ: return a != b;
    case Rel::SLT: return sa < sb;
    case Rel::SLE: return sa <= sb;
    case Rel::SGT: return sa > sb;
    case Rel::SGE: return sa >= sb;
    case Rel::ULT: return a < b;
    case Rel::ULE: return a <= b;
    case Rel::UGT: return a > b;
    case Rel::UGE: return a >= b;
  }
  return false;  // unreachable
}

constexpr const char* rel_name(Rel r) noexcept {
  switch (r) {
    case Rel::EQ:  return "EQ";
    case Rel::NEQ: return "NEQ";
    case Rel::SLT: return "SLT";
    case Rel::SLE: return "SLE";
    case Rel::SGT: return "SGT";
    case Rel::SGE: return "SGE";
    case Rel::ULT: return "ULT";
    case Rel::ULE: return "ULE";
    case Rel::UGT: return "UGT";
    case Rel::UGE: return "UGE";
  }
  return "?";
}

/// One atomic comparison term: `*addr REL operand` or `*addr REL *rhs_addr`.
/// Terms compose into disjunctive clauses (paper §3: "they can compose by
/// having more than one operator and/or more than one variable in the
/// conditional expression") — the unit of semantic validation.
struct CmpTerm {
  const tword* addr = nullptr;
  const tword* rhs_addr = nullptr;  ///< non-null: address–address compare
  word_t operand = 0;
  Rel rel = Rel::EQ;

  /// Re-evaluate against current memory.
  bool eval_now() const noexcept {
    const word_t lhs = addr->load(std::memory_order_acquire);
    const word_t rhs =
        rhs_addr ? rhs_addr->load(std::memory_order_acquire) : operand;
    return eval(rel, lhs, rhs);
  }
};

/// Signedness-aware relation picker for a value type T.
template <typename T>
constexpr Rel rel_lt() noexcept {
  return std::is_signed_v<T> ? Rel::SLT : Rel::ULT;
}
template <typename T>
constexpr Rel rel_le() noexcept {
  return std::is_signed_v<T> ? Rel::SLE : Rel::ULE;
}
template <typename T>
constexpr Rel rel_gt() noexcept {
  return std::is_signed_v<T> ? Rel::SGT : Rel::UGT;
}
template <typename T>
constexpr Rel rel_ge() noexcept {
  return std::is_signed_v<T> ? Rel::SGE : Rel::UGE;
}

}  // namespace semstm
