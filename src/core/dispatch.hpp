// The static-dispatch tier's entry point (DESIGN.md §4.12).
//
// dispatch_algorithm(id, visitor) switches once over the closed AlgoId set
// and invokes a generic visitor with a tag carrying the concrete types —
// the algorithm class and, crucially, the sealed descriptor core. Inside
// the visitor every read/write/cmp/inc is a non-virtual call the compiler
// can inline into the surrounding code (the write-set Bloom filter,
// read-set dedup and orec cache fold into workload loops), while outside
// the visitor the world keeps talking to the type-erased Tx facade.
//
//   dispatch_algorithm(algo_id(name), [&](auto tag) {
//     using TxT = typename decltype(tag)::tx_type;
//     return atomically<TxT>([&](TxT& tx) { return x.get(tx); });
//   });
#pragma once

#include <string_view>
#include <utility>

#include "algos/cgl.hpp"
#include "algos/norec.hpp"
#include "algos/snorec.hpp"
#include "algos/stl2.hpp"
#include "algos/tl2.hpp"
#include "core/algorithm.hpp"

namespace semstm {

/// Compile-time handle for one algorithm: its Algorithm subclass and its
/// monomorphic descriptor core.
template <typename AlgoT, typename CoreT>
struct AlgoTag {
  using algorithm_type = AlgoT;
  using tx_type = CoreT;
  static constexpr AlgoId id = CoreT::kId;
};

/// Tag standing in for the type-erased tier, so call sites sweeping over
/// {virtual, static} dispatch can treat both uniformly (bench/micro_ops).
struct VirtualTag {
  using tx_type = Tx;
};

/// Monomorphize over the algorithm named by `id`: invokes `visitor` with
/// the AlgoTag of the concrete algorithm/core pair and returns its result.
template <typename V>
decltype(auto) dispatch_algorithm(AlgoId id, V&& visitor) {
  switch (id) {
    case AlgoId::kCgl:
      return std::forward<V>(visitor)(AlgoTag<CglAlgorithm, CglCore>{});
    case AlgoId::kNorec:
      return std::forward<V>(visitor)(AlgoTag<NorecAlgorithm, NorecCore>{});
    case AlgoId::kSnorec:
      return std::forward<V>(visitor)(AlgoTag<SnorecAlgorithm, SnorecCore>{});
    case AlgoId::kTl2:
      return std::forward<V>(visitor)(AlgoTag<Tl2Algorithm, Tl2Core>{});
    case AlgoId::kStl2:
    default:
      return std::forward<V>(visitor)(AlgoTag<Stl2Algorithm, Stl2Core>{});
  }
}

/// Name-keyed convenience overload (throws std::invalid_argument through
/// algo_id for unknown names).
template <typename V>
decltype(auto) dispatch_algorithm(std::string_view name, V&& visitor) {
  return dispatch_algorithm(algo_id(name), std::forward<V>(visitor));
}

}  // namespace semstm
