// Per-logical-thread execution context.
//
// The context holds the thread's transaction descriptor and contention
// manager. It is reached through a thread_local *pointer slot* rather than
// a thread_local object so the fiber scheduler can re-point it on every
// fiber switch (all fibers share one OS thread, but each logical thread
// must own a private descriptor).
#pragma once

#include <cassert>
#include <memory>

#include "core/tx.hpp"
#include "runtime/backoff.hpp"

namespace semstm {

struct ThreadCtx {
  std::unique_ptr<Tx> tx;
  Backoff backoff;

  explicit ThreadCtx(std::unique_ptr<Tx> t, std::uint64_t backoff_seed = 0xB0FF)
      : tx(std::move(t)), backoff(backoff_seed) {}
};

/// The current thread's (or fiber's) context slot.
inline ThreadCtx*& tls_ctx() noexcept {
  thread_local ThreadCtx* ctx = nullptr;
  return ctx;
}

/// RAII binder used by workers and tests.
class CtxBinder {
 public:
  explicit CtxBinder(ThreadCtx& ctx) : prev_(tls_ctx()) { tls_ctx() = &ctx; }
  ~CtxBinder() { tls_ctx() = prev_; }
  CtxBinder(const CtxBinder&) = delete;
  CtxBinder& operator=(const CtxBinder&) = delete;

 private:
  ThreadCtx* prev_;
};

inline Tx& current_tx() noexcept {
  ThreadCtx* c = tls_ctx();
  assert(c != nullptr && c->tx != nullptr && "no transaction context bound");
  return *c->tx;
}

}  // namespace semstm
