// Per-logical-thread execution context.
//
// The context holds the thread's transaction descriptor and contention
// manager. It is reached through a thread_local *pointer slot* rather than
// a thread_local object so the fiber scheduler can re-point it on every
// fiber switch (all fibers share one OS thread, but each logical thread
// must own a private descriptor).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "core/tx.hpp"
#include "runtime/contention.hpp"
#include "util/rng.hpp"

namespace semstm {

/// Derive a per-context default seed for contention-manager randomization.
/// Mixing a process-wide counter into the base seed guarantees distinct
/// backoff streams even when every context is default-constructed — with
/// one shared seed all threads draw identical pause sequences and back off
/// in lockstep, defeating the randomization (a real historical bug).
/// Callers needing run-to-run determinism (the workload driver, seeded
/// tests) pass an explicit per-thread seed instead and never hit this path.
inline std::uint64_t default_ctx_seed() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
  return SplitMix64(0xB0FFULL ^ (id * 0x9E3779B97F4A7C15ULL)).next();
}

struct ThreadCtx {
  std::unique_ptr<Tx> tx;
  std::unique_ptr<ContentionManager> cm;
  /// Concrete descriptor core behind `tx` (Tx::core_ptr()), cached so the
  /// monomorphic path (atomically<TxT>) can recover the statically-typed
  /// descriptor without a virtual call per transaction.
  void* core = nullptr;
  /// Algorithm name of the bound descriptor; lets debug builds verify that
  /// a static downcast of `core` matches the algorithm actually bound.
  const char* algo = nullptr;

  /// Default construction: randomized-exponential-backoff policy with a
  /// unique per-context seed (see default_ctx_seed()).
  explicit ThreadCtx(std::unique_ptr<Tx> t)
      : ThreadCtx(std::move(t), default_ctx_seed()) {}

  /// Deterministic construction: the caller owns seed uniqueness (pass a
  /// distinct stream seed per thread). An explicit policy may replace the
  /// default backoff manager.
  ThreadCtx(std::unique_ptr<Tx> t, std::uint64_t seed,
            std::unique_ptr<ContentionManager> manager = nullptr)
      : tx(std::move(t)),
        cm(manager ? std::move(manager) : std::make_unique<BackoffCm>(seed)) {
    if (tx) {
      core = tx->core_ptr();
      algo = tx->algorithm();
    }
  }
};

/// The current thread's (or fiber's) context slot.
inline ThreadCtx*& tls_ctx() noexcept {
  thread_local ThreadCtx* ctx = nullptr;
  return ctx;
}

/// RAII binder used by workers and tests.
class CtxBinder {
 public:
  explicit CtxBinder(ThreadCtx& ctx) : prev_(tls_ctx()) { tls_ctx() = &ctx; }
  ~CtxBinder() { tls_ctx() = prev_; }
  CtxBinder(const CtxBinder&) = delete;
  CtxBinder& operator=(const CtxBinder&) = delete;

 private:
  ThreadCtx* prev_;
};

/// Diagnose-and-die for a missing context binding. Calling into the TM
/// runtime with no bound ThreadCtx is a programming error that previously
/// surfaced as a null dereference in release builds (the assert compiled
/// away); fail loudly in every build instead.
[[noreturn]] inline void die_no_ctx(const char* who) noexcept {
  std::fprintf(stderr,
               "semstm: %s called with no transaction context bound on this "
               "thread (bind a ThreadCtx via CtxBinder first)\n",
               who);
  std::abort();
}

inline Tx& current_tx() noexcept {
  ThreadCtx* c = tls_ctx();
  if (c == nullptr || c->tx == nullptr) die_no_ctx("current_tx()");
  return *c->tx;
}

}  // namespace semstm
