// The transaction descriptor, split in two tiers (DESIGN.md §4.12):
//
//  - TxCoreBase: the non-virtual facility base every concrete descriptor
//    core derives from — stats, serial-gate protocol, abort attribution,
//    trace hooks. Cores (src/algos/*.hpp) are `final` classes with NO
//    virtual functions; the whole begin→access→commit chain is statically
//    dispatched and inlinable when the caller names the core type.
//
//  - Tx: the type-erased compatibility facade. It carries the classical +
//    semantic API (the paper's extended TM interface, Table 1 / §4) as
//    virtual methods and forwards everything to a bound core. Tests,
//    examples and heterogeneous call sites keep programming against Tx&;
//    hot paths go through dispatch_algorithm() (core/dispatch.hpp) and a
//    concrete core instead.
//
// Classical constructs:    read, write            (TM_READ / TM_WRITE)
// Semantic constructs:     cmp, cmp2, inc         (Table 1 / §4)
//
//   bool cmp (addr, Rel, value)   — address–value conditional (TM_GT, ...)
//   bool cmp2(addr, Rel, addr2)   — address–address conditional (paper §3:
//                                   "extending the algorithms ... is
//                                   straightforward"; we implement it)
//   void inc (addr, delta)        — deferred increment (TM_INC / TM_DEC:
//                                   delta is two's-complement, so decrement
//                                   is inc with a negative delta)
//
// Non-semantic algorithms (NOrec, TL2, CGL) use the generic_* delegations
// below, which lower cmp/inc to read/write. That is exactly the paper's
// "NOrec Modified-GCC" configuration: the application calls the semantic
// API but the algorithm handles it non-semantically.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "core/semantics.hpp"
#include "core/stats.hpp"
#include "core/word.hpp"
#include "obs/abort_cause.hpp"
#include "obs/clock.hpp"
#include "obs/conflict_map.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_ring.hpp"
#include "runtime/serial_gate.hpp"

namespace semstm {

/// Thrown by an algorithm to roll back the current transaction attempt.
/// Caught exclusively by atomically(); user code never sees it. Always
/// thrown through TxCoreBase::abort_tx(cause, addr), which records the
/// abort's attribution first (see obs/abort_cause.hpp).
struct TxAbort {};

/// Non-virtual facilities shared by every concrete descriptor core. The
/// core object's address is the transaction's identity everywhere identity
/// matters (serial-gate ownership, orec ownership): tx_id() below is what
/// atomically() hands to SerialGate::acquire, and what gate_enter()'s
/// held_by() check compares against — one pointer, no facade/core
/// ambiguity.
class TxCoreBase {
 public:
  TxCoreBase() = default;
  TxCoreBase(const TxCoreBase&) = delete;
  TxCoreBase& operator=(const TxCoreBase&) = delete;

  TxStats stats;

  /// The serial-irrevocable gate shared by every descriptor of the owning
  /// Algorithm (null only for descriptors built outside an Algorithm, e.g.
  /// bare test doubles). atomically() uses it for the bounded-retry
  /// fallback; the algorithms honour it through gate_enter()/gate_exit().
  SerialGate* serial_gate() const noexcept { return gate_; }

  /// The identity this transaction presents to shared metadata (gate,
  /// orecs). Stable across the descriptor's lifetime.
  const void* tx_id() const noexcept { return this; }

  /// Attribution of the most recent abort_tx() of this descriptor.
  /// atomically() clears it at attempt start and folds it into
  /// stats.abort_causes on each abort.
  const obs::AbortInfo& last_abort() const noexcept { return last_abort_; }
  void clear_last_abort() noexcept { last_abort_ = obs::AbortInfo{}; }

  /// Explicitly abort and retry the current transaction (cause
  /// kUserAbort). The attempt rolls back and atomically() re-runs the
  /// body, so the caller must expect the condition that triggered the
  /// abort to change between attempts (another thread committing).
  [[noreturn]] void user_abort() { abort_tx(obs::AbortCause::kUserAbort); }

  /// The event-trace ring this descriptor records into, or null. Bound by
  /// the driver when a run is traced; recording compiles away entirely
  /// unless the build sets SEMSTM_TRACE (obs::kTraceEnabled).
  void bind_trace(obs::TraceRing* ring) noexcept { trace_ = ring; }
  obs::TraceRing* trace_ring() const noexcept { return trace_; }

  /// The windowed-metrics series this descriptor samples into, or null.
  /// Bound by the driver when a run collects metrics (--metrics-out);
  /// atomically()'s retry loop samples at every attempt end. Like tracing,
  /// sampling compiles away unless SEMSTM_TRACE is set.
  void bind_metrics(obs::WindowSeries* series) noexcept { metrics_ = series; }
  obs::WindowSeries* metrics_series() const noexcept { return metrics_; }

  /// Conflict sites this descriptor aborted over (obs/conflict_map.hpp).
  /// Populated by abort_tx() in SEMSTM_TRACE builds only; always present
  /// (and empty in gate-off builds) so reporting callers need no #ifdefs.
  const obs::ConflictMap& conflict_map() const noexcept { return conflicts_; }
  obs::ConflictMap& conflict_map() noexcept { return conflicts_; }

 protected:
  // Destroyed only as a concrete core (by TxFacade or by value); never
  // deleted through a TxCoreBase*, hence no virtual destructor.
  ~TxCoreBase() = default;

  /// Abort the current attempt, recording *why* and (when known) the
  /// conflicting address, orec table index and owning transaction. Does
  /// not count stats; atomically() does. One reclassification applies: a
  /// conflict observed while another transaction holds (or is draining
  /// into) the serial-irrevocable token is attributed to
  /// kSerialGatePreempt — the root cause is the serial transaction the
  /// system is quiescing for, not ordinary contention.
  ///
  /// In SEMSTM_TRACE builds, every location-carrying abort is also folded
  /// into this descriptor's ConflictMap — after the reclassification, so
  /// per-site cause counts stay comparable with stats.abort_causes
  /// (DESIGN.md §4.15 accounting contract). `owner` is the conflicting
  /// orec's owner when the site could read one (best-effort; self-owned
  /// hints are dropped — a transaction is never its own victim).
  ///
  /// Kept out of line (cold): every per-access fast path carries several
  /// abort sites, and in the monomorphized tier (DESIGN.md §4.12) they
  /// would otherwise all inline into the transaction loop, bloating the
  /// hot code footprint for a path only taken on conflicts.
  [[noreturn, gnu::cold, gnu::noinline]] void abort_tx(
      obs::AbortCause cause, const void* addr = nullptr,
      std::uint32_t orec = obs::kNoOrec, const void* owner = nullptr) {
    if (cause != obs::AbortCause::kUserAbort &&
        cause != obs::AbortCause::kClockOverflow && gate_ != nullptr &&
        gate_->held() && !gate_->held_by(this)) {
      cause = obs::AbortCause::kSerialGatePreempt;
    }
    if (owner == this) owner = nullptr;
    last_abort_.cause = cause;
    last_abort_.addr = addr;
    last_abort_.orec = orec;
    last_abort_.owner = owner;
    if constexpr (obs::kTraceEnabled) {
      if (addr != nullptr) conflicts_.record(cause, addr, orec, owner);
    }
    throw TxAbort{};
  }

  /// Record a semantic-operation trace event (no-op unless SEMSTM_TRACE
  /// and a ring is bound). Called from the semantic algorithms' hooks.
  void trace_semantic_op(obs::SemanticOp op, const void* addr) noexcept {
    if constexpr (obs::kTraceEnabled) {
      if (trace_ != nullptr) {
        trace_->push(obs::TraceEvent{obs::now_ticks(), 0, addr,
                                     obs::EventKind::kSemanticOp,
                                     obs::AbortCause::kUnknown,
                                     static_cast<std::uint8_t>(op)});
      }
    } else {
      (void)op;
      (void)addr;
    }
  }

  /// Called by concrete cores' constructors to share the algorithm's gate.
  void bind_gate(SerialGate& gate) noexcept { gate_ = &gate; }

  /// begin() protocol: block while another transaction holds the
  /// serial-irrevocable token, then register as in-flight. A token-holding
  /// transaction passes straight through (it must not wait on itself, and
  /// it is excluded from the drain count by construction). Idempotent
  /// across repeated begin() calls without an intervening attempt end.
  void gate_enter() {
    if (gate_ == nullptr || gate_entered_ || gate_->held_by(this)) return;
    gate_->enter(tx_id());  // identity picks the announce slot
    gate_entered_ = true;
  }

  /// commit()/rollback() protocol: deregister from the gate. Safe to call
  /// redundantly; only the first call after a gate_enter() counts.
  void gate_exit() noexcept {
    if (gate_entered_) {
      gate_->exit(tx_id());  // same identity, same slot as gate_enter()
      gate_entered_ = false;
    }
  }

 private:
  SerialGate* gate_ = nullptr;
  bool gate_entered_ = false;
  obs::AbortInfo last_abort_;
  obs::TraceRing* trace_ = nullptr;
  obs::WindowSeries* metrics_ = nullptr;
  obs::ConflictMap conflicts_;  // lazy: allocates on first recorded conflict
};

// -- Generic semantic-op delegations ----------------------------------------
//
// The non-semantic handling of the semantic API: cmp/cmp2/cmp_or lower to
// plain reads + a local compare, inc to read-modify-write. Non-semantic
// cores (CGL, NOrec, TL2) use these as their cmp/inc implementations, and
// the semantic cores fall back to them when an operand is buffered in the
// write-set (private data needs no semantic validation). `TxT` is any
// descriptor exposing read/write.

template <typename TxT>
bool generic_cmp(TxT& tx, const tword* addr, Rel rel, word_t operand) {
  return eval(rel, tx.read(addr), operand);
}

template <typename TxT>
bool generic_cmp2(TxT& tx, const tword* a, Rel rel, const tword* b) {
  const word_t va = tx.read(a);
  const word_t vb = tx.read(b);
  return eval(rel, va, vb);
}

/// Disjunctive conditional `term_0 || term_1 || ...` (paper §3: composed
/// conditional expressions treated as ONE semantic read operation, e.g.
/// `x > 0 || y > 0`, or the hashtable probe's per-cell clause). Semantic
/// algorithms validate the clause as a unit — only a change that flips
/// the OR's outcome aborts. This delegation is short-circuit evaluation
/// over plain reads, exactly how a non-semantic TM executes the original
/// condition.
template <typename TxT>
bool generic_cmp_or(TxT& tx, const CmpTerm* terms, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const word_t lhs = tx.read(terms[i].addr);
    const word_t rhs =
        terms[i].rhs_addr ? tx.read(terms[i].rhs_addr) : terms[i].operand;
    if (eval(terms[i].rel, lhs, rhs)) return true;
  }
  return false;
}

template <typename TxT>
void generic_inc(TxT& tx, tword* addr, word_t delta) {
  tx.write(addr, tx.read(addr) + delta);
}

// -- The type-erased facade --------------------------------------------------

/// The abstract transaction, kept as the compatibility face of the
/// two-tier dispatch design: registry code, tests and examples program
/// against Tx&, while hot paths use the concrete core directly. Every
/// non-virtual facility (stats, gate, abort attribution, tracing) forwards
/// to the bound core so a descriptor driven through either tier observes
/// one shared state.
class Tx {
 public:
  virtual ~Tx() = default;

  Tx(const Tx&) = delete;
  Tx& operator=(const Tx&) = delete;

  virtual const char* algorithm() const noexcept = 0;

  // -- Lifecycle (driven by atomically()) ---------------------------------

  /// Start (or restart) a transaction attempt.
  virtual void begin() = 0;

  /// Attempt to commit; throws TxAbort on validation failure.
  virtual void commit() = 0;

  /// Roll back local metadata after an abort (read/write sets etc.).
  virtual void rollback() = 0;

  // -- Classical constructs ------------------------------------------------

  virtual word_t read(const tword* addr) = 0;
  virtual void write(tword* addr, word_t value) = 0;

  // -- Semantic constructs (see the generic_* delegations for the
  //    non-semantic lowering the plain algorithms use) ---------------------

  virtual bool cmp(const tword* addr, Rel rel, word_t operand) = 0;
  virtual bool cmp2(const tword* a, Rel rel, const tword* b) = 0;
  virtual bool cmp_or(const CmpTerm* terms, std::size_t n) = 0;
  virtual void inc(tword* addr, word_t delta) = 0;

  /// The concrete core behind this facade, for callers that monomorphize
  /// (ThreadCtx caches it; atomically<Core>() casts it back). Typed access
  /// goes through dispatch_algorithm() — the AlgoId names the core type.
  virtual void* core_ptr() noexcept = 0;

  /// Bound to the core's stats: both dispatch tiers count into one block.
  TxStats& stats;

  // Non-virtual forwards to the shared core facilities (same contracts as
  // the TxCoreBase originals).
  SerialGate* serial_gate() const noexcept { return core_.serial_gate(); }
  const void* tx_id() const noexcept { return core_.tx_id(); }
  const obs::AbortInfo& last_abort() const noexcept {
    return core_.last_abort();
  }
  void clear_last_abort() noexcept { core_.clear_last_abort(); }
  [[noreturn]] void user_abort() { core_.user_abort(); }
  void bind_trace(obs::TraceRing* ring) noexcept { core_.bind_trace(ring); }
  obs::TraceRing* trace_ring() const noexcept { return core_.trace_ring(); }
  void bind_metrics(obs::WindowSeries* series) noexcept {
    core_.bind_metrics(series);
  }
  obs::WindowSeries* metrics_series() const noexcept {
    return core_.metrics_series();
  }
  const obs::ConflictMap& conflict_map() const noexcept {
    return core_.conflict_map();
  }
  TxCoreBase& core_base() noexcept { return core_; }

 protected:
  explicit Tx(TxCoreBase& core) : stats(core.stats), core_(core) {}

 private:
  TxCoreBase& core_;
};

/// The thin forwarding shim gluing a monomorphic core to the type-erased
/// Tx interface — one instantiation per algorithm, created by
/// Algorithm::make_tx(). Owns the core by value; the base-class reference
/// binds to the member before its construction, which is fine (the
/// reference is only bound, never used, until the core exists).
template <typename Core>
class TxFacade final : public Tx {
 public:
  template <typename... Args>
  explicit TxFacade(Args&&... args)
      : Tx(core_), core_(std::forward<Args>(args)...) {}

  Core& core() noexcept { return core_; }

  const char* algorithm() const noexcept override { return core_.algorithm(); }
  void* core_ptr() noexcept override { return &core_; }
  void begin() override { core_.begin(); }
  void commit() override { core_.commit(); }
  void rollback() override { core_.rollback(); }
  word_t read(const tword* addr) override { return core_.read(addr); }
  void write(tword* addr, word_t value) override { core_.write(addr, value); }
  bool cmp(const tword* addr, Rel rel, word_t operand) override {
    return core_.cmp(addr, rel, operand);
  }
  bool cmp2(const tword* a, Rel rel, const tword* b) override {
    return core_.cmp2(a, rel, b);
  }
  bool cmp_or(const CmpTerm* terms, std::size_t n) override {
    return core_.cmp_or(terms, n);
  }
  void inc(tword* addr, word_t delta) override { core_.inc(addr, delta); }

 private:
  Core core_;
};

}  // namespace semstm
