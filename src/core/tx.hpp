// The abstract transaction: the paper's extended TM API.
//
// Classical constructs:    read, write            (TM_READ / TM_WRITE)
// Semantic constructs:     cmp, cmp2, inc         (Table 1 / §4)
//
//   bool cmp (addr, Rel, value)   — address–value conditional (TM_GT, ...)
//   bool cmp2(addr, Rel, addr2)   — address–address conditional (paper §3:
//                                   "extending the algorithms ... is
//                                   straightforward"; we implement it)
//   void inc (addr, delta)        — deferred increment (TM_INC / TM_DEC:
//                                   delta is two's-complement, so decrement
//                                   is inc with a negative delta)
//
// Non-semantic algorithms (NOrec, TL2, CGL) inherit the default cmp/inc
// implementations below, which delegate to read/write. That is exactly the
// paper's "NOrec Modified-GCC" configuration: the application calls the
// semantic API but the algorithm handles it non-semantically.
#pragma once

#include <cstdint>

#include "core/semantics.hpp"
#include "core/stats.hpp"
#include "core/word.hpp"
#include "obs/abort_cause.hpp"
#include "obs/clock.hpp"
#include "obs/trace_ring.hpp"
#include "runtime/serial_gate.hpp"

namespace semstm {

/// Thrown by an algorithm to roll back the current transaction attempt.
/// Caught exclusively by atomically(); user code never sees it. Always
/// thrown through Tx::abort_tx(cause, addr), which records the abort's
/// attribution first (see obs/abort_cause.hpp).
struct TxAbort {};

class Tx {
 public:
  virtual ~Tx() = default;

  Tx(const Tx&) = delete;
  Tx& operator=(const Tx&) = delete;

  virtual const char* algorithm() const noexcept = 0;

  // -- Lifecycle (driven by atomically()) ---------------------------------

  /// Start (or restart) a transaction attempt.
  virtual void begin() = 0;

  /// Attempt to commit; throws TxAbort on validation failure.
  virtual void commit() = 0;

  /// Roll back local metadata after an abort (read/write sets etc.).
  virtual void rollback() = 0;

  // -- Classical constructs ------------------------------------------------

  virtual word_t read(const tword* addr) = 0;
  virtual void write(tword* addr, word_t value) = 0;

  // -- Semantic constructs -------------------------------------------------

  /// Conditional `*addr REL operand`. Default: plain read + local compare.
  virtual bool cmp(const tword* addr, Rel rel, word_t operand) {
    return eval(rel, read(addr), operand);
  }

  /// Conditional `*a REL *b`. Default: two plain reads + local compare.
  virtual bool cmp2(const tword* a, Rel rel, const tword* b) {
    const word_t va = read(a);
    const word_t vb = read(b);
    return eval(rel, va, vb);
  }

  /// Disjunctive conditional `term_0 || term_1 || ...` (paper §3: composed
  /// conditional expressions treated as ONE semantic read operation, e.g.
  /// `x > 0 || y > 0`, or the hashtable probe's per-cell clause). Semantic
  /// algorithms validate the clause as a unit — only a change that flips
  /// the OR's outcome aborts. Default: short-circuit evaluation over plain
  /// reads, exactly how a non-semantic TM executes the original condition.
  virtual bool cmp_or(const CmpTerm* terms, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      const word_t lhs = read(terms[i].addr);
      const word_t rhs =
          terms[i].rhs_addr ? read(terms[i].rhs_addr) : terms[i].operand;
      if (eval(terms[i].rel, lhs, rhs)) return true;
    }
    return false;
  }

  /// Deferred `*addr += delta`. Default: read-modify-write.
  virtual void inc(tword* addr, word_t delta) {
    write(addr, read(addr) + delta);
  }

  TxStats stats;

  /// The serial-irrevocable gate shared by every descriptor of the owning
  /// Algorithm (null only for descriptors built outside an Algorithm, e.g.
  /// bare test doubles). atomically() uses it for the bounded-retry
  /// fallback; the algorithms honour it through gate_enter()/gate_exit().
  SerialGate* serial_gate() const noexcept { return gate_; }

  /// Attribution of the most recent abort_tx() of this descriptor.
  /// atomically() clears it at attempt start and folds it into
  /// stats.abort_causes on each abort.
  const obs::AbortInfo& last_abort() const noexcept { return last_abort_; }
  void clear_last_abort() noexcept { last_abort_ = obs::AbortInfo{}; }

  /// Explicitly abort and retry the current transaction (cause
  /// kUserAbort). The attempt rolls back and atomically() re-runs the
  /// body, so the caller must expect the condition that triggered the
  /// abort to change between attempts (another thread committing).
  [[noreturn]] void user_abort() { abort_tx(obs::AbortCause::kUserAbort); }

  /// The event-trace ring this descriptor records into, or null. Bound by
  /// the driver when a run is traced; recording compiles away entirely
  /// unless the build sets SEMSTM_TRACE (obs::kTraceEnabled).
  void bind_trace(obs::TraceRing* ring) noexcept { trace_ = ring; }
  obs::TraceRing* trace_ring() const noexcept { return trace_; }

 protected:
  Tx() = default;

  /// Abort the current attempt, recording *why* and (when known) the
  /// conflicting address or orec. Does not count stats; atomically() does.
  /// One reclassification applies: a conflict observed while another
  /// transaction holds (or is draining into) the serial-irrevocable token
  /// is attributed to kSerialGatePreempt — the root cause is the serial
  /// transaction the system is quiescing for, not ordinary contention.
  [[noreturn]] void abort_tx(obs::AbortCause cause,
                             const void* addr = nullptr) {
    if (cause != obs::AbortCause::kUserAbort &&
        cause != obs::AbortCause::kClockOverflow && gate_ != nullptr &&
        gate_->held() && !gate_->held_by(this)) {
      cause = obs::AbortCause::kSerialGatePreempt;
    }
    last_abort_.cause = cause;
    last_abort_.addr = addr;
    throw TxAbort{};
  }

  /// Record a semantic-operation trace event (no-op unless SEMSTM_TRACE
  /// and a ring is bound). Called from the semantic algorithms' hooks.
  void trace_semantic_op(obs::SemanticOp op, const void* addr) noexcept {
    if constexpr (obs::kTraceEnabled) {
      if (trace_ != nullptr) {
        trace_->push(obs::TraceEvent{obs::now_ticks(), 0, addr,
                                     obs::EventKind::kSemanticOp,
                                     obs::AbortCause::kUnknown,
                                     static_cast<std::uint8_t>(op)});
      }
    } else {
      (void)op;
      (void)addr;
    }
  }

  /// Called by concrete descriptors' constructors to share the algorithm's
  /// gate.
  void bind_gate(SerialGate& gate) noexcept { gate_ = &gate; }

  /// begin() protocol: block while another transaction holds the
  /// serial-irrevocable token, then register as in-flight. A token-holding
  /// transaction passes straight through (it must not wait on itself, and
  /// it is excluded from the drain count by construction). Idempotent
  /// across repeated begin() calls without an intervening attempt end.
  void gate_enter() {
    if (gate_ == nullptr || gate_entered_ || gate_->held_by(this)) return;
    gate_->enter();
    gate_entered_ = true;
  }

  /// commit()/rollback() protocol: deregister from the gate. Safe to call
  /// redundantly; only the first call after a gate_enter() counts.
  void gate_exit() noexcept {
    if (gate_entered_) {
      gate_->exit();
      gate_entered_ = false;
    }
  }

 private:
  SerialGate* gate_ = nullptr;
  bool gate_entered_ = false;
  obs::AbortInfo last_abort_;
  obs::TraceRing* trace_ = nullptr;
};

}  // namespace semstm
