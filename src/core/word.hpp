// Transactional word representation.
//
// semstm is a word-based STM (like RSTM and GCC's libitm ml_wt/norec
// back ends): all transactional state lives in 64-bit words. Every shared
// word is a std::atomic so that the racy accesses inherent to optimistic
// concurrency (speculative loads concurrent with commit-time write-back)
// are defined behaviour under the C++ memory model.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace semstm {

/// The raw transactional word. Semantic comparisons interpret it as a
/// signed or unsigned 64-bit integer depending on the Rel variant used.
using word_t = std::uint64_t;

/// A shared transactional memory word.
using tword = std::atomic<word_t>;

static_assert(std::atomic<word_t>::is_always_lock_free,
              "semstm requires lock-free 64-bit atomics");

/// Types that can live in a transactional word.
template <typename T>
concept WordRepresentable =
    std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(word_t);

/// Encode a value into a word. Signed integrals are sign-extended so that
/// ordered semantic comparisons (Rel::SLT etc.) work across widths.
template <WordRepresentable T>
constexpr word_t to_word(T v) noexcept {
  if constexpr (std::is_integral_v<T> && std::is_signed_v<T>) {
    return static_cast<word_t>(static_cast<std::int64_t>(v));
  } else if constexpr (std::is_integral_v<T> || std::is_enum_v<T>) {
    return static_cast<word_t>(v);
  } else if constexpr (std::is_pointer_v<T>) {
    return reinterpret_cast<word_t>(v);
  } else {
    word_t w = 0;
    std::memcpy(&w, &v, sizeof(T));
    return w;
  }
}

/// Decode a word back to a value (inverse of to_word).
template <WordRepresentable T>
constexpr T from_word(word_t w) noexcept {
  if constexpr (std::is_integral_v<T> || std::is_enum_v<T>) {
    return static_cast<T>(w);
  } else if constexpr (std::is_pointer_v<T>) {
    return reinterpret_cast<T>(w);
  } else {
    T v;
    std::memcpy(&v, &w, sizeof(T));
    return v;
  }
}

}  // namespace semstm
