// Algorithm: the factory for transaction descriptors plus the shared state
// they coordinate through (global clocks, orec tables, locks).
//
// One Algorithm instance corresponds to one "TM system" — an experiment
// instantiates it once and calls make_tx() per worker thread.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/tx.hpp"
#include "runtime/serial_gate.hpp"

namespace semstm {

struct AlgoOptions {
  unsigned orec_log2 = 16;  ///< orec table size for TL2-family algorithms
};

class Algorithm {
 public:
  virtual ~Algorithm() = default;
  virtual const char* name() const noexcept = 0;
  /// True for algorithms that handle cmp/inc semantically (S-NOrec, S-TL2).
  virtual bool semantic() const noexcept = 0;
  virtual std::unique_ptr<Tx> make_tx() = 0;

  /// The serial-irrevocable gate every descriptor of this TM instance
  /// honours at begin()/commit() (see runtime/serial_gate.hpp).
  SerialGate& serial_gate() noexcept { return gate_; }

 private:
  SerialGate gate_;
};

/// Create an algorithm by name: "cgl", "norec", "snorec", "tl2", "stl2".
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<Algorithm> make_algorithm(std::string_view name,
                                          const AlgoOptions& opts = {});

/// All registered algorithm names, in canonical benchmark order.
const std::vector<std::string>& algorithm_names();

}  // namespace semstm
