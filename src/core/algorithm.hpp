// Algorithm: the factory for transaction descriptors plus the shared state
// they coordinate through (global clocks, orec tables, locks).
//
// One Algorithm instance corresponds to one "TM system" — an experiment
// instantiates it once and calls make_tx() per worker thread.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/tx.hpp"
#include "runtime/serial_gate.hpp"

namespace semstm {

struct AlgoOptions {
  /// Orec table size (log2) for TL2-family algorithms. make_algorithm
  /// validates the range [kOrecLog2Min, kOrecLog2Max]: 0 would degenerate
  /// to a single global lock-word, and anything past 28 silently allocates
  /// multi-gigabyte tables (or overflows the shift on exotic targets).
  unsigned orec_log2 = 16;

  static constexpr unsigned kOrecLog2Min = 1;
  static constexpr unsigned kOrecLog2Max = 28;
};

/// The closed set of registered algorithms, in canonical benchmark order.
/// This is the key the static-dispatch tier switches over: AlgoId → one
/// concrete descriptor core type (see core/dispatch.hpp).
enum class AlgoId : std::uint8_t { kCgl, kNorec, kSnorec, kTl2, kStl2 };

/// Resolve an algorithm name ("cgl", "norec", "snorec", "tl2", "stl2") to
/// its AlgoId. Throws std::invalid_argument for unknown names.
AlgoId algo_id(std::string_view name);

class Algorithm {
 public:
  virtual ~Algorithm() = default;
  virtual const char* name() const noexcept = 0;
  /// True for algorithms that handle cmp/inc semantically (S-NOrec, S-TL2).
  virtual bool semantic() const noexcept = 0;
  virtual std::unique_ptr<Tx> make_tx() = 0;

  /// The serial-irrevocable gate every descriptor of this TM instance
  /// honours at begin()/commit() (see runtime/serial_gate.hpp).
  SerialGate& serial_gate() noexcept { return gate_; }

 private:
  SerialGate gate_;
};

/// Create an algorithm by name: "cgl", "norec", "snorec", "tl2", "stl2".
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<Algorithm> make_algorithm(std::string_view name,
                                          const AlgoOptions& opts = {});

/// All registered algorithm names, in canonical benchmark order.
const std::vector<std::string>& algorithm_names();

}  // namespace semstm
