// Per-transaction-descriptor operation counters.
//
// These are the statistics behind the paper's Table 3 (average number of
// read / write / compare / increment / promote operations per transaction)
// and the abort-rate series of Figures 1 and 2.
#pragma once

#include <cstdint>

namespace semstm {

struct TxStats {
  std::uint64_t starts = 0;       ///< transaction attempts (commits + aborts)
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;

  std::uint64_t reads = 0;        ///< plain transactional reads
  std::uint64_t writes = 0;       ///< plain transactional writes
  std::uint64_t compares = 0;     ///< semantic cmp (address–value)
  std::uint64_t compares2 = 0;    ///< semantic cmp (address–address)
  std::uint64_t increments = 0;   ///< semantic inc/dec
  std::uint64_t promotions = 0;   ///< inc promoted to read+write (RAW)
  std::uint64_t validations = 0;  ///< read/compare-set validation passes

  TxStats& operator+=(const TxStats& o) noexcept {
    starts += o.starts;
    commits += o.commits;
    aborts += o.aborts;
    reads += o.reads;
    writes += o.writes;
    compares += o.compares;
    compares2 += o.compares2;
    increments += o.increments;
    promotions += o.promotions;
    validations += o.validations;
    return *this;
  }

  void reset() noexcept { *this = TxStats{}; }

  /// Abort percentage over all attempts, as plotted in the paper's figures.
  double abort_pct() const noexcept {
    const auto total = commits + aborts;
    return total == 0 ? 0.0 : 100.0 * static_cast<double>(aborts) /
                                  static_cast<double>(total);
  }
};

}  // namespace semstm
