// Per-transaction-descriptor operation counters.
//
// These are the statistics behind the paper's Table 3 (average number of
// read / write / compare / increment / promote operations per transaction)
// and the abort-rate series of Figures 1 and 2, plus the observability
// layer's abort-cause and latency breakdowns (src/obs).
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/abort_cause.hpp"
#include "obs/latency_histogram.hpp"

namespace semstm {

// Accounting contract (kept in sync with atomically()'s retry loop):
//
//   starts == commits + aborts + exceptions
//   aborts == sum(abort_causes)           (every TxAbort is thrown through
//                                          Tx::abort_tx(cause, addr); an
//                                          untagged throw — only possible
//                                          from test doubles driving Tx
//                                          methods directly — lands in the
//                                          kUnknown bucket)
//
// A *user* exception that escapes the transaction body rolls the attempt
// back but is counted as `exceptions`, NOT as an abort: the transaction is
// abandoned rather than retried, so folding it into `aborts` would skew
// abort_pct() — the very series Figures 1–2 plot — with events that are not
// contention. An explicit Tx::user_abort() IS an abort (cause kUserAbort):
// the attempt is retried. `retries` counts loop-backs after an abort (the
// attempt that follows each abort), `fallbacks` counts escalations to the
// serial-irrevocable token, and `max_consec_aborts` is the high-water mark
// of consecutive aborts of a single atomically() invocation (aggregated
// with max, not sum).
//
// Latency histograms (populated only in SEMSTM_TRACE builds; always
// present so the reporting schema is stable):
//   lat_commit   — begin() -> successful commit, committed attempts only
//   lat_validate — one read-set / compare-set validation pass (aborting
//                  passes included: ScopedLatency records during unwind)
//   lat_backoff  — contention-manager inter-attempt wait
//   lat_gate     — serial-irrevocable token hold (acquire -> release)
// Histograms and the cause array aggregate element-wise under operator+=
// (min/max merged, everything else summed), so thread-level TxStats sum
// into run-level TxStats exactly like the scalar counters.
struct TxStats {
  std::uint64_t starts = 0;       ///< attempts (commits + aborts + exceptions)
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t exceptions = 0;   ///< attempts abandoned by a user exception
  std::uint64_t retries = 0;      ///< re-attempts after an abort
  std::uint64_t fallbacks = 0;    ///< serial-irrevocable escalations
  std::uint64_t max_consec_aborts = 0;  ///< worst single-transaction streak

  std::uint64_t reads = 0;        ///< plain transactional reads
  std::uint64_t writes = 0;       ///< plain transactional writes
  std::uint64_t compares = 0;     ///< semantic cmp (address–value)
  std::uint64_t compares2 = 0;    ///< semantic cmp (address–address)
  std::uint64_t increments = 0;   ///< semantic inc/dec
  std::uint64_t promotions = 0;   ///< inc promoted to read+write (RAW)
  std::uint64_t validations = 0;  ///< read/compare-set validation passes

  // Read-set economy counters (PR 3): dedup keeps commit-time validation
  // O(unique locations) instead of O(reads). `readset_adds` counts entries
  // actually appended to a read/compare-set, `readset_dups` the appends
  // skipped because an equivalent entry was already tracked, and
  // `validate_entries` the entries examined across all validation passes —
  // the direct measure of validation work per commit.
  std::uint64_t readset_adds = 0;
  std::uint64_t readset_dups = 0;
  std::uint64_t validate_entries = 0;

  /// GV4 commit-clock adoptions (runtime/global_clock.hpp): commits that
  /// lost the clock CAS and adopted a concurrent committer's stamp. Zero
  /// in the 1-carrier sim by construction (no yield point inside
  /// fetch_increment) — the determinism suite asserts exactly that; under
  /// real threads it measures clock-line contention relieved by GV4.
  std::uint64_t clock_adoptions = 0;

  // Epoch-based reclamation (runtime/epoch.hpp, real-thread mode only —
  // the sim never routes frees through EBR, see the determinism note
  // there): nodes handed to EpochHandle::retire() and nodes actually
  // freed after their grace period. retires >= reclaims at all times;
  // they converge when the handles drain at thread exit.
  std::uint64_t epoch_retires = 0;
  std::uint64_t epoch_reclaims = 0;

  /// Aborts by cause, indexed by obs::AbortCause (see the contract above).
  std::uint64_t abort_causes[obs::kAbortCauseCount] = {};

  obs::LatencyHistogram lat_commit;
  obs::LatencyHistogram lat_validate;
  obs::LatencyHistogram lat_backoff;
  obs::LatencyHistogram lat_gate;

  std::uint64_t abort_cause(obs::AbortCause c) const noexcept {
    return abort_causes[static_cast<std::size_t>(c)];
  }

  void note_abort_cause(obs::AbortCause c) noexcept {
    ++abort_causes[static_cast<std::size_t>(c)];
  }

  TxStats& operator+=(const TxStats& o) noexcept {
    starts += o.starts;
    commits += o.commits;
    aborts += o.aborts;
    exceptions += o.exceptions;
    retries += o.retries;
    fallbacks += o.fallbacks;
    if (o.max_consec_aborts > max_consec_aborts) {
      max_consec_aborts = o.max_consec_aborts;
    }
    reads += o.reads;
    writes += o.writes;
    compares += o.compares;
    compares2 += o.compares2;
    increments += o.increments;
    promotions += o.promotions;
    validations += o.validations;
    readset_adds += o.readset_adds;
    readset_dups += o.readset_dups;
    validate_entries += o.validate_entries;
    clock_adoptions += o.clock_adoptions;
    epoch_retires += o.epoch_retires;
    epoch_reclaims += o.epoch_reclaims;
    for (std::size_t i = 0; i < obs::kAbortCauseCount; ++i) {
      abort_causes[i] += o.abort_causes[i];
    }
    lat_commit += o.lat_commit;
    lat_validate += o.lat_validate;
    lat_backoff += o.lat_backoff;
    lat_gate += o.lat_gate;
    return *this;
  }

  /// Windowed-delta subtraction (obs/metrics.hpp): `o` must be an earlier
  /// snapshot of *this* (single-writer history), so every summable field of
  /// `o` is <= ours. Summable fields subtract exactly; max_consec_aborts —
  /// aggregated by max, not sum — keeps the minuend's running high-water
  /// mark, and histogram min/max follow the same rule (see
  /// LatencyHistogram::operator-=). Those running extremes are monotone
  /// over a single writer's life, so re-summing every window delta with
  /// operator+= reproduces the final TxStats field-for-field — the
  /// partition invariant tests/test_metrics.cpp asserts as full equality.
  TxStats& operator-=(const TxStats& o) noexcept {
    starts -= o.starts;
    commits -= o.commits;
    aborts -= o.aborts;
    exceptions -= o.exceptions;
    retries -= o.retries;
    fallbacks -= o.fallbacks;
    // max_consec_aborts: keep the running max (see contract above).
    reads -= o.reads;
    writes -= o.writes;
    compares -= o.compares;
    compares2 -= o.compares2;
    increments -= o.increments;
    promotions -= o.promotions;
    validations -= o.validations;
    readset_adds -= o.readset_adds;
    readset_dups -= o.readset_dups;
    validate_entries -= o.validate_entries;
    clock_adoptions -= o.clock_adoptions;
    epoch_retires -= o.epoch_retires;
    epoch_reclaims -= o.epoch_reclaims;
    for (std::size_t i = 0; i < obs::kAbortCauseCount; ++i) {
      abort_causes[i] -= o.abort_causes[i];
    }
    lat_commit -= o.lat_commit;
    lat_validate -= o.lat_validate;
    lat_backoff -= o.lat_backoff;
    lat_gate -= o.lat_gate;
    return *this;
  }

  void reset() noexcept { *this = TxStats{}; }

  /// Abort percentage over contended attempts (commits + aborts), as
  /// plotted in the paper's figures; exception-abandoned attempts are
  /// excluded by design (see the accounting contract above).
  double abort_pct() const noexcept {
    const auto total = commits + aborts;
    return total == 0 ? 0.0 : 100.0 * static_cast<double>(aborts) /
                                  static_cast<double>(total);
  }
};

}  // namespace semstm
