// atomically(): the TM_BEGIN / TM_END retry loop.
//
// Runs the user lambda against the bound thread context's transaction,
// retrying on every TxAbort with the context's contention-manager policy
// pacing the attempts (runtime/contention.hpp). A bounded-retry policy may
// escalate a starving transaction to *serial-irrevocable* mode: the loop
// acquires the global token (runtime/serial_gate.hpp), every other
// transaction quiesces at begin(), and the next attempt runs alone and is
// guaranteed to commit.
//
// User exceptions roll the transaction back and propagate (lazy versioning
// means no shared state was touched); they are counted as `exceptions`,
// not aborts — see the accounting contract in core/stats.hpp.
//
// Observability: this loop is where abort causes recorded by Tx::abort_tx()
// are folded into TxStats::abort_causes, and — in SEMSTM_TRACE builds —
// where attempt latency, backoff waits and serial-token hold times are
// measured and begin/commit/abort/fallback events are pushed into the
// descriptor's trace ring (src/obs).
#pragma once

#include <cstring>
#include <type_traits>
#include <utility>

#include "core/context.hpp"
#include "core/tx.hpp"
#include "obs/clock.hpp"
#include "sched/yieldpoint.hpp"

namespace semstm {

namespace detail {

/// Retry-loop bookkeeping shared by the void and value-returning paths.
/// Templated on the descriptor type: with TxT = Tx every tx.* call below is
/// virtual (the type-erased tier); with a concrete core (NorecCore, ...)
/// they all bind statically and inline (DESIGN.md §4.12).
template <typename TxT>
struct AttemptLoop {
  TxT& tx;
  ContentionManager& cm;
  std::uint64_t consecutive = 0;
  bool irrevocable = false;
  std::uint64_t attempt_start = 0;  ///< obs ticks (traced builds only)
  std::uint64_t gate_acquired = 0;  ///< obs ticks of token acquisition

  void trace(obs::EventKind kind, std::uint64_t ts, std::uint64_t dur,
             obs::AbortCause cause = obs::AbortCause::kUnknown,
             const void* addr = nullptr) noexcept {
    if constexpr (obs::kTraceEnabled) {
      if (obs::TraceRing* ring = tx.trace_ring()) {
        ring->push(obs::TraceEvent{ts, dur, addr, kind, cause, 0});
      }
    } else {
      (void)kind, (void)ts, (void)dur, (void)cause, (void)addr;
    }
  }

  /// Windowed-metrics hook (obs/metrics.hpp): fold the descriptor's
  /// cumulative stats into its bound WindowSeries at every attempt end, so
  /// an attempt's whole delta lands in the window containing its end and
  /// windows partition the run exactly. No-op unless a series is bound;
  /// compiles away with the trace gate off.
  void sample_metrics() noexcept {
    if constexpr (obs::kTraceEnabled) {
      if (obs::WindowSeries* s = tx.metrics_series()) {
        s->sample(obs::now_ticks(), tx.stats);
      }
    }
  }

  void on_attempt_start() noexcept {
    tx.clear_last_abort();
    if constexpr (obs::kTraceEnabled) {
      attempt_start = obs::now_ticks();
      trace(obs::EventKind::kBegin, attempt_start, 0);
    }
  }

  void on_commit() noexcept {
    ++tx.stats.commits;
    if constexpr (obs::kTraceEnabled) {
      const std::uint64_t now = obs::now_ticks();
      tx.stats.lat_commit.record(now - attempt_start);
      trace(obs::EventKind::kCommit, now, now - attempt_start);
    }
    release_token();
    cm.on_finish();
    sample_metrics();
  }

  // The abort and exception unwinders stay out of line (cold): they are
  // reached only through the catch handlers, and inlining them — twice per
  // atomically() instantiation in the monomorphized tier — costs hot-loop
  // code footprint while saving nothing on a path that just unwound.
  [[gnu::cold, gnu::noinline]] void on_abort() {
    tx.rollback();
    ++tx.stats.aborts;
    ++tx.stats.retries;
    ++consecutive;
    if (consecutive > tx.stats.max_consec_aborts) {
      tx.stats.max_consec_aborts = consecutive;
    }
    const obs::AbortInfo& why = tx.last_abort();
    tx.stats.note_abort_cause(why.cause);
    if constexpr (obs::kTraceEnabled) {
      const std::uint64_t now = obs::now_ticks();
      trace(obs::EventKind::kAbort, now, now - attempt_start, why.cause,
            why.addr);
    }
    // Already irrevocable transactions keep the token and simply retry
    // (with the system quiesced they cannot abort again); everyone else
    // asks the policy whether to wait or to escalate.
    if (!irrevocable) {
      std::uint64_t wait_start = 0;
      if constexpr (obs::kTraceEnabled) wait_start = obs::now_ticks();
      const bool escalate = cm.on_abort(consecutive);
      if constexpr (obs::kTraceEnabled) {
        tx.stats.lat_backoff.record(obs::now_ticks() - wait_start);
      }
      if (escalate && tx.serial_gate() != nullptr) {
        ++tx.stats.fallbacks;
        trace(obs::EventKind::kFallback, obs::now_ticks(), 0);
        tx.serial_gate()->acquire(tx.tx_id());
        if constexpr (obs::kTraceEnabled) gate_acquired = obs::now_ticks();
        irrevocable = true;
      }
    }
    sample_metrics();
  }

  [[gnu::cold, gnu::noinline]] void on_exception() noexcept {
    tx.rollback();
    ++tx.stats.exceptions;
    release_token();
    cm.on_finish();
    sample_metrics();
  }

 private:
  void release_token() noexcept {
    if (irrevocable) {
      tx.serial_gate()->release();
      if constexpr (obs::kTraceEnabled) {
        const std::uint64_t now = obs::now_ticks();
        tx.stats.lat_gate.record(now - gate_acquired);
        trace(obs::EventKind::kSerialHold, now, now - gate_acquired);
      }
      irrevocable = false;
    }
  }
};

/// Recover the bound descriptor at the requested static type. TxT = Tx
/// yields the type-erased facade; a concrete core type downcasts the cached
/// core pointer — valid only when the bound algorithm actually produced
/// that core, which debug builds verify against the cached algorithm name.
template <typename TxT>
TxT& bound_tx(ThreadCtx& ctx) {
  if constexpr (std::is_same_v<TxT, Tx>) {
    return *ctx.tx;
  } else {
    assert(ctx.core != nullptr && ctx.algo != nullptr &&
           std::strcmp(ctx.algo, TxT::kName) == 0 &&
           "atomically<TxT>: bound descriptor is not of type TxT");
    return *static_cast<TxT*>(ctx.core);
  }
}

}  // namespace detail

/// TM_BEGIN/TM_END. The default instantiation (atomically(body) with a
/// body taking Tx&) drives the descriptor through its virtual interface;
/// atomically<Core>(body) binds every per-access call statically — the
/// monomorphic fast path reached via dispatch_algorithm().
template <typename TxT = Tx, typename F>
decltype(auto) atomically(F&& body) {
  ThreadCtx* ctx = tls_ctx();
  if (ctx == nullptr || ctx->tx == nullptr) die_no_ctx("atomically()");
  detail::AttemptLoop<TxT> loop{detail::bound_tx<TxT>(*ctx), *ctx->cm};
  TxT& tx = loop.tx;

  for (;;) {
    ++tx.stats.starts;
    loop.on_attempt_start();
    try {
      sched::tick(sched::Cost::kBegin);
      tx.begin();
      if constexpr (std::is_void_v<std::invoke_result_t<F&, TxT&>>) {
        body(tx);
        tx.commit();
        loop.on_commit();
        return;
      } else {
        auto result = body(tx);
        tx.commit();
        loop.on_commit();
        return result;
      }
    } catch (const TxAbort&) {
      loop.on_abort();
    } catch (...) {
      loop.on_exception();
      throw;
    }
  }
}

}  // namespace semstm
