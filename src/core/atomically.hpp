// atomically(): the TM_BEGIN / TM_END retry loop.
//
// Runs the user lambda against the bound thread context's transaction,
// retrying with randomized exponential backoff on every TxAbort. User
// exceptions roll the transaction back and propagate (lazy versioning
// means no shared state was touched).
#pragma once

#include <type_traits>
#include <utility>

#include "core/context.hpp"
#include "core/tx.hpp"
#include "sched/yieldpoint.hpp"

namespace semstm {

template <typename F>
decltype(auto) atomically(F&& body) {
  ThreadCtx* ctx = tls_ctx();
  assert(ctx != nullptr && ctx->tx != nullptr &&
         "atomically() requires a bound ThreadCtx (see CtxBinder)");
  Tx& tx = *ctx->tx;

  for (;;) {
    ++tx.stats.starts;
    try {
      sched::tick(sched::Cost::kBegin);
      tx.begin();
      if constexpr (std::is_void_v<std::invoke_result_t<F&, Tx&>>) {
        body(tx);
        tx.commit();
        ++tx.stats.commits;
        ctx->backoff.reset();
        return;
      } else {
        auto result = body(tx);
        tx.commit();
        ++tx.stats.commits;
        ctx->backoff.reset();
        return result;
      }
    } catch (const TxAbort&) {
      tx.rollback();
      ++tx.stats.aborts;
      ctx->backoff.pause();
    } catch (...) {
      tx.rollback();
      throw;
    }
  }
}

}  // namespace semstm
