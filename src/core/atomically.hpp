// atomically(): the TM_BEGIN / TM_END retry loop.
//
// Runs the user lambda against the bound thread context's transaction,
// retrying on every TxAbort with the context's contention-manager policy
// pacing the attempts (runtime/contention.hpp). A bounded-retry policy may
// escalate a starving transaction to *serial-irrevocable* mode: the loop
// acquires the global token (runtime/serial_gate.hpp), every other
// transaction quiesces at begin(), and the next attempt runs alone and is
// guaranteed to commit.
//
// User exceptions roll the transaction back and propagate (lazy versioning
// means no shared state was touched); they are counted as `exceptions`,
// not aborts — see the accounting contract in core/stats.hpp.
#pragma once

#include <type_traits>
#include <utility>

#include "core/context.hpp"
#include "core/tx.hpp"
#include "sched/yieldpoint.hpp"

namespace semstm {

namespace detail {

/// Retry-loop bookkeeping shared by the void and value-returning paths.
struct AttemptLoop {
  Tx& tx;
  ContentionManager& cm;
  std::uint64_t consecutive = 0;
  bool irrevocable = false;

  void on_commit() noexcept {
    ++tx.stats.commits;
    release_token();
    cm.on_finish();
  }

  void on_abort() {
    tx.rollback();
    ++tx.stats.aborts;
    ++tx.stats.retries;
    ++consecutive;
    if (consecutive > tx.stats.max_consec_aborts) {
      tx.stats.max_consec_aborts = consecutive;
    }
    // Already irrevocable transactions keep the token and simply retry
    // (with the system quiesced they cannot abort again); everyone else
    // asks the policy whether to wait or to escalate.
    if (!irrevocable && cm.on_abort(consecutive) &&
        tx.serial_gate() != nullptr) {
      ++tx.stats.fallbacks;
      tx.serial_gate()->acquire(&tx);
      irrevocable = true;
    }
  }

  void on_exception() noexcept {
    tx.rollback();
    ++tx.stats.exceptions;
    release_token();
    cm.on_finish();
  }

 private:
  void release_token() noexcept {
    if (irrevocable) {
      tx.serial_gate()->release();
      irrevocable = false;
    }
  }
};

}  // namespace detail

template <typename F>
decltype(auto) atomically(F&& body) {
  ThreadCtx* ctx = tls_ctx();
  assert(ctx != nullptr && ctx->tx != nullptr &&
         "atomically() requires a bound ThreadCtx (see CtxBinder)");
  detail::AttemptLoop loop{*ctx->tx, *ctx->cm};
  Tx& tx = loop.tx;

  for (;;) {
    ++tx.stats.starts;
    try {
      sched::tick(sched::Cost::kBegin);
      tx.begin();
      if constexpr (std::is_void_v<std::invoke_result_t<F&, Tx&>>) {
        body(tx);
        tx.commit();
        loop.on_commit();
        return;
      } else {
        auto result = body(tx);
        tx.commit();
        loop.on_commit();
        return result;
      }
    } catch (const TxAbort&) {
      loop.on_abort();
    } catch (...) {
      loop.on_exception();
      throw;
    }
  }
}

}  // namespace semstm
