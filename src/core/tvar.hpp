// TVar<T>: the typed public face of a transactional word.
//
// Classical access:   x.get(tx) / x.set(tx, v)          (TM_READ / TM_WRITE)
// Semantic access:    x.gt(tx, v), x.lte(tx, other)...  (Table 1)
//                     x.add(tx, d) / x.sub(tx, d)       (TM_INC / TM_DEC)
//
// Ordered comparisons pick the signed or unsigned relation from T.
// `unsafe_*` accessors bypass the TM for single-threaded setup/verification.
//
// Every accessor is a member template over the descriptor type: passed a
// Tx& it dispatches virtually (type-erased tier), passed a concrete core
// (NorecCore&, ...) the tx.read/tx.cmp/... calls bind statically and
// inline into the caller (DESIGN.md §4.12). Call sites are unchanged —
// the descriptor argument deduces TxT.
#pragma once

#include <type_traits>

#include "core/tx.hpp"
#include "core/word.hpp"

namespace semstm {

template <WordRepresentable T>
class TVar {
 public:
  using value_type = T;

  constexpr TVar() noexcept : word_(to_word(T{})) {}
  explicit constexpr TVar(T init) noexcept : word_(to_word(init)) {}

  // TVars are pinned in memory (their address is their identity).
  TVar(const TVar&) = delete;
  TVar& operator=(const TVar&) = delete;

  // -- Classical constructs -----------------------------------------------

  template <typename TxT>
  T get(TxT& tx) const {
    return from_word<T>(tx.read(&word_));
  }
  template <typename TxT>
  void set(TxT& tx, T v) {
    tx.write(&word_, to_word(v));
  }

  // -- Semantic constructs: address–value ----------------------------------

  template <typename TxT>
  bool eq(TxT& tx, T v) const {
    return tx.cmp(&word_, Rel::EQ, to_word(v));
  }
  template <typename TxT>
  bool neq(TxT& tx, T v) const {
    return tx.cmp(&word_, Rel::NEQ, to_word(v));
  }
  template <typename TxT>
  bool lt(TxT& tx, T v) const
    requires std::is_integral_v<T>
  {
    return tx.cmp(&word_, rel_lt<T>(), to_word(v));
  }
  template <typename TxT>
  bool lte(TxT& tx, T v) const
    requires std::is_integral_v<T>
  {
    return tx.cmp(&word_, rel_le<T>(), to_word(v));
  }
  template <typename TxT>
  bool gt(TxT& tx, T v) const
    requires std::is_integral_v<T>
  {
    return tx.cmp(&word_, rel_gt<T>(), to_word(v));
  }
  template <typename TxT>
  bool gte(TxT& tx, T v) const
    requires std::is_integral_v<T>
  {
    return tx.cmp(&word_, rel_ge<T>(), to_word(v));
  }

  // -- Semantic constructs: address–address --------------------------------

  template <typename TxT>
  bool eq(TxT& tx, const TVar& o) const {
    return tx.cmp2(&word_, Rel::EQ, &o.word_);
  }
  template <typename TxT>
  bool neq(TxT& tx, const TVar& o) const {
    return tx.cmp2(&word_, Rel::NEQ, &o.word_);
  }
  template <typename TxT>
  bool lt(TxT& tx, const TVar& o) const
    requires std::is_integral_v<T>
  {
    return tx.cmp2(&word_, rel_lt<T>(), &o.word_);
  }
  template <typename TxT>
  bool lte(TxT& tx, const TVar& o) const
    requires std::is_integral_v<T>
  {
    return tx.cmp2(&word_, rel_le<T>(), &o.word_);
  }
  template <typename TxT>
  bool gt(TxT& tx, const TVar& o) const
    requires std::is_integral_v<T>
  {
    return tx.cmp2(&word_, rel_gt<T>(), &o.word_);
  }
  template <typename TxT>
  bool gte(TxT& tx, const TVar& o) const
    requires std::is_integral_v<T>
  {
    return tx.cmp2(&word_, rel_ge<T>(), &o.word_);
  }

  // -- Semantic constructs: increment/decrement -----------------------------

  template <typename TxT>
  void add(TxT& tx, T delta)
    requires std::is_integral_v<T>
  {
    tx.inc(&word_, to_word(delta));
  }
  template <typename TxT>
  void sub(TxT& tx, T delta)
    requires std::is_integral_v<T>
  {
    tx.inc(&word_, to_word(static_cast<T>(0)) - to_word(delta));
  }

  // -- Non-transactional escape hatches -------------------------------------

  T unsafe_get() const noexcept {
    return from_word<T>(word_.load(std::memory_order_acquire));
  }
  void unsafe_set(T v) noexcept {
    word_.store(to_word(v), std::memory_order_release);
  }

  /// Raw word access for low-level code (tmir ABI, tests).
  tword* word() noexcept { return &word_; }
  const tword* word() const noexcept { return &word_; }

 private:
  mutable tword word_;
};

/// Build a clause term `var REL value` for Tx::cmp_or.
template <WordRepresentable T>
CmpTerm term(const TVar<T>& var, Rel rel, T value) noexcept {
  return CmpTerm{var.word(), nullptr, to_word(value), rel};
}

/// Build a clause term `a REL b` (address–address) for Tx::cmp_or.
template <WordRepresentable T>
CmpTerm term(const TVar<T>& a, Rel rel, const TVar<T>& b) noexcept {
  return CmpTerm{a.word(), b.word(), 0, rel};
}

}  // namespace semstm
