// Contention manager: randomized exponential backoff between attempts.
//
// The paper relies on the baseline algorithms' native progress behaviour
// plus a retry/backoff loop (and a timeout on S-TL2's orec waits, §4.2);
// this class provides both the backoff and the bounded-wait helper.
#pragma once

#include <cstdint>

#include "sched/yieldpoint.hpp"
#include "util/rng.hpp"

namespace semstm {

class Backoff {
 public:
  /// The seed must be unique per thread/descriptor — identical seeds make
  /// all threads draw identical pause sequences and back off in lockstep,
  /// defeating the randomization entirely (this was a real bug: every
  /// Backoff used to default to one shared seed). ThreadCtx derives a
  /// per-context seed; pass an explicit stream seed everywhere else.
  explicit Backoff(std::uint64_t seed) : rng_(seed) {}

  /// Call after an abort; spins for a randomized, exponentially growing
  /// number of pause steps (virtual ticks under the simulator). Returns the
  /// number of pause steps taken (observable in tests).
  std::uint64_t pause() {
    const std::uint64_t spins = rng_.below(ceiling_) + 1;
    for (std::uint64_t i = 0; i < spins; ++i) sched::spin_pause();
    if (ceiling_ < kMaxCeiling) ceiling_ *= 2;
    return spins;
  }

  void reset() noexcept { ceiling_ = kMinCeiling; }

 private:
  static constexpr std::uint64_t kMinCeiling = 8;
  static constexpr std::uint64_t kMaxCeiling = 4096;

  Rng rng_;
  std::uint64_t ceiling_ = kMinCeiling;
};

/// Bounded spin used by S-TL2 when a cmp observes a locked orec: wait for
/// the owner to release rather than aborting, but give up after `limit`
/// pauses to avoid starvation (paper §4.2 "timeout mechanism"). The limit
/// is sized to a couple of commit write-back durations — beyond that the
/// lock holder is not making progress for us and waiting only burns time.
template <typename Pred>
bool bounded_wait(Pred&& released, std::uint64_t limit = 64) {
  for (std::uint64_t i = 0; i < limit; ++i) {
    if (released()) return true;
    sched::spin_pause();
  }
  return released();
}

}  // namespace semstm
