// Epoch-based reclamation (EBR) for safe node retirement under real
// threads (DESIGN.md §4.16).
//
// The containers (src/containers) unlink nodes transactionally but never
// free them mid-run: in the 1-carrier fiber sim that is merely frugal, but
// under real threads any eager free is a use-after-free against a
// concurrent reader that already holds the pointer. Classic EBR closes
// this: readers *pin* the global epoch around each unlinked-pointer
// dereference window, writers *retire* unlinked nodes into a local limbo
// list stamped with the retirement epoch, and a retired node is freed only
// once the global epoch has advanced twice past its stamp — by then every
// reader pinned at retirement time has unpinned, so no live reference can
// remain [K. Fraser, "Practical lock-freedom", §5.2.3].
//
// Shapes and invariants:
//
//  - EpochManager: the shared side — a padded global epoch counter and a
//    padded announce slot per registered handle. Slots are leased for the
//    manager's lifetime (handles are per-thread and few; no free-list).
//  - EpochHandle: the per-thread side — pin()/unpin() bracket read-side
//    critical sections; retire() stamps and buffers; reclamation runs
//    opportunistically every kAdvanceEvery retires, or on flush().
//  - Epoch advance (global e -> e+1) requires every announce slot to be
//    quiescent or already at e. A handle announcing a *stale* epoch
//    blocks advance — conservative, never unsafe.
//  - A node retired at epoch r is reclaimed when global >= r + 2: one
//    advance proves every pre-retirement reader has since re-announced or
//    unpinned, the second that none of them can still be inside a section
//    that observed the unlinked pointer.
//
// Memory orders: announce stores and the advance scan are seq_cst — the
// scan must not overtake a concurrent pin into the epoch being retired
// (store buffering on announce-vs-global is exactly the reordering that
// breaks EBR; cf. the §4.14 audit). Unpin is a release store: it publishes
// the section's reads before the slot reads quiescent.
//
// Accounting: retire/reclaim totals feed TxStats (epoch_retires /
// epoch_reclaims) through bind_stats(), surfacing reclamation pressure in
// the same merged stats the bench JSON and tm_top already report.
//
// Determinism note: the sim path does NOT route container frees through
// this layer — node address reuse would perturb orec hashing and break
// bit-identical sim replay. EBR is exercised by the real-thread stress
// tests (TSan-checked) and is the designated reclamation substrate for the
// real-thread KV-service work.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/stats.hpp"
#include "util/padded.hpp"

namespace semstm {

class EpochManager {
 public:
  static constexpr std::size_t kMaxSlots = 64;
  static constexpr std::uint64_t kQuiescent = 0;  ///< slot value: not pinned

  EpochManager() { global_.value.store(1, std::memory_order_relaxed); }

  /// Current global epoch (starts at 1 so kQuiescent can never alias a
  /// real epoch).
  std::uint64_t epoch() const noexcept {
    return global_.value.load(std::memory_order_seq_cst);
  }

  /// Try to advance the global epoch: succeeds iff every registered slot
  /// is quiescent or already announcing the current epoch. Any thread may
  /// call this; failure is benign (retry later).
  bool try_advance() noexcept {
    const std::uint64_t e = epoch();
    const unsigned n = nslots_.load(std::memory_order_acquire);
    for (unsigned s = 0; s < n; ++s) {
      const std::uint64_t a = slots_[s].value.load(std::memory_order_seq_cst);
      if (a != kQuiescent && a != e) return false;
    }
    std::uint64_t expected = e;
    return global_.value.compare_exchange_strong(
        expected, e + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
  }

  /// Registered handle count (observability/tests).
  unsigned slots_in_use() const noexcept {
    return nslots_.load(std::memory_order_acquire);
  }

 private:
  friend class EpochHandle;

  unsigned lease_slot() noexcept {
    const unsigned s = nslots_.fetch_add(1, std::memory_order_acq_rel);
    assert(s < kMaxSlots && "EpochManager announce slots exhausted");
    return s;
  }

  Padded<std::atomic<std::uint64_t>> global_{};
  Padded<std::atomic<std::uint64_t>> slots_[kMaxSlots];
  std::atomic<unsigned> nslots_{0};

  static_assert(alignof(Padded<std::atomic<std::uint64_t>>) >= kCacheLine &&
                    sizeof(Padded<std::atomic<std::uint64_t>>) >= kCacheLine,
                "epoch announce slots must not share cache lines");
};

/// Per-thread EBR participant. Not thread-safe: one handle per thread.
class EpochHandle {
 public:
  explicit EpochHandle(EpochManager& mgr)
      : mgr_(&mgr), slot_(mgr.lease_slot()) {}

  EpochHandle(const EpochHandle&) = delete;
  EpochHandle& operator=(const EpochHandle&) = delete;

  /// Destruction drains the limbo list. Precondition: every other handle
  /// on this manager is unpinned (true after sched::run_threads joins).
  /// If some handle is still pinned the un-reclaimable tail is leaked
  /// rather than freed unsafely.
  ~EpochHandle() {
    assert(!pinned_ && "destroying a pinned EpochHandle");
    for (int rounds = 0; !limbo_.empty() && rounds < 3; ++rounds) {
      reclaim();
      if (!limbo_.empty() && !mgr_->try_advance()) break;
    }
    reclaim();
  }

  /// Route retire/reclaim counts into a TxStats (e.g. the owning thread's
  /// descriptor stats, so run-level merges report reclamation pressure).
  /// The stats object must outlive every retire()/flush() call and, if
  /// the limbo list is non-empty, the handle's destructor.
  void bind_stats(TxStats* stats) noexcept { stats_ = stats; }

  /// Enter a read-side critical section: unlinked-but-unreclaimed nodes
  /// stay alive until the matching unpin(). Nestable is NOT supported —
  /// sections are flat, one per handle at a time.
  void pin() noexcept {
    assert(!pinned_);
    auto& slot = mgr_->slots_[slot_].value;
    std::uint64_t e = mgr_->epoch();
    slot.store(e, std::memory_order_seq_cst);
    // Close the announce race: if the epoch moved between our read and our
    // announce, re-announce the newer epoch so we never pin an epoch whose
    // grace period effectively ended before our announce became visible.
    for (;;) {
      const std::uint64_t now = mgr_->epoch();
      if (now == e) break;
      e = now;
      slot.store(e, std::memory_order_seq_cst);
    }
    pinned_ = true;
  }

  /// Leave the read-side critical section.
  void unpin() noexcept {
    assert(pinned_);
    mgr_->slots_[slot_].value.store(EpochManager::kQuiescent,
                                    std::memory_order_release);
    pinned_ = false;
  }

  bool pinned() const noexcept { return pinned_; }

  /// Retire an unlinked node: buffered until its grace period elapses,
  /// then freed with `deleter`. The caller must already have made the
  /// node unreachable to new readers.
  void retire(void* p, void (*deleter)(void*)) {
    limbo_.push_back({p, deleter, mgr_->epoch()});
    if (stats_ != nullptr) ++stats_->epoch_retires;
    if (++retires_since_scan_ >= kAdvanceEvery) {
      retires_since_scan_ = 0;
      mgr_->try_advance();
      reclaim();
    }
  }

  template <typename T>
  void retire(T* p) {
    retire(static_cast<void*>(p),
           [](void* q) { delete static_cast<T*>(q); });
  }

  /// Opportunistic reclamation: one advance attempt, then free everything
  /// whose grace period has elapsed. Returns the number freed.
  std::size_t flush() {
    mgr_->try_advance();
    return reclaim();
  }

  std::size_t limbo_size() const noexcept { return limbo_.size(); }

 private:
  struct Retired {
    void* ptr;
    void (*deleter)(void*);
    std::uint64_t epoch;
  };

  std::size_t reclaim() {
    const std::uint64_t e = mgr_->epoch();
    std::size_t freed = 0;
    std::size_t keep = 0;
    for (Retired& r : limbo_) {
      if (r.epoch + 2 <= e) {
        r.deleter(r.ptr);
        ++freed;
      } else {
        limbo_[keep++] = r;
      }
    }
    limbo_.resize(keep);
    // freed > 0 guard matters in the destructor: with an already-empty
    // limbo the bound TxStats may legitimately be gone by then, and a
    // zero-add would still be a use-after-free.
    if (stats_ != nullptr && freed > 0) stats_->epoch_reclaims += freed;
    return freed;
  }

  static constexpr std::uint32_t kAdvanceEvery = 64;

  EpochManager* mgr_;
  unsigned slot_;
  bool pinned_ = false;
  std::uint32_t retires_since_scan_ = 0;
  std::vector<Retired> limbo_;
  TxStats* stats_ = nullptr;
};

}  // namespace semstm
