// SerialGate: the global serial-irrevocable token (GCC libitm's `serialirr`
// idea), the escalation target of the bounded-retry contention manager.
//
// Protocol (honoured by every algorithm at begin()/commit(), see Tx's
// gate_enter()/gate_exit() helpers):
//
//   - A normal transaction *enters* the gate before doing any transactional
//     work and *exits* it when the attempt ends (commit or rollback). While
//     the token is held by another transaction, entry blocks.
//   - A starving transaction *acquires* the token between attempts (it holds
//     no transactional state at that point), then waits for every in-flight
//     transaction to drain. From then on it runs alone: no concurrent commit
//     can invalidate it, so the next attempt is guaranteed to succeed — the
//     optimistic algorithms degenerate to their single-threaded path.
//   - The token holder *releases* after its commit; blocked transactions
//     resume and re-sample their snapshots in begin() as usual.
//
// Deadlock-freedom argument: token acquisition happens only between attempts
// (no locks/snapshots held), entry waiters hold nothing either, and every
// entered transaction finishes in finite time (all its waits tick through
// sched::spin_pause(), so the fiber simulator keeps the system live too).
//
// Observability (src/obs): a conflict abort taken while another transaction
// holds (or is draining into) the token is reclassified by Tx::abort_tx()
// as kSerialGatePreempt — the root cause is the quiescing serial
// transaction, not ordinary contention — and in SEMSTM_TRACE builds
// atomically() times each acquire -> release span into TxStats::lat_gate
// and emits a kSerialHold trace event.
#pragma once

#include <atomic>
#include <cstdint>

#include "sched/yieldpoint.hpp"
#include "util/padded.hpp"

namespace semstm {

class SerialGate {
 public:
  /// True while some transaction holds the serial-irrevocable token.
  bool held() const noexcept {
    return owner_.value.load(std::memory_order_acquire) != nullptr;
  }

  /// True if `self` is the current token holder.
  bool held_by(const void* self) const noexcept {
    return owner_.value.load(std::memory_order_acquire) == self;
  }

  /// Normal-transaction entry: wait out any token holder, then register as
  /// in-flight. The add/re-check/undo dance closes the race with a holder
  /// that acquired the token between our check and our registration.
  void enter() {
    for (;;) {
      while (held()) sched::spin_pause();
      active_.value.fetch_add(1, std::memory_order_acq_rel);
      if (!held()) return;
      active_.value.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  /// Normal-transaction exit (attempt ended: committed or rolled back).
  void exit() noexcept {
    active_.value.fetch_sub(1, std::memory_order_acq_rel);
  }

  /// Become serial-irrevocable: contend for the token, then quiesce — wait
  /// until every registered transaction has exited. Call only between
  /// attempts (no transactional state held).
  void acquire(const void* self) {
    const void* expected = nullptr;
    while (!owner_.value.compare_exchange_weak(expected, self,
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed)) {
      expected = nullptr;
      sched::spin_pause();
    }
    while (active_.value.load(std::memory_order_acquire) != 0) {
      sched::spin_pause();
    }
  }

  /// Release the token (after the irrevocable commit, or when abandoning
  /// the transaction via a propagating user exception).
  void release() noexcept {
    owner_.value.store(nullptr, std::memory_order_release);
  }

 private:
  Padded<std::atomic<const void*>> owner_{};  ///< token: null = free
  Padded<std::atomic<std::uint64_t>> active_{};  ///< in-flight transactions
};

}  // namespace semstm
