// SerialGate: the global serial-irrevocable token (GCC libitm's `serialirr`
// idea), the escalation target of the bounded-retry contention manager.
//
// Protocol (honoured by every algorithm at begin()/commit(), see Tx's
// gate_enter()/gate_exit() helpers):
//
//   - A normal transaction *enters* the gate before doing any transactional
//     work and *exits* it when the attempt ends (commit or rollback). While
//     the token is held by another transaction, entry blocks.
//   - A starving transaction *acquires* the token between attempts (it holds
//     no transactional state at that point), then waits for every in-flight
//     transaction to drain. From then on it runs alone: no concurrent commit
//     can invalidate it, so the next attempt is guaranteed to succeed — the
//     optimistic algorithms degenerate to their single-threaded path.
//   - The token holder *releases* after its commit; blocked transactions
//     resume and re-sample their snapshots in begin() as usual.
//
// Deadlock-freedom argument: token acquisition happens only between attempts
// (no locks/snapshots held), entry waiters hold nothing either, and every
// entered transaction finishes in finite time (all its waits tick through
// sched::spin_pause(), so the fiber simulator keeps the system live too).
//
// Observability (src/obs): a conflict abort taken while another transaction
// holds (or is draining into) the token is reclassified by Tx::abort_tx()
// as kSerialGatePreempt — the root cause is the quiescing serial
// transaction, not ordinary contention — and in SEMSTM_TRACE builds
// atomically() times each acquire -> release span into TxStats::lat_gate
// and emits a kSerialHold trace event.
#pragma once

#include <atomic>
#include <cstdint>

#include "sched/yieldpoint.hpp"
#include "util/padded.hpp"

namespace semstm {

class SerialGate {
 public:
  /// True while some transaction holds the serial-irrevocable token.
  bool held() const noexcept {
    return owner_.value.load(std::memory_order_acquire) != nullptr;
  }

  /// True if `self` is the current token holder.
  bool held_by(const void* self) const noexcept {
    return owner_.value.load(std::memory_order_acquire) == self;
  }

  /// Normal-transaction entry: wait out any token holder, then register as
  /// in-flight. The add/re-check/undo dance closes the race with a holder
  /// that acquired the token between our check and our registration.
  ///
  /// Mutual-quiescence argument (litmus-audited; tests/test_litmus.cpp
  /// SerialGate suite DFS-enumerates every interleaving of this code
  /// against acquire()/release()): entry is granted only by the
  /// `!held()` re-check, which runs strictly AFTER our fetch_add is
  /// visible (both touch seq_cst-free atomics, but the fetch_add is
  /// acq_rel RMW and the owner_ load is acquire — on the single
  /// modification order of each atomic, either our add precedes the
  /// acquirer's drain read of active_, in which case the acquirer waits
  /// for our exit(), or the acquirer's owner_ CAS precedes our re-check
  /// load, in which case we observe held() and undo. Neither side can
  /// miss the other: there is no window where an enterer is past the
  /// re-check while the acquirer is past the drain with active_ == 0.
  /// The sched_point marks the adversarial window (registered but not
  /// yet re-checked) for the schedule explorer.
  void enter() {
    for (;;) {
      while (held()) sched::spin_pause();
      sched::sched_point();  // window: observed free, not yet registered —
                             // an acquirer may CAS AND pass the drain here,
                             // which is exactly what the re-check below
                             // exists to catch
      active_.value.fetch_add(1, std::memory_order_acq_rel);
      sched::sched_point();  // window: registered, holder may CAS now
      if (!held()) return;
      active_.value.fetch_sub(1, std::memory_order_acq_rel);
      sched::sched_point();  // window: undone, must re-wait
    }
  }

  /// Normal-transaction exit (attempt ended: committed or rolled back).
  void exit() noexcept {
    active_.value.fetch_sub(1, std::memory_order_acq_rel);
  }

  /// Become serial-irrevocable: contend for the token, then quiesce — wait
  /// until every registered transaction has exited. Call only between
  /// attempts (no transactional state held).
  void acquire(const void* self) {
    const void* expected = nullptr;
    while (!owner_.value.compare_exchange_weak(expected, self,
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed)) {
      expected = nullptr;
      sched::spin_pause();
    }
    sched::sched_point();  // window: token taken, drain not yet observed
    while (active_.value.load(std::memory_order_acquire) != 0) {
      sched::spin_pause();
    }
  }

  /// Release the token (after the irrevocable commit, or when abandoning
  /// the transaction via a propagating user exception). The release-store
  /// publishes every write of the serial section to the next enterer's
  /// acquire-load in held() — enterers blocked in the spin above resume
  /// only after observing it. Deliberately NOT a yield point: release runs
  /// on noexcept cleanup paths (AttemptLoop::release_token/on_exception),
  /// where a truncating controller's ScheduleStopped would std::terminate.
  /// The litmus suite explores the pre-release window from the test body
  /// instead (an explicit sched_point before calling release()).
  void release() noexcept {
    owner_.value.store(nullptr, std::memory_order_release);
  }

 private:
  Padded<std::atomic<const void*>> owner_{};  ///< token: null = free
  Padded<std::atomic<std::uint64_t>> active_{};  ///< in-flight transactions
};

}  // namespace semstm
