// SerialGate: the global serial-irrevocable token (GCC libitm's `serialirr`
// idea), the escalation target of the bounded-retry contention manager.
//
// Protocol (honoured by every algorithm at begin()/commit(), see Tx's
// gate_enter()/gate_exit() helpers):
//
//   - A normal transaction *enters* the gate before doing any transactional
//     work and *exits* it when the attempt ends (commit or rollback). While
//     the token is held by another transaction, entry blocks.
//   - A starving transaction *acquires* the token between attempts (it holds
//     no transactional state at that point), then waits for every in-flight
//     transaction to drain. From then on it runs alone: no concurrent commit
//     can invalidate it, so the next attempt is guaranteed to succeed — the
//     optimistic algorithms degenerate to their single-threaded path.
//   - The token holder *releases* after its commit; blocked transactions
//     resume and re-sample their snapshots in begin() as usual.
//
// Scalability (DESIGN.md §4.16): the in-flight count is an ANNOUNCE ARRAY —
// kSlots cache-line-padded counters, each transaction registering on the
// slot its identity hashes to — instead of one global counter. On the fast
// path (no token holder, i.e. essentially always) every transaction
// begin/end RMWs only its own slot's line, so N cores no longer ping-pong a
// single in-flight line on every transaction. The rare acquirer pays the
// scan: it drains each slot to zero in turn. Two identities hashing to one
// slot merely share a counter (and its line) — the protocol only ever asks
// "is this slot zero", so collisions cost locality, never correctness.
//
// Deadlock-freedom argument: token acquisition happens only between attempts
// (no locks/snapshots held), entry waiters hold nothing either, and every
// entered transaction finishes in finite time (all its waits tick through
// SpinWait::pause(), which in sim is sched::spin_pause(), so the fiber
// simulator keeps the system live too; in real-thread mode it escalates to
// OS yields instead of burning a core).
//
// Observability (src/obs): a conflict abort taken while another transaction
// holds (or is draining into) the token is reclassified by Tx::abort_tx()
// as kSerialGatePreempt — the root cause is the quiescing serial
// transaction, not ordinary contention — and in SEMSTM_TRACE builds
// atomically() times each acquire -> release span into TxStats::lat_gate
// and emits a kSerialHold trace event.
#pragma once

#include <atomic>
#include <cstdint>

#include "runtime/spinwait.hpp"
#include "sched/yieldpoint.hpp"
#include "util/padded.hpp"

namespace semstm {

class SerialGate {
 public:
  static constexpr std::size_t kSlots = 16;  ///< announce-array width

  /// True while some transaction holds the serial-irrevocable token.
  bool held() const noexcept {
    return owner_.value.load(std::memory_order_acquire) != nullptr;
  }

  /// True if `self` is the current token holder.
  bool held_by(const void* self) const noexcept {
    return owner_.value.load(std::memory_order_acquire) == self;
  }

  /// Normal-transaction entry: wait out any token holder, then register as
  /// in-flight on the announce slot `self` hashes to. The add/re-check/undo
  /// dance closes the race with a holder that acquired the token between
  /// our check and our registration.
  ///
  /// Mutual-quiescence argument (litmus-audited; tests/test_litmus.cpp
  /// SerialGate suite DFS-enumerates every interleaving of this code
  /// against acquire()/release()): entry is granted only by the
  /// `!held()` re-check, which runs strictly AFTER our fetch_add is
  /// visible. On the single modification order of our slot's atomic,
  /// either our add precedes the acquirer's drain read of that slot, in
  /// which case the acquirer waits for our exit(), or the acquirer's
  /// owner_ CAS precedes our re-check load, in which case we observe
  /// held() and undo. Neither side can miss the other: there is no window
  /// where an enterer is past the re-check while the acquirer is past
  /// that slot's drain with the slot at 0. Splitting the counter across
  /// slots does not weaken this — the argument is per-slot, and an
  /// enterer only ever registers on one slot. The sched_point marks the
  /// adversarial window (registered but not yet re-checked) for the
  /// schedule explorer.
  void enter(const void* self) {
    std::atomic<std::uint64_t>& slot = slot_of(self);
    SpinWait spin;
    for (;;) {
      while (held()) spin.pause();
      sched::sched_point();  // window: observed free, not yet registered —
                             // an acquirer may CAS AND pass the drain here,
                             // which is exactly what the re-check below
                             // exists to catch
      slot.fetch_add(1, std::memory_order_acq_rel);
      sched::sched_point();  // window: registered, holder may CAS now
      if (!held()) return;
      slot.fetch_sub(1, std::memory_order_acq_rel);
      sched::sched_point();  // window: undone, must re-wait
    }
  }

  /// Normal-transaction exit (attempt ended: committed or rolled back).
  /// Must be called with the same identity as the matching enter().
  void exit(const void* self) noexcept {
    slot_of(self).fetch_sub(1, std::memory_order_acq_rel);
  }

  /// Become serial-irrevocable: contend for the token, then quiesce — wait
  /// until every registered transaction has exited, slot by slot. Call
  /// only between attempts (no transactional state held). The slot scan
  /// pauses exactly once per probe of a still-nonzero slot, so in sim the
  /// yield cadence is identical to the old single-counter drain: one
  /// spin_pause per scheduler slice until the last in-flight transaction
  /// exits (zero slots are skipped with pure loads, which cost no ticks).
  void acquire(const void* self) {
    SpinWait spin;
    const void* expected = nullptr;
    while (!owner_.value.compare_exchange_weak(expected, self,
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed)) {
      expected = nullptr;
      spin.pause();
    }
    sched::sched_point();  // window: token taken, drain not yet observed
    spin.reset();
    for (std::size_t s = 0; s < kSlots; ++s) {
      while (active_[s].value.load(std::memory_order_acquire) != 0) {
        spin.pause();
      }
    }
  }

  /// Release the token (after the irrevocable commit, or when abandoning
  /// the transaction via a propagating user exception). The release-store
  /// publishes every write of the serial section to the next enterer's
  /// acquire-load in held() — enterers blocked in the spin above resume
  /// only after observing it. Deliberately NOT a yield point: release runs
  /// on noexcept cleanup paths (AttemptLoop::release_token/on_exception),
  /// where a truncating controller's ScheduleStopped would std::terminate.
  /// The litmus suite explores the pre-release window from the test body
  /// instead (an explicit sched_point before calling release()).
  void release() noexcept {
    owner_.value.store(nullptr, std::memory_order_release);
  }

 private:
  /// Hash an identity onto its announce slot. Identities are descriptor
  /// addresses (TxCoreBase::tx_id()): strip allocation-granularity low
  /// bits, mix, take high bits. Must be stable per identity — exit() must
  /// find the slot enter() bumped.
  std::atomic<std::uint64_t>& slot_of(const void* self) noexcept {
    std::uintptr_t h = reinterpret_cast<std::uintptr_t>(self) >> 4;
    h *= 0x9E3779B97F4A7C15ULL;
    return active_[(h >> 60) & (kSlots - 1)].value;
  }

  Padded<std::atomic<const void*>> owner_{};  ///< token: null = free
  /// In-flight announce array: one padded counter per slot; a transaction
  /// is in flight iff it holds +1 on its slot.
  Padded<std::atomic<std::uint64_t>> active_[kSlots];

  static_assert(alignof(Padded<std::atomic<const void*>>) >= kCacheLine,
                "gate token must own its cache line");
  static_assert(alignof(Padded<std::atomic<std::uint64_t>>) >= kCacheLine &&
                    sizeof(Padded<std::atomic<std::uint64_t>>) >= kCacheLine,
                "announce slots must not share cache lines");
};

}  // namespace semstm
