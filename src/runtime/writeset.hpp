// Write-set: an open-addressing hash map from address to pending effect.
//
// Each entry is either a standard WRITE (absolute value) or an INCREMENT
// (accumulated delta, applied to memory at commit). The flag and the
// write-after-write / increment-after-write merge rules implement lines
// 44–52 of Algorithm 6:
//   - inc   after (write|inc):  accumulate delta, keep existing kind
//   - write after (write|inc):  overwrite value, kind becomes WRITE
//
// Hot-path design: every transactional read in the NOrec/TL2 families
// consults the write-set first (read-after-write), and in read-dominated
// transactions that lookup is almost always a miss — frequently against an
// entirely empty set. A word-sized Bloom summary (one bit per entry hash)
// turns those misses into a single AND+branch: `filter_ & bit_of(addr)`
// is zero whenever the address was never inserted, so the common miss
// never hashes into the bucket index at all. False positives (two
// addresses sharing a summary bit) only cost the old probe; correctness
// never depends on the filter.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/word.hpp"

namespace semstm {

enum class WriteKind : std::uint8_t { kWrite, kIncrement };

struct WriteEntry {
  tword* addr = nullptr;
  word_t value = 0;  ///< absolute value (kWrite) or accumulated delta (kIncrement)
  WriteKind kind = WriteKind::kWrite;
};

class WriteSet {
 public:
  WriteSet() { reset_table(kInitialBuckets); }

  /// One-bit summary of an address: a single bit of a 64-bit Bloom filter.
  /// Cheap on purpose (multiply + shift) — it runs on every read miss.
  static std::uint64_t bit_of(const tword* addr) noexcept {
    auto h = reinterpret_cast<std::uintptr_t>(addr) >> 3;
    h *= 0x9E3779B97F4A7C15ULL;
    return std::uint64_t{1} << (h >> 58);  // top 6 bits select the lane
  }

  /// Lookup; returns nullptr when the address has no pending effect.
  /// The Bloom summary rejects definite misses (empty set included)
  /// before any hashing into the bucket index.
  WriteEntry* find(const tword* addr) noexcept {
    if ((filter_ & bit_of(addr)) == 0) return nullptr;
    std::size_t slot = probe_of(addr);
    while (index_[slot] != kEmpty) {
      WriteEntry& e = entries_[index_[slot]];
      if (e.addr == addr) return &e;
      slot = (slot + 1) & mask_;
    }
    return nullptr;
  }
  const WriteEntry* find(const tword* addr) const noexcept {
    return const_cast<WriteSet*>(this)->find(addr);
  }

  /// Standard transactional write (Alg. 6 lines 50–52).
  void put_write(tword* addr, word_t value) {
    if (WriteEntry* e = find(addr)) {
      e->value = value;
      e->kind = WriteKind::kWrite;
      return;
    }
    insert({addr, value, WriteKind::kWrite});
  }

  /// Semantic increment (Alg. 6 lines 44–49).
  void put_inc(tword* addr, word_t delta) {
    if (WriteEntry* e = find(addr)) {
      e->value += delta;  // accumulate over WRITE value or INCREMENT delta
      return;
    }
    insert({addr, delta, WriteKind::kIncrement});
  }

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }

  /// The Bloom summary word (tests assert reset/false-positive behaviour).
  std::uint64_t summary() const noexcept { return filter_; }

  /// Bucket count of the open-addressing index (tests assert that grown
  /// capacity is retained across clear()).
  std::size_t bucket_count() const noexcept { return index_.size(); }

  /// Reset for the next attempt of the same descriptor. Grown capacity is
  /// retained up to kMaxRetainedBuckets so a large transaction does not
  /// re-grow its table from 64 buckets on every retry; beyond the cap the
  /// table shrinks back so one pathological transaction cannot pin an
  /// arbitrarily large index (and entry arena) on an idle descriptor.
  void clear() noexcept {
    entries_.clear();
    filter_ = 0;
    if (index_.size() > kMaxRetainedBuckets) {
      reset_table(kMaxRetainedBuckets);
      entries_.shrink_to_fit();
    } else {
      std::fill(index_.begin(), index_.end(), kEmpty);
    }
  }

  auto begin() noexcept { return entries_.begin(); }
  auto end() noexcept { return entries_.end(); }
  auto begin() const noexcept { return entries_.begin(); }
  auto end() const noexcept { return entries_.end(); }

  static constexpr std::size_t kInitialBuckets = 64;
  /// High-water retention cap: 4096 buckets of u32 index = 16 KiB, big
  /// enough that realistic transactions (STAMP-scale write-sets) never
  /// rebuild across retries, small enough to hold per descriptor.
  static constexpr std::size_t kMaxRetainedBuckets = 4096;

 private:
  static constexpr std::uint32_t kEmpty = UINT32_MAX;

  std::size_t probe_of(const tword* addr) const noexcept {
    auto h = reinterpret_cast<std::uintptr_t>(addr);
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h) & mask_;
  }

  void insert(WriteEntry e) {
    if ((entries_.size() + 1) * 4 > index_.size() * 3) grow();
    entries_.push_back(e);
    filter_ |= bit_of(e.addr);
    place(static_cast<std::uint32_t>(entries_.size() - 1));
  }

  void place(std::uint32_t pos) noexcept {
    std::size_t slot = probe_of(entries_[pos].addr);
    while (index_[slot] != kEmpty) slot = (slot + 1) & mask_;
    index_[slot] = pos;
  }

  void grow() {
    reset_table(index_.size() * 2);
    for (std::uint32_t i = 0; i < entries_.size(); ++i) place(i);
  }

  void reset_table(std::size_t buckets) {
    assert((buckets & (buckets - 1)) == 0 && "power of two");
    index_.assign(buckets, kEmpty);
    mask_ = buckets - 1;
  }

  std::uint64_t filter_ = 0;  ///< Bloom summary over entries_' addresses
  std::vector<WriteEntry> entries_;
  std::vector<std::uint32_t> index_;
  std::size_t mask_ = 0;
};

}  // namespace semstm
