// Write-set: an open-addressing hash map from address to pending effect.
//
// Each entry is either a standard WRITE (absolute value) or an INCREMENT
// (accumulated delta, applied to memory at commit). The flag and the
// write-after-write / increment-after-write merge rules implement lines
// 44–52 of Algorithm 6:
//   - inc   after (write|inc):  accumulate delta, keep existing kind
//   - write after (write|inc):  overwrite value, kind becomes WRITE
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/word.hpp"

namespace semstm {

enum class WriteKind : std::uint8_t { kWrite, kIncrement };

struct WriteEntry {
  tword* addr = nullptr;
  word_t value = 0;  ///< absolute value (kWrite) or accumulated delta (kIncrement)
  WriteKind kind = WriteKind::kWrite;
};

class WriteSet {
 public:
  WriteSet() { reset_table(kInitialBuckets); }

  /// Lookup; returns nullptr when the address has no pending effect.
  WriteEntry* find(const tword* addr) noexcept {
    std::size_t slot = probe_of(addr);
    while (index_[slot] != kEmpty) {
      WriteEntry& e = entries_[index_[slot]];
      if (e.addr == addr) return &e;
      slot = (slot + 1) & mask_;
    }
    return nullptr;
  }
  const WriteEntry* find(const tword* addr) const noexcept {
    return const_cast<WriteSet*>(this)->find(addr);
  }

  /// Standard transactional write (Alg. 6 lines 50–52).
  void put_write(tword* addr, word_t value) {
    if (WriteEntry* e = find(addr)) {
      e->value = value;
      e->kind = WriteKind::kWrite;
      return;
    }
    insert({addr, value, WriteKind::kWrite});
  }

  /// Semantic increment (Alg. 6 lines 44–49).
  void put_inc(tword* addr, word_t delta) {
    if (WriteEntry* e = find(addr)) {
      e->value += delta;  // accumulate over WRITE value or INCREMENT delta
      return;
    }
    insert({addr, delta, WriteKind::kIncrement});
  }

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }

  void clear() noexcept {
    entries_.clear();
    if (index_.size() != kInitialBuckets) {
      reset_table(kInitialBuckets);
    } else {
      std::fill(index_.begin(), index_.end(), kEmpty);
    }
  }

  auto begin() noexcept { return entries_.begin(); }
  auto end() noexcept { return entries_.end(); }
  auto begin() const noexcept { return entries_.begin(); }
  auto end() const noexcept { return entries_.end(); }

 private:
  static constexpr std::size_t kInitialBuckets = 64;
  static constexpr std::uint32_t kEmpty = UINT32_MAX;

  std::size_t probe_of(const tword* addr) const noexcept {
    auto h = reinterpret_cast<std::uintptr_t>(addr);
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h) & mask_;
  }

  void insert(WriteEntry e) {
    if ((entries_.size() + 1) * 4 > index_.size() * 3) grow();
    entries_.push_back(e);
    place(static_cast<std::uint32_t>(entries_.size() - 1));
  }

  void place(std::uint32_t pos) noexcept {
    std::size_t slot = probe_of(entries_[pos].addr);
    while (index_[slot] != kEmpty) slot = (slot + 1) & mask_;
    index_[slot] = pos;
  }

  void grow() {
    reset_table(index_.size() * 2);
    for (std::uint32_t i = 0; i < entries_.size(); ++i) place(i);
  }

  void reset_table(std::size_t buckets) {
    assert((buckets & (buckets - 1)) == 0 && "power of two");
    index_.assign(buckets, kEmpty);
    mask_ = buckets - 1;
  }

  std::vector<WriteEntry> entries_;
  std::vector<std::uint32_t> index_;
  std::size_t mask_ = 0;
};

}  // namespace semstm
