// Ownership records (orecs) for TL2 / S-TL2.
//
// Shared words hash onto a fixed table of orecs. Each orec carries a
// version (the global timestamp of the last commit that wrote under it)
// and an owner pointer (the transaction currently holding its commit-time
// lock, or null). Keeping the two in separate atomics — rather than the
// classic packed version/lock word — lets readers test "lock ∈ {tx, φ}"
// (Alg. 7) directly against the owner.
//
// Write-back protocol (see Tl2Tx::commit): values are stored first, then
// versions (release), then owners are cleared (release). A reader that
// observes a new value therefore observes either a set owner or a bumped
// version, and its (version, owner, value, owner, version) sandwich read
// rejects the inconsistency.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>

#include "core/word.hpp"
#include "util/padded.hpp"

namespace semstm {

// Owners are opaque identities (TxCoreBase::tx_id()): the orec never calls
// through them, it only compares pointers, so the type-erased facade and
// the monomorphized core present one identity without a common base here.
struct Orec {
  std::atomic<std::uint64_t> version{0};
  std::atomic<const void*> owner{nullptr};

  bool locked_by_other(const void* self) const noexcept {
    const void* o = owner.load(std::memory_order_acquire);
    return o != nullptr && o != self;
  }

  bool locked() const noexcept {
    return owner.load(std::memory_order_acquire) != nullptr;
  }

  /// Commit-time try-lock (null -> tx). Idempotent for the same owner.
  bool try_lock(const void* tx) noexcept {
    const void* expected = nullptr;
    if (owner.compare_exchange_strong(expected, tx, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      return true;
    }
    return expected == tx;
  }

  /// Best-effort owner read for abort attribution (obs/conflict_map.hpp):
  /// who holds (or held a moment ago) this orec's lock. Relaxed is correct
  /// because the result is observational only — it becomes a hint in
  /// AbortInfo::owner and a conflict-map edge, never an input to any
  /// synchronization or protocol decision, and the owner may legitimately
  /// have released by the time the aborter records it.
  const void* owner_hint() const noexcept {
    return owner.load(std::memory_order_relaxed);
  }

  /// Single-releaser invariant (litmus-audited, tests/test_litmus.cpp orec
  /// suite): the relaxed owner load is legal because only the lock HOLDER
  /// ever calls unlock with its own identity — Tl2CoreT tracks every orec
  /// it locked in locked_ and unlocks exactly that set, and rollback's
  /// release path walks the same set. So the load either reads this
  /// thread's own prior try_lock store (same-thread po, no race) and
  /// matches, or reads some other owner / null and is a no-op. The
  /// nullptr store stays release: it publishes the written-back values
  /// and bumped version to the next try_lock's acquire failure-order
  /// load / locked_by_other's acquire load.
  void unlock(const void* tx) noexcept {
    const void* o = owner.load(std::memory_order_relaxed);
    if (o == tx) owner.store(nullptr, std::memory_order_release);
  }
};

class OrecTable {
 public:
  /// `log2_size` trades memory for fewer false conflicts (hash collisions);
  /// bench/ablation sweeps it. Default 2^16 orecs.
  ///
  /// Layout (padding audit, DESIGN.md §4.16): orecs are deliberately NOT
  /// padded individually — striping four 16-byte orecs per line is the
  /// design (2^16 slots would quadruple to 4 MiB padded), and adjacent
  /// stripes sharing a line only costs locality under contention, never
  /// correctness. What IS guaranteed is the table base's alignment: the
  /// slab starts on a cache-line boundary, so no orec straddles two lines
  /// and the stripe <-> line mapping is stable across runs.
  explicit OrecTable(unsigned log2_size = 16)
      : mask_((std::size_t{1} << log2_size) - 1),
        slots_(make_slots(std::size_t{1} << log2_size)) {}

  Orec& of(const tword* addr) noexcept {
    auto h = reinterpret_cast<std::uintptr_t>(addr) >> 3;
    h ^= h >> 17;
    h *= 0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
    return slots_[static_cast<std::size_t>(h) & mask_];
  }

  std::size_t size() const noexcept { return mask_ + 1; }

  /// Slot index of an orec returned by of(). Stable across table
  /// re-allocations for a fixed accessed address — unlike the orec's heap
  /// address — which is what deterministic re-execution (the litmus DFS
  /// re-runs a test against a freshly built table per schedule) hashes on.
  std::size_t index(const Orec* o) const noexcept {
    return static_cast<std::size_t>(o - slots_.get());
  }

 private:
  struct AlignedFree {
    void operator()(Orec* p) const noexcept {
      // Orec is trivially destructible (two atomics), so releasing the
      // raw slab without per-element destruction is exact.
      ::operator delete(static_cast<void*>(p), std::align_val_t{kCacheLine});
    }
  };
  static_assert(std::is_trivially_destructible_v<Orec>,
                "AlignedFree skips destructors");
  static_assert(kCacheLine % sizeof(Orec) == 0,
                "orecs are deliberately striped (not padded), but with a "
                "line-aligned slab base none may straddle a cache line");

  static std::unique_ptr<Orec[], AlignedFree> make_slots(std::size_t n) {
    void* raw = ::operator new(n * sizeof(Orec), std::align_val_t{kCacheLine});
    Orec* first = static_cast<Orec*>(raw);
    for (std::size_t i = 0; i < n; ++i) ::new (first + i) Orec();
    return std::unique_ptr<Orec[], AlignedFree>(first);
  }

  std::size_t mask_;
  std::unique_ptr<Orec[], AlignedFree> slots_;
};

}  // namespace semstm
