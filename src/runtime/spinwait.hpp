// SpinWait: bounded-escalation busy-wait for the commit-path spin loops
// (SeqLock sampling, serial-gate entry and drain, the CGL lock).
//
// The contract splits by execution substrate (sched/yieldpoint.hpp):
//
//  - Simulator / litmus mode (a YieldHook is installed): every pause() is
//    exactly ONE sched::spin_pause(). That is the same yield-point cadence
//    the fiber scheduler and the schedule-exploration controller have
//    always seen from the raw spin loops, so committed sim baselines and
//    the PR 6 litmus witness schedules replay bit-identically.
//
//  - Real-thread mode (hook == nullptr): a descheduled or stalled lock
//    holder must not make waiters burn a core at full speed. pause()
//    escalates in three tiers: a single CPU pause, then exponentially
//    growing pause bursts (local spinning — the watched line stays in
//    shared state, no cross-core write traffic while we wait), and past
//    kYieldAfter rounds an OS yield so the holder can actually be
//    scheduled on an oversubscribed host.
//
// A SpinWait is a per-wait-site local object: construct it outside the
// loop, call pause() per failed probe, and (optionally) reset() after a
// successful acquisition if the same object guards a subsequent wait.
#pragma once

#include <cstdint>
#include <thread>

#include "sched/yieldpoint.hpp"

namespace semstm {

class SpinWait {
 public:
  void pause() {
    if (sched::hook() != nullptr) {
      // Sim: one yield point per probe — the historical contract. The
      // escalation state deliberately stays untouched so a hook installed
      // mid-wait (impossible today, cheap to be robust against) cannot
      // skew the real-mode tiers.
      sched::spin_pause();
      return;
    }
    if (rounds_ < kYieldAfter) {
      const std::uint32_t burst = 1u << (rounds_ < kMaxBurstLog2
                                             ? rounds_
                                             : kMaxBurstLog2);
      for (std::uint32_t i = 0; i < burst; ++i) cpu_relax();
      ++rounds_;
    } else {
      std::this_thread::yield();
    }
  }

  /// Restart the escalation ladder (call after the watched condition was
  /// met once, before reusing this object for another wait).
  void reset() noexcept { rounds_ = 0; }

 private:
  static void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
  }

  static constexpr std::uint32_t kMaxBurstLog2 = 6;  ///< cap bursts at 64
  static constexpr std::uint32_t kYieldAfter = 10;   ///< then OS-yield
  std::uint32_t rounds_ = 0;
};

}  // namespace semstm
