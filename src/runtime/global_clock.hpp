// Global commit clocks — the serialization hot spots of the NOrec and TL2
// families, reworked for real multicore (DESIGN.md §4.16).
//
//  - SeqLock: NOrec's single global timestamped lock (odd = a writer is in
//    its commit phase). Paper §4.1 / NOrec [Dalessandro et al., PPoPP'10].
//    sample_even() spins locally with bounded escalation (SpinWait) so a
//    descheduled committer cannot make every reader burn a core.
//
//  - VersionClock: TL2's global version timestamp. fetch_increment() is
//    GV4-style [Dice/Shalev/Shavit, TL2 release notes]: one CAS attempt;
//    on failure the committer ADOPTS the value another committer just
//    installed instead of retrying the RMW. Under heavy commit traffic the
//    clock line takes one write per "round" of concurrent committers
//    instead of one per committer — the classic fetch_add ping-pongs the
//    line once per commit. The adopter's stamp is shared, which is why the
//    ClockStamp carries `exclusive`: TL2's skip-validation fast path
//    (wv == rv+1) is sound only for the unique CAS winner (see
//    Tl2CoreT::commit and DESIGN.md §4.16 for the write-skew argument).
//    S-TL2 keeps try_advance(): its CAS *is* the serialization point of
//    the paper's argument (Alg. 7 lines 66-77), so it must not adopt.
//
// Both clocks live alone on a cache line (Padded): they are the single
// most-contended words in the system, and anything sharing their line
// would be falsely invalidated on every commit.
#pragma once

#include <atomic>
#include <cstdint>

#include "runtime/spinwait.hpp"
#include "sched/yieldpoint.hpp"
#include "util/padded.hpp"

namespace semstm {

class SeqLock {
 public:
  /// Spin until the value is even (no writer committing) and return it.
  /// Local spinning: pure acquire loads between pauses — no write traffic
  /// on the clock line while a committer works. Not noexcept: in sim the
  /// spin is a yield point, and under a truncating ScheduleController
  /// yield points raise ScheduleStopped.
  std::uint64_t sample_even() const {
    SpinWait spin;
    for (;;) {
      const std::uint64_t t = value_.value.load(std::memory_order_acquire);
      if ((t & 1) == 0) return t;
      spin.pause();
    }
  }

  std::uint64_t load() const noexcept {
    return value_.value.load(std::memory_order_acquire);
  }

  /// Try to enter the commit phase: CAS snapshot -> snapshot|1.
  bool try_lock(std::uint64_t snapshot) noexcept {
    std::uint64_t expected = snapshot;
    return value_.value.compare_exchange_strong(expected, snapshot + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
  }

  /// Leave the commit phase, publishing a new even timestamp.
  void unlock(std::uint64_t locked_value) noexcept {
    value_.value.store(locked_value + 1, std::memory_order_release);
  }

  /// Test hook: place the clock near its wrap point so the (otherwise
  /// unreachable) kClockOverflow abort path can be exercised. Only call
  /// while no transaction is live on this clock.
  void set_for_test(std::uint64_t v) noexcept {
    value_.value.store(v, std::memory_order_release);
  }

 private:
  Padded<std::atomic<std::uint64_t>> value_{};
  static_assert(alignof(Padded<std::atomic<std::uint64_t>>) >= kCacheLine,
                "commit clock must own its cache line");
};

/// Result of a VersionClock advance: the write version to stamp orecs
/// with, and whether this committer uniquely produced it. Two concurrent
/// committers may share an adopted wv (GV4) — their write sets are
/// necessarily disjoint (both hold all their orec locks), but neither
/// adopter may take the skip-validation fast path.
struct ClockStamp {
  std::uint64_t wv = 0;
  bool exclusive = false;
};

class VersionClock {
 public:
  std::uint64_t load() const noexcept {
    return value_.value.load(std::memory_order_acquire);
  }

  /// TL2: advance the clock and return the new write version (GV4: one
  /// CAS; on failure adopt the concurrent committer's value). In the
  /// 1-carrier fiber sim the CAS cannot fail — there is no yield point
  /// between the load and the CAS — so sim behavior is bit-identical to
  /// the old unconditional fetch_add.
  ClockStamp fetch_increment() noexcept {
    std::uint64_t seen = value_.value.load(std::memory_order_acquire);
    if (value_.value.compare_exchange_strong(seen, seen + 1,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
      return {seen + 1, true};
    }
    // Adopt: `seen` was refreshed by the failed CAS to a value some other
    // committer just installed; it is > our stale read, so it orders our
    // write-back after every version we validated against. Shared stamp —
    // never report exclusivity.
    return {seen, false};
  }

  /// S-TL2: conditional advance — fails if another writer serialized in
  /// between, forcing compare-set revalidation (Alg. 7 line 71).
  bool try_advance(std::uint64_t expected) noexcept {
    return value_.value.compare_exchange_strong(expected, expected + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
  }

  /// Test hook: see SeqLock::set_for_test.
  void set_for_test(std::uint64_t v) noexcept {
    value_.value.store(v, std::memory_order_release);
  }

 private:
  Padded<std::atomic<std::uint64_t>> value_{};
  static_assert(alignof(Padded<std::atomic<std::uint64_t>>) >= kCacheLine,
                "commit clock must own its cache line");
};

}  // namespace semstm
