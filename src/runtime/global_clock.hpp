// Global versioned clocks.
//
//  - SeqLock: NOrec's single global timestamped lock (odd = a writer is in
//    its commit phase). Paper §4.1 / NOrec [Dalessandro et al., PPoPP'10].
//  - VersionClock: TL2's global version timestamp, advanced by committing
//    writers. S-TL2 replaces fetch-add with CAS at the serialization point
//    (paper §4.2 lines 68–72); both are exposed here.
#pragma once

#include <atomic>
#include <cstdint>

#include "sched/yieldpoint.hpp"
#include "util/padded.hpp"

namespace semstm {

class SeqLock {
 public:
  /// Spin until the value is even (no writer committing) and return it.
  /// Not noexcept: the spin is a yield point, and under a truncating
  /// ScheduleController yield points raise ScheduleStopped.
  std::uint64_t sample_even() const {
    for (;;) {
      const std::uint64_t t = value_.value.load(std::memory_order_acquire);
      if ((t & 1) == 0) return t;
      sched::spin_pause();
    }
  }

  std::uint64_t load() const noexcept {
    return value_.value.load(std::memory_order_acquire);
  }

  /// Try to enter the commit phase: CAS snapshot -> snapshot|1.
  bool try_lock(std::uint64_t snapshot) noexcept {
    std::uint64_t expected = snapshot;
    return value_.value.compare_exchange_strong(expected, snapshot + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
  }

  /// Leave the commit phase, publishing a new even timestamp.
  void unlock(std::uint64_t locked_value) noexcept {
    value_.value.store(locked_value + 1, std::memory_order_release);
  }

  /// Test hook: place the clock near its wrap point so the (otherwise
  /// unreachable) kClockOverflow abort path can be exercised. Only call
  /// while no transaction is live on this clock.
  void set_for_test(std::uint64_t v) noexcept {
    value_.value.store(v, std::memory_order_release);
  }

 private:
  Padded<std::atomic<std::uint64_t>> value_{};
};

class VersionClock {
 public:
  std::uint64_t load() const noexcept {
    return value_.value.load(std::memory_order_acquire);
  }

  /// TL2: atomically advance and return the new write version.
  std::uint64_t fetch_increment() noexcept {
    return value_.value.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// S-TL2: conditional advance — fails if another writer serialized in
  /// between, forcing compare-set revalidation (Alg. 7 line 71).
  bool try_advance(std::uint64_t expected) noexcept {
    return value_.value.compare_exchange_strong(expected, expected + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
  }

  /// Test hook: see SeqLock::set_for_test.
  void set_for_test(std::uint64_t v) noexcept {
    value_.value.store(v, std::memory_order_release);
  }

 private:
  Padded<std::atomic<std::uint64_t>> value_{};
};

}  // namespace semstm
