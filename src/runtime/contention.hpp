// Contention management: the pluggable inter-attempt policy of the
// atomically() retry loop.
//
// The paper's evaluation (§5) relies on the baseline algorithms' native
// progress behaviour plus a retry/backoff loop; which loop matters — CM
// choice is known to dominate STM behaviour under contention (Singh et al.,
// Synchrobench STM comparison). Three policies are provided:
//
//   backoff  — randomized exponential backoff (the historical default).
//   yield    — linear politeness: after the k-th consecutive abort spin for
//              k * kStep pause units (capped). Deterministic, gentle; a
//              stand-in for sched_yield() that works under the fiber
//              simulator's virtual clock.
//   bounded  — randomized exponential backoff, but after `retry_limit`
//              consecutive aborts of one transaction the policy escalates:
//              atomically() acquires the global serial-irrevocable token
//              (runtime/serial_gate.hpp) and the starving transaction runs
//              alone, guaranteed to commit. This is the progress backstop
//              the pure policies lack: a pathological transaction can
//              otherwise livelock/starve forever.
//
// Selection is per run: `--cm=NAME --retry-limit=N` on every bench binary,
// or the SEMSTM_CM / SEMSTM_RETRY_LIMIT environment variables (CLI wins).
//
// Observability (src/obs): in SEMSTM_TRACE builds atomically() times each
// on_abort() wait into TxStats::lat_backoff and records an escalation as a
// kFallback trace event, so a policy's pacing behaviour is directly visible
// in the latency histograms and the Chrome trace.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/backoff.hpp"
#include "sched/yieldpoint.hpp"

namespace semstm {

/// Consecutive-abort count at which the bounded policy goes serial.
/// Large enough that ordinary contention never escalates (aborts under the
/// figure workloads resolve within a handful of retries), small enough to
/// cap the tail: 2^64 backoff would be reached long after.
inline constexpr std::uint64_t kDefaultRetryLimit = 64;

class ContentionManager {
 public:
  virtual ~ContentionManager() = default;

  virtual const char* name() const noexcept = 0;

  /// Called by atomically() after the `consecutive`-th consecutive abort
  /// (1-based) of the current transaction; performs the inter-attempt wait.
  /// Returns true to request escalation to the serial-irrevocable fallback
  /// for the next attempt (the caller then stops consulting the policy for
  /// this transaction — the token guarantees commit).
  virtual bool on_abort(std::uint64_t consecutive) = 0;

  /// Called when the transaction finishes for good — commit, or a user
  /// exception abandoning it. Resets per-transaction pacing state.
  virtual void on_finish() noexcept {}
};

/// Randomized exponential backoff (today's behaviour). Never escalates.
class BackoffCm final : public ContentionManager {
 public:
  explicit BackoffCm(std::uint64_t seed) : backoff_(seed) {}
  const char* name() const noexcept override { return "backoff"; }
  bool on_abort(std::uint64_t) override {
    backoff_.pause();
    return false;
  }
  void on_finish() noexcept override { backoff_.reset(); }

 private:
  Backoff backoff_;
};

/// Linear yielding: the k-th consecutive abort waits k * kStep pause units,
/// capped. Deterministic by design (no RNG), so lockstep resonance is
/// possible — it exists as the simple/fair contrast policy.
class YieldCm final : public ContentionManager {
 public:
  const char* name() const noexcept override { return "yield"; }
  bool on_abort(std::uint64_t consecutive) override {
    const std::uint64_t steps =
        (consecutive < kMaxSteps ? consecutive : kMaxSteps) * kStep;
    for (std::uint64_t i = 0; i < steps; ++i) sched::spin_pause();
    return false;
  }

 private:
  static constexpr std::uint64_t kStep = 4;
  static constexpr std::uint64_t kMaxSteps = 64;
};

/// Bounded retry with serial-irrevocable fallback: exponential backoff up
/// to `retry_limit` consecutive aborts, then escalate.
class BoundedRetryCm final : public ContentionManager {
 public:
  BoundedRetryCm(std::uint64_t seed, std::uint64_t retry_limit)
      : backoff_(seed),
        retry_limit_(retry_limit == 0 ? 1 : retry_limit) {}
  const char* name() const noexcept override { return "bounded"; }
  bool on_abort(std::uint64_t consecutive) override {
    if (consecutive >= retry_limit_) return true;  // go serial, no wait
    backoff_.pause();
    return false;
  }
  void on_finish() noexcept override { backoff_.reset(); }

 private:
  Backoff backoff_;
  std::uint64_t retry_limit_;
};

/// Create a policy by name: "backoff", "yield", "bounded".
/// Throws std::invalid_argument for unknown names.
inline std::unique_ptr<ContentionManager> make_contention_manager(
    std::string_view name, std::uint64_t seed,
    std::uint64_t retry_limit = kDefaultRetryLimit) {
  if (name == "backoff") return std::make_unique<BackoffCm>(seed);
  if (name == "yield") return std::make_unique<YieldCm>();
  if (name == "bounded") {
    return std::make_unique<BoundedRetryCm>(seed, retry_limit);
  }
  throw std::invalid_argument("unknown contention manager: " +
                              std::string(name));
}

/// All registered policy names, in documentation order.
inline const std::vector<std::string>& contention_manager_names() {
  static const std::vector<std::string> names = {"backoff", "yield",
                                                 "bounded"};
  return names;
}

}  // namespace semstm
