// Read-set / compare-set storage.
//
// One entry type covers the whole validation spectrum of §4:
//  - a plain read is a single-term clause `addr EQ observed` expected true
//    (value-based validation is the EQ special case of semantic
//    validation);
//  - a semantic cmp is a single-term clause with the observed outcome;
//  - a composed conditional (paper §3, e.g. the hashtable probe's
//    `state == REMOVED || key != value`) is a multi-term *disjunctive*
//    clause validated as a unit: the entry holds while the OR of its terms
//    still evaluates to the recorded outcome. Conjunctions need no special
//    support — `A && B` observed true is simply two entries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/semantics.hpp"
#include "core/word.hpp"

namespace semstm {

struct ReadEntry {
  static constexpr unsigned kMaxTerms = 3;

  CmpTerm terms[kMaxTerms];
  std::uint8_t count = 0;
  bool expected = true;  ///< recorded outcome of the OR over the terms

  /// Semantic validation: does the clause still evaluate to `expected`?
  bool holds() const noexcept {
    bool v = false;
    for (unsigned i = 0; i < count && !v; ++i) v = terms[i].eval_now();
    return v == expected;
  }

  /// True when the entry records a *semantic* observation (cmp/cmp2 or a
  /// composed clause) rather than a plain read's value snapshot — used by
  /// abort-cause attribution to split kReadValidation from
  /// kCmpRevalidation. An EQ compare against an immediate that was
  /// observed true is structurally identical to a plain read and lands in
  /// the read bucket; the two are also validated identically, so the
  /// attribution loses nothing.
  bool semantic() const noexcept {
    return count != 1 || !expected || terms[0].rel != Rel::EQ ||
           terms[0].rhs_addr != nullptr;
  }
};

class ReadSet {
 public:
  void append_value(const tword* addr, word_t observed) {
    ReadEntry e;
    e.terms[0] = CmpTerm{addr, nullptr, observed, Rel::EQ};
    e.count = 1;
    e.expected = true;
    entries_.push_back(e);
  }

  /// Record a semantic compare with its observed outcome.
  void append_cmp(const tword* addr, Rel rel, word_t operand, bool outcome) {
    ReadEntry e;
    e.terms[0] = CmpTerm{addr, nullptr, operand, rel};
    e.count = 1;
    e.expected = outcome;
    entries_.push_back(e);
  }

  void append_cmp2(const tword* a, Rel rel, const tword* b, bool outcome) {
    ReadEntry e;
    e.terms[0] = CmpTerm{a, b, 0, rel};
    e.count = 1;
    e.expected = outcome;
    entries_.push_back(e);
  }

  /// Record a disjunctive clause (OR of up to kMaxTerms terms) with its
  /// observed outcome.
  void append_clause(const CmpTerm* terms, std::size_t n, bool outcome) {
    ReadEntry e;
    for (std::size_t i = 0; i < n && i < ReadEntry::kMaxTerms; ++i) {
      e.terms[i] = terms[i];
    }
    e.count = static_cast<std::uint8_t>(n < ReadEntry::kMaxTerms
                                            ? n
                                            : ReadEntry::kMaxTerms);
    e.expected = outcome;
    entries_.push_back(e);
  }

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }
  void clear() noexcept { entries_.clear(); }

  auto begin() const noexcept { return entries_.begin(); }
  auto end() const noexcept { return entries_.end(); }

 private:
  std::vector<ReadEntry> entries_;
};

/// S-TL2 keeps semantic compares in a dedicated set with the same entry
/// layout (paper §4.2); alias for clarity at use sites.
using CompareSet = ReadSet;

}  // namespace semstm
