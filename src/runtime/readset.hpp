// Read-set / compare-set storage.
//
// One entry type covers the whole validation spectrum of §4:
//  - a plain read is a single-term clause `addr EQ observed` expected true
//    (value-based validation is the EQ special case of semantic
//    validation);
//  - a semantic cmp is a single-term clause with the observed outcome;
//  - a composed conditional (paper §3, e.g. the hashtable probe's
//    `state == REMOVED || key != value`) is a multi-term *disjunctive*
//    clause validated as a unit: the entry holds while the OR of its terms
//    still evaluates to the recorded outcome. Conjunctions need no special
//    support — `A && B` observed true is simply two entries.
//
// Hot-path design (PR 3). The read-set is appended to on *every* plain
// read, so entry size is per-access metadata cost — the overhead the
// paper's headline claim is about. Two choices keep it small and the
// validation loop O(unique reads):
//  - Rows are 32 bytes: one flat term plus clause header, instead of a
//    fixed kMaxTerms-term array. Multi-term clauses (rare) span the head
//    row plus nterms-1 continuation rows; iteration is clause-granular.
//  - append_value deduplicates identical value snapshots against a small
//    trailing window, so a transaction that re-reads the same address
//    repeatedly validates it once, not once per read. Skipping is
//    semantics-preserving: validating `addr EQ observed` twice is exactly
//    validating it once, and within one transaction two plain reads of the
//    same address can only legally observe the same value (a change fails
//    the earlier entry during revalidation).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/semantics.hpp"
#include "core/word.hpp"

namespace semstm {

/// One 32-byte row. Head rows carry the clause header (nterms ≥ 1,
/// expected); continuation rows (terms 2..n of a composed clause) have
/// nterms == 0 and are only reachable through their head.
struct ReadEntry {
  const tword* addr = nullptr;
  const tword* rhs_addr = nullptr;  ///< non-null: address–address compare
  word_t operand = 0;
  Rel rel = Rel::EQ;
  std::uint8_t nterms = 1;  ///< rows in this clause (head); 0 = continuation
  bool expected = true;     ///< recorded outcome of the OR over the terms

  /// Re-evaluate this row's term against current memory.
  bool term_eval_now() const noexcept {
    const word_t lhs = addr->load(std::memory_order_acquire);
    const word_t rhs =
        rhs_addr ? rhs_addr->load(std::memory_order_acquire) : operand;
    return eval(rel, lhs, rhs);
  }
};
static_assert(sizeof(ReadEntry) == 32,
              "read-set rows are per-access metadata; keep them compact");

class ReadSet {
 public:
  static constexpr unsigned kMaxTerms = 3;

  /// How many trailing rows append_value scans for an identical value
  /// snapshot before appending. Repeated reads of the same address are
  /// temporally clustered (loop bodies, field re-reads), so a tiny window
  /// catches nearly all duplicates at O(1) cost per read.
  static constexpr std::size_t kDedupWindow = 4;

  /// Clause view over a head row and its continuation rows.
  class Clause {
   public:
    explicit Clause(const ReadEntry* head) : head_(head) {}

    unsigned count() const noexcept { return head_->nterms; }
    const ReadEntry& row(unsigned i) const noexcept { return head_[i]; }
    const tword* addr() const noexcept { return head_->addr; }
    bool expected() const noexcept { return head_->expected; }

    /// Semantic validation: does the clause still evaluate to `expected`?
    bool holds() const noexcept {
      bool v = false;
      for (unsigned i = 0; i < head_->nterms && !v; ++i) {
        v = head_[i].term_eval_now();
      }
      return v == head_->expected;
    }

    /// True when the clause records a *semantic* observation (cmp/cmp2 or
    /// a composed clause) rather than a plain read's value snapshot — used
    /// by abort-cause attribution to split kReadValidation from
    /// kCmpRevalidation. An EQ compare against an immediate that was
    /// observed true is structurally identical to a plain read and lands
    /// in the read bucket; the two are also validated identically, so the
    /// attribution loses nothing.
    bool semantic() const noexcept {
      return head_->nterms != 1 || !head_->expected ||
             head_->rel != Rel::EQ || head_->rhs_addr != nullptr;
    }

   private:
    const ReadEntry* head_;
  };

  /// Clause-granular iterator: ++ skips a head row and its continuations.
  class const_iterator {
   public:
    struct ArrowProxy {
      Clause c;
      const Clause* operator->() const noexcept { return &c; }
    };

    explicit const_iterator(const ReadEntry* p) : p_(p) {}
    Clause operator*() const noexcept { return Clause(p_); }
    ArrowProxy operator->() const noexcept { return {Clause(p_)}; }
    const_iterator& operator++() noexcept {
      p_ += p_->nterms;
      return *this;
    }
    bool operator==(const const_iterator& o) const noexcept {
      return p_ == o.p_;
    }
    bool operator!=(const const_iterator& o) const noexcept {
      return p_ != o.p_;
    }

   private:
    const ReadEntry* p_;
  };

  /// Record a plain read's value snapshot. Returns false when an identical
  /// entry (same address, same observed value) sits within the dedup
  /// window — the duplicate is skipped.
  bool append_value(const tword* addr, word_t observed) {
    const std::size_t n = entries_.size();
    const std::size_t lookback = n < kDedupWindow ? n : kDedupWindow;
    for (std::size_t i = 0; i < lookback; ++i) {
      const ReadEntry& p = entries_[n - 1 - i];
      // nterms == 1 excludes clause heads AND continuation rows (0).
      if (p.addr == addr && p.operand == observed && p.nterms == 1 &&
          p.expected && p.rel == Rel::EQ && p.rhs_addr == nullptr) {
        return false;
      }
    }
    entries_.push_back(ReadEntry{addr, nullptr, observed, Rel::EQ, 1, true});
    ++clauses_;
    return true;
  }

  /// Record a semantic compare with its observed outcome.
  void append_cmp(const tword* addr, Rel rel, word_t operand, bool outcome) {
    entries_.push_back(ReadEntry{addr, nullptr, operand, rel, 1, outcome});
    ++clauses_;
  }

  void append_cmp2(const tword* a, Rel rel, const tword* b, bool outcome) {
    entries_.push_back(ReadEntry{a, b, 0, rel, 1, outcome});
    ++clauses_;
  }

  /// Record a disjunctive clause (OR of up to kMaxTerms terms) with its
  /// observed outcome. A zero-term clause is vacuous (its OR is constantly
  /// false) and records nothing.
  void append_clause(const CmpTerm* terms, std::size_t n, bool outcome) {
    const std::size_t m = n < kMaxTerms ? n : kMaxTerms;
    if (m == 0) return;
    entries_.push_back(ReadEntry{terms[0].addr, terms[0].rhs_addr,
                                 terms[0].operand, terms[0].rel,
                                 static_cast<std::uint8_t>(m), outcome});
    for (std::size_t i = 1; i < m; ++i) {
      entries_.push_back(ReadEntry{terms[i].addr, terms[i].rhs_addr,
                                   terms[i].operand, terms[i].rel, 0,
                                   outcome});
    }
    ++clauses_;
  }

  bool empty() const noexcept { return entries_.empty(); }
  /// Number of clauses (validation units), not rows.
  std::size_t size() const noexcept { return clauses_; }
  /// Number of 32-byte rows (clauses plus continuation rows).
  std::size_t rows() const noexcept { return entries_.size(); }

  void clear() noexcept {
    entries_.clear();
    clauses_ = 0;
  }

  const_iterator begin() const noexcept {
    return const_iterator(entries_.data());
  }
  const_iterator end() const noexcept {
    return const_iterator(entries_.data() + entries_.size());
  }

 private:
  std::vector<ReadEntry> entries_;
  std::size_t clauses_ = 0;
};

/// S-TL2 keeps semantic compares in a dedicated set with the same entry
/// layout (paper §4.2); alias for clarity at use sites.
using CompareSet = ReadSet;

}  // namespace semstm
