#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <map>

namespace semstm::obs {

namespace {

/// Same minimal escaping as the trace exporter: labels are ASCII by
/// construction, only quotes/backslashes/control chars need care.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// {"cause":count,...} with zero buckets omitted.
void print_causes(std::FILE* f, const std::uint64_t (&counts)[kAbortCauseCount]) {
  std::fprintf(f, "{");
  bool first = true;
  for (std::size_t c = 0; c < kAbortCauseCount; ++c) {
    if (counts[c] == 0) continue;
    std::fprintf(f, "%s\"%s\":%" PRIu64, first ? "" : ",",
                 abort_cause_name(static_cast<AbortCause>(c)), counts[c]);
    first = false;
  }
  std::fprintf(f, "}");
}

}  // namespace

std::vector<WindowRow> MetricsCollector::merged() const {
  // Window indices are absolute (shared obs clock), so merging is a sum by
  // index. std::map keeps rows ordered; runs have dozens of windows, not
  // millions.
  std::map<std::uint64_t, TxStats> by_window;
  for (const WindowSeries& s : series_) {
    for (const WindowSample& w : s.samples()) {
      by_window[w.window] += w.delta;
    }
  }
  std::vector<WindowRow> rows;
  rows.reserve(by_window.size());
  for (const auto& [idx, stats] : by_window) {
    WindowRow r;
    r.window = idx;
    r.t0 = idx * width_;
    r.t1 = (idx + 1) * width_;
    r.stats = stats;
    rows.push_back(r);
  }
  return rows;
}

MetricsWriter::MetricsWriter(const std::string& path) {
  f_ = std::fopen(path.c_str(), "w");
}

MetricsWriter::~MetricsWriter() {
  if (f_ != nullptr) std::fclose(f_);
}

void MetricsWriter::add_run(const std::string& label, const char* units,
                            std::uint64_t window_ticks, unsigned threads,
                            const std::vector<WindowRow>& rows,
                            const std::vector<ConflictMap::Site>& hot_sites,
                            std::uint64_t conflict_overflow) {
  if (f_ == nullptr) return;
  const std::string esc = json_escape(label);

  std::fprintf(f_,
               "{\"type\":\"run\",\"label\":\"%s\",\"units\":\"%s\","
               "\"window_ticks\":%" PRIu64
               ",\"threads\":%u,\"windows\":%zu,\"hot_sites\":%zu,"
               "\"conflict_overflow\":%" PRIu64 "}\n",
               esc.c_str(), units, window_ticks, threads, rows.size(),
               hot_sites.size(), conflict_overflow);

  for (const WindowRow& w : rows) {
    const TxStats& s = w.stats;
    // Throughput normalized to commits per 1e6 clock units so sim-tick and
    // real-ns runs plot on comparable axes (the run line carries `units`).
    const double thr = static_cast<double>(s.commits) * 1e6 /
                       static_cast<double>(w.t1 - w.t0);
    std::fprintf(f_,
                 "{\"type\":\"window\",\"run\":\"%s\",\"window\":%" PRIu64
                 ",\"t0\":%" PRIu64 ",\"t1\":%" PRIu64
                 ",\"starts\":%" PRIu64 ",\"commits\":%" PRIu64
                 ",\"aborts\":%" PRIu64 ",\"abort_pct\":%.3f,"
                 "\"throughput\":%.3f,\"commit_p50\":%" PRIu64
                 ",\"commit_p99\":%" PRIu64 ",\"causes\":",
                 esc.c_str(), w.window, w.t0, w.t1, s.starts, s.commits,
                 s.aborts, s.abort_pct(), thr, s.lat_commit.percentile(50.0),
                 s.lat_commit.percentile(99.0));
    print_causes(f_, s.abort_causes);
    std::fprintf(f_, "}\n");
  }

  std::size_t rank = 1;
  for (const ConflictMap::Site& site : hot_sites) {
    std::fprintf(f_,
                 "{\"type\":\"hot_site\",\"run\":\"%s\",\"rank\":%zu,"
                 "\"addr\":\"%p\",\"orec\":",
                 esc.c_str(), rank, site.addr);
    if (site.orec == kNoOrec) {
      std::fprintf(f_, "null");
    } else {
      std::fprintf(f_, "%" PRIu32, site.orec);
    }
    std::fprintf(f_,
                 ",\"total\":%" PRIu64 ",\"edges\":%" PRIu64
                 ",\"top_cause\":\"%s\",\"causes\":",
                 site.total(), site.edges, abort_cause_name(site.top_cause()));
    print_causes(f_, site.counts);
    std::fprintf(f_, "}\n");
    ++rank;
  }

  if (std::ferror(f_) != 0) error_ = true;
}

bool MetricsWriter::close() {
  if (f_ == nullptr) return false;
  if (std::ferror(f_) != 0) error_ = true;
  const bool ok = std::fclose(f_) == 0 && !error_;
  f_ = nullptr;
  return ok;
}

}  // namespace semstm::obs
