// Windowed time-series metrics: TxStats deltas per fixed-width time window.
//
// Run-end aggregates average away exactly the phenomena the ROADMAP's next
// workloads create — bursty arrivals, livelock phases, hot-key storms. The
// window sampler slices a run into fixed-width windows of the obs clock
// (virtual ticks under the simulator, nanoseconds under real threads) and
// records, per window, the *delta* of the thread's full TxStats block:
// throughput, abort rate, cause mix and latency histograms, each
// attributable to a slice of the run instead of its average.
//
// Sampling discipline: each descriptor owns one WindowSeries (bound by the
// driver, like its TraceRing). The retry loop calls sample() at every
// attempt end; crossing a window boundary closes the previous window by
// subtracting the last snapshot from the current totals (TxStats::operator-=,
// see stats.hpp for the delta contract on max/min fields). Costs one
// division and a compare per attempt in SEMSTM_TRACE builds and compiles
// away entirely otherwise. An attempt's whole delta lands in the window
// containing its *end*; windows therefore partition the run exactly:
// summing every window delta (operator+=) reproduces the thread's final
// TxStats field-for-field — the invariant tests/test_metrics.cpp proves
// and DESIGN.md §4.15 documents.
//
// Window indices are absolute (now / width), so per-thread series merge by
// index without any cross-thread clock agreement beyond the shared obs
// clock itself.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "obs/conflict_map.hpp"

namespace semstm::obs {

/// One closed window of one thread: the TxStats delta accumulated while
/// the obs clock was inside [window*width, (window+1)*width).
struct WindowSample {
  std::uint64_t window = 0;  ///< absolute index: end-time / width
  TxStats delta;
};

class WindowSeries {
 public:
  explicit WindowSeries(std::uint64_t width_ticks)
      : width_(width_ticks == 0 ? 1 : width_ticks) {}

  std::uint64_t width() const noexcept { return width_; }

  /// Attempt-end hook. `cur` is the descriptor's cumulative TxStats at time
  /// `now`; the first call anchors the series, later calls close windows
  /// as boundaries are crossed. Cheap when no boundary was crossed.
  void sample(std::uint64_t now, const TxStats& cur) {
    const std::uint64_t w = now / width_;
    if (!open_) {
      cur_window_ = w;
      open_ = true;
      return;
    }
    if (w == cur_window_) return;
    close_window(cur);
    cur_window_ = w;
  }

  /// Run-end hook: close the final (partial) window so the samples
  /// partition the whole run. Idempotent on an unchanged `cur`, and a
  /// no-op on a series that never anchored — in gate-off builds the
  /// attempt loop never samples, so the driver's unconditional flush must
  /// not fabricate a whole-run window out of the final totals.
  void flush(const TxStats& cur) {
    if (open_) close_window(cur);
  }

  const std::vector<WindowSample>& samples() const noexcept {
    return samples_;
  }

 private:
  /// Push cur - snapshot_ as cur_window_'s delta; empty deltas (no attempt
  /// ended in the window) are skipped — absent windows read as zero.
  void close_window(const TxStats& cur) {
    TxStats d = cur;
    d -= snapshot_;
    if (d.starts == 0 && d.commits == 0 && d.aborts == 0 &&
        d.exceptions == 0) {
      return;
    }
    samples_.push_back(WindowSample{cur_window_, d});
    snapshot_ = cur;
  }

  std::uint64_t width_;
  std::uint64_t cur_window_ = 0;
  bool open_ = false;
  TxStats snapshot_;
  std::vector<WindowSample> samples_;
};

/// One merged window of a whole run: per-thread deltas summed by index.
struct WindowRow {
  std::uint64_t window = 0;
  std::uint64_t t0 = 0;  ///< window start, obs clock units
  std::uint64_t t1 = 0;  ///< window end (exclusive)
  TxStats stats;
};

/// Owns one WindowSeries per logical thread of a run — the driver binds
/// series(t) to thread t's descriptor, mirroring TraceCollector. The
/// collector must outlive the run.
class MetricsCollector {
 public:
  /// Default width: 2^14 clock units — a few dozen windows for the stock
  /// fig1 sweeps; benches override via --metrics-window.
  explicit MetricsCollector(std::uint64_t window_ticks = std::uint64_t{1}
                                                        << 14)
      : width_(window_ticks == 0 ? 1 : window_ticks) {}

  void prepare(unsigned threads) {
    while (series_.size() < threads) series_.emplace_back(width_);
  }

  WindowSeries& series(unsigned tid) {
    prepare(tid + 1);
    return series_[tid];
  }

  unsigned threads() const noexcept {
    return static_cast<unsigned>(series_.size());
  }

  std::uint64_t width() const noexcept { return width_; }

  /// Merge every thread's samples into run-level rows, ordered by window
  /// index. Threads must be quiescent (run finished and flushed).
  std::vector<WindowRow> merged() const;

 private:
  std::uint64_t width_;
  std::vector<WindowSeries> series_;
};

/// JSON-lines metrics writer (the --metrics-out sink): one self-describing
/// object per line so downstream tooling can stream-parse. Three line
/// types, discriminated by "type":
///
///   {"type":"run", "label":..., "units":"ticks"|"ns", "window_ticks":...,
///    "threads":..., "windows":..., "hot_sites":..., "conflict_overflow":...}
///   {"type":"window", "run":..., "window":..., "t0":..., "t1":...,
///    "starts":..., "commits":..., "aborts":..., "abort_pct":...,
///    "throughput":...,        // commits per mega-unit of the run's clock
///    "causes":{...nonzero only...}, "commit_p50":..., "commit_p99":...}
///   {"type":"hot_site", "run":..., "rank":..., "addr":"0x...", "orec":...,
///    "total":..., "edges":..., "top_cause":..., "causes":{...}}
///
/// examples/tm_top.cpp renders this format; scripts/ci_metrics_smoke.sh
/// validates it.
class MetricsWriter {
 public:
  explicit MetricsWriter(const std::string& path);
  ~MetricsWriter();
  MetricsWriter(const MetricsWriter&) = delete;
  MetricsWriter& operator=(const MetricsWriter&) = delete;

  bool ok() const noexcept { return f_ != nullptr; }

  void add_run(const std::string& label, const char* units,
               std::uint64_t window_ticks, unsigned threads,
               const std::vector<WindowRow>& rows,
               const std::vector<ConflictMap::Site>& hot_sites,
               std::uint64_t conflict_overflow);

  /// Flush and close; returns false if any write failed.
  bool close();

 private:
  std::FILE* f_ = nullptr;
  bool error_ = false;
};

}  // namespace semstm::obs
