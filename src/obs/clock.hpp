// Observability compile gate and time source.
//
// The whole src/obs subsystem is *always compiled* (and unit-tested) so it
// cannot rot behind the flag; what the SEMSTM_TRACE compile-time gate
// controls is whether the hot paths *record* into it. With the gate off
// (the default) every recording site is an `if constexpr (false)` — zero
// instructions on the transaction fast path. Build with
// `cmake -DSEMSTM_TRACE=ON` to light it up.
#pragma once

#include <chrono>
#include <cstdint>

#include "sched/yieldpoint.hpp"

namespace semstm::obs {

#if defined(SEMSTM_TRACE) && SEMSTM_TRACE
inline constexpr bool kTraceEnabled = true;
#else
inline constexpr bool kTraceEnabled = false;
#endif

/// Current time in "ticks". Under the virtual scheduler this is the
/// running fiber's deterministic virtual clock — the same unit as makespan
/// and throughput, so latency histograms and traces line up with the
/// figures. Under real threads it is a monotonic hardware clock in
/// nanoseconds (rdtsc would be cheaper but needs invariant-TSC probing;
/// traced builds are diagnostic builds, so portability wins).
inline std::uint64_t now_ticks() noexcept {
  if (const sched::YieldHook* h = sched::hook()) return h->now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace semstm::obs
