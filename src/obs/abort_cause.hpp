// Abort-cause taxonomy: *why* a transaction attempt rolled back.
//
// The paper's evaluation argument is that S-NOrec / S-TL2 abort less than
// their base algorithms because semantic validation tolerates value churn
// that value/version validation does not. Aggregate abort counts cannot
// show that — a per-cause histogram can: a semantic algorithm should shift
// aborts *out of* kReadValidation (a value/version mismatch) and keep only
// the kCmpRevalidation events where the relation's outcome genuinely
// flipped. Every abort site in the five algorithms tags its throw with one
// of these causes (plus the conflicting address or orec), atomically()
// folds the tag into TxStats::abort_causes, and the tracing layer attaches
// it to the abort event.
#pragma once

#include <cstddef>
#include <cstdint>

namespace semstm::obs {

enum class AbortCause : std::uint8_t {
  kUnknown = 0,         ///< untagged (a TxAbort thrown outside abort_tx())
  kReadValidation,      ///< value/version read-set validation failed
  kWriteLockConflict,   ///< a needed orec/lock was held by another tx
  kCmpRevalidation,     ///< a semantic compare-set entry's outcome flipped
  kClockOverflow,       ///< global version/timestamp wrapped (epoch end)
  kSerialGatePreempt,   ///< conflict observed while a serial-irrevocable
                        ///< transaction was pending or running (the abort
                        ///< clears the way for the token holder)
  kUserAbort,           ///< explicit Tx::user_abort()
  kCount_,              ///< sentinel, not a cause
};

inline constexpr std::size_t kAbortCauseCount =
    static_cast<std::size_t>(AbortCause::kCount_);

/// Stable snake_case identifiers, used verbatim as JSON keys by the bench
/// harness and the trace exporter.
inline const char* abort_cause_name(AbortCause c) noexcept {
  switch (c) {
    case AbortCause::kUnknown:          return "unknown";
    case AbortCause::kReadValidation:   return "read_validation";
    case AbortCause::kWriteLockConflict: return "write_lock_conflict";
    case AbortCause::kCmpRevalidation:  return "cmp_revalidation";
    case AbortCause::kClockOverflow:    return "clock_overflow";
    case AbortCause::kSerialGatePreempt: return "serial_gate_preempt";
    case AbortCause::kUserAbort:        return "user_abort";
    case AbortCause::kCount_:           break;
  }
  return "invalid";
}

/// "No orec": the abort was not resolved at orec granularity (NOrec-family
/// value/cmp validation, or algorithms without ownership records).
inline constexpr std::uint32_t kNoOrec = 0xFFFFFFFFu;

/// The tag an abort site attaches to its throw: the cause plus the
/// conflicting location — a transactional word where the site knows it, an
/// orec for lock/validation conflicts resolved at orec granularity, null
/// where no single location exists (e.g. clock overflow). Orec-based
/// algorithms additionally report the conflicting orec's table index and,
/// when the site could read one, the owning transaction at conflict time —
/// the aborter->owner edge the conflict map (obs/conflict_map.hpp)
/// accumulates. `owner` is a best-effort hint (the owner may release
/// between the conflict and the read), never a synchronization artifact.
struct AbortInfo {
  AbortCause cause = AbortCause::kUnknown;
  const void* addr = nullptr;
  std::uint32_t orec = kNoOrec;
  const void* owner = nullptr;
};

}  // namespace semstm::obs
