// Human-readable rendering of contention cartography: the hotspot table
// and per-window sparkline behind `examples/tm_top.cpp`, and the in-process
// hot-site summary `examples/quickstart.cpp` prints.
//
// Two entry points:
//   - render_hot_sites(): format an in-memory ranking (from
//     obs::top_sites()) — no I/O, usable from any program holding a
//     ConflictMap.
//   - render_metrics_report(): read a --metrics-out JSON-lines file (the
//     MetricsWriter schema) and render every run it contains: a header,
//     per-window sparklines of throughput and abort rate, and the ranked
//     hotspot table. The parser is a deliberately minimal field scanner
//     over our own known-flat schema (one object per line, no nesting
//     beyond the `causes` map) — not a general JSON parser, and kept that
//     way so the repo takes no parsing dependency.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/conflict_map.hpp"

namespace semstm::obs {

/// Ranked hotspot table, one row per site (rank, address, orec, total
/// aborts, edge count, dominant cause, cause mix). `overflow` > 0 appends
/// a completeness warning. Empty input renders an explicit "no conflicts
/// recorded" line so gate-off callers still print something truthful.
std::string render_hot_sites(const std::vector<ConflictMap::Site>& sites,
                             std::uint64_t overflow = 0);

/// ASCII sparkline (one char per value, 8-level ramp, scaled to the max
/// value in `values`). Empty input yields an empty string.
std::string sparkline(const std::vector<double>& values);

/// Exit-status contract shared with scripts/ci_metrics_smoke.sh.
enum : int {
  kReportOk = 0,        ///< parsed and rendered at least one run
  kReportInvalid = 1,   ///< file readable but schema-invalid / no run line
  kReportIoError = 2,   ///< could not open/read the file
};

/// Render every run in a MetricsWriter JSON-lines file into `out`.
/// Shows at most `top_k` hot sites per run. Returns kReport* status;
/// `out` carries a diagnostic on failure.
int render_metrics_report(const std::string& path, std::size_t top_k,
                          std::string& out);

}  // namespace semstm::obs
