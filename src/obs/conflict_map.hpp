// Conflict-site attribution: *where* transactions abort.
//
// PR 2's cause histogram answers "why did we abort"; the conflict map
// answers "over which location" — the question the KV hot-key work and the
// Proust object-level-conflict comparison (PAPERS.md) both hinge on. Every
// attributed abort site already carries the conflicting address (and, for
// the orec-based algorithms, the conflicting orec and — when readable —
// its owner); TxCoreBase::abort_tx() folds that tag into a per-descriptor
// ConflictMap keyed by conflict *site*:
//
//   - orec-granular sites (TL2 / S-TL2) key on the orec table index: many
//     addresses hash onto one orec, and the orec is what the algorithm
//     actually fights over — false sharing across the hash shows up as one
//     hot site, which is exactly the diagnosis the map exists to make.
//   - address-granular sites (NOrec family value/cmp validation) key on
//     the word region (kRegionShift; word granularity by default).
//
// Recording rides the abort path — already cold and out of line — but is
// still compile-gated behind SEMSTM_TRACE like the rest of the recording
// layer: with the gate off the map never allocates and record() compiles
// away at the call site. The map is single-writer (its owning descriptor);
// aggregation happens after the run via merge(), the same
// single-writer-then-merge discipline as TxStats.
//
// Accounting contract (DESIGN.md §4.15): a site is recorded only for
// aborts that carry a conflicting location, so for every cause
// sum_over_sites(counts[cause]) + untracked <= TxStats::abort_causes[cause]
// where untracked covers location-free aborts (clock overflow, user abort)
// and sites dropped by a full table (overflow()) — bounded capacity with
// an honest drop counter, the TraceRing discipline.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/abort_cause.hpp"

namespace semstm::obs {

/// Address-region granularity for sites without an orec: 3 = one site per
/// 8-byte transactional word (exact attribution; every TVar is one word).
/// Raising this coarsens sites to cache lines (6) or pages (12) — a single
/// constant because the right grain depends on what is being diagnosed.
inline constexpr unsigned kRegionShift = 3;

class ConflictMap {
 public:
  /// One conflict site and everything accumulated against it.
  struct Site {
    const void* addr = nullptr;   ///< representative conflicting address
    std::uint32_t orec = kNoOrec; ///< orec table index, kNoOrec if unkeyed
    std::uint64_t counts[kAbortCauseCount] = {};  ///< aborts by cause
    std::uint64_t edges = 0;      ///< aborts with a known aborter->owner edge
    const void* last_owner = nullptr;  ///< most recent conflicting owner

    std::uint64_t total() const noexcept {
      std::uint64_t t = 0;
      for (std::uint64_t c : counts) t += c;
      return t;
    }

    AbortCause top_cause() const noexcept {
      std::size_t best = 0;
      for (std::size_t c = 1; c < kAbortCauseCount; ++c) {
        if (counts[c] > counts[best]) best = c;
      }
      return static_cast<AbortCause>(best);
    }
  };

  /// Capacity is 2^slots_log2 sites. The per-descriptor default (512)
  /// covers every realistic per-thread hot set; the run-level merge target
  /// uses a larger table. Slots allocate lazily on the first record, so a
  /// descriptor that never conflicts (or a gate-off build) costs pointers.
  explicit ConflictMap(unsigned slots_log2 = 9)
      : mask_((std::size_t{1} << slots_log2) - 1) {}

  /// Record one attributed abort. `addr` must be non-null (location-free
  /// aborts have no site); `owner` is the conflicting orec owner when the
  /// abort site could read one — best-effort, the aborter->victim edge.
  void record(AbortCause cause, const void* addr, std::uint32_t orec,
              const void* owner) noexcept {
    Site* s = lookup(key_of(addr, orec));
    if (s == nullptr) {
      ++overflow_;
      return;
    }
    if (s->addr == nullptr) {  // claimed a fresh slot
      s->addr = addr;
      s->orec = orec;
      ++used_;
    }
    ++s->counts[static_cast<std::size_t>(cause)];
    if (owner != nullptr) {
      ++s->edges;
      s->last_owner = owner;
    }
  }

  /// Fold another map into this one (run-end aggregation; the other map's
  /// threads must be quiescent). Overflow is inherited: a drop in any
  /// per-thread map makes the merged ranking a lower bound, and the count
  /// says so.
  void merge(const ConflictMap& o) noexcept {
    overflow_ += o.overflow_;
    if (o.slots_ == nullptr) return;
    for (std::size_t i = 0; i <= o.mask_; ++i) {
      const Site& src = o.slots_[i];
      if (src.addr == nullptr) continue;
      Site* dst = lookup(key_of(src.addr, src.orec));
      if (dst == nullptr) {
        ++overflow_;
        continue;
      }
      if (dst->addr == nullptr) {
        dst->addr = src.addr;
        dst->orec = src.orec;
        ++used_;
      }
      for (std::size_t c = 0; c < kAbortCauseCount; ++c) {
        dst->counts[c] += src.counts[c];
      }
      dst->edges += src.edges;
      if (src.last_owner != nullptr) dst->last_owner = src.last_owner;
    }
  }

  std::size_t size() const noexcept { return used_; }
  bool empty() const noexcept { return used_ == 0; }
  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Sites dropped because the table was full (ranking completeness flag).
  std::uint64_t overflow() const noexcept { return overflow_; }

  template <typename F>
  void for_each(F&& f) const {
    if (slots_ == nullptr) return;
    for (std::size_t i = 0; i <= mask_; ++i) {
      if (slots_[i].addr != nullptr) f(slots_[i]);
    }
  }

  void clear() noexcept {
    if (slots_ != nullptr) {
      for (std::size_t i = 0; i <= mask_; ++i) slots_[i] = Site{};
    }
    used_ = 0;
    overflow_ = 0;
  }

 private:
  /// Site identity: the orec index when the abort was orec-granular (what
  /// word-based detection actually serializes on), else the address region.
  /// Orec keys are tagged apart from region keys so index 3 and the region
  /// of address 24 never alias.
  static std::uintptr_t key_of(const void* addr, std::uint32_t orec) noexcept {
    if (orec != kNoOrec) return (std::uintptr_t{orec} << 1) | 1;
    return (reinterpret_cast<std::uintptr_t>(addr) >> kRegionShift) << 1;
  }

  /// Linear-probe lookup/claim. Returns null when the table is full and the
  /// key is not already present. Empty slots have addr == nullptr; the
  /// probed key is re-derived from the resident site, so no separate key
  /// array is stored.
  Site* lookup(std::uintptr_t key) noexcept {
    if (slots_ == nullptr) {
      slots_ = std::make_unique<Site[]>(mask_ + 1);
    }
    std::uintptr_t h = key;
    h ^= h >> 17;
    h *= 0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
    for (std::size_t probe = 0; probe <= mask_; ++probe) {
      Site& s = slots_[(h + probe) & mask_];
      if (s.addr == nullptr) return &s;
      if (key_of(s.addr, s.orec) == key) return &s;
    }
    return nullptr;  // full
  }

  std::size_t mask_;
  std::unique_ptr<Site[]> slots_;
  std::size_t used_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Rank a map's sites by total abort count, hottest first (deterministic:
/// ties break on orec index, then address). Returns at most `k` sites.
inline std::vector<ConflictMap::Site> top_sites(const ConflictMap& map,
                                                std::size_t k) {
  std::vector<ConflictMap::Site> out;
  out.reserve(map.size());
  map.for_each([&](const ConflictMap::Site& s) { out.push_back(s); });
  std::sort(out.begin(), out.end(),
            [](const ConflictMap::Site& a, const ConflictMap::Site& b) {
              const std::uint64_t ta = a.total(), tb = b.total();
              if (ta != tb) return ta > tb;
              if (a.orec != b.orec) return a.orec < b.orec;
              return a.addr < b.addr;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace semstm::obs
