#include "obs/report.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace semstm::obs {

namespace {

// ---------------------------------------------------------------------------
// Minimal field scanner for the MetricsWriter schema: one flat JSON object
// per line, string values without escaped quotes (our labels guarantee
// this), numbers in plain decimal. Good for exactly this schema, nothing
// else — by design (see report.hpp).

/// Locate the value after `"key":` in `line`; nullptr if absent.
const char* find_value(const std::string& line, const char* key) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return nullptr;
  return line.c_str() + pos + needle.size();
}

bool get_string(const std::string& line, const char* key, std::string& out) {
  const char* v = find_value(line, key);
  if (v == nullptr || *v != '"') return false;
  const char* end = std::strchr(v + 1, '"');
  if (end == nullptr) return false;
  out.assign(v + 1, end);
  return true;
}

bool get_u64(const std::string& line, const char* key, std::uint64_t& out) {
  const char* v = find_value(line, key);
  if (v == nullptr || (*v < '0' || *v > '9')) return false;
  out = std::strtoull(v, nullptr, 10);
  return true;
}

bool get_double(const std::string& line, const char* key, double& out) {
  const char* v = find_value(line, key);
  if (v == nullptr) return false;
  char* end = nullptr;
  out = std::strtod(v, &end);
  return end != v;
}

struct WindowLine {
  std::uint64_t window = 0, t0 = 0, t1 = 0;
  std::uint64_t starts = 0, commits = 0, aborts = 0;
  std::uint64_t p50 = 0, p99 = 0;
  double abort_pct = 0.0, throughput = 0.0;
};

struct HotSiteLine {
  std::uint64_t rank = 0, total = 0, edges = 0;
  std::string addr, orec, top_cause, causes;
};

struct RunBlock {
  std::string label, units;
  std::uint64_t window_ticks = 0, threads = 0, conflict_overflow = 0;
  std::uint64_t declared_windows = 0, declared_hot_sites = 0;
  std::vector<WindowLine> windows;
  std::vector<HotSiteLine> hot_sites;
};

void append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

/// The `causes` sub-object verbatim ({"cause":n,...}), for display.
bool get_causes_raw(const std::string& line, std::string& out) {
  const char* v = find_value(line, "causes");
  if (v == nullptr || *v != '{') return false;
  const char* end = std::strchr(v, '}');
  if (end == nullptr) return false;
  out.assign(v, end + 1);
  return true;
}

void render_run(const RunBlock& r, std::size_t top_k, std::string& out) {
  append(out, "== %s  (%" PRIu64 " threads, window=%" PRIu64 " %s)\n",
         r.label.c_str(), r.threads, r.window_ticks, r.units.c_str());

  if (r.windows.empty()) {
    out += "  windows: none recorded\n";
  } else {
    std::vector<double> thr, ab;
    std::uint64_t commits = 0, aborts = 0, starts = 0;
    thr.reserve(r.windows.size());
    ab.reserve(r.windows.size());
    for (const WindowLine& w : r.windows) {
      thr.push_back(w.throughput);
      ab.push_back(w.abort_pct);
      commits += w.commits;
      aborts += w.aborts;
      starts += w.starts;
    }
    append(out,
           "  windows: %zu   starts=%" PRIu64 " commits=%" PRIu64
           " aborts=%" PRIu64 "\n",
           r.windows.size(), starts, commits, aborts);
    out += "  throughput |" + sparkline(thr) + "|\n";
    out += "  abort %   |" + sparkline(ab) + "|\n";
    // Peak-window callouts: the bursts run-end averages hide.
    std::size_t peak_thr = 0, peak_ab = 0;
    for (std::size_t i = 1; i < r.windows.size(); ++i) {
      if (thr[i] > thr[peak_thr]) peak_thr = i;
      if (ab[i] > ab[peak_ab]) peak_ab = i;
    }
    append(out,
           "  peak throughput %.1f commits/M%s @ window %" PRIu64
           "   peak abort %.1f%% @ window %" PRIu64 "\n",
           thr[peak_thr], r.units.c_str(), r.windows[peak_thr].window,
           ab[peak_ab], r.windows[peak_ab].window);
  }

  if (r.hot_sites.empty()) {
    out += "  hot sites: none recorded\n";
  } else {
    append(out, "  %-4s %-18s %-8s %-10s %-7s %s\n", "rank", "addr", "orec",
           "aborts", "edges", "top cause");
    std::size_t shown = 0;
    for (const HotSiteLine& s : r.hot_sites) {
      if (shown++ == top_k) break;
      append(out, "  %-4" PRIu64 " %-18s %-8s %-10" PRIu64 " %-7" PRIu64
                  " %s %s\n",
             s.rank, s.addr.c_str(), s.orec.c_str(), s.total, s.edges,
             s.top_cause.c_str(), s.causes.c_str());
    }
  }
  if (r.conflict_overflow > 0) {
    append(out,
           "  ! %" PRIu64
           " conflict(s) dropped by full site tables — ranking is a lower "
           "bound\n",
           r.conflict_overflow);
  }
  out += "\n";
}

}  // namespace

std::string render_hot_sites(const std::vector<ConflictMap::Site>& sites,
                             std::uint64_t overflow) {
  std::string out;
  if (sites.empty()) {
    out = "hot sites: none recorded";
    if (overflow == 0) out += " (untraced build or conflict-free run)";
    out += "\n";
    return out;
  }
  append(out, "%-4s %-18s %-8s %-10s %-7s %s\n", "rank", "addr", "orec",
         "aborts", "edges", "top cause");
  std::size_t rank = 1;
  for (const ConflictMap::Site& s : sites) {
    char orec_buf[16];
    if (s.orec == kNoOrec) {
      std::snprintf(orec_buf, sizeof(orec_buf), "-");
    } else {
      std::snprintf(orec_buf, sizeof(orec_buf), "%" PRIu32, s.orec);
    }
    append(out, "%-4zu %-18p %-8s %-10" PRIu64 " %-7" PRIu64 " %s\n", rank,
           s.addr, orec_buf, s.total(), s.edges,
           abort_cause_name(s.top_cause()));
    ++rank;
  }
  if (overflow > 0) {
    append(out,
           "! %" PRIu64 " conflict(s) dropped by full site tables\n",
           overflow);
  }
  return out;
}

std::string sparkline(const std::vector<double>& values) {
  // ASCII ramp (8 levels) — renders identically in logs, CI, and terminals
  // without UTF-8 assumptions.
  static constexpr char kRamp[] = {' ', '.', ':', '-', '=', '+', '*', '#'};
  constexpr std::size_t kLevels = sizeof(kRamp);
  std::string out;
  if (values.empty()) return out;
  double max = 0.0;
  for (double v : values) {
    if (v > max) max = v;
  }
  out.reserve(values.size());
  for (double v : values) {
    if (max <= 0.0 || v <= 0.0) {
      out.push_back(kRamp[0]);
      continue;
    }
    auto lvl = static_cast<std::size_t>(v / max * (kLevels - 1) + 0.5);
    if (lvl >= kLevels) lvl = kLevels - 1;
    out.push_back(kRamp[lvl]);
  }
  return out;
}

int render_metrics_report(const std::string& path, std::size_t top_k,
                          std::string& out) {
  std::ifstream in(path);
  if (!in) {
    out = "tm_top: cannot open '" + path + "'\n";
    return kReportIoError;
  }

  std::vector<RunBlock> runs;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::string type;
    if (!get_string(line, "type", type)) {
      append(out, "tm_top: line %zu: missing \"type\"\n", lineno);
      return kReportInvalid;
    }
    if (type == "run") {
      RunBlock r;
      const bool ok = get_string(line, "label", r.label) &&
                      get_string(line, "units", r.units) &&
                      get_u64(line, "window_ticks", r.window_ticks) &&
                      get_u64(line, "threads", r.threads) &&
                      get_u64(line, "windows", r.declared_windows) &&
                      get_u64(line, "hot_sites", r.declared_hot_sites) &&
                      get_u64(line, "conflict_overflow", r.conflict_overflow);
      if (!ok || (r.units != "ticks" && r.units != "ns")) {
        append(out, "tm_top: line %zu: malformed run line\n", lineno);
        return kReportInvalid;
      }
      runs.push_back(std::move(r));
    } else if (type == "window") {
      if (runs.empty()) {
        append(out, "tm_top: line %zu: window before any run line\n", lineno);
        return kReportInvalid;
      }
      WindowLine w;
      const bool ok = get_u64(line, "window", w.window) &&
                      get_u64(line, "t0", w.t0) && get_u64(line, "t1", w.t1) &&
                      get_u64(line, "starts", w.starts) &&
                      get_u64(line, "commits", w.commits) &&
                      get_u64(line, "aborts", w.aborts) &&
                      get_double(line, "abort_pct", w.abort_pct) &&
                      get_double(line, "throughput", w.throughput) &&
                      get_u64(line, "commit_p50", w.p50) &&
                      get_u64(line, "commit_p99", w.p99);
      if (!ok || w.t1 <= w.t0 || w.starts < w.commits + w.aborts) {
        append(out, "tm_top: line %zu: malformed window line\n", lineno);
        return kReportInvalid;
      }
      runs.back().windows.push_back(w);
    } else if (type == "hot_site") {
      if (runs.empty()) {
        append(out, "tm_top: line %zu: hot_site before any run line\n",
               lineno);
        return kReportInvalid;
      }
      HotSiteLine s;
      const char* orec_v = find_value(line, "orec");
      const bool ok = get_u64(line, "rank", s.rank) &&
                      get_string(line, "addr", s.addr) && orec_v != nullptr &&
                      get_u64(line, "total", s.total) &&
                      get_u64(line, "edges", s.edges) &&
                      get_string(line, "top_cause", s.top_cause) &&
                      get_causes_raw(line, s.causes);
      if (!ok) {
        append(out, "tm_top: line %zu: malformed hot_site line\n", lineno);
        return kReportInvalid;
      }
      if (std::strncmp(orec_v, "null", 4) == 0) {
        s.orec = "-";
      } else {
        std::uint64_t orec = 0;
        if (!get_u64(line, "orec", orec)) {
          append(out, "tm_top: line %zu: malformed orec field\n", lineno);
          return kReportInvalid;
        }
        s.orec = std::to_string(orec);
      }
      runs.back().hot_sites.push_back(std::move(s));
    } else {
      append(out, "tm_top: line %zu: unknown type \"%s\"\n", lineno,
             type.c_str());
      return kReportInvalid;
    }
  }

  if (runs.empty()) {
    out = "tm_top: no run lines in '" + path + "'\n";
    return kReportInvalid;
  }
  // Cross-check declared counts — the writer and the reader must agree on
  // how many lines belong to each run (truncated files fail here).
  for (const RunBlock& r : runs) {
    if (r.windows.size() != r.declared_windows ||
        r.hot_sites.size() != r.declared_hot_sites) {
      append(out,
             "tm_top: run \"%s\" declares %" PRIu64 " windows / %" PRIu64
             " hot sites but carries %zu / %zu\n",
             r.label.c_str(), r.declared_windows, r.declared_hot_sites,
             r.windows.size(), r.hot_sites.size());
      return kReportInvalid;
    }
  }

  for (const RunBlock& r : runs) render_run(r, top_k, out);
  return kReportOk;
}

}  // namespace semstm::obs
