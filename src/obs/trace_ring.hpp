// Lock-free per-thread event tracing: a fixed-capacity single-producer /
// single-consumer ring of TraceEvents.
//
// Producer = the logical thread running transactions (its Tx records at
// begin/commit/abort/fallback and at semantic-operation hooks); consumer =
// the TraceExporter draining rings after (or during) a run. The classic
// SPSC discipline makes every operation wait-free: the producer owns
// head_, the consumer owns tail_, each reads the other's index with
// acquire and publishes its own with release. When the ring is full the
// producer *drops* the event and counts it (dropped()) — tracing must
// never block or abort a transaction, and a bounded ring with an honest
// drop counter beats an unbounded one that perturbs the run it observes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "obs/abort_cause.hpp"
#include "util/padded.hpp"

namespace semstm::obs {

enum class EventKind : std::uint8_t {
  kBegin = 0,    ///< attempt started (instant)
  kCommit,       ///< attempt committed; dur = begin -> commit
  kAbort,        ///< attempt aborted;  dur = begin -> abort, cause set
  kFallback,     ///< escalation to the serial-irrevocable token (instant)
  kSerialHold,   ///< serial token held; dur = acquire -> release
  kSemanticOp,   ///< semantic construct executed (cmp/inc/promotion)
};

inline const char* event_kind_name(EventKind k) noexcept {
  switch (k) {
    case EventKind::kBegin:      return "begin";
    case EventKind::kCommit:     return "commit";
    case EventKind::kAbort:      return "abort";
    case EventKind::kFallback:   return "fallback";
    case EventKind::kSerialHold: return "serial_hold";
    case EventKind::kSemanticOp: return "semantic_op";
  }
  return "invalid";
}

/// Sub-kinds for kSemanticOp events (stored in `aux`).
enum class SemanticOp : std::uint8_t { kCmp = 0, kCmp2, kCmpOr, kInc, kPromote };

inline const char* semantic_op_name(SemanticOp op) noexcept {
  switch (op) {
    case SemanticOp::kCmp:     return "cmp";
    case SemanticOp::kCmp2:    return "cmp2";
    case SemanticOp::kCmpOr:   return "cmp_or";
    case SemanticOp::kInc:     return "inc";
    case SemanticOp::kPromote: return "promote";
  }
  return "invalid";
}

/// One POD record. `ts` is in obs::now_ticks() units (virtual ticks under
/// the simulator, nanoseconds under real threads); `dur` is 0 for instant
/// events. `addr` is the conflicting/operand location (or null) and
/// `cause` is meaningful only for kAbort.
struct TraceEvent {
  std::uint64_t ts = 0;
  std::uint64_t dur = 0;
  const void* addr = nullptr;
  EventKind kind = EventKind::kBegin;
  AbortCause cause = AbortCause::kUnknown;
  std::uint8_t aux = 0;  ///< SemanticOp for kSemanticOp events
};

class TraceRing {
 public:
  /// Capacity is 2^capacity_log2 events (default 2^14 = 16384, ~640 KiB).
  explicit TraceRing(unsigned capacity_log2 = 14)
      : mask_((std::size_t{1} << capacity_log2) - 1),
        slots_(std::make_unique<TraceEvent[]>(std::size_t{1}
                                              << capacity_log2)) {}

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer side. Returns false (and counts the drop) when full.
  bool push(const TraceEvent& e) noexcept {
    const std::size_t head = head_.value.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.value.load(std::memory_order_acquire);
    if (head - tail > mask_) {  // full
      dropped_.value.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[head & mask_] = e;
    head_.value.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool pop(TraceEvent& out) noexcept {
    const std::size_t tail = tail_.value.load(std::memory_order_relaxed);
    const std::size_t head = head_.value.load(std::memory_order_acquire);
    if (tail == head) return false;
    out = slots_[tail & mask_];
    tail_.value.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Events currently buffered (racy snapshot; exact when quiescent).
  std::size_t size() const noexcept {
    return head_.value.load(std::memory_order_acquire) -
           tail_.value.load(std::memory_order_acquire);
  }

  bool empty() const noexcept { return size() == 0; }

  /// Events the producer had to discard because the ring was full.
  std::uint64_t dropped() const noexcept {
    return dropped_.value.load(std::memory_order_relaxed);
  }

 private:
  std::size_t mask_;
  std::unique_ptr<TraceEvent[]> slots_;
  // Free-running indices (wrap naturally); padded so the producer-owned
  // and consumer-owned lines never false-share.
  Padded<std::atomic<std::size_t>> head_{};    ///< producer cursor
  Padded<std::atomic<std::size_t>> tail_{};    ///< consumer cursor
  Padded<std::atomic<std::uint64_t>> dropped_{};
};

}  // namespace semstm::obs
