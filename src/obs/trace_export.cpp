#include "obs/trace_export.hpp"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>

#include "obs/abort_cause.hpp"

namespace semstm::obs {

namespace {

/// Minimal JSON string escaping for run labels (quotes and backslashes;
/// labels are ASCII by construction).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';  // control characters have no business in a label
      continue;
    }
    out.push_back(c);
  }
  return out;
}

const char* event_display_name(const TraceEvent& e) {
  if (e.kind == EventKind::kSemanticOp) {
    return semantic_op_name(static_cast<SemanticOp>(e.aux));
  }
  return event_kind_name(e.kind);
}

}  // namespace

std::size_t TraceExporter::add_run(const std::string& label,
                                   TraceCollector& collector) {
  const auto pid = static_cast<std::uint32_t>(runs_.size());
  runs_.push_back(Run{label, collector.threads(), collector.dropped()});
  std::size_t drained = 0;
  for (unsigned tid = 0; tid < collector.threads(); ++tid) {
    TraceRing& ring = collector.ring(tid);
    TraceEvent e;
    while (ring.pop(e)) {
      events_.push_back(Rec{pid, tid, e});
      ++drained;
    }
  }
  return drained;
}

bool TraceExporter::write_chrome(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  // Sort by (pid, ts) for deterministic output; stable so same-timestamp
  // events keep ring order.
  std::vector<const Rec*> order;
  order.reserve(events_.size());
  for (const Rec& r : events_) order.push_back(&r);
  std::stable_sort(order.begin(), order.end(),
                   [](const Rec* a, const Rec* b) {
                     if (a->pid != b->pid) return a->pid < b->pid;
                     return a->e.ts < b->e.ts;
                   });

  std::fprintf(f, "{\"traceEvents\":[\n");
  bool first = true;
  auto sep = [&] {
    if (!first) std::fprintf(f, ",\n");
    first = false;
  };

  for (std::size_t pid = 0; pid < runs_.size(); ++pid) {
    sep();
    std::fprintf(f,
                 "{\"ph\":\"M\",\"pid\":%zu,\"tid\":0,\"name\":"
                 "\"process_name\",\"args\":{\"name\":\"%s\"}}",
                 pid, json_escape(runs_[pid].label).c_str());
    for (unsigned t = 0; t < runs_[pid].threads; ++t) {
      sep();
      std::fprintf(f,
                   "{\"ph\":\"M\",\"pid\":%zu,\"tid\":%u,\"name\":"
                   "\"thread_name\",\"args\":{\"name\":\"T%u\"}}",
                   pid, t, t);
    }
  }

  for (const Rec* r : order) {
    const TraceEvent& e = r->e;
    sep();
    const bool complete =
        e.kind == EventKind::kCommit || e.kind == EventKind::kAbort ||
        e.kind == EventKind::kSerialHold;
    // Complete events are emitted at their *start* timestamp.
    const std::uint64_t ts = complete ? e.ts - e.dur : e.ts;
    if (complete) {
      std::fprintf(f,
                   "{\"ph\":\"X\",\"pid\":%u,\"tid\":%u,\"ts\":%" PRIu64
                   ",\"dur\":%" PRIu64 ",\"name\":\"%s\"",
                   r->pid, r->tid, ts, e.dur, event_display_name(e));
    } else {
      std::fprintf(f,
                   "{\"ph\":\"i\",\"pid\":%u,\"tid\":%u,\"ts\":%" PRIu64
                   ",\"s\":\"t\",\"name\":\"%s\"",
                   r->pid, r->tid, ts, event_display_name(e));
    }
    if (e.kind == EventKind::kAbort) {
      std::fprintf(f, ",\"args\":{\"cause\":\"%s\",\"addr\":\"%p\"}",
                   abort_cause_name(e.cause), e.addr);
    } else if (e.addr != nullptr) {
      std::fprintf(f, ",\"args\":{\"addr\":\"%p\"}", e.addr);
    }
    std::fprintf(f, "}");
  }

  std::fprintf(f, "\n]}\n");
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

std::string TraceExporter::flame_summary() const {
  constexpr std::size_t kKinds = 6;
  struct PerRun {
    std::array<std::uint64_t, kKinds> count{};
    std::array<std::uint64_t, kKinds> dur{};
    std::array<std::uint64_t, kAbortCauseCount> causes{};
  };
  std::vector<PerRun> acc(runs_.size());
  for (const Rec& r : events_) {
    PerRun& a = acc[r.pid];
    const auto k = static_cast<std::size_t>(r.e.kind);
    if (k < kKinds) {
      ++a.count[k];
      a.dur[k] += r.e.dur;
    }
    if (r.e.kind == EventKind::kAbort) {
      ++a.causes[static_cast<std::size_t>(r.e.cause)];
    }
  }

  std::string out;
  char line[256];
  for (std::size_t pid = 0; pid < runs_.size(); ++pid) {
    std::snprintf(line, sizeof(line), "%s (%u threads, %" PRIu64 " dropped)\n",
                  runs_[pid].label.c_str(), runs_[pid].threads,
                  runs_[pid].dropped);
    out += line;
    for (std::size_t k = 0; k < kKinds; ++k) {
      if (acc[pid].count[k] == 0) continue;
      std::snprintf(line, sizeof(line),
                    "  %-12s %8" PRIu64 " events  %12" PRIu64 " ticks\n",
                    event_kind_name(static_cast<EventKind>(k)),
                    acc[pid].count[k], acc[pid].dur[k]);
      out += line;
    }
    for (std::size_t c = 0; c < kAbortCauseCount; ++c) {
      if (acc[pid].causes[c] == 0) continue;
      std::snprintf(line, sizeof(line), "    abort/%-20s %8" PRIu64 "\n",
                    abort_cause_name(static_cast<AbortCause>(c)),
                    acc[pid].causes[c]);
      out += line;
    }
  }
  return out;
}

}  // namespace semstm::obs
