// Power-of-two-bucket latency histogram.
//
// Designed for the transaction hot path of a *traced* build: record() is a
// bit_width, one array increment and four scalar updates — no floating
// point, no allocation, no locks (each histogram is written by exactly one
// thread; aggregation happens after the run via operator+=, the same
// single-writer-then-merge discipline as TxStats itself).
//
// Bucket i >= 1 covers durations in [2^(i-1), 2^i - 1]; bucket 0 holds
// exact zeros. Quantiles are therefore approximate: percentile() returns
// the upper bound of the bucket containing the requested rank (clamped to
// the observed maximum), i.e. an at-most-2x overestimate — the right
// trade for "did p99 commit latency move between algorithms" questions.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "obs/clock.hpp"

namespace semstm::obs {

struct LatencyHistogram {
  /// 0, plus one bucket per possible bit_width of a uint64_t duration.
  static constexpr std::size_t kBuckets = 65;

  std::uint64_t buckets[kBuckets] = {};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< meaningful only when count > 0
  std::uint64_t max = 0;

  static constexpr std::size_t bucket_of(std::uint64_t dt) noexcept {
    return static_cast<std::size_t>(std::bit_width(dt));  // 0 for dt == 0
  }

  /// Inclusive upper bound of bucket `i` (the quantile representative).
  static constexpr std::uint64_t bucket_upper(std::size_t i) noexcept {
    if (i == 0) return 0;
    if (i >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }

  void record(std::uint64_t dt) noexcept {
    ++buckets[bucket_of(dt)];
    if (count == 0 || dt < min) min = dt;
    if (dt > max) max = dt;
    ++count;
    sum += dt;
  }

  bool empty() const noexcept { return count == 0; }

  double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Approximate p-th percentile (p in [0, 100]): the upper bound of the
  /// bucket holding the ceil(p% * count)-th smallest sample, clamped to
  /// the observed max. Returns 0 on an empty histogram.
  std::uint64_t percentile(double p) const noexcept {
    if (count == 0) return 0;
    if (p <= 0.0) return min;
    const double target_f = p / 100.0 * static_cast<double>(count);
    std::uint64_t target = static_cast<std::uint64_t>(target_f);
    if (static_cast<double>(target) < target_f) ++target;  // ceil
    if (target == 0) target = 1;
    if (target > count) target = count;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets[i];
      if (seen >= target) {
        const std::uint64_t upper = bucket_upper(i);
        return upper < max ? upper : max;
      }
    }
    return max;  // unreachable: seen == count after the loop
  }

  LatencyHistogram& operator+=(const LatencyHistogram& o) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += o.buckets[i];
    if (o.count > 0) {
      if (count == 0 || o.min < min) min = o.min;
      if (o.max > max) max = o.max;
    }
    count += o.count;
    sum += o.sum;
    return *this;
  }

  /// Windowed-delta subtraction (obs/metrics.hpp): `o` must be an earlier
  /// snapshot of *this* histogram, i.e. per-bucket counts of `o` never
  /// exceed ours. Buckets/count/sum subtract exactly; min/max keep the
  /// minuend's running values (a snapshot cannot un-observe an extreme).
  /// Because min/max only ever tighten monotonically over a single
  /// writer's life, re-summing all window deltas with operator+= still
  /// reproduces the final histogram field-for-field — the last delta
  /// carries the final min/max and += merges by min/max.
  LatencyHistogram& operator-=(const LatencyHistogram& o) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] -= o.buckets[i];
    count -= o.count;
    sum -= o.sum;
    if (count == 0) {
      min = 0;
      max = 0;
    }
    return *this;
  }
};

/// Scope timer for a histogram: records on destruction, including during
/// exception unwinding — which is exactly what a validation pass that ends
/// in abort_tx() needs. Compiles to nothing when the SEMSTM_TRACE gate is
/// off (the histogram itself stays usable directly, e.g. by tests).
class ScopedLatency {
 public:
  explicit ScopedLatency(LatencyHistogram& h) noexcept {
    if constexpr (kTraceEnabled) {
      hist_ = &h;
      t0_ = now_ticks();
    }
  }
  ~ScopedLatency() {
    if constexpr (kTraceEnabled) hist_->record(now_ticks() - t0_);
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  LatencyHistogram* hist_ = nullptr;
  std::uint64_t t0_ = 0;
};

}  // namespace semstm::obs
