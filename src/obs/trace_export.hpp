// Trace collection and export.
//
// TraceCollector owns one TraceRing per logical thread of a run (the
// driver binds ring i to thread i's descriptor). TraceExporter drains any
// number of collectors — one per (algorithm × thread-count) run of a
// figure sweep — and renders them as:
//
//  - Chrome trace_event JSON ("JSON Array Format" with a traceEvents
//    wrapper), loadable in chrome://tracing or https://ui.perfetto.dev.
//    Each run becomes one "process" (pid), each logical thread one "tid";
//    committed/aborted attempts and serial-token holds are complete ("X")
//    events, begins/fallbacks/semantic ops are instants ("i"), and abort
//    events carry {"cause", "addr"} args. Timestamps pass through in
//    obs::now_ticks() units (virtual ticks under the simulator,
//    nanoseconds under real threads) and are *rendered* as microseconds —
//    only relative scale matters for inspection.
//
//  - A plain-text "flame summary": per run, events and total duration per
//    kind plus the abort-cause breakdown — the 10-second diagnosis view.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace_ring.hpp"

namespace semstm::obs {

class TraceCollector {
 public:
  explicit TraceCollector(unsigned capacity_log2 = 14)
      : capacity_log2_(capacity_log2) {}

  /// Ensure rings 0..threads-1 exist (existing rings are kept).
  void prepare(unsigned threads) {
    while (rings_.size() < threads) {
      rings_.push_back(std::make_unique<TraceRing>(capacity_log2_));
    }
  }

  TraceRing& ring(unsigned tid) {
    prepare(tid + 1);
    return *rings_[tid];
  }

  unsigned threads() const noexcept {
    return static_cast<unsigned>(rings_.size());
  }

  /// Total events dropped across all rings (capacity pressure indicator).
  std::uint64_t dropped() const noexcept {
    std::uint64_t d = 0;
    for (const auto& r : rings_) d += r->dropped();
    return d;
  }

 private:
  unsigned capacity_log2_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
};

class TraceExporter {
 public:
  /// Drain `collector`'s rings into this exporter as one "process" named
  /// `label`. Returns the number of events drained.
  std::size_t add_run(const std::string& label, TraceCollector& collector);

  /// Write Chrome trace_event JSON. Returns false on I/O failure.
  bool write_chrome(const std::string& path) const;

  /// Per-run, per-kind totals plus abort-cause breakdown.
  std::string flame_summary() const;

  std::size_t event_count() const noexcept { return events_.size(); }

 private:
  struct Rec {
    std::uint32_t pid;
    std::uint32_t tid;
    TraceEvent e;
  };
  struct Run {
    std::string label;
    unsigned threads;
    std::uint64_t dropped;
  };

  std::vector<Run> runs_;
  std::vector<Rec> events_;
};

}  // namespace semstm::obs
