// TL2 [Dice, Shalev, Shavit — DISC 2006]: version-based validation over a
// table of ownership records, global version clock, commit-time locking.
//
// This is the paper's version-based baseline. As in the paper, semantic
// operations delegate to plain reads/writes (generic_* delegations).
//
// Two-tier layout (DESIGN.md §4.12): Tl2CoreT holds the CRTP descriptor
// logic shared with S-TL2 — non-virtual, statically dispatched; the
// read-after-write hook raw() is shadowed, not overridden. Tl2Core is the
// sealed plain-TL2 instantiation; the type-erased tier is
// TxFacade<Tl2Core>.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <memory>
#include <vector>

#include "core/algorithm.hpp"
#include "core/tx.hpp"
#include "obs/abort_cause.hpp"
#include "obs/latency_histogram.hpp"
#include "runtime/global_clock.hpp"
#include "runtime/orec.hpp"
#include "runtime/writeset.hpp"
#include "sched/yieldpoint.hpp"

namespace semstm {

class Tl2Algorithm : public Algorithm {
 public:
  explicit Tl2Algorithm(const AlgoOptions& opts = {}) : orecs_(opts.orec_log2) {}

  const char* name() const noexcept override { return "tl2"; }
  bool semantic() const noexcept override { return false; }
  std::unique_ptr<Tx> make_tx() override;

  VersionClock& clock() noexcept { return clock_; }
  OrecTable& orecs() noexcept { return orecs_; }

 private:
  VersionClock clock_;
  OrecTable orecs_;
};

/// TL2 descriptor logic, statically dispatched. `Derived` supplies the
/// read-after-write hook raw(addr, entry) — plain TL2 returns the buffered
/// value, S-TL2 promotes pending increments.
template <typename Derived>
class Tl2CoreT : public TxCoreBase {
 public:
  explicit Tl2CoreT(Tl2Algorithm& shared) : shared_(shared) {
    bind_gate(shared.serial_gate());
  }

  void begin() {
    gate_enter();  // quiesce while a serial-irrevocable transaction runs
    reads_.clear();
    writes_.clear();
    ++attempt_epoch_;  // invalidates the whole dedup cache in O(1)
    start_version_ = shared_.clock().load();
  }

  word_t read(const tword* addr) {
    sched::tick(sched::Cost::kRead);
    ++stats.reads;
    if (WriteEntry* e = writes_.find(addr)) return self().raw(addr, e);
    return read_shared(addr);
  }

  void write(tword* addr, word_t value) {
    sched::tick(sched::Cost::kWrite);
    ++stats.writes;
    writes_.put_write(addr, value);
  }

  void commit() {
    sched::tick(sched::Cost::kCommit);
    if (writes_.empty()) {  // read-only transactions commit for free
      finish();
      return;
    }
    acquire_write_locks();
    sched::sched_point();  // all write orecs locked, clock not yet bumped
    const ClockStamp st = shared_.clock().fetch_increment();
    sched::sched_point();  // wv drawn; readers may now see wv-readable state
    // A wrapped write version would order *before* every recorded orec
    // version: the clock epoch is over (tagged, though unreachable in any
    // realistic run).
    if (!st.exclusive) ++stats.clock_adoptions;
    if (st.wv == 0) fail_locked(obs::AbortCause::kClockOverflow, nullptr);
    // rv + 1 == wv with an EXCLUSIVE advance means no writer serialized in
    // between: skip validation. An adopted (GV4-shared) stamp never skips:
    // two adopters sharing wv == rv+1 could each have read state the other
    // is about to overwrite — write skew the skip would wave through. The
    // unique CAS winner is safe because any concurrent committer holds its
    // full lock set before reading the clock, so the winner's validation
    // (or its reads' owner checks) observes those locks. DESIGN.md §4.16.
    if ((!st.exclusive || st.wv != start_version_ + 1) && !readset_holds()) {
      fail_locked(fail_cause_, conflict_, fail_orec_, fail_owner_);
    }
    write_back(st.wv);
    finish();
  }

  void rollback() {
    release_locks();
    finish();
  }

 protected:
  Derived& self() noexcept { return static_cast<Derived&>(*this); }

  /// Read-after-write hook (S-TL2 shadows to promote increments).
  word_t raw(const tword* addr, WriteEntry* e) {
    (void)addr;
    return e->value;
  }

  /// Slot index of an orec, as abort attribution (obs/conflict_map.hpp
  /// keys hot sites on it for the orec-based algorithms).
  std::uint32_t orec_ix(const Orec* o) const noexcept {
    return static_cast<std::uint32_t>(shared_.orecs().index(o));
  }

  /// Consistent shared read (Alg. 7 lines 40-49): version/owner sandwich
  /// around the value load, then record the orec in the read-set. Every
  /// abort carries the conflicting orec's index and (best-effort) owner —
  /// the aborter->owner edge the conflict map accumulates.
  word_t read_shared(const tword* addr) {
    Orec& o = shared_.orecs().of(addr);
    const std::uint64_t v1 = o.version.load(std::memory_order_acquire);
    if (o.locked_by_other(this)) {
      abort_tx(obs::AbortCause::kWriteLockConflict, addr, orec_ix(&o),
               o.owner_hint());
    }
    const word_t val = addr->load(std::memory_order_acquire);
    if (o.locked_by_other(this)) {
      abort_tx(obs::AbortCause::kWriteLockConflict, addr, orec_ix(&o),
               o.owner_hint());
    }
    const std::uint64_t v2 = o.version.load(std::memory_order_acquire);
    if (v1 != v2 || v1 > start_version_) {
      // The writer already committed (or is mid-write-back): the owner
      // hint usually reads null here, but a concurrent locker is still a
      // usable edge when present.
      abort_tx(obs::AbortCause::kReadValidation, addr, orec_ix(&o),
               o.owner_hint());
    }
    track_orec(&o);
    return val;
  }

  /// Record an orec in the read-set, deduplicating through a small
  /// direct-mapped cache of recently tracked orecs. Entries are validated
  /// by attempt epoch instead of being wiped each begin(), so starting a
  /// transaction stays O(1). Repeated reads of one stripe (loop bodies,
  /// field re-reads) hit the cache and skip the append, keeping
  /// commit-time validation O(unique stripes) instead of O(reads). A
  /// duplicate that slips past the cache (slot eviction) only costs a
  /// redundant validation — never correctness: validating the same orec
  /// twice is idempotent.
  void track_orec(const Orec* o) {
    // Keyed by table index, not heap address: index is a function of the
    // accessed address alone, so cache hits/evictions — and with them the
    // read-set contents and validation tick counts — replay identically
    // when the litmus DFS rebuilds the table between schedules.
    const std::size_t slot = shared_.orecs().index(o) & (kSeenSlots - 1);
    Seen& s = seen_[slot];
    if (s.orec == o && s.epoch == attempt_epoch_) {
      ++stats.readset_dups;
      return;
    }
    s.orec = o;
    s.epoch = attempt_epoch_;
    reads_.push_back(o);
    ++stats.readset_adds;
  }

  /// Alg. 7 ValidateReadSet semantics, as a predicate (commit must release
  /// write locks before aborting). On failure, fail_cause_/conflict_ carry
  /// the attribution for the caller's abort: a locked orec is a lock
  /// conflict with a concurrent committer, a moved version a stale read.
  bool readset_holds() {
    obs::ScopedLatency lat(stats.lat_validate);
    ++stats.validations;
    for (const Orec* o : reads_) {
      sched::tick(sched::Cost::kValidateEntry);
      ++stats.validate_entries;
      if (o->locked_by_other(this)) {
        fail_cause_ = obs::AbortCause::kWriteLockConflict;
        conflict_ = o;
        fail_orec_ = orec_ix(o);
        fail_owner_ = o->owner_hint();
        return false;
      }
      if (o->version.load(std::memory_order_acquire) > start_version_) {
        fail_cause_ = obs::AbortCause::kReadValidation;
        conflict_ = o;
        fail_orec_ = orec_ix(o);
        fail_owner_ = o->owner_hint();
        return false;
      }
    }
    return true;
  }

  void acquire_write_locks() {
    for (const WriteEntry& e : writes_) {
      Orec& o = shared_.orecs().of(e.addr);
      if (o.owner.load(std::memory_order_relaxed) == this) continue;
      if (!o.try_lock(this)) {
        fail_locked(obs::AbortCause::kWriteLockConflict, e.addr, orec_ix(&o),
                    o.owner_hint());
      }
      locked_.push_back(&o);
      sched::sched_point();  // partial lock-set held
    }
  }

  /// Publish buffered effects: all values, then all orec versions, then
  /// all unlocks — the ordering the reader sandwich relies on.
  void write_back(std::uint64_t wv) {
    for (const WriteEntry& e : writes_) {
      const word_t v = e.kind == WriteKind::kWrite
                           ? e.value
                           : e.addr->load(std::memory_order_relaxed) + e.value;
      e.addr->store(v, std::memory_order_release);
      sched::sched_point();  // new value visible, orec still locked
    }
    for (Orec* o : locked_) o->version.store(wv, std::memory_order_release);
    sched::sched_point();  // versions bumped, locks not yet released
    release_locks();
  }

  [[noreturn]] void fail_locked(obs::AbortCause cause, const void* addr,
                                std::uint32_t orec = obs::kNoOrec,
                                const void* owner = nullptr) {
    release_locks();
    abort_tx(cause, addr, orec, owner);
  }

  void release_locks() noexcept {
    for (Orec* o : locked_) o->unlock(this);
    locked_.clear();
  }

  /// Attempt epilogue, shared by commit and rollback: the gate must see
  /// the transaction as no longer in flight on every exit path.
  void finish() noexcept {
    gate_exit();
    reads_.clear();
    writes_.clear();
  }

  static constexpr std::size_t kSeenSlots = 16;

  /// One dedup-cache line: an orec recently appended to reads_, valid only
  /// while epoch matches the current attempt (epoch is 64-bit: it cannot
  /// wrap into a stale-but-matching state within any feasible run).
  struct Seen {
    const Orec* orec = nullptr;
    std::uint64_t epoch = 0;
  };

  Tl2Algorithm& shared_;
  Seen seen_[kSeenSlots];              ///< direct-mapped dedup cache
  std::uint64_t attempt_epoch_ = 0;
  std::vector<const Orec*> reads_;  ///< TL2 read-set: deduped orecs
  WriteSet writes_;
  std::vector<Orec*> locked_;
  std::uint64_t start_version_ = 0;
  /// Abort attribution handed from a failing validator to the caller that
  /// performs the (lock-releasing) abort. For orec-granular failures the
  /// conflicting "address" is the orec itself; fail_orec_/fail_owner_
  /// carry the table index and best-effort owner for the conflict map.
  obs::AbortCause fail_cause_ = obs::AbortCause::kUnknown;
  const void* conflict_ = nullptr;
  std::uint32_t fail_orec_ = obs::kNoOrec;
  const void* fail_owner_ = nullptr;
};

/// Plain TL2, sealed. Semantic ops lower to read/write (generic_*).
class Tl2Core final : public Tl2CoreT<Tl2Core> {
 public:
  using Tl2CoreT::Tl2CoreT;

  static constexpr AlgoId kId = AlgoId::kTl2;
  static constexpr const char* kName = "tl2";
  const char* algorithm() const noexcept { return kName; }

  bool cmp(const tword* addr, Rel rel, word_t operand) {
    return generic_cmp(*this, addr, rel, operand);
  }
  bool cmp2(const tword* a, Rel rel, const tword* b) {
    return generic_cmp2(*this, a, rel, b);
  }
  bool cmp_or(const CmpTerm* terms, std::size_t n) {
    return generic_cmp_or(*this, terms, n);
  }
  void inc(tword* addr, word_t delta) { generic_inc(*this, addr, delta); }
};

inline std::unique_ptr<Tx> Tl2Algorithm::make_tx() {
  return std::make_unique<TxFacade<Tl2Core>>(*this);
}

}  // namespace semstm
