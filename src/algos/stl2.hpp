// S-TL2 (paper §4.2, Algorithm 7): TL2 extended with hybrid
// version/semantic validation.
//
// Compares live in a dedicated *compare-set* (address + relation), while
// plain reads keep TL2's orec-based read-set — two validators, one per
// set. Execution is split into three phases:
//
//   Phase 1 (before the first plain read): cmp operations validate the
//   compare-set and *extend* the transaction's start version, so semantic
//   operations never force version aborts among themselves. A locked orec
//   is waited out (bounded) rather than aborted on.
//
//   Phase 2 (after the first plain read): the snapshot is frozen; cmp
//   behaves like a read w.r.t. version checks but still records a semantic
//   entry, so commit-time validation can tolerate value changes that keep
//   the relation's outcome.
//
//   Commit: write orecs locked, then the global timestamp is advanced with
//   CAS (not fetch-add) after compare-set validation — the CAS failure
//   loop re-validates, which is the serialization-point argument of §5.2.
//
// Stl2Core is a sealed sibling of Tl2Core over the shared Tl2CoreT logic:
// it shadows begin/commit/rollback and the raw() promotion hook and adds
// the compare-set machinery — all statically bound.
#pragma once

#include <cstdint>

#include "algos/tl2.hpp"
#include "runtime/backoff.hpp"
#include "runtime/readset.hpp"

namespace semstm {

class Stl2Algorithm final : public Tl2Algorithm {
 public:
  explicit Stl2Algorithm(const AlgoOptions& opts = {}) : Tl2Algorithm(opts) {}
  const char* name() const noexcept override { return "stl2"; }
  bool semantic() const noexcept override { return true; }
  std::unique_ptr<Tx> make_tx() override;
};

class Stl2Core final : public Tl2CoreT<Stl2Core> {
 public:
  explicit Stl2Core(Tl2Algorithm& shared) : Tl2CoreT(shared) {}

  static constexpr AlgoId kId = AlgoId::kStl2;
  static constexpr const char* kName = "stl2";
  const char* algorithm() const noexcept { return kName; }

  void begin() {
    compares_.clear();
    Tl2CoreT::begin();
  }

  void rollback() {
    compares_.clear();
    Tl2CoreT::rollback();
  }

  /// Alg. 7 Compare (lines 4-36).
  bool cmp(const tword* addr, Rel rel, word_t operand) {
    sched::tick(sched::Cost::kCmp);
    ++stats.compares;
    trace_semantic_op(obs::SemanticOp::kCmp, addr);
    if (WriteEntry* e = writes_.find(addr)) {
      return eval(rel, raw(addr, e), operand);
    }
    const word_t val = read_for_cmp(addr);
    const bool result = eval(rel, val, operand);
    compares_.append_cmp(addr, rel, operand, result);
    ++stats.readset_adds;
    if (phase1_pending_extend_) extend_start_version();
    return result;
  }

  /// Address–address compare (paper §3 extension). Both loads go through
  /// the phase-aware consistent read; the entry revalidates the relation.
  bool cmp2(const tword* a, Rel rel, const tword* b) {
    sched::tick(sched::Cost::kCmp);
    ++stats.compares2;
    trace_semantic_op(obs::SemanticOp::kCmp2, a);
    WriteEntry* ea = writes_.find(a);
    WriteEntry* eb = writes_.find(b);
    if (ea != nullptr || eb != nullptr) {
      const word_t va = ea ? raw(a, ea) : read(a);
      const word_t vb = eb ? raw(b, eb) : read(b);
      return eval(rel, va, vb);
    }
    const word_t va = read_for_cmp(a);
    const bool first_extend = phase1_pending_extend_;
    const word_t vb = read_for_cmp(b);
    const bool result = eval(rel, va, vb);
    compares_.append_cmp2(a, rel, b, result);
    ++stats.readset_adds;
    if (first_extend || phase1_pending_extend_) extend_start_version();
    return result;
  }

  /// Composed conditional (paper §3): every term operand is loaded through
  /// the phase-aware consistent read, the clause joins the compare-set as
  /// one entry, and phase 1 extends the snapshot if any load ran ahead.
  bool cmp_or(const CmpTerm* terms, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      if (writes_.find(terms[i].addr) != nullptr ||
          (terms[i].rhs_addr != nullptr &&
           writes_.find(terms[i].rhs_addr) != nullptr)) {
        // Buffered operands: plain evaluation, whose reads tick kRead —
        // do not also charge kCmp for a semantic op that never happens.
        return generic_cmp_or(*this, terms, n);
      }
    }
    sched::tick(sched::Cost::kCmp);  // semantic path only
    ++stats.compares;
    trace_semantic_op(obs::SemanticOp::kCmpOr, n > 0 ? terms[0].addr : nullptr);
    bool outcome = false;
    bool extend = false;
    for (std::size_t i = 0; i < n; ++i) {
      const word_t lhs = read_for_cmp(terms[i].addr);
      extend = extend || phase1_pending_extend_;
      word_t rhs = terms[i].operand;
      if (terms[i].rhs_addr != nullptr) {
        rhs = read_for_cmp(terms[i].rhs_addr);
        extend = extend || phase1_pending_extend_;
      }
      outcome = outcome || eval(terms[i].rel, lhs, rhs);
    }
    compares_.append_clause(terms, n, outcome);
    ++stats.readset_adds;
    if (extend) {
      phase1_pending_extend_ = true;
      extend_start_version();
    }
    return outcome;
  }

  /// Deferred increment — identical write-set treatment to S-NOrec.
  void inc(tword* addr, word_t delta) {
    sched::tick(sched::Cost::kInc);
    ++stats.increments;
    trace_semantic_op(obs::SemanticOp::kInc, addr);
    writes_.put_inc(addr, delta);
  }

  /// Alg. 7 Commit (lines 66-77).
  void commit() {
    sched::tick(sched::Cost::kCommit);
    if (writes_.empty()) {
      compares_.clear();
      finish();
      return;
    }
    acquire_write_locks();
    sched::sched_point();  // write orecs locked, clock not yet advanced
    std::uint64_t time;
    for (;;) {
      time = shared_.clock().load();
      // time + 1 == 0 would wrap the version clock (epoch end, tagged for
      // the cause histogram's completeness).
      if (time + 1 == 0) fail_locked(obs::AbortCause::kClockOverflow, nullptr);
      // No waiting here: we hold write locks, and hold-and-wait across
      // committers livelocks into timeout aborts. Fail fast instead —
      // TL2's own ValidateReadSet makes the same choice.
      if (time != start_version_ && !compare_set_holds(/*may_wait=*/false)) {
        fail_locked(fail_cause_, conflict_, fail_orec_, fail_owner_);
      }
      if (shared_.clock().try_advance(time)) break;
      // Another writer serialized between validation and CAS: its commit
      // may flip a compare outcome, so validate again (lines 68-72).
    }
    sched::sched_point();  // serialization point taken, write-back pending
    const std::uint64_t wv = time + 1;
    if (time != start_version_ && !readset_holds()) {
      fail_locked(fail_cause_, conflict_, fail_orec_, fail_owner_);
    }
    write_back(wv);
    compares_.clear();
    finish();
  }

  /// RAW promotion: a buffered increment read back becomes a conventional
  /// read + write (read part via the consistent orec-checked read).
  /// Shadows the base hook; Tl2CoreT::read reaches it through self().
  word_t raw(const tword* addr, WriteEntry* e) {
    if (e->kind == WriteKind::kIncrement) {
      ++stats.promotions;
      trace_semantic_op(obs::SemanticOp::kPromote, addr);
      const word_t current = read_shared(addr);  // appends orec to read-set
      e->value += current;
      e->kind = WriteKind::kWrite;
    }
    return e->value;
  }

 private:
  /// Phase-aware consistent load for cmp operands. In phase 1 (empty
  /// read-set) locked orecs and version changes are retried/waited, and a
  /// successful load past start_version_ schedules a snapshot extension;
  /// in phase 2 the TL2 read rules apply but *without* joining the
  /// orec read-set (the semantic entry subsumes it).
  word_t read_for_cmp(const tword* addr) {
    phase1_pending_extend_ = false;
    Orec& o = shared_.orecs().of(addr);
    if (reads_.empty()) {  // Phase 1 (lines 10-25)
      for (;;) {
        const std::uint64_t v1 = o.version.load(std::memory_order_acquire);
        if (o.locked_by_other(this)) {
          // Wait until unlocked instead of aborting (lines 11-12).
          if (!bounded_wait([&] { return !o.locked_by_other(this); })) {
            // starvation timeout (§4.2)
            abort_tx(obs::AbortCause::kWriteLockConflict, addr, orec_ix(&o),
                     o.owner_hint());
          }
          continue;
        }
        const word_t val = addr->load(std::memory_order_acquire);
        if (o.locked_by_other(this)) continue;
        const std::uint64_t v2 = o.version.load(std::memory_order_acquire);
        if (v1 != v2) continue;  // concurrent version move: retry (line 16)
        if (v1 > start_version_) phase1_pending_extend_ = true;
        return val;
      }
    }
    // Phase 2 (lines 26-34): frozen snapshot, TL2-style checks.
    const std::uint64_t v1 = o.version.load(std::memory_order_acquire);
    if (o.locked_by_other(this)) {
      abort_tx(obs::AbortCause::kWriteLockConflict, addr, orec_ix(&o),
               o.owner_hint());
    }
    const word_t val = addr->load(std::memory_order_acquire);
    if (o.locked_by_other(this)) {
      abort_tx(obs::AbortCause::kWriteLockConflict, addr, orec_ix(&o),
               o.owner_hint());
    }
    const std::uint64_t v2 = o.version.load(std::memory_order_acquire);
    if (v1 != v2 || v1 > start_version_) {
      abort_tx(obs::AbortCause::kReadValidation, addr, orec_ix(&o),
               o.owner_hint());
    }
    return val;
  }

  /// Lines 19-25: validate the compare-set at a stable timestamp, then
  /// adopt that timestamp as the new start version.
  void extend_start_version() {
    phase1_pending_extend_ = false;
    for (;;) {
      const std::uint64_t time = shared_.clock().load();
      if (!compare_set_holds(/*may_wait=*/true)) {
        abort_tx(fail_cause_, conflict_, fail_orec_, fail_owner_);
      }
      if (time == shared_.clock().load()) {
        start_version_ = time;
        return;
      }
      // A writer committed during validation: retry (line 23).
    }
  }

  /// Alg. 7 ValidateCompareSet (lines 56-65) as a predicate: semantic
  /// revalidation. A locked orec means a writer may be mid-write-back, so
  /// the entry cannot be evaluated: wait it out (bounded, §4.2's timeout
  /// mechanism) when we hold no locks ourselves, fail fast otherwise.
  /// On failure fail_cause_/conflict_ carry the attribution: a stuck lock
  /// is a write-lock conflict, a flipped outcome a compare-set
  /// revalidation failure — the signature abort of the semantic design.
  bool compare_set_holds(bool may_wait) {
    obs::ScopedLatency lat(stats.lat_validate);
    ++stats.validations;
    for (const auto clause : compares_) {
      sched::tick(sched::Cost::kValidateEntry);
      ++stats.validate_entries;
      for (unsigned i = 0; i < clause.count(); ++i) {
        const ReadEntry& term = clause.row(i);
        if (!wait_unlocked(term.addr, may_wait)) {
          note_cmp_lock_conflict(term.addr);
          return false;
        }
        if (term.rhs_addr != nullptr &&
            !wait_unlocked(term.rhs_addr, may_wait)) {
          note_cmp_lock_conflict(term.rhs_addr);
          return false;
        }
      }
      if (!clause.holds()) {  // semantic validation (line 63-64)
        // No single orec: the flip is a property of the clause's value(s),
        // so attribution stays address-granular (region-keyed site).
        fail_cause_ = obs::AbortCause::kCmpRevalidation;
        conflict_ = clause.addr();
        fail_orec_ = obs::kNoOrec;
        fail_owner_ = nullptr;
        return false;
      }
    }
    return true;
  }

  /// Stuck-lock attribution for compare-set validation: the conflicting
  /// orec is a function of the term's address, so the site and its owner
  /// edge are recoverable here even though wait_unlocked only reports a
  /// bool.
  void note_cmp_lock_conflict(const tword* addr) {
    Orec& o = shared_.orecs().of(addr);
    fail_cause_ = obs::AbortCause::kWriteLockConflict;
    conflict_ = addr;
    fail_orec_ = orec_ix(&o);
    fail_owner_ = o.owner_hint();
  }

  /// False = the orec stayed locked by another committer and the caller
  /// must treat the validation as failed.
  bool wait_unlocked(const tword* addr, bool may_wait) {
    Orec& o = shared_.orecs().of(addr);
    if (!o.locked_by_other(this)) return true;
    if (!may_wait) return false;
    // Execution phase holds no locks, so a generous wait cannot deadlock;
    // commit write-backs are short, making timeouts rare.
    return bounded_wait([&] { return !o.locked_by_other(this); }, 512);
  }

  CompareSet compares_;
  bool phase1_pending_extend_ = false;
};

inline std::unique_ptr<Tx> Stl2Algorithm::make_tx() {
  return std::make_unique<TxFacade<Stl2Core>>(*this);
}

}  // namespace semstm
