// S-NOrec (paper §4.1, Algorithm 6): NOrec extended with TM-friendly
// semantics.
//
//  - cmp/cmp2 record the conditional expression (or its inverse when it
//    evaluated false) in the read-set instead of the raw value; the shared
//    Validate procedure then performs *semantic* validation, of which
//    NOrec's value-based validation is the EQ special case.
//  - inc stores a delta-flagged entry in the write-set and applies it at
//    commit while the global lock is held.
//  - Read-after-write over an increment entry *promotes* it to a
//    conventional read + write (Alg. 6 lines 17-23).
//
// S-NOrec keeps NOrec's single commit-time serialization point, hence its
// privatization/publication safety (paper §4.1).
//
// Conflict cartography: like NOrec, every abort is value/relation-based
// under the global seqlock — address-granular, no orec index, no owner
// edge (see NorecCoreT::validate). S-NOrec's signature in a hot-site table
// is kCmpRevalidation counts *replacing* kReadValidation counts on the
// same sites, and — when the relation tolerates the churn — sites
// disappearing outright (EXPERIMENTS.md, contention cartography).
//
// SnorecCore is a sealed sibling of NorecCore over the shared NorecCoreT
// logic: it shadows the raw() promotion hook and supplies native semantic
// ops — all statically bound, no virtual dispatch anywhere in the core.
#pragma once

#include "algos/norec.hpp"

namespace semstm {

class SnorecAlgorithm final : public NorecAlgorithm {
 public:
  const char* name() const noexcept override { return "snorec"; }
  bool semantic() const noexcept override { return true; }
  std::unique_ptr<Tx> make_tx() override;
};

class SnorecCore final : public NorecCoreT<SnorecCore> {
 public:
  explicit SnorecCore(NorecAlgorithm& shared) : NorecCoreT(shared) {}

  static constexpr AlgoId kId = AlgoId::kSnorec;
  static constexpr const char* kName = "snorec";
  const char* algorithm() const noexcept { return kName; }

  /// Alg. 6 Compare (lines 29-36).
  bool cmp(const tword* addr, Rel rel, word_t operand) {
    sched::tick(sched::Cost::kCmp);
    ++stats.compares;
    trace_semantic_op(obs::SemanticOp::kCmp, addr);
    if (WriteEntry* e = writes_.find(addr)) {
      return eval(rel, raw(addr, e), operand);
    }
    const word_t v = read_valid(addr);
    const bool result = eval(rel, v, operand);
    reads_.append_cmp(addr, rel, operand, result);
    ++stats.readset_adds;
    return result;
  }

  /// Address–address compare (the paper's _ITM_S2R case; §3/§6). Both
  /// words are read through ReadValid, so they belong to one consistent
  /// snapshot; the recorded entry then revalidates the *relation*.
  bool cmp2(const tword* a, Rel rel, const tword* b) {
    sched::tick(sched::Cost::kCmp);
    ++stats.compares2;
    trace_semantic_op(obs::SemanticOp::kCmp2, a);
    WriteEntry* ea = writes_.find(a);
    WriteEntry* eb = writes_.find(b);
    if (ea != nullptr || eb != nullptr) {
      // Any buffered side degrades to plain handling: buffered values are
      // private, so only the non-buffered side needs (value) validation.
      const word_t va = ea ? raw(a, ea) : read(a);
      const word_t vb = eb ? raw(b, eb) : read(b);
      return eval(rel, va, vb);
    }
    const word_t va = read_valid(a);
    const word_t vb = read_valid(b);
    const bool result = eval(rel, va, vb);
    reads_.append_cmp2(a, rel, b, result);
    ++stats.readset_adds;
    return result;
  }

  /// Composed conditional (paper §3): all term operands are loaded at one
  /// consistent snapshot, the OR is evaluated, and a single clause entry
  /// joins the read-set — validated as a unit thereafter.
  bool cmp_or(const CmpTerm* terms, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      if (writes_.find(terms[i].addr) != nullptr ||
          (terms[i].rhs_addr != nullptr &&
           writes_.find(terms[i].rhs_addr) != nullptr)) {
        // Buffered operands are private: degrade to plain evaluation (the
        // involved plain reads record value entries and tick kRead as
        // usual — charging kCmp on top would double-bill this path).
        return generic_cmp_or(*this, terms, n);
      }
    }
    sched::tick(sched::Cost::kCmp);  // semantic path only
    ++stats.compares;
    trace_semantic_op(obs::SemanticOp::kCmpOr, n > 0 ? terms[0].addr : nullptr);
    bool outcome = false;
    for (;;) {
      if (snapshot_ != shared_.lock().load()) snapshot_ = validate();
      outcome = false;
      for (std::size_t i = 0; i < n && !outcome; ++i) {
        outcome = terms[i].eval_now();
      }
      if (snapshot_ == shared_.lock().load()) break;  // consistent snapshot
    }
    reads_.append_clause(terms, n, outcome);
    ++stats.readset_adds;
    return outcome;
  }

  /// Alg. 6 Increment (lines 44-49): defer the delta to commit time.
  void inc(tword* addr, word_t delta) {
    sched::tick(sched::Cost::kInc);
    ++stats.increments;
    trace_semantic_op(obs::SemanticOp::kInc, addr);
    writes_.put_inc(addr, delta);
  }

  /// Alg. 6 RAW (lines 17-23): reading an address with a pending increment
  /// promotes the increment to a conventional read + write. Shadows the
  /// base hook; NorecCoreT::read reaches it through self().
  word_t raw(const tword* addr, WriteEntry* e) {
    if (e->kind == WriteKind::kIncrement) {
      ++stats.promotions;
      trace_semantic_op(obs::SemanticOp::kPromote, addr);
      const word_t current = read_valid(addr);
      track_value(addr, current);            // the read part of the promotion
      e->value += current;                   // delta + observed value
      e->kind = WriteKind::kWrite;
    }
    return e->value;
  }
};

inline std::unique_ptr<Tx> SnorecAlgorithm::make_tx() {
  return std::make_unique<TxFacade<SnorecCore>>(*this);
}

}  // namespace semstm
