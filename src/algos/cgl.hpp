// CGL: coarse-grained single-global-lock "transactions".
//
// Every transaction runs under one test-and-set spinlock, so it never
// aborts due to conflicts and is trivially opaque. Writes are buffered and
// applied at commit (lazy versioning) so that CGL honours the same
// rollback contract as the optimistic algorithms — this is what makes it
// usable as the correctness oracle in the test suite, and the serial
// baseline in benchmarks.
//
// The lock spins through sched::spin_pause() — mandatory for the fiber
// simulator, where an OS-blocking mutex would deadlock the single carrier
// thread.
//
// Observability: CGL never conflict-aborts, so the only abort cause it can
// ever contribute to the TxStats cause histogram is kUserAbort (an explicit
// user_abort() inside the body, tagged by core/tx.hpp). Its lat_validate
// histogram stays empty — there is nothing to validate. The same holds for
// contention cartography (obs/conflict_map.hpp): user aborts carry no
// conflicting location, so a CGL descriptor's ConflictMap is always empty —
// a useful negative control when comparing hot-site tables across
// algorithms (contention under CGL is queueing on the one lock, which the
// windowed metrics expose as throughput, not as conflict sites).
//
// CglCore is a sealed non-virtual descriptor (DESIGN.md §4.12); the
// type-erased tier is TxFacade<CglCore>.
#pragma once

#include <atomic>

#include "core/algorithm.hpp"
#include "core/tx.hpp"
#include "runtime/spinwait.hpp"
#include "runtime/writeset.hpp"
#include "sched/yieldpoint.hpp"
#include "util/padded.hpp"

namespace semstm {

class CglAlgorithm final : public Algorithm {
 public:
  const char* name() const noexcept override { return "cgl"; }
  bool semantic() const noexcept override { return false; }
  std::unique_ptr<Tx> make_tx() override;

  // Not noexcept: the spin is a yield point, and under a truncating
  // ScheduleController yield points raise ScheduleStopped. The wait is
  // test-and-test-and-set with SpinWait escalation: relaxed local reads
  // between pauses, so waiters generate no write traffic on the lock line
  // and back off to OS yields in real-thread mode.
  void lock() {
    SpinWait spin;
    while (flag_.value.exchange(true, std::memory_order_acquire)) {
      while (flag_.value.load(std::memory_order_relaxed)) spin.pause();
    }
  }
  void unlock() noexcept { flag_.value.store(false, std::memory_order_release); }

 private:
  Padded<std::atomic<bool>> flag_{};
  static_assert(alignof(Padded<std::atomic<bool>>) >= kCacheLine,
                "the global lock must own its cache line");
};

class CglCore final : public TxCoreBase {
 public:
  explicit CglCore(CglAlgorithm& shared) : shared_(shared) {
    bind_gate(shared.serial_gate());
  }
  ~CglCore() {
    if (holding_) shared_.unlock();
  }

  static constexpr AlgoId kId = AlgoId::kCgl;
  static constexpr const char* kName = "cgl";
  const char* algorithm() const noexcept { return kName; }

  void begin() {
    // Gate first, lock second: a thread blocked on the serial-irrevocable
    // token must not hold the global lock, or the token holder could never
    // run its (lock-acquiring) transaction.
    gate_enter();
    writes_.clear();
    shared_.lock();
    holding_ = true;
    sched::sched_point();  // global lock held, body not yet run
  }

  void commit() {
    sched::tick(sched::Cost::kCommit);
    for (const WriteEntry& e : writes_) {
      e.addr->store(e.value, std::memory_order_relaxed);
      sched::sched_point();  // partial write-back under the global lock
    }
    writes_.clear();
    release();
  }

  void rollback() {
    writes_.clear();
    release();
  }

  word_t read(const tword* addr) {
    sched::tick(sched::Cost::kRead);
    ++stats.reads;
    if (const WriteEntry* e = writes_.find(addr)) return e->value;
    return addr->load(std::memory_order_relaxed);
  }

  void write(tword* addr, word_t value) {
    sched::tick(sched::Cost::kWrite);
    ++stats.writes;
    writes_.put_write(addr, value);
  }

  bool cmp(const tword* addr, Rel rel, word_t operand) {
    return generic_cmp(*this, addr, rel, operand);
  }
  bool cmp2(const tword* a, Rel rel, const tword* b) {
    return generic_cmp2(*this, a, rel, b);
  }
  bool cmp_or(const CmpTerm* terms, std::size_t n) {
    return generic_cmp_or(*this, terms, n);
  }
  void inc(tword* addr, word_t delta) { generic_inc(*this, addr, delta); }

 private:
  void release() noexcept {
    if (holding_) {
      shared_.unlock();
      holding_ = false;
    }
    gate_exit();
  }

  CglAlgorithm& shared_;
  WriteSet writes_;
  bool holding_ = false;
};

inline std::unique_ptr<Tx> CglAlgorithm::make_tx() {
  return std::make_unique<TxFacade<CglCore>>(*this);
}

}  // namespace semstm
