// NOrec [Dalessandro, Spear, Scott — PPoPP 2010]: value-based validation,
// no ownership records, commit phases serialized by one global
// timestamped lock (SeqLock).
//
// This is the paper's value-based baseline. Semantic operations (cmp/inc)
// lower to plain reads/writes through the generic_* delegations — i.e.
// NOrec treats them conservatively, exactly like the unmodified algorithm
// in libitm.
//
// Two-tier layout (DESIGN.md §4.12): NorecCoreT is the CRTP descriptor
// logic — non-virtual, statically dispatched — shared with S-NOrec, which
// customizes only the read-after-write hook (`raw`) and the semantic ops
// by *shadowing*, never overriding. NorecCore is the sealed plain-NOrec
// instantiation; the virtual NorecTx of old survives as
// TxFacade<NorecCore>.
#pragma once

#include <memory>

#include "core/algorithm.hpp"
#include "core/tx.hpp"
#include "obs/abort_cause.hpp"
#include "obs/latency_histogram.hpp"
#include "runtime/global_clock.hpp"
#include "runtime/readset.hpp"
#include "runtime/writeset.hpp"
#include "sched/yieldpoint.hpp"

namespace semstm {

class NorecAlgorithm : public Algorithm {
 public:
  const char* name() const noexcept override { return "norec"; }
  bool semantic() const noexcept override { return false; }
  std::unique_ptr<Tx> make_tx() override;

  SeqLock& lock() noexcept { return lock_; }

 private:
  SeqLock lock_;
};

/// NOrec descriptor logic, statically dispatched. `Derived` supplies the
/// read-after-write hook raw(addr, entry) — plain NOrec returns the
/// buffered value, S-NOrec promotes pending increments — resolved at
/// compile time through the CRTP self() cast.
template <typename Derived>
class NorecCoreT : public TxCoreBase {
 public:
  explicit NorecCoreT(NorecAlgorithm& shared) : shared_(shared) {
    bind_gate(shared.serial_gate());
  }

  void begin() {
    gate_enter();  // quiesce while a serial-irrevocable transaction runs
    reads_.clear();
    writes_.clear();
    snapshot_ = shared_.lock().sample_even();  // Alg. 6 Start (lines 24-28)
  }

  word_t read(const tword* addr) {
    sched::tick(sched::Cost::kRead);
    ++stats.reads;
    if (WriteEntry* e = writes_.find(addr)) return self().raw(addr, e);
    const word_t v = read_valid(addr);
    track_value(addr, v);  // plain read recorded as semantic EQ
    return v;
  }

  void write(tword* addr, word_t value) {
    sched::tick(sched::Cost::kWrite);
    ++stats.writes;
    writes_.put_write(addr, value);
  }

  void commit() {
    sched::tick(sched::Cost::kCommit);
    if (writes_.empty()) {  // read-only: already consistent at snapshot_
      finish();
      return;
    }
    // snapshot_ is always even; the last even value would wrap the seqlock
    // through odd into 0 on unlock, so the epoch ends here (never reached
    // in practice — tagged for the cause histogram's completeness).
    if (snapshot_ + 2 == 0) abort_tx(obs::AbortCause::kClockOverflow);
    while (!shared_.lock().try_lock(snapshot_)) snapshot_ = validate();
    sched::sched_point();  // seqlock held (odd), write-back not started
    // Exclusive: write back (increments resolve against current memory).
    for (const WriteEntry& e : writes_) {
      const word_t v = e.kind == WriteKind::kWrite
                           ? e.value
                           : e.addr->load(std::memory_order_relaxed) + e.value;
      e.addr->store(v, std::memory_order_release);
      sched::sched_point();  // partial write-back visible under odd seqlock
    }
    shared_.lock().unlock(snapshot_ + 1);
    finish();
  }

  void rollback() { finish(); }

 protected:
  Derived& self() noexcept { return static_cast<Derived&>(*this); }

  /// Read-after-write. Plain NOrec only ever holds kWrite entries (its inc
  /// delegates to read+write); S-NOrec shadows this to promote increments.
  word_t raw(const tword* addr, WriteEntry* e) {
    (void)addr;
    return e->value;
  }

  /// Append a value snapshot to the read-set, counting dedup economy:
  /// ReadSet::append_value skips entries identical to one in its trailing
  /// window, which keeps validate() O(unique reads) under repeated reads.
  void track_value(const tword* addr, word_t observed) {
    if (reads_.append_value(addr, observed)) {
      ++stats.readset_adds;
    } else {
      ++stats.readset_dups;
    }
  }

  /// Alg. 6 ReadValid (lines 10-16): re-validate whenever the global
  /// timestamp moved since our snapshot, then (re)read.
  word_t read_valid(const tword* addr) {
    word_t v = addr->load(std::memory_order_acquire);
    while (snapshot_ != shared_.lock().load()) {
      snapshot_ = validate();
      v = addr->load(std::memory_order_acquire);
    }
    return v;
  }

  /// Alg. 6 Validate (lines 1-9): semantic validation of the read-set at a
  /// stable (even) timestamp; aborts the transaction on failure. A failing
  /// plain-read entry is a value-validation abort; a failing cmp/clause
  /// entry means the relation's outcome flipped — the distinction S-NOrec's
  /// evaluation story rests on.
  ///
  /// Conflict cartography: the abort carries only the clause's address —
  /// NOrec detects conflicts by value under a single global seqlock, so
  /// there is no orec index and no owner identity to report (the writer
  /// already committed and is gone). The conflict map therefore keys these
  /// sites by address region (obs/conflict_map.hpp), never by orec, and
  /// NOrec-family hot sites carry no aborter->owner edges by construction.
  ///
  /// Out of line: read_valid() inlines into every read in the monomorphized
  /// tier, and this slow path (taken only when a writer committed since the
  /// snapshot) would drag its nested loops into each read site.
  [[gnu::noinline]] std::uint64_t validate() {
    obs::ScopedLatency lat(stats.lat_validate);
    for (;;) {
      const std::uint64_t time = shared_.lock().sample_even();
      ++stats.validations;
      for (const auto clause : reads_) {
        sched::tick(sched::Cost::kValidateEntry);
        ++stats.validate_entries;
        if (!clause.holds()) {
          abort_tx(clause.semantic() ? obs::AbortCause::kCmpRevalidation
                                     : obs::AbortCause::kReadValidation,
                   clause.addr());
        }
      }
      if (time == shared_.lock().load()) return time;
      // A writer committed mid-validation; retry at the new timestamp.
    }
  }

  /// Attempt epilogue, shared by commit and rollback: the gate must see
  /// the transaction as no longer in flight on every exit path.
  void finish() noexcept {
    gate_exit();
    reads_.clear();
    writes_.clear();
  }

  NorecAlgorithm& shared_;
  ReadSet reads_;
  WriteSet writes_;
  std::uint64_t snapshot_ = 0;
};

/// Plain NOrec, sealed. Semantic ops lower to read/write (generic_*).
class NorecCore final : public NorecCoreT<NorecCore> {
 public:
  using NorecCoreT::NorecCoreT;

  static constexpr AlgoId kId = AlgoId::kNorec;
  static constexpr const char* kName = "norec";
  const char* algorithm() const noexcept { return kName; }

  bool cmp(const tword* addr, Rel rel, word_t operand) {
    return generic_cmp(*this, addr, rel, operand);
  }
  bool cmp2(const tword* a, Rel rel, const tword* b) {
    return generic_cmp2(*this, a, rel, b);
  }
  bool cmp_or(const CmpTerm* terms, std::size_t n) {
    return generic_cmp_or(*this, terms, n);
  }
  void inc(tword* addr, word_t delta) { generic_inc(*this, addr, delta); }
};

inline std::unique_ptr<Tx> NorecAlgorithm::make_tx() {
  return std::make_unique<TxFacade<NorecCore>>(*this);
}

}  // namespace semstm
