// semstm — umbrella header for the public API.
//
// Reproduction of "Extending TM Primitives using Low Level Semantics"
// (Saad, Palmieri, Hassan, Ravindran — SPAA 2016).
//
// Typical use:
//
//   auto algo = semstm::make_algorithm("snorec");
//   semstm::ThreadCtx ctx(algo->make_tx());
//   semstm::CtxBinder bind(ctx);
//   semstm::TVar<long> balance(100);
//
//   semstm::atomically([&](semstm::Tx& tx) {
//     if (balance.gte(tx, 25))      // TM_GTE — semantic conditional
//       balance.sub(tx, 25);        // TM_DEC — deferred decrement
//   });
#pragma once

#include "core/algorithm.hpp"   // IWYU pragma: export
#include "core/atomically.hpp"  // IWYU pragma: export
#include "core/context.hpp"     // IWYU pragma: export
#include "core/dispatch.hpp"    // IWYU pragma: export
#include "core/semantics.hpp"   // IWYU pragma: export
#include "core/stats.hpp"       // IWYU pragma: export
#include "core/tvar.hpp"        // IWYU pragma: export
#include "core/tx.hpp"          // IWYU pragma: export
#include "core/word.hpp"        // IWYU pragma: export
