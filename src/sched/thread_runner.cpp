#include "sched/thread_runner.hpp"

#include <exception>

#include "util/timing.hpp"

namespace semstm::sched {

RealResult run_threads(unsigned n, const std::function<void(unsigned)>& body) {
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  // One slot per thread, written only by its owner before joining: no
  // synchronization needed beyond the join itself.
  std::vector<std::exception_ptr> errors(n);
  threads.reserve(n);

  for (unsigned tid = 0; tid < n; ++tid) {
    threads.emplace_back([&, tid] {
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      // An exception escaping a std::thread body is std::terminate — the
      // whole process dies because one worker threw. Capture it instead;
      // the first one (in tid order) is rethrown after every thread has
      // been joined, mirroring VirtualScheduler::run's contract.
      try {
        body(tid);
      } catch (...) {
        errors[tid] = std::current_exception();
      }
    });
  }

  while (ready.load(std::memory_order_acquire) != n) std::this_thread::yield();
  Timer timer;
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  RealResult result{timer.seconds()};

  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return result;
}

}  // namespace semstm::sched
