#include "sched/thread_runner.hpp"

#include "util/timing.hpp"

namespace semstm::sched {

RealResult run_threads(unsigned n, const std::function<void(unsigned)>& body) {
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(n);

  for (unsigned tid = 0; tid < n; ++tid) {
    threads.emplace_back([&, tid] {
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      body(tid);
    });
  }

  while (ready.load(std::memory_order_acquire) != n) std::this_thread::yield();
  Timer timer;
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  return RealResult{timer.seconds()};
}

}  // namespace semstm::sched
