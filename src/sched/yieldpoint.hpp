// Yield points: the seam between the STM algorithms and the concurrency
// substrate.
//
// In *real-thread* mode the hook is null: tick() is a no-op and spin_pause()
// is a CPU pause. In *simulator* mode (sched/virtual_scheduler.hpp) the
// fiber scheduler installs a hook per logical thread; every STM operation
// then advances that fiber's virtual clock and may transfer control to
// another fiber, producing an operation-granular interleaving of N logical
// threads on one OS thread.
//
// Every spin-wait loop in the algorithms MUST call spin_pause(): under the
// cooperative simulator this is what lets the lock holder run and is the
// global progress guarantee.
#pragma once

#include <cstdint>

namespace semstm::sched {

/// Abstract cost units ("ticks") charged per operation by the simulator's
/// cost model. Calibrated loosely to x86 STM instruction counts; only the
/// ratios matter for the reproduced trends.
struct Cost {
  static constexpr std::uint64_t kBegin = 2;
  static constexpr std::uint64_t kRead = 3;
  static constexpr std::uint64_t kWrite = 3;
  static constexpr std::uint64_t kCmp = 3;
  static constexpr std::uint64_t kInc = 2;
  static constexpr std::uint64_t kCommit = 6;
  static constexpr std::uint64_t kValidateEntry = 1;
  static constexpr std::uint64_t kSpin = 4;
  static constexpr std::uint64_t kWork = 1;  ///< non-transactional app work
};

class YieldHook {
 public:
  virtual ~YieldHook() = default;
  /// Charge `cost` ticks to the current logical thread; may switch fibers.
  virtual void tick(std::uint64_t cost) = 0;
  /// A busy-wait step. Identical to tick() for the min-clock simulator;
  /// the schedule-exploration controller (sched/schedule_controller.hpp)
  /// overrides it to tell *no-progress* spins apart from progress ticks —
  /// a fiber that just spun is not offered again until some other fiber
  /// moves, which keeps exhaustive interleaving enumeration finite.
  virtual void spin(std::uint64_t cost) { tick(cost); }
  /// A zero-cost preemption point. No-op everywhere except under a
  /// ScheduleController, where it is one more place the schedule may
  /// switch threads. The algorithms place these inside commit-time
  /// critical windows (lock held, write-back in progress) that contain no
  /// costed ticks, so the litmus harness can interleave *into* them; the
  /// min-clock simulator and real-thread mode are unaffected (no virtual
  /// clock advance, so committed perf baselines do not move).
  virtual void sched_point() {}
  /// The current logical thread's virtual clock, in ticks. Used by the
  /// observability layer (src/obs) so trace timestamps and latency
  /// histograms are deterministic under the simulator; real-thread mode
  /// falls back to a hardware clock (obs::now_ticks()).
  virtual std::uint64_t now() const noexcept { return 0; }
};

namespace detail {
inline thread_local YieldHook* g_hook = nullptr;
}

/// Install (or clear, with nullptr) the hook for the current OS thread.
/// The virtual scheduler re-points this at each fiber switch.
inline void set_hook(YieldHook* h) noexcept { detail::g_hook = h; }
inline YieldHook* hook() noexcept { return detail::g_hook; }

/// Charge `cost` abstract ticks (no-op in real-thread mode).
inline void tick(std::uint64_t cost = 1) {
  if (auto* h = detail::g_hook) h->tick(cost);
}

/// Polite busy-wait step. Under the simulator this advances virtual time
/// (so a spinning fiber eventually yields to the lock holder); under a
/// ScheduleController it additionally marks the fiber as not-progressing.
inline void spin_pause() {
  if (auto* h = detail::g_hook) {
    h->spin(Cost::kSpin);
  } else {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }
}

/// Zero-cost preemption point (see YieldHook::sched_point). Place inside
/// protocol-critical windows that contain no costed tick.
inline void sched_point() {
  if (auto* h = detail::g_hook) h->sched_point();
}

}  // namespace semstm::sched
