// Real-thread execution: one std::thread per logical thread with a start
// barrier. Used on genuinely multi-core hosts and by the stress tests;
// the figure benches default to the virtual scheduler (see DESIGN.md).
#pragma once

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

namespace semstm::sched {

struct RealResult {
  double seconds = 0.0;
};

/// Run body(tid) on n OS threads; returns wall time from barrier release
/// to last join. If bodies throw, every thread is still joined and the
/// first captured exception (in tid order) is rethrown afterwards — same
/// contract as VirtualScheduler::run.
RealResult run_threads(unsigned n, const std::function<void(unsigned)>& body);

}  // namespace semstm::sched
