#include "sched/litmus.hpp"

#include <cstdlib>
#include <stdexcept>

#include "sched/virtual_scheduler.hpp"

namespace semstm::sched {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  // Read-only env access before any worker thread exists.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0') {
    throw std::invalid_argument(std::string(name) + ": not a number: " + v);
  }
  return parsed;
}

/// Debug-tier defaults: large enough to exhaust every 2-thread single-op
/// test against every core (the TL2 family's instrumented commit plus the
/// serial-gate enter/exit windows put WriteRead near 2e5 schedules), small
/// enough that each such exploration stays under ~10 seconds. Nightly-style
/// deep runs raise them via the environment; tests that cannot exhaust pass
/// an explicit bounded ExploreOptions instead.
constexpr std::uint64_t kDefaultMaxSchedules = 400000;
constexpr std::uint64_t kDefaultMaxSteps = 2000;

/// One DFS node: at a branching decision the controller saw `fanout`
/// choices and took index `chosen` (tid recorded for witness schedules).
struct Decision {
  unsigned fanout = 0;
  unsigned chosen = 0;
  unsigned tid = 0;
};

/// The DFS controller for one schedule: follow `prefix` at branching
/// decisions, then always take choice 0; record the branching trace.
/// Forced decisions (one runnable fiber) are executed but not recorded —
/// they can never branch, and keeping them out of the trace keeps prefixes
/// short. Truncates via kStopAll after `max_steps` total decisions.
class DfsController final : public ScheduleController {
 public:
  DfsController(const std::vector<unsigned>& prefix, std::uint64_t max_steps)
      : prefix_(prefix), max_steps_(max_steps) {}

  unsigned pick(const std::vector<RunnableFiber>& runnable) override {
    if (++steps_ > max_steps_) return kStopAll;
    if (runnable.size() == 1) return runnable.front().tid;
    unsigned choice = 0;
    if (trace_.size() < prefix_.size()) {
      choice = prefix_[trace_.size()];
      if (choice >= runnable.size()) {
        // A prefix recorded against this very test diverged: the test is
        // nondeterministic (RNG, address-dependent hashing across resets),
        // which would silently corrupt the enumeration. Fail loudly.
        throw std::logic_error(
            "litmus: schedule replay diverged (nondeterministic test?)");
      }
    }
    trace_.push_back({static_cast<unsigned>(runnable.size()), choice,
                      runnable[choice].tid});
    return runnable[choice].tid;
  }

  const std::vector<Decision>& trace() const noexcept { return trace_; }

 private:
  const std::vector<unsigned>& prefix_;
  std::uint64_t max_steps_;
  std::uint64_t steps_ = 0;
  std::vector<Decision> trace_;
};

}  // namespace

std::vector<std::string> ExploreResult::outcome_set() const {
  std::vector<std::string> set;
  set.reserve(outcomes.size());
  for (const auto& [k, v] : outcomes) set.push_back(k);
  return set;
}

ExploreResult explore(LitmusTest& test, const ExploreOptions& opts) {
  const std::uint64_t max_schedules =
      opts.max_schedules != 0
          ? opts.max_schedules
          : env_u64("SEMSTM_LITMUS_MAX_SCHEDULES", kDefaultMaxSchedules);
  const std::uint64_t max_steps =
      opts.max_steps != 0 ? opts.max_steps
                          : env_u64("SEMSTM_LITMUS_MAX_STEPS", kDefaultMaxSteps);

  ExploreResult result;
  std::vector<unsigned> prefix;  // branching-choice indices to replay
  // One scheduler for the whole exploration: it recycles fiber stacks
  // across runs, which dominates the cost of re-running a tiny test tens
  // of thousands of times.
  VirtualScheduler sim(SimOptions{
      .seed = 1, .jitter_pct = 0, .stack_bytes = opts.stack_bytes});
  for (;;) {
    if (result.schedules + result.truncated >= max_schedules) {
      return result;  // budget exhausted: exhaustive stays false
    }
    DfsController ctl(prefix, max_steps);
    test.reset();
    const SimResult run =
        sim.run(test.threads(), [&](unsigned tid) { test.thread(tid); }, &ctl);
    const std::vector<Decision>& trace = ctl.trace();

    if (run.truncated) {
      ++result.truncated;
    } else {
      ++result.schedules;
      auto& witness = result.outcomes[test.outcome()];
      if (witness.count++ == 0) {
        witness.schedule.reserve(trace.size());
        for (const Decision& d : trace) witness.schedule.push_back(d.tid);
      }
    }

    // Backtrack: deepest decision with an untried sibling.
    std::size_t depth = trace.size();
    while (depth > 0 && trace[depth - 1].chosen + 1 >= trace[depth - 1].fanout) {
      --depth;
    }
    if (depth == 0) {
      result.exhaustive = true;
      return result;
    }
    prefix.resize(depth);
    for (std::size_t i = 0; i + 1 < depth; ++i) prefix[i] = trace[i].chosen;
    prefix[depth - 1] = trace[depth - 1].chosen + 1;
  }
}

std::string replay(LitmusTest& test, const std::vector<unsigned>& schedule,
                   std::size_t stack_bytes) {
  ScriptedController ctl(schedule);
  test.reset();
  VirtualScheduler sim(
      SimOptions{.seed = 1, .jitter_pct = 0, .stack_bytes = stack_bytes});
  const SimResult run =
      sim.run(test.threads(), [&](unsigned tid) { test.thread(tid); }, &ctl);
  if (run.truncated) {
    throw std::logic_error("litmus replay truncated (scripted runs never stop)");
  }
  return test.outcome();
}

}  // namespace semstm::sched
