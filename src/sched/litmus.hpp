// Litmus-test exploration: exhaustive (or budget-bounded) DFS over the
// interleavings of a small concurrent test, at TM-operation granularity.
//
// A LitmusTest is a tiny N-thread program (2–3 threads, a handful of
// transactions) plus an outcome observation. explore() re-runs it under a
// DFS ScheduleController: each run follows a recorded prefix of choices,
// extends it first-choice-greedily to a complete schedule, and then
// backtracks to the deepest decision with an untried alternative — classic
// stateless model checking (CHESS-style), made finite by the scheduler's
// spin-parking rule. The result is the set of observed outcomes, each with
// the first schedule (choice-tid sequence) that produced it — the artifact
// a failing test commits as a ScriptedController regression schedule.
//
// Budgets: a schedule longer than max_steps decisions is truncated (its
// outcome is not recorded; its prefix is still backtracked, so bounded
// exploration remains systematic), and exploration stops after
// max_schedules runs. Both are overridable via the environment —
// SEMSTM_LITMUS_MAX_SCHEDULES / SEMSTM_LITMUS_MAX_STEPS — so nightly runs
// can dig deeper than the Debug-tier defaults without a rebuild.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sched/schedule_controller.hpp"

namespace semstm::sched {

/// A small concurrent program under schedule exploration. reset() must
/// rebuild ALL state touched by the threads — including the TM algorithm
/// instance and descriptors — because a truncated schedule may unwind
/// mid-commit and leave shared metadata (seqlock, orecs, gate) in an
/// arbitrary in-protocol state.
class LitmusTest {
 public:
  virtual ~LitmusTest() = default;
  virtual unsigned threads() const = 0;
  virtual void reset() = 0;
  virtual void thread(unsigned tid) = 0;
  /// Serialize the final shared state ("r0=1 r1=0"); called only after
  /// complete (non-truncated) schedules.
  virtual std::string outcome() = 0;
};

struct ExploreOptions {
  /// Per-schedule decision budget before truncation (0 = env or default).
  std::uint64_t max_steps = 0;
  /// Total schedule budget, complete + truncated (0 = env or default).
  std::uint64_t max_schedules = 0;
  /// Fiber stack size — litmus bodies are tiny, so default small.
  std::size_t stack_bytes = 128 * 1024;
};

struct ExploreResult {
  /// Complete schedules enumerated (each contributed an outcome).
  std::uint64_t schedules = 0;
  /// Schedules cut by the step budget (no outcome recorded).
  std::uint64_t truncated = 0;
  /// The DFS tree was fully explored within the budgets: together with
  /// truncated == 0 this certifies EVERY interleaving was enumerated.
  bool exhaustive = false;
  /// outcome string -> (count, first schedule producing it). The schedule
  /// is the tid sequence of branching decisions — feed to replay().
  struct Witness {
    std::uint64_t count = 0;
    std::vector<unsigned> schedule;
  };
  std::map<std::string, Witness> outcomes;

  /// The distinct outcome strings, for set comparisons in tests.
  std::vector<std::string> outcome_set() const;
};

/// DFS-enumerate interleavings of `test` and collect outcomes.
ExploreResult explore(LitmusTest& test, const ExploreOptions& opts = {});

/// Re-run `test` once under a committed schedule (ScriptedController
/// semantics: unknown/exhausted entries fall back to min-clock) and return
/// its outcome. This is how a bug's witness schedule becomes a regression
/// test.
std::string replay(LitmusTest& test, const std::vector<unsigned>& schedule,
                   std::size_t stack_bytes = 128 * 1024);

}  // namespace semstm::sched
