#include "sched/virtual_scheduler.hpp"

#include <ucontext.h>

#include <cassert>
#include <exception>
#include <limits>
#include <memory>
#include <stdexcept>

#include "core/context.hpp"
#include "sched/yieldpoint.hpp"
#include "util/rng.hpp"

// ASan cannot see ucontext stack switches on its own: on the first abort
// exception unwinding inside a fiber, __asan_handle_no_return tries to
// unpoison what it thinks is the carrier thread's stack and crashes (see
// google/sanitizers#189). The fiber-switch annotations below tell ASan
// which stack is live around every swapcontext, which makes the simulator
// ASan-clean (SEMSTM_SANITIZE=address runs the full suite).
#if defined(__SANITIZE_ADDRESS__)
#define SEMSTM_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SEMSTM_ASAN_FIBERS 1
#endif
#endif
#ifdef SEMSTM_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

namespace semstm::sched {

namespace {
constexpr std::uint64_t kInfinity = std::numeric_limits<std::uint64_t>::max();
}

struct VirtualScheduler::Impl : YieldHook {
  struct Fiber {
    ucontext_t ctx{};
    std::unique_ptr<char[]> stack;
    std::uint64_t vclock = 0;
    bool done = false;
    /// Controller mode only: last step was a spin_pause and no other fiber
    /// has run since — withheld from the choice set (see
    /// schedule_controller.hpp for the finiteness argument).
    bool parked = false;
    unsigned tid = 0;
    Rng rng{0};
    ThreadCtx* saved_tls = nullptr;  ///< semstm context parked across switches
    std::exception_ptr error;
#ifdef SEMSTM_ASAN_FIBERS
    void* fake_stack = nullptr;  ///< ASan state parked while switched out
#endif
  };

  SimOptions opts;
  std::vector<Fiber> fibers;
  ucontext_t main_ctx{};
  Fiber* current = nullptr;
  /// Clock of the next-best runnable fiber; the current fiber yields only
  /// once its own clock passes this (keeps switches rare but ordering exact).
  std::uint64_t preempt_at = kInfinity;
  const std::function<void(unsigned)>* body = nullptr;
  std::uint64_t switches = 0;
  /// Adversarial-schedule mode (null = default min-clock policy).
  ScheduleController* controller = nullptr;
  /// Set once the controller answered kStopAll: every subsequent yield
  /// point raises ScheduleStopped so the fibers unwind and finish.
  bool stopping = false;
  /// Whether the step that just yielded was a spin_pause (controller mode).
  bool spin_step = false;
#ifdef SEMSTM_ASAN_FIBERS
  void* main_fake_stack = nullptr;
  /// Carrier-thread stack bounds, captured at the first fiber entry (ASan
  /// reports them as the "old" stack); target of every fiber→main switch.
  const void* main_stack_bottom = nullptr;
  std::size_t main_stack_size = 0;
#endif

  explicit Impl(SimOptions o) : opts(o) {}

  // Fiber-switch annotation helpers; no-ops outside ASan builds.
  void asan_switch_to_fiber([[maybe_unused]] Fiber& f) {
#ifdef SEMSTM_ASAN_FIBERS
    __sanitizer_start_switch_fiber(&main_fake_stack, f.stack.get(),
                                   opts.stack_bytes);
#endif
  }
  void asan_back_on_main() {
#ifdef SEMSTM_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(main_fake_stack, nullptr, nullptr);
#endif
  }
  /// `dying` releases the fiber's ASan fake-stack state: its frames are
  /// gone for good once the trampoline returns through uc_link.
  void asan_switch_to_main([[maybe_unused]] Fiber& f,
                           [[maybe_unused]] bool dying) {
#ifdef SEMSTM_ASAN_FIBERS
    __sanitizer_start_switch_fiber(dying ? nullptr : &f.fake_stack,
                                   main_stack_bottom, main_stack_size);
#endif
  }
  void asan_back_on_fiber([[maybe_unused]] Fiber& f, bool first) {
#ifdef SEMSTM_ASAN_FIBERS
    if (first) {  // capture where the carrier stack lives as a side effect
      __sanitizer_finish_switch_fiber(nullptr, &main_stack_bottom,
                                      &main_stack_size);
    } else {
      __sanitizer_finish_switch_fiber(f.fake_stack, nullptr, nullptr);
    }
#else
    (void)first;
#endif
  }

  // YieldHook: the running fiber's virtual clock is the observability
  // layer's time source, so traces and latency histograms are measured in
  // the same deterministic ticks as throughput.
  std::uint64_t now() const noexcept override {
    return current != nullptr ? current->vclock : 0;
  }

  /// Controller mode: hand control back to the dispatch loop for the next
  /// scheduling decision (every yield point is a decision point).
  void controller_yield(Fiber* f) {
    if (stopping) throw ScheduleStopped{};
    ++switches;
    asan_switch_to_main(*f, /*dying=*/false);
    swapcontext(&f->ctx, &main_ctx);  // back to the dispatch loop
    asan_back_on_fiber(*f, /*first=*/false);
    if (stopping) throw ScheduleStopped{};
  }

  // YieldHook: called from inside the running fiber on every STM op.
  void tick(std::uint64_t cost) override {
    Fiber* f = current;
    assert(f != nullptr);
    if (controller != nullptr) {
      // No jitter: a schedule must replay bit-identically from its choice
      // sequence alone, so costs stay deterministic.
      f->vclock += cost;
      controller_yield(f);
      return;
    }
    std::uint64_t c = cost;
    if (opts.jitter_pct > 0 && cost > 0) {
      // At least ±1 of spread even for unit costs, so different seeds
      // explore different interleavings.
      c += f->rng.below(cost * opts.jitter_pct / 100 + 2);
    }
    f->vclock += c;
    if (f->vclock > preempt_at + opts.quantum) {
      ++switches;
      asan_switch_to_main(*f, /*dying=*/false);
      swapcontext(&f->ctx, &main_ctx);  // back to the dispatch loop
      asan_back_on_fiber(*f, /*first=*/false);
    }
  }

  // YieldHook: busy-wait step — a tick that additionally marks the fiber
  // as not-progressing so the controller's choice set can park it.
  void spin(std::uint64_t cost) override {
    if (controller != nullptr) spin_step = true;
    tick(cost);
  }

  // YieldHook: zero-cost preemption point inside protocol-critical windows.
  // Invisible (no clock advance, no switch) outside controller mode.
  void sched_point() override {
    if (controller == nullptr) return;
    controller_yield(current);
  }

  static void trampoline();

  void enter(Fiber& f) {
    current = &f;
    // Compute the preemption horizon: the minimum clock among the *other*
    // runnable fibers.
    preempt_at = kInfinity;
    for (const Fiber& g : fibers) {
      if (!g.done && g.tid != f.tid && g.vclock < preempt_at) {
        preempt_at = g.vclock;
      }
    }
    set_hook(this);
    tls_ctx() = f.saved_tls;
    asan_switch_to_fiber(f);
    swapcontext(&main_ctx, &f.ctx);
    asan_back_on_main();
    f.saved_tls = tls_ctx();
    tls_ctx() = nullptr;
    set_hook(nullptr);
    current = nullptr;
  }

  /// Controller-mode decision: build the choice set (runnable minus
  /// parked; everyone when all runnable are parked), consult the
  /// controller, and return the chosen fiber — or null when the controller
  /// answered kStopAll (stopping is then set).
  Fiber* consult_controller(std::vector<RunnableFiber>& choices) {
    choices.clear();
    bool any_unparked = false;
    for (const Fiber& f : fibers) {
      if (!f.done && !f.parked) any_unparked = true;
    }
    // All runnable fibers just spun: offer everyone again (their waits may
    // be bounded and must keep counting down), flagged as parked.
    const bool forced = !any_unparked;
    for (Fiber& f : fibers) {
      if (f.done) continue;
      if (forced) f.parked = false;
      if (!f.parked) choices.push_back({f.tid, f.vclock, forced});
    }
    const unsigned tid = controller->pick(choices);
    if (tid == ScheduleController::kStopAll) {
      stopping = true;
      return nullptr;
    }
    for (const RunnableFiber& c : choices) {
      if (c.tid == tid) return &fibers[tid];
    }
    throw std::logic_error("ScheduleController picked a non-offered tid");
  }

  SimResult run_all(unsigned n, const std::function<void(unsigned)>& b,
                    ScheduleController* ctl) {
    body = &b;
    controller = ctl;
    stopping = false;
    // Recycle stack allocations across runs: the litmus explorer re-runs a
    // test tens of thousands of times on one scheduler, and a fresh
    // (zero-initialized) stack per fiber per run dominated its cost.
    // new[] without () leaves the stack uninitialized — makecontext and
    // the trampoline initialize everything a fiber actually reads.
    std::vector<std::unique_ptr<char[]>> stacks;
    stacks.reserve(n);
    for (Fiber& f : fibers) {
      if (stacks.size() < n && f.stack) stacks.push_back(std::move(f.stack));
    }
    while (stacks.size() < n) {
      stacks.emplace_back(new char[opts.stack_bytes]);
    }
    fibers.clear();
    fibers.resize(n);
    SplitMix64 seeder(opts.seed);
    for (unsigned i = 0; i < n; ++i) {
      Fiber& f = fibers[i];
      f.tid = i;
      f.rng = Rng(seeder.next());
      f.stack = std::move(stacks[i]);
      if (getcontext(&f.ctx) != 0) throw std::runtime_error("getcontext");
      f.ctx.uc_stack.ss_sp = f.stack.get();
      f.ctx.uc_stack.ss_size = opts.stack_bytes;
      f.ctx.uc_link = &main_ctx;
      makecontext(&f.ctx, reinterpret_cast<void (*)()>(&Impl::trampoline), 0);
    }

    bool truncated = false;
    std::vector<RunnableFiber> choices;
    for (;;) {
      Fiber* next = nullptr;
      if (controller != nullptr && !stopping) {
        bool any = false;
        for (const Fiber& f : fibers) any = any || !f.done;
        if (!any) break;
        next = consult_controller(choices);
        if (next == nullptr) {  // kStopAll: drain via min-clock below
          truncated = true;
          continue;
        }
      } else {
        for (Fiber& f : fibers) {
          if (!f.done && (next == nullptr || f.vclock < next->vclock)) {
            next = &f;
          }
        }
        if (next == nullptr) break;
      }
      spin_step = false;
      enter(*next);
      if (controller != nullptr && !stopping) {
        if (spin_step && !next->done) {
          next->parked = true;  // no progress: must let someone else run
        } else {
          for (Fiber& f : fibers) f.parked = false;
        }
      }
    }
    controller = nullptr;

    SimResult r;
    r.switches = switches;
    r.truncated = truncated;
    r.thread_clocks.reserve(n);
    std::exception_ptr first_error;
    for (Fiber& f : fibers) {
      r.thread_clocks.push_back(f.vclock);
      r.makespan = std::max(r.makespan, f.vclock);
      if (!f.error || first_error) continue;
      // ScheduleStopped is the truncation mechanism, not a failure: only
      // genuine body exceptions propagate to the caller.
      try {
        std::rethrow_exception(f.error);
      } catch (const ScheduleStopped&) {
      } catch (...) {
        first_error = f.error;
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return r;
  }
};

namespace {
/// The impl whose fiber is being bootstrapped; set immediately before the
/// first swap into a fiber (single carrier thread, so a plain TLS works).
thread_local VirtualScheduler::Impl* g_bootstrapping = nullptr;
}  // namespace

void VirtualScheduler::Impl::trampoline() {
  Impl* impl = g_bootstrapping;
  Fiber* self = impl->current;
  impl->asan_back_on_fiber(*self, /*first=*/true);
  try {
    (*impl->body)(self->tid);
  } catch (...) {
    self->error = std::current_exception();
  }
  self->done = true;
  // uc_link returns to main_ctx when this function ends; the annotation
  // precedes the implicit switch and frees this fiber's ASan state.
  impl->asan_switch_to_main(*self, /*dying=*/true);
}

VirtualScheduler::VirtualScheduler(SimOptions opts) : impl_(new Impl(opts)) {}
VirtualScheduler::~VirtualScheduler() { delete impl_; }

SimResult VirtualScheduler::run(unsigned n,
                                const std::function<void(unsigned)>& body) {
  return run(n, body, nullptr);
}

SimResult VirtualScheduler::run(unsigned n,
                                const std::function<void(unsigned)>& body,
                                ScheduleController* controller) {
  g_bootstrapping = impl_;
  SimResult r = impl_->run_all(n, body, controller);
  g_bootstrapping = nullptr;
  return r;
}

}  // namespace semstm::sched
