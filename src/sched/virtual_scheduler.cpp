#include "sched/virtual_scheduler.hpp"

#include <ucontext.h>

#include <cassert>
#include <exception>
#include <limits>
#include <memory>
#include <stdexcept>

#include "core/context.hpp"
#include "sched/yieldpoint.hpp"
#include "util/rng.hpp"

namespace semstm::sched {

namespace {
constexpr std::uint64_t kInfinity = std::numeric_limits<std::uint64_t>::max();
}

struct VirtualScheduler::Impl : YieldHook {
  struct Fiber {
    ucontext_t ctx{};
    std::unique_ptr<char[]> stack;
    std::uint64_t vclock = 0;
    bool done = false;
    unsigned tid = 0;
    Rng rng{0};
    ThreadCtx* saved_tls = nullptr;  ///< semstm context parked across switches
    std::exception_ptr error;
  };

  SimOptions opts;
  std::vector<Fiber> fibers;
  ucontext_t main_ctx{};
  Fiber* current = nullptr;
  /// Clock of the next-best runnable fiber; the current fiber yields only
  /// once its own clock passes this (keeps switches rare but ordering exact).
  std::uint64_t preempt_at = kInfinity;
  const std::function<void(unsigned)>* body = nullptr;
  std::uint64_t switches = 0;

  explicit Impl(SimOptions o) : opts(o) {}

  // YieldHook: called from inside the running fiber on every STM op.
  void tick(std::uint64_t cost) override {
    Fiber* f = current;
    assert(f != nullptr);
    std::uint64_t c = cost;
    if (opts.jitter_pct > 0 && cost > 0) {
      // At least ±1 of spread even for unit costs, so different seeds
      // explore different interleavings.
      c += f->rng.below(cost * opts.jitter_pct / 100 + 2);
    }
    f->vclock += c;
    if (f->vclock > preempt_at + opts.quantum) {
      ++switches;
      swapcontext(&f->ctx, &main_ctx);  // back to the dispatch loop
    }
  }

  static void trampoline();

  void enter(Fiber& f) {
    current = &f;
    // Compute the preemption horizon: the minimum clock among the *other*
    // runnable fibers.
    preempt_at = kInfinity;
    for (const Fiber& g : fibers) {
      if (!g.done && g.tid != f.tid && g.vclock < preempt_at) {
        preempt_at = g.vclock;
      }
    }
    set_hook(this);
    tls_ctx() = f.saved_tls;
    swapcontext(&main_ctx, &f.ctx);
    f.saved_tls = tls_ctx();
    tls_ctx() = nullptr;
    set_hook(nullptr);
    current = nullptr;
  }

  SimResult run_all(unsigned n, const std::function<void(unsigned)>& b) {
    body = &b;
    fibers.clear();
    fibers.resize(n);
    SplitMix64 seeder(opts.seed);
    for (unsigned i = 0; i < n; ++i) {
      Fiber& f = fibers[i];
      f.tid = i;
      f.rng = Rng(seeder.next());
      f.stack = std::make_unique<char[]>(opts.stack_bytes);
      if (getcontext(&f.ctx) != 0) throw std::runtime_error("getcontext");
      f.ctx.uc_stack.ss_sp = f.stack.get();
      f.ctx.uc_stack.ss_size = opts.stack_bytes;
      f.ctx.uc_link = &main_ctx;
      makecontext(&f.ctx, reinterpret_cast<void (*)()>(&Impl::trampoline), 0);
    }

    for (;;) {
      Fiber* next = nullptr;
      for (Fiber& f : fibers) {
        if (!f.done && (next == nullptr || f.vclock < next->vclock)) {
          next = &f;
        }
      }
      if (next == nullptr) break;
      enter(*next);
    }

    SimResult r;
    r.switches = switches;
    r.thread_clocks.reserve(n);
    for (Fiber& f : fibers) {
      r.thread_clocks.push_back(f.vclock);
      r.makespan = std::max(r.makespan, f.vclock);
      if (f.error) std::rethrow_exception(f.error);
    }
    return r;
  }
};

namespace {
/// The impl whose fiber is being bootstrapped; set immediately before the
/// first swap into a fiber (single carrier thread, so a plain TLS works).
thread_local VirtualScheduler::Impl* g_bootstrapping = nullptr;
}  // namespace

void VirtualScheduler::Impl::trampoline() {
  Impl* impl = g_bootstrapping;
  Fiber* self = impl->current;
  try {
    (*impl->body)(self->tid);
  } catch (...) {
    self->error = std::current_exception();
  }
  self->done = true;
  // uc_link returns to main_ctx when this function ends.
}

VirtualScheduler::VirtualScheduler(SimOptions opts) : impl_(new Impl(opts)) {}
VirtualScheduler::~VirtualScheduler() { delete impl_; }

SimResult VirtualScheduler::run(unsigned n,
                                const std::function<void(unsigned)>& body) {
  g_bootstrapping = impl_;
  SimResult r = impl_->run_all(n, body);
  g_bootstrapping = nullptr;
  return r;
}

}  // namespace semstm::sched
