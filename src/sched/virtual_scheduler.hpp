// VirtualScheduler: deterministic simulation of an N-core machine on one
// OS thread.
//
// Each logical thread is a ucontext fiber. Every STM operation calls
// sched::tick(cost) (see yieldpoint.hpp), which advances the fiber's
// virtual clock; the scheduler always resumes the runnable fiber with the
// minimum virtual clock — i.e. a discrete-event simulation of N cores
// executing in parallel. A fiber keeps running, without a context switch,
// until its clock passes the next-lowest fiber's clock (plus optional
// seeded jitter that breaks lockstep artifacts).
//
// Why this exists: the paper's evaluation ran on a 24-core Opteron; the
// reproduction host has one core, where real threads interleave at OS
// timeslice granularity and exhibit almost no transactional conflicts.
// The simulator restores operation-granular interleaving, so abort rates
// and relative throughput (the quantities in Figures 1 and 2) are
// meaningful — and exactly reproducible from a seed.
//
// Progress requirement: any spin-wait inside the STM must tick (all of
// semstm's do, via sched::spin_pause()), so a fiber waiting on a lock
// burns virtual time past the holder's clock and the holder gets to run.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sched/schedule_controller.hpp"

namespace semstm::sched {

struct SimOptions {
  std::uint64_t seed = 1;
  /// Max per-tick random cost jitter, in percent of the base cost.
  unsigned jitter_pct = 15;
  /// Fiber stack size in bytes.
  std::size_t stack_bytes = 512 * 1024;
  /// Scheduling slack, in ticks: a fiber keeps running until its clock
  /// exceeds the next fiber's clock by more than this. 0 = exact
  /// min-clock ordering (tests); benches use a small quantum to amortize
  /// fiber switches without materially coarsening the interleaving.
  std::uint64_t quantum = 0;
};

struct SimResult {
  /// Parallel makespan: the maximum fiber clock at completion. Simulated
  /// throughput = total committed transactions / makespan.
  std::uint64_t makespan = 0;
  std::vector<std::uint64_t> thread_clocks;
  /// Total context (fiber) switches — a determinism fingerprint.
  std::uint64_t switches = 0;
  /// True when a ScheduleController stopped the run (kStopAll) and the
  /// fibers were unwound via ScheduleStopped instead of completing.
  bool truncated = false;
};

class VirtualScheduler {
 public:
  explicit VirtualScheduler(SimOptions opts = {});
  ~VirtualScheduler();

  VirtualScheduler(const VirtualScheduler&) = delete;
  VirtualScheduler& operator=(const VirtualScheduler&) = delete;

  /// Run `n` logical threads, each executing body(tid), to completion.
  /// Exceptions thrown by a body are rethrown here after all fibers stop.
  SimResult run(unsigned n, const std::function<void(unsigned)>& body);

  /// Run under a ScheduleController (see sched/schedule_controller.hpp):
  /// every yield point becomes a scheduling decision delegated to the
  /// controller, jitter is disabled, and a kStopAll answer truncates the
  /// run (SimResult::truncated). With controller == nullptr this is the
  /// plain min-clock run above.
  SimResult run(unsigned n, const std::function<void(unsigned)>& body,
                ScheduleController* controller);

  /// Implementation detail; public only so the fiber trampoline (a plain
  /// function, required by makecontext) can reach it.
  struct Impl;

 private:
  Impl* impl_;
};

}  // namespace semstm::sched
