// ScheduleController: adversarial/scripted scheduling for the virtual
// scheduler.
//
// The default VirtualScheduler policy — always resume the fiber with the
// minimum virtual clock — yields exactly ONE schedule per seed. That is
// perfect for reproducible benchmarking and useless for adversarial
// testing: every seqlock/orec/serial-gate protocol claim quantifies over
// *all* interleavings, and the min-clock pick only ever exercises one.
//
// Installing a controller (VirtualScheduler::run overload) changes the
// contract:
//
//   - EVERY yield point (sched::tick, sched::spin_pause, and the zero-cost
//     sched::sched_point markers inside commit critical windows) returns
//     control to the dispatch loop. Jitter is disabled.
//   - At each step the controller is shown the runnable fibers and picks
//     which one executes until its next yield point. A schedule is the
//     sequence of those picks — replayable, enumerable, committable as a
//     regression test (ScriptedController below).
//   - A fiber whose last step was a *spin* (sched::spin_pause) is parked:
//     it is withheld from the controller's choice set until some other
//     fiber runs a step. Re-running a spinner before anyone else moves
//     re-observes identical state, so parking loses no behaviours while
//     making exhaustive DFS over spin-wait protocols finite. If every
//     runnable fiber is parked, all are offered again (the waits may have
//     bounded timeouts that must keep counting down).
//   - The controller may return kStopAll to truncate the run (litmus
//     exploration uses this to bound schedule length). The scheduler then
//     raises ScheduleStopped out of every subsequent yield point so each
//     fiber unwinds through its normal rollback paths, and reports the run
//     as truncated instead of propagating the exception.
//
// The litmus DFS driver built on this hook lives in sched/litmus.hpp.
#pragma once

#include <cstdint>
#include <vector>

namespace semstm::sched {

/// One runnable fiber as shown to the controller at a decision point.
struct RunnableFiber {
  unsigned tid = 0;
  std::uint64_t vclock = 0;
  /// Last step was a spin_pause and no other fiber has run since. Parked
  /// fibers are normally filtered out of the choice set; the flag is only
  /// visible when every runnable fiber is parked (forced-unpark round).
  bool parked = false;
};

/// Raised out of every yield point once the controller stopped the run;
/// fibers unwind through their transaction rollback paths. Deliberately
/// not derived from std::exception: nothing but the scheduler itself may
/// swallow it.
struct ScheduleStopped {};

class ScheduleController {
 public:
  /// pick() return value requesting truncation of the whole run.
  static constexpr unsigned kStopAll = ~0u;

  virtual ~ScheduleController() = default;

  /// Choose which fiber runs until its next yield point. `runnable` is
  /// non-empty and sorted by tid; return one of its tids, or kStopAll.
  virtual unsigned pick(const std::vector<RunnableFiber>& runnable) = 0;
};

/// Replays a committed schedule: entry i names the tid to run at the i-th
/// *branching* decision (two or more fibers offered — forced single-fiber
/// decisions consume no entry, matching the schedules the litmus explorer
/// records). Entries naming a fiber that is not currently runnable — or
/// decisions past the end of the script — fall back to the min-clock pick,
/// i.e. the scheduler's default policy, which is live by construction. The
/// fallback makes committed regression schedules robust: a code change
/// that shifts yield points by a step or two degrades a replay toward the
/// default schedule instead of failing it.
class ScriptedController : public ScheduleController {
 public:
  explicit ScriptedController(std::vector<unsigned> script)
      : script_(std::move(script)) {}

  unsigned pick(const std::vector<RunnableFiber>& runnable) override {
    if (runnable.size() == 1) return runnable.front().tid;  // forced
    unsigned choice = runnable.front().tid;
    std::uint64_t best = ~std::uint64_t{0};
    for (const RunnableFiber& f : runnable) {
      if (f.vclock < best) {
        best = f.vclock;
        choice = f.tid;
      }
    }
    if (next_ < script_.size()) {
      const unsigned scripted = script_[next_++];
      for (const RunnableFiber& f : runnable) {
        if (f.tid == scripted) return scripted;
      }
    }
    return choice;
  }

  /// Decisions consumed so far (diagnostic).
  std::size_t consumed() const noexcept { return next_; }

 private:
  std::vector<unsigned> script_;
  std::size_t next_ = 0;
};

}  // namespace semstm::sched
