#!/usr/bin/env bash
# Contention-cartography CI: a -DSEMSTM_TRACE=ON build, the metrics unit
# suite (whose end-to-end cartography tests only run under the gate), a
# hot-skewed fig1 bank run with --metrics-out, strict validation of the
# JSON-lines schema that run produced (line-by-line parse, field presence,
# per-window accounting, declared-vs-actual counts), the tm_top renderer's
# exit-status contract (0 on the real file, 1 on a schema-invalid file,
# 2 on a missing file / missing --in), and hot-site sanity in the bench
# summary: with 90% of picks on 2 of 1024 accounts, every contended series
# must rank at least one site, in descending order.
#
# Usage: scripts/ci_metrics_smoke.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"
build_dir=build-trace
metrics_jsonl="${build_dir}/bank_metrics.jsonl"
summary_json="${build_dir}/bank_metrics_summary.json"

echo "=== SEMSTM_TRACE=ON build ==="
cmake -B "${build_dir}" -S . -DSEMSTM_TRACE=ON
cmake --build "${build_dir}" -j "${jobs}" --target test_metrics fig1_bank tm_top

echo "=== metrics unit suite (traced) ==="
"${build_dir}/tests/test_metrics"

echo "=== hot-skewed benchmark run with --metrics-out ==="
"${build_dir}/bench/fig1_bank" --threads 2,4 --ops 300 \
    --hot-accounts 2 --hot-pct 90 \
    --metrics-out "${metrics_jsonl}" --json-out "${summary_json}" \
    > "${build_dir}/bank_metrics.out"
grep '^# metrics' "${build_dir}/bank_metrics.out"

echo "=== JSON-lines schema validation ==="
python3 - "${metrics_jsonl}" <<'EOF'
import json
import sys

runs = []          # [run-object]
windows = []       # [(run-label, window-object)]
hot_sites = []     # [(run-label, hot-site-object)]
with open(sys.argv[1]) as f:
    for n, line in enumerate(f, 1):
        obj = json.loads(line)  # every line must parse on its own
        kind = obj["type"]
        if kind == "run":
            for field in ("label", "units", "window_ticks", "threads",
                          "windows", "hot_sites", "conflict_overflow"):
                assert field in obj, f"line {n}: run missing {field!r}"
            assert obj["units"] in ("ticks", "ns"), f"line {n}: bad units"
            runs.append(obj)
        elif kind == "window":
            assert runs, f"line {n}: window before any run line"
            for field in ("window", "t0", "t1", "starts", "commits",
                          "aborts", "abort_pct", "throughput",
                          "commit_p50", "commit_p99", "causes"):
                assert field in obj, f"line {n}: window missing {field!r}"
            assert obj["t1"] > obj["t0"], f"line {n}: empty window span"
            assert obj["starts"] >= obj["commits"] + obj["aborts"], \
                f"line {n}: starts < commits + aborts"
            assert sum(obj["causes"].values()) == obj["aborts"], \
                f"line {n}: cause mix does not sum to aborts"
            windows.append((obj["run"], obj))
        elif kind == "hot_site":
            assert runs, f"line {n}: hot_site before any run line"
            for field in ("rank", "addr", "orec", "total", "edges",
                          "top_cause", "causes"):
                assert field in obj, f"line {n}: hot_site missing {field!r}"
            assert obj["total"] > 0, f"line {n}: empty hot site recorded"
            hot_sites.append((obj["run"], obj))
        else:
            raise AssertionError(f"line {n}: unknown type {kind!r}")

assert runs, "no run lines emitted"

# Declared counts must match what each run actually carries, windows must
# be strictly ordered, and hot sites ranked 1..N by descending total.
for run in runs:
    label = run["label"]
    w = [o for (r, o) in windows if r == label]
    h = [o for (r, o) in hot_sites if r == label]
    assert len(w) == run["windows"], \
        f"{label}: declared {run['windows']} windows, found {len(w)}"
    assert len(h) == run["hot_sites"], \
        f"{label}: declared {run['hot_sites']} hot sites, found {len(h)}"
    idx = [o["window"] for o in w]
    assert idx == sorted(idx) and len(set(idx)) == len(idx), \
        f"{label}: window indices not strictly increasing"
    assert [o["rank"] for o in h] == list(range(1, len(h) + 1)), \
        f"{label}: hot-site ranks not 1..N"
    totals = [o["total"] for o in h]
    assert totals == sorted(totals, reverse=True), \
        f"{label}: hot sites not ranked by descending total"

assert any(r["windows"] > 0 for r in runs), "no run produced any window"
print(f"OK: {len(runs)} runs, {len(windows)} windows, "
      f"{len(hot_sites)} hot sites")
EOF

echo "=== hot-site sanity in bench summary ==="
python3 - "${summary_json}" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

assert doc["units"] == "ticks", "sim-mode bench must report tick units"
checked = 0
for series in doc["series"]:
    for p in series["points"]:
        if p["aborts"] == 0:
            continue  # cgl never aborts; its map stays empty by design
        sites = p["hot_sites"]
        assert sites, (
            f"{series['label']}/{p['threads']}t aborted "
            f"{p['aborts']} times but ranked no hot site")
        totals = [s["total"] for s in sites]
        assert totals == sorted(totals, reverse=True), \
            f"{series['label']}/{p['threads']}t: ranking not descending"
        checked += 1
assert checked > 0, "no contended point found (rig produced no aborts)"
print(f"OK: hot-site rankings present on {checked} contended points")
EOF

echo "=== tm_top exit-status contract ==="
"${build_dir}/examples/tm_top" --in "${metrics_jsonl}" \
    > "${build_dir}/tm_top.out"
test -s "${build_dir}/tm_top.out"
head -n 4 "${build_dir}/tm_top.out"

rc=0; "${build_dir}/examples/tm_top" --in "${build_dir}/no_such.jsonl" \
    2>/dev/null || rc=$?
[ "${rc}" -eq 2 ] || { echo "missing file: want exit 2, got ${rc}"; exit 1; }

rc=0; "${build_dir}/examples/tm_top" 2>/dev/null || rc=$?
[ "${rc}" -eq 2 ] || { echo "missing --in: want exit 2, got ${rc}"; exit 1; }

echo '{"type":"window","window":0}' > "${build_dir}/invalid_metrics.jsonl"
rc=0; "${build_dir}/examples/tm_top" --in "${build_dir}/invalid_metrics.jsonl" \
    2>/dev/null || rc=$?
[ "${rc}" -eq 1 ] || { echo "invalid file: want exit 1, got ${rc}"; exit 1; }

echo "=== metrics smoke passed ==="
