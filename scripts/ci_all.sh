#!/usr/bin/env bash
# One-command PR gate: chains every CI stage in cheapest-first order so a
# broken build fails in seconds, not after the perf suite.
#
#   1. tier-1 ctest        (Debug build: functional + conformance suites,
#                           including the adversarial-schedule litmus suite)
#   2. ci_lint.sh          (clang-tidy over src/, skipped if not installed)
#   3. ci_sanitize.sh      (ASan/UBSan over the full suite)
#   4. ci_tsan.sh          (TSan over the real-thread tests; self-skipping
#                           when the toolchain has no TSan runtime)
#   5. ci_trace_smoke.sh   (SEMSTM_TRACE build + trace pipeline smoke,
#                           including drop-free trace-ring accounting)
#   6. ci_metrics_smoke.sh (windowed metrics + hot-site pipeline: JSON-lines
#                           schema, tm_top exit-status contract)
#   7. ci_perf_smoke.sh    (Release rebuild vs committed perf baselines)
#   8. ci_scale_smoke.sh   (real-thread commit-path scaling gate at 1/2/4
#                           threads; self-skipping on hosts with <4 cores —
#                           runs last so it can reuse build-bench from 7)
#
# Usage: scripts/ci_all.sh
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc)"

echo "=== [1/8] build + tier-1 ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j "${jobs}" >/dev/null
ctest --test-dir build --output-on-failure

echo "=== [2/8] static analysis ==="
scripts/ci_lint.sh

echo "=== [3/8] address sanitizer ==="
scripts/ci_sanitize.sh

echo "=== [4/8] thread sanitizer ==="
scripts/ci_tsan.sh

echo "=== [5/8] trace smoke ==="
scripts/ci_trace_smoke.sh

echo "=== [6/8] metrics smoke ==="
scripts/ci_metrics_smoke.sh

echo "=== [7/8] perf smoke ==="
scripts/ci_perf_smoke.sh

echo "=== [8/8] real-thread scaling smoke ==="
scripts/ci_scale_smoke.sh

echo "ci_all: all stages passed"
