#!/usr/bin/env bash
# One-command PR gate: chains every CI stage in cheapest-first order so a
# broken build fails in seconds, not after the perf suite.
#
#   1. tier-1 ctest        (Debug build: functional + conformance suites)
#   2. ci_sanitize.sh      (ASan/UBSan + TSan test passes)
#   3. ci_trace_smoke.sh   (SEMSTM_TRACE build + trace pipeline smoke)
#   4. ci_perf_smoke.sh    (Release rebuild vs committed perf baselines)
#
# Usage: scripts/ci_all.sh
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc)"

echo "=== [1/4] build + tier-1 ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j "${jobs}" >/dev/null
ctest --test-dir build --output-on-failure

echo "=== [2/4] sanitizers ==="
scripts/ci_sanitize.sh

echo "=== [3/4] trace smoke ==="
scripts/ci_trace_smoke.sh

echo "=== [4/4] perf smoke ==="
scripts/ci_perf_smoke.sh

echo "ci_all: all stages passed"
