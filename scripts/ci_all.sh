#!/usr/bin/env bash
# One-command PR gate: chains every CI stage in cheapest-first order so a
# broken build fails in seconds, not after the perf suite.
#
#   1. tier-1 ctest        (Debug build: functional + conformance suites)
#   2. ci_lint.sh          (clang-tidy over src/, skipped if not installed)
#   3. ci_sanitize.sh      (ASan/UBSan + TSan test passes)
#   4. ci_trace_smoke.sh   (SEMSTM_TRACE build + trace pipeline smoke)
#   5. ci_perf_smoke.sh    (Release rebuild vs committed perf baselines)
#
# Usage: scripts/ci_all.sh
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc)"

echo "=== [1/5] build + tier-1 ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j "${jobs}" >/dev/null
ctest --test-dir build --output-on-failure

echo "=== [2/5] static analysis ==="
scripts/ci_lint.sh

echo "=== [3/5] sanitizers ==="
scripts/ci_sanitize.sh

echo "=== [4/5] trace smoke ==="
scripts/ci_trace_smoke.sh

echo "=== [5/5] perf smoke ==="
scripts/ci_perf_smoke.sh

echo "ci_all: all stages passed"
