#!/usr/bin/env bash
# TSan CI stage: a fresh -fsanitize=thread build run over the real-thread
# tests only. TSan cannot follow the simulator's ucontext fiber switches
# (it sees one OS thread jumping between stacks and reports false races),
# so the run is filtered to the `_real`-suffixed tests — the litmus and
# stress bodies that run on OS threads — plus the real-thread livelock /
# serial-irrevocable fallback test. These exercise the actual C++11
# memory-model code (acquire/release pairs, the relaxed loads documented
# in DESIGN.md §4.14); interleaving-level bugs are the fiber litmus
# suite's job (tests/test_litmus.cpp).
#
# Skips gracefully (exit 0) when the toolchain cannot produce a working
# ThreadSanitizer binary, so ci_all.sh stays usable on containers that
# ship a compiler without the TSan runtime.
#
# Usage: scripts/ci_tsan.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

# Probe: the toolchain must both LINK and RUN a TSan binary (some images
# have the compiler flag but no libtsan, others can link but the runtime
# aborts under the container's kernel/ASLR settings).
probe_dir="$(mktemp -d)"
trap 'rm -rf "${probe_dir}"' EXIT
cat > "${probe_dir}/probe.cpp" <<'EOF'
#include <thread>
int main() {
  std::thread t([] {});
  t.join();
  return 0;
}
EOF
if ! c++ -std=c++20 -fsanitize=thread -o "${probe_dir}/probe" \
     "${probe_dir}/probe.cpp" >/dev/null 2>&1 ||
   ! "${probe_dir}/probe" >/dev/null 2>&1; then
  echo "ci_tsan: toolchain cannot build/run TSan binaries — skipping stage"
  exit 0
fi

echo "=== SEMSTM_SANITIZE=thread ==="
cmake -B build-tsan -S . -DSEMSTM_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "${jobs}"
# halt_on_error so a TSan report fails the suite instead of scrolling by.
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-tsan --output-on-failure -j "${jobs}" \
        -R '_real|LivelockFallbackReal'

echo "=== TSan CI passed ==="
