#!/usr/bin/env bash
# ASan/UBSan CI: one fresh build driven by the SEMSTM_SANITIZE CMake option,
# run over the FULL test suite — simulator fibers included, since the
# scheduler annotates every stack switch with the
# __sanitizer_*_switch_fiber API, so ASan tracks fiber stacks.
#
# The ThreadSanitizer pass lives in scripts/ci_tsan.sh (it needs a
# different test filter and an availability probe).
#
# Usage: scripts/ci_sanitize.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

echo "=== SEMSTM_SANITIZE=address ==="
cmake -B build-asan -S . -DSEMSTM_SANITIZE=address \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j "${jobs}"
ctest --test-dir build-asan --output-on-failure -j "${jobs}"

echo "=== sanitizer CI passed ==="
