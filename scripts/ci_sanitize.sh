#!/usr/bin/env bash
# Sanitizer CI: two fresh builds driven by the SEMSTM_SANITIZE CMake option.
#
#   1. address: ASan + UBSan over the full test suite (simulator fibers
#      included — the scheduler annotates every stack switch with the
#      __sanitizer_*_switch_fiber API, so ASan tracks fiber stacks).
#   2. thread: TSan over the real-thread tests only. TSan cannot follow the
#      simulator's ucontext fiber switches (it sees one OS thread jumping
#      between stacks and reports false races), so the run is filtered to
#      the `_real`-suffixed stress tests and the real-thread livelock /
#      serial-irrevocable fallback test — the code paths where genuine
#      data races could hide.
#
# Usage: scripts/ci_sanitize.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

run_variant() {
  local preset="$1" build_dir="$2"
  shift 2
  echo "=== SEMSTM_SANITIZE=${preset} ==="
  cmake -B "${build_dir}" -S . -DSEMSTM_SANITIZE="${preset}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "${build_dir}" -j "${jobs}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" "$@"
}

run_variant address build-asan
# halt_on_error so a TSan report fails the suite instead of scrolling by.
TSAN_OPTIONS="halt_on_error=1" \
  run_variant thread build-tsan -R '_real|LivelockFallbackReal'

echo "=== sanitizer CI passed ==="
