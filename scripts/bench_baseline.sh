#!/usr/bin/env bash
# Produce the committed performance baselines:
#
#   BENCH_micro.json  — google-benchmark JSON from bench/micro_ops
#                       (wall-clock per-op costs of the hot paths)
#   BENCH_fig1.json   — one merged document with the "# JSON" summary of
#                       every fig1 benchmark in deterministic sim mode
#                       (virtual-tick metrics: load-independent, so CI can
#                       compare them tightly)
#
# Run from a quiet machine and commit the two files whenever a PR
# intentionally moves performance. scripts/ci_perf_smoke.sh compares a
# fresh run against these baselines.
#
# Usage: scripts/bench_baseline.sh [outdir]   (default: repo root)
set -euo pipefail

cd "$(dirname "$0")/.."
outdir="${1:-.}"
build_dir=build-bench
jobs="$(nproc)"

# ASLR randomizes the address-hashed orec distribution run-to-run;
# disable it when the tool exists so numbers are reproducible.
run_stable() {
    if command -v setarch >/dev/null 2>&1 && setarch "$(uname -m)" -R true 2>/dev/null; then
        setarch "$(uname -m)" -R "$@"
    else
        "$@"
    fi
}

echo "=== Release build ==="
cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${build_dir}" -j "${jobs}" --target micro_ops \
    fig1_bank fig1_hashtable fig1_lru fig1_kmeans \
    fig1_vacation fig1_labyrinth fig1_yada >/dev/null

echo "=== micro_ops -> ${outdir}/BENCH_micro.json ==="
run_stable "${build_dir}/bench/micro_ops" \
    --json-out="${outdir}/BENCH_micro.json" \
    --benchmark_min_time=0.2 >/dev/null

echo "=== fig1 suite (sim mode) -> ${outdir}/BENCH_fig1.json ==="
tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT
figures=(bank hashtable lru kmeans vacation labyrinth yada)
for fig in "${figures[@]}"; do
    echo "  fig1_${fig}"
    run_stable "${build_dir}/bench/fig1_${fig}" \
        --threads 1,2,4 --ops 2000 \
        --json-out "${tmpdir}/${fig}.json" >/dev/null
done

{
    printf '{"schema":"semstm-fig1-baseline-v1","figures":[\n'
    first=1
    for fig in "${figures[@]}"; do
        [ "${first}" = 1 ] || printf ',\n'
        first=0
        # each per-figure file is a single JSON object on one line
        tr -d '\n' < "${tmpdir}/${fig}.json"
    done
    printf '\n]}\n'
} > "${outdir}/BENCH_fig1.json"

python3 -c "import json,sys; json.load(open(sys.argv[1])); json.load(open(sys.argv[2]))" \
    "${outdir}/BENCH_micro.json" "${outdir}/BENCH_fig1.json"
echo "baselines written: ${outdir}/BENCH_micro.json ${outdir}/BENCH_fig1.json"
