#!/usr/bin/env bash
# Perf-regression smoke: rebuild Release, regenerate both baselines into a
# temp dir, and compare against the committed BENCH_micro.json /
# BENCH_fig1.json. Fails (exit 1) only on *gross* regressions:
#
#   micro_ops   wall-clock cpu_time per benchmark, threshold 50% — the
#               suite runs on shared CI hosts, so only a blowup (an
#               accidental O(reads) validation loop, a lost fast path)
#               should trip it, not scheduler noise.
#   fig1 suite  sim-mode commits/Mtick per (figure, series, threads),
#               threshold 30% — virtual ticks are deterministic and
#               load-independent, so anything beyond small cost-model
#               drift is a real hot-path regression.
#   barriers    executed-TM-barrier counters (tm_*_per_op) on the
#               BM_TmirKernelBarriers family, gated EXACTLY: the workloads
#               pin constant control-flow paths, so the counters are
#               deterministic integers and any increase means a pass
#               reintroduced a barrier — a regression nanosecond noise
#               would hide.
#
# When a PR moves performance *intentionally*, regenerate the baselines
# with scripts/bench_baseline.sh and commit them alongside the change.
#
# Usage: scripts/ci_perf_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

for f in BENCH_micro.json BENCH_fig1.json; do
    if [ ! -f "$f" ]; then
        echo "error: committed baseline $f missing (run scripts/bench_baseline.sh)" >&2
        exit 1
    fi
done

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

scripts/bench_baseline.sh "${tmpdir}"

echo "=== compare against committed baselines ==="
python3 - "${tmpdir}" <<'EOF'
import json
import sys

tmpdir = sys.argv[1]
failures = []

# --- micro_ops: google-benchmark JSON, keyed by benchmark name ---------
MICRO_THRESHOLD = 0.50  # fresh may be up to 50% slower than baseline
# Real-thread scaling benches measure run_threads wall time, which depends
# on the host's core count: cross-topology comparison is meaningless, so
# their times are gated only when baseline and fresh ran on the same
# number of CPUs, and loosely even then (thread scheduling is noisy; the
# hard scaling gate is ci_scale_smoke.sh). Presence is always checked so
# the family cannot silently vanish from the suite.
REAL_PREFIX = "BM_RealThreadScaling"
REAL_THRESHOLD = 1.50
# Executed-barrier counters are deterministic (constant-path workloads,
# single-threaded so no aborted attempts): gate them exactly, not by
# threshold. A fresh count above baseline means a barrier came back.
BARRIER_PREFIX = "BM_TmirKernelBarriers"
COUNTER_KEYS = ("tm_loads_per_op", "tm_stores_per_op", "tm_cmps_per_op",
                "tm_incs_per_op", "tm_barriers_per_op")

def micro_times(path):
    with open(path) as f:
        doc = json.load(f)
    times, real, barriers = {}, {}, {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        if b["name"].startswith(REAL_PREFIX):
            real[b["name"]] = float(b["real_time"])
            continue
        times[b["name"]] = float(b["cpu_time"])
        if b["name"].startswith(BARRIER_PREFIX):
            barriers[b["name"]] = {k: b[k] for k in COUNTER_KEYS if k in b}
    return times, real, barriers, doc.get("context", {}).get("num_cpus")

base, base_real, base_barriers, base_cpus = micro_times("BENCH_micro.json")
fresh, fresh_real, fresh_barriers, fresh_cpus = (
    micro_times(f"{tmpdir}/BENCH_micro.json"))
for name, t0 in sorted(base.items()):
    t1 = fresh.get(name)
    if t1 is None:
        failures.append(f"micro: benchmark disappeared: {name}")
        continue
    if t0 > 0 and (t1 - t0) / t0 > MICRO_THRESHOLD:
        failures.append(
            f"micro: {name}: cpu_time {t0:.1f} -> {t1:.1f} ns "
            f"(+{100*(t1-t0)/t0:.0f}% > {100*MICRO_THRESHOLD:.0f}%)")
if not base_real:
    failures.append("micro: baseline has no real-thread scaling benchmarks "
                    "(regenerate with scripts/bench_baseline.sh)")
for name, t0 in sorted(base_real.items()):
    t1 = fresh_real.get(name)
    if t1 is None:
        failures.append(f"micro: real-thread benchmark disappeared: {name}")
        continue
    if (base_cpus == fresh_cpus and t0 > 0
            and (t1 - t0) / t0 > REAL_THRESHOLD):
        failures.append(
            f"micro: {name}: real_time {t0:.1f} -> {t1:.1f} "
            f"(+{100*(t1-t0)/t0:.0f}% > {100*REAL_THRESHOLD:.0f}% on "
            f"identical {base_cpus}-cpu topology)")

# --- tmir executed-barrier counters: exact gate ------------------------
if not base_barriers:
    failures.append("micro: baseline has no tmir barrier benchmarks "
                    "(regenerate with scripts/bench_baseline.sh)")
for name, c0 in sorted(base_barriers.items()):
    c1 = fresh_barriers.get(name)
    if c1 is None:
        # The disappearance is already reported by the cpu_time sweep.
        continue
    for key in COUNTER_KEYS:
        v0, v1 = c0.get(key), c1.get(key)
        if v0 is None:
            failures.append(
                f"micro: {name}: baseline lacks counter {key} "
                f"(regenerate with scripts/bench_baseline.sh)")
        elif v1 is None:
            failures.append(f"micro: {name}: counter {key} missing")
        elif v1 > v0:
            failures.append(
                f"micro: {name}: {key} regressed {v0:g} -> {v1:g} "
                f"(barrier counts gate exactly)")

# --- fig1: deterministic sim throughput per (figure, series, threads) --
FIG_THRESHOLD = 0.30  # fresh throughput may be at most 30% below baseline

def fig_points(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for fig in doc["figures"]:
        # Schema guard for the commit-scalability fields: every figure
        # carries its execution mode, every point its scaling factor and
        # the GV4/epoch counters, in both execution modes.
        if "mode" not in fig:
            failures.append(f"fig1: {path}: figure missing 'mode' field")
        for series in fig["series"]:
            for p in series["points"]:
                for field in ("speedup", "clock_adoptions",
                              "epoch_retires", "epoch_reclaims"):
                    if field not in p:
                        failures.append(
                            f"fig1: {path}: point missing '{field}' field")
                key = (fig["figure"], series["label"], p["threads"])
                out[key] = float(p["metric"])
    return out

base = fig_points("BENCH_fig1.json")
fresh = fig_points(f"{tmpdir}/BENCH_fig1.json")
for key, m0 in sorted(base.items()):
    m1 = fresh.get(key)
    if m1 is None:
        failures.append(f"fig1: point disappeared: {key}")
        continue
    if m0 > 0 and (m0 - m1) / m0 > FIG_THRESHOLD:
        failures.append(
            f"fig1: {key}: throughput {m0:.1f} -> {m1:.1f} commits/Mtick "
            f"(-{100*(m0-m1)/m0:.0f}% > {100*FIG_THRESHOLD:.0f}%)")

if failures:
    print("PERF SMOKE FAILED:")
    for f in failures:
        print("  " + f)
    sys.exit(1)
print(f"perf smoke OK: {len(fresh)} fig1 points and micro suite within thresholds")
EOF
