#!/usr/bin/env bash
# Observability CI: a fresh -DSEMSTM_TRACE=ON build (the gate is OFF by
# default, so the regular suite never exercises the recording paths), the
# obs unit suite — whose end-to-end test only runs under the gate — and a
# traced benchmark whose Chrome JSON output is validated: it must parse,
# carry at least one event for every logical thread of a run, and attribute
# every abort to a real cause (never "unknown"). The bench's own JSON
# summary is checked too: any point with trace_dropped != 0 fails the stage
# (ring exhaustion means the trace under validation is incomplete).
#
# Usage: scripts/ci_trace_smoke.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"
build_dir=build-trace
trace_json="${build_dir}/bank_trace.json"

echo "=== SEMSTM_TRACE=ON build ==="
cmake -B "${build_dir}" -S . -DSEMSTM_TRACE=ON
cmake --build "${build_dir}" -j "${jobs}" --target test_obs fig1_bank

echo "=== obs unit suite (traced) ==="
"${build_dir}/tests/test_obs"

echo "=== traced benchmark run ==="
"${build_dir}/bench/fig1_bank" --threads 2,4 --ops 300 \
    --trace "${trace_json}" --json-out "${build_dir}/bank_trace_summary.json" \
    > "${build_dir}/bank_trace.out"
grep '^# trace:' "${build_dir}/bank_trace.out"

echo "=== trace-drop accounting ==="
python3 - "${build_dir}/bank_trace_summary.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

points = [p for s in doc["series"] for p in s["points"]]
assert points, "bench summary contains no points"
dropped = [(s["label"], p["threads"], p["trace_dropped"])
           for s in doc["series"] for p in s["points"]
           if p["trace_dropped"] != 0]
assert not dropped, f"trace ring dropped events: {dropped}"
print(f"OK: trace_dropped == 0 across {len(points)} points")
EOF

echo "=== trace JSON validation ==="
python3 - "${trace_json}" <<'EOF'
import collections
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)  # must parse as strict JSON

events = doc["traceEvents"]
assert events, "trace contains no events"

# Thread coverage: every (pid, tid) announced by a thread_name metadata
# event must have at least one real event.
threads = set()
per_thread = collections.Counter()
aborts = 0
for e in events:
    key = (e["pid"], e["tid"])
    if e["ph"] == "M":
        if e["name"] == "thread_name":
            threads.add(key)
        continue
    per_thread[key] += 1
    if e["name"] == "abort":
        aborts += 1
        cause = e["args"]["cause"]
        assert cause != "unknown", f"unattributed abort: {e}"

assert threads, "no thread_name metadata emitted"
missing = [t for t in sorted(threads) if per_thread[t] == 0]
assert not missing, f"threads with zero events: {missing}"

print(f"OK: {sum(per_thread.values())} events over {len(threads)} threads, "
      f"{aborts} aborts, all attributed")
EOF

echo "=== trace smoke passed ==="
