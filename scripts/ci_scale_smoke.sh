#!/usr/bin/env bash
# Real-thread scaling gate (§4.16): the commit-path refactor (GV4 version
# clock, announce-slot serial gate, SpinWait escalation) must actually buy
# parallel throughput, not just preserve sim semantics. Runs the
# BM_RealThreadScaling micro benches at 1/2/4 OS threads and fails when
# 4-thread read-dominated throughput for NOrec or TL2 lands below 2x the
# 1-thread rate — the regression signature of a commit path that has
# re-grown a global serialization point.
#
# Mixed-workload (25% writers) ratios are printed for the record but not
# gated: genuine write conflicts make their scaling host- and
# allocator-dependent.
#
# Self-skips (exit 0) with a message on hosts with fewer than 4 cores,
# mirroring scripts/ci_tsan.sh: a 1-core container can run the benches but
# cannot measure parallel speedup, so a gate there would only report
# scheduler noise.
#
# Usage: scripts/ci_scale_smoke.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

cores="$(nproc)"
if [ "${cores}" -lt 4 ]; then
    echo "ci_scale_smoke: host has ${cores} core(s) < 4 — real-thread" \
         "scaling is not measurable here, skipping stage"
    exit 0
fi

echo "=== Release build (build-bench) ==="
cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-bench -j "${jobs}" --target micro_ops >/dev/null

tmpjson="$(mktemp)"
trap 'rm -f "${tmpjson}"' EXIT

echo "=== BM_RealThreadScaling at 1/2/4 threads ==="
./build-bench/bench/micro_ops \
    --mode=real --benchmark_filter='BM_RealThreadScaling' \
    --benchmark_min_time=0.2 --json-out="${tmpjson}" >/dev/null

python3 - "${tmpjson}" <<'EOF'
import json
import sys

MIN_SPEEDUP = 2.0  # 4t read-dominated must be >= 2x 1t

with open(sys.argv[1]) as f:
    doc = json.load(f)

# Labels are "algo/mix/Nt" (set by the benchmark itself); rate is the
# run_threads-measured items_per_second, so harness overhead is excluded.
rates = {}
for b in doc.get("benchmarks", []):
    if b.get("run_type", "iteration") != "iteration":
        continue
    if b.get("label"):
        rates[b["label"]] = float(b["items_per_second"])

failures = []
for algo in ("norec", "tl2"):
    one = rates.get(f"{algo}/reads/1t")
    four = rates.get(f"{algo}/reads/4t")
    if not one or not four:
        failures.append(f"missing read-dominated scaling points for {algo}")
        continue
    ratio = four / one
    print(f"  {algo} reads: 1t={one:.3g} ops/s, 4t={four:.3g} ops/s "
          f"-> {ratio:.2f}x")
    if ratio < MIN_SPEEDUP:
        failures.append(
            f"{algo}: 4-thread read throughput is only {ratio:.2f}x the "
            f"1-thread rate (< {MIN_SPEEDUP:.1f}x) — the commit path has "
            f"re-grown a serialization point")

for algo in ("norec", "tl2"):  # informational only
    one = rates.get(f"{algo}/mixed/1t")
    four = rates.get(f"{algo}/mixed/4t")
    if one and four:
        print(f"  {algo} mixed: 1t={one:.3g} ops/s, 4t={four:.3g} ops/s "
              f"-> {four/one:.2f}x (not gated)")

if failures:
    print("SCALE SMOKE FAILED:")
    for f in failures:
        print("  " + f)
    sys.exit(1)
print("scale smoke OK")
EOF

echo "=== scale smoke passed ==="
