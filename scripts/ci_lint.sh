#!/usr/bin/env bash
# clang-tidy gate over the library sources, driven by the .clang-tidy
# profile at the repo root and the compile database the normal build
# exports (CMAKE_EXPORT_COMPILE_COMMANDS is always on).
#
# clang-tidy is optional tooling: containers without it must not fail CI,
# so the stage degrades to a loud skip instead of installing anything.
#
# Usage: scripts/ci_lint.sh [extra clang-tidy args...]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc)"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "ci_lint: clang-tidy not installed; skipping (stage passes vacuously)"
  exit 0
fi

# The compile database comes from the regular build tree; configure if it
# is not there yet (first run on a fresh checkout).
if [[ ! -f build/compile_commands.json ]]; then
  cmake -B build -S . >/dev/null
fi

mapfile -t sources < <(git ls-files 'src/**/*.cpp' 'src/*.cpp')
if [[ ${#sources[@]} -eq 0 ]]; then
  echo "ci_lint: no sources found" >&2
  exit 1
fi

echo "ci_lint: clang-tidy over ${#sources[@]} files (${jobs} jobs)"
printf '%s\n' "${sources[@]}" |
  xargs -P "${jobs}" -n 4 clang-tidy -p build --quiet "$@"
echo "ci_lint: clean"
