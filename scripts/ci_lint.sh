#!/usr/bin/env bash
# Static-analysis gate, two stages:
#
#   1. tmir_lint — the repo's own IR pipeline checker (verify + tm_lint
#      over every built-in kernel, baseline and alias pipelines). Always
#      runs: it is built from this tree and needs no external tooling.
#      Any diagnostic fails the stage (tmir_lint exits 2), and the --json
#      report must parse.
#
#   2. clang-tidy over the library sources, driven by the .clang-tidy
#      profile at the repo root and the compile database the normal build
#      exports (CMAKE_EXPORT_COMPILE_COMMANDS is always on). clang-tidy
#      is optional tooling: containers without it must not fail CI, so
#      this stage degrades to a loud skip instead of installing anything.
#
# Usage: scripts/ci_lint.sh [extra clang-tidy args...]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc)"

# --- stage 1: tmir_lint ----------------------------------------------------

if [[ ! -x build/examples/tmir_lint ]]; then
  echo "ci_lint: building tmir_lint"
  cmake -B build -S . >/dev/null
  cmake --build build --target tmir_lint -j "${jobs}" >/dev/null
fi

echo "ci_lint: tmir_lint over all built-in kernels"
build/examples/tmir_lint

# The machine-readable report CI consumers parse must stay valid JSON.
build/examples/tmir_lint --json | python3 -c 'import json,sys; json.load(sys.stdin)'
echo "ci_lint: tmir_lint clean (text + json)"

# --- stage 2: clang-tidy ---------------------------------------------------

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "ci_lint: clang-tidy not installed; skipping (stage passes vacuously)"
  exit 0
fi

# The compile database comes from the regular build tree; configure if it
# is not there yet (first run on a fresh checkout).
if [[ ! -f build/compile_commands.json ]]; then
  cmake -B build -S . >/dev/null
fi

mapfile -t sources < <(git ls-files 'src/**/*.cpp' 'src/*.cpp')
if [[ ${#sources[@]} -eq 0 ]]; then
  echo "ci_lint: no sources found" >&2
  exit 1
fi

echo "ci_lint: clang-tidy over ${#sources[@]} files (${jobs} jobs)"
printf '%s\n' "${sources[@]}" |
  xargs -P "${jobs}" -n 4 clang-tidy -p build --quiet "$@"
echo "ci_lint: clean"
