// Figure 2: the GCC-integration experiments (§7.2).
//
// The benchmark bodies are tmir kernels executed by the transactional
// interpreter with full instrumentation (GCC speculates every read/write
// in a _transaction_atomic block, including locals), in three
// configurations mirroring the paper:
//   NOrec (GCC)        — unmarked IR (plain TM loads/stores) on NOrec
//   NOrec Modified-GCC — tm_mark+tm_optimize IR on NOrec: the semantic
//                        ABI calls exist but delegate to plain reads and
//                        writes inside the algorithm
//   S-NOrec (GCC)      — tm_mark+tm_optimize IR on S-NOrec
//
// Panels: 2a/2b Hashtable (throughput + aborts), 2c/2d Vacation
// (completion time + aborts).
#include <array>

#include "bench/figure_common.hpp"
#include "containers/tarray.hpp"
#include "core/atomically.hpp"
#include "containers/trbtree.hpp"
#include "tmir/interp.hpp"
#include "tmir/kernels.hpp"
#include "tmir/passes.hpp"

namespace semstm::bench {
namespace {

constexpr std::size_t kMaxLocals = 4;

/// Full-instrumentation execution (the GCC configuration): locals routed
/// through TM barriers via a shadow that outlives the transaction.
tmir::InterpOptions gcc_mode(tword* shadow) {
  return tmir::InterpOptions{.instrument_locals = true,
                             .local_shadow = shadow,
                             .max_steps = 1u << 22};
}

/// Open-addressing hashtable driven entirely through interpreted IR.
class IrHashWorkload final : public Workload {
 public:
  static constexpr std::size_t kCap = 4096;
  static constexpr std::size_t kKeySpace = 3584;

  explicit IrHashWorkload(bool marked)
      : probe_(tmir::build_probe_kernel()),
        insert_(tmir::build_insert_kernel()),
        remove_(tmir::build_remove_kernel()),
        states_(kCap, 0),
        keys_(kCap, 0) {
    if (marked) {
      for (tmir::Function* f : {&probe_, &insert_, &remove_}) {
        tmir::pass_tm_mark(*f);
        tmir::pass_tm_optimize(*f);
      }
    }
  }

  void setup(Rng& rng) override {
    // Non-transactional prefill to ~85% load.
    std::size_t placed = 0;
    while (placed < kCap * 85 / 100) {
      const auto key = static_cast<std::int64_t>(1 + rng.below(kKeySpace));
      std::size_t i = hash(key);
      for (std::size_t step = 0; step < kCap; ++step) {
        const std::int64_t s = states_[i].unsafe_get();
        if (s == 0) {  // FREE
          states_[i].unsafe_set(1);
          keys_[i].unsafe_set(key);
          ++placed;
          break;
        }
        if (keys_[i].unsafe_get() == key && s == 1) break;  // duplicate
        i = (i + 1) & (kCap - 1);
      }
    }
  }

  void op(unsigned, Rng& rng) override {
    struct Planned {
      word_t key;
      unsigned kind;
    };
    std::array<Planned, 10> plan;
    for (auto& p : plan) {
      p.key = 1 + rng.below(kKeySpace);
      const auto roll = rng.below(100);
      p.kind = roll < 20 ? 0u : roll < 40 ? 1u : 2u;  // insert/remove/probe
    }
    tword shadow[kMaxLocals];
    atomically([&](Tx& tx) {
      for (const Planned& p : plan) {
        const std::array<word_t, 6> args{
            to_word(states_[0].word()), to_word(keys_[0].word()),
            kCap - 1,                   hash(static_cast<std::int64_t>(p.key)),
            p.key,                      kCap};
        const tmir::Function& f =
            p.kind == 0 ? insert_ : p.kind == 1 ? remove_ : probe_;
        (void)tmir::execute(tx, f, args.data(), args.size(),
                            gcc_mode(shadow));
      }
    });
  }

 private:
  static std::size_t hash(std::int64_t key) noexcept {
    auto h = static_cast<std::uint64_t>(key);
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h) & (kCap - 1);
  }

  tmir::Function probe_, insert_, remove_;
  TArray<std::int64_t> states_;
  TArray<std::int64_t> keys_;
};

/// Vacation's reservation profile: RB-tree lookups through the library
/// path (GCC instruments them as plain reads — exactly what its pass does
/// with STAMP's comparator-driven tree code) + the record-check/reserve
/// region as interpreted IR.
class IrVacationWorkload final : public Workload {
 public:
  static constexpr std::size_t kRelations = 256;

  explicit IrVacationWorkload(bool marked)
      : reserve_(tmir::build_reserve_kernel(4)),
        table_(2 * kRelations + 16),
        num_free_(kRelations, 100),
        price_(kRelations, 0) {
    if (marked) {
      tmir::pass_tm_mark(reserve_);
      tmir::pass_tm_optimize(reserve_);
    }
  }

  void setup(Rng& rng) override {
    for (std::size_t i = 0; i < kRelations; ++i) {
      price_[i].unsafe_set(rng.between(50, 500));
    }
    auto algo = make_algorithm("cgl");
    ThreadCtx ctx(algo->make_tx());
    CtxBinder bind(ctx);
    for (std::size_t id = 0; id < kRelations; ++id) {
      atomically([&](Tx& tx) {
        table_.insert(tx, static_cast<std::int64_t>(id),
                      static_cast<std::int64_t>(id));
      });
    }
  }

  void op(unsigned, Rng& rng) override {
    std::array<std::int64_t, 4> ids;
    for (auto& id : ids) {
      id = static_cast<std::int64_t>(rng.below(kRelations));
    }
    const bool update_profile = rng.percent(15);
    const std::int64_t new_price = rng.between(50, 500);
    tword shadow[kMaxLocals];
    atomically([&](Tx& tx) {
      std::array<word_t, 6> args{to_word(num_free_[0].word()),
                                 to_word(price_[0].word())};
      for (int q = 0; q < 4; ++q) {
        // Table lookup through the tree (plain instrumented reads).
        const auto rec = table_.find(tx, ids[static_cast<std::size_t>(q)]);
        args[2 + static_cast<std::size_t>(q)] =
            rec ? static_cast<word_t>(*rec) : 0;
      }
      if (update_profile) {
        price_[static_cast<std::size_t>(ids[0])].set(tx, new_price);
      } else {
        (void)tmir::execute(tx, reserve_, args.data(), args.size(),
                            gcc_mode(shadow));
      }
    });
  }

 private:
  tmir::Function reserve_;
  TRbMap table_;
  TArray<std::int64_t> num_free_;
  TArray<std::int64_t> price_;
};

}  // namespace
}  // namespace semstm::bench

int main(int argc, char** argv) {
  using namespace semstm;
  using namespace semstm::bench;
  Cli cli(argc, argv);

  const std::vector<AlgoConfig> gcc_series = {
      {"norec", false, "NOrec-GCC"},
      {"norec", true, "NOrec-Modified-GCC"},
      {"snorec", true, "S-NOrec-GCC"},
  };

  {
    FigureSpec spec;
    spec.name = "Figure 2a/2b: Hashtable (GCC path)";
    spec.metric = "throughput";
    spec.threads = {1, 2, 4, 8, 12, 16, 20, 24};
    spec.ops_per_thread = 200;
    spec.series = gcc_series;
    apply_cli(spec, cli);
    run_figure(spec, [](bool marked) {
      return std::make_unique<IrHashWorkload>(marked);
    });
  }
  {
    FigureSpec spec;
    spec.name = "Figure 2c/2d: Vacation (GCC path)";
    spec.metric = "time";
    spec.threads = {1, 2, 4, 8, 12, 16, 20, 24};
    spec.ops_per_thread = 4000;
    spec.fixed_total_work = true;
    spec.series = gcc_series;
    apply_cli(spec, cli);
    run_figure(spec, [](bool marked) {
      return std::make_unique<IrVacationWorkload>(marked);
    });
  }
  return 0;
}
