// Table 3 reproduction: average number of operations per transaction
// (Read / Write / Compare / Increment / Promote) for every benchmark, in
// base and semantic builds. The paper measured these with RSTM; we run
// each workload single-threaded under NOrec (base) / S-NOrec (semantic) —
// operation counts are algorithm-independent modulo promotions.
#include <cstdio>

#include "semstm.hpp"
#include "util/cli.hpp"
#include "workloads/driver.hpp"
#include "workloads/registry.hpp"

namespace {

struct Row {
  double reads, writes, compares, increments, promotes;
};

Row measure(const std::string& wl, bool semantic, std::uint64_t ops) {
  using namespace semstm;
  auto w = make_workload(wl, semantic);
  RunConfig cfg;
  cfg.algo = semantic ? "snorec" : "norec";
  cfg.mode = ExecMode::kSim;
  cfg.threads = 1;  // profile without contention, like the paper's table
  cfg.ops_per_thread = ops;
  cfg.seed = 42;
  const RunResult r = run_workload(cfg, *w);
  const auto txs = static_cast<double>(r.stats.commits);
  return Row{
      static_cast<double>(r.stats.reads) / txs,
      static_cast<double>(r.stats.writes) / txs,
      static_cast<double>(r.stats.compares + r.stats.compares2) / txs,
      static_cast<double>(r.stats.increments) / txs,
      static_cast<double>(r.stats.promotions) / txs,
  };
}

}  // namespace

int main(int argc, char** argv) {
  semstm::Cli cli(argc, argv);
  const auto ops = static_cast<std::uint64_t>(cli.get_int("ops", 400));

  std::printf("# Table 3: Average Number of Operations per Transaction\n");
  std::printf("# (columns: base | semantic, per workload)\n\n");
  std::printf("%-11s %9s %9s %9s %9s %9s %9s %9s %9s %9s %9s\n", "workload",
              "read_b", "write_b", "read_s", "write_s", "cmp_s", "inc_s",
              "promo_s", "cmp_b", "inc_b", "promo_b");

  for (const auto& wl : semstm::workload_names()) {
    const std::uint64_t n =
        (wl == "labyrinth" || wl == "labyrinth2") ? ops / 10 + 1 : ops;
    const Row base = measure(wl, false, n);
    const Row sem = measure(wl, true, n);
    std::printf(
        "%-11s %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f\n",
        wl.c_str(), base.reads, base.writes, sem.reads, sem.writes,
        sem.compares, sem.increments, sem.promotes, base.compares,
        base.increments, base.promotes);
  }
  std::printf(
      "\n# Paper shape check: hashtable/lru reads ~all become compares;\n"
      "# kmeans becomes pure increments; vacation keeps most reads and\n"
      "# promotes its increments; genome/intruder stay non-semantic.\n");
  return 0;
}
