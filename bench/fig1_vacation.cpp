// Figures 1i/1j: Vacation execution time and abort rate (fixed total work).
#include "bench/figure_common.hpp"
#include "workloads/vacation.hpp"

int main(int argc, char** argv) {
  using namespace semstm;
  Cli cli(argc, argv);
  bench::FigureSpec spec;
  spec.name = "Figure 1i/1j: Vacation (RSTM path)";
  spec.metric = "time";
  spec.threads = {1, 2, 4, 6, 8, 10, 12};
  spec.ops_per_thread = 6000;  // total client sessions
  spec.fixed_total_work = true;
  bench::apply_cli(spec, cli);
  bench::run_figure(spec, [](bool semantic) {
    return std::make_unique<VacationWorkload>(VacationWorkload::Params{},
                                              semantic);
  });
  return 0;
}
