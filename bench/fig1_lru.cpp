// Figures 1e/1f: LRU-Cache throughput and abort rate.
#include "bench/figure_common.hpp"
#include "workloads/lru_wl.hpp"

int main(int argc, char** argv) {
  using namespace semstm;
  Cli cli(argc, argv);
  bench::FigureSpec spec;
  spec.name = "Figure 1e/1f: LRU Cache (RSTM path)";
  spec.metric = "throughput";
  spec.threads = {1, 2, 4, 8, 12, 16, 20, 24};
  spec.ops_per_thread = 600;
  bench::apply_cli(spec, cli);
  bench::run_figure(spec, [](bool semantic) {
    return std::make_unique<LruWorkload>(LruWorkload::Params{}, semantic);
  });
  return 0;
}
