// Micro-benchmarks (google-benchmark): single-threaded latencies of the
// TM constructs per algorithm, and validation cost as a function of
// read-set size — the raw numbers behind the paper's overhead discussion
// (§4: "no considerable overhead of S-NOrec over NOrec"; S-TL2's
// compare-set validation "linear with respect to the size of the
// compare-set itself").
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "containers/tarray.hpp"
#include "sched/thread_runner.hpp"
#include "semstm.hpp"
#include "tmir/interp.hpp"
#include "tmir/kernels.hpp"
#include "tmir/passes.hpp"
#include "util/rng.hpp"

namespace {

using namespace semstm;

const char* algo_of(int idx) {
  static const char* names[] = {"cgl", "norec", "snorec", "tl2", "stl2"};
  return names[idx];
}

/// Run `body` under the dispatch tier selected by the benchmark's second
/// range argument (0 = virtual/type-erased, 1 = static/monomorphized), and
/// tag the label `algo/virtual` or `algo/static` so the two series are
/// separable in BENCH_micro.json. `body` is a generic lambda over the
/// dispatch tag: instantiated once with VirtualTag (tx_type = Tx) and once
/// per concrete core via dispatch_algorithm — the exact mechanism the
/// workload driver uses (DESIGN.md §4.12).
template <typename Body>
void run_dispatch_tier(benchmark::State& state, const char* name,
                       Body&& body) {
  if (state.range(1) != 0) {
    dispatch_algorithm(algo_id(name), body);
    state.SetLabel(std::string(name) + "/static");
  } else {
    body(VirtualTag{});
    state.SetLabel(std::string(name) + "/virtual");
  }
}

/// algo index 0-4 crossed with dispatch tier 0-1.
void algo_x_dispatch(benchmark::internal::Benchmark* b) {
  b->ArgsProduct({benchmark::CreateDenseRange(0, 4, /*step=*/1), {0, 1}});
}

struct Bound {
  std::unique_ptr<Algorithm> algo;
  std::unique_ptr<ThreadCtx> ctx;
  std::unique_ptr<CtxBinder> bind;

  explicit Bound(const std::string& name)
      : algo(make_algorithm(name)),
        ctx(std::make_unique<ThreadCtx>(algo->make_tx())),
        bind(std::make_unique<CtxBinder>(*ctx)) {}
};

void BM_ReadTx(benchmark::State& state) {
  const char* name = algo_of(static_cast<int>(state.range(0)));
  Bound b(name);
  TVar<long> x(7);
  run_dispatch_tier(state, name, [&](auto tag) {
    using TxT = typename decltype(tag)::tx_type;
    for (auto _ : state) {
      benchmark::DoNotOptimize(
          atomically<TxT>([&](TxT& tx) { return x.get(tx); }));
    }
  });
}
BENCHMARK(BM_ReadTx)->Apply(algo_x_dispatch);

void BM_WriteTx(benchmark::State& state) {
  const char* name = algo_of(static_cast<int>(state.range(0)));
  Bound b(name);
  TVar<long> x(0);
  long v = 0;
  run_dispatch_tier(state, name, [&](auto tag) {
    using TxT = typename decltype(tag)::tx_type;
    for (auto _ : state) {
      atomically<TxT>([&](TxT& tx) { x.set(tx, ++v); });
    }
  });
}
BENCHMARK(BM_WriteTx)->Apply(algo_x_dispatch);

void BM_CompareTx(benchmark::State& state) {
  const char* name = algo_of(static_cast<int>(state.range(0)));
  Bound b(name);
  TVar<long> x(7);
  run_dispatch_tier(state, name, [&](auto tag) {
    using TxT = typename decltype(tag)::tx_type;
    for (auto _ : state) {
      benchmark::DoNotOptimize(
          atomically<TxT>([&](TxT& tx) { return x.gt(tx, 0); }));
    }
  });
}
BENCHMARK(BM_CompareTx)->Apply(algo_x_dispatch);

void BM_IncrementTx(benchmark::State& state) {
  const char* name = algo_of(static_cast<int>(state.range(0)));
  Bound b(name);
  TVar<long> x(0);
  run_dispatch_tier(state, name, [&](auto tag) {
    using TxT = typename decltype(tag)::tx_type;
    for (auto _ : state) {
      atomically<TxT>([&](TxT& tx) { x.add(tx, 1); });
    }
  });
}
BENCHMARK(BM_IncrementTx)->Apply(algo_x_dispatch);

/// Cost of a writer commit as the read-set grows: NOrec-family validation
/// is linear in the read-set, TL2-family in the orec read-set.
template <int AlgoIdx>
void BM_CommitVsReadSetSize(benchmark::State& state) {
  Bound b(algo_of(AlgoIdx));
  const auto n = static_cast<std::size_t>(state.range(0));
  TArray<long> vars(n, 1);
  TVar<long> sink(0);
  for (auto _ : state) {
    atomically([&](Tx& tx) {
      long acc = 0;
      for (std::size_t i = 0; i < n; ++i) acc += vars[i].get(tx);
      sink.set(tx, acc);  // writer: forces commit-time work
    });
  }
  state.SetLabel(b.algo->name());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CommitVsReadSetSize<1>)->RangeMultiplier(4)->Range(4, 1024)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_CommitVsReadSetSize<3>)->RangeMultiplier(4)->Range(4, 1024)
    ->Complexity(benchmark::oN);

/// Compare-set semantic validation cost (S-variants) vs clause size.
template <int AlgoIdx>
void BM_CompareSetValidation(benchmark::State& state) {
  Bound b(algo_of(AlgoIdx));
  const auto n = static_cast<std::size_t>(state.range(0));
  TArray<long> vars(n, 5);
  TVar<long> sink(0);
  for (auto _ : state) {
    atomically([&](Tx& tx) {
      for (std::size_t i = 0; i < n; ++i) {
        benchmark::DoNotOptimize(vars[i].gt(tx, 0));
      }
      sink.set(tx, 1);
    });
  }
  state.SetLabel(b.algo->name());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CompareSetValidation<2>)->RangeMultiplier(4)->Range(4, 1024)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_CompareSetValidation<4>)->RangeMultiplier(4)->Range(4, 1024)
    ->Complexity(benchmark::oN);

// ---------------------------------------------------------------------------
// Real-thread commit scalability (§4.16): throughput of the GV4 clock +
// announce-slot gate commit path under genuine OS threads, at 1/2/4
// threads, read-dominated and mixed. scripts/ci_scale_smoke.sh compares
// the 4-thread items_per_second against 1-thread on >=4-core hosts.
// Skipped under --mode=sim (the micro binary never installs the fiber
// scheduler, so "sim" means "latency-only benchmarks").
// ---------------------------------------------------------------------------

constexpr std::size_t kScaleCells = 256;
constexpr std::uint64_t kScaleOpsPerThread = 2000;

void BM_RealThreadScaling(benchmark::State& state) {
  const char* name = algo_of(static_cast<int>(state.range(0)));
  const auto threads = static_cast<unsigned>(state.range(1));
  const bool mixed = state.range(2) != 0;
  auto algo = make_algorithm(name);
  TArray<long> cells(kScaleCells, 100);
  for (auto _ : state) {
    const sched::RealResult r = sched::run_threads(threads, [&](unsigned tid) {
      // Contexts are per-OS-thread: CtxBinder binds a thread-local, so it
      // must run on the worker, not be hoisted into the harness thread.
      ThreadCtx ctx(algo->make_tx());
      CtxBinder bind(ctx);
      Rng rng(0x5CA1AB1EULL + tid);
      for (std::uint64_t i = 0; i < kScaleOpsPerThread; ++i) {
        const auto a = static_cast<std::size_t>(rng.below(kScaleCells));
        if (mixed && rng.below(4) == 0) {  // 25% writers
          atomically([&](Tx& tx) { cells[a].add(tx, 1); });
        } else {
          benchmark::DoNotOptimize(
              atomically([&](Tx& tx) { return cells[a].get(tx); }));
        }
      }
    });
    state.SetIterationTime(r.seconds);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          threads * kScaleOpsPerThread);
  state.SetLabel(std::string(name) + (mixed ? "/mixed/" : "/reads/") +
                 std::to_string(threads) + "t");
}
BENCHMARK(BM_RealThreadScaling)
    ->ArgsProduct({{1, 3}, {1, 2, 4}, {0, 1}})  // norec, tl2
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/// Write-set lookup (read-after-write) cost as the write-set grows.
void BM_WriteSetLookup(benchmark::State& state) {
  Bound b("snorec");
  const auto n = static_cast<std::size_t>(state.range(0));
  TArray<long> vars(n, 0);
  for (auto _ : state) {
    atomically([&](Tx& tx) {
      for (std::size_t i = 0; i < n; ++i) vars[i].set(tx, 1);
      long acc = 0;
      for (std::size_t i = 0; i < n; ++i) acc += vars[i].get(tx);  // RAW hits
      benchmark::DoNotOptimize(acc);
    });
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_WriteSetLookup)->RangeMultiplier(4)->Range(4, 1024)
    ->Complexity(benchmark::oN);

// ---------------------------------------------------------------------------
// Executed-TM-barrier counts per kernel (DESIGN.md §4.17): each built-in
// tmir kernel runs raw and through the alias pipeline (tm_rbe + tm_mark +
// tm_optimize) under snorec, with InterpOptions::barriers tallying every
// barrier the interpreter actually issues. The workloads pin a constant
// control-flow path — probe/remove miss on an empty table, insert hits a
// pre-seeded duplicate, reserve's records are re-armed before every op,
// center_update is straight-line — so the per-op counters are exact
// integers, and scripts/ci_perf_smoke.sh gates on them *exactly*: a
// reintroduced barrier fails CI even when nanoseconds stay flat.
// ---------------------------------------------------------------------------

const char* tmir_kernel_name(int idx) {
  static const char* names[] = {"probe", "insert", "remove", "reserve",
                                "center_update"};
  return names[idx];
}

tmir::Function build_tmir_kernel(int idx) {
  switch (idx) {
    case 0: return tmir::build_probe_kernel();
    case 1: return tmir::build_insert_kernel();
    case 2: return tmir::build_remove_kernel();
    case 3: return tmir::build_reserve_kernel(4);
    default: return tmir::build_center_update_kernel(8);
  }
}

void BM_TmirKernelBarriers(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const bool optimized = state.range(1) != 0;
  Bound b("snorec");

  tmir::Function f = build_tmir_kernel(which);
  if (optimized) {
    tmir::pass_tm_rbe(f);
    tmir::pass_tm_mark(f);
    tmir::pass_tm_optimize(f);
  }

  // Shared state sized for the constant paths described above.
  constexpr std::size_t kCap = 16;
  constexpr unsigned kCandidates = 4;
  constexpr unsigned kFeatures = 8;
  constexpr word_t kKey = 7;
  constexpr word_t kStart = kKey % kCap;
  TArray<std::int64_t> states(kCap, 0), keys(kCap, 0);
  TArray<std::int64_t> numfree(kCandidates, 3), price(kCandidates, 0);
  TArray<std::int64_t> record(kFeatures + 1, 0);
  for (unsigned i = 0; i < kCandidates; ++i) {
    price[i].unsafe_set(100 + static_cast<long>(i));
  }
  if (which == 1) {  // insert takes its duplicate path: no table mutation
    states[kStart].unsafe_set(1);
    keys[kStart].unsafe_set(static_cast<long>(kKey));
  }

  std::vector<word_t> args;
  switch (which) {
    case 0:
    case 1:
    case 2:
      args = {to_word(states[0].word()), to_word(keys[0].word()),
              kCap - 1,                  kStart,
              kKey,                      kCap};
      break;
    case 3:
      args = {to_word(numfree[0].word()), to_word(price[0].word())};
      for (word_t id = 0; id < kCandidates; ++id) args.push_back(id);
      break;
    default:
      args = {to_word(record[0].word())};
      for (word_t v = 1; v <= kFeatures; ++v) args.push_back(v);
      break;
  }

  tmir::BarrierCounts counts;
  tmir::InterpOptions iopts;
  iopts.barriers = &counts;
  for (auto _ : state) {
    if (which == 3) {
      // Re-arm the records so reserve's numFree > 0 scan never changes path.
      for (unsigned i = 0; i < kCandidates; ++i) numfree[i].unsafe_set(3);
    }
    benchmark::DoNotOptimize(atomically([&](Tx& tx) {
      return tmir::execute(tx, f, args.data(), args.size(), iopts);
    }));
  }

  const auto per_op = [](std::uint64_t c) {
    return benchmark::Counter(static_cast<double>(c),
                              benchmark::Counter::kAvgIterations);
  };
  state.counters["tm_loads_per_op"] = per_op(counts.tm_loads);
  state.counters["tm_stores_per_op"] = per_op(counts.tm_stores);
  state.counters["tm_cmps_per_op"] = per_op(counts.tm_cmps);
  state.counters["tm_incs_per_op"] = per_op(counts.tm_incs);
  state.counters["tm_barriers_per_op"] = per_op(counts.total());
  state.SetLabel(std::string(tmir_kernel_name(which)) +
                 (optimized ? "/opt" : "/raw"));
}
BENCHMARK(BM_TmirKernelBarriers)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 4, /*step=*/1), {0, 1}});

}  // namespace

// BENCHMARK_MAIN() plus two extra flags, stripped before
// benchmark::Initialize so the library's own strict flag parsing stays
// intact:
//   --json-out=FILE    write the full google-benchmark JSON report to FILE
//                      while the console report still goes to stdout — the
//                      hook scripts/bench_baseline.sh uses to commit
//                      BENCH_micro.json.
//   --mode=real|sim    "real" (default) runs everything; "sim" excludes
//                      the BM_RealThreadScaling family (this binary never
//                      installs the fiber scheduler, so sim mode means
//                      latency-only benchmarks — what 1-core CI hosts run).
int main(int argc, char** argv) {
  // Rewrite --json-out=FILE (or --json-out FILE) into the pair of native
  // flags the library validates together; everything else passes through.
  std::string json_out;
  std::string mode = "real";
  bool user_filter = false;
  std::vector<std::string> storage;
  storage.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_out = argv[i] + 11;
    } else if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strncmp(argv[i], "--mode=", 7) == 0) {
      mode = argv[i] + 7;
    } else {
      if (std::strncmp(argv[i], "--benchmark_filter", 18) == 0) {
        user_filter = true;
      }
      storage.emplace_back(argv[i]);
    }
  }
  if (mode != "real" && mode != "sim") {
    std::fprintf(stderr, "error: --mode must be 'real' or 'sim', got %s\n",
                 mode.c_str());
    return 2;
  }
  if (mode == "sim" && !user_filter) {
    storage.push_back("--benchmark_filter=-BM_RealThreadScaling.*");
  }
  if (!json_out.empty()) {
    // Fail before the run, not after minutes of benchmarking.
    std::ofstream probe(json_out, std::ios::app);
    if (!probe) {
      std::fprintf(stderr, "error: cannot open --json-out file %s\n",
                   json_out.c_str());
      return 2;
    }
    storage.push_back("--benchmark_out=" + json_out);
    storage.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> args;
  args.reserve(storage.size());
  for (auto& s : storage) args.push_back(s.data());
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
