// Figures 1k/1l (Labyrinth 1: grid copy inside the transaction) and
// 1m/1n (Labyrinth 2: the [Ruan et al. 2014] optimized variant).
#include "bench/figure_common.hpp"
#include "workloads/labyrinth.hpp"

int main(int argc, char** argv) {
  using namespace semstm;
  Cli cli(argc, argv);

  for (const bool optimized : {false, true}) {
    bench::FigureSpec spec;
    spec.name = optimized
                    ? "Figure 1m/1n: Labyrinth 2 (copy outside transaction)"
                    : "Figure 1k/1l: Labyrinth 1 (copy inside transaction)";
    spec.metric = "time";
    spec.threads = {1, 2, 4, 6, 8, 10, 12};
    spec.ops_per_thread = 96;  // total routing requests
    spec.fixed_total_work = true;
    bench::apply_cli(spec, cli);
    bench::run_figure(spec, [optimized](bool semantic) {
      LabyrinthWorkload::Params p;
      p.variant = optimized ? LabyrinthWorkload::Variant::kCopyOutsideTx
                            : LabyrinthWorkload::Variant::kCopyInsideTx;
      return std::make_unique<LabyrinthWorkload>(p, semantic);
    });
  }
  return 0;
}
