// Figures 1g/1h: Kmeans execution time and abort rate (fixed total work).
#include "bench/figure_common.hpp"
#include "workloads/kmeans.hpp"

int main(int argc, char** argv) {
  using namespace semstm;
  Cli cli(argc, argv);
  bench::FigureSpec spec;
  spec.name = "Figure 1g/1h: Kmeans (RSTM path)";
  spec.metric = "time";
  spec.threads = {1, 2, 4, 6, 8, 10, 12};
  spec.ops_per_thread = 12000;  // total points, divided across threads
  spec.fixed_total_work = true;
  bench::apply_cli(spec, cli);
  bench::run_figure(spec, [](bool semantic) {
    return std::make_unique<KmeansWorkload>(KmeansWorkload::Params{},
                                            semantic);
  });
  return 0;
}
