// Figures 1o/1p: Yada execution time and abort rate (fixed total work).
#include "bench/figure_common.hpp"
#include "workloads/yada.hpp"

int main(int argc, char** argv) {
  using namespace semstm;
  Cli cli(argc, argv);
  bench::FigureSpec spec;
  spec.name = "Figure 1o/1p: Yada (RSTM path)";
  spec.metric = "time";
  spec.threads = {1, 2, 4, 6, 8, 10, 12};
  spec.ops_per_thread = 6000;  // total refinement attempts
  spec.fixed_total_work = true;
  bench::apply_cli(spec, cli);
  bench::run_figure(spec, [](bool semantic) {
    return std::make_unique<YadaWorkload>(YadaWorkload::Params{}, semantic);
  });
  return 0;
}
