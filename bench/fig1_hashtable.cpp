// Figures 1a/1b: Hashtable (open addressing) throughput and abort rate.
#include "bench/figure_common.hpp"
#include "workloads/hashtable_wl.hpp"

int main(int argc, char** argv) {
  using namespace semstm;
  Cli cli(argc, argv);
  bench::FigureSpec spec;
  spec.name = "Figure 1a/1b: Hashtable with Open Addressing (RSTM path)";
  spec.metric = "throughput";
  spec.threads = {1, 2, 4, 8, 12, 16, 20, 24};
  spec.ops_per_thread = 400;
  bench::apply_cli(spec, cli);
  bench::run_figure(spec, [](bool semantic) {
    return std::make_unique<HashtableWorkload>(HashtableWorkload::Params{},
                                               semantic);
  });
  return 0;
}
