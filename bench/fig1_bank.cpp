// Figures 1c/1d: Bank throughput and abort rate.
//
// --hot-accounts N / --hot-pct P add Zipfian-style skew (P% of account
// picks land in the first N accounts) — the contention-cartography
// testbed: with skew on and --metrics-out set, the tm_top hot-site
// ranking should be dominated by the hot accounts' words.
#include "bench/figure_common.hpp"
#include "workloads/bank.hpp"

int main(int argc, char** argv) {
  using namespace semstm;
  Cli cli(argc, argv);
  bench::FigureSpec spec;
  spec.name = "Figure 1c/1d: Bank (RSTM path)";
  spec.metric = "throughput";
  spec.threads = {1, 2, 4, 8, 12, 16, 20, 24};
  spec.ops_per_thread = 600;
  bench::apply_cli(spec, cli);
  BankWorkload::Params params;
  params.hot_accounts = static_cast<std::size_t>(cli.get_int("hot-accounts", 0));
  params.hot_pct = static_cast<unsigned>(cli.get_int("hot-pct", 0));
  if (params.hot_accounts > params.accounts || params.hot_pct > 100) {
    std::fprintf(stderr,
                 "error: --hot-accounts must be <= %zu and --hot-pct <= 100\n",
                 params.accounts);
    return 2;
  }
  bench::run_figure(spec, [&](bool semantic) {
    return std::make_unique<BankWorkload>(params, semantic);
  });
  return 0;
}
