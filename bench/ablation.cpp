// Ablation studies for the design choices DESIGN.md calls out:
//
//  A. Clause-level vs per-operator semantic validation: the hashtable
//     probe's continuation condition validated as one cmp_or clause
//     (paper §3's composed conditional) vs. as two independent cmps.
//     This isolates WHY the composed form is what saves the aborts.
//  B. Orec table sizing for TL2/S-TL2: fewer orecs -> more false
//     conflicts via hash collisions.
//  C. Semantic RB-tree descent: the paper leaves tree internals
//     untransformed (its GCC pass cannot see through STAMP's comparator
//     functions); what would transforming them buy?
//  D. Simulator quantum sensitivity: results must be stable as the
//     scheduling slack varies, or the simulator (not the algorithm) would
//     be generating the trends.
#include <cstdio>
#include <memory>

#include "containers/trbtree.hpp"
#include "core/atomically.hpp"
#include "semstm.hpp"
#include "util/cli.hpp"
#include "workloads/driver.hpp"
#include "workloads/hashtable_wl.hpp"

namespace {

using namespace semstm;


void ablation_clause(const Cli& cli) {
  std::printf("## A. probe validation granularity (identical workload)\n");
  std::printf("#    hashtable workload, snorec, 16 simulated threads\n");
  std::printf("mode,throughput,abort%%\n");
  const auto ops = static_cast<std::uint64_t>(cli.get_int("ops", 250));
  struct Case {
    const char* label;
    TOpenHashTable::ProbeMode mode;
  };
  const Case cases[] = {
      {"base(reads)", TOpenHashTable::ProbeMode::kBase},
      {"per-operator", TOpenHashTable::ProbeMode::kPerOperator},
      {"clause(cmp_or)", TOpenHashTable::ProbeMode::kClause},
  };
  for (const Case& c : cases) {
    HashtableWorkload w(HashtableWorkload::Params{}, c.mode);
    RunConfig cfg;
    cfg.algo = "snorec";
    cfg.threads = 16;
    cfg.ops_per_thread = ops;
    cfg.sim_quantum = 24;
    const RunResult r = run_workload(cfg, w);
    std::printf("%s,%.1f,%.2f\n", c.label, r.throughput, r.abort_pct);
  }
  std::printf("\n");
}

// -- B: orec table sizing -----------------------------------------------------

void ablation_orecs(const Cli& cli) {
  std::printf("## B. orec table size (TL2 family): false conflicts from "
              "hash collisions\n");
  std::printf("log2_orecs,tl2_abort%%,stl2_abort%%\n");
  const auto ops = static_cast<std::uint64_t>(cli.get_int("ops", 250));
  for (const unsigned log2 : {6u, 10u, 14u, 18u}) {
    double aborts[2];
    int k = 0;
    for (const char* algo : {"tl2", "stl2"}) {
      HashtableWorkload w(HashtableWorkload::Params{},
                          /*semantic=*/std::string(algo) == "stl2");
      RunConfig cfg;
      cfg.algo = algo;
      cfg.threads = 8;
      cfg.ops_per_thread = ops;
      cfg.algo_opts.orec_log2 = log2;
      cfg.sim_quantum = 24;
      aborts[k++] = run_workload(cfg, w).abort_pct;
    }
    std::printf("%u,%.2f,%.2f\n", log2, aborts[0], aborts[1]);
  }
  std::printf("\n");
}

// -- C: semantic tree descent --------------------------------------------------

void ablation_tree(const Cli& cli) {
  std::printf("## C. semantic RB-tree descent (extension beyond the paper)\n");
  const auto ops = static_cast<std::uint64_t>(cli.get_int("ops", 400));
  for (const bool semantic_descent : {false, true}) {
    class W final : public Workload {
     public:
      explicit W(bool sd) : tree(1 << 16, sd) {}
      void setup(Rng& rng) override {
        auto algo = make_algorithm("cgl");
        ThreadCtx ctx(algo->make_tx());
        CtxBinder bind(ctx);
        for (int i = 0; i < 2000; ++i) {
          const auto k = static_cast<std::int64_t>(rng.below(1 << 14));
          atomically([&](Tx& tx) { (void)tree.insert(tx, k, k); });
        }
      }
      void op(unsigned, Rng& rng) override {
        const auto k = static_cast<std::int64_t>(rng.below(1 << 14));
        if (rng.percent(20)) {
          atomically([&](Tx& tx) { (void)tree.insert(tx, k, k); });
        } else {
          atomically([&](Tx& tx) { (void)tree.find(tx, k); });
        }
      }
      TRbMap tree;
    };
    W w(semantic_descent);
    RunConfig cfg;
    cfg.algo = "snorec";
    cfg.threads = 8;
    cfg.ops_per_thread = ops;
    cfg.sim_quantum = 24;
    const RunResult r = run_workload(cfg, w);
    std::printf("%s: throughput=%.1f abort%%=%.2f\n",
                semantic_descent ? "semantic descent " : "plain-read descent",
                r.throughput, r.abort_pct);
  }
  std::printf("\n");
}

// -- D: simulator quantum sensitivity -----------------------------------------

void ablation_quantum(const Cli& cli) {
  std::printf("## D. simulator quantum sensitivity (result stability)\n");
  std::printf("quantum,snorec_abort%%,norec_abort%%\n");
  const auto ops = static_cast<std::uint64_t>(cli.get_int("ops", 250));
  for (const std::uint64_t q : {0ull, 8ull, 24ull, 64ull}) {
    double aborts[2];
    int k = 0;
    for (const char* algo : {"snorec", "norec"}) {
      HashtableWorkload w(HashtableWorkload::Params{},
                          std::string(algo) == "snorec");
      RunConfig cfg;
      cfg.algo = algo;
      cfg.threads = 8;
      cfg.ops_per_thread = ops;
      cfg.sim_quantum = q;
      aborts[k++] = run_workload(cfg, w).abort_pct;
    }
    std::printf("%llu,%.2f,%.2f\n", static_cast<unsigned long long>(q),
                aborts[0], aborts[1]);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  std::printf("# semstm ablation studies\n\n");
  ablation_clause(cli);
  ablation_orecs(cli);
  ablation_tree(cli);
  ablation_quantum(cli);
  return 0;
}
