// Shared harness for the Figure 1 / Figure 2 reproductions.
//
// Each figure bench sweeps thread counts for the four algorithms the paper
// plots (NOrec, S-NOrec, TL2, S-TL2; Figure 2 uses a NOrec-Modified-GCC
// configuration instead of TL2), pairing base workload builds with base
// algorithms and semantic builds with semantic algorithms, exactly as the
// paper's RSTM experiments do. Output is one CSV block per panel:
// throughput (or completion time) and abort rate — the same series the
// paper plots.
//
// Execution defaults to the deterministic virtual scheduler (see
// DESIGN.md: the host has one core); pass --real for std::thread runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/abort_cause.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "util/cli.hpp"
#include "workloads/driver.hpp"

namespace semstm::bench {

struct AlgoConfig {
  std::string algo;      ///< TM algorithm name
  bool semantic_build;   ///< build the workload with semantic constructs?
  std::string label;     ///< series label in the output
};

struct FigureSpec {
  std::string name;                  // e.g. "Figure 1a/1b: Hashtable"
  std::string metric;                // "throughput" or "time"
  std::vector<unsigned> threads;
  std::uint64_t ops_per_thread = 1000;
  bool fixed_total_work = false;     // divide total ops across threads
  std::uint64_t seed = 0x5EED;
  ExecMode mode = ExecMode::kSim;
  std::uint64_t sim_quantum = 24;  // amortize fiber switches (see SimOptions)
  std::string cm = env_or("SEMSTM_CM", "backoff");  // contention manager
  std::uint64_t retry_limit =
      env_u64_or("SEMSTM_RETRY_LIMIT", kDefaultRetryLimit);
  /// When non-empty, every (series × thread-count) run is traced and the
  /// merged Chrome trace_event JSON is written here (--trace out.json).
  /// Requires a -DSEMSTM_TRACE=ON build to produce events.
  std::string trace_path;
  /// When non-empty, the machine-readable summary (the same object printed
  /// as the trailing "# JSON {...}" line) is also written to this file —
  /// the hook scripts/bench_baseline.sh uses to commit BENCH_*.json.
  std::string json_out;
  /// When non-empty (--metrics-out out.jsonl), every (series ×
  /// thread-count) run collects windowed metrics + hot sites and appends
  /// them as JSON-lines here (obs::MetricsWriter schema; rendered by
  /// examples/tm_top). Requires -DSEMSTM_TRACE=ON to carry data.
  std::string metrics_path;
  /// Metrics window width in obs clock units (--metrics-window).
  std::uint64_t metrics_window = std::uint64_t{1} << 14;
  std::vector<AlgoConfig> series = {
      {"norec", false, "NOrec"},
      {"snorec", true, "S-NOrec"},
      {"tl2", false, "TL2"},
      {"stl2", true, "S-TL2"},
  };
};

using WorkloadFactory = std::function<std::unique_ptr<Workload>(bool semantic)>;

inline void apply_cli(FigureSpec& spec, const Cli& cli) {
  spec.threads = cli.get_list("threads", spec.threads);
  spec.ops_per_thread = static_cast<std::uint64_t>(
      cli.get_int("ops", static_cast<std::int64_t>(spec.ops_per_thread)));
  spec.seed = static_cast<std::uint64_t>(
      cli.get_int("seed", static_cast<std::int64_t>(spec.seed)));
  if (cli.has("real")) spec.mode = ExecMode::kReal;  // legacy spelling
  const std::string mode = cli.get("mode", "");
  if (mode == "real") {
    spec.mode = ExecMode::kReal;
  } else if (mode == "sim") {
    spec.mode = ExecMode::kSim;
  } else if (!mode.empty()) {
    std::fprintf(stderr, "error: --mode must be 'real' or 'sim', got %s\n",
                 mode.c_str());
    std::exit(2);
  }
  spec.sim_quantum = static_cast<std::uint64_t>(
      cli.get_int("quantum", static_cast<std::int64_t>(spec.sim_quantum)));
  spec.cm = cli.get("cm", spec.cm);
  spec.retry_limit = static_cast<std::uint64_t>(
      cli.get_int("retry-limit", static_cast<std::int64_t>(spec.retry_limit)));
  spec.trace_path = cli.get("trace", spec.trace_path);
  spec.json_out = cli.get("json-out", spec.json_out);
  spec.metrics_path = cli.get("metrics-out", spec.metrics_path);
  spec.metrics_window = static_cast<std::uint64_t>(cli.get_int(
      "metrics-window", static_cast<std::int64_t>(spec.metrics_window)));
  if (spec.metrics_window == 0) {
    std::fprintf(stderr, "error: --metrics-window must be positive\n");
    std::exit(2);
  }
  if (!spec.trace_path.empty() && !obs::kTraceEnabled) {
    std::fprintf(stderr,
                 "warning: --trace requested but this binary was built "
                 "without -DSEMSTM_TRACE=ON; the trace will be empty\n");
  }
  if (!spec.metrics_path.empty() && !obs::kTraceEnabled) {
    std::fprintf(stderr,
                 "warning: --metrics-out requested but this binary was built "
                 "without -DSEMSTM_TRACE=ON; windows and hot sites will be "
                 "empty\n");
  }
  // Fail fast with a usable message; otherwise the bad name surfaces as a
  // terminate() from make_contention_manager deep inside the first run.
  bool known = false;
  for (const std::string& n : contention_manager_names()) {
    known = known || n == spec.cm;
  }
  if (!known) {
    std::fprintf(stderr, "error: unknown --cm '%s'; valid:", spec.cm.c_str());
    for (const std::string& n : contention_manager_names()) {
      std::fprintf(stderr, " %s", n.c_str());
    }
    std::fprintf(stderr, "\n");
    std::exit(2);
  }
}

struct SeriesPoint {
  double metric_value;  // throughput (commits/Mtick) or time (Mticks)
  double abort_pct;
  TxStats stats;        // full counters for the JSON summary
  std::uint64_t trace_dropped = 0;  // trace-ring drops (traced runs only)
  std::uint64_t conflict_overflow = 0;
  std::size_t windows = 0;          // metrics windows recorded for this run
  std::vector<obs::ConflictMap::Site> hot_sites;  // run-level top-K
};

/// The machine-readable summary, written either as the trailing
/// "# JSON {...}" stdout line or verbatim into --json-out's file.
inline void emit_json_summary(std::FILE* out, const FigureSpec& spec,
                              const std::vector<std::vector<SeriesPoint>>& table) {
  // `units` labels every tick-denominated field below (latency percentiles,
  // trace timestamps, metrics windows): virtual ticks in sim mode,
  // steady-clock nanoseconds under real threads.
  std::fprintf(out, "{\"figure\":\"%s\",\"metric\":\"%s\",\"units\":\"%s\","
               "\"mode\":\"%s\",\"cm\":\"%s\",\"retry_limit\":%llu,"
               "\"series\":[",
               spec.name.c_str(), spec.metric.c_str(),
               spec.mode == ExecMode::kSim ? "ticks" : "ns",
               spec.mode == ExecMode::kSim ? "sim" : "real", spec.cm.c_str(),
               static_cast<unsigned long long>(spec.retry_limit));
  for (std::size_t s = 0; s < spec.series.size(); ++s) {
    std::fprintf(out, "%s{\"label\":\"%s\",\"algo\":\"%s\",\"points\":[",
                 s == 0 ? "" : ",", spec.series[s].label.c_str(),
                 spec.series[s].algo.c_str());
    // Threads×metric scaling relative to the sweep's first (smallest)
    // thread count — >1 means the algorithm gained from added threads.
    // Meaningful under --mode=real on multi-core hosts; on the 1-fiber sim
    // it records the simulated-contention profile instead.
    const double base_metric = table[s][0].metric_value;
    for (std::size_t t = 0; t < spec.threads.size(); ++t) {
      const SeriesPoint& p = table[s][t];
      const TxStats& st = p.stats;
      double speedup = 0.0;
      if (spec.metric == "time") {
        if (p.metric_value > 0) speedup = base_metric / p.metric_value;
      } else {
        if (base_metric > 0) speedup = p.metric_value / base_metric;
      }
      std::fprintf(
          out,
          "%s{\"threads\":%u,\"metric\":%.6g,\"speedup\":%.4g,"
          "\"abort_pct\":%.4g,"
          "\"commits\":%llu,\"aborts\":%llu,\"retries\":%llu,"
          "\"fallbacks\":%llu,\"max_consec_aborts\":%llu,"
          "\"exceptions\":%llu,\"validations\":%llu,"
          "\"readset_adds\":%llu,\"readset_dups\":%llu,"
          "\"validate_entries\":%llu,\"clock_adoptions\":%llu,"
          "\"epoch_retires\":%llu,\"epoch_reclaims\":%llu,"
          "\"abort_causes\":{",
          t == 0 ? "" : ",", spec.threads[t], p.metric_value, speedup,
          p.abort_pct,
          static_cast<unsigned long long>(st.commits),
          static_cast<unsigned long long>(st.aborts),
          static_cast<unsigned long long>(st.retries),
          static_cast<unsigned long long>(st.fallbacks),
          static_cast<unsigned long long>(st.max_consec_aborts),
          static_cast<unsigned long long>(st.exceptions),
          static_cast<unsigned long long>(st.validations),
          static_cast<unsigned long long>(st.readset_adds),
          static_cast<unsigned long long>(st.readset_dups),
          static_cast<unsigned long long>(st.validate_entries),
          static_cast<unsigned long long>(st.clock_adoptions),
          static_cast<unsigned long long>(st.epoch_retires),
          static_cast<unsigned long long>(st.epoch_reclaims));
      for (std::size_t c = 0; c < obs::kAbortCauseCount; ++c) {
        std::fprintf(out, "%s\"%s\":%llu", c == 0 ? "" : ",",
                     obs::abort_cause_name(static_cast<obs::AbortCause>(c)),
                     static_cast<unsigned long long>(
                         st.abort_cause(static_cast<obs::AbortCause>(c))));
      }
      // Latency percentiles (obs ticks). All-zero unless the binary was
      // built with -DSEMSTM_TRACE=ON — the schema is stable either way.
      std::fprintf(
          out,
          "},\"commit_p50\":%llu,\"commit_p99\":%llu,"
          "\"validate_p50\":%llu,\"validate_p99\":%llu,"
          "\"backoff_p50\":%llu,\"backoff_p99\":%llu,"
          "\"gate_p50\":%llu,\"gate_p99\":%llu",
          static_cast<unsigned long long>(st.lat_commit.percentile(50)),
          static_cast<unsigned long long>(st.lat_commit.percentile(99)),
          static_cast<unsigned long long>(st.lat_validate.percentile(50)),
          static_cast<unsigned long long>(st.lat_validate.percentile(99)),
          static_cast<unsigned long long>(st.lat_backoff.percentile(50)),
          static_cast<unsigned long long>(st.lat_backoff.percentile(99)),
          static_cast<unsigned long long>(st.lat_gate.percentile(50)),
          static_cast<unsigned long long>(st.lat_gate.percentile(99)));
      // Contention cartography (all-zero/empty without -DSEMSTM_TRACE=ON;
      // schema stable either way). trace_dropped makes ring exhaustion a
      // machine-checkable condition instead of a flame-summary footnote.
      std::fprintf(out,
                   ",\"trace_dropped\":%llu,\"conflict_overflow\":%llu,"
                   "\"windows\":%zu,\"hot_sites\":[",
                   static_cast<unsigned long long>(p.trace_dropped),
                   static_cast<unsigned long long>(p.conflict_overflow),
                   p.windows);
      for (std::size_t h = 0; h < p.hot_sites.size(); ++h) {
        const obs::ConflictMap::Site& site = p.hot_sites[h];
        std::fprintf(out, "%s{\"addr\":\"%p\",\"orec\":", h == 0 ? "" : ",",
                     site.addr);
        if (site.orec == obs::kNoOrec) {
          std::fprintf(out, "null");
        } else {
          std::fprintf(out, "%llu",
                       static_cast<unsigned long long>(site.orec));
        }
        std::fprintf(out,
                     ",\"total\":%llu,\"edges\":%llu,\"top_cause\":\"%s\"}",
                     static_cast<unsigned long long>(site.total()),
                     static_cast<unsigned long long>(site.edges),
                     obs::abort_cause_name(site.top_cause()));
      }
      std::fprintf(out, "]}");
    }
    std::fprintf(out, "]}");
  }
  std::fprintf(out, "]}\n");
}

inline void run_figure(const FigureSpec& spec, const WorkloadFactory& make) {
  std::printf("# %s\n", spec.name.c_str());
  std::printf("# mode=%s ops_per_thread=%llu cm=%s retry_limit=%llu%s\n",
              spec.mode == ExecMode::kSim ? "sim" : "real",
              static_cast<unsigned long long>(spec.ops_per_thread),
              spec.cm.c_str(),
              static_cast<unsigned long long>(spec.retry_limit),
              spec.fixed_total_work ? " (fixed total work)" : "");

  std::vector<std::vector<SeriesPoint>> table(
      spec.series.size(), std::vector<SeriesPoint>(spec.threads.size()));
  obs::TraceExporter exporter;
  std::unique_ptr<obs::MetricsWriter> metrics_writer;
  if (!spec.metrics_path.empty()) {
    metrics_writer = std::make_unique<obs::MetricsWriter>(spec.metrics_path);
    if (!metrics_writer->ok()) {
      std::fprintf(stderr, "error: cannot open --metrics-out file %s\n",
                   spec.metrics_path.c_str());
      std::exit(2);
    }
  }

  for (std::size_t s = 0; s < spec.series.size(); ++s) {
    for (std::size_t t = 0; t < spec.threads.size(); ++t) {
      const unsigned threads = spec.threads[t];
      RunConfig cfg;
      cfg.algo = spec.series[s].algo;
      cfg.threads = threads;
      cfg.mode = spec.mode;
      cfg.ops_per_thread = spec.ops_per_thread;
      if (spec.fixed_total_work) {
        // Lossless split: the remainder ops land on the first threads, so
        // every point of the sweep executes exactly spec.ops_per_thread
        // total operations (not up to threads-1 fewer).
        cfg.ops_by_thread = split_total_ops(spec.ops_per_thread, threads);
      }
      cfg.seed = spec.seed;
      cfg.sim_quantum = spec.sim_quantum;
      cfg.cm = spec.cm;
      cfg.retry_limit = spec.retry_limit;
      obs::TraceCollector collector;
      if (!spec.trace_path.empty()) cfg.trace = &collector;
      obs::MetricsCollector metrics(spec.metrics_window);
      if (metrics_writer != nullptr) cfg.metrics = &metrics;
      auto w = make(spec.series[s].semantic_build);
      const RunResult r = run_workload(cfg, *w);
      w->verify();
      const std::string run_label =
          spec.series[s].label + "/" + std::to_string(threads) + "t";
      if (cfg.trace != nullptr) exporter.add_run(run_label, collector);
      if (metrics_writer != nullptr) {
        metrics_writer->add_run(run_label, r.units, spec.metrics_window,
                                threads, r.windows, r.hot_sites,
                                r.conflict_overflow);
      }
      SeriesPoint& p = table[s][t];
      p.abort_pct = r.abort_pct;
      p.stats = r.stats;
      if (cfg.trace != nullptr) p.trace_dropped = collector.dropped();
      p.conflict_overflow = r.conflict_overflow;
      p.windows = r.windows.size();
      p.hot_sites = r.hot_sites;
      if (spec.metric == "time") {
        // Completion time of the fixed total work, in mega-ticks (sim) or
        // seconds (real) — lower is better, like the paper's STAMP plots.
        p.metric_value = spec.mode == ExecMode::kSim
                             ? static_cast<double>(r.makespan) / 1e6
                             : r.wall_seconds;
      } else {
        p.metric_value = r.throughput;
      }
    }
  }

  const char* unit = spec.metric == "time"
                         ? (spec.mode == ExecMode::kSim ? "Mticks" : "sec")
                         : (spec.mode == ExecMode::kSim ? "commits/Mtick"
                                                        : "commits/sec");

  std::printf("\n## %s (%s)\n", spec.metric.c_str(), unit);
  std::printf("threads");
  for (const auto& s : spec.series) std::printf(",%s", s.label.c_str());
  std::printf("\n");
  for (std::size_t t = 0; t < spec.threads.size(); ++t) {
    std::printf("%u", spec.threads[t]);
    for (std::size_t s = 0; s < spec.series.size(); ++s) {
      std::printf(",%.3f", table[s][t].metric_value);
    }
    std::printf("\n");
  }

  std::printf("\n## abort rate (%%)\n");
  std::printf("threads");
  for (const auto& s : spec.series) std::printf(",%s", s.label.c_str());
  std::printf("\n");
  for (std::size_t t = 0; t < spec.threads.size(); ++t) {
    std::printf("%u", spec.threads[t]);
    for (std::size_t s = 0; s < spec.series.size(); ++s) {
      std::printf(",%.2f", table[s][t].abort_pct);
    }
    std::printf("\n");
  }

  // Serial-irrevocable fallbacks per 10k commits (0.00 everywhere unless
  // the bounded policy escalated — the progress-guarantee audit trail).
  std::printf("\n## serial fallbacks (per 10k commits)\n");
  std::printf("threads");
  for (const auto& s : spec.series) std::printf(",%s", s.label.c_str());
  std::printf("\n");
  for (std::size_t t = 0; t < spec.threads.size(); ++t) {
    std::printf("%u", spec.threads[t]);
    for (std::size_t s = 0; s < spec.series.size(); ++s) {
      const TxStats& st = table[s][t].stats;
      const double rate =
          st.commits == 0 ? 0.0
                          : 1e4 * static_cast<double>(st.fallbacks) /
                                static_cast<double>(st.commits);
      std::printf(",%.2f", rate);
    }
    std::printf("\n");
  }

  // Headline ratios (paper: "up to 4x, average 1.6x"): semantic vs base,
  // same family, best thread count.
  auto best = [&](std::size_t s) {
    double v = table[s][0].metric_value;
    for (const auto& p : table[s]) {
      v = spec.metric == "time" ? std::min(v, p.metric_value)
                                : std::max(v, p.metric_value);
    }
    return v;
  };
  for (std::size_t s = 0; s + 1 < spec.series.size(); s += 2) {
    const double base = best(s);
    const double sem = best(s + 1);
    const double speedup =
        spec.metric == "time" ? base / sem : sem / base;
    std::printf("\n# peak %s/%s speedup: %.2fx\n",
                spec.series[s + 1].label.c_str(), spec.series[s].label.c_str(),
                speedup);
  }

  // Machine-readable summary (one JSON object per figure) so sweep scripts
  // can pull retry/fallback counters without parsing the CSV blocks.
  std::printf("\n# JSON ");
  emit_json_summary(stdout, spec, table);
  std::printf("\n");

  if (!spec.json_out.empty()) {
    std::FILE* f = std::fopen(spec.json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open --json-out file %s\n",
                   spec.json_out.c_str());
      std::exit(2);
    }
    emit_json_summary(f, spec, table);
    std::fclose(f);
    std::printf("# json summary -> %s\n", spec.json_out.c_str());
  }

  if (metrics_writer != nullptr) {
    if (metrics_writer->close()) {
      std::printf("# metrics -> %s (render with tm_top --in %s)\n",
                  spec.metrics_path.c_str(), spec.metrics_path.c_str());
    } else {
      std::fprintf(stderr, "error: failed to write metrics to %s\n",
                   spec.metrics_path.c_str());
      std::exit(2);
    }
  }

  if (!spec.trace_path.empty()) {
    if (exporter.write_chrome(spec.trace_path)) {
      std::printf("# trace: %zu events -> %s (chrome://tracing or "
                  "https://ui.perfetto.dev)\n",
                  exporter.event_count(), spec.trace_path.c_str());
    } else {
      std::fprintf(stderr, "error: failed to write trace to %s\n",
                   spec.trace_path.c_str());
    }
    // Flame summary: the 10-second diagnosis view, "# "-prefixed so CSV
    // consumers skip it like every other comment line.
    const std::string flame = exporter.flame_summary();
    std::size_t pos = 0;
    while (pos < flame.size()) {
      std::size_t nl = flame.find('\n', pos);
      if (nl == std::string::npos) nl = flame.size();
      std::printf("# %.*s\n", static_cast<int>(nl - pos), flame.c_str() + pos);
      pos = nl + 1;
    }
  }
}

}  // namespace semstm::bench
