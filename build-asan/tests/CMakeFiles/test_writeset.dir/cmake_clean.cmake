file(REMOVE_RECURSE
  "CMakeFiles/test_writeset.dir/test_writeset.cpp.o"
  "CMakeFiles/test_writeset.dir/test_writeset.cpp.o.d"
  "test_writeset"
  "test_writeset.pdb"
  "test_writeset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_writeset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
