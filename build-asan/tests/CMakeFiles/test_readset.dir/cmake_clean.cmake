file(REMOVE_RECURSE
  "CMakeFiles/test_readset.dir/test_readset.cpp.o"
  "CMakeFiles/test_readset.dir/test_readset.cpp.o.d"
  "test_readset"
  "test_readset.pdb"
  "test_readset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_readset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
