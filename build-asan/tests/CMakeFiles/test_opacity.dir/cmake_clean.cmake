file(REMOVE_RECURSE
  "CMakeFiles/test_opacity.dir/test_opacity.cpp.o"
  "CMakeFiles/test_opacity.dir/test_opacity.cpp.o.d"
  "test_opacity"
  "test_opacity.pdb"
  "test_opacity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
