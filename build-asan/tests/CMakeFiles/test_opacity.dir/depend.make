# Empty dependencies file for test_opacity.
# This may be replaced when dependencies are built.
