file(REMOVE_RECURSE
  "CMakeFiles/test_tmir.dir/test_tmir.cpp.o"
  "CMakeFiles/test_tmir.dir/test_tmir.cpp.o.d"
  "test_tmir"
  "test_tmir.pdb"
  "test_tmir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tmir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
