# Empty dependencies file for test_tmir.
# This may be replaced when dependencies are built.
