file(REMOVE_RECURSE
  "CMakeFiles/semstm.dir/core/factory.cpp.o"
  "CMakeFiles/semstm.dir/core/factory.cpp.o.d"
  "CMakeFiles/semstm.dir/sched/thread_runner.cpp.o"
  "CMakeFiles/semstm.dir/sched/thread_runner.cpp.o.d"
  "CMakeFiles/semstm.dir/sched/virtual_scheduler.cpp.o"
  "CMakeFiles/semstm.dir/sched/virtual_scheduler.cpp.o.d"
  "CMakeFiles/semstm.dir/tmir/interp.cpp.o"
  "CMakeFiles/semstm.dir/tmir/interp.cpp.o.d"
  "CMakeFiles/semstm.dir/tmir/kernels.cpp.o"
  "CMakeFiles/semstm.dir/tmir/kernels.cpp.o.d"
  "CMakeFiles/semstm.dir/tmir/passes.cpp.o"
  "CMakeFiles/semstm.dir/tmir/passes.cpp.o.d"
  "CMakeFiles/semstm.dir/workloads/driver.cpp.o"
  "CMakeFiles/semstm.dir/workloads/driver.cpp.o.d"
  "CMakeFiles/semstm.dir/workloads/registry.cpp.o"
  "CMakeFiles/semstm.dir/workloads/registry.cpp.o.d"
  "libsemstm.a"
  "libsemstm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semstm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
