# Empty dependencies file for semstm.
# This may be replaced when dependencies are built.
