
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/factory.cpp" "src/CMakeFiles/semstm.dir/core/factory.cpp.o" "gcc" "src/CMakeFiles/semstm.dir/core/factory.cpp.o.d"
  "/root/repo/src/sched/thread_runner.cpp" "src/CMakeFiles/semstm.dir/sched/thread_runner.cpp.o" "gcc" "src/CMakeFiles/semstm.dir/sched/thread_runner.cpp.o.d"
  "/root/repo/src/sched/virtual_scheduler.cpp" "src/CMakeFiles/semstm.dir/sched/virtual_scheduler.cpp.o" "gcc" "src/CMakeFiles/semstm.dir/sched/virtual_scheduler.cpp.o.d"
  "/root/repo/src/tmir/interp.cpp" "src/CMakeFiles/semstm.dir/tmir/interp.cpp.o" "gcc" "src/CMakeFiles/semstm.dir/tmir/interp.cpp.o.d"
  "/root/repo/src/tmir/kernels.cpp" "src/CMakeFiles/semstm.dir/tmir/kernels.cpp.o" "gcc" "src/CMakeFiles/semstm.dir/tmir/kernels.cpp.o.d"
  "/root/repo/src/tmir/passes.cpp" "src/CMakeFiles/semstm.dir/tmir/passes.cpp.o" "gcc" "src/CMakeFiles/semstm.dir/tmir/passes.cpp.o.d"
  "/root/repo/src/workloads/driver.cpp" "src/CMakeFiles/semstm.dir/workloads/driver.cpp.o" "gcc" "src/CMakeFiles/semstm.dir/workloads/driver.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/CMakeFiles/semstm.dir/workloads/registry.cpp.o" "gcc" "src/CMakeFiles/semstm.dir/workloads/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
