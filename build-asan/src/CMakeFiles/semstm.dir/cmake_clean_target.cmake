file(REMOVE_RECURSE
  "libsemstm.a"
)
