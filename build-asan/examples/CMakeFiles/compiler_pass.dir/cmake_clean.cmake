file(REMOVE_RECURSE
  "CMakeFiles/compiler_pass.dir/compiler_pass.cpp.o"
  "CMakeFiles/compiler_pass.dir/compiler_pass.cpp.o.d"
  "compiler_pass"
  "compiler_pass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_pass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
