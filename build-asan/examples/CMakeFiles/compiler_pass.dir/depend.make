# Empty dependencies file for compiler_pass.
# This may be replaced when dependencies are built.
