file(REMOVE_RECURSE
  "CMakeFiles/concurrent_queue.dir/concurrent_queue.cpp.o"
  "CMakeFiles/concurrent_queue.dir/concurrent_queue.cpp.o.d"
  "concurrent_queue"
  "concurrent_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
