# Empty dependencies file for concurrent_queue.
# This may be replaced when dependencies are built.
