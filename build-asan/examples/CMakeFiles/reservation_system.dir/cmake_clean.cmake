file(REMOVE_RECURSE
  "CMakeFiles/reservation_system.dir/reservation_system.cpp.o"
  "CMakeFiles/reservation_system.dir/reservation_system.cpp.o.d"
  "reservation_system"
  "reservation_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reservation_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
