# Empty dependencies file for table3_opcounts.
# This may be replaced when dependencies are built.
