file(REMOVE_RECURSE
  "CMakeFiles/table3_opcounts.dir/table3_opcounts.cpp.o"
  "CMakeFiles/table3_opcounts.dir/table3_opcounts.cpp.o.d"
  "table3_opcounts"
  "table3_opcounts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_opcounts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
