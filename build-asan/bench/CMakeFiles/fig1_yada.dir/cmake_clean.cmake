file(REMOVE_RECURSE
  "CMakeFiles/fig1_yada.dir/fig1_yada.cpp.o"
  "CMakeFiles/fig1_yada.dir/fig1_yada.cpp.o.d"
  "fig1_yada"
  "fig1_yada.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_yada.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
