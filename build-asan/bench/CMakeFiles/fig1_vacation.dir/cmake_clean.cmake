file(REMOVE_RECURSE
  "CMakeFiles/fig1_vacation.dir/fig1_vacation.cpp.o"
  "CMakeFiles/fig1_vacation.dir/fig1_vacation.cpp.o.d"
  "fig1_vacation"
  "fig1_vacation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_vacation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
