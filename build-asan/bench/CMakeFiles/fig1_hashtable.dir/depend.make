# Empty dependencies file for fig1_hashtable.
# This may be replaced when dependencies are built.
