file(REMOVE_RECURSE
  "CMakeFiles/fig1_hashtable.dir/fig1_hashtable.cpp.o"
  "CMakeFiles/fig1_hashtable.dir/fig1_hashtable.cpp.o.d"
  "fig1_hashtable"
  "fig1_hashtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_hashtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
