# Empty dependencies file for fig1_labyrinth.
# This may be replaced when dependencies are built.
