file(REMOVE_RECURSE
  "CMakeFiles/fig1_labyrinth.dir/fig1_labyrinth.cpp.o"
  "CMakeFiles/fig1_labyrinth.dir/fig1_labyrinth.cpp.o.d"
  "fig1_labyrinth"
  "fig1_labyrinth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_labyrinth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
