file(REMOVE_RECURSE
  "CMakeFiles/fig1_kmeans.dir/fig1_kmeans.cpp.o"
  "CMakeFiles/fig1_kmeans.dir/fig1_kmeans.cpp.o.d"
  "fig1_kmeans"
  "fig1_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
