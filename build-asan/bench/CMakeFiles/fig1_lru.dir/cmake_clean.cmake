file(REMOVE_RECURSE
  "CMakeFiles/fig1_lru.dir/fig1_lru.cpp.o"
  "CMakeFiles/fig1_lru.dir/fig1_lru.cpp.o.d"
  "fig1_lru"
  "fig1_lru.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_lru.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
