# Empty dependencies file for fig1_lru.
# This may be replaced when dependencies are built.
