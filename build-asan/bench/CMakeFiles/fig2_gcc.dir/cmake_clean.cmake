file(REMOVE_RECURSE
  "CMakeFiles/fig2_gcc.dir/fig2_gcc.cpp.o"
  "CMakeFiles/fig2_gcc.dir/fig2_gcc.cpp.o.d"
  "fig2_gcc"
  "fig2_gcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_gcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
