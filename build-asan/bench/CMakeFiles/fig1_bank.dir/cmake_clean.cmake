file(REMOVE_RECURSE
  "CMakeFiles/fig1_bank.dir/fig1_bank.cpp.o"
  "CMakeFiles/fig1_bank.dir/fig1_bank.cpp.o.d"
  "fig1_bank"
  "fig1_bank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
