# Empty dependencies file for fig1_bank.
# This may be replaced when dependencies are built.
