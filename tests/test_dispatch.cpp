// Two-tier dispatch parity (DESIGN.md §4.12).
//
// The monomorphic tier (atomically<Core>, op_t<Core>) and the type-erased
// tier (atomically<Tx>, op_t<Tx>) are two instantiations of the same
// statements over the same descriptor. If the refactor is faithful, a
// deterministic sim-mode run must produce BIT-IDENTICAL statistics under
// both tiers — commits, aborts, per-cause abort attribution, and every
// read/compare/increment/read-set-economy counter — for all five
// algorithms. Any divergence means the tiers execute different logic.
//
// The shared state is owned by the fixture and reset (not reallocated)
// between runs: TL2-family read-set counters depend on address-hashed orec
// indices, so the comparison is only meaningful when both runs see the
// same addresses.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "containers/tarray.hpp"
#include "core/atomically.hpp"
#include "core/dispatch.hpp"
#include "workloads/mono.hpp"

namespace semstm {
namespace {

constexpr std::size_t kCells = 64;
constexpr std::int64_t kInitial = 100;

/// Exercises every primitive of the extended API — read, write, cmp,
/// cmp2, cmp_or, inc (with RAW promotion via the re-read after add) —
/// against caller-owned cells, so both dispatch tiers run over identical
/// addresses.
class ParityWorkload final : public MonoWorkload<ParityWorkload> {
 public:
  explicit ParityWorkload(TArray<std::int64_t>& cells) : cells_(cells) {}

  template <typename TxT>
  void op_t(unsigned, Rng& rng) {
    const auto a = static_cast<std::size_t>(rng.below(kCells));
    const auto b = static_cast<std::size_t>(rng.below(kCells));
    const auto kind = static_cast<unsigned>(rng.below(5));
    atomically<TxT>([&](TxT& tx) {
      switch (kind) {
        case 0:  // guarded transfer: cmp + inc/dec
          if (cells_[a].gte(tx, 1)) {
            cells_[a].sub(tx, 1);
            cells_[b].add(tx, 1);
          }
          break;
        case 1:  // address–address compare steering a write
          if (cells_[a].lt(tx, cells_[b])) {
            cells_[a].set(tx, cells_[a].get(tx) + 1);
          }
          break;
        case 2: {  // composed conditional (one cmp_or clause)
          const CmpTerm pass[2] = {
              term<std::int64_t>(cells_[a], Rel::SGT, kInitial),
              term<std::int64_t>(cells_[b], Rel::SLT, kInitial),
          };
          if (tx.cmp_or(pass, 2)) cells_[a].set(tx, kInitial);
          break;
        }
        case 3:  // increment then re-read: the RAW promotion path
          cells_[a].add(tx, 2);
          if (cells_[a].get(tx) > 2 * kInitial) cells_[a].sub(tx, 2);
          break;
        default:  // plain read/write traffic
          cells_[b].set(tx, cells_[a].get(tx));
          break;
      }
    });
  }

 private:
  TArray<std::int64_t>& cells_;
};

class DispatchParity : public ::testing::TestWithParam<const char*> {
 protected:
  void reset_cells() {
    for (std::size_t i = 0; i < kCells; ++i) {
      cells_[i].unsafe_set(kInitial);
    }
  }

  RunResult run(Dispatch dispatch) {
    reset_cells();
    ParityWorkload wl(cells_);
    RunConfig cfg;
    cfg.algo = GetParam();
    cfg.threads = 3;
    cfg.mode = ExecMode::kSim;
    cfg.ops_per_thread = 400;
    cfg.seed = 0xD15BA7C4;
    cfg.cm = "backoff";
    cfg.dispatch = dispatch;
    return run_workload(cfg, wl);
  }

  TArray<std::int64_t> cells_{kCells, kInitial};
};

TEST_P(DispatchParity, StaticAndVirtualTiersAreBitIdentical) {
  const RunResult v = run(Dispatch::kVirtual);
  const RunResult s = run(Dispatch::kStatic);

  EXPECT_GT(v.stats.commits, 0u);
  EXPECT_EQ(v.stats.starts, s.stats.starts);
  EXPECT_EQ(v.stats.commits, s.stats.commits);
  EXPECT_EQ(v.stats.aborts, s.stats.aborts);
  EXPECT_EQ(v.stats.exceptions, s.stats.exceptions);
  EXPECT_EQ(v.stats.retries, s.stats.retries);
  EXPECT_EQ(v.stats.fallbacks, s.stats.fallbacks);
  EXPECT_EQ(v.stats.max_consec_aborts, s.stats.max_consec_aborts);
  EXPECT_EQ(v.stats.reads, s.stats.reads);
  EXPECT_EQ(v.stats.writes, s.stats.writes);
  EXPECT_EQ(v.stats.compares, s.stats.compares);
  EXPECT_EQ(v.stats.compares2, s.stats.compares2);
  EXPECT_EQ(v.stats.increments, s.stats.increments);
  EXPECT_EQ(v.stats.promotions, s.stats.promotions);
  EXPECT_EQ(v.stats.validations, s.stats.validations);
  EXPECT_EQ(v.stats.readset_adds, s.stats.readset_adds);
  EXPECT_EQ(v.stats.readset_dups, s.stats.readset_dups);
  EXPECT_EQ(v.stats.validate_entries, s.stats.validate_entries);
  EXPECT_EQ(v.stats.clock_adoptions, s.stats.clock_adoptions);
  EXPECT_EQ(v.stats.epoch_retires, s.stats.epoch_retires);
  EXPECT_EQ(v.stats.epoch_reclaims, s.stats.epoch_reclaims);
  for (std::size_t c = 0; c < obs::kAbortCauseCount; ++c) {
    EXPECT_EQ(v.stats.abort_causes[c], s.stats.abort_causes[c])
        << "abort cause index " << c;
  }
  EXPECT_EQ(v.makespan, s.makespan);
}

TEST_P(DispatchParity, SimRunsAreBitIdenticalAcrossRepeats) {
  // Replay determinism of the scalable commit infrastructure (§4.16): the
  // GV4 clock, the announce-slot gate, and the SpinWait escalation must
  // leave the 1-carrier sim's yield-point sequence untouched, so the same
  // config over the same addresses reproduces every counter and the
  // makespan exactly. (Cross-binary TL2 counts may legitimately differ —
  // orec hashing is address-dependent — which is precisely why this
  // comparison runs within one process over fixture-owned cells.)
  const RunResult a = run(Dispatch::kStatic);
  const RunResult b = run(Dispatch::kStatic);
  EXPECT_GT(a.stats.commits, 0u);
  EXPECT_EQ(a.stats.starts, b.stats.starts);
  EXPECT_EQ(a.stats.commits, b.stats.commits);
  EXPECT_EQ(a.stats.aborts, b.stats.aborts);
  EXPECT_EQ(a.stats.validations, b.stats.validations);
  EXPECT_EQ(a.stats.readset_adds, b.stats.readset_adds);
  EXPECT_EQ(a.stats.readset_dups, b.stats.readset_dups);
  EXPECT_EQ(a.stats.validate_entries, b.stats.validate_entries);
  for (std::size_t c = 0; c < obs::kAbortCauseCount; ++c) {
    EXPECT_EQ(a.stats.abort_causes[c], b.stats.abort_causes[c])
        << "abort cause index " << c;
  }
  EXPECT_EQ(a.makespan, b.makespan);

  // In the 1-carrier sim the GV4 clock CAS can never lose (no yield point
  // between its load and CAS), so TL2-family commits must never adopt —
  // the exact property that keeps sim results identical to the historical
  // fetch_add clock.
  EXPECT_EQ(a.stats.clock_adoptions, 0u);
  EXPECT_EQ(b.stats.clock_adoptions, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, DispatchParity,
                         ::testing::Values("cgl", "norec", "snorec", "tl2",
                                           "stl2"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// -- dispatch_algorithm plumbing ---------------------------------------------

TEST(DispatchAlgorithm, TagMatchesAlgoIdForEveryName) {
  for (const std::string& name : algorithm_names()) {
    const AlgoId expected = algo_id(name);
    const AlgoId got = dispatch_algorithm(
        name, [](auto tag) { return decltype(tag)::id; });
    EXPECT_EQ(got, expected) << name;
  }
}

TEST(DispatchAlgorithm, TagCoreNameMatchesAlgorithmName) {
  for (const std::string& name : algorithm_names()) {
    const char* core_name = dispatch_algorithm(
        name, [](auto tag) { return decltype(tag)::tx_type::kName; });
    EXPECT_STREQ(core_name, name.c_str());
  }
}

TEST(DispatchAlgorithm, UnknownNameThrows) {
  EXPECT_THROW((void)algo_id("tinystm"), std::invalid_argument);
  EXPECT_THROW((void)make_algorithm("tinystm"), std::invalid_argument);
}

// -- make_algorithm option validation ----------------------------------------

TEST(MakeAlgorithmOptions, RejectsOrecLog2OutOfRangeNamingTheValue) {
  AlgoOptions opts;
  opts.orec_log2 = 0;
  try {
    (void)make_algorithm("tl2", opts);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("orec_log2 = 0"), std::string::npos)
        << e.what();
  }
  opts.orec_log2 = 40;
  try {
    (void)make_algorithm("norec", opts);  // validated for every algorithm
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("orec_log2 = 40"), std::string::npos)
        << e.what();
  }
}

TEST(MakeAlgorithmOptions, AcceptsBoundaryValues) {
  AlgoOptions opts;
  opts.orec_log2 = AlgoOptions::kOrecLog2Min;
  EXPECT_NE(make_algorithm("tl2", opts), nullptr);
  opts.orec_log2 = 20;  // large but sane; max would allocate gigabytes
  EXPECT_NE(make_algorithm("stl2", opts), nullptr);
}

// -- loud missing-context failure (release builds included) ------------------

TEST(CurrentTxDeath, FailsLoudlyWithNoBoundContext) {
  EXPECT_DEATH((void)current_tx(), "no transaction context bound");
}

TEST(CurrentTxDeath, AtomicallyFailsLoudlyWithNoBoundContext) {
  EXPECT_DEATH(atomically([](Tx&) {}), "no transaction context bound");
}

}  // namespace
}  // namespace semstm
