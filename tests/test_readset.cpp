// Unit tests for read-set / compare-set entries and semantic validation.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/readset.hpp"

namespace semstm {
namespace {

TEST(ReadSet, ValueEntryHoldsWhileValueUnchanged) {
  ReadSet rs;
  tword w{7};
  rs.append_value(&w, 7);
  EXPECT_TRUE(rs.begin()->holds());
  w.store(8);
  EXPECT_FALSE(rs.begin()->holds());  // value-based validation (NOrec)
  w.store(7);
  EXPECT_TRUE(rs.begin()->holds());   // ABA is fine for value validation
}

TEST(ReadSet, TrueCompareEntryStoresRelation) {
  // x > 0 observed true: entry must keep holding while x stays positive,
  // even when the exact value changes — the paper's "false conflict" case.
  ReadSet rs;
  tword x{to_word<std::int64_t>(5)};
  rs.append_cmp(&x, Rel::SGT, to_word<std::int64_t>(0), /*outcome=*/true);
  EXPECT_TRUE(rs.begin()->holds());
  x.store(to_word<std::int64_t>(123));  // concurrent change, still > 0
  EXPECT_TRUE(rs.begin()->holds());
  x.store(to_word<std::int64_t>(-1));   // semantic violation
  EXPECT_FALSE(rs.begin()->holds());
}

TEST(ReadSet, FalseCompareEntryStoresInverse) {
  // x > 10 observed false: the inverse (x <= 10) must keep holding.
  ReadSet rs;
  tword x{to_word<std::int64_t>(5)};
  rs.append_cmp(&x, Rel::SGT, to_word<std::int64_t>(10), /*outcome=*/false);
  EXPECT_TRUE(rs.begin()->holds());
  x.store(to_word<std::int64_t>(10));
  EXPECT_TRUE(rs.begin()->holds());
  x.store(to_word<std::int64_t>(11));
  EXPECT_FALSE(rs.begin()->holds());
}

TEST(ReadSet, AddressAddressEntryComparesBothCurrentValues) {
  ReadSet rs;
  tword head{3};
  tword tail{3};
  rs.append_cmp2(&head, Rel::EQ, &tail, /*outcome=*/true);
  EXPECT_TRUE(rs.begin()->holds());
  // Both move together (enqueue+dequeue pair): relation still holds.
  head.store(4);
  tail.store(4);
  EXPECT_TRUE(rs.begin()->holds());
  tail.store(9);
  EXPECT_FALSE(rs.begin()->holds());
}

TEST(ReadSet, ValueAndCmpOnSameAddressGetIndependentEntries) {
  // §4.1 read-after-read: a value snapshot and a semantic compare of the
  // same address are different observations — each validated on its own.
  ReadSet rs;
  tword x{1};
  rs.append_value(&x, 1);
  rs.append_cmp(&x, Rel::SGT, 0, true);
  EXPECT_EQ(rs.size(), 2u);
  x.store(2);
  auto it = rs.begin();
  EXPECT_FALSE(it->holds());       // value entry breaks
  EXPECT_TRUE((++it)->holds());    // semantic entry still true
}

TEST(ReadSet, IdenticalValueSnapshotDeduplicates) {
  // Re-reading an address re-observes the same value (anything else would
  // have aborted); the duplicate entry is skipped, so validation work is
  // O(unique reads) — and validation outcomes are unchanged, because
  // `addr EQ v` twice validates exactly like `addr EQ v` once.
  ReadSet rs;
  tword x{7};
  EXPECT_TRUE(rs.append_value(&x, 7));
  EXPECT_FALSE(rs.append_value(&x, 7));
  EXPECT_FALSE(rs.append_value(&x, 7));
  EXPECT_EQ(rs.size(), 1u);
  EXPECT_TRUE(rs.begin()->holds());
  x.store(8);
  EXPECT_FALSE(rs.begin()->holds());  // still value-validated
}

TEST(ReadSet, DifferentObservedValuesDoNotDeduplicate) {
  ReadSet rs;
  tword x{1};
  EXPECT_TRUE(rs.append_value(&x, 1));
  EXPECT_TRUE(rs.append_value(&x, 2));  // different snapshot: kept
  EXPECT_EQ(rs.size(), 2u);
}

TEST(ReadSet, DedupLooksBeyondImmediatelyPrecedingEntry) {
  // read A, read B, read A: the second A is within the dedup window even
  // though it is not the last entry.
  ReadSet rs;
  tword a{1};
  tword b{2};
  EXPECT_TRUE(rs.append_value(&a, 1));
  EXPECT_TRUE(rs.append_value(&b, 2));
  EXPECT_FALSE(rs.append_value(&a, 1));
  EXPECT_EQ(rs.size(), 2u);
}

TEST(ReadSet, DedupWindowIsBounded) {
  // A duplicate further back than kDedupWindow distinct entries is
  // re-appended — harmless (validated twice), and keeps the append O(1).
  ReadSet rs;
  tword a{1};
  std::vector<tword> spacers(ReadSet::kDedupWindow);
  EXPECT_TRUE(rs.append_value(&a, 1));
  for (std::size_t i = 0; i < spacers.size(); ++i) {
    spacers[i].store(static_cast<word_t>(i));
    EXPECT_TRUE(rs.append_value(&spacers[i], static_cast<word_t>(i)));
  }
  EXPECT_TRUE(rs.append_value(&a, 1));  // beyond the window: appended
  EXPECT_EQ(rs.size(), 2u + spacers.size());
}

TEST(ReadSet, CmpEntriesNeverDeduplicateAgainstValueEntries) {
  // A semantic EQ observed *false* must not be mistaken for (or swallow)
  // a plain value snapshot of the same address/operand.
  ReadSet rs;
  tword x{5};
  rs.append_cmp(&x, Rel::EQ, 3, /*outcome=*/false);  // x != 3 holds
  EXPECT_TRUE(rs.append_value(&x, 5));
  EXPECT_EQ(rs.size(), 2u);
  auto it = rs.begin();
  EXPECT_TRUE(it->semantic());
  EXPECT_FALSE((++it)->semantic());
}

TEST(ReadSet, MultiTermClauseValidatesAsUnitAndSkipsDedup) {
  // A composed disjunction occupies a head row plus continuation rows;
  // iteration stays clause-granular and holds() evaluates the whole OR.
  ReadSet rs;
  tword state{0};
  tword key{42};
  const CmpTerm terms[2] = {
      CmpTerm{&state, nullptr, 1, Rel::EQ},   // state == REMOVED(1)
      CmpTerm{&key, nullptr, 42, Rel::NEQ},   // key != probe
  };
  rs.append_clause(terms, 2, /*outcome=*/false);  // both false when recorded
  EXPECT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.rows(), 2u);
  EXPECT_TRUE(rs.begin()->holds());
  key.store(43);  // second disjunct flips: the OR outcome changes
  EXPECT_FALSE(rs.begin()->holds());
  key.store(42);
  state.store(1);  // first disjunct flips instead
  EXPECT_FALSE(rs.begin()->holds());
  // A same-address value append after the clause is NOT deduped against
  // clause rows.
  EXPECT_TRUE(rs.append_value(&state, 1));
  EXPECT_EQ(rs.size(), 2u);
}

TEST(ReadSet, ClauseIterationSkipsContinuationRows) {
  ReadSet rs;
  tword a{1};
  tword b{2};
  tword c{3};
  const CmpTerm terms[3] = {
      CmpTerm{&a, nullptr, 9, Rel::EQ},
      CmpTerm{&b, nullptr, 9, Rel::EQ},
      CmpTerm{&c, nullptr, 9, Rel::EQ},
  };
  rs.append_clause(terms, 3, /*outcome=*/false);
  rs.append_value(&a, 1);
  EXPECT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs.rows(), 4u);
  std::size_t clauses = 0;
  for (auto it = rs.begin(); it != rs.end(); ++it) {
    ++clauses;
    EXPECT_TRUE(it->holds());
  }
  EXPECT_EQ(clauses, 2u);
}

TEST(ReadSet, ZeroTermClauseRecordsNothing) {
  // An empty OR is constantly false — vacuous, nothing to revalidate.
  ReadSet rs;
  rs.append_clause(nullptr, 0, /*outcome=*/false);
  EXPECT_TRUE(rs.empty());
}

TEST(ReadSet, ClearResets) {
  ReadSet rs;
  tword x{1};
  rs.append_value(&x, 1);
  rs.clear();
  EXPECT_TRUE(rs.empty());
  EXPECT_EQ(rs.size(), 0u);
  // Post-clear, the dedup window must not see pre-clear entries.
  EXPECT_TRUE(rs.append_value(&x, 1));
}

}  // namespace
}  // namespace semstm
