// Unit tests for read-set / compare-set entries and semantic validation.
#include <gtest/gtest.h>

#include "runtime/readset.hpp"

namespace semstm {
namespace {

TEST(ReadSet, ValueEntryHoldsWhileValueUnchanged) {
  ReadSet rs;
  tword w{7};
  rs.append_value(&w, 7);
  EXPECT_TRUE(rs.begin()->holds());
  w.store(8);
  EXPECT_FALSE(rs.begin()->holds());  // value-based validation (NOrec)
  w.store(7);
  EXPECT_TRUE(rs.begin()->holds());   // ABA is fine for value validation
}

TEST(ReadSet, TrueCompareEntryStoresRelation) {
  // x > 0 observed true: entry must keep holding while x stays positive,
  // even when the exact value changes — the paper's "false conflict" case.
  ReadSet rs;
  tword x{to_word<std::int64_t>(5)};
  rs.append_cmp(&x, Rel::SGT, to_word<std::int64_t>(0), /*outcome=*/true);
  EXPECT_TRUE(rs.begin()->holds());
  x.store(to_word<std::int64_t>(123));  // concurrent change, still > 0
  EXPECT_TRUE(rs.begin()->holds());
  x.store(to_word<std::int64_t>(-1));   // semantic violation
  EXPECT_FALSE(rs.begin()->holds());
}

TEST(ReadSet, FalseCompareEntryStoresInverse) {
  // x > 10 observed false: the inverse (x <= 10) must keep holding.
  ReadSet rs;
  tword x{to_word<std::int64_t>(5)};
  rs.append_cmp(&x, Rel::SGT, to_word<std::int64_t>(10), /*outcome=*/false);
  EXPECT_TRUE(rs.begin()->holds());
  x.store(to_word<std::int64_t>(10));
  EXPECT_TRUE(rs.begin()->holds());
  x.store(to_word<std::int64_t>(11));
  EXPECT_FALSE(rs.begin()->holds());
}

TEST(ReadSet, AddressAddressEntryComparesBothCurrentValues) {
  ReadSet rs;
  tword head{3};
  tword tail{3};
  rs.append_cmp2(&head, Rel::EQ, &tail, /*outcome=*/true);
  EXPECT_TRUE(rs.begin()->holds());
  // Both move together (enqueue+dequeue pair): relation still holds.
  head.store(4);
  tail.store(4);
  EXPECT_TRUE(rs.begin()->holds());
  tail.store(9);
  EXPECT_FALSE(rs.begin()->holds());
}

TEST(ReadSet, DuplicateReadsGetIndependentEntries) {
  // §4.1 read-after-read: two entries are appended, each validated on its
  // own (the paper deliberately does not deduplicate).
  ReadSet rs;
  tword x{1};
  rs.append_value(&x, 1);
  rs.append_cmp(&x, Rel::SGT, 0, true);
  EXPECT_EQ(rs.size(), 2u);
  x.store(2);
  auto it = rs.begin();
  EXPECT_FALSE(it->holds());       // value entry breaks
  EXPECT_TRUE((++it)->holds());    // semantic entry still true
}

TEST(ReadSet, ClearResets) {
  ReadSet rs;
  tword x{1};
  rs.append_value(&x, 1);
  rs.clear();
  EXPECT_TRUE(rs.empty());
  EXPECT_EQ(rs.size(), 0u);
}

}  // namespace
}  // namespace semstm
