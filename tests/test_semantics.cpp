// Unit tests for the TM-friendly relation semantics (Table 1) and the
// Alg. 6 RAW rule (read-after-increment promotion bookkeeping).
#include <gtest/gtest.h>

#include <string>

#include "core/semantics.hpp"
#include "semstm.hpp"
#include "util/rng.hpp"

namespace semstm {
namespace {

constexpr Rel kAllRels[] = {Rel::EQ,  Rel::NEQ, Rel::SLT, Rel::SLE, Rel::SGT,
                            Rel::SGE, Rel::ULT, Rel::ULE, Rel::UGT, Rel::UGE};

TEST(Semantics, SignedOrderedRelations) {
  const word_t neg = to_word<std::int64_t>(-5);
  const word_t pos = to_word<std::int64_t>(3);
  EXPECT_TRUE(eval(Rel::SLT, neg, pos));
  EXPECT_TRUE(eval(Rel::SLE, neg, pos));
  EXPECT_FALSE(eval(Rel::SGT, neg, pos));
  EXPECT_FALSE(eval(Rel::SGE, neg, pos));
  EXPECT_TRUE(eval(Rel::SGE, pos, pos));
  EXPECT_TRUE(eval(Rel::SLE, pos, pos));
}

TEST(Semantics, UnsignedOrderedRelations) {
  // The same bit patterns compare the other way around unsigned.
  const word_t neg = to_word<std::int64_t>(-5);  // huge unsigned
  const word_t pos = to_word<std::int64_t>(3);
  EXPECT_TRUE(eval(Rel::UGT, neg, pos));
  EXPECT_FALSE(eval(Rel::ULT, neg, pos));
}

TEST(Semantics, EqualityRelations) {
  EXPECT_TRUE(eval(Rel::EQ, 7, 7));
  EXPECT_FALSE(eval(Rel::EQ, 7, 8));
  EXPECT_TRUE(eval(Rel::NEQ, 7, 8));
  EXPECT_FALSE(eval(Rel::NEQ, 7, 7));
}

TEST(Semantics, InverseIsAnInvolution) {
  for (Rel r : kAllRels) EXPECT_EQ(inverse(inverse(r)), r) << rel_name(r);
}

// Property (core of semantic validation correctness): for every relation
// and operand pair, exactly one of {rel, inverse(rel)} holds. This is what
// lets Alg. 6 line 34 store "result ? OP : Inverse(OP)" and validate it.
TEST(Semantics, RelationAndInverseAreComplementary) {
  Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    const word_t a = rng.next() >> (rng.below(64));
    const word_t b = rng.percent(30) ? a : (rng.next() >> rng.below(64));
    for (Rel r : kAllRels) {
      EXPECT_NE(eval(r, a, b), eval(inverse(r), a, b))
          << rel_name(r) << " a=" << a << " b=" << b;
    }
  }
}

TEST(Semantics, RelPickersFollowSignedness) {
  EXPECT_EQ(rel_lt<int>(), Rel::SLT);
  EXPECT_EQ(rel_lt<unsigned>(), Rel::ULT);
  EXPECT_EQ(rel_ge<long long>(), Rel::SGE);
  EXPECT_EQ(rel_gt<std::uint8_t>(), Rel::UGT);
  EXPECT_EQ(rel_le<std::int16_t>(), Rel::SLE);
}

TEST(Semantics, RelNamesAreUnique) {
  for (Rel a : kAllRels) {
    for (Rel b : kAllRels) {
      if (a != b) {
        EXPECT_STRNE(rel_name(a), rel_name(b));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// RAW promotion (Alg. 6 lines 17-23): reading an address with a pending
// increment converts the delta entry into a conventional read + write.
// Exercised for both semantic algorithms, which share the rule.
// ---------------------------------------------------------------------------

class RawPromotion : public ::testing::TestWithParam<std::string> {};

TEST_P(RawPromotion, ReadAfterIncPromotesExactlyOnce) {
  auto algo = make_algorithm(GetParam());
  ThreadCtx ctx(algo->make_tx());
  CtxBinder bind(ctx);
  TVar<long> v(100);

  atomically([&](Tx& tx) {
    v.add(tx, 7);
    EXPECT_EQ(v.get(tx), 107);  // promotion: delta folded over observed value
    EXPECT_EQ(v.get(tx), 107);  // second read hits the promoted WRITE entry
  });
  EXPECT_EQ(v.unsafe_get(), 107);
  EXPECT_EQ(ctx.tx->stats.promotions, 1u) << "re-read must not double-promote";
  EXPECT_EQ(ctx.tx->stats.increments, 1u);
}

TEST_P(RawPromotion, IncAfterPromotionAccumulatesOverWriteEntry) {
  auto algo = make_algorithm(GetParam());
  ThreadCtx ctx(algo->make_tx());
  CtxBinder bind(ctx);
  TVar<long> v(10);

  atomically([&](Tx& tx) {
    v.add(tx, 5);
    EXPECT_EQ(v.get(tx), 15);  // promotes the entry to WRITE(15)
    v.add(tx, 2);              // merges into the WRITE, no second promotion
    EXPECT_EQ(v.get(tx), 17);
  });
  EXPECT_EQ(v.unsafe_get(), 17);
  EXPECT_EQ(ctx.tx->stats.promotions, 1u);
}

TEST_P(RawPromotion, ReadBeforeIncDoesNotPromote) {
  auto algo = make_algorithm(GetParam());
  ThreadCtx ctx(algo->make_tx());
  CtxBinder bind(ctx);
  TVar<long> v(3);

  atomically([&](Tx& tx) {
    EXPECT_EQ(v.get(tx), 3);  // plain read; nothing buffered yet
    v.add(tx, 4);             // delta entry, applied blind at commit
  });
  EXPECT_EQ(v.unsafe_get(), 7);
  EXPECT_EQ(ctx.tx->stats.promotions, 0u);
}

TEST_P(RawPromotion, DecThenReadPromotesNegativeDelta) {
  auto algo = make_algorithm(GetParam());
  ThreadCtx ctx(algo->make_tx());
  CtxBinder bind(ctx);
  TVar<long> v(50);

  atomically([&](Tx& tx) {
    v.sub(tx, 8);
    EXPECT_EQ(v.get(tx), 42);  // wrapped delta + observed value reads right
  });
  EXPECT_EQ(v.unsafe_get(), 42);
  EXPECT_EQ(ctx.tx->stats.promotions, 1u);
}

TEST_P(RawPromotion, CmpOverPendingIncPromotesToo) {
  // cmp consults the write-set through the same RAW path as get.
  auto algo = make_algorithm(GetParam());
  ThreadCtx ctx(algo->make_tx());
  CtxBinder bind(ctx);
  TVar<long> v(1);

  atomically([&](Tx& tx) {
    v.add(tx, 1);
    EXPECT_TRUE(v.eq(tx, 2));  // evaluates against the promoted value
  });
  EXPECT_EQ(v.unsafe_get(), 2);
  EXPECT_EQ(ctx.tx->stats.promotions, 1u);
}

INSTANTIATE_TEST_SUITE_P(SemanticAlgorithms, RawPromotion,
                         ::testing::Values("snorec", "stl2"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace semstm
