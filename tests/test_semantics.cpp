// Unit tests for the TM-friendly relation semantics (Table 1).
#include <gtest/gtest.h>

#include "core/semantics.hpp"
#include "util/rng.hpp"

namespace semstm {
namespace {

constexpr Rel kAllRels[] = {Rel::EQ,  Rel::NEQ, Rel::SLT, Rel::SLE, Rel::SGT,
                            Rel::SGE, Rel::ULT, Rel::ULE, Rel::UGT, Rel::UGE};

TEST(Semantics, SignedOrderedRelations) {
  const word_t neg = to_word<std::int64_t>(-5);
  const word_t pos = to_word<std::int64_t>(3);
  EXPECT_TRUE(eval(Rel::SLT, neg, pos));
  EXPECT_TRUE(eval(Rel::SLE, neg, pos));
  EXPECT_FALSE(eval(Rel::SGT, neg, pos));
  EXPECT_FALSE(eval(Rel::SGE, neg, pos));
  EXPECT_TRUE(eval(Rel::SGE, pos, pos));
  EXPECT_TRUE(eval(Rel::SLE, pos, pos));
}

TEST(Semantics, UnsignedOrderedRelations) {
  // The same bit patterns compare the other way around unsigned.
  const word_t neg = to_word<std::int64_t>(-5);  // huge unsigned
  const word_t pos = to_word<std::int64_t>(3);
  EXPECT_TRUE(eval(Rel::UGT, neg, pos));
  EXPECT_FALSE(eval(Rel::ULT, neg, pos));
}

TEST(Semantics, EqualityRelations) {
  EXPECT_TRUE(eval(Rel::EQ, 7, 7));
  EXPECT_FALSE(eval(Rel::EQ, 7, 8));
  EXPECT_TRUE(eval(Rel::NEQ, 7, 8));
  EXPECT_FALSE(eval(Rel::NEQ, 7, 7));
}

TEST(Semantics, InverseIsAnInvolution) {
  for (Rel r : kAllRels) EXPECT_EQ(inverse(inverse(r)), r) << rel_name(r);
}

// Property (core of semantic validation correctness): for every relation
// and operand pair, exactly one of {rel, inverse(rel)} holds. This is what
// lets Alg. 6 line 34 store "result ? OP : Inverse(OP)" and validate it.
TEST(Semantics, RelationAndInverseAreComplementary) {
  Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    const word_t a = rng.next() >> (rng.below(64));
    const word_t b = rng.percent(30) ? a : (rng.next() >> rng.below(64));
    for (Rel r : kAllRels) {
      EXPECT_NE(eval(r, a, b), eval(inverse(r), a, b))
          << rel_name(r) << " a=" << a << " b=" << b;
    }
  }
}

TEST(Semantics, RelPickersFollowSignedness) {
  EXPECT_EQ(rel_lt<int>(), Rel::SLT);
  EXPECT_EQ(rel_lt<unsigned>(), Rel::ULT);
  EXPECT_EQ(rel_ge<long long>(), Rel::SGE);
  EXPECT_EQ(rel_gt<std::uint8_t>(), Rel::UGT);
  EXPECT_EQ(rel_le<std::int16_t>(), Rel::SLE);
}

TEST(Semantics, RelNamesAreUnique) {
  for (Rel a : kAllRels) {
    for (Rel b : kAllRels) {
      if (a != b) {
        EXPECT_STRNE(rel_name(a), rel_name(b));
      }
    }
  }
}

}  // namespace
}  // namespace semstm
