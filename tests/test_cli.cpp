// Strict CLI / environment parsing (PR 3). Malformed numbers used to be
// silently truncated by atoll ("--ops=10k" ran 10 ops); now every numeric
// token must parse completely or the process exits(2) naming the token.
// Rejection paths are death tests: the parser is specified to terminate.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "util/cli.hpp"

namespace semstm {
namespace {

Cli make_cli(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;  // keep c_str()s alive
  storage = std::move(args);
  argv.push_back(const_cast<char*>("prog"));
  for (auto& a : storage) argv.push_back(const_cast<char*>(a.c_str()));
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesWellFormedInts) {
  Cli cli = make_cli({"--ops=1000", "--threads", "4", "--neg=-7"});
  EXPECT_EQ(cli.get_int("ops", 0), 1000);
  EXPECT_EQ(cli.get_int("threads", 0), 4);
  EXPECT_EQ(cli.get_int("neg", 0), -7);
  EXPECT_EQ(cli.get_int("absent", 42), 42);
}

TEST(Cli, ParsesWellFormedDoublesAndLists) {
  Cli cli = make_cli({"--frac=0.25", "--threads=1,2,8"});
  EXPECT_DOUBLE_EQ(cli.get_double("frac", 0.0), 0.25);
  const std::vector<unsigned> t = cli.get_list("threads", {});
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], 1u);
  EXPECT_EQ(t[1], 2u);
  EXPECT_EQ(t[2], 8u);
  const std::vector<unsigned> d = cli.get_list("absent", {3, 5});
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0], 3u);
}

TEST(CliDeath, RejectsTrailingGarbageInt) {
  Cli cli = make_cli({"--ops=10k"});
  EXPECT_EXIT(cli.get_int("ops", 0), ::testing::ExitedWithCode(2),
              "--ops: malformed number '10k'");
}

TEST(CliDeath, RejectsEmptyValue) {
  Cli cli = make_cli({"--ops="});
  EXPECT_EXIT(cli.get_int("ops", 0), ::testing::ExitedWithCode(2),
              "malformed number");
}

TEST(CliDeath, RejectsGarbageDouble) {
  Cli cli = make_cli({"--frac=0.5abc"});
  EXPECT_EXIT(cli.get_double("frac", 0.0), ::testing::ExitedWithCode(2),
              "--frac: malformed number '0.5abc'");
}

TEST(CliDeath, RejectsSemicolonSeparatedList) {
  Cli cli = make_cli({"--threads=2;4"});
  EXPECT_EXIT(cli.get_list("threads", {}), ::testing::ExitedWithCode(2),
              "--threads: malformed number '2;4'");
}

TEST(CliDeath, RejectsListElementWithSuffix) {
  Cli cli = make_cli({"--threads=1,4x,8"});
  EXPECT_EXIT(cli.get_list("threads", {}), ::testing::ExitedWithCode(2),
              "--threads: malformed number '4x'");
}

TEST(CliDeath, RejectsTrailingCommaInList) {
  Cli cli = make_cli({"--threads=1,2,"});
  EXPECT_EXIT(cli.get_list("threads", {}), ::testing::ExitedWithCode(2),
              "malformed number");
}

TEST(CliDeath, RejectsNegativeListElement) {
  Cli cli = make_cli({"--threads=-1"});
  EXPECT_EXIT(cli.get_list("threads", {}), ::testing::ExitedWithCode(2),
              "malformed number");
}

TEST(CliDeath, RejectsUnrecognizedArgument) {
  EXPECT_EXIT(make_cli({"ops=10"}), ::testing::ExitedWithCode(2),
              "unrecognized argument");
}

// The EnvParse tests mutate the environment from the single gtest thread
// before any transaction/scheduler machinery starts, so the setenv/getenv
// race concurrency-mt-unsafe flags cannot happen here.
// NOLINTBEGIN(concurrency-mt-unsafe)
TEST(EnvParse, UsesDefaultWhenUnsetAndParsesWhenSet) {
  ::unsetenv("SEMSTM_TEST_U64");
  EXPECT_EQ(env_u64_or("SEMSTM_TEST_U64", 17u), 17u);
  ::setenv("SEMSTM_TEST_U64", "123", 1);
  EXPECT_EQ(env_u64_or("SEMSTM_TEST_U64", 17u), 123u);
  ::unsetenv("SEMSTM_TEST_U64");
}

TEST(EnvParseDeath, RejectsGarbageEnvValue) {
  ::setenv("SEMSTM_TEST_U64", "12q", 1);
  EXPECT_EXIT(env_u64_or("SEMSTM_TEST_U64", 17u),
              ::testing::ExitedWithCode(2),
              "SEMSTM_TEST_U64: malformed number '12q'");
  ::unsetenv("SEMSTM_TEST_U64");
}

TEST(EnvParseDeath, RejectsNegativeEnvValue) {
  ::setenv("SEMSTM_TEST_U64", "-3", 1);
  EXPECT_EXIT(env_u64_or("SEMSTM_TEST_U64", 17u),
              ::testing::ExitedWithCode(2), "malformed number");
  ::unsetenv("SEMSTM_TEST_U64");
}
// NOLINTEND(concurrency-mt-unsafe)

}  // namespace
}  // namespace semstm
