// Contention-management tests: policy units, the serial-irrevocable gate,
// retry-loop accounting (exceptions vs aborts), and the livelock stress —
// a deliberately starving transaction that only resolves with the
// bounded-retry + serial-irrevocable fallback enabled.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/contention.hpp"
#include "runtime/serial_gate.hpp"
#include "sched/thread_runner.hpp"
#include "sched/virtual_scheduler.hpp"
#include "semstm.hpp"
#include "workloads/driver.hpp"

namespace semstm {
namespace {

// ---------------------------------------------------------------------------
// Policy units.
// ---------------------------------------------------------------------------

TEST(Backoff, DistinctSeedsDrawDistinctPauseSequences) {
  // The historical lockstep bug: identical seeds → identical sequences.
  Backoff a(1), b(2), a2(1);
  std::vector<std::uint64_t> sa, sb, sa2;
  for (int i = 0; i < 12; ++i) {
    sa.push_back(a.pause());
    sb.push_back(b.pause());
    sa2.push_back(a2.pause());
  }
  EXPECT_NE(sa, sb) << "different seeds must decorrelate backoff";
  EXPECT_EQ(sa, sa2) << "same seed must stay deterministic";
}

TEST(Context, DefaultCtxSeedsAreUniquePerContext) {
  const std::uint64_t s1 = default_ctx_seed();
  const std::uint64_t s2 = default_ctx_seed();
  const std::uint64_t s3 = default_ctx_seed();
  EXPECT_NE(s1, s2);
  EXPECT_NE(s2, s3);
  EXPECT_NE(s1, s3);
}

TEST(ContentionManager, BackoffAndYieldNeverEscalate) {
  BackoffCm backoff(7);
  YieldCm yield;
  for (std::uint64_t k = 1; k <= 300; ++k) {
    EXPECT_FALSE(backoff.on_abort(k));
    EXPECT_FALSE(yield.on_abort(k));
  }
}

TEST(ContentionManager, BoundedRetryEscalatesExactlyAtLimit) {
  BoundedRetryCm cm(7, 5);
  for (std::uint64_t k = 1; k < 5; ++k) {
    EXPECT_FALSE(cm.on_abort(k)) << "premature escalation at " << k;
  }
  EXPECT_TRUE(cm.on_abort(5));
  EXPECT_TRUE(cm.on_abort(6));  // stays escalation-willing past the limit
}

TEST(ContentionManager, FactoryKnowsAllNamesAndRejectsUnknown) {
  for (const std::string& name : contention_manager_names()) {
    auto cm = make_contention_manager(name, 1, 4);
    ASSERT_NE(cm, nullptr);
    EXPECT_EQ(cm->name(), name);
  }
  EXPECT_THROW(make_contention_manager("aggressive", 1), std::invalid_argument);
}

TEST(SerialGate, TokenStateMachine) {
  SerialGate g;
  int a = 0, b = 0;
  EXPECT_FALSE(g.held());
  g.enter(&b);
  g.exit(&b);
  g.acquire(&a);
  EXPECT_TRUE(g.held());
  EXPECT_TRUE(g.held_by(&a));
  EXPECT_FALSE(g.held_by(&b));
  g.release();
  EXPECT_FALSE(g.held());
  g.enter(&b);  // reusable after release
  g.exit(&b);
}

// ---------------------------------------------------------------------------
// Retry-loop accounting: user exceptions roll back but are counted as
// `exceptions`, not aborts, and leave the descriptor reusable (locks and
// gate registration released) — see the contract in core/stats.hpp.
// ---------------------------------------------------------------------------

TEST(ExceptionAccounting, UserExceptionIsNotAnAbort) {
  for (const std::string& name : algorithm_names()) {
    SCOPED_TRACE(name);
    auto algo = make_algorithm(name);
    ThreadCtx ctx(algo->make_tx());
    CtxBinder bind(ctx);
    TVar<long> x(1);

    EXPECT_THROW(atomically([&](Tx& tx) {
                   x.set(tx, 99);
                   throw std::runtime_error("user bug");
                 }),
                 std::runtime_error);
    const TxStats& s = ctx.tx->stats;
    EXPECT_EQ(s.starts, 1u);
    EXPECT_EQ(s.commits, 0u);
    EXPECT_EQ(s.aborts, 0u) << "a user exception must not skew abort_pct";
    EXPECT_EQ(s.exceptions, 1u);
    EXPECT_EQ(s.starts, s.commits + s.aborts + s.exceptions);
    EXPECT_EQ(x.unsafe_get(), 1) << "rolled-back write leaked";

    // The descriptor (and for CGL, the global lock) must be fully released.
    atomically([&](Tx& tx) { x.set(tx, 3); });
    EXPECT_EQ(x.unsafe_get(), 3);
    EXPECT_EQ(ctx.tx->stats.commits, 1u);
  }
}

TEST(ExceptionAccounting, IdentityHoldsUnderContendedSimRun) {
  class HotCounter final : public Workload {
   public:
    void op(unsigned, Rng&) override {
      atomically([&](Tx& tx) { v.set(tx, v.get(tx) + 1); });
    }
    TVar<long> v{0};
  };
  HotCounter w;
  RunConfig cfg;
  cfg.algo = "norec";
  cfg.mode = ExecMode::kSim;
  cfg.threads = 8;
  cfg.ops_per_thread = 300;
  const RunResult r = run_workload(cfg, w);
  EXPECT_GT(r.stats.aborts, 0u);
  EXPECT_EQ(r.stats.starts, r.stats.commits + r.stats.aborts);
  EXPECT_EQ(r.stats.retries, r.stats.aborts);
  EXPECT_GT(r.stats.max_consec_aborts, 0u);
}

// ---------------------------------------------------------------------------
// The livelock rig. One victim transaction reads every variable and writes
// a summary; aggressor threads hammer the same variables with short
// conflicting increments *until the victim resolves*. Under any
// non-escalating policy the victim starves: every attempt spans many
// aggressor commits, each of which invalidates it. The bounded-retry
// policy escalates the victim to the serial-irrevocable token, the
// aggressors quiesce at begin(), and the victim commits alone.
// ---------------------------------------------------------------------------

constexpr int kVars = 24;

struct LivelockResult {
  bool victim_committed = false;
  TxStats victim;
  TxStats total;
  std::uint64_t aggressor_commits = 0;
  long var_sum = 0;
  long out = 0;
};

struct GiveUp {};

LivelockResult run_livelock(const std::string& algo_name,
                            const std::string& victim_cm,
                            std::uint64_t retry_limit,
                            std::uint64_t victim_guard, unsigned threads,
                            ExecMode mode) {
  auto algo = make_algorithm(algo_name);
  std::vector<std::unique_ptr<TVar<long>>> vars;
  vars.reserve(kVars);
  for (int i = 0; i < kVars; ++i) {
    vars.push_back(std::make_unique<TVar<long>>(0));
  }
  TVar<long> out(0);

  SplitMix64 seeder(0xC04EF5EEDULL);
  std::vector<std::unique_ptr<ThreadCtx>> ctxs;
  ctxs.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    const std::uint64_t s = seeder.next();
    ctxs.push_back(std::make_unique<ThreadCtx>(
        algo->make_tx(), s,
        t == 0 ? make_contention_manager(victim_cm, s, retry_limit)
               : make_contention_manager("backoff", s)));
  }

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> aggressor_commits{0};
  std::atomic<bool> victim_committed{false};

  auto body = [&](unsigned tid) {
    CtxBinder bind(*ctxs[tid]);
    if (tid == 0) {
      // Victim: one long read-everything transaction. The guard bounds the
      // test when the policy provides no escape (the livelock case).
      std::uint64_t attempts = 0;
      try {
        atomically([&](Tx& tx) {
          if (++attempts > victim_guard) throw GiveUp{};
          long sum = 0;
          for (auto& v : vars) sum += v->get(tx);
          out.set(tx, sum + 1);
        });
        victim_committed.store(true, std::memory_order_release);
      } catch (const GiveUp&) {
      }
      done.store(true, std::memory_order_release);
    } else {
      // Aggressors: short conflicting increments until the victim resolves.
      // The iteration cap is a safety net against driver bugs only.
      for (std::uint64_t iter = 0;
           !done.load(std::memory_order_acquire) && iter < 500000; ++iter) {
        TVar<long>& v =
            *vars[(static_cast<std::uint64_t>(tid) * 7 + iter) % kVars];
        atomically([&](Tx& tx) { v.set(tx, v.get(tx) + 1); });
        aggressor_commits.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  if (mode == ExecMode::kSim) {
    sched::VirtualScheduler sim(sched::SimOptions{.seed = 42});
    sim.run(threads, body);
  } else {
    sched::run_threads(threads, body);
  }

  LivelockResult r;
  r.victim_committed = victim_committed.load(std::memory_order_acquire);
  r.victim = ctxs[0]->tx->stats;
  for (const auto& c : ctxs) r.total += c->tx->stats;
  r.aggressor_commits = aggressor_commits.load(std::memory_order_relaxed);
  for (const auto& v : vars) r.var_sum += v->unsafe_get();
  r.out = out.unsafe_get();
  return r;
}

class LivelockFallback : public ::testing::TestWithParam<std::string> {};

// Acceptance: with bounded-retry + serial-irrevocable enabled the rig
// terminates and every transaction commits, for all five algorithms.
TEST_P(LivelockFallback, BoundedRetryFallbackGuaranteesVictimCommit) {
  const std::string algo = GetParam();
  const LivelockResult r =
      run_livelock(algo, "bounded", /*retry_limit=*/8,
                   /*victim_guard=*/100000, /*threads=*/8, ExecMode::kSim);

  EXPECT_TRUE(r.victim_committed);
  EXPECT_EQ(r.victim.commits, 1u);
  EXPECT_EQ(r.victim.exceptions, 0u) << "guard tripped: fallback too late";
  // Each committed aggressor op added exactly 1 to exactly one var; the
  // victim wrote only `out`. Conservation proves no lost updates around
  // the token hand-off.
  EXPECT_EQ(r.var_sum, static_cast<long>(r.aggressor_commits));
  EXPECT_GE(r.out, 1);
  EXPECT_EQ(r.total.starts,
            r.total.commits + r.total.aborts + r.total.exceptions);
  if (algo == "cgl") {
    // The global lock never aborts, so the fallback never arms.
    EXPECT_EQ(r.victim.aborts, 0u);
    EXPECT_EQ(r.victim.fallbacks, 0u);
  } else {
    EXPECT_GE(r.victim.aborts, 8u) << "rig produced no starvation";
    EXPECT_EQ(r.victim.fallbacks, 1u)
        << "the serial-irrevocable attempt must commit first try";
    EXPECT_GE(r.victim.max_consec_aborts, 8u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, LivelockFallback,
                         ::testing::Values("cgl", "norec", "snorec", "tl2",
                                           "stl2"),
                         [](const auto& info) { return info.param; });

// The control: the identical rig under pure randomized backoff livelocks —
// the victim starves past the attempt guard without ever committing. This
// is the pathology the fallback exists to break (deterministic simulator,
// so this is a stable fact, not a flake).
TEST(LivelockFallback, PureBackoffStarvesTheVictim) {
  for (const std::string algo : {"norec", "tl2"}) {
    SCOPED_TRACE(algo);
    const LivelockResult r =
        run_livelock(algo, "backoff", /*retry_limit=*/0,
                     /*victim_guard=*/60, /*threads=*/8, ExecMode::kSim);

    EXPECT_FALSE(r.victim_committed) << "rig no longer livelocks";
    EXPECT_EQ(r.victim.commits, 0u);
    EXPECT_GE(r.victim.aborts, 59u);
    EXPECT_EQ(r.victim.fallbacks, 0u);
    EXPECT_EQ(r.victim.exceptions, 1u);  // the guard's GiveUp roll-back
    EXPECT_EQ(r.total.starts,
              r.total.commits + r.total.aborts + r.total.exceptions);
    EXPECT_EQ(r.var_sum, static_cast<long>(r.aggressor_commits));
  }
}

// Real-thread variant (the TSan target; see scripts/ci_sanitize.sh): on a
// multi-core host the victim genuinely races the aggressors, on a single
// core it may commit within a timeslice — either way the bounded policy
// must terminate with the victim committed and no lost updates.
TEST(LivelockFallbackReal, BoundedRetryTerminatesOnRealThreads) {
  for (const std::string& algo : algorithm_names()) {
    SCOPED_TRACE(algo);
    const LivelockResult r =
        run_livelock(algo, "bounded", /*retry_limit=*/8,
                     /*victim_guard=*/100000, /*threads=*/4, ExecMode::kReal);
    EXPECT_TRUE(r.victim_committed);
    EXPECT_EQ(r.victim.commits, 1u);
    EXPECT_EQ(r.var_sum, static_cast<long>(r.aggressor_commits));
    EXPECT_EQ(r.total.starts,
              r.total.commits + r.total.aborts + r.total.exceptions);
  }
}

// The bounded policy composes with the standard driver path: a hot-counter
// workload under "bounded" commits everything and reports any fallbacks
// through the aggregated RunResult stats (the bench JSON's source).
TEST(LivelockFallback, DriverWiresPolicyAndCountersThrough) {
  class HotCounter final : public Workload {
   public:
    void op(unsigned, Rng&) override {
      atomically([&](Tx& tx) { v.set(tx, v.get(tx) + 1); });
    }
    TVar<long> v{0};
  };
  HotCounter w;
  RunConfig cfg;
  cfg.algo = "tl2";
  cfg.mode = ExecMode::kSim;
  cfg.threads = 8;
  cfg.ops_per_thread = 200;
  cfg.cm = "bounded";
  cfg.retry_limit = 2;  // aggressive, to exercise the token under load
  const RunResult r = run_workload(cfg, w);
  EXPECT_EQ(w.v.unsafe_get(), 8 * 200);
  EXPECT_EQ(r.stats.commits, 8u * 200u);
  EXPECT_GT(r.stats.fallbacks, 0u) << "limit 2 under this load must escalate";
  EXPECT_EQ(r.stats.starts, r.stats.commits + r.stats.aborts);
}

}  // namespace
}  // namespace semstm
