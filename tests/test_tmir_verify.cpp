// Tests for the tmir static-analysis layer: the structural verifier
// (pass_verify), the semantic-rewrite legality lint (pass_tm_lint), the
// liveness-based tm_optimize, and the interpreter's malformed-IR guards.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "semstm.hpp"
#include "tmir/analysis/cfg.hpp"
#include "tmir/analysis/lint.hpp"
#include "tmir/analysis/liveness.hpp"
#include "tmir/analysis/verify.hpp"
#include "tmir/builder.hpp"
#include "tmir/interp.hpp"
#include "tmir/kernels.hpp"
#include "tmir/passes.hpp"

namespace semstm::tmir {
namespace {

bool has_rule(const std::vector<Diagnostic>& diags, const char* rule) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return std::string(d.rule) == rule;
  });
}

std::vector<Function> all_kernels() {
  std::vector<Function> ks;
  ks.push_back(build_probe_kernel());
  ks.push_back(build_insert_kernel());
  ks.push_back(build_remove_kernel());
  ks.push_back(build_reserve_kernel(4));
  ks.push_back(build_center_update_kernel(8));
  return ks;
}

// ---------------------------------------------------------------------------
// pass_verify: well-formed IR is accepted at every pipeline stage
// ---------------------------------------------------------------------------

TEST(Verify, AcceptsEveryKernelAtEveryStage) {
  for (Function& f : all_kernels()) {
    EXPECT_TRUE(pass_verify(f).empty()) << f.name << " raw";
    pass_tm_rbe(f);
    EXPECT_TRUE(pass_verify(f).empty()) << f.name << " post-rbe";
    pass_tm_mark(f);
    EXPECT_TRUE(pass_verify(f).empty()) << f.name << " marked";
    pass_tm_optimize(f);
    EXPECT_TRUE(pass_verify(f).empty()) << f.name << " optimized";
  }
}

TEST(Verify, DiagnosticsCarryLocationAndRule) {
  Builder b("loc", 0, 0);
  b.konst(1);  // no terminator
  Function f = b.take();
  const auto diags = pass_verify(f);
  ASSERT_FALSE(diags.empty());
  EXPECT_STREQ(diags[0].rule, "missing-terminator");
  EXPECT_EQ(diags[0].block, 0u);
  const std::string s = format_diagnostic(f, diags[0]);
  EXPECT_NE(s.find("loc:0:"), std::string::npos);
  EXPECT_NE(s.find("missing-terminator"), std::string::npos);
}

// --- the malformed-IR class catalogue --------------------------------------

TEST(Verify, RejectsMissingTerminator) {
  Builder b("f", 0, 0);
  b.konst(1);
  Function f = b.take();
  EXPECT_TRUE(has_rule(pass_verify(f), "missing-terminator"));
}

TEST(Verify, RejectsInstructionAfterTerminator) {
  Builder b("f", 0, 0);
  b.ret(b.konst(0));
  Function f = b.take();
  f.blocks[0].code.push_back(
      {.op = Op::kConst, .dst = static_cast<std::int32_t>(f.num_temps++)});
  EXPECT_TRUE(has_rule(pass_verify(f), "terminator-not-last"));
}

TEST(Verify, RejectsBranchOutOfRange) {
  Builder b("f", 0, 0);
  b.br(0);
  Function f = b.take();
  f.blocks[0].code.back().imm = 57;
  EXPECT_TRUE(has_rule(pass_verify(f), "branch-out-of-range"));
}

TEST(Verify, RejectsCbrElseTargetOutOfRange) {
  Builder b("f", 0, 0);
  const auto t = b.new_block();
  b.cbr(b.konst(1), t, t);
  b.set_block(t);
  b.ret(b.konst(0));
  Function f = b.take();
  for (Instr& i : f.blocks[0].code) {
    if (i.op == Op::kCbr) i.b = 99;
  }
  EXPECT_TRUE(has_rule(pass_verify(f), "branch-out-of-range"));
}

TEST(Verify, RejectsTempOutOfRange) {
  Builder b("f", 0, 0);
  b.ret(b.konst(0));
  Function f = b.take();
  f.blocks[0].code[0].a = 1000;  // konst has no operand; smash one in
  f.blocks[0].code[0].op = Op::kTmLoad;
  EXPECT_TRUE(has_rule(pass_verify(f), "temp-out-of-range"));
}

TEST(Verify, RejectsMultipleAssignment) {
  Builder b("f", 0, 0);
  const auto t = b.konst(1);
  b.ret(t);
  Function f = b.take();
  f.blocks[0].code.insert(f.blocks[0].code.begin(),
                          {.op = Op::kConst, .dst = t, .imm = 2});
  EXPECT_TRUE(has_rule(pass_verify(f), "multiple-assignment"));
}

TEST(Verify, RejectsUndefinedTemp) {
  Builder b("f", 0, 0);
  b.ret(b.konst(0));
  Function f = b.take();
  f.num_temps = 2;
  f.blocks[0].code.back().a = 1;  // ret t1: never defined
  EXPECT_TRUE(has_rule(pass_verify(f), "undefined-temp"));
}

TEST(Verify, RejectsUseOfDeadDef) {
  Builder b("f", 0, 0);
  const auto t = b.konst(7);
  b.ret(t);
  Function f = b.take();
  f.blocks[0].code[0].dead = true;  // kill the def, keep the use
  EXPECT_TRUE(has_rule(pass_verify(f), "use-of-dead-def"));
}

TEST(Verify, RejectsDefNotDominatingUse) {
  // Diamond: t defined only in the then-branch, used at the join.
  Builder b("f", 1, 0);
  const auto then_b = b.new_block();
  const auto else_b = b.new_block();
  const auto join = b.new_block();
  b.cbr(b.arg(0), then_b, else_b);
  b.set_block(then_b);
  const auto t = b.konst(1);
  b.br(join);
  b.set_block(else_b);
  b.br(join);
  b.set_block(join);
  b.ret(t);  // neither branch dominates the join
  Function f = b.take();
  EXPECT_TRUE(has_rule(pass_verify(f), "def-not-dominating"));
}

TEST(Verify, RejectsArgIndexOutOfRange) {
  Builder b("f", 1, 0);
  b.ret(b.arg(0));
  Function f = b.take();
  f.blocks[0].code[0].imm = 5;
  EXPECT_TRUE(has_rule(pass_verify(f), "arg-out-of-range"));
}

TEST(Verify, RejectsLocalSlotOutOfRange) {
  Builder b("f", 0, 1);
  b.store_local(0, b.konst(1));
  b.ret(b.load_local(0));
  Function f = b.take();
  for (Instr& i : f.blocks[0].code) {
    if (i.op == Op::kStoreLocal) i.imm = 9;
  }
  EXPECT_TRUE(has_rule(pass_verify(f), "local-out-of-range"));
}

TEST(Verify, RejectsMissingDstAndOperands) {
  Builder b("f", 0, 0);
  const auto x = b.konst(1);
  b.ret(b.add(x, x));
  Function f = b.take();
  for (Instr& i : f.blocks[0].code) {
    if (i.op == Op::kAdd) {
      i.dst = -1;  // producer without a destination
      i.b = -1;    // binary op missing an operand
    }
  }
  const auto diags = pass_verify(f);
  EXPECT_TRUE(has_rule(diags, "missing-dst"));
  EXPECT_TRUE(has_rule(diags, "missing-operand"));
}

TEST(Verify, RejectsDstOnVoidOp) {
  Builder b("f", 1, 0);
  b.tm_store(b.arg(0), b.konst(1));
  b.ret(b.konst(0));
  Function f = b.take();
  for (Instr& i : f.blocks[0].code) {
    if (i.op == Op::kTmStore) i.dst = 0;
  }
  EXPECT_TRUE(has_rule(pass_verify(f), "dst-on-void"));
}

TEST(Verify, RejectsSemanticBuiltinBeforeMark) {
  Builder b("f", 2, 0);
  const auto addr = b.arg(0);
  const auto delta = b.arg(1);
  b.tm_store(addr, delta);
  b.ret(b.konst(0));
  Function f = b.take();
  for (Instr& i : f.blocks[0].code) {
    if (i.op == Op::kTmStore) i.op = Op::kTmInc;  // forged semantic op
  }
  ASSERT_FALSE(f.marked);
  EXPECT_TRUE(has_rule(pass_verify(f), "semantic-before-mark"));
  f.marked = true;  // after staging, the structural rule is satisfied
  EXPECT_FALSE(has_rule(pass_verify(f), "semantic-before-mark"));
}

// ---------------------------------------------------------------------------
// pass_tm_lint: legality re-proof of semantic rewrites
// ---------------------------------------------------------------------------

TEST(TmLint, AcceptsEveryMarkedKernelBeforeAndAfterOptimize) {
  for (Function& f : all_kernels()) {
    const MarkStats ms = pass_tm_mark(f);
    LintStats ls;
    EXPECT_TRUE(pass_tm_lint(f, &ls).empty()) << f.name;
    EXPECT_EQ(ls.checked_s1r, ms.s1r) << f.name;
    EXPECT_EQ(ls.checked_s2r, ms.s2r) << f.name;
    EXPECT_EQ(ls.checked_sw, ms.sw) << f.name;
    pass_tm_optimize(f);
    // Killed origin loads keep their husks: the proof must still go through.
    EXPECT_TRUE(pass_tm_lint(f).empty()) << f.name << " post-optimize";
  }
}

/// A canonical markable compare: if (TM_READ(x) > 0).
Function marked_cmp_function() {
  Builder b("cmp", 1, 0);
  const auto v = b.tm_load(b.arg(0));
  const auto t = b.new_block();
  const auto e = b.new_block();
  b.cbr(b.cmp(Rel::SGT, v, b.konst(0)), t, e);
  b.set_block(t);
  b.ret(b.konst(1));
  b.set_block(e);
  b.ret(b.konst(0));
  Function f = b.finish();
  EXPECT_EQ(pass_tm_mark(f).s1r, 1u);
  return f;
}

Instr* find_op(Function& f, Op op) {
  for (Block& blk : f.blocks) {
    for (Instr& i : blk.code) {
      if (!i.dead && i.op == op) return &i;
    }
  }
  return nullptr;
}

// --- provenance-link structural rules --------------------------------------

TEST(Verify, RejectsProvenanceOutOfRange) {
  Function f = marked_cmp_function();
  find_op(f, Op::kTmCmp1)->src_a = 999;
  EXPECT_TRUE(has_rule(pass_verify(f), "provenance-out-of-range"));
}

TEST(Verify, RejectsUndefinedProvenance) {
  Function f = marked_cmp_function();
  f.num_temps += 1;  // a temp id with no defining instruction
  find_op(f, Op::kTmCmp1)->src_a =
      static_cast<std::int32_t>(f.num_temps - 1);
  EXPECT_TRUE(has_rule(pass_verify(f), "provenance-undefined"));
}

TEST(Verify, RejectsNonDominatingProvenance) {
  Function f = marked_cmp_function();
  // Point the origin load's link at the compare's own result — a
  // definition that sits later in the block.
  find_op(f, Op::kTmLoad)->src_a = find_op(f, Op::kTmCmp1)->dst;
  EXPECT_TRUE(has_rule(pass_verify(f), "provenance-not-dominating"));
}

TEST(TmLint, CatchesUnmarkedFunction) {
  Function f = marked_cmp_function();
  f.marked = false;
  EXPECT_TRUE(has_rule(pass_tm_lint(f), "lint-unmarked"));
}

TEST(TmLint, CatchesMissingProvenance) {
  Function f = marked_cmp_function();
  find_op(f, Op::kTmCmp1)->src_a = -1;  // a pass "forgot" to record it
  EXPECT_TRUE(has_rule(pass_tm_lint(f), "lint-no-provenance"));
}

TEST(TmLint, CatchesOriginThatIsNotALoad) {
  Function f = marked_cmp_function();
  Instr* cmp = find_op(f, Op::kTmCmp1);
  cmp->src_a = cmp->b;  // point provenance at the konst operand
  EXPECT_TRUE(has_rule(pass_tm_lint(f), "lint-origin-not-load"));
}

TEST(TmLint, CatchesAddressSubstitution) {
  // The rewrite claims an address the origin load never read — the exact
  // "wrong address, silently different semantics" bug class.
  Function f = marked_cmp_function();
  Instr* cmp = find_op(f, Op::kTmCmp1);
  cmp->a = cmp->b;  // claimed address temp is now the konst operand
  EXPECT_TRUE(has_rule(pass_tm_lint(f), "lint-origin-address"));
}

TEST(TmLint, CatchesClobberedOriginAndMarkRefusesIt) {
  // v = TM_READ(x); TM_WRITE(y, 1); if (v > 0): rewriting the compare to
  // re-read x at the branch could observe y's store (y may alias x — no
  // alias analysis). tm_mark must refuse; a forged rewrite must be caught.
  Builder b("clob", 2, 0);
  const auto x = b.arg(0);
  const auto y = b.arg(1);
  const auto v = b.tm_load(x);
  b.tm_store(y, b.konst(1));
  const auto t = b.new_block();
  const auto e = b.new_block();
  b.cbr(b.cmp(Rel::SGT, v, b.konst(0)), t, e);
  b.set_block(t);
  b.ret(b.konst(1));
  b.set_block(e);
  b.ret(b.konst(0));
  Function f = b.finish();

  Function forged = f;  // copy before marking
  const MarkStats ms = pass_tm_mark(f);
  EXPECT_EQ(ms.s1r, 0u);
  EXPECT_EQ(ms.skipped_clobbered, 1u);

  // Simulate a buggy tm_mark that rewrites anyway.
  forged.marked = true;
  for (Block& blk : forged.blocks) {
    for (Instr& i : blk.code) {
      if (i.op == Op::kCmp) {
        i.op = Op::kTmCmp1;
        i.src_a = i.a;
        i.a = 0;  // arg(0) temp == the load's address
      }
    }
  }
  EXPECT_TRUE(has_rule(pass_tm_lint(forged), "lint-clobbered-origin"));
}

TEST(TmLint, CatchesIncNegationDrift) {
  Builder b("inc", 1, 0);
  const auto ax = b.arg(0);
  b.tm_store(ax, b.sub(b.tm_load(ax), b.konst(3)));
  b.ret(b.konst(0));
  Function f = b.finish();
  ASSERT_EQ(pass_tm_mark(f).sw, 1u);
  Instr* inc = find_op(f, Op::kTmInc);
  inc->imm = 0;  // drop the negate flag: x -= 3 would become x += 3
  EXPECT_TRUE(has_rule(pass_tm_lint(f), "lint-inc-shape"));
}

TEST(TmLint, CatchesIncAddressMismatch) {
  Builder b("inc2", 2, 0);
  const auto ax = b.arg(0);
  b.arg(1);
  b.tm_store(ax, b.add(b.tm_load(ax), b.konst(1)));
  b.ret(b.konst(0));
  Function f = b.finish();
  ASSERT_EQ(pass_tm_mark(f).sw, 1u);
  Instr* inc = find_op(f, Op::kTmInc);
  inc->a = 1;  // now claims to increment arg(1)'s address
  EXPECT_TRUE(has_rule(pass_tm_lint(f), "lint-origin-address"));
}

TEST(TmLint, CatchesImpureValueOperand) {
  Builder b("impure", 2, 0);
  const auto v = b.tm_load(b.arg(0));
  const auto w = b.tm_load(b.arg(1));
  const auto t = b.new_block();
  const auto e = b.new_block();
  b.cbr(b.cmp(Rel::SGT, v, b.konst(0)), t, e);
  b.set_block(t);
  b.ret(w);
  b.set_block(e);
  b.ret(b.konst(0));
  Function f = b.finish();
  ASSERT_EQ(pass_tm_mark(f).s1r, 1u);
  // Forge: make the compare's value operand the *other* TM load — not a
  // literal/arg/local, so the single-address S1R form cannot express it.
  Instr* cmp = find_op(f, Op::kTmCmp1);
  for (Block& blk : f.blocks) {
    for (Instr& i : blk.code) {
      if (i.op == Op::kTmLoad && i.dst != cmp->src_a) cmp->b = i.dst;
    }
  }
  EXPECT_TRUE(has_rule(pass_tm_lint(f), "lint-impure-operand"));
}

// ---------------------------------------------------------------------------
// pass_tm_rbe: redundant-barrier elimination
// ---------------------------------------------------------------------------

TEST(TmRbe, ForwardsLoadAfterLoad) {
  Builder b("llfwd", 1, 0);
  const auto a = b.arg(0);
  const auto v1 = b.tm_load(a);
  const auto v2 = b.tm_load(a);
  b.ret(b.add(v1, v2));
  Function f = b.finish();
  const RbeStats st = pass_tm_rbe(f);
  EXPECT_EQ(st.load_load_forwarded, 1u);
  EXPECT_EQ(f.count(Op::kTmLoad).dead, 1u);
  EXPECT_EQ(f.count(Op::kTmLoad).live, 1u);
  EXPECT_TRUE(pass_verify(f).empty());
  EXPECT_TRUE(pass_tm_lint(f).empty());
}

TEST(TmRbe, ForwardsStoreToLoad) {
  Builder b("slfwd", 2, 0);
  const auto a = b.arg(0);
  b.tm_store(a, b.arg(1));
  const auto v = b.tm_load(a);
  b.ret(v);
  Function f = b.finish();
  const RbeStats st = pass_tm_rbe(f);
  EXPECT_EQ(st.store_load_forwarded, 1u);
  EXPECT_EQ(f.count(Op::kTmLoad).dead, 1u);
  EXPECT_TRUE(pass_verify(f).empty());
  EXPECT_TRUE(pass_tm_lint(f).empty());
  // The return now reads the stored temp directly.
  for (const Instr& i : f.blocks[0].code) {
    if (i.op == Op::kRet) EXPECT_EQ(i.a, 1);  // arg(1)'s temp
  }
}

TEST(TmRbe, EliminatesOverwrittenStore) {
  Builder b("dstore", 3, 0);
  const auto a = b.arg(0);
  b.tm_store(a, b.arg(1));
  b.tm_store(a, b.arg(2));
  b.ret(b.konst(0));
  Function f = b.finish();
  const RbeStats st = pass_tm_rbe(f);
  EXPECT_EQ(st.dead_stores, 1u);
  EXPECT_EQ(f.count(Op::kTmStore).dead, 1u);
  EXPECT_EQ(f.count(Op::kTmStore).live, 1u);
  // The husk links the *later* overwriting store's operands — the verifier
  // must accept the forward witness, and the lint must re-prove it.
  EXPECT_TRUE(pass_verify(f).empty());
  EXPECT_TRUE(pass_tm_lint(f).empty());
}

TEST(TmRbe, MayAliasWriteBlocksForwarding) {
  // Two distinct pointer arguments may refer to the same word: the store
  // through the second must stop both forwarding and dead-store scans.
  Builder b("mayblock", 2, 0);
  const auto a = b.arg(0);
  const auto u = b.arg(1);
  const auto v1 = b.tm_load(a);
  b.tm_store(u, b.konst(1));
  const auto v2 = b.tm_load(a);
  b.ret(b.add(v1, v2));
  Function f = b.finish();
  EXPECT_EQ(pass_tm_rbe(f).total(), 0u);
  EXPECT_EQ(f.count(Op::kTmLoad).live, 2u);
}

TEST(TmRbe, ProvenDisjointWriteIsCrossed) {
  // Same base, different constant offsets: the intervening store provably
  // cannot touch the reloaded cell, so the reload still forwards.
  Builder b("disjoint", 2, 0);
  const auto base = b.arg(0);
  const auto a1 = b.add(base, b.konst(0));
  const auto a2 = b.add(base, b.konst(8));
  const auto v1 = b.tm_load(a1);
  b.tm_store(a2, b.arg(1));
  const auto v2 = b.tm_load(a1);
  b.ret(b.add(v1, v2));
  Function f = b.finish();
  const RbeStats st = pass_tm_rbe(f);
  EXPECT_EQ(st.load_load_forwarded, 1u);
  EXPECT_TRUE(pass_verify(f).empty());
  EXPECT_TRUE(pass_tm_lint(f).empty());
}

TEST(TmRbe, LiveReadBlocksDeadStoreElimination) {
  // store a; (may-alias store u keeps the reload live); read a; store a —
  // the first store's value is observed, so it must survive.
  Builder b("readblock", 3, 0);
  const auto a = b.arg(0);
  const auto u = b.arg(1);
  b.tm_store(a, b.konst(5));
  b.tm_store(u, b.konst(6));
  const auto v = b.tm_load(a);
  b.tm_store(a, b.arg(2));
  b.ret(v);
  Function f = b.finish();
  EXPECT_EQ(pass_tm_rbe(f).total(), 0u);
  EXPECT_EQ(f.count(Op::kTmStore).live, 3u);
}

// --- lint re-proof forgeries for claimed eliminations ----------------------

TEST(TmLint, CatchesElimTagOnLiveInstruction) {
  Function f = marked_cmp_function();
  find_op(f, Op::kTmLoad)->elim = Elim::kRbeLoadLoad;
  EXPECT_TRUE(has_rule(pass_tm_lint(f), "lint-rbe-shape"));
}

TEST(TmLint, CatchesElimTagOnWrongOpcode) {
  Builder b("wrongop", 0, 0);
  const auto t = b.konst(7);
  b.ret(b.konst(0));
  Function f = b.take();
  for (Instr& i : f.blocks[0].code) {
    if (i.op == Op::kConst && i.dst == t) {
      i.dead = true;
      i.elim = Elim::kRbeDeadStore;  // a konst is no store
    }
  }
  EXPECT_TRUE(has_rule(pass_tm_lint(f), "lint-rbe-shape"));
}

TEST(TmLint, CatchesForwardFromWrongAddress) {
  // Forge a load-load forward whose source read a different cell.
  Builder b("badfwd", 1, 0);
  const auto base = b.arg(0);
  const auto a1 = b.add(base, b.konst(0));
  const auto a2 = b.add(base, b.konst(8));
  const auto v1 = b.tm_load(a1);
  const auto v2 = b.tm_load(a2);
  b.ret(b.add(v1, v2));
  Function f = b.finish();
  EXPECT_EQ(pass_tm_rbe(f).total(), 0u);  // disjoint cells: nothing redundant
  Instr* first = nullptr;
  Instr* second = nullptr;
  for (Instr& i : f.blocks[0].code) {
    if (i.op != Op::kTmLoad) continue;
    (first == nullptr ? first : second) = &i;
  }
  second->dead = true;
  second->elim = Elim::kRbeLoadLoad;
  second->src_a = first->dst;
  for (Instr& i : f.blocks[0].code) {
    if (i.op == Op::kAdd && i.b == second->dst) i.b = first->dst;
  }
  ASSERT_TRUE(pass_verify(f).empty());
  EXPECT_TRUE(has_rule(pass_tm_lint(f), "lint-rbe-forward"));
}

TEST(TmLint, CatchesForwardAcrossClobber) {
  // Forge a load-load forward across a may-alias store the real pass
  // refused to cross.
  Builder b("fclob", 2, 0);
  const auto a = b.arg(0);
  const auto u = b.arg(1);
  const auto v1 = b.tm_load(a);
  b.tm_store(u, b.konst(1));
  const auto v2 = b.tm_load(a);
  b.ret(b.add(v1, v2));
  Function f = b.finish();
  EXPECT_EQ(pass_tm_rbe(f).total(), 0u);
  Instr* first = nullptr;
  Instr* second = nullptr;
  for (Instr& i : f.blocks[0].code) {
    if (i.op != Op::kTmLoad) continue;
    (first == nullptr ? first : second) = &i;
  }
  second->dead = true;
  second->elim = Elim::kRbeLoadLoad;
  second->src_a = first->dst;
  for (Instr& i : f.blocks[0].code) {
    if (i.op == Op::kAdd && i.b == second->dst) i.b = first->dst;
  }
  ASSERT_TRUE(pass_verify(f).empty());
  EXPECT_TRUE(has_rule(pass_tm_lint(f), "lint-rbe-forward"));
}

TEST(TmLint, CatchesMissingForwardWitness) {
  // Legitimate store-to-load forward, then the witness store's value
  // operand is swapped out from under it.
  Builder b("nowit", 3, 0);
  const auto a = b.arg(0);
  const auto other = b.arg(2);
  b.tm_store(a, b.arg(1));
  const auto v = b.tm_load(a);
  b.ret(v);
  Function f = b.finish();
  ASSERT_EQ(pass_tm_rbe(f).store_load_forwarded, 1u);
  ASSERT_TRUE(pass_tm_lint(f).empty());
  find_op(f, Op::kTmStore)->b = other;  // not the recorded value temp
  EXPECT_TRUE(has_rule(pass_tm_lint(f), "lint-rbe-forward"));
}

TEST(TmLint, CatchesDeadStoreWithObservedValue) {
  // Forge a dead-store claim over a store whose value a live load reads.
  Builder b("obsv", 3, 0);
  const auto a = b.arg(0);
  b.tm_store(a, b.arg(1));
  const auto v = b.tm_load(a);
  b.tm_store(a, b.arg(2));
  b.ret(v);
  Function f = b.finish();
  Instr* first = nullptr;
  Instr* second = nullptr;
  for (Instr& i : f.blocks[0].code) {
    if (i.op != Op::kTmStore) continue;
    (first == nullptr ? first : second) = &i;
  }
  first->dead = true;
  first->elim = Elim::kRbeDeadStore;
  first->src_a = second->b;  // the overwriter's operands, as the pass records
  first->src_b = second->a;
  ASSERT_TRUE(pass_verify(f).empty());
  EXPECT_TRUE(has_rule(pass_tm_lint(f), "lint-rbe-dead-store"));
}

TEST(TmLint, CountsRbeProofObligations) {
  Function f = build_center_update_kernel(8);
  const RbeStats rbe = pass_tm_rbe(f);
  pass_tm_mark(f);
  pass_tm_optimize(f);
  LintStats ls;
  EXPECT_TRUE(pass_tm_lint(f, &ls).empty());
  EXPECT_EQ(ls.checked_rbe_forwards,
            rbe.load_load_forwarded + rbe.store_load_forwarded);
  EXPECT_EQ(ls.checked_rbe_dead_stores, rbe.dead_stores);
  EXPECT_EQ(ls.checked_rbe_forwards, 1u);  // the trailing length re-read
}

// ---------------------------------------------------------------------------
// Liveness-based tm_optimize
// ---------------------------------------------------------------------------

TEST(TmOptimize, RemovesDeadLocalStoreChainsTheHeuristicMissed) {
  // t = TM_READ(x); locals[0] = t; ret 0 — slot 0 is never loaded, so the
  // store, the load and the whole chain are dead. The zero-uses heuristic
  // cannot see it (the store *syntactically* uses t); liveness can.
  auto build = [] {
    Builder b("deadchain", 1, 1);
    const auto v = b.tm_load(b.arg(0));
    b.store_local(0, v);
    b.ret(b.konst(0));
    return b.finish();
  };
  Function legacy = build();
  Function lively = build();
  const OptimizeStats os_legacy = pass_tm_optimize_zero_uses(legacy);
  const OptimizeStats os_live = pass_tm_optimize(lively);
  EXPECT_EQ(os_legacy.removed_tm_loads, 0u);
  EXPECT_EQ(os_live.removed_tm_loads, 1u);
  EXPECT_EQ(lively.count(Op::kStoreLocal).dead, 1u);
  EXPECT_TRUE(pass_verify(lively).empty());
}

TEST(TmOptimize, KeepsLocalStoresThatFeedALaterLoad) {
  Builder b("livechain", 1, 1);
  const auto v = b.tm_load(b.arg(0));
  b.store_local(0, v);
  b.ret(b.load_local(0));
  Function f = b.finish();
  const OptimizeStats os = pass_tm_optimize(f);
  EXPECT_EQ(os.removed_tm_loads, 0u);
  EXPECT_EQ(f.count(Op::kStoreLocal).live, 1u);
}

TEST(TmOptimize, KeepsLoopCarriedLocals) {
  // locals[0] counts down a loop: the store in the body must survive even
  // though the only load is "behind" it through the back edge.
  Builder b("loop", 1, 1);
  b.store_local(0, b.arg(0));
  const auto head = b.new_block();
  const auto body = b.new_block();
  const auto done = b.new_block();
  b.br(head);
  b.set_block(head);
  b.cbr(b.cmp(Rel::UGT, b.load_local(0), b.konst(0)), body, done);
  b.set_block(body);
  b.store_local(0, b.sub(b.load_local(0), b.konst(1)));
  b.br(head);
  b.set_block(done);
  b.ret(b.konst(0));
  Function f = b.finish();
  const OptimizeStats os = pass_tm_optimize(f);
  EXPECT_EQ(f.count(Op::kStoreLocal).live, 2u);
  EXPECT_EQ(os.removed_other, 0u);
}

TEST(TmOptimize, KillsUnreachableBlocks) {
  Builder b("unreach", 1, 0);
  const auto orphan = b.new_block();
  b.ret(b.konst(0));
  b.set_block(orphan);  // nothing branches here
  b.tm_store(b.arg(0), b.tm_load(b.arg(0)));
  b.ret(b.konst(1));
  Function f = b.take();
  const OptimizeStats os = pass_tm_optimize(f);
  EXPECT_EQ(os.removed_tm_loads, 1u);
  EXPECT_EQ(f.count(Op::kTmStore).dead, 1u);
  EXPECT_TRUE(pass_verify(f).empty());
}

TEST(TmOptimize, NeverWeakerThanZeroUsesOnAnyKernel) {
  // Acceptance: the liveness pass removes at least as many dead TM loads
  // as the shipped heuristic on every kernel, and its removal counter
  // agrees exactly with the dead-load count in the IR (no stats drift).
  for (Function& lively : all_kernels()) {
    Function legacy = lively;  // same IR, two pipelines
    pass_tm_mark(legacy);
    pass_tm_mark(lively);
    const OptimizeStats os_legacy = pass_tm_optimize_zero_uses(legacy);
    const OptimizeStats os_live = pass_tm_optimize(lively);
    EXPECT_GE(os_live.removed_tm_loads, os_legacy.removed_tm_loads)
        << lively.name;
    EXPECT_EQ(os_live.removed_tm_loads, lively.count(Op::kTmLoad).dead)
        << lively.name;
    EXPECT_EQ(lively.count(Op::kTmLoad).live + lively.count(Op::kTmLoad).dead,
              lively.count(Op::kTmLoad).total())
        << lively.name;
  }
}

TEST(TmOptimize, LivenessFrameworkAgreesWithRemoval) {
  // Every dead-marked TM load must be non-live at its definition per the
  // framework, and every surviving one live — the pass and the analysis
  // cannot disagree.
  for (Function& f : all_kernels()) {
    pass_tm_mark(f);
    pass_tm_optimize(f);
    const Cfg cfg(f);
    const Liveness lv = compute_liveness(f, cfg);
    for (std::uint32_t b = 0; b < f.blocks.size(); ++b) {
      if (!cfg.reachable(b)) continue;
      BitSet live = lv.sets.out[b];
      for (auto it = f.blocks[b].code.rbegin(); it != f.blocks[b].code.rend();
           ++it) {
        if (it->op == Op::kTmLoad) {
          const bool live_def = live.test(static_cast<std::size_t>(it->dst));
          EXPECT_EQ(live_def, !it->dead) << f.name;
        }
        if (!it->dead) detail::step_backward(*it, f.num_temps, live);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// MarkStats / OpCount drift
// ---------------------------------------------------------------------------

TEST(OpCount, LiveAndDeadSplitStaysConsistentThroughThePipeline) {
  Function f = build_center_update_kernel(4);
  const std::size_t loads_before = f.count(Op::kTmLoad).total();
  const MarkStats ms = pass_tm_mark(f);
  EXPECT_EQ(f.count(Op::kTmInc).live, ms.sw);
  const OptimizeStats os = pass_tm_optimize(f);
  const OpCount loads = f.count(Op::kTmLoad);
  EXPECT_EQ(loads.total(), loads_before);  // husks remain, split shifts
  EXPECT_EQ(loads.dead, os.removed_tm_loads);
  EXPECT_EQ(f.count_op(Op::kTmLoad), loads.live);  // legacy accessor == live
}

// ---------------------------------------------------------------------------
// CFG / dominator sanity (the substrate the verifier leans on)
// ---------------------------------------------------------------------------

TEST(Cfg, DominatorsOnADiamond) {
  Builder b("d", 1, 0);
  const auto t = b.new_block();
  const auto e = b.new_block();
  const auto j = b.new_block();
  b.cbr(b.arg(0), t, e);
  b.set_block(t);
  b.br(j);
  b.set_block(e);
  b.br(j);
  b.set_block(j);
  b.ret(b.konst(0));
  Function f = b.finish();
  const Cfg cfg(f);
  EXPECT_TRUE(cfg.dominates(0, j));
  EXPECT_FALSE(cfg.dominates(t, j));
  EXPECT_FALSE(cfg.dominates(e, j));
  EXPECT_EQ(cfg.idom(j), 0);
  EXPECT_EQ(cfg.succs(0).size(), 2u);
  EXPECT_EQ(cfg.preds(j).size(), 2u);
}

TEST(Cfg, UnreachableBlocksAreFlagged) {
  Builder b("u", 0, 0);
  const auto orphan = b.new_block();
  b.ret(b.konst(0));
  b.set_block(orphan);
  b.ret(b.konst(1));
  Function f = b.take();
  const Cfg cfg(f);
  EXPECT_TRUE(cfg.reachable(0));
  EXPECT_FALSE(cfg.reachable(orphan));
}

// ---------------------------------------------------------------------------
// Interpreter malformed-IR guards (satellite: loud abort, not UB)
// ---------------------------------------------------------------------------

class InterpGuards : public ::testing::Test {
 protected:
  void SetUp() override {
    algo_ = make_algorithm("norec");
    ctx_ = std::make_unique<ThreadCtx>(algo_->make_tx());
    binder_ = std::make_unique<CtxBinder>(*ctx_);
  }
  word_t run(const Function& f, std::initializer_list<word_t> args) {
    return atomically([&](Tx& tx) {
      return execute(tx, f, args.begin(), args.size());
    });
  }
  std::unique_ptr<Algorithm> algo_;
  std::unique_ptr<ThreadCtx> ctx_;
  std::unique_ptr<CtxBinder> binder_;
};

using InterpGuardsDeathTest = InterpGuards;

TEST_F(InterpGuardsDeathTest, TempIdOutOfRangeAbortsLoudly) {
  Builder b("badtemp", 0, 0);
  b.ret(b.konst(0));
  Function f = b.take();
  f.blocks[0].code.back().a = 40;  // ret t40 of 1 temp
  EXPECT_DEATH(run(f, {}), "malformed IR in badtemp: temp 40");
}

TEST_F(InterpGuardsDeathTest, LocalSlotOutOfRangeAbortsLoudly) {
  Builder b("badlocal", 0, 1);
  b.store_local(0, b.konst(1));
  b.ret(b.konst(0));
  Function f = b.take();
  for (Instr& i : f.blocks[0].code) {
    if (i.op == Op::kStoreLocal) i.imm = 3;
  }
  EXPECT_DEATH(run(f, {}), "malformed IR in badlocal: local slot 3");
}

TEST_F(InterpGuardsDeathTest, ArgIndexOutOfRangeAbortsLoudly) {
  Builder b("badarg", 1, 0);
  b.ret(b.arg(0));
  Function f = b.take();
  f.blocks[0].code[0].imm = 6;
  EXPECT_DEATH(run(f, {11}), "malformed IR in badarg: arg index 6");
}

}  // namespace
}  // namespace semstm::tmir
