// Unit tests for the write-set, including the Alg. 6 merge rules
// (write-after-write / increment-after-write and vice versa).
#include <gtest/gtest.h>

#include <vector>

#include "runtime/writeset.hpp"

namespace semstm {
namespace {

TEST(WriteSet, FindOnEmptyReturnsNull) {
  WriteSet ws;
  tword w{0};
  EXPECT_EQ(ws.find(&w), nullptr);
  EXPECT_TRUE(ws.empty());
}

TEST(WriteSet, PutWriteThenFind) {
  WriteSet ws;
  tword w{0};
  ws.put_write(&w, 42);
  WriteEntry* e = ws.find(&w);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->value, 42u);
  EXPECT_EQ(e->kind, WriteKind::kWrite);
  EXPECT_EQ(ws.size(), 1u);
}

TEST(WriteSet, WriteAfterWriteOverwrites) {
  WriteSet ws;
  tword w{0};
  ws.put_write(&w, 1);
  ws.put_write(&w, 2);
  EXPECT_EQ(ws.find(&w)->value, 2u);
  EXPECT_EQ(ws.size(), 1u);
}

TEST(WriteSet, IncAfterIncAccumulatesDelta) {
  WriteSet ws;
  tword w{0};
  ws.put_inc(&w, 5);
  ws.put_inc(&w, 7);
  WriteEntry* e = ws.find(&w);
  EXPECT_EQ(e->value, 12u);
  EXPECT_EQ(e->kind, WriteKind::kIncrement);
}

TEST(WriteSet, IncAfterWriteKeepsWriteKind) {
  // Alg. 6 line 46: the delta accumulates over the buffered value and the
  // entry stays a WRITE (absolute value 10+5).
  WriteSet ws;
  tword w{0};
  ws.put_write(&w, 10);
  ws.put_inc(&w, 5);
  WriteEntry* e = ws.find(&w);
  EXPECT_EQ(e->value, 15u);
  EXPECT_EQ(e->kind, WriteKind::kWrite);
}

TEST(WriteSet, WriteAfterIncBecomesWrite) {
  // Alg. 6 line 51: overwrite value, flag flips to WRITE.
  WriteSet ws;
  tword w{0};
  ws.put_inc(&w, 5);
  ws.put_write(&w, 99);
  WriteEntry* e = ws.find(&w);
  EXPECT_EQ(e->value, 99u);
  EXPECT_EQ(e->kind, WriteKind::kWrite);
}

TEST(WriteSet, NegativeDeltaWrapsAsTwosComplement) {
  WriteSet ws;
  tword w{0};
  ws.put_inc(&w, static_cast<word_t>(-3));
  ws.put_inc(&w, 10);
  EXPECT_EQ(static_cast<std::int64_t>(ws.find(&w)->value), 7);
}

TEST(WriteSet, DecAfterWriteDecrementsBufferedValue) {
  // TM_DEC lowers to put_inc with a negative delta; over a buffered WRITE
  // the absolute value drops and the entry stays a WRITE.
  WriteSet ws;
  tword w{0};
  ws.put_write(&w, 10);
  ws.put_inc(&w, static_cast<word_t>(-4));
  WriteEntry* e = ws.find(&w);
  EXPECT_EQ(e->value, 6u);
  EXPECT_EQ(e->kind, WriteKind::kWrite);
}

TEST(WriteSet, DecBelowZeroWrapsAndReappliesExactly) {
  // A buffered delta that transiently underflows word_t must still commit
  // to the arithmetically-correct result: (5) + (-9 wrap) == -4 mod 2^64.
  WriteSet ws;
  tword w{0};
  ws.put_inc(&w, 5);
  ws.put_inc(&w, static_cast<word_t>(-9));
  WriteEntry* e = ws.find(&w);
  EXPECT_EQ(e->kind, WriteKind::kIncrement);
  const word_t mem = 100;
  EXPECT_EQ(static_cast<std::int64_t>(mem + e->value), 96);
}

TEST(WriteSet, MixedMergeSequenceEndsWithLastRuleApplied) {
  // inc → write → inc → write: every step follows Alg. 6; the final state
  // is the last write (kind WRITE, absolute value), not any stale delta.
  WriteSet ws;
  tword w{0};
  ws.put_inc(&w, 3);
  ws.put_write(&w, 50);
  ws.put_inc(&w, static_cast<word_t>(-1));
  EXPECT_EQ(ws.find(&w)->value, 49u);
  EXPECT_EQ(ws.find(&w)->kind, WriteKind::kWrite);
  ws.put_write(&w, 7);
  EXPECT_EQ(ws.find(&w)->value, 7u);
  EXPECT_EQ(ws.find(&w)->kind, WriteKind::kWrite);
  EXPECT_EQ(ws.size(), 1u);
}

TEST(WriteSet, MergeRulesSurviveTableGrowth) {
  // The merge must hit the *same* entry after rehash moves its slot.
  WriteSet ws;
  std::vector<tword> words(200);
  ws.put_inc(&words[0], 1);
  for (std::size_t i = 1; i < words.size(); ++i) {
    ws.put_write(&words[i], static_cast<word_t>(i));
  }
  ws.put_inc(&words[0], 2);  // post-growth: still accumulates, still INC
  WriteEntry* e = ws.find(&words[0]);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->value, 3u);
  EXPECT_EQ(e->kind, WriteKind::kIncrement);
  EXPECT_EQ(ws.size(), words.size());
}

TEST(WriteSet, GrowsPastInitialCapacityAndStillFindsAll) {
  WriteSet ws;
  std::vector<tword> words(1000);
  for (std::size_t i = 0; i < words.size(); ++i) {
    ws.put_write(&words[i], static_cast<word_t>(i));
  }
  EXPECT_EQ(ws.size(), words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    WriteEntry* e = ws.find(&words[i]);
    ASSERT_NE(e, nullptr) << i;
    EXPECT_EQ(e->value, static_cast<word_t>(i));
  }
}

TEST(WriteSet, ClearEmptiesAndReusable) {
  WriteSet ws;
  std::vector<tword> words(300);
  for (auto& w : words) ws.put_write(&w, 1);
  ws.clear();
  EXPECT_TRUE(ws.empty());
  for (auto& w : words) EXPECT_EQ(ws.find(&w), nullptr);
  ws.put_write(&words[0], 9);
  EXPECT_EQ(ws.find(&words[0])->value, 9u);
}

TEST(WriteSet, SummaryFilterEmptyRejectsWithoutProbe) {
  // An empty set has a zero summary: find() must miss on the AND+branch
  // fast path for any address.
  WriteSet ws;
  EXPECT_EQ(ws.summary(), 0u);
  std::vector<tword> words(64);
  for (auto& w : words) EXPECT_EQ(ws.find(&w), nullptr);
}

TEST(WriteSet, SummaryFilterSetsBitPerInsert) {
  WriteSet ws;
  tword w{0};
  ws.put_write(&w, 1);
  EXPECT_EQ(ws.summary() & WriteSet::bit_of(&w), WriteSet::bit_of(&w));
}

TEST(WriteSet, SummaryFilterFalsePositiveStillReturnsCorrectResult) {
  // With 64 filter lanes and >64 distinct addresses inserted, queries for
  // absent addresses are guaranteed to collide with set bits somewhere —
  // the filter may pass, but the probe must still answer nullptr.
  WriteSet ws;
  std::vector<tword> present(128);
  std::vector<tword> absent(128);
  for (auto& w : present) ws.put_write(&w, 7);
  bool saw_filter_pass_on_absent = false;
  for (auto& w : absent) {
    if ((ws.summary() & WriteSet::bit_of(&w)) != 0) {
      saw_filter_pass_on_absent = true;  // a genuine false positive
    }
    EXPECT_EQ(ws.find(&w), nullptr);
  }
  EXPECT_TRUE(saw_filter_pass_on_absent);
  for (auto& w : present) ASSERT_NE(ws.find(&w), nullptr);
}

TEST(WriteSet, SummaryFilterResetsOnClear) {
  WriteSet ws;
  tword w{0};
  ws.put_write(&w, 1);
  ASSERT_NE(ws.summary(), 0u);
  ws.clear();
  EXPECT_EQ(ws.summary(), 0u);
  EXPECT_EQ(ws.find(&w), nullptr);
}

TEST(WriteSet, ClearRetainsGrownCapacityForRetries) {
  // A retry of the same large transaction must not re-grow the index from
  // 64 buckets: clear() keeps the grown table (below the high-water cap).
  WriteSet ws;
  std::vector<tword> words(512);
  for (auto& w : words) ws.put_write(&w, 1);
  const std::size_t grown = ws.bucket_count();
  ASSERT_GT(grown, WriteSet::kInitialBuckets);
  ASSERT_LE(grown, WriteSet::kMaxRetainedBuckets);
  ws.clear();
  EXPECT_EQ(ws.bucket_count(), grown);
  // And the retained table still answers correctly.
  for (auto& w : words) EXPECT_EQ(ws.find(&w), nullptr);
  ws.put_write(&words[0], 2);
  EXPECT_EQ(ws.find(&words[0])->value, 2u);
}

TEST(WriteSet, ClearShrinksPathologicallyGrownTable) {
  // One pathological transaction must not pin an arbitrarily large index
  // on an idle descriptor: beyond the cap, clear() shrinks back.
  WriteSet ws;
  std::vector<tword> words(8192);
  for (auto& w : words) ws.put_write(&w, 1);
  ASSERT_GT(ws.bucket_count(), WriteSet::kMaxRetainedBuckets);
  ws.clear();
  EXPECT_EQ(ws.bucket_count(), WriteSet::kMaxRetainedBuckets);
  for (auto& w : words) EXPECT_EQ(ws.find(&w), nullptr);
}

TEST(WriteSet, IterationVisitsEveryEntryOnce) {
  WriteSet ws;
  std::vector<tword> words(50);
  for (std::size_t i = 0; i < words.size(); ++i) {
    ws.put_write(&words[i], static_cast<word_t>(i));
  }
  std::size_t count = 0;
  word_t sum = 0;
  for (const WriteEntry& e : ws) {
    ++count;
    sum += e.value;
  }
  EXPECT_EQ(count, 50u);
  EXPECT_EQ(sum, 49u * 50u / 2);
}

}  // namespace
}  // namespace semstm
