// Epoch-based reclamation (runtime/epoch.hpp): grace-period unit tests on
// one thread, and a real-thread retire/traverse stress for the TSan stage
// (scripts/ci_tsan.sh filters to `_real` test names) — readers dereference
// nodes a concurrent writer is unlinking and retiring, so a reclaim that
// fires before its grace period elapses shows up as a use-after-free under
// ASan/TSan and as a canary mismatch here.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/stats.hpp"
#include "runtime/epoch.hpp"
#include "sched/thread_runner.hpp"

namespace semstm {
namespace {

std::atomic<int> g_freed{0};  // counting deleter target (capture-free fn)

void counting_delete(void* p) {
  delete static_cast<int*>(p);
  g_freed.fetch_add(1, std::memory_order_relaxed);
}

TEST(Epoch, StartsAtOneAndAdvancesWhenQuiescent) {
  EpochManager mgr;
  EXPECT_EQ(mgr.epoch(), 1u);
  EXPECT_TRUE(mgr.try_advance());  // no handles: trivially quiescent
  EXPECT_EQ(mgr.epoch(), 2u);
}

TEST(Epoch, StaleAnnounceBlocksAdvanceUntilUnpin) {
  EpochManager mgr;
  EpochHandle h(mgr);
  EXPECT_EQ(mgr.slots_in_use(), 1u);

  h.pin();  // announces the current epoch
  EXPECT_TRUE(h.pinned());
  // Announce == current: the epoch may still move once past us...
  EXPECT_TRUE(mgr.try_advance());
  // ...but now our announce is one epoch stale and pins the frontier.
  EXPECT_FALSE(mgr.try_advance());
  h.unpin();
  EXPECT_TRUE(mgr.try_advance());
}

TEST(Epoch, RetireDefersExactlyTwoEpochs) {
  g_freed.store(0);
  EpochManager mgr;
  EpochHandle h(mgr);

  h.retire(new int(7), counting_delete);  // stamped with epoch e
  EXPECT_EQ(h.limbo_size(), 1u);
  EXPECT_EQ(h.flush(), 0u);  // epoch e+1: grace not yet elapsed
  EXPECT_EQ(g_freed.load(), 0);
  EXPECT_EQ(h.flush(), 1u);  // epoch e+2: safe — freed
  EXPECT_EQ(g_freed.load(), 1);
  EXPECT_EQ(h.limbo_size(), 0u);
}

TEST(Epoch, DestructorDrainsLimboWhenQuiescent) {
  g_freed.store(0);
  EpochManager mgr;
  {
    EpochHandle h(mgr);
    for (int i = 0; i < 5; ++i) h.retire(new int(i), counting_delete);
    EXPECT_EQ(g_freed.load(), 0);
  }  // all handles quiescent: destructor advances and frees everything
  EXPECT_EQ(g_freed.load(), 5);
}

TEST(Epoch, StatsCountRetiresAndReclaims) {
  g_freed.store(0);
  EpochManager mgr;
  TxStats stats;
  {
    EpochHandle h(mgr);
    h.bind_stats(&stats);
    for (int i = 0; i < 3; ++i) h.retire(new int(i), counting_delete);
    h.flush();
    EXPECT_EQ(stats.epoch_retires, 3u);
    EXPECT_GE(stats.epoch_retires, stats.epoch_reclaims);
    h.flush();
    EXPECT_EQ(stats.epoch_reclaims, 3u);
  }
  // The counters ride the ordinary TxStats aggregation paths.
  TxStats merged;
  merged += stats;
  EXPECT_EQ(merged.epoch_retires, 3u);
  EXPECT_EQ(merged.epoch_reclaims, 3u);
  merged -= stats;
  EXPECT_EQ(merged.epoch_retires, 0u);
  EXPECT_EQ(merged.epoch_reclaims, 0u);
}

// ---------------------------------------------------------------------------
// Real-thread reclamation stress (TSan stage): one writer repeatedly swaps
// a shared node out and retires the old one; readers pin, dereference the
// current node, and check its canary. A premature free is a use-after-free
// (sanitizers) and/or a canary mismatch (here).
// ---------------------------------------------------------------------------

constexpr std::uint64_t kCanary = 0xC0FFEE0DDF00DULL;

struct StressNode {
  std::atomic<std::uint64_t> canary{kCanary};
};

std::atomic<std::uint64_t> g_nodes_freed{0};

void free_stress_node(void* p) {
  // Poison before delete: a reader still holding this node sees the
  // canary die even if the allocator recycles the memory intact.
  static_cast<StressNode*>(p)->canary.store(0, std::memory_order_relaxed);
  delete static_cast<StressNode*>(p);
  g_nodes_freed.fetch_add(1, std::memory_order_relaxed);
}

TEST(EpochRealThreads, RetiredNodesOutliveTheirReaders_real) {
  g_nodes_freed.store(0);
  constexpr unsigned kThreads = 4;
  constexpr int kSwaps = 2000;
  constexpr int kReadsPerThread = 20000;

  EpochManager mgr;
  // Declared before the handles: bound stats must outlive the handle
  // destructors (reverse destruction order), which drain the limbo.
  std::vector<TxStats> stats(kThreads);
  std::vector<std::unique_ptr<EpochHandle>> handles;
  for (unsigned t = 0; t < kThreads; ++t) {
    handles.push_back(std::make_unique<EpochHandle>(mgr));
    handles.back()->bind_stats(&stats[t]);
  }

  std::atomic<StressNode*> shared{new StressNode};
  std::atomic<std::uint64_t> bad_canaries{0};

  sched::run_threads(kThreads, [&](unsigned tid) {
    EpochHandle& h = *handles[tid];
    if (tid == 0) {  // writer: unlink-then-retire
      for (int i = 0; i < kSwaps; ++i) {
        auto* fresh = new StressNode;
        StressNode* old = shared.exchange(fresh, std::memory_order_acq_rel);
        h.retire(static_cast<void*>(old), free_stress_node);
      }
    } else {  // readers: pin around every dereference window
      for (int i = 0; i < kReadsPerThread; ++i) {
        h.pin();
        StressNode* n = shared.load(std::memory_order_acquire);
        if (n->canary.load(std::memory_order_relaxed) != kCanary) {
          bad_canaries.fetch_add(1, std::memory_order_relaxed);
        }
        h.unpin();
      }
    }
  });

  EXPECT_EQ(bad_canaries.load(), 0u) << "a node was reclaimed under a reader";

  // Everyone is quiescent now: drain the writer's limbo completely.
  for (int i = 0; i < 4 && handles[0]->limbo_size() > 0; ++i) {
    handles[0]->flush();
  }
  EXPECT_EQ(handles[0]->limbo_size(), 0u);

  TxStats merged;
  for (const TxStats& s : stats) merged += s;
  EXPECT_EQ(merged.epoch_retires, static_cast<std::uint64_t>(kSwaps));
  EXPECT_EQ(merged.epoch_reclaims, static_cast<std::uint64_t>(kSwaps));
  EXPECT_EQ(g_nodes_freed.load(), static_cast<std::uint64_t>(kSwaps));

  delete shared.load(std::memory_order_relaxed);  // the final, live node
}

}  // namespace
}  // namespace semstm
