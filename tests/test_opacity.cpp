// History-level correctness tests, driven manually through the Tx API on
// one thread so every interleaving is exact. These reproduce the paper's
// Algorithm 1 (semantic false conflict), Algorithm 8 (opaque with the
// extended API) and Algorithm 9 (not opaque — must abort), plus the
// increment-concurrency property of §3/§5.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "semstm.hpp"

namespace semstm {
namespace {

/// Two descriptors over one shared algorithm instance; the test plays the
/// role of the scheduler by invoking operations in a scripted order.
class History : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    algo = make_algorithm(GetParam());
    t1 = algo->make_tx();
    t2 = algo->make_tx();
    semantic = algo->semantic();
  }

  std::unique_ptr<Algorithm> algo;
  std::unique_ptr<Tx> t1, t2;
  bool semantic = false;
};

// ---------------------------------------------------------------------------
// Paper Algorithm 1: T1 checks x > 0 and y > 0; T2 does x++ / y-- and
// commits in between. At the memory level this is a conflict; at the
// semantic level it is not (both conditions still hold). Semantic
// algorithms must commit T1; base algorithms must abort it.
// ---------------------------------------------------------------------------
TEST_P(History, Algorithm1_SemanticFalseConflict) {
  if (GetParam() == "cgl") {
    // CGL cannot produce this interleaving: T2 cannot start while T1 holds
    // the global lock (mutual exclusion is covered elsewhere).
    GTEST_SKIP();
  }
  TVar<long> x(5), y(5), out(0);

  t1->begin();
  EXPECT_TRUE(t1->cmp(x.word(), Rel::SGT, 0));

  t2->begin();
  t2->inc(x.word(), 1);                       // x++
  t2->inc(y.word(), static_cast<word_t>(-1)); // y--
  t2->commit();
  EXPECT_EQ(x.unsafe_get(), 6);
  EXPECT_EQ(y.unsafe_get(), 4);

  if (semantic) {
    EXPECT_TRUE(t1->cmp(y.word(), Rel::SGT, 0));
    t1->write(out.word(), 1);  // make T1 a writer so commit validates
    t1->commit();              // must succeed: both conditions still hold
    EXPECT_EQ(out.unsafe_get(), 1);
  } else {
    // NOrec: the y-access revalidates the read-set (x recorded by value).
    // TL2: x's orec version now exceeds T1's start version.
    EXPECT_THROW(
        {
          (void)t1->read(y.word());
          t1->write(out.word(), 1);
          t1->commit();
        },
        TxAbort);
    t1->rollback();
  }
}

// For CGL the Algorithm 1 history cannot even be produced (see above), so
// exclude it from the concurrent histories below and cover it separately.
bool concurrent_capable(const std::string& name) { return name != "cgl"; }

// ---------------------------------------------------------------------------
// Paper Algorithm 8: with the extended API the history IS opaque —
// T2 -> T1 is a legal serialization because T1's only access to x is a cmp
// whose outcome T2 preserves. S-NOrec must commit T1 with z = post-T2 y.
// S-TL2 conservatively aborts (its first plain read freezes the snapshot,
// and y's orec moved past it) — aborting never violates opacity.
// ---------------------------------------------------------------------------
TEST_P(History, Algorithm8_OpaqueWithSemanticApi) {
  if (!concurrent_capable(GetParam())) GTEST_SKIP();
  TVar<long> x(0), y(0), z(0);

  t1->begin();
  EXPECT_TRUE(t1->cmp(x.word(), Rel::SGE, 0));  // if (x >= 0)

  t2->begin();
  t2->write(x.word(), 1);
  t2->write(y.word(), 1);
  t2->commit();

  if (GetParam() == "snorec") {
    const word_t v = t1->read(y.word());  // revalidates: x >= 0 still true
    t1->write(z.word(), v);
    t1->commit();
    EXPECT_EQ(z.unsafe_get(), 1);  // serialized after T2 — consistent
  } else if (GetParam() == "stl2") {
    EXPECT_THROW((void)t1->read(y.word()), TxAbort);
    t1->rollback();
  } else {
    // Base algorithms abort too (value/version validation fails).
    EXPECT_THROW(
        {
          const word_t v = t1->read(y.word());
          t1->write(z.word(), v);
          t1->commit();
        },
        TxAbort);
    t1->rollback();
    EXPECT_EQ(z.unsafe_get(), 0);
  }
}

// ---------------------------------------------------------------------------
// Paper Algorithm 9: NOT opaque even with the new API — T1 read y before
// T2's commit, so a later cmp on x must not expose T2's write. Every
// algorithm must abort T1 (or, equivalently, never let the cmp succeed and
// commit).
// ---------------------------------------------------------------------------
TEST_P(History, Algorithm9_MustAbort) {
  if (!concurrent_capable(GetParam())) GTEST_SKIP();
  TVar<long> x(0), y(0), z(0);

  t1->begin();
  const word_t zy = t1->read(y.word());  // z = y reads 0
  EXPECT_EQ(zy, 0u);

  t2->begin();
  t2->write(x.word(), 1);
  t2->write(y.word(), 1);
  t2->commit();

  // T1 now evaluates if (x >= 1). Observing x == 1 while having read
  // y == 0 would be inconsistent. The cmp (or the subsequent commit) must
  // abort; it must never commit having observed the condition as true.
  bool committed_true = false;
  try {
    if (t1->cmp(x.word(), Rel::SGE, 1)) {
      t1->write(z.word(), 1);
      t1->commit();
      committed_true = true;
    } else {
      t1->commit();  // observing false is consistent (serialize before T2)
    }
  } catch (const TxAbort&) {
    t1->rollback();
  }
  EXPECT_FALSE(committed_true);
  EXPECT_EQ(z.unsafe_get(), 0);
}

// ---------------------------------------------------------------------------
// Increment concurrency (§3): two transactions increment the same counter
// concurrently. With semantic inc neither aborts and both deltas land;
// with read+write one must abort.
// ---------------------------------------------------------------------------
TEST_P(History, ConcurrentIncrementsBothCommit) {
  if (!concurrent_capable(GetParam())) GTEST_SKIP();
  TVar<long> counter(10);

  t1->begin();
  t1->inc(counter.word(), 1);

  t2->begin();
  t2->inc(counter.word(), 1);
  t2->commit();

  if (semantic) {
    t1->commit();  // delta applied to post-T2 memory
    EXPECT_EQ(counter.unsafe_get(), 12);
  } else {
    // inc delegated to read+write: T1's read of `counter` is now stale.
    EXPECT_THROW(t1->commit(), TxAbort);
    t1->rollback();
    EXPECT_EQ(counter.unsafe_get(), 11);
  }
}

// ---------------------------------------------------------------------------
// The queue motivation (paper Algorithm 3): a dequeue checking head != tail
// semantically survives a concurrent enqueue that moves tail (the relation
// outcome is preserved), but aborts at the memory level.
// ---------------------------------------------------------------------------
TEST_P(History, DequeueSurvivesConcurrentEnqueue) {
  if (!concurrent_capable(GetParam())) GTEST_SKIP();
  TVar<long> head(0), tail(3);  // non-empty queue

  t1->begin();
  const bool empty = t1->cmp2(head.word(), Rel::EQ, tail.word());
  EXPECT_FALSE(empty);

  t2->begin();  // concurrent enqueue: tail++
  t2->inc(tail.word(), 1);
  t2->commit();

  if (semantic) {
    t1->inc(head.word(), 1);  // head++ completes the dequeue
    t1->commit();
    EXPECT_EQ(head.unsafe_get(), 1);
    EXPECT_EQ(tail.unsafe_get(), 4);
  } else {
    EXPECT_THROW(
        {
          t1->write(head.word(), t1->read(head.word()) + 1);
          t1->commit();
        },
        TxAbort);
    t1->rollback();
  }
}

// ---------------------------------------------------------------------------
// Write-after-read (§4.1): reading then writing the same variable is
// covered by commit-time validation — a concurrent commit in between must
// abort the transaction in every algorithm, semantic or not.
// ---------------------------------------------------------------------------
TEST_P(History, WriteAfterReadStillValidated) {
  if (!concurrent_capable(GetParam())) GTEST_SKIP();
  TVar<long> x(1);

  t1->begin();
  const word_t v = t1->read(x.word());

  t2->begin();
  t2->write(x.word(), 50);
  t2->commit();

  EXPECT_THROW(
      {
        t1->write(x.word(), v + 1);
        t1->commit();
      },
      TxAbort);
  t1->rollback();
  EXPECT_EQ(x.unsafe_get(), 50);
}

// ---------------------------------------------------------------------------
// A cmp that a concurrent commit invalidates *semantically* must abort in
// the semantic algorithms too (true conflicts are still conflicts).
// ---------------------------------------------------------------------------
TEST_P(History, SemanticTrueConflictAborts) {
  if (!concurrent_capable(GetParam())) GTEST_SKIP();
  TVar<long> x(5), out(0);

  t1->begin();
  EXPECT_TRUE(t1->cmp(x.word(), Rel::SGT, 0));

  t2->begin();
  t2->write(x.word(), -1);  // flips the condition
  t2->commit();

  EXPECT_THROW(
      {
        t1->write(out.word(), 1);
        t1->commit();
      },
      TxAbort);
  t1->rollback();
  EXPECT_EQ(out.unsafe_get(), 0);
}

// ---------------------------------------------------------------------------
// Composed conditional (paper §3 / Algorithm 1 taken further): the whole
// clause `x > 0 || y > 0` is one semantic read. A concurrent commit that
// flips ONE disjunct must not abort the reader — the OR still holds.
// Per-operator recording cannot save this case; cmp_or can.
// ---------------------------------------------------------------------------
TEST_P(History, WholeClauseSurvivesOneFlippedDisjunct) {
  if (!concurrent_capable(GetParam())) GTEST_SKIP();
  TVar<long> x(5), y(5), out(0);

  t1->begin();
  const CmpTerm clause[2] = {
      term<long>(x, Rel::SGT, 0),
      term<long>(y, Rel::SGT, 0),
  };
  EXPECT_TRUE(t1->cmp_or(clause, 2));

  t2->begin();
  t2->write(x.word(), to_word<long>(-10));  // x > 0 flips ...
  t2->commit();                             // ... but y > 0 still holds

  if (semantic) {
    t1->write(out.word(), 1);
    t1->commit();  // the OR outcome is preserved: commit succeeds
    EXPECT_EQ(out.unsafe_get(), 1);
  } else {
    // Non-semantic algorithms evaluated the clause via plain reads of x
    // (short-circuit stopped there), so the value validation fails.
    EXPECT_THROW(
        {
          t1->write(out.word(), 1);
          t1->commit();
        },
        TxAbort);
    t1->rollback();
  }
}

TEST_P(History, WholeClauseAbortsWhenOutcomeFlips) {
  if (!concurrent_capable(GetParam())) GTEST_SKIP();
  TVar<long> x(5), y(5), out(0);

  t1->begin();
  const CmpTerm clause[2] = {
      term<long>(x, Rel::SGT, 0),
      term<long>(y, Rel::SGT, 0),
  };
  EXPECT_TRUE(t1->cmp_or(clause, 2));

  t2->begin();
  t2->write(x.word(), to_word<long>(-1));  // both disjuncts now false:
  t2->write(y.word(), to_word<long>(-1));  // a true semantic conflict
  t2->commit();

  EXPECT_THROW(
      {
        t1->write(out.word(), 1);
        t1->commit();
      },
      TxAbort);
  t1->rollback();
  EXPECT_EQ(out.unsafe_get(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, History,
                         ::testing::Values("cgl", "norec", "snorec", "tl2",
                                           "stl2"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace semstm
