// Tests for the tmir substrate: interpreter semantics, the tm_mark
// pattern detector, the tm_optimize dead-TM-read eliminator, and
// end-to-end equivalence of original vs. transformed kernels.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>

#include "containers/tarray.hpp"
#include "semstm.hpp"
#include "util/rng.hpp"
#include "tmir/analysis/lint.hpp"
#include "tmir/builder.hpp"
#include "tmir/interp.hpp"
#include "tmir/kernels.hpp"
#include "tmir/passes.hpp"

namespace semstm::tmir {
namespace {

class TmirFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    algo_ = make_algorithm("snorec");
    ctx_ = std::make_unique<ThreadCtx>(algo_->make_tx());
    binder_ = std::make_unique<CtxBinder>(*ctx_);
  }

  word_t run(const Function& f, std::initializer_list<word_t> args,
             InterpOptions opts = {}) {
    return atomically([&](Tx& tx) {
      return execute(tx, f, args.begin(), args.size(), opts);
    });
  }

  std::unique_ptr<Algorithm> algo_;
  std::unique_ptr<ThreadCtx> ctx_;
  std::unique_ptr<CtxBinder> binder_;
};

// ---------------------------------------------------------------------------
// Interpreter basics
// ---------------------------------------------------------------------------

TEST_F(TmirFixture, ArithmeticAndBranches) {
  // return (a > b) ? a - b : b - a
  Builder b("absdiff", 2, 0);
  const auto a = b.arg(0);
  const auto c = b.arg(1);
  const auto then_b = b.new_block();
  const auto else_b = b.new_block();
  b.cbr(b.cmp(Rel::SGT, a, c), then_b, else_b);
  b.set_block(then_b);
  b.ret(b.sub(a, c));
  b.set_block(else_b);
  b.ret(b.sub(c, a));
  const Function f = b.take();

  EXPECT_EQ(run(f, {10, 3}), 7u);
  EXPECT_EQ(run(f, {3, 10}), 7u);
  EXPECT_EQ(run(f, {5, 5}), 0u);
}

TEST_F(TmirFixture, LocalsAndLoops) {
  // sum 1..n via a loop
  Builder b("sum", 1, 1);
  const auto n = b.arg(0);
  b.store_local(0, b.konst(0));
  const auto loop = b.new_block();
  const auto body = b.new_block();
  const auto done = b.new_block();
  b.br(loop);
  b.set_block(loop);
  b.cbr(b.cmp(Rel::UGT, n, b.konst(0)), body, done);  // placeholder cond
  b.set_block(body);
  // acc += n is not expressible without mutating n; use a counting local.
  b.br(done);
  b.set_block(done);
  b.ret(b.load_local(0));
  const Function f = b.take();
  EXPECT_EQ(run(f, {4}), 0u);  // structural smoke: loop + locals execute
}

TEST_F(TmirFixture, TmLoadStoreRoundTrip) {
  TVar<long> x(7);
  Builder b("bump", 1, 0);
  const auto addr = b.arg(0);
  const auto v = b.tm_load(addr);
  b.tm_store(addr, b.add(v, b.konst(5)));
  b.ret(v);
  const Function f = b.take();
  const word_t old = run(f, {to_word(x.word())});
  EXPECT_EQ(old, 7u);
  EXPECT_EQ(x.unsafe_get(), 12);
}

TEST_F(TmirFixture, InstrumentedLocalsBehaveIdentically) {
  Builder b("loc", 1, 1);
  b.store_local(0, b.arg(0));
  const auto v = b.load_local(0);
  b.store_local(0, b.add(v, b.konst(1)));
  b.ret(b.load_local(0));
  const Function f = b.take();
  EXPECT_EQ(run(f, {41}), 42u);
  tword shadow[1];  // must outlive the transaction (write-set points here)
  EXPECT_EQ(
      run(f, {41}, {.instrument_locals = true, .local_shadow = shadow}),
      42u);
}

TEST_F(TmirFixture, InstrumentedLocalsRequireCallerShadow) {
  Builder b("loc2", 0, 1);
  b.store_local(0, b.konst(1));
  b.ret(b.load_local(0));
  const Function f = b.take();
  EXPECT_THROW(run(f, {}, {.instrument_locals = true}), std::runtime_error);
}

TEST_F(TmirFixture, MalformedIrIsRejected) {
  Builder b("bad", 0, 0);
  b.konst(1);  // block without terminator
  const Function f = b.take();
  EXPECT_THROW(run(f, {}), std::runtime_error);
}

// ---------------------------------------------------------------------------
// pass_tm_mark pattern detection
// ---------------------------------------------------------------------------

TEST(TmMark, DetectsAddressValueCompare) {
  // if (TM_READ(x) > 0) — the paper's canonical S1R pattern.
  Builder b("s1r", 1, 0);
  const auto v = b.tm_load(b.arg(0));
  const auto t = b.new_block();
  const auto e = b.new_block();
  b.cbr(b.cmp(Rel::SGT, v, b.konst(0)), t, e);
  b.set_block(t);
  b.ret(b.konst(1));
  b.set_block(e);
  b.ret(b.konst(0));
  Function f = b.take();

  const MarkStats ms = pass_tm_mark(f);
  EXPECT_EQ(ms.s1r, 1u);
  EXPECT_EQ(f.count_op(Op::kTmCmp1), 1u);
  // The feeding load becomes never-live; tm_optimize removes it.
  const OptimizeStats os = pass_tm_optimize(f);
  EXPECT_EQ(os.removed_tm_loads, 1u);
  EXPECT_EQ(f.count_op(Op::kTmLoad), 0u);
}

TEST(TmMark, DetectsMirroredCompare) {
  // if (0 < TM_READ(x)) — load on the right; relation must mirror.
  Builder b("s1r_m", 1, 0);
  const auto v = b.tm_load(b.arg(0));
  const auto t = b.new_block();
  const auto e = b.new_block();
  b.cbr(b.cmp(Rel::SLT, b.konst(0), v), t, e);
  b.set_block(t);
  b.ret(b.konst(1));
  b.set_block(e);
  b.ret(b.konst(0));
  Function f = b.take();

  EXPECT_EQ(pass_tm_mark(f).s1r, 1u);
  // Find the rewritten instruction and check the mirrored relation.
  for (const Block& blk : f.blocks) {
    for (const Instr& i : blk.code) {
      if (i.op == Op::kTmCmp1) EXPECT_EQ(i.rel, Rel::SGT);
    }
  }
}

TEST(TmMark, DetectsAddressAddressCompare) {
  // if (TM_READ(head) == TM_READ(tail)) — S2R.
  Builder b("s2r", 2, 0);
  const auto h = b.tm_load(b.arg(0));
  const auto t0 = b.tm_load(b.arg(1));
  const auto t = b.new_block();
  const auto e = b.new_block();
  b.cbr(b.cmp(Rel::EQ, h, t0), t, e);
  b.set_block(t);
  b.ret(b.konst(1));
  b.set_block(e);
  b.ret(b.konst(0));
  Function f = b.take();

  EXPECT_EQ(pass_tm_mark(f).s2r, 1u);
  EXPECT_EQ(pass_tm_optimize(f).removed_tm_loads, 2u);
}

TEST(TmMark, DetectsIncrementAndDecrement) {
  // TM_WRITE(x, TM_READ(x) + 5) and TM_WRITE(y, TM_READ(y) - 3).
  Builder b("incdec", 2, 0);
  const auto ax = b.arg(0);
  const auto ay = b.arg(1);
  b.tm_store(ax, b.add(b.tm_load(ax), b.konst(5)));
  b.tm_store(ay, b.sub(b.tm_load(ay), b.konst(3)));
  b.ret(b.konst(0));
  Function f = b.take();

  EXPECT_EQ(pass_tm_mark(f).sw, 2u);
  EXPECT_EQ(f.count_op(Op::kTmInc), 2u);
  EXPECT_EQ(pass_tm_optimize(f).removed_tm_loads, 2u);
}

TEST(TmMark, LeavesLiveReadsAlone) {
  // v = TM_READ(x); TM_WRITE(x, v + 1); return v — the read stays live
  // (returned), so the store is rewritten but the load must NOT be removed.
  Builder b("live", 1, 0);
  const auto ax = b.arg(0);
  const auto v = b.tm_load(ax);
  b.tm_store(ax, b.add(v, b.konst(1)));
  b.ret(v);
  Function f = b.take();

  EXPECT_EQ(pass_tm_mark(f).sw, 1u);
  EXPECT_EQ(pass_tm_optimize(f).removed_tm_loads, 0u);
  EXPECT_EQ(f.count_op(Op::kTmLoad), 1u);
}

TEST(TmMark, IgnoresNonTmPatterns) {
  // Compare of two locals, store of a product: nothing to mark.
  Builder b("plain", 1, 2);
  b.store_local(0, b.konst(1));
  b.store_local(1, b.konst(2));
  const auto t = b.new_block();
  const auto e = b.new_block();
  b.cbr(b.cmp(Rel::SLT, b.load_local(0), b.load_local(1)), t, e);
  b.set_block(t);
  const auto ax = b.arg(0);
  b.tm_store(ax, b.mul(b.tm_load(ax), b.konst(2)));  // x *= 2: not an inc
  b.ret(b.konst(1));
  b.set_block(e);
  b.ret(b.konst(0));
  Function f = b.take();

  const MarkStats ms = pass_tm_mark(f);
  EXPECT_EQ(ms.s1r + ms.s2r + ms.sw, 0u);
}

TEST(TmMark, IgnoresDifferentAddressStore) {
  // TM_WRITE(y, TM_READ(x) + 1): not an increment of y.
  Builder b("xfer", 2, 0);
  b.tm_store(b.arg(1), b.add(b.tm_load(b.arg(0)), b.konst(1)));
  b.ret(b.konst(0));
  Function f = b.take();
  EXPECT_EQ(pass_tm_mark(f).sw, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: kernels behave identically before and after the passes.
// ---------------------------------------------------------------------------

class KernelEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelEquivalence, HashKernelsMatchAcrossPipelines) {
  auto algo = make_algorithm(GetParam());
  ThreadCtx ctx(algo->make_tx());
  CtxBinder bind(ctx);

  Function probe_raw = build_probe_kernel();
  Function insert_raw = build_insert_kernel();
  Function remove_raw = build_remove_kernel();
  Function probe_opt = build_probe_kernel();
  Function insert_opt = build_insert_kernel();
  Function remove_opt = build_remove_kernel();
  for (Function* f : {&probe_opt, &insert_opt, &remove_opt}) {
    pass_tm_mark(*f);
    pass_tm_optimize(*f);
  }
  EXPECT_GT(probe_opt.count_op(Op::kTmCmp1), 0u);

  constexpr std::size_t kCap = 64;
  TArray<std::int64_t> states_a(kCap, 0), keys_a(kCap, 0);
  TArray<std::int64_t> states_b(kCap, 0), keys_b(kCap, 0);

  auto word_args = [&](TArray<std::int64_t>& st, TArray<std::int64_t>& ks,
                       word_t start, word_t key) {
    return std::array<word_t, 6>{to_word(st[0].word()), to_word(ks[0].word()),
                                 kCap - 1, start, key, kCap};
  };

  Rng rng(99);
  for (int step = 0; step < 1500; ++step) {
    const word_t key = 1 + rng.below(40);
    const word_t start = key % kCap;
    const unsigned action = static_cast<unsigned>(rng.below(3));
    const Function& raw = action == 0   ? insert_raw
                          : action == 1 ? remove_raw
                                        : probe_raw;
    const Function& opt = action == 0   ? insert_opt
                          : action == 1 ? remove_opt
                                        : probe_opt;
    auto aa = word_args(states_a, keys_a, start, key);
    auto ab = word_args(states_b, keys_b, start, key);
    const word_t ra = atomically(
        [&](Tx& tx) { return execute(tx, raw, aa.data(), aa.size()); });
    const word_t rb = atomically(
        [&](Tx& tx) { return execute(tx, opt, ab.data(), ab.size()); });
    ASSERT_EQ(ra, rb) << "step " << step << " action " << action;
  }
  // The two tables must be bit-identical after the op sequence.
  for (std::size_t i = 0; i < kCap; ++i) {
    ASSERT_EQ(states_a[i].unsafe_get(), states_b[i].unsafe_get()) << i;
    ASSERT_EQ(keys_a[i].unsafe_get(), keys_b[i].unsafe_get()) << i;
  }
}

TEST_P(KernelEquivalence, ReserveKernelMatches) {
  auto algo = make_algorithm(GetParam());
  ThreadCtx ctx(algo->make_tx());
  CtxBinder bind(ctx);

  Function raw = build_reserve_kernel(4);
  Function opt = build_reserve_kernel(4);
  const MarkStats ms = pass_tm_mark(opt);
  EXPECT_EQ(ms.sw, 1u);   // the numFree decrement
  EXPECT_GE(ms.s1r, 4u);  // numFree > 0 checks (price check keeps its read)
  pass_tm_optimize(opt);

  constexpr std::size_t kRecords = 16;
  TArray<std::int64_t> free_a(kRecords, 3), price_a(kRecords, 0);
  TArray<std::int64_t> free_b(kRecords, 3), price_b(kRecords, 0);
  Rng setup(5);
  for (std::size_t i = 0; i < kRecords; ++i) {
    const auto p = setup.between(10, 500);
    price_a[i].unsafe_set(p);
    price_b[i].unsafe_set(p);
  }

  Rng rng(123);
  for (int step = 0; step < 600; ++step) {
    std::array<word_t, 6> aa{to_word(free_a[0].word()),
                             to_word(price_a[0].word())};
    std::array<word_t, 6> ab{to_word(free_b[0].word()),
                             to_word(price_b[0].word())};
    for (int q = 0; q < 4; ++q) {
      const word_t id = rng.below(kRecords);
      aa[2 + q] = id;
      ab[2 + q] = id;
    }
    const word_t ra = atomically(
        [&](Tx& tx) { return execute(tx, raw, aa.data(), aa.size()); });
    const word_t rb = atomically(
        [&](Tx& tx) { return execute(tx, opt, ab.data(), ab.size()); });
    ASSERT_EQ(ra, rb) << step;
  }
  for (std::size_t i = 0; i < kRecords; ++i) {
    ASSERT_EQ(free_a[i].unsafe_get(), free_b[i].unsafe_get()) << i;
  }
}

TEST_P(KernelEquivalence, CenterUpdateKernelMatches) {
  auto algo = make_algorithm(GetParam());
  ThreadCtx ctx(algo->make_tx());
  CtxBinder bind(ctx);

  // Three pipelines over the hoisted-loads record shape: raw, the PR 5
  // alias-free pass (every crossed store is a clobber), and the alias-aware
  // pass with redundant-barrier elimination in front.
  Function raw = build_center_update_kernel(8);
  Function base = build_center_update_kernel(8);
  Function opt = build_center_update_kernel(8);

  const MarkStats ms_base = pass_tm_mark(base, {.use_alias = false});
  EXPECT_EQ(ms_base.sw, 1u);  // only the length bump is clobber-free
  EXPECT_EQ(ms_base.skipped_clobbered, 8u);
  pass_tm_optimize(base);

  const RbeStats rbe = pass_tm_rbe(opt);
  EXPECT_EQ(rbe.store_load_forwarded, 1u);  // the trailing length re-read
  const MarkStats ms = pass_tm_mark(opt);
  // All 8 feature adds recover: each crosses only proven-disjoint cells.
  // The length store stays a plain store — it is the forwarding witness.
  EXPECT_EQ(ms.sw, 8u);
  EXPECT_EQ(ms.recovered_noalias, 8u);
  EXPECT_EQ(ms.skipped_clobbered, 0u);
  const OptimizeStats os = pass_tm_optimize(opt);
  EXPECT_EQ(os.removed_tm_loads, 8u);  // the 8 feature-cell origin loads
  EXPECT_EQ(opt.count(Op::kTmLoad).live, 1u);  // only the length load runs
  EXPECT_TRUE(pass_tm_lint(opt).empty());

  TArray<std::int64_t> rec_a(9, 0), rec_b(9, 0), rec_c(9, 0);
  Rng rng(7);
  for (int step = 0; step < 200; ++step) {
    std::array<word_t, 9> aa{to_word(rec_a[0].word())};
    std::array<word_t, 9> ab{to_word(rec_b[0].word())};
    std::array<word_t, 9> ac{to_word(rec_c[0].word())};
    for (int j = 0; j < 8; ++j) {
      const word_t fv = rng.below(100);
      aa[1 + j] = fv;
      ab[1 + j] = fv;
      ac[1 + j] = fv;
    }
    const word_t ra = atomically(
        [&](Tx& tx) { return execute(tx, raw, aa.data(), aa.size()); });
    const word_t rb = atomically(
        [&](Tx& tx) { return execute(tx, base, ab.data(), ab.size()); });
    const word_t rc = atomically(
        [&](Tx& tx) { return execute(tx, opt, ac.data(), ac.size()); });
    ASSERT_EQ(ra, rb) << step;  // returned new length
    ASSERT_EQ(ra, rc) << step;
  }
  for (std::size_t j = 0; j < 9; ++j) {
    EXPECT_EQ(rec_a[j].unsafe_get(), rec_b[j].unsafe_get()) << j;
    EXPECT_EQ(rec_a[j].unsafe_get(), rec_c[j].unsafe_get()) << j;
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, KernelEquivalence,
                         ::testing::Values("cgl", "norec", "snorec", "tl2",
                                           "stl2"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace semstm::tmir
