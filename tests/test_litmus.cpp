// Adversarial-schedule litmus tests: DFS-enumerate the interleavings of
// small 2-thread programs against every algorithm core (sched/litmus.hpp)
// and assert that only serializable outcomes appear. Each family targets a
// protocol window opened up by the sched::sched_point markers:
//
//   WriteRead        — minimal exhaustive test per core (the certificate
//                      that the harness enumerates EVERY interleaving).
//   StoreBuffering   — two crossing write/read transactions; the relaxed
//                      (0,0) outcome must never appear across a commit.
//   Publication      — flag/data publication inside one transaction.
//   Privatization    — flag-guarded privatization followed by non-tx
//                      access; documents the TL2-family delayed-write-back
//                      anomaly (allowed by the algorithms as published).
//   SemanticReval    — a cmp whose outcome flips concurrently must abort
//                      (the paper's semantic-revalidation obligation).
//   SerialGate/Orec  — direct litmus over the runtime primitives, proving
//                      the enter/acquire drain and the single-releaser
//                      unlock at schedule granularity.
//
// Real-thread variants (`_real`-suffixed names) re-run the gate and orec
// protocols on OS threads; the TSan CI stage (scripts/ci_tsan.sh) filters
// to them, since TSan cannot follow ucontext fiber switches.
#include <gtest/gtest.h>

#include <atomic>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "runtime/orec.hpp"
#include "sched/litmus.hpp"
#include "sched/thread_runner.hpp"
#include "semstm.hpp"

namespace semstm {
namespace {

using sched::explore;
using sched::ExploreOptions;
using sched::ExploreResult;
using sched::replay;

/// Deterministic, maximally polite contention manager for litmus bodies:
/// one spin per abort (the spin parks the retrying fiber under the DFS
/// controller, which is what keeps abort-retry loops finitely explorable)
/// and never any randomized backoff or serial escalation — escalation
/// would drag the whole gate protocol into every TM litmus tree.
class PoliteCm final : public ContentionManager {
 public:
  const char* name() const noexcept override { return "polite"; }
  bool on_abort(std::uint64_t) override {
    sched::spin_pause();
    return false;
  }
};

/// Base for TM litmus tests: rebuilds the ENTIRE TM instance (algorithm,
/// descriptors, contexts) on every reset, because a truncated schedule can
/// unwind mid-commit and leave shared metadata (odd seqlock, locked orecs,
/// held gate) in an arbitrary in-protocol state. TVar storage lives in the
/// subclass at a fixed address across resets, so orec hashing is stable
/// within one exploration (the DFS relies on replay determinism).
class TmLitmus : public sched::LitmusTest {
 public:
  TmLitmus(std::string algo, unsigned nthreads)
      : algo_name_(std::move(algo)), nthreads_(nthreads) {}

  unsigned threads() const override { return nthreads_; }

  void reset() override {
    ctxs_.clear();
    AlgoOptions opts;
    // Small orec table: reset() rebuilds it once per explored schedule, and
    // the default 2^16 slots would zero a megabyte each time. Collisions
    // among the 2-3 litmus addresses only add false conflicts (extra
    // aborts), never new outcomes, so the assertions are collision-safe.
    opts.orec_log2 = 8;
    algo_ = make_algorithm(algo_name_, opts);
    for (unsigned i = 0; i < nthreads_; ++i) {
      ctxs_.push_back(std::make_unique<ThreadCtx>(
          algo_->make_tx(), /*seed=*/100 + i, std::make_unique<PoliteCm>()));
    }
    reset_memory();
  }

  void thread(unsigned tid) override {
    CtxBinder bind(*ctxs_[tid]);
    body(tid);
  }

 protected:
  virtual void reset_memory() = 0;
  virtual void body(unsigned tid) = 0;

  const std::string algo_name_;
  const unsigned nthreads_;
  std::unique_ptr<Algorithm> algo_;
  std::vector<std::unique_ptr<ThreadCtx>> ctxs_;
};

/// Every witness schedule must replay to the outcome it witnessed — this
/// is the regression-schedule workflow a bug fix commits.
void expect_witnesses_replay(sched::LitmusTest& test, const ExploreResult& r) {
  for (const auto& [outcome, witness] : r.outcomes) {
    EXPECT_EQ(replay(test, witness.schedule), outcome)
        << "witness schedule no longer reproduces its outcome";
  }
}

/// The two full serializations, pinned by scripted replays. An all-zeros
/// script runs T0 to completion first, an all-ones script T1 — the two
/// *ends* of the DFS tree, which a budget-bounded exploration of a large
/// tree may never reach (the far end is literally the last schedule).
/// Asserting them by replay keeps the serialization-presence check
/// deterministic regardless of budget.
std::string replay_t_first(sched::LitmusTest& test, unsigned tid) {
  return replay(test, std::vector<unsigned>(64, tid));
}

/// Bounded-budget exploration for the multi-operation families. The TL2
/// family's instrumented commit window (per-lock, per-store, clock and
/// unlock sched_points) makes its schedule trees run into the hundreds of
/// thousands, past the Debug-tier budget — those explorations stay
/// systematic-but-bounded, while small trees still certify exhaustion.
/// Raise SEMSTM_LITMUS_MAX_SCHEDULES for nightly-depth runs.
ExploreResult explore_bounded(sched::LitmusTest& test) {
  ExploreOptions opts;
  opts.max_schedules = 20000;
  return explore(test, opts);
}

/// One greppable line per exploration — the numbers in EXPERIMENTS.md's
/// litmus table are transcribed from this output.
void log_result(const std::string& name, const std::string& algo,
                const ExploreResult& r) {
  std::cout << "[litmus] " << name << '/' << algo
            << " schedules=" << r.schedules << " truncated=" << r.truncated
            << " exhaustive=" << (r.exhaustive ? 1 : 0) << " outcomes={";
  bool first = true;
  for (const std::string& o : r.outcome_set()) {
    std::cout << (first ? "" : "; ") << o;
    first = false;
  }
  std::cout << "}\n";
}

// ---------------------------------------------------------------------------
// WriteRead: T0 {x = 1}, T1 {r = x}. The minimal 2-thread test that every
// core must sustain EXHAUSTIVE enumeration on: both serializations exist,
// nothing else does.
// ---------------------------------------------------------------------------
class WriteReadLitmus final : public TmLitmus {
 public:
  explicit WriteReadLitmus(std::string algo) : TmLitmus(std::move(algo), 2) {}

  void reset_memory() override {
    x_.unsafe_set(0);
    r_ = -1;
  }
  void body(unsigned tid) override {
    if (tid == 0) {
      atomically([&](Tx& tx) { tx.write(x_.word(), 1); });
    } else {
      atomically([&](Tx& tx) { r_ = static_cast<long>(tx.read(x_.word())); });
    }
  }
  std::string outcome() override { return "r=" + std::to_string(r_); }

 private:
  TVar<long> x_{0};
  long r_ = -1;
};

class LitmusPerAlgo : public ::testing::TestWithParam<std::string> {};

TEST_P(LitmusPerAlgo, WriteReadExhaustive) {
  WriteReadLitmus test(GetParam());
  const ExploreResult r = explore(test);
  log_result("WriteRead", GetParam(), r);
  EXPECT_TRUE(r.exhaustive) << "schedule budget too small to exhaust";
  EXPECT_EQ(r.truncated, 0u);
  EXPECT_GT(r.schedules, 1u) << "controller explored only one interleaving";
  EXPECT_EQ(r.outcome_set(), (std::vector<std::string>{"r=0", "r=1"}));
  expect_witnesses_replay(test, r);
}

// ---------------------------------------------------------------------------
// StoreBuffering across commit: T0 {x = 1; r0 = y}, T1 {y = 1; r1 = x},
// each one transaction. Serializable outcomes are (0,1) and (1,0); the
// relaxed-memory signature (0,0) must never survive commit validation, and
// (1,1) would need each transaction to observe the other's write — a
// serialization cycle.
// ---------------------------------------------------------------------------
class StoreBufferingLitmus final : public TmLitmus {
 public:
  explicit StoreBufferingLitmus(std::string algo)
      : TmLitmus(std::move(algo), 2) {}

  void reset_memory() override {
    x_.unsafe_set(0);
    y_.unsafe_set(0);
    r0_ = r1_ = -1;
  }
  void body(unsigned tid) override {
    if (tid == 0) {
      atomically([&](Tx& tx) {
        tx.write(x_.word(), 1);
        r0_ = static_cast<long>(tx.read(y_.word()));
      });
    } else {
      atomically([&](Tx& tx) {
        tx.write(y_.word(), 1);
        r1_ = static_cast<long>(tx.read(x_.word()));
      });
    }
  }
  std::string outcome() override {
    return "r0=" + std::to_string(r0_) + ",r1=" + std::to_string(r1_);
  }

 private:
  TVar<long> x_{0}, y_{0};
  long r0_ = -1, r1_ = -1;
};

TEST_P(LitmusPerAlgo, StoreBufferingOnlySerializableOutcomes) {
  StoreBufferingLitmus test(GetParam());
  const ExploreResult r = explore_bounded(test);
  log_result("StoreBuffering", GetParam(), r);
  EXPECT_GT(r.schedules, 1u);
  for (const std::string& outcome : r.outcome_set()) {
    EXPECT_TRUE(outcome == "r0=0,r1=1" || outcome == "r0=1,r1=0")
        << "non-serializable store-buffering outcome " << outcome
        << " escaped commit";
  }
  if (r.exhaustive) {
    EXPECT_EQ(r.outcome_set(),
              (std::vector<std::string>{"r0=0,r1=1", "r0=1,r1=0"}));
  }
  EXPECT_EQ(replay_t_first(test, 0), "r0=0,r1=1");
  EXPECT_EQ(replay_t_first(test, 1), "r0=1,r1=0");
  expect_witnesses_replay(test, r);
}

// ---------------------------------------------------------------------------
// Publication: T0 {data = 42; flag = 1}, T1 {if (flag) r = data}. Seeing
// the flag set without the data is the classic publication violation.
// ---------------------------------------------------------------------------
class PublicationLitmus final : public TmLitmus {
 public:
  explicit PublicationLitmus(std::string algo)
      : TmLitmus(std::move(algo), 2) {}

  void reset_memory() override {
    data_.unsafe_set(0);
    flag_.unsafe_set(0);
    r_flag_ = r_data_ = -1;
  }
  void body(unsigned tid) override {
    if (tid == 0) {
      atomically([&](Tx& tx) {
        tx.write(data_.word(), 42);
        tx.write(flag_.word(), 1);
      });
    } else {
      atomically([&](Tx& tx) {
        r_flag_ = static_cast<long>(tx.read(flag_.word()));
        r_data_ =
            r_flag_ != 0 ? static_cast<long>(tx.read(data_.word())) : -1;
      });
    }
  }
  std::string outcome() override {
    return "flag=" + std::to_string(r_flag_) +
           ",data=" + std::to_string(r_data_);
  }

 private:
  TVar<long> data_{0}, flag_{0};
  long r_flag_ = -1, r_data_ = -1;
};

TEST_P(LitmusPerAlgo, PublicationNeverTearsFlagFromData) {
  PublicationLitmus test(GetParam());
  const ExploreResult r = explore_bounded(test);
  log_result("Publication", GetParam(), r);
  EXPECT_GT(r.schedules, 1u);
  for (const std::string& outcome : r.outcome_set()) {
    EXPECT_TRUE(outcome == "flag=0,data=-1" || outcome == "flag=1,data=42")
        << "published flag observed without the published data: " << outcome;
  }
  if (r.exhaustive) {
    EXPECT_EQ(r.outcome_set(),
              (std::vector<std::string>{"flag=0,data=-1", "flag=1,data=42"}));
  }
  EXPECT_EQ(replay_t_first(test, 0), "flag=1,data=42");
  EXPECT_EQ(replay_t_first(test, 1), "flag=0,data=-1");
  expect_witnesses_replay(test, r);
}

// ---------------------------------------------------------------------------
// Privatization: T1 {if (flag == 0) x = 1}, T0 {flag = 1} then a NON-
// transactional x *= 10. Serializable: x ends 0 (T0 first) or 10 (T1
// first). The TL2 family admits x == 1: T1 can pass its serialization
// point (clock advance, orecs locked) and then have its write-back of x
// land AFTER the privatizer's non-transactional read-modify-write — the
// delayed-write-back privatization anomaly documented for TL2-style
// timestamp STMs (see DESIGN.md §4.14). NOrec's single commit lock makes
// write-back atomic w.r.t. the next commit, so the NOrec family and CGL
// are privatization-safe.
// ---------------------------------------------------------------------------
class PrivatizationLitmus final : public TmLitmus {
 public:
  explicit PrivatizationLitmus(std::string algo)
      : TmLitmus(std::move(algo), 2) {}

  void reset_memory() override {
    x_.unsafe_set(0);
    flag_.unsafe_set(0);
  }
  void body(unsigned tid) override {
    if (tid == 0) {
      atomically([&](Tx& tx) { tx.write(flag_.word(), 1); });
      // Privatized by the committed flag: non-transactional access.
      x_.unsafe_set(x_.unsafe_get() * 10);
    } else {
      atomically([&](Tx& tx) {
        if (tx.read(flag_.word()) == 0) tx.write(x_.word(), 1);
      });
    }
  }
  std::string outcome() override {
    return "x=" + std::to_string(x_.unsafe_get());
  }

 private:
  TVar<long> x_{0}, flag_{0};
};

TEST_P(LitmusPerAlgo, PrivatizationOutcomesMatchFamilyGuarantee) {
  PrivatizationLitmus test(GetParam());
  const ExploreResult r = explore_bounded(test);
  log_result("Privatization", GetParam(), r);
  EXPECT_GT(r.schedules, 1u);
  const bool tl2_family = GetParam() == "tl2" || GetParam() == "stl2";
  for (const std::string& outcome : r.outcome_set()) {
    if (tl2_family) {
      // x=1: the documented delayed-write-back anomaly (lost privatized
      // update), allowed for the TL2 family.
      EXPECT_TRUE(outcome == "x=0" || outcome == "x=10" || outcome == "x=1")
          << "unexpected privatization outcome " << outcome;
    } else {
      EXPECT_TRUE(outcome == "x=0" || outcome == "x=10")
          << GetParam() << " must be privatization-safe, got " << outcome;
    }
  }
  // Both serializable outcomes must be reachable for every core.
  EXPECT_EQ(replay_t_first(test, 0), "x=0");
  EXPECT_EQ(replay_t_first(test, 1), "x=10");
  expect_witnesses_replay(test, r);
}

// ---------------------------------------------------------------------------
// Semantic revalidation: x starts 1. T0 {if (x > 0) y += 1},
// T1 {x -= 1; z = y}. Serializable: T0 first -> (x=0, y=1, z=1); T1 first
// -> the condition fails -> (x=0, y=0, z=0). The outcome (y=1, z=0) would
// mean T0's cmp was not revalidated after its outcome flipped — exactly
// the window the semantic algorithms' compare-set revalidation closes.
// ---------------------------------------------------------------------------
class SemanticRevalLitmus final : public TmLitmus {
 public:
  explicit SemanticRevalLitmus(std::string algo)
      : TmLitmus(std::move(algo), 2) {}

  void reset_memory() override {
    x_.unsafe_set(1);
    y_.unsafe_set(0);
    z_ = -1;
  }
  void body(unsigned tid) override {
    if (tid == 0) {
      atomically([&](Tx& tx) {
        if (tx.cmp(x_.word(), Rel::SGT, 0)) tx.inc(y_.word(), 1);
      });
    } else {
      atomically([&](Tx& tx) {
        tx.inc(x_.word(), static_cast<word_t>(-1));
        z_ = static_cast<long>(tx.read(y_.word()));
      });
    }
  }
  std::string outcome() override {
    return "x=" + std::to_string(x_.unsafe_get()) +
           ",y=" + std::to_string(y_.unsafe_get()) +
           ",z=" + std::to_string(z_);
  }

 private:
  TVar<long> x_{0}, y_{0};
  long z_ = -1;
};

TEST_P(LitmusPerAlgo, FlippedCmpOutcomeIsAlwaysRevalidated) {
  if (GetParam() == "cgl") {
    GTEST_SKIP() << "CGL serializes whole transactions under one lock";
  }
  SemanticRevalLitmus test(GetParam());
  const ExploreResult r = explore_bounded(test);
  log_result("SemanticReval", GetParam(), r);
  EXPECT_GT(r.schedules, 1u);
  for (const std::string& outcome : r.outcome_set()) {
    EXPECT_TRUE(outcome == "x=0,y=0,z=0" || outcome == "x=0,y=1,z=1")
        << "a flipped cmp outcome survived to commit: " << outcome;
  }
  if (r.exhaustive) {
    EXPECT_EQ(r.outcome_set(),
              (std::vector<std::string>{"x=0,y=0,z=0", "x=0,y=1,z=1"}));
  }
  EXPECT_EQ(replay_t_first(test, 0), "x=0,y=1,z=1");
  EXPECT_EQ(replay_t_first(test, 1), "x=0,y=0,z=0");
  expect_witnesses_replay(test, r);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, LitmusPerAlgo,
                         ::testing::ValuesIn(algorithm_names()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// SerialGate direct litmus: one normal enterer vs one token acquirer, at
// sched_point granularity. The enter() add/re-check/undo dance must never
// let the enterer's critical region overlap the token holder's serial
// section (the invariant documented in runtime/serial_gate.hpp).
// ---------------------------------------------------------------------------
class GateLitmus final : public sched::LitmusTest {
 public:
  unsigned threads() const override { return 2; }

  void reset() override {
    gate_ = std::make_unique<SerialGate>();
    in_serial_ = false;
    overlap_ = false;
  }

  void thread(unsigned tid) override {
    if (tid == 0) {
      gate_->enter(&in_serial_);  // any stable identity picks the slot
      if (in_serial_) overlap_ = true;
      sched::sched_point();
      if (in_serial_) overlap_ = true;
      gate_->exit(&in_serial_);
    } else {
      gate_->acquire(this);
      in_serial_ = true;
      sched::sched_point();
      in_serial_ = false;
      sched::sched_point();  // pre-release window (release() itself is
                             // yield-free: it runs on noexcept cleanup paths)
      gate_->release();
    }
  }

  std::string outcome() override { return overlap_ ? "overlap" : "excluded"; }

 private:
  std::unique_ptr<SerialGate> gate_;
  // Single carrier thread: plain (non-atomic) flags are exact observers.
  bool in_serial_ = false;
  bool overlap_ = false;
};

TEST(SerialGateLitmus, EntererNeverOverlapsSerialSection) {
  GateLitmus test;
  const sched::ExploreResult r = explore(test);
  log_result("SerialGate", "direct", r);
  EXPECT_TRUE(r.exhaustive);
  EXPECT_EQ(r.truncated, 0u);
  EXPECT_GT(r.schedules, 1u);
  EXPECT_EQ(r.outcome_set(), (std::vector<std::string>{"excluded"}))
      << "SerialGate::enter raced past a token acquisition";
  expect_witnesses_replay(test, r);
}

// ---------------------------------------------------------------------------
// Orec direct litmus: two owners contend for one orec's commit-time lock.
// try_lock must exclude, and unlock's relaxed owner load is only legal
// under the single-releaser invariant (runtime/orec.hpp) — each thread
// unlocks only what it locked, which this litmus exercises at every
// interleaving including unlock racing a foreign try_lock.
// ---------------------------------------------------------------------------
class OrecLitmus final : public sched::LitmusTest {
 public:
  unsigned threads() const override { return 2; }

  void reset() override {
    orec_ = std::make_unique<Orec>();
    holder_ = -1;
    overlap_ = false;
  }

  void thread(unsigned tid) override {
    const void* self = tid == 0 ? static_cast<const void*>(&holder_)
                                : static_cast<const void*>(&overlap_);
    while (!orec_->try_lock(self)) sched::spin_pause();
    if (holder_ != -1) overlap_ = true;
    holder_ = static_cast<int>(tid);
    sched::sched_point();
    if (holder_ != static_cast<int>(tid)) overlap_ = true;
    holder_ = -1;
    orec_->version.store(orec_->version.load(std::memory_order_relaxed) + 1,
                         std::memory_order_release);
    orec_->unlock(self);
  }

  std::string outcome() override {
    const bool unlocked = !orec_->locked();
    const std::uint64_t v = orec_->version.load(std::memory_order_relaxed);
    return (overlap_ ? std::string("overlap") : std::string("excluded")) +
           ",unlocked=" + (unlocked ? "1" : "0") + ",v=" + std::to_string(v);
  }

 private:
  std::unique_ptr<Orec> orec_;
  int holder_ = -1;
  bool overlap_ = false;
};

TEST(OrecLitmus, TryLockExcludesAndSingleReleaserUnlocks) {
  OrecLitmus test;
  const sched::ExploreResult r = explore(test);
  log_result("Orec", "direct", r);
  EXPECT_TRUE(r.exhaustive);
  EXPECT_GT(r.schedules, 1u);
  EXPECT_EQ(r.outcome_set(),
            (std::vector<std::string>{"excluded,unlocked=1,v=2"}))
      << "orec lock protocol violated mutual exclusion or leaked the lock";
  expect_witnesses_replay(test, r);
}

// ---------------------------------------------------------------------------
// Real-thread stress over the same primitives, for the TSan stage
// (scripts/ci_tsan.sh filters to `_real` test names). These run the
// actual C++11 memory-model code — the fiber litmus above only proves
// SC-level interleaving safety; TSan checks the weaker model.
// ---------------------------------------------------------------------------
TEST(LitmusRealThreads, GateStress_real) {
  SerialGate gate;
  std::atomic<int> in_serial{0};
  std::atomic<int> overlaps{0};
  sched::run_threads(4, [&](unsigned tid) {
    // Per-thread stack identity: distinct threads land on (usually)
    // distinct announce slots, exercising the multi-slot drain.
    int self_storage = 0;
    const void* self = &self_storage;
    for (int i = 0; i < 200; ++i) {
      if (tid == 0) {
        gate.acquire(&gate);
        in_serial.store(1, std::memory_order_relaxed);
        in_serial.store(0, std::memory_order_relaxed);
        gate.release();
      } else {
        gate.enter(self);
        if (in_serial.load(std::memory_order_relaxed) != 0) ++overlaps;
        gate.exit(self);
      }
    }
  });
  EXPECT_EQ(overlaps.load(), 0);
  EXPECT_FALSE(gate.held());
}

TEST(LitmusRealThreads, OrecStress_real) {
  Orec orec;
  std::atomic<std::uint64_t> acquisitions{0};
  int owners[4] = {0, 1, 2, 3};
  std::atomic<int> in_crit{0};
  std::atomic<int> overlaps{0};
  sched::run_threads(4, [&](unsigned tid) {
    const void* self = &owners[tid];
    for (int i = 0; i < 500; ++i) {
      while (!orec.try_lock(self)) {
      }
      if (in_crit.fetch_add(1, std::memory_order_acq_rel) != 0) ++overlaps;
      orec.version.fetch_add(1, std::memory_order_acq_rel);
      in_crit.fetch_sub(1, std::memory_order_acq_rel);
      acquisitions.fetch_add(1, std::memory_order_relaxed);
      orec.unlock(self);
    }
  });
  EXPECT_EQ(overlaps.load(), 0);
  EXPECT_EQ(acquisitions.load(), 4u * 500u);
  EXPECT_FALSE(orec.locked());
  EXPECT_EQ(orec.version.load(), 4u * 500u);
}

/// The full TM stack on real threads with litmus-sized transactions —
/// the TM-level surface the TSan stage watches.
TEST(LitmusRealThreads, TmCounterStress_real) {
  for (const std::string& algo_name : algorithm_names()) {
    auto algo = make_algorithm(algo_name);
    TVar<long> counter{0};
    sched::run_threads(4, [&](unsigned tid) {
      ThreadCtx ctx(algo->make_tx(), /*seed=*/1000 + tid);
      CtxBinder bind(ctx);
      for (int i = 0; i < 200; ++i) {
        atomically([&](Tx& tx) { counter.add(tx, 1); });
      }
    });
    EXPECT_EQ(counter.unsafe_get(), 4 * 200) << algo_name;
  }
}

}  // namespace
}  // namespace semstm
