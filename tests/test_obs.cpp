// Observability-layer tests (src/obs):
//
//  - TraceRing: SPSC semantics — FIFO order, wrap-around, overflow-drop
//    accounting, and a real-thread concurrent drain.
//  - LatencyHistogram: power-of-two bucket edges, percentile clamping and
//    single-writer-then-merge aggregation.
//  - Abort-cause attribution: every cause in the histogram is forced
//    deterministically, per algorithm, by driving Tx methods directly with
//    two descriptors on one thread (plus one real thread for the
//    serial-gate preemption case).
//  - TraceExporter: synthetic events render to parseable Chrome JSON and a
//    flame summary — exercised in every build; the end-to-end driver test
//    runs only under -DSEMSTM_TRACE=ON.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algos/norec.hpp"
#include "algos/snorec.hpp"
#include "algos/stl2.hpp"
#include "algos/tl2.hpp"
#include "obs/abort_cause.hpp"
#include "obs/latency_histogram.hpp"
#include "obs/trace_export.hpp"
#include "obs/trace_ring.hpp"
#include "semstm.hpp"
#include "workloads/driver.hpp"

namespace semstm {
namespace {

using obs::AbortCause;
using obs::EventKind;
using obs::LatencyHistogram;
using obs::TraceEvent;
using obs::TraceRing;

// ---------------------------------------------------------------------------
// TraceRing.
// ---------------------------------------------------------------------------

TEST(TraceRing, FifoOrderAndOverflowDrop) {
  TraceRing ring(2);  // capacity 4
  ASSERT_EQ(ring.capacity(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.push(TraceEvent{.ts = i}));
  }
  // Full: pushes drop (and are counted) instead of blocking or overwriting.
  EXPECT_FALSE(ring.push(TraceEvent{.ts = 99}));
  EXPECT_FALSE(ring.push(TraceEvent{.ts = 100}));
  EXPECT_EQ(ring.dropped(), 2u);
  EXPECT_EQ(ring.size(), 4u);

  TraceEvent e;
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.pop(e));
    EXPECT_EQ(e.ts, i) << "FIFO order violated";
  }
  EXPECT_FALSE(ring.pop(e)) << "ring should be empty";
}

TEST(TraceRing, WrapAroundPreservesOrder) {
  TraceRing ring(2);  // capacity 4: 100 events force many index wraps
  TraceEvent e;
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(ring.push(TraceEvent{.ts = i, .dur = i * 2}));
    ASSERT_TRUE(ring.pop(e));
    EXPECT_EQ(e.ts, i);
    EXPECT_EQ(e.dur, i * 2);
  }
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRing, ConcurrentProducerConsumerDrain) {
  TraceRing ring(8);  // capacity 256, small enough to see backpressure
  constexpr std::uint64_t kTotal = 200000;
  std::atomic<bool> done{false};

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kTotal; ++i) {
      ring.push(TraceEvent{.ts = i});  // may drop; never blocks
    }
    done.store(true, std::memory_order_release);
  });

  // Consumer: timestamps must arrive strictly increasing even though the
  // producer runs concurrently (drops only remove, never reorder).
  std::uint64_t received = 0;
  std::uint64_t last = 0;
  bool first = true;
  TraceEvent e;
  for (;;) {
    if (ring.pop(e)) {
      if (!first) EXPECT_GT(e.ts, last);
      last = e.ts;
      first = false;
      ++received;
    } else if (done.load(std::memory_order_acquire) && ring.empty()) {
      break;
    }
  }
  producer.join();
  EXPECT_EQ(received + ring.dropped(), kTotal);
  EXPECT_GT(received, 0u);
}

// ---------------------------------------------------------------------------
// LatencyHistogram.
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, BucketEdges) {
  // Bucket 0 holds exact zeros; bucket i >= 1 covers [2^(i-1), 2^i - 1].
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_of(7), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_of(8), 4u);
  EXPECT_EQ(LatencyHistogram::bucket_of(~std::uint64_t{0}), 64u);

  EXPECT_EQ(LatencyHistogram::bucket_upper(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_upper(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_upper(2), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_upper(3), 7u);
  EXPECT_EQ(LatencyHistogram::bucket_upper(64), ~std::uint64_t{0});

  LatencyHistogram h;
  for (std::uint64_t v : {0, 1, 2, 3, 4, 7, 8}) h.record(v);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[3], 2u);
  EXPECT_EQ(h.buckets[4], 1u);
  EXPECT_EQ(h.count, 7u);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 8u);
}

TEST(LatencyHistogram, PercentilesApproximateFromAbove) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile(50), 0u) << "empty histogram reports 0";
  for (std::uint64_t v : {1, 2, 3, 100}) h.record(v);
  EXPECT_EQ(h.percentile(0), 1u) << "p0 is the observed min";
  // p50 rank = 2nd sample (value 2, bucket [2,3]) -> bucket upper bound 3.
  EXPECT_EQ(h.percentile(50), 3u);
  // p100 lands in bucket [64,127] but clamps to the observed max.
  EXPECT_EQ(h.percentile(100), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 106.0 / 4.0);
}

TEST(LatencyHistogram, MergeMatchesSingleWriterAggregation) {
  LatencyHistogram a, b, merged;
  for (std::uint64_t v : {1, 5, 9}) { a.record(v); merged.record(v); }
  for (std::uint64_t v : {0, 70}) { b.record(v); merged.record(v); }
  a += b;
  EXPECT_EQ(a.count, merged.count);
  EXPECT_EQ(a.sum, merged.sum);
  EXPECT_EQ(a.min, merged.min);
  EXPECT_EQ(a.max, merged.max);
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    EXPECT_EQ(a.buckets[i], merged.buckets[i]) << "bucket " << i;
  }
  EXPECT_EQ(a.percentile(99), merged.percentile(99));
}

TEST(ScopedLatency, RecordsOnlyInTracedBuilds) {
  LatencyHistogram h;
  { obs::ScopedLatency lat(h); }
  EXPECT_EQ(h.count, obs::kTraceEnabled ? 1u : 0u);
}

// ---------------------------------------------------------------------------
// Abort-cause attribution, forced deterministically per algorithm. All
// conflicts are staged with two descriptors driven from one thread (the
// algorithms only block on *locked* state, never on mere version moves).
// ---------------------------------------------------------------------------

/// Run `f` expecting a TxAbort; returns the aborted descriptor's
/// attribution after rolling it back.
template <typename F>
obs::AbortInfo expect_abort(Tx& tx, F&& f) {
  [&] {  // EXPECT_THROW needs a void-returning callable
    EXPECT_THROW(f(), TxAbort);
  }();
  const obs::AbortInfo info = tx.last_abort();
  tx.rollback();
  return info;
}

TEST(AbortCause, NorecReadValidation) {
  NorecAlgorithm algo;
  auto tx1 = algo.make_tx();
  auto tx2 = algo.make_tx();
  TVar<long> x(1), y(2);

  tx1->begin();
  EXPECT_EQ(tx1->read(x.word()), 1u);  // value entry for x joins the read-set

  tx2->begin();
  tx2->write(x.word(), 42);
  tx2->commit();  // bumps the seqlock: tx1's next read must revalidate

  const obs::AbortInfo info =
      expect_abort(*tx1, [&] { tx1->read(y.word()); });
  EXPECT_EQ(info.cause, AbortCause::kReadValidation);
  EXPECT_EQ(info.addr, x.word()) << "conflicting address must be reported";
}

TEST(AbortCause, SnorecCmpRevalidation) {
  SnorecAlgorithm algo;
  auto tx1 = algo.make_tx();
  auto tx2 = algo.make_tx();
  TVar<long> x(10), y(0);

  tx1->begin();
  EXPECT_TRUE(tx1->cmp(x.word(), Rel::SGT, 5));  // semantic entry: x > 5

  tx2->begin();
  tx2->write(x.word(), 0);  // flips the recorded outcome
  tx2->commit();

  const obs::AbortInfo info =
      expect_abort(*tx1, [&] { tx1->read(y.word()); });
  EXPECT_EQ(info.cause, AbortCause::kCmpRevalidation)
      << "a flipped cmp outcome must not be misfiled as a value failure";
  EXPECT_EQ(info.addr, x.word());
}

TEST(AbortCause, SnorecSurvivingCmpIsNotAnAbort) {
  // Counter-case: a write that does NOT flip the outcome must not abort —
  // the attribution machinery must not turn semantic tolerance into
  // spurious kCmpRevalidation.
  SnorecAlgorithm algo;
  auto tx1 = algo.make_tx();
  auto tx2 = algo.make_tx();
  TVar<long> x(10), y(0);

  tx1->begin();
  EXPECT_TRUE(tx1->cmp(x.word(), Rel::SGT, 5));

  tx2->begin();
  tx2->write(x.word(), 7);  // still > 5
  tx2->commit();

  EXPECT_NO_THROW(tx1->read(y.word()));
  EXPECT_NO_THROW(tx1->commit());
}

TEST(AbortCause, NorecClockOverflow) {
  NorecAlgorithm algo;
  auto tx = algo.make_tx();
  TVar<long> x(0);
  // Park the seqlock at the last even timestamp: committing from this
  // snapshot would wrap through odd into 0.
  algo.lock().set_for_test(~std::uint64_t{0} - 1);

  tx->begin();
  tx->write(x.word(), 1);
  const obs::AbortInfo info = expect_abort(*tx, [&] { tx->commit(); });
  EXPECT_EQ(info.cause, AbortCause::kClockOverflow);
}

TEST(AbortCause, Tl2ReadValidation) {
  Tl2Algorithm algo;
  auto tx1 = algo.make_tx();
  auto tx2 = algo.make_tx();
  TVar<long> x(1);

  tx1->begin();  // start version 0

  tx2->begin();
  tx2->write(x.word(), 42);
  tx2->commit();  // x's orec version becomes 1 > tx1's snapshot

  const obs::AbortInfo info =
      expect_abort(*tx1, [&] { tx1->read(x.word()); });
  EXPECT_EQ(info.cause, AbortCause::kReadValidation);
  EXPECT_EQ(info.addr, x.word());
}

TEST(AbortCause, Tl2WriteLockConflict) {
  Tl2Algorithm algo;
  auto tx1 = algo.make_tx();
  auto tx2 = algo.make_tx();
  TVar<long> x(1);

  // Stage a concurrent committer mid-write-back: its lock on x's orec.
  Orec& o = algo.orecs().of(x.word());
  ASSERT_TRUE(o.try_lock(tx2.get()));

  tx1->begin();
  const obs::AbortInfo info =
      expect_abort(*tx1, [&] { tx1->read(x.word()); });
  EXPECT_EQ(info.cause, AbortCause::kWriteLockConflict);
  EXPECT_EQ(info.addr, x.word());
  o.unlock(tx2.get());
}

TEST(AbortCause, Tl2CommitValidationFailure) {
  Tl2Algorithm algo;
  auto tx1 = algo.make_tx();
  auto tx2 = algo.make_tx();
  TVar<long> x(1), y(2);

  tx1->begin();
  EXPECT_EQ(tx1->read(x.word()), 1u);
  tx1->write(y.word(), 9);

  tx2->begin();
  tx2->write(x.word(), 42);
  tx2->commit();

  const obs::AbortInfo info = expect_abort(*tx1, [&] { tx1->commit(); });
  EXPECT_EQ(info.cause, AbortCause::kReadValidation);
  EXPECT_NE(info.addr, nullptr) << "the stale orec must be reported";
  EXPECT_EQ(info.addr, &algo.orecs().of(x.word()));
}

TEST(AbortCause, Tl2ClockOverflow) {
  Tl2Algorithm algo;
  auto tx = algo.make_tx();
  TVar<long> x(0);
  algo.clock().set_for_test(~std::uint64_t{0});  // fetch_increment wraps to 0

  tx->begin();
  tx->write(x.word(), 1);
  const obs::AbortInfo info = expect_abort(*tx, [&] { tx->commit(); });
  EXPECT_EQ(info.cause, AbortCause::kClockOverflow);
}

TEST(AbortCause, Stl2CmpRevalidation) {
  Stl2Algorithm algo;
  auto tx1 = algo.make_tx();
  auto tx2 = algo.make_tx();
  TVar<long> x(10), w(0);

  tx1->begin();
  EXPECT_TRUE(tx1->cmp(x.word(), Rel::SGT, 5));  // compare-set entry
  tx1->write(w.word(), 1);                       // force commit validation

  tx2->begin();
  tx2->write(x.word(), 0);  // flips the outcome, advances the clock
  tx2->commit();

  const obs::AbortInfo info = expect_abort(*tx1, [&] { tx1->commit(); });
  EXPECT_EQ(info.cause, AbortCause::kCmpRevalidation);
  EXPECT_EQ(info.addr, x.word());
}

TEST(AbortCause, Stl2ClockOverflow) {
  Stl2Algorithm algo;
  auto tx = algo.make_tx();
  TVar<long> x(0);
  algo.clock().set_for_test(~std::uint64_t{0});

  tx->begin();
  tx->write(x.word(), 1);
  const obs::AbortInfo info = expect_abort(*tx, [&] { tx->commit(); });
  EXPECT_EQ(info.cause, AbortCause::kClockOverflow);
}

TEST(AbortCause, SerialGatePreemptReclassifiesConflicts) {
  // While another transaction holds (or is draining into) the serial
  // token, an ordinary conflict abort is attributed to the gate: the root
  // cause is the quiescing serial transaction, not the conflicting write.
  NorecAlgorithm algo;
  auto tx1 = algo.make_tx();
  TVar<long> x(1), y(2);
  int token_holder = 0;
  SerialGate* gate = tx1->serial_gate();
  ASSERT_NE(gate, nullptr);

  tx1->begin();
  EXPECT_EQ(tx1->read(x.word()), 1u);

  // The acquirer claims the token immediately, then spins until tx1 (the
  // only in-flight transaction) drains — which happens at rollback below.
  std::thread acquirer([&] {
    gate->acquire(&token_holder);
    gate->release();
  });
  while (!gate->held()) std::this_thread::yield();

  // Stage a conflicting commit directly on the seqlock (a Tx could not:
  // begin() would block on the held gate).
  ASSERT_TRUE(algo.lock().try_lock(0));
  x.unsafe_set(42);
  algo.lock().unlock(1);

  const obs::AbortInfo info =
      expect_abort(*tx1, [&] { tx1->read(y.word()); });
  EXPECT_EQ(info.cause, AbortCause::kSerialGatePreempt);
  acquirer.join();
  EXPECT_FALSE(gate->held());
}

TEST(AbortCause, UserAbortCountsAsAbortAndRetries) {
  for (const std::string& name : algorithm_names()) {
    SCOPED_TRACE(name);
    auto algo = make_algorithm(name);
    ThreadCtx ctx(algo->make_tx());
    CtxBinder bind(ctx);
    TVar<long> x(0);

    bool aborted_once = false;
    atomically([&](Tx& tx) {
      x.set(tx, 7);
      if (!aborted_once) {
        aborted_once = true;
        tx.user_abort();  // retried, not abandoned
      }
    });
    const TxStats& s = ctx.tx->stats;
    EXPECT_EQ(s.commits, 1u);
    EXPECT_EQ(s.aborts, 1u);
    EXPECT_EQ(s.abort_cause(AbortCause::kUserAbort), 1u);
    EXPECT_EQ(x.unsafe_get(), 7);
  }
}

// ---------------------------------------------------------------------------
// Accounting invariant under real contention: aborts == sum(abort_causes)
// and nothing lands in the kUnknown bucket (every abort path is tagged).
// ---------------------------------------------------------------------------

struct ContendedWorkload final : Workload {
  TVar<long> a{0}, b{0};
  void op(unsigned, Rng&) override {
    atomically([&](Tx& tx) {
      const long v = a.get(tx);
      b.set(tx, v + 1);
      a.set(tx, a.get(tx) + 1);
    });
  }
};

TEST(AbortAccounting, CauseHistogramSumsToAborts) {
  for (const char* name : {"norec", "snorec", "tl2", "stl2"}) {
    SCOPED_TRACE(name);
    ContendedWorkload w;
    RunConfig cfg;
    cfg.algo = name;
    cfg.threads = 8;
    cfg.ops_per_thread = 500;
    cfg.sim_quantum = 16;  // interleave mid-transaction to force conflicts
    const RunResult r = run_workload(cfg, w);

    EXPECT_GT(r.stats.aborts, 0u) << "rig failed to generate contention";
    std::uint64_t sum = 0;
    for (std::size_t c = 0; c < obs::kAbortCauseCount; ++c) {
      sum += r.stats.abort_causes[c];
    }
    EXPECT_EQ(r.stats.aborts, sum);
    EXPECT_EQ(r.stats.abort_cause(AbortCause::kUnknown), 0u)
        << "an abort path escaped attribution";
    EXPECT_EQ(r.stats.starts,
              r.stats.commits + r.stats.aborts + r.stats.exceptions);
  }
}

// ---------------------------------------------------------------------------
// TraceExporter: synthetic events (build-independent) and, in traced
// builds, the full driver -> collector -> Chrome JSON path.
// ---------------------------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(TraceExporter, SyntheticEventsRenderToChromeJson) {
  obs::TraceCollector col(4);
  col.prepare(2);
  col.ring(0).push(TraceEvent{.ts = 10, .kind = EventKind::kBegin});
  col.ring(0).push(TraceEvent{.ts = 30, .dur = 20, .kind = EventKind::kCommit});
  col.ring(1).push(TraceEvent{.ts = 12, .kind = EventKind::kBegin});
  col.ring(1).push(TraceEvent{.ts = 25,
                              .dur = 13,
                              .addr = &col,
                              .kind = EventKind::kAbort,
                              .cause = AbortCause::kReadValidation});

  obs::TraceExporter exporter;
  EXPECT_EQ(exporter.add_run("unit/2t", col), 4u);
  EXPECT_EQ(exporter.event_count(), 4u);
  EXPECT_TRUE(col.ring(0).empty()) << "add_run must drain the rings";

  const std::string path = testing::TempDir() + "semstm_obs_unit.json";
  ASSERT_TRUE(exporter.write_chrome(path));
  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("unit/2t"), std::string::npos);
  EXPECT_NE(json.find("read_validation"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos)
      << "commit/abort must render as complete events";

  const std::string flame = exporter.flame_summary();
  EXPECT_NE(flame.find("abort/read_validation"), std::string::npos);
  EXPECT_NE(flame.find("commit"), std::string::npos);
}

TEST(TraceEndToEnd, DriverPopulatesRingsWithAttributedEvents) {
  if (!obs::kTraceEnabled) {
    GTEST_SKIP() << "build with -DSEMSTM_TRACE=ON for end-to-end tracing";
  }
  ContendedWorkload w;
  obs::TraceCollector col;
  RunConfig cfg;
  cfg.algo = "norec";
  cfg.threads = 4;
  cfg.ops_per_thread = 200;
  cfg.sim_quantum = 16;
  cfg.trace = &col;
  const RunResult r = run_workload(cfg, w);

  ASSERT_EQ(col.threads(), 4u);
  std::uint64_t begins = 0, commits = 0;
  for (unsigned t = 0; t < col.threads(); ++t) {
    EXPECT_GT(col.ring(t).size(), 0u) << "thread " << t << " traced nothing";
    TraceEvent e;
    std::uint64_t last_ts = 0;
    while (col.ring(t).pop(e)) {
      EXPECT_GE(e.ts, last_ts) << "per-thread events must be time-ordered";
      last_ts = e.ts;
      if (e.kind == EventKind::kBegin) ++begins;
      if (e.kind == EventKind::kCommit) ++commits;
      if (e.kind == EventKind::kAbort) {
        EXPECT_NE(e.cause, AbortCause::kUnknown)
            << "every traced abort must carry its cause";
      }
    }
  }
  // The rings are bounded: counts are <= the stats, never more.
  EXPECT_GT(begins, 0u);
  EXPECT_LE(begins, r.stats.starts);
  EXPECT_LE(commits, r.stats.commits);
  // Traced builds populate the latency histograms through the same run.
  EXPECT_EQ(r.stats.lat_commit.count, r.stats.commits);
  EXPECT_GT(r.stats.lat_validate.count, 0u);
}

}  // namespace
}  // namespace semstm
