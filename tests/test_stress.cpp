// Concurrent stress tests: every algorithm must preserve workload
// invariants under genuine contention, both on the deterministic virtual
// scheduler and on real OS threads.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "semstm.hpp"
#include "workloads/driver.hpp"

namespace semstm {
namespace {

using Param = std::tuple<std::string, ExecMode>;

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  return std::get<0>(info.param) +
         (std::get<1>(info.param) == ExecMode::kSim ? "_sim" : "_real");
}

class Stress : public ::testing::TestWithParam<Param> {
 protected:
  RunConfig config(unsigned threads, std::uint64_t ops) const {
    RunConfig cfg;
    cfg.algo = std::get<0>(GetParam());
    cfg.mode = std::get<1>(GetParam());
    cfg.threads = threads;
    cfg.ops_per_thread = ops;
    cfg.seed = 0xDEADBEEF;
    return cfg;
  }
};

/// N threads increment one shared counter: the classic lost-update test.
class CounterWorkload final : public Workload {
 public:
  void op(unsigned, Rng&) override {
    atomically([&](Tx& tx) { counter.add(tx, 1); });
  }
  TVar<long> counter{0};
};

TEST_P(Stress, SharedCounterLosesNoUpdates) {
  CounterWorkload w;
  const auto cfg = config(4, 500);
  const RunResult r = run_workload(cfg, w);
  EXPECT_EQ(w.counter.unsafe_get(), 4 * 500);
  EXPECT_EQ(r.stats.commits, 4u * 500u);
}

/// Bank transfers with overdraft checks: total money is conserved and no
/// account may go negative (the overdraft check uses the semantic gte).
class BankWorkload final : public Workload {
 public:
  static constexpr int kAccounts = 32;
  static constexpr long kInitial = 1000;

  BankWorkload() {
    for (auto& a : accounts_) a = std::make_unique<TVar<long>>(kInitial);
  }

  void op(unsigned, Rng& rng) override {
    const auto src = static_cast<std::size_t>(rng.below(kAccounts));
    const auto dst = static_cast<std::size_t>(rng.below(kAccounts));
    if (src == dst) return;
    const long amount = rng.between(1, 100);
    atomically([&](Tx& tx) {
      if (accounts_[src]->gte(tx, amount)) {
        accounts_[src]->sub(tx, amount);
        accounts_[dst]->add(tx, amount);
      }
    });
  }

  void verify() override {
    long total = 0;
    for (const auto& a : accounts_) {
      const long balance = a->unsafe_get();
      EXPECT_GE(balance, 0) << "overdraft happened";
      total += balance;
    }
    EXPECT_EQ(total, kAccounts * kInitial) << "money not conserved";
  }

 private:
  std::unique_ptr<TVar<long>> accounts_[kAccounts];
};

TEST_P(Stress, BankConservesMoney) {
  BankWorkload w;
  run_workload(config(6, 400), w);
  w.verify();
}

/// Read-mostly snapshot consistency: writers keep x + y == 0; readers must
/// never observe a violated invariant inside a transaction.
class SnapshotWorkload final : public Workload {
 public:
  void op(unsigned tid, Rng& rng) override {
    if (tid == 0) {  // writer
      const long d = rng.between(1, 9);
      atomically([&](Tx& tx) {
        x.add(tx, d);
        y.sub(tx, d);
      });
    } else {  // readers
      const long sum = atomically(
          [&](Tx& tx) { return x.get(tx) + y.get(tx); });
      EXPECT_EQ(sum, 0) << "reader observed a torn snapshot";
    }
  }
  TVar<long> x{0}, y{0};
};

TEST_P(Stress, ReadersSeeConsistentSnapshots) {
  SnapshotWorkload w;
  run_workload(config(4, 600), w);
  EXPECT_EQ(w.x.unsafe_get() + w.y.unsafe_get(), 0);
}

/// Mixed semantic/non-semantic access to the same variables (§4.1's
/// interaction cases) under contention.
class MixedWorkload final : public Workload {
 public:
  void op(unsigned, Rng& rng) override {
    switch (rng.below(4)) {
      case 0:  // semantic conditional + inc
        atomically([&](Tx& tx) {
          if (v.gt(tx, 0)) v.sub(tx, 1);
        });
        break;
      case 1:  // plain read-modify-write
        atomically([&](Tx& tx) { v.set(tx, v.get(tx) + 2); });
        break;
      case 2:  // inc then read (forces promotion in semantic algorithms)
        atomically([&](Tx& tx) {
          v.add(tx, 1);
          (void)v.get(tx);
        });
        break;
      default:  // read-only
        (void)atomically([&](Tx& tx) { return v.get(tx); });
        break;
    }
  }
  TVar<long> v{100};
};

TEST_P(Stress, MixedSemanticAndPlainOpsStayAtomic) {
  MixedWorkload w;
  const RunResult r = run_workload(config(4, 500), w);
  // Every committed op moved v by a whole-op amount; the exact value is
  // schedule-dependent but v >= 0 must hold (decrements are guarded).
  EXPECT_GE(w.v.unsafe_get(), 0);
  EXPECT_EQ(r.stats.commits, 4u * 500u);
}

TEST_P(Stress, AbortAccountingPartitionsExactly) {
  // The core/stats.hpp contract must hold under genuine races too, not
  // just on the deterministic simulator: every abort is attributed to
  // exactly one cause, and attempts partition into commits/aborts/
  // exceptions — no event may be dropped or double-counted when the
  // counters race through real-thread commit paths.
  BankWorkload w;
  const RunResult r = run_workload(config(6, 400), w);
  std::uint64_t cause_sum = 0;
  for (std::size_t c = 0; c < obs::kAbortCauseCount; ++c) {
    cause_sum += r.stats.abort_causes[c];
  }
  EXPECT_EQ(r.stats.aborts, cause_sum);
  EXPECT_EQ(r.stats.starts,
            r.stats.commits + r.stats.aborts + r.stats.exceptions);
  w.verify();
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsByMode, Stress,
    ::testing::Combine(::testing::Values("cgl", "norec", "snorec", "tl2",
                                         "stl2"),
                       ::testing::Values(ExecMode::kSim, ExecMode::kReal)),
    param_name);

// ---------------------------------------------------------------------------
// Simulator-only determinism and contention sanity.
// ---------------------------------------------------------------------------

TEST(StressSim, OptimisticAlgorithmsAbortUnderContention) {
  // Sanity check that the simulator actually produces conflicts: a hot
  // counter via plain read+write must abort sometimes under NOrec.
  class HotCounter final : public Workload {
   public:
    void op(unsigned, Rng&) override {
      atomically([&](Tx& tx) { v.set(tx, v.get(tx) + 1); });
    }
    TVar<long> v{0};
  };
  HotCounter w;
  RunConfig cfg;
  cfg.algo = "norec";
  cfg.mode = ExecMode::kSim;
  cfg.threads = 8;
  cfg.ops_per_thread = 300;
  const RunResult r = run_workload(cfg, w);
  EXPECT_GT(r.stats.aborts, 0u) << "simulator produced no conflicts";
  EXPECT_EQ(w.v.unsafe_get(), 8 * 300);
}

TEST(StressSim, SemanticIncrementEliminatesCounterAborts) {
  // The headline mechanism: with TM_INC the hot counter has no read-set at
  // all, so S-NOrec commits every attempt first time.
  class IncCounter final : public Workload {
   public:
    void op(unsigned, Rng&) override {
      atomically([&](Tx& tx) { v.add(tx, 1); });
    }
    TVar<long> v{0};
  };
  IncCounter w;
  RunConfig cfg;
  cfg.algo = "snorec";
  cfg.mode = ExecMode::kSim;
  cfg.threads = 8;
  cfg.ops_per_thread = 300;
  const RunResult r = run_workload(cfg, w);
  EXPECT_EQ(r.stats.aborts, 0u);
  EXPECT_EQ(w.v.unsafe_get(), 8 * 300);
}

TEST(StressSim, RunsAreDeterministic) {
  auto once = [] {
    BankWorkload w;
    RunConfig cfg;
    cfg.algo = "stl2";
    cfg.mode = ExecMode::kSim;
    cfg.threads = 5;
    cfg.ops_per_thread = 200;
    cfg.seed = 77;
    const RunResult r = run_workload(cfg, w);
    return std::make_tuple(r.makespan, r.stats.commits, r.stats.aborts);
  };
  EXPECT_EQ(once(), once());
}

}  // namespace
}  // namespace semstm
