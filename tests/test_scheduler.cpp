// Tests for the fiber-based virtual scheduler (the N-core simulator).
#include <gtest/gtest.h>

#include <vector>

#include "sched/virtual_scheduler.hpp"
#include "sched/yieldpoint.hpp"

namespace semstm::sched {
namespace {

TEST(VirtualScheduler, RunsEveryFiberToCompletion) {
  VirtualScheduler sim;
  std::vector<int> done(8, 0);
  sim.run(8, [&](unsigned tid) { done[tid] = 1; });
  for (int d : done) EXPECT_EQ(d, 1);
}

TEST(VirtualScheduler, ClocksAccumulateTickCosts) {
  VirtualScheduler sim(SimOptions{.seed = 7, .jitter_pct = 0});
  auto r = sim.run(2, [&](unsigned) {
    for (int i = 0; i < 100; ++i) tick(3);
  });
  ASSERT_EQ(r.thread_clocks.size(), 2u);
  EXPECT_EQ(r.thread_clocks[0], 300u);
  EXPECT_EQ(r.thread_clocks[1], 300u);
  EXPECT_EQ(r.makespan, 300u);
}

TEST(VirtualScheduler, MakespanModelsParallelism) {
  // Two fibers doing the same work in "parallel" must have the makespan of
  // one, not the sum — that is what makes simulated throughput scale.
  VirtualScheduler sim(SimOptions{.seed = 1, .jitter_pct = 0});
  auto r1 = sim.run(1, [&](unsigned) {
    for (int i = 0; i < 1000; ++i) tick(1);
  });
  VirtualScheduler sim4(SimOptions{.seed = 1, .jitter_pct = 0});
  auto r4 = sim4.run(4, [&](unsigned) {
    for (int i = 0; i < 1000; ++i) tick(1);
  });
  EXPECT_EQ(r1.makespan, 1000u);
  EXPECT_EQ(r4.makespan, 1000u);
}

TEST(VirtualScheduler, InterleavesAtOperationGranularity) {
  // With min-clock scheduling and equal costs, two fibers must alternate —
  // neither may run to completion before the other starts.
  VirtualScheduler sim(SimOptions{.seed = 3, .jitter_pct = 0});
  std::vector<unsigned> trace;
  sim.run(2, [&](unsigned tid) {
    for (int i = 0; i < 50; ++i) {
      trace.push_back(tid);
      tick(1);
    }
  });
  ASSERT_EQ(trace.size(), 100u);
  // Find the first occurrence of each tid; both must appear in the first
  // handful of events.
  unsigned first1 = 0;
  while (first1 < trace.size() && trace[first1] != 1) ++first1;
  EXPECT_LT(first1, 5u);
}

TEST(VirtualScheduler, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    VirtualScheduler sim(SimOptions{.seed = seed});
    std::vector<unsigned> trace;
    auto r = sim.run(4, [&](unsigned tid) {
      for (int i = 0; i < 200; ++i) {
        trace.push_back(tid);
        tick(2);
      }
    });
    return std::make_pair(trace, r.makespan);
  };
  auto [t1, m1] = run_once(99);
  auto [t2, m2] = run_once(99);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(m1, m2);
  // Different seeds usually (not provably) differ; check over a few seeds.
  bool any_different = false;
  for (std::uint64_t s = 100; s < 105 && !any_different; ++s) {
    any_different = (run_once(s).first != t1);
  }
  EXPECT_TRUE(any_different);
}

TEST(VirtualScheduler, SpinPauseAdvancesVirtualTime) {
  // A fiber spin-waiting on a flag set by another fiber must not deadlock:
  // spin_pause() burns virtual time so the setter gets scheduled.
  VirtualScheduler sim(SimOptions{.seed = 5, .jitter_pct = 0});
  bool flag = false;  // single carrier thread: plain bool is fine
  sim.run(2, [&](unsigned tid) {
    if (tid == 0) {
      for (int i = 0; i < 100; ++i) tick(1);  // make the setter "slow"
      flag = true;
    } else {
      while (!flag) spin_pause();
    }
  });
  EXPECT_TRUE(flag);
}

TEST(VirtualScheduler, PropagatesFiberExceptions) {
  VirtualScheduler sim;
  struct Boom {};
  EXPECT_THROW(sim.run(3,
                       [&](unsigned tid) {
                         tick(1);
                         if (tid == 1) throw Boom{};
                       }),
               Boom);
}

TEST(VirtualScheduler, ReusableAcrossRuns) {
  VirtualScheduler sim;
  int total = 0;
  sim.run(2, [&](unsigned) { ++total; });
  sim.run(3, [&](unsigned) { ++total; });
  EXPECT_EQ(total, 5);
}

TEST(VirtualScheduler, HookClearedOutsideRun) {
  VirtualScheduler sim;
  sim.run(1, [&](unsigned) { tick(1); });
  EXPECT_EQ(hook(), nullptr);
  tick(5);  // must be a harmless no-op in real mode
}

}  // namespace
}  // namespace semstm::sched
