// Tests for the fiber-based virtual scheduler (the N-core simulator), the
// ScheduleController adversarial-scheduling hook, the litmus DFS explorer,
// and the real-thread runner.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sched/litmus.hpp"
#include "sched/schedule_controller.hpp"
#include "sched/thread_runner.hpp"
#include "sched/virtual_scheduler.hpp"
#include "sched/yieldpoint.hpp"

namespace semstm::sched {
namespace {

TEST(VirtualScheduler, RunsEveryFiberToCompletion) {
  VirtualScheduler sim;
  std::vector<int> done(8, 0);
  sim.run(8, [&](unsigned tid) { done[tid] = 1; });
  for (int d : done) EXPECT_EQ(d, 1);
}

TEST(VirtualScheduler, ClocksAccumulateTickCosts) {
  VirtualScheduler sim(SimOptions{.seed = 7, .jitter_pct = 0});
  auto r = sim.run(2, [&](unsigned) {
    for (int i = 0; i < 100; ++i) tick(3);
  });
  ASSERT_EQ(r.thread_clocks.size(), 2u);
  EXPECT_EQ(r.thread_clocks[0], 300u);
  EXPECT_EQ(r.thread_clocks[1], 300u);
  EXPECT_EQ(r.makespan, 300u);
}

TEST(VirtualScheduler, MakespanModelsParallelism) {
  // Two fibers doing the same work in "parallel" must have the makespan of
  // one, not the sum — that is what makes simulated throughput scale.
  VirtualScheduler sim(SimOptions{.seed = 1, .jitter_pct = 0});
  auto r1 = sim.run(1, [&](unsigned) {
    for (int i = 0; i < 1000; ++i) tick(1);
  });
  VirtualScheduler sim4(SimOptions{.seed = 1, .jitter_pct = 0});
  auto r4 = sim4.run(4, [&](unsigned) {
    for (int i = 0; i < 1000; ++i) tick(1);
  });
  EXPECT_EQ(r1.makespan, 1000u);
  EXPECT_EQ(r4.makespan, 1000u);
}

TEST(VirtualScheduler, InterleavesAtOperationGranularity) {
  // With min-clock scheduling and equal costs, two fibers must alternate —
  // neither may run to completion before the other starts.
  VirtualScheduler sim(SimOptions{.seed = 3, .jitter_pct = 0});
  std::vector<unsigned> trace;
  sim.run(2, [&](unsigned tid) {
    for (int i = 0; i < 50; ++i) {
      trace.push_back(tid);
      tick(1);
    }
  });
  ASSERT_EQ(trace.size(), 100u);
  // Find the first occurrence of each tid; both must appear in the first
  // handful of events.
  unsigned first1 = 0;
  while (first1 < trace.size() && trace[first1] != 1) ++first1;
  EXPECT_LT(first1, 5u);
}

TEST(VirtualScheduler, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    VirtualScheduler sim(SimOptions{.seed = seed});
    std::vector<unsigned> trace;
    auto r = sim.run(4, [&](unsigned tid) {
      for (int i = 0; i < 200; ++i) {
        trace.push_back(tid);
        tick(2);
      }
    });
    return std::make_pair(trace, r.makespan);
  };
  auto [t1, m1] = run_once(99);
  auto [t2, m2] = run_once(99);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(m1, m2);
  // Different seeds usually (not provably) differ; check over a few seeds.
  bool any_different = false;
  for (std::uint64_t s = 100; s < 105 && !any_different; ++s) {
    any_different = (run_once(s).first != t1);
  }
  EXPECT_TRUE(any_different);
}

TEST(VirtualScheduler, SpinPauseAdvancesVirtualTime) {
  // A fiber spin-waiting on a flag set by another fiber must not deadlock:
  // spin_pause() burns virtual time so the setter gets scheduled.
  VirtualScheduler sim(SimOptions{.seed = 5, .jitter_pct = 0});
  bool flag = false;  // single carrier thread: plain bool is fine
  sim.run(2, [&](unsigned tid) {
    if (tid == 0) {
      for (int i = 0; i < 100; ++i) tick(1);  // make the setter "slow"
      flag = true;
    } else {
      while (!flag) spin_pause();
    }
  });
  EXPECT_TRUE(flag);
}

TEST(VirtualScheduler, PropagatesFiberExceptions) {
  VirtualScheduler sim;
  struct Boom {};
  EXPECT_THROW(sim.run(3,
                       [&](unsigned tid) {
                         tick(1);
                         if (tid == 1) throw Boom{};
                       }),
               Boom);
}

TEST(VirtualScheduler, ReusableAcrossRuns) {
  VirtualScheduler sim;
  int total = 0;
  sim.run(2, [&](unsigned) { ++total; });
  sim.run(3, [&](unsigned) { ++total; });
  EXPECT_EQ(total, 5);
}

TEST(VirtualScheduler, HookClearedOutsideRun) {
  VirtualScheduler sim;
  sim.run(1, [&](unsigned) { tick(1); });
  EXPECT_EQ(hook(), nullptr);
  tick(5);  // must be a harmless no-op in real mode
}

// ---------------------------------------------------------------------------
// ScheduleController: adversarial/scripted scheduling.
// ---------------------------------------------------------------------------

/// Records every decision's choice set; picks the highest-tid fiber — the
/// opposite of the min-clock default, so controller control is observable.
class MaxTidController final : public ScheduleController {
 public:
  unsigned pick(const std::vector<RunnableFiber>& runnable) override {
    fanouts.push_back(static_cast<unsigned>(runnable.size()));
    return runnable.back().tid;
  }
  std::vector<unsigned> fanouts;
};

TEST(ScheduleController, DrivesEveryYieldPoint) {
  VirtualScheduler sim;
  MaxTidController ctl;
  std::vector<unsigned> trace;
  const SimResult r = sim.run(
      2,
      [&](unsigned tid) {
        for (int i = 0; i < 3; ++i) {
          trace.push_back(tid);
          tick(1);
        }
      },
      &ctl);
  EXPECT_FALSE(r.truncated);
  // Max-tid policy: fiber 1 runs all its steps before fiber 0 gets a turn.
  const std::vector<unsigned> expected{1, 1, 1, 0, 0, 0};
  EXPECT_EQ(trace, expected);
  // Every tick was a decision; decisions while both live offered 2 fibers.
  ASSERT_GE(ctl.fanouts.size(), 4u);
  EXPECT_EQ(ctl.fanouts.front(), 2u);
}

TEST(ScheduleController, ControllerModeDisablesJitterCosts) {
  // Costs must be exact (no jitter) so schedules replay bit-identically.
  VirtualScheduler sim(SimOptions{.seed = 9, .jitter_pct = 50});
  MaxTidController ctl;
  const SimResult r = sim.run(
      2, [&](unsigned) { for (int i = 0; i < 10; ++i) tick(3); }, &ctl);
  ASSERT_EQ(r.thread_clocks.size(), 2u);
  EXPECT_EQ(r.thread_clocks[0], 30u);
  EXPECT_EQ(r.thread_clocks[1], 30u);
}

TEST(ScheduleController, ScriptedReplayFollowsScript) {
  // Script: at the first two branching decisions run fiber 1, then fall
  // back to min-clock. Entries past the script or naming non-runnable
  // fibers must degrade, not fail.
  std::vector<unsigned> trace;
  auto body = [&](unsigned tid) {
    for (int i = 0; i < 2; ++i) {
      trace.push_back(tid);
      tick(1);
    }
  };
  VirtualScheduler sim;
  ScriptedController ctl({1, 1, 7, 0});  // 7 never exists: fallback
  sim.run(2, body, &ctl);
  ASSERT_GE(trace.size(), 3u);
  EXPECT_EQ(trace[0], 1u);
  EXPECT_EQ(trace[1], 1u);
  EXPECT_EQ(trace[2], 0u);  // fiber 1 done: forced + fallback decisions
}

TEST(ScheduleController, SpinParkingWithholdsSpinners) {
  // Fiber 0 spins on a flag fiber 1 sets. Under a first-choice (min-tid)
  // controller with parking, each spin of fiber 0 must hand control to
  // fiber 1 instead of re-offering the spinner — so the run terminates.
  class FirstChoice final : public ScheduleController {
   public:
    unsigned pick(const std::vector<RunnableFiber>& runnable) override {
      ++decisions;
      return runnable.front().tid;
    }
    std::uint64_t decisions = 0;
  };
  VirtualScheduler sim;
  FirstChoice ctl;
  bool flag = false;
  const SimResult r = sim.run(
      2,
      [&](unsigned tid) {
        if (tid == 0) {
          while (!flag) spin_pause();
        } else {
          for (int i = 0; i < 5; ++i) tick(1);
          flag = true;
        }
      },
      &ctl);
  EXPECT_FALSE(r.truncated);
  EXPECT_TRUE(flag);
  EXPECT_LT(ctl.decisions, 100u) << "spinner was re-offered unboundedly";
}

TEST(ScheduleController, StopAllTruncatesAndUnwindsCleanly) {
  class StopAfter final : public ScheduleController {
   public:
    explicit StopAfter(std::uint64_t n) : n_(n) {}
    unsigned pick(const std::vector<RunnableFiber>& runnable) override {
      if (++steps_ > n_) return kStopAll;
      return runnable.front().tid;
    }

   private:
    std::uint64_t n_;
    std::uint64_t steps_ = 0;
  };
  struct Guard {  // observes that truncation unwinds fiber stacks
    int& unwound;
    ~Guard() { ++unwound; }
  };
  VirtualScheduler sim;
  StopAfter ctl(3);
  int unwound = 0;
  int completed = 0;
  const SimResult r = sim.run(
      2,
      [&](unsigned) {
        Guard g{unwound};
        for (int i = 0; i < 100; ++i) tick(1);
        ++completed;
      },
      &ctl);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(unwound, 2) << "a truncated fiber did not unwind its stack";
  EXPECT_EQ(completed, 0);
}

TEST(ScheduleController, BogusPickIsALogicError) {
  class Bogus final : public ScheduleController {
   public:
    unsigned pick(const std::vector<RunnableFiber>&) override { return 42; }
  };
  VirtualScheduler sim;
  Bogus ctl;
  EXPECT_THROW(sim.run(2, [&](unsigned) { tick(1); }, &ctl), std::logic_error);
}

// ---------------------------------------------------------------------------
// Litmus DFS explorer, on plain (non-TM) fiber programs.
// ---------------------------------------------------------------------------

/// Non-transactional store buffering: x = 1; r0 = y || y = 1; r1 = x.
/// On the sequentially-consistent fiber simulator (0,0) is unreachable,
/// and the other three outcomes must all be enumerated.
class PlainSb final : public LitmusTest {
 public:
  unsigned threads() const override { return 2; }
  void reset() override { x_ = y_ = 0, r0_ = r1_ = -1; }
  void thread(unsigned tid) override {
    if (tid == 0) {
      x_ = 1;
      sched::sched_point();
      r0_ = y_;
    } else {
      y_ = 1;
      sched::sched_point();
      r1_ = x_;
    }
    tick(1);
  }
  std::string outcome() override {
    return std::to_string(r0_) + std::to_string(r1_);
  }

 private:
  int x_ = 0, y_ = 0, r0_ = -1, r1_ = -1;
};

TEST(LitmusExplore, EnumeratesAllInterleavings) {
  PlainSb test;
  const ExploreResult r = explore(test);
  EXPECT_TRUE(r.exhaustive);
  EXPECT_EQ(r.truncated, 0u);
  EXPECT_GT(r.schedules, 1u);
  EXPECT_EQ(r.outcome_set(), (std::vector<std::string>{"01", "10", "11"}))
      << "either an interleaving was missed or SC was violated";
}

TEST(LitmusExplore, WitnessSchedulesReplayTheirOutcome) {
  PlainSb test;
  const ExploreResult r = explore(test);
  for (const auto& [outcome, witness] : r.outcomes) {
    EXPECT_EQ(replay(test, witness.schedule), outcome);
  }
}

TEST(LitmusExplore, StepBudgetTruncatesInsteadOfHanging) {
  // An unbounded test (a fiber that never finishes) must come back as
  // truncated schedules, not an infinite loop.
  class Endless final : public LitmusTest {
   public:
    unsigned threads() const override { return 2; }
    void reset() override {}
    void thread(unsigned tid) override {
      if (tid == 0) {
        for (;;) tick(1);  // never terminates
      }
      tick(1);
    }
    std::string outcome() override { return "unreachable"; }
  };
  Endless test;
  ExploreOptions opts;
  opts.max_steps = 50;
  opts.max_schedules = 20;
  const ExploreResult bounded = explore(test, opts);
  EXPECT_FALSE(bounded.exhaustive);
  EXPECT_GT(bounded.truncated, 0u);
  EXPECT_LE(bounded.schedules + bounded.truncated, 20u);
}

// ---------------------------------------------------------------------------
// run_threads: real-OS-thread execution.
// ---------------------------------------------------------------------------

TEST(RunThreads, PropagatesBodyExceptionAfterJoiningAll_real) {
  // A throwing body used to std::terminate the whole process (exception
  // escaping a std::thread). Now: every thread joins, then the first
  // error (in tid order) is rethrown.
  std::atomic<unsigned> finished{0};
  struct Boom {
    unsigned tid;
  };
  try {
    run_threads(4, [&](unsigned tid) {
      if (tid == 1 || tid == 3) throw Boom{tid};
      finished.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected Boom";
  } catch (const Boom& b) {
    EXPECT_EQ(b.tid, 1u) << "first error in tid order must win";
  }
  EXPECT_EQ(finished.load(), 2u) << "non-throwing threads must still run";
}

TEST(RunThreads, ReturnsNormallyWhenNoBodyThrows_real) {
  std::atomic<unsigned> ran{0};
  const RealResult r = run_threads(
      3, [&](unsigned) { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(ran.load(), 3u);
  EXPECT_GE(r.seconds, 0.0);
}

TEST(RunThreads, ZeroThreadsIsANoOp_real) {
  // n == 0: nothing to spawn, the barrier trivially releases, the body is
  // never invoked and the call must not hang on the ready count.
  bool ran = false;
  const RealResult r = run_threads(0, [&](unsigned) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_GE(r.seconds, 0.0);
}

TEST(RunThreads, SingleThreadRunsBodyOnceWithTidZero_real) {
  std::atomic<unsigned> calls{0};
  std::atomic<unsigned> seen_tid{1234};
  run_threads(1, [&](unsigned tid) {
    calls.fetch_add(1, std::memory_order_relaxed);
    seen_tid.store(tid, std::memory_order_relaxed);
  });
  EXPECT_EQ(calls.load(), 1u);
  EXPECT_EQ(seen_tid.load(), 0u);
}

TEST(RunThreads, BarrierReleasesAllBodiesConcurrently_real) {
  // The start barrier admits no body until every thread is spawned and
  // ready, then releases them together: each body can therefore wait to
  // observe all n bodies entered. If bodies ran sequentially (no barrier),
  // the first one would sit at the rendezvous until the deadline.
  constexpr unsigned kN = 4;
  std::atomic<unsigned> entered{0};
  std::atomic<bool> timed_out{false};
  run_threads(kN, [&](unsigned) {
    entered.fetch_add(1, std::memory_order_acq_rel);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (entered.load(std::memory_order_acquire) != kN) {
      if (std::chrono::steady_clock::now() > deadline) {
        timed_out.store(true, std::memory_order_relaxed);
        return;
      }
      std::this_thread::yield();
    }
  });
  EXPECT_FALSE(timed_out.load()) << "bodies did not overlap: barrier broken";
  EXPECT_EQ(entered.load(), kN);
}

}  // namespace
}  // namespace semstm::sched
