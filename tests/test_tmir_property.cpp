// Property tests for the tmir analysis pipeline.
//
// 1. Random-IR generation: a seeded generator produces straight-line and
//    diamond CFGs over TM loads/stores, locals and arithmetic. For every
//    seed, pass_verify must accept what the Builder produced, the full
//    mark -> lint -> optimize pipeline must stay diagnostic-free, the
//    liveness-based optimizer must remove at least as many dead TM loads
//    as the zero-uses heuristic, and — the soundness property — the
//    optimized function must compute the same result and leave the same
//    memory as the original on the same inputs.
//
// 2. Deterministic-scheduler oracle: every built-in kernel, pre- vs
//    post-pass, run under the virtual scheduler across all five
//    algorithms, must produce bit-identical per-op results, final memory
//    and per-fiber commit counts (each fiber owns disjoint tables, so the
//    two pipelines face identical conflict structure: none).
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "containers/tarray.hpp"
#include "sched/virtual_scheduler.hpp"
#include "semstm.hpp"
#include "tmir/analysis/lint.hpp"
#include "tmir/analysis/verify.hpp"
#include "tmir/builder.hpp"
#include "tmir/interp.hpp"
#include "tmir/kernels.hpp"
#include "tmir/passes.hpp"
#include "util/rng.hpp"

namespace semstm::tmir {
namespace {

// ---------------------------------------------------------------------------
// Random-IR generator
// ---------------------------------------------------------------------------

constexpr std::size_t kCells = 16;

/// Temps a block may legally use: `pool` holds value temps defined in a
/// dominating position, `addrs` the subset known to be TM cell addresses —
/// reusing one re-creates the same-base access patterns (reloads, repeated
/// stores, read-modify-write chains) that alias analysis and the
/// redundant-barrier eliminator feed on.
struct Scope {
  std::vector<std::int32_t> pool;
  std::vector<std::int32_t> addrs;
};

/// Emits random code into the current block.
class RandomCode {
 public:
  RandomCode(Builder& b, Rng& rng, std::int32_t base)
      : b_(b), rng_(rng), base_(base) {}

  std::int32_t pick(const std::vector<std::int32_t>& pool) {
    return pool[static_cast<std::size_t>(rng_.below(pool.size()))];
  }

  std::int32_t addr_of_random_cell() {
    const word_t cell = rng_.below(kCells);
    return b_.add(base_, b_.konst(cell * 8));
  }

  /// A fresh or remembered cell address; remembered ones create the
  /// same-temp / must-alias pairs the eliminations need.
  std::int32_t some_addr(Scope& s) {
    if (!s.addrs.empty() && rng_.below(2) == 0) return pick(s.addrs);
    const std::int32_t a = addr_of_random_cell();
    s.addrs.push_back(a);
    return a;
  }

  /// Mostly-pure operand: what tm_mark accepts as a compare value or an
  /// increment delta. Falls back to an arbitrary pool temp sometimes so
  /// the not-markable path is exercised too.
  std::int32_t pure_or_any(const std::vector<std::int32_t>& pool) {
    return rng_.below(2) == 0 ? b_.konst(rng_.below(64)) : pick(pool);
  }

  void emit_op(Scope& s) {
    switch (rng_.below(12)) {
      case 0:
        s.pool.push_back(b_.konst(rng_.below(1000)));
        break;
      case 1:
        s.pool.push_back(b_.add(pick(s.pool), pick(s.pool)));
        break;
      case 2:
        s.pool.push_back(b_.sub(pick(s.pool), pick(s.pool)));
        break;
      case 3:
        s.pool.push_back(b_.band(pick(s.pool), pick(s.pool)));
        break;
      case 4:
        s.pool.push_back(b_.tm_load(some_addr(s)));
        break;
      case 5:
        b_.tm_store(some_addr(s), pick(s.pool));
        break;
      case 6:
        b_.store_local(static_cast<std::uint32_t>(rng_.below(2)),
                       pick(s.pool));
        break;
      case 7:
        s.pool.push_back(
            b_.load_local(static_cast<std::uint32_t>(rng_.below(2))));
        break;
      case 8: {
        // The paper's increment shape — sometimes left markable, sometimes
        // clobbered or impure so tm_mark's refusal paths run too.
        const std::int32_t addr = some_addr(s);
        const std::int32_t v = b_.tm_load(addr);
        const std::int32_t delta = pure_or_any(s.pool);
        const std::int32_t x =
            rng_.below(2) == 0 ? b_.add(v, delta) : b_.sub(v, delta);
        b_.tm_store(addr, x);
        if (rng_.below(4) == 0) s.pool.push_back(v);  // keep the read live
        break;
      }
      case 9:
        // Deliberate same-base reload: a load through an address temp
        // that earlier code already dereferenced — load-load and
        // store-to-load forwarding fodder.
        s.pool.push_back(b_.tm_load(
            s.addrs.empty() ? addr_of_random_cell() : pick(s.addrs)));
        break;
      case 10: {
        // Offset-disjoint store pair: two cells at distinct constant
        // offsets from the same base. Proven no-alias when the offsets
        // differ; an honest clobber when the generator rolls them equal.
        b_.tm_store(addr_of_random_cell(), pure_or_any(s.pool));
        b_.tm_store(addr_of_random_cell(), pure_or_any(s.pool));
        break;
      }
      case 11: {
        // Unknown-base access: the offset is a masked arbitrary temp, so
        // the address derivation is opaque to the analysis and must
        // clobber everything (while staying inside the table: `band 120`
        // keeps the offset an 8-aligned value below kCells * 8).
        const std::int32_t addr =
            b_.add(base_, b_.band(pick(s.pool), b_.konst(120)));
        s.addrs.push_back(addr);
        if (rng_.below(2) == 0) {
          s.pool.push_back(b_.tm_load(addr));
        } else {
          b_.tm_store(addr, pure_or_any(s.pool));
        }
        break;
      }
    }
  }

  void emit_block(Scope& s, unsigned len) {
    for (unsigned i = 0; i < len; ++i) emit_op(s);
  }

  /// A branch condition in the S1R family (sometimes markable).
  std::int32_t condition(Scope& s) {
    static constexpr Rel kRels[] = {Rel::EQ,  Rel::NEQ, Rel::SLT,
                                    Rel::SGT, Rel::ULT, Rel::UGE};
    const Rel rel = kRels[rng_.below(6)];
    if (rng_.below(2) == 0) {
      return b_.cmp(rel, b_.tm_load(some_addr(s)), pure_or_any(s.pool));
    }
    return b_.cmp(rel, pick(s.pool), pick(s.pool));
  }

 private:
  Builder& b_;
  Rng& rng_;
  std::int32_t base_;
};

Function generate(std::uint64_t seed) {
  Rng rng(seed);
  // args: [0] = cell base address, [1..3] = opaque input values.
  Builder b("rand" + std::to_string(seed), 4, 2);
  const std::int32_t base = b.arg(0);
  RandomCode gen(b, rng, base);

  Scope scope;
  scope.pool = {b.arg(1), b.arg(2), b.arg(3), b.konst(rng.below(100))};
  gen.emit_block(scope, 3 + static_cast<unsigned>(rng.below(8)));

  if (rng.below(2) == 0) {
    // Straight line.
    b.ret(gen.pick(scope.pool));
    return b.take();
  }

  // Diamond: entry -> {then, else} -> join. Branch blocks may only use
  // entry-defined temps; their own temps must not leak to the join.
  const std::int32_t cond = gen.condition(scope);
  const std::uint32_t then_b = b.new_block();
  const std::uint32_t else_b = b.new_block();
  const std::uint32_t join = b.new_block();
  b.cbr(cond, then_b, else_b);
  for (const std::uint32_t blk : {then_b, else_b}) {
    b.set_block(blk);
    Scope local = scope;
    gen.emit_block(local, 1 + static_cast<unsigned>(rng.below(5)));
    b.br(join);
  }
  b.set_block(join);
  gen.emit_block(scope, static_cast<unsigned>(rng.below(3)));
  b.ret(gen.pick(scope.pool));
  return b.take();
}

// ---------------------------------------------------------------------------
// Property: verify accepts, pipeline stays clean, optimize is sound
// ---------------------------------------------------------------------------

class RandomIr : public ::testing::Test {
 protected:
  void SetUp() override {
    algo_ = make_algorithm("snorec");
    ctx_ = std::make_unique<ThreadCtx>(algo_->make_tx());
    binder_ = std::make_unique<CtxBinder>(*ctx_);
  }
  word_t run(const Function& f, const std::array<word_t, 4>& args) {
    return atomically(
        [&](Tx& tx) { return execute(tx, f, args.data(), args.size()); });
  }
  std::unique_ptr<Algorithm> algo_;
  std::unique_ptr<ThreadCtx> ctx_;
  std::unique_ptr<CtxBinder> binder_;
};

TEST_F(RandomIr, FiveHundredSeedsVerifyLintAndStayEquivalent) {
  std::size_t marked_something = 0;
  std::size_t beat_the_heuristic = 0;
  std::size_t rbe_total = 0;
  std::size_t recovered_total = 0;
  std::size_t skipped_baseline = 0;
  std::size_t skipped_alias = 0;
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    const Function raw = generate(seed);
    ASSERT_TRUE(pass_verify(raw).empty())
        << format_diagnostic(raw, pass_verify(raw)[0]);

    // PR 5 baseline pipeline: alias-free mark, liveness optimize.
    Function base = raw;
    const MarkStats ms_base = pass_tm_mark(base, {.use_alias = false});
    skipped_baseline += ms_base.skipped_clobbered;
    ASSERT_TRUE(pass_verify(base).empty()) << "seed " << seed << " base mark";
    ASSERT_TRUE(pass_tm_lint(base).empty()) << "seed " << seed << " base mark";

    Function legacy = base;  // marked copy for the zero-uses optimizer
    const OptimizeStats os_base = pass_tm_optimize(base);
    const OptimizeStats oz = pass_tm_optimize_zero_uses(legacy);
    ASSERT_TRUE(pass_verify(base).empty()) << "seed " << seed << " base opt";
    ASSERT_TRUE(pass_tm_lint(base).empty()) << "seed " << seed << " base opt";
    ASSERT_GE(os_base.removed_tm_loads, oz.removed_tm_loads) << "seed " << seed;
    beat_the_heuristic +=
        os_base.removed_tm_loads > oz.removed_tm_loads ? 1 : 0;

    // Alias pipeline: barrier elimination first, then alias-aware mark.
    // Every stage must stay verifier- and lint-clean.
    Function opt = raw;
    const RbeStats rbe = pass_tm_rbe(opt);
    rbe_total += rbe.total();
    ASSERT_TRUE(pass_verify(opt).empty()) << "seed " << seed << " post-rbe";
    ASSERT_TRUE(pass_tm_lint(opt).empty()) << "seed " << seed << " post-rbe";
    const MarkStats ms = pass_tm_mark(opt);
    marked_something += (ms.s1r + ms.s2r + ms.sw) != 0 ? 1 : 0;
    recovered_total += ms.recovered_noalias;
    skipped_alias += ms.skipped_clobbered;
    ASSERT_TRUE(pass_verify(opt).empty()) << "seed " << seed << " post-mark";
    ASSERT_TRUE(pass_tm_lint(opt).empty()) << "seed " << seed << " post-mark";
    const OptimizeStats os = pass_tm_optimize(opt);
    ASSERT_TRUE(pass_verify(opt).empty()) << "seed " << seed << " post-opt";
    ASSERT_TRUE(pass_tm_lint(opt).empty()) << "seed " << seed << " post-opt";
    // Every dead TM load is accounted for by exactly one killer: a
    // forwarding (RBE) or the liveness sweep.
    ASSERT_EQ(os.removed_tm_loads + rbe.load_load_forwarded +
                  rbe.store_load_forwarded,
              opt.count(Op::kTmLoad).dead)
        << "seed " << seed;

    // Soundness: same inputs, same initial memory -> same result, same
    // final memory, for both pipelines against the raw function. This is
    // what "never removes a read whose result is read" and "never drops a
    // store whose value is observed" mean observably.
    Rng init(seed ^ 0x9E3779B97F4A7C15ULL);
    TArray<std::int64_t> mem_a(kCells, 0), mem_b(kCells, 0), mem_c(kCells, 0);
    for (std::size_t c = 0; c < kCells; ++c) {
      const auto v = static_cast<std::int64_t>(init.below(1 << 20));
      mem_a[c].unsafe_set(v);
      mem_b[c].unsafe_set(v);
      mem_c[c].unsafe_set(v);
    }
    const std::array<word_t, 4> args_a{to_word(mem_a[0].word()), init.below(50),
                                       init.below(50), init.below(50)};
    std::array<word_t, 4> args_b = args_a;
    std::array<word_t, 4> args_c = args_a;
    args_b[0] = to_word(mem_b[0].word());
    args_c[0] = to_word(mem_c[0].word());
    const word_t want = run(raw, args_a);
    ASSERT_EQ(want, run(base, args_b)) << "seed " << seed;
    ASSERT_EQ(want, run(opt, args_c)) << "seed " << seed;
    for (std::size_t c = 0; c < kCells; ++c) {
      ASSERT_EQ(mem_a[c].unsafe_get(), mem_b[c].unsafe_get())
          << "seed " << seed << " cell " << c << " (baseline)";
      ASSERT_EQ(mem_a[c].unsafe_get(), mem_c[c].unsafe_get())
          << "seed " << seed << " cell " << c << " (alias)";
    }
  }
  // The generator must actually exercise the rewrites, not just survive:
  // rewrites fire, eliminations fire, the alias oracle recovers rewrites
  // the baseline refused, and across the corpus the alias pipeline skips
  // strictly fewer clobbered candidates than the alias-free one.
  EXPECT_GT(marked_something, 50u);
  EXPECT_GT(beat_the_heuristic, 0u);
  EXPECT_GT(rbe_total, 0u);
  EXPECT_GT(recovered_total, 0u);
  EXPECT_LT(skipped_alias, skipped_baseline);
}

// ---------------------------------------------------------------------------
// Deterministic-scheduler differential oracle
// ---------------------------------------------------------------------------

struct PipelineRun {
  std::vector<std::vector<word_t>> results;   // per fiber, per op
  std::vector<std::int64_t> memory;           // all tables, flattened
  std::vector<std::uint64_t> commits;         // per fiber
  std::vector<std::uint64_t> aborts;          // per fiber
};

/// Run a scripted kernel workload on the virtual scheduler. Each fiber
/// owns disjoint tables, so raw and optimized pipelines see the same
/// (absent) conflict structure even though the optimized one issues fewer
/// barriers and therefore interleaves differently.
PipelineRun run_kernels(const std::string& algo_name, bool optimized) {
  constexpr unsigned kFibers = 2;
  constexpr std::size_t kCap = 32;       // hash-table capacity (power of 2)
  constexpr std::size_t kRecords = 8;    // reserve() tables
  constexpr unsigned kFeatures = 8;

  Function probe = build_probe_kernel();
  Function insert = build_insert_kernel();
  Function remove = build_remove_kernel();
  Function reserve = build_reserve_kernel(4);
  Function center = build_center_update_kernel(kFeatures);
  if (optimized) {
    for (Function* f : {&probe, &insert, &remove, &reserve, &center}) {
      pass_tm_rbe(*f);
      pass_tm_mark(*f);
      pass_tm_optimize(*f);
    }
  }

  auto algo = make_algorithm(algo_name);
  struct FiberTables {
    // `record` is the center-update record: [len, center[0..kFeatures)].
    TArray<std::int64_t> states, keys, numfree, price, record;
    FiberTables()
        : states(kCap, 0), keys(kCap, 0), numfree(kRecords, 3),
          price(kRecords, 0), record(kFeatures + 1, 0) {}
  };
  std::vector<std::unique_ptr<FiberTables>> tables;
  std::vector<std::unique_ptr<ThreadCtx>> ctxs;
  for (unsigned t = 0; t < kFibers; ++t) {
    tables.push_back(std::make_unique<FiberTables>());
    Rng setup(900 + t);
    for (std::size_t i = 0; i < kRecords; ++i) {
      tables.back()->price[i].unsafe_set(
          static_cast<std::int64_t>(setup.between(10, 500)));
    }
    ctxs.push_back(std::make_unique<ThreadCtx>(algo->make_tx()));
  }

  PipelineRun out;
  out.results.resize(kFibers);

  sched::VirtualScheduler sim(sched::SimOptions{.seed = 42});
  sim.run(kFibers, [&](unsigned tid) {
    CtxBinder bind(*ctxs[tid]);
    FiberTables& tb = *tables[tid];
    Rng rng(1000 + tid);
    for (int step = 0; step < 80; ++step) {
      const Function* f = nullptr;
      std::array<word_t, 10> args{};
      std::size_t nargs = 0;
      switch (rng.below(5)) {
        case 0:
        case 1:
        case 2: {
          f = rng.below(3) == 0   ? &probe
              : rng.below(2) == 0 ? &insert
                                  : &remove;
          const word_t key = 1 + rng.below(24);
          args = {to_word(tb.states[0].word()), to_word(tb.keys[0].word()),
                  kCap - 1, key % kCap, key, kCap};
          nargs = 6;
          break;
        }
        case 3: {
          f = &reserve;
          args[0] = to_word(tb.numfree[0].word());
          args[1] = to_word(tb.price[0].word());
          for (int q = 0; q < 4; ++q) args[2 + q] = rng.below(kRecords);
          nargs = 6;
          break;
        }
        case 4: {
          f = &center;
          args[0] = to_word(tb.record[0].word());
          for (unsigned j = 0; j < kFeatures; ++j) {
            args[1 + j] = rng.below(100);
          }
          nargs = 1 + kFeatures;
          break;
        }
      }
      out.results[tid].push_back(atomically(
          [&](Tx& tx) { return execute(tx, *f, args.data(), nargs); }));
    }
  });

  for (unsigned t = 0; t < kFibers; ++t) {
    const FiberTables& tb = *tables[t];
    for (std::size_t i = 0; i < kCap; ++i) {
      out.memory.push_back(tb.states[i].unsafe_get());
      out.memory.push_back(tb.keys[i].unsafe_get());
    }
    for (std::size_t i = 0; i < kRecords; ++i) {
      out.memory.push_back(tb.numfree[i].unsafe_get());
      out.memory.push_back(tb.price[i].unsafe_get());
    }
    for (unsigned j = 0; j <= kFeatures; ++j) {
      out.memory.push_back(tb.record[j].unsafe_get());
    }
    out.commits.push_back(ctxs[t]->tx->stats.commits);
    out.aborts.push_back(ctxs[t]->tx->stats.aborts);
  }
  return out;
}

class SchedulerOracle : public ::testing::TestWithParam<std::string> {};

TEST_P(SchedulerOracle, OptimizedKernelsAreBitIdenticalUnderTheScheduler) {
  const PipelineRun raw = run_kernels(GetParam(), /*optimized=*/false);
  const PipelineRun opt = run_kernels(GetParam(), /*optimized=*/true);
  ASSERT_EQ(raw.results.size(), opt.results.size());
  for (std::size_t t = 0; t < raw.results.size(); ++t) {
    ASSERT_EQ(raw.results[t], opt.results[t]) << "fiber " << t;
  }
  EXPECT_EQ(raw.memory, opt.memory);
  EXPECT_EQ(raw.commits, opt.commits);
  EXPECT_EQ(raw.aborts, opt.aborts);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SchedulerOracle,
                         ::testing::Values("cgl", "norec", "snorec", "tl2",
                                           "stl2"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace semstm::tmir
