// Scripted histories targeting the sharpest algorithm-specific behaviour:
// S-TL2's three-phase execution (§4.2) and both S-algorithms' increment
// promotion under concurrency. Driven manually through the Tx API so each
// interleaving is exact.
#include <gtest/gtest.h>

#include <memory>

#include "semstm.hpp"

namespace semstm {
namespace {

class Stl2Phases : public ::testing::Test {
 protected:
  void SetUp() override {
    algo = make_algorithm("stl2");
    t1 = algo->make_tx();
    t2 = algo->make_tx();
  }
  std::unique_ptr<Algorithm> algo;
  std::unique_ptr<Tx> t1, t2;
};

// Phase 1: while a transaction has performed only cmps, a concurrent
// commit does not kill it — the start version is *extended* after
// compare-set validation (Alg. 7 lines 19-25).
TEST_F(Stl2Phases, Phase1ExtendsAcrossConcurrentCommit) {
  TVar<long> x(5), y(5), z(0), out(0);

  t1->begin();
  EXPECT_TRUE(t1->cmp(x.word(), Rel::SGT, 0));

  t2->begin();
  t2->write(z.word(), 1);  // unrelated commit bumps the global clock
  t2->commit();

  // y's orec carries version 0 <= old start, but the extension machinery
  // must also accept a cmp on the *freshly written* z.
  EXPECT_TRUE(t1->cmp(y.word(), Rel::SGT, 0));
  EXPECT_TRUE(t1->cmp(z.word(), Rel::SGE, 0));  // orec version > start: extend
  t1->write(out.word(), 1);
  t1->commit();
  EXPECT_EQ(out.unsafe_get(), 1);
}

// Phase 1 extension must abort when the concurrent commit flipped an
// earlier compare's outcome — extension is validation, not amnesty.
TEST_F(Stl2Phases, ExtensionAbortsOnFlippedOutcome) {
  TVar<long> x(5), z(0);

  t1->begin();
  EXPECT_TRUE(t1->cmp(x.word(), Rel::SGT, 0));

  t2->begin();
  t2->write(x.word(), to_word<long>(-1));  // flips x > 0
  t2->write(z.word(), 7);
  t2->commit();

  // The next cmp touches z (orec version > start) and triggers the
  // extension, whose compare-set validation must fail on x.
  EXPECT_THROW((void)t1->cmp(z.word(), Rel::SGE, 0), TxAbort);
  t1->rollback();
}

// Phase 2: after the first plain read the snapshot freezes; a cmp on a
// freshly committed address must abort (Alg. 7 lines 26-34), even though
// the same cmp would have extended in phase 1.
TEST_F(Stl2Phases, Phase2FreezesSnapshot) {
  TVar<long> x(5), z(0);

  t1->begin();
  (void)t1->read(z.word());  // enters phase 2

  t2->begin();
  t2->write(x.word(), 6);
  t2->commit();

  EXPECT_THROW((void)t1->cmp(x.word(), Rel::SGT, 0), TxAbort);
  t1->rollback();
}

// The same interleaving with the cmp *before* the read commits fine:
// phase order matters exactly as §4.2 describes.
TEST_F(Stl2Phases, CmpBeforeReadSurvivesWhatCmpAfterReadCannot) {
  TVar<long> x(5), z(0), out(0);

  t1->begin();
  EXPECT_TRUE(t1->cmp(x.word(), Rel::SGT, 0));

  t2->begin();
  t2->write(x.word(), 6);  // x > 0 still true
  t2->commit();

  (void)t1->read(z.word());  // first plain read: z's orec is old — fine
  t1->write(out.word(), 1);
  t1->commit();
  EXPECT_EQ(out.unsafe_get(), 1);
}

// Read-only transactions made entirely of cmps never abort on version
// grounds: every cmp either fits the snapshot or extends it.
TEST_F(Stl2Phases, AllCmpReadOnlyTransactionRidesThroughCommits) {
  TVar<long> xs[4] = {TVar<long>(1), TVar<long>(2), TVar<long>(3),
                      TVar<long>(4)};

  t1->begin();
  for (int round = 0; round < 4; ++round) {
    t2->begin();
    t2->inc(xs[static_cast<std::size_t>(round)].word(), 10);  // stays > 0
    t2->commit();
    EXPECT_TRUE(
        t1->cmp(xs[static_cast<std::size_t>(round)].word(), Rel::SGT, 0));
  }
  t1->commit();  // read-only: free
}

// ---------------------------------------------------------------------------
// Increment promotion under concurrency.
// ---------------------------------------------------------------------------

TEST(PromotionConcurrency, SnorecPromotionReadsPostCommitValue) {
  auto algo = make_algorithm("snorec");
  auto t1 = algo->make_tx();
  auto t2 = algo->make_tx();
  TVar<long> x(0);

  t1->begin();
  t1->inc(x.word(), 5);  // deferred delta

  t2->begin();
  t2->write(x.word(), 100);
  t2->commit();

  // Reading x back promotes the increment; ReadValid revalidates (empty
  // read-set: fine) and observes T2's 100 — T1 serializes after T2.
  EXPECT_EQ(from_word<long>(t1->read(x.word())), 105);
  t1->commit();
  EXPECT_EQ(x.unsafe_get(), 105);
}

TEST(PromotionConcurrency, Stl2PromotionAbortsOnStaleOrec) {
  auto algo = make_algorithm("stl2");
  auto t1 = algo->make_tx();
  auto t2 = algo->make_tx();
  TVar<long> x(0);

  t1->begin();
  t1->inc(x.word(), 5);

  t2->begin();
  t2->write(x.word(), 100);
  t2->commit();

  // The promotion's read part goes through TL2's versioned read, which
  // finds x's orec beyond the frozen start version.
  EXPECT_THROW((void)t1->read(x.word()), TxAbort);
  t1->rollback();
  EXPECT_EQ(x.unsafe_get(), 100);
}

TEST(PromotionConcurrency, UnpromotedIncrementStillCommutes) {
  // Contrast case: without the read-back, both S-algorithms commit the
  // delta over T2's value.
  for (const char* name : {"snorec", "stl2"}) {
    auto algo = make_algorithm(name);
    auto t1 = algo->make_tx();
    auto t2 = algo->make_tx();
    TVar<long> x(0);

    t1->begin();
    t1->inc(x.word(), 5);

    t2->begin();
    t2->write(x.word(), 100);
    t2->commit();

    t1->commit();
    EXPECT_EQ(x.unsafe_get(), 105) << name;
  }
}

// Write-after-write across cmp_or: a clause over an address the same
// transaction later writes keeps validating against *memory* (the clause
// predates the write, which is buffered) — the classic WAR coverage of
// §4.1 extended to clauses.
TEST(ClauseInteractions, ClauseThenWriteSameAddressCommits) {
  for (const char* name : {"snorec", "stl2"}) {
    auto algo = make_algorithm(name);
    auto t1 = algo->make_tx();
    TVar<long> x(5), y(0);

    t1->begin();
    const CmpTerm clause[2] = {term<long>(x, Rel::SGT, 0),
                               term<long>(y, Rel::SGT, 0)};
    EXPECT_TRUE(t1->cmp_or(clause, 2));
    t1->write(x.word(), 9);  // buffered; memory still 5
    t1->commit();
    EXPECT_EQ(x.unsafe_get(), 9) << name;
  }
}

// And the reverse order: a clause over buffered addresses must observe
// the buffered values (read-after-write for cmp_or).
TEST(ClauseInteractions, ClauseSeesBufferedWrites) {
  for (const char* name : {"snorec", "stl2"}) {
    auto algo = make_algorithm(name);
    auto t1 = algo->make_tx();
    TVar<long> x(-5), y(-5);

    t1->begin();
    t1->write(x.word(), 3);
    const CmpTerm clause[2] = {term<long>(x, Rel::SGT, 0),
                               term<long>(y, Rel::SGT, 0)};
    EXPECT_TRUE(t1->cmp_or(clause, 2)) << name;  // buffered x = 3 > 0
    t1->commit();
  }
}

}  // namespace
}  // namespace semstm
