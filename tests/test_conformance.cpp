// Algorithm conformance suite: every algorithm (cgl, norec, snorec, tl2,
// stl2) must implement the sequential specification of §5 — read returns
// the latest write plus accumulated increments; cmp returns the relation
// over that value — across all the same-transaction interaction cases of
// §4.1 (RAW / WAR / WAW / read-after-read, increment promotion).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "semstm.hpp"

namespace semstm {
namespace {

class Conformance : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    algo_ = make_algorithm(GetParam());
    ctx_ = std::make_unique<ThreadCtx>(algo_->make_tx());
    binder_ = std::make_unique<CtxBinder>(*ctx_);
  }

  TxStats& stats() { return ctx_->tx->stats; }

  std::unique_ptr<Algorithm> algo_;
  std::unique_ptr<ThreadCtx> ctx_;
  std::unique_ptr<CtxBinder> binder_;
};

TEST_P(Conformance, ReadInitialValue) {
  TVar<long> x(41);
  const long got = atomically([&](Tx& tx) { return x.get(tx); });
  EXPECT_EQ(got, 41);
}

TEST_P(Conformance, WriteThenReadBack) {
  TVar<long> x(0);
  atomically([&](Tx& tx) { x.set(tx, 7); });
  EXPECT_EQ(x.unsafe_get(), 7);
  EXPECT_EQ(atomically([&](Tx& tx) { return x.get(tx); }), 7);
}

TEST_P(Conformance, ReadAfterWriteSeesBufferedValue) {
  TVar<long> x(1);
  atomically([&](Tx& tx) {
    x.set(tx, 2);
    EXPECT_EQ(x.get(tx), 2);     // RAW from write-set
    EXPECT_EQ(x.unsafe_get(), 1);  // lazy versioning: memory untouched
  });
  EXPECT_EQ(x.unsafe_get(), 2);
}

TEST_P(Conformance, WriteAfterWriteLastWins) {
  TVar<long> x(0);
  atomically([&](Tx& tx) {
    x.set(tx, 1);
    x.set(tx, 2);
    x.set(tx, 3);
  });
  EXPECT_EQ(x.unsafe_get(), 3);
}

TEST_P(Conformance, IncrementAppliesDelta) {
  TVar<long> x(10);
  atomically([&](Tx& tx) { x.add(tx, 5); });
  EXPECT_EQ(x.unsafe_get(), 15);
  atomically([&](Tx& tx) { x.sub(tx, 7); });
  EXPECT_EQ(x.unsafe_get(), 8);
}

TEST_P(Conformance, IncrementsAccumulateWithinTransaction) {
  TVar<long> x(100);
  atomically([&](Tx& tx) {
    x.add(tx, 1);
    x.add(tx, 2);
    x.sub(tx, 4);
  });
  EXPECT_EQ(x.unsafe_get(), 99);
}

TEST_P(Conformance, ReadAfterIncrementPromotes) {
  // §4.1 read-after-write over an increment: the read must observe the
  // initial value plus the pending delta (sequential spec of §5).
  TVar<long> x(10);
  atomically([&](Tx& tx) {
    x.add(tx, 5);
    EXPECT_EQ(x.get(tx), 15);
    x.add(tx, 1);
    EXPECT_EQ(x.get(tx), 16);
  });
  EXPECT_EQ(x.unsafe_get(), 16);
}

TEST_P(Conformance, IncrementAfterWriteAccumulatesOverBufferedValue) {
  TVar<long> x(1);
  atomically([&](Tx& tx) {
    x.set(tx, 50);
    x.add(tx, 3);
    EXPECT_EQ(x.get(tx), 53);
  });
  EXPECT_EQ(x.unsafe_get(), 53);
}

TEST_P(Conformance, WriteAfterIncrementOverrides) {
  TVar<long> x(1);
  atomically([&](Tx& tx) {
    x.add(tx, 100);
    x.set(tx, 9);
  });
  EXPECT_EQ(x.unsafe_get(), 9);
}

TEST_P(Conformance, CompareAgainstValue) {
  TVar<long> x(5);
  atomically([&](Tx& tx) {
    EXPECT_TRUE(x.gt(tx, 0));
    EXPECT_TRUE(x.gte(tx, 5));
    EXPECT_FALSE(x.gt(tx, 5));
    EXPECT_TRUE(x.lt(tx, 6));
    EXPECT_TRUE(x.lte(tx, 5));
    EXPECT_FALSE(x.lt(tx, 5));
    EXPECT_TRUE(x.eq(tx, 5));
    EXPECT_FALSE(x.neq(tx, 5));
    EXPECT_TRUE(x.neq(tx, 4));
  });
}

TEST_P(Conformance, CompareNegativeValuesSigned) {
  TVar<int> x(-3);
  atomically([&](Tx& tx) {
    EXPECT_TRUE(x.lt(tx, 0));
    EXPECT_TRUE(x.gt(tx, -10));
    EXPECT_FALSE(x.gte(tx, 0));
  });
}

TEST_P(Conformance, CompareUnsignedUsesUnsignedOrder) {
  TVar<unsigned long> x(~0ul);
  atomically([&](Tx& tx) {
    EXPECT_TRUE(x.gt(tx, 1ul));  // would be false under signed order
  });
}

TEST_P(Conformance, CompareAddressAddress) {
  TVar<long> head(3);
  TVar<long> tail(3);
  atomically([&](Tx& tx) {
    EXPECT_TRUE(head.eq(tx, tail));
    EXPECT_FALSE(head.neq(tx, tail));
    EXPECT_TRUE(head.lte(tx, tail));
    EXPECT_FALSE(head.lt(tx, tail));
  });
  tail.unsafe_set(5);
  atomically([&](Tx& tx) {
    EXPECT_TRUE(head.lt(tx, tail));
    EXPECT_TRUE(tail.gt(tx, head));
  });
}

TEST_P(Conformance, CompareSeesBufferedWrite) {
  TVar<long> x(0);
  atomically([&](Tx& tx) {
    x.set(tx, 10);
    EXPECT_TRUE(x.gt(tx, 5));   // must observe the buffered 10, not memory 0
    EXPECT_TRUE(x.eq(tx, 10));
  });
}

TEST_P(Conformance, CompareSeesBufferedIncrement) {
  TVar<long> x(10);
  atomically([&](Tx& tx) {
    x.add(tx, 5);
    EXPECT_TRUE(x.eq(tx, 15));  // forces promotion in semantic algorithms
  });
  EXPECT_EQ(x.unsafe_get(), 15);
}

TEST_P(Conformance, Cmp2WithOneSideBuffered) {
  TVar<long> a(1);
  TVar<long> b(9);
  atomically([&](Tx& tx) {
    a.set(tx, 10);
    EXPECT_TRUE(a.gt(tx, b));  // buffered 10 vs memory 9
  });
}

TEST_P(Conformance, TransfersComposeAcrossTransactions) {
  TVar<long> from(100);
  TVar<long> to(0);
  for (int i = 0; i < 10; ++i) {
    atomically([&](Tx& tx) {
      if (from.gte(tx, 10)) {
        from.sub(tx, 10);
        to.add(tx, 10);
      }
    });
  }
  EXPECT_EQ(from.unsafe_get(), 0);
  EXPECT_EQ(to.unsafe_get(), 100);
  // 11th transfer must be refused by the overdraft check.
  atomically([&](Tx& tx) {
    if (from.gte(tx, 10)) {
      from.sub(tx, 10);
      to.add(tx, 10);
    }
  });
  EXPECT_EQ(from.unsafe_get(), 0);
}

TEST_P(Conformance, UserExceptionRollsBackAndPropagates) {
  TVar<long> x(1);
  struct Boom {};
  EXPECT_THROW(atomically([&](Tx& tx) {
                 x.set(tx, 999);
                 throw Boom{};
               }),
               Boom);
  EXPECT_EQ(x.unsafe_get(), 1);  // lazy versioning: nothing leaked
  // The descriptor must be reusable afterwards.
  atomically([&](Tx& tx) { x.set(tx, 2); });
  EXPECT_EQ(x.unsafe_get(), 2);
}

TEST_P(Conformance, ReturnValuePlumbsThrough) {
  TVar<long> x(6);
  const long doubled = atomically([&](Tx& tx) { return 2 * x.get(tx); });
  EXPECT_EQ(doubled, 12);
}

TEST_P(Conformance, ManySequentialTransactionsStayConsistent) {
  TVar<long> counter(0);
  for (int i = 0; i < 1000; ++i) {
    atomically([&](Tx& tx) { counter.add(tx, 1); });
  }
  EXPECT_EQ(counter.unsafe_get(), 1000);
  EXPECT_EQ(stats().commits, 1000u);
  EXPECT_EQ(stats().aborts, 0u);  // single thread: no conflicts possible
}

TEST_P(Conformance, StatsCountOperationKinds) {
  TVar<long> x(1);
  TVar<long> y(2);
  stats().reset();
  atomically([&](Tx& tx) {
    (void)x.get(tx);
    y.set(tx, 3);
    (void)x.gt(tx, 0);
    x.add(tx, 1);
  });
  if (algo_->semantic()) {
    EXPECT_EQ(stats().reads, 1u);
    EXPECT_EQ(stats().writes, 1u);
    EXPECT_EQ(stats().compares, 1u);
    EXPECT_EQ(stats().increments, 1u);
  } else {
    // Non-semantic algorithms delegate cmp -> read, inc -> read+write.
    EXPECT_EQ(stats().compares, 0u);
    EXPECT_EQ(stats().increments, 0u);
    EXPECT_EQ(stats().reads, 3u);
    EXPECT_EQ(stats().writes, 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, Conformance,
                         ::testing::Values("cgl", "norec", "snorec", "tl2",
                                           "stl2"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace semstm
