// Contention-cartography tests (src/obs conflict map + windowed metrics):
//
//  - TxStats algebra: operator+= is associative and commutative over every
//    field (cause array and latency histograms included), and operator-=
//    window deltas sum exactly back to the run totals — the partition
//    invariant the metrics layer rests on (property-tested over random
//    single-writer histories).
//  - ConflictMap: keying (orec-tagged vs address-region), per-cause
//    counts, edge accounting, merge, bounded-capacity overflow, top-K
//    ranking determinism.
//  - Abort attribution: TL2-family aborts carry the conflicting orec index
//    and owner hint end-to-end through abort_tx (build-independent —
//    AbortInfo is always populated).
//  - Gated end-to-end (SEMSTM_TRACE): a hot-skewed bank run's #1 hot site
//    is a known hot account; per-site counts never exceed per-cause
//    totals; merged windows reproduce run totals field-for-field.
//  - Reporting: MetricsWriter JSON-lines round-trip through
//    render_metrics_report, exit-status contract, sparkline scaling.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "algos/tl2.hpp"
#include "obs/conflict_map.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "semstm.hpp"
#include "util/rng.hpp"
#include "workloads/bank.hpp"
#include "workloads/driver.hpp"

namespace semstm {
namespace {

using obs::AbortCause;
using obs::ConflictMap;
using obs::LatencyHistogram;

// ---------------------------------------------------------------------------
// TxStats algebra.
// ---------------------------------------------------------------------------

bool hist_eq(const LatencyHistogram& a, const LatencyHistogram& b) {
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (a.buckets[i] != b.buckets[i]) return false;
  }
  return a.count == b.count && a.sum == b.sum && a.min == b.min &&
         a.max == b.max;
}

bool stats_eq(const TxStats& a, const TxStats& b) {
  if (a.starts != b.starts || a.commits != b.commits ||
      a.aborts != b.aborts || a.exceptions != b.exceptions ||
      a.retries != b.retries || a.fallbacks != b.fallbacks ||
      a.max_consec_aborts != b.max_consec_aborts || a.reads != b.reads ||
      a.writes != b.writes || a.compares != b.compares ||
      a.compares2 != b.compares2 || a.increments != b.increments ||
      a.promotions != b.promotions || a.validations != b.validations ||
      a.readset_adds != b.readset_adds || a.readset_dups != b.readset_dups ||
      a.validate_entries != b.validate_entries) {
    return false;
  }
  for (std::size_t c = 0; c < obs::kAbortCauseCount; ++c) {
    if (a.abort_causes[c] != b.abort_causes[c]) return false;
  }
  return hist_eq(a.lat_commit, b.lat_commit) &&
         hist_eq(a.lat_validate, b.lat_validate) &&
         hist_eq(a.lat_backoff, b.lat_backoff) &&
         hist_eq(a.lat_gate, b.lat_gate);
}

/// A random but internally consistent TxStats block (every field
/// exercised, histograms populated through record()).
TxStats random_stats(Rng& rng) {
  TxStats s;
  s.commits = rng.below(100);
  s.aborts = rng.below(100);
  s.exceptions = rng.below(5);
  s.starts = s.commits + s.aborts + s.exceptions;
  s.retries = s.aborts;
  s.fallbacks = rng.below(3);
  s.max_consec_aborts = rng.below(20);
  s.reads = rng.below(1000);
  s.writes = rng.below(1000);
  s.compares = rng.below(100);
  s.compares2 = rng.below(100);
  s.increments = rng.below(100);
  s.promotions = rng.below(10);
  s.validations = rng.below(200);
  s.readset_adds = rng.below(500);
  s.readset_dups = rng.below(500);
  s.validate_entries = rng.below(2000);
  std::uint64_t left = s.aborts;
  for (std::size_t c = 1; c < obs::kAbortCauseCount && left > 0; ++c) {
    const std::uint64_t n = rng.below(left + 1);
    s.abort_causes[c] += n;
    left -= n;
  }
  s.abort_causes[0] += left;
  for (std::uint64_t i = rng.below(50); i > 0; --i) {
    s.lat_commit.record(rng.below(1u << 20));
  }
  for (std::uint64_t i = rng.below(50); i > 0; --i) {
    s.lat_validate.record(rng.below(1u << 12));
  }
  for (std::uint64_t i = rng.below(20); i > 0; --i) {
    s.lat_backoff.record(rng.below(1u << 8));
  }
  for (std::uint64_t i = rng.below(5); i > 0; --i) {
    s.lat_gate.record(rng.below(1u << 16));
  }
  return s;
}

TEST(TxStatsAlgebra, PlusIsCommutative) {
  Rng rng(0xA11CE);
  for (int trial = 0; trial < 50; ++trial) {
    const TxStats a = random_stats(rng);
    const TxStats b = random_stats(rng);
    TxStats ab = a;
    ab += b;
    TxStats ba = b;
    ba += a;
    ASSERT_TRUE(stats_eq(ab, ba)) << "trial " << trial;
  }
}

TEST(TxStatsAlgebra, PlusIsAssociative) {
  Rng rng(0xB0B);
  for (int trial = 0; trial < 50; ++trial) {
    const TxStats a = random_stats(rng);
    const TxStats b = random_stats(rng);
    const TxStats c = random_stats(rng);
    TxStats left = a;  // (a + b) + c
    left += b;
    left += c;
    TxStats bc = b;  // a + (b + c)
    bc += c;
    TxStats right = a;
    right += bc;
    ASSERT_TRUE(stats_eq(left, right)) << "trial " << trial;
  }
}

TEST(TxStatsAlgebra, PlusIdentityAndAbortContract) {
  Rng rng(0x1D);
  const TxStats a = random_stats(rng);
  TxStats z;  // zero block
  z += a;
  EXPECT_TRUE(stats_eq(z, a)) << "zero must be the += identity";
  std::uint64_t sum = 0;
  for (std::size_t c = 0; c < obs::kAbortCauseCount; ++c) {
    sum += a.abort_causes[c];
  }
  EXPECT_EQ(a.aborts, sum) << "random_stats must respect the contract";
}

// ---------------------------------------------------------------------------
// Windowed deltas: simulate a single-writer history, cut it into windows
// with WindowSeries, and check the deltas re-sum to the final totals
// EXACTLY (every field, histograms included). This is the invariant that
// makes per-window numbers trustworthy: nothing is lost or double-counted
// at window boundaries.
// ---------------------------------------------------------------------------

/// Mutate `s` as one attempt's worth of activity would.
void advance_stats(TxStats& s, Rng& rng) {
  ++s.starts;
  s.reads += rng.below(20);
  s.writes += rng.below(10);
  s.readset_adds += rng.below(8);
  s.validate_entries += rng.below(30);
  if (rng.percent(70)) {
    ++s.commits;
    s.lat_commit.record(rng.below(1u << 14));
    if (s.max_consec_aborts < 3 && rng.percent(10)) ++s.max_consec_aborts;
  } else {
    ++s.aborts;
    ++s.retries;
    s.note_abort_cause(static_cast<AbortCause>(1 + rng.below(3)));
    s.lat_validate.record(rng.below(1u << 10));
    if (rng.percent(20) && s.max_consec_aborts < 40) ++s.max_consec_aborts;
  }
}

TEST(WindowSeries, DeltasSumBackToRunTotals) {
  Rng rng(0xD317A5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t width = 64 + rng.below(512);
    obs::WindowSeries series(width);
    TxStats cur;
    std::uint64_t now = rng.below(1000);
    const int attempts = 50 + static_cast<int>(rng.below(400));
    for (int i = 0; i < attempts; ++i) {
      advance_stats(cur, rng);
      now += 1 + rng.below(200);  // attempts end at increasing times
      series.sample(now, cur);
    }
    series.flush(cur);

    TxStats resummed;
    std::uint64_t last_window = 0;
    bool first = true;
    for (const obs::WindowSample& w : series.samples()) {
      if (!first) {
        EXPECT_GT(w.window, last_window) << "windows must be ordered";
      }
      last_window = w.window;
      first = false;
      resummed += w.delta;
    }
    ASSERT_TRUE(stats_eq(resummed, cur))
        << "trial " << trial << ": windows must partition the run exactly";
  }
}

TEST(WindowSeries, FlushIsIdempotentAndEmptyWindowsAreSkipped) {
  obs::WindowSeries series(100);
  TxStats cur;
  ++cur.starts;
  ++cur.commits;
  series.sample(50, cur);   // opens window 0
  series.sample(250, cur);  // crosses into window 2: closes window 0
  series.flush(cur);        // nothing new since: no extra sample
  series.flush(cur);
  ASSERT_EQ(series.samples().size(), 1u);
  EXPECT_EQ(series.samples()[0].window, 0u);
  EXPECT_EQ(series.samples()[0].delta.commits, 1u);
}

TEST(MetricsCollector, MergesThreadSeriesByAbsoluteWindow) {
  obs::MetricsCollector col(100);
  col.prepare(2);
  TxStats t0;
  ++t0.starts;
  ++t0.commits;
  col.series(0).sample(10, t0);
  ++t0.starts;
  ++t0.aborts;
  t0.note_abort_cause(AbortCause::kReadValidation);
  col.series(0).sample(350, t0);  // closes window 0 with both attempts
  col.series(0).flush(t0);

  TxStats t1;
  ++t1.starts;
  ++t1.commits;
  col.series(1).sample(320, t1);  // opens window 3
  col.series(1).flush(t1);

  // flush() on thread 0 closed window 3 (the open one) with an empty
  // delta — skipped; thread 1's flush pushed its window-3 delta.
  const std::vector<obs::WindowRow> rows = col.merged();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].window, 0u);
  EXPECT_EQ(rows[0].t0, 0u);
  EXPECT_EQ(rows[0].t1, 100u);
  EXPECT_EQ(rows[0].stats.commits, 1u);
  EXPECT_EQ(rows[0].stats.aborts, 1u);
  EXPECT_EQ(rows[1].window, 3u);
  EXPECT_EQ(rows[1].stats.commits, 1u);
}

// ---------------------------------------------------------------------------
// ConflictMap.
// ---------------------------------------------------------------------------

TEST(ConflictMapTest, RegionKeyGroupsByWordAndCountsByCause) {
  ConflictMap map(4);
  long a = 0, b = 0;
  map.record(AbortCause::kReadValidation, &a, obs::kNoOrec, nullptr);
  map.record(AbortCause::kReadValidation, &a, obs::kNoOrec, nullptr);
  map.record(AbortCause::kCmpRevalidation, &a, obs::kNoOrec, nullptr);
  map.record(AbortCause::kReadValidation, &b, obs::kNoOrec, nullptr);
  ASSERT_EQ(map.size(), 2u);
  EXPECT_EQ(map.overflow(), 0u);

  const auto top = obs::top_sites(map, 10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].addr, &a);
  EXPECT_EQ(top[0].total(), 3u);
  EXPECT_EQ(top[0].counts[static_cast<std::size_t>(
                AbortCause::kReadValidation)],
            2u);
  EXPECT_EQ(top[0].top_cause(), AbortCause::kReadValidation);
  EXPECT_EQ(top[1].addr, &b);
  EXPECT_EQ(top[1].total(), 1u);
}

TEST(ConflictMapTest, OrecKeyIsDistinctFromRegionKeyAndTracksEdges) {
  ConflictMap map(4);
  long x = 0;
  int owner_a = 0, owner_b = 0;
  // Same address, once orec-keyed and once region-keyed: two sites (an
  // orec index must never alias an address region).
  map.record(AbortCause::kWriteLockConflict, &x, 7, &owner_a);
  map.record(AbortCause::kReadValidation, &x, obs::kNoOrec, nullptr);
  map.record(AbortCause::kWriteLockConflict, &x, 7, &owner_b);
  ASSERT_EQ(map.size(), 2u);

  const auto top = obs::top_sites(map, 10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].orec, 7u);
  EXPECT_EQ(top[0].total(), 2u);
  EXPECT_EQ(top[0].edges, 2u) << "both records carried an owner";
  EXPECT_EQ(top[0].last_owner, &owner_b);
  EXPECT_EQ(top[1].orec, obs::kNoOrec);
  EXPECT_EQ(top[1].edges, 0u);
}

TEST(ConflictMapTest, MergeAccumulatesAcrossMaps) {
  ConflictMap a(4), b(4), merged(6);
  long x = 0, y = 0;
  a.record(AbortCause::kReadValidation, &x, obs::kNoOrec, nullptr);
  a.record(AbortCause::kWriteLockConflict, &y, 3, &a);
  b.record(AbortCause::kReadValidation, &x, obs::kNoOrec, nullptr);
  b.record(AbortCause::kWriteLockConflict, &y, 3, &b);
  merged.merge(a);
  merged.merge(b);
  ASSERT_EQ(merged.size(), 2u);
  const auto top = obs::top_sites(merged, 10);
  EXPECT_EQ(top[0].total(), 2u);
  EXPECT_EQ(top[1].total(), 2u);
  std::uint64_t edges = 0, total = 0;
  merged.for_each([&](const ConflictMap::Site& s) {
    edges += s.edges;
    total += s.total();
  });
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(edges, 2u);
}

TEST(ConflictMapTest, FullTableCountsOverflowInsteadOfEvicting) {
  ConflictMap map(1);  // 2 slots
  std::vector<long> words(8);
  for (long& w : words) {
    map.record(AbortCause::kReadValidation, &w, obs::kNoOrec, nullptr);
  }
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.overflow(), 6u) << "drops must be counted, not silent";
  // Resident sites keep counting.
  std::uint64_t total = 0;
  map.for_each([&](const ConflictMap::Site& s) { total += s.total(); });
  EXPECT_EQ(total, 2u);
}

TEST(ConflictMapTest, ClearResetsEverything) {
  ConflictMap map(2);
  long x = 0;
  map.record(AbortCause::kReadValidation, &x, obs::kNoOrec, nullptr);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.overflow(), 0u);
  EXPECT_TRUE(obs::top_sites(map, 5).empty());
}

// ---------------------------------------------------------------------------
// Abort attribution end-to-end through abort_tx: AbortInfo carries the
// orec index and owner hint (build-independent; the ConflictMap recording
// is gate-checked in the gated suite below).
// ---------------------------------------------------------------------------

TEST(AbortAttribution, Tl2LockConflictCarriesOrecIndexAndOwner) {
  Tl2Algorithm algo;
  auto tx1 = algo.make_tx();
  auto tx2 = algo.make_tx();
  TVar<long> x(1);

  Orec& o = algo.orecs().of(x.word());
  ASSERT_TRUE(o.try_lock(tx2.get()));  // stage a concurrent lock holder

  tx1->begin();
  [&] { EXPECT_THROW(tx1->read(x.word()), TxAbort); }();
  const obs::AbortInfo info = tx1->last_abort();
  tx1->rollback();

  EXPECT_EQ(info.cause, AbortCause::kWriteLockConflict);
  EXPECT_EQ(info.addr, x.word());
  EXPECT_EQ(info.orec, static_cast<std::uint32_t>(algo.orecs().index(&o)))
      << "the conflicting orec's table index must be reported";
  EXPECT_EQ(info.owner, tx2.get())
      << "the owner hint must name the lock holder";
  o.unlock(tx2.get());
}

TEST(AbortAttribution, Tl2ReadValidationCarriesOrecWithoutOwner) {
  Tl2Algorithm algo;
  auto tx1 = algo.make_tx();
  auto tx2 = algo.make_tx();
  TVar<long> x(1);

  tx1->begin();  // snapshot at version 0
  tx2->begin();
  tx2->write(x.word(), 42);
  tx2->commit();  // bumps x's orec past tx1's snapshot and unlocks

  [&] { EXPECT_THROW(tx1->read(x.word()), TxAbort); }();
  const obs::AbortInfo info = tx1->last_abort();
  tx1->rollback();

  EXPECT_EQ(info.cause, AbortCause::kReadValidation);
  const Orec& o = algo.orecs().of(x.word());
  EXPECT_EQ(info.orec, static_cast<std::uint32_t>(algo.orecs().index(&o)));
  EXPECT_EQ(info.owner, nullptr) << "the committed writer released its lock";
}

// ---------------------------------------------------------------------------
// Gated end-to-end: hot-site attribution and windowed metrics through the
// driver, against a bank run with known hot accounts.
// ---------------------------------------------------------------------------

RunResult hot_bank_run(const char* algo, obs::MetricsCollector* metrics,
                       BankWorkload** out_w,
                       std::unique_ptr<BankWorkload>& holder) {
  BankWorkload::Params p;
  p.accounts = 1024;
  p.hot_accounts = 2;
  p.hot_pct = 90;  // Zipfian-style: 90% of picks hit 2 of 1024 accounts
  holder = std::make_unique<BankWorkload>(p, /*semantic=*/false);
  *out_w = holder.get();
  RunConfig cfg;
  cfg.algo = algo;
  cfg.threads = 8;
  cfg.ops_per_thread = 400;
  cfg.sim_quantum = 16;  // interleave mid-transaction to force conflicts
  cfg.metrics = metrics;
  const RunResult r = run_workload(cfg, **out_w);
  holder->verify();
  return r;
}

TEST(CartographyEndToEnd, HotSkewedBankTopSiteIsAHotAccount) {
  if (!obs::kTraceEnabled) {
    GTEST_SKIP() << "build with -DSEMSTM_TRACE=ON for conflict attribution";
  }
  BankWorkload* w = nullptr;
  std::unique_ptr<BankWorkload> holder;
  const RunResult r = hot_bank_run("norec", nullptr, &w, holder);

  ASSERT_GT(r.stats.aborts, 0u) << "rig failed to generate contention";
  ASSERT_FALSE(r.hot_sites.empty());
  EXPECT_EQ(r.conflict_overflow, 0u);
  // NOrec attribution is address-granular: the #1 site must be one of the
  // two known hot words (word-granularity regions make this exact).
  const void* top = r.hot_sites[0].addr;
  EXPECT_TRUE(top == w->account_word(0) || top == w->account_word(1))
      << "#1 hot site " << top << " is not a hot account";
  EXPECT_EQ(r.hot_sites[0].orec, obs::kNoOrec)
      << "NOrec sites must be region-keyed";

  // Accounting contract: per-site counts never exceed per-cause totals.
  std::uint64_t site_counts[obs::kAbortCauseCount] = {};
  for (const auto& s : r.hot_sites) {
    for (std::size_t c = 0; c < obs::kAbortCauseCount; ++c) {
      site_counts[c] += s.counts[c];
    }
  }
  for (std::size_t c = 0; c < obs::kAbortCauseCount; ++c) {
    EXPECT_LE(site_counts[c], r.stats.abort_causes[c])
        << "cause " << obs::abort_cause_name(static_cast<AbortCause>(c));
  }
}

TEST(CartographyEndToEnd, Tl2SitesAreOrecKeyedWithEdges) {
  if (!obs::kTraceEnabled) {
    GTEST_SKIP() << "build with -DSEMSTM_TRACE=ON for conflict attribution";
  }
  BankWorkload* w = nullptr;
  std::unique_ptr<BankWorkload> holder;
  const RunResult r = hot_bank_run("tl2", nullptr, &w, holder);

  ASSERT_GT(r.stats.aborts, 0u);
  ASSERT_FALSE(r.hot_sites.empty());
  EXPECT_NE(r.hot_sites[0].orec, obs::kNoOrec)
      << "TL2 conflict sites must be keyed by orec index";
  // Lock conflicts know their owner: the run must observe at least one
  // aborter->owner edge somewhere in the ranking.
  std::uint64_t edges = 0;
  for (const auto& s : r.hot_sites) edges += s.edges;
  EXPECT_GT(edges, 0u);
}

TEST(CartographyEndToEnd, WindowsPartitionTheRunExactly) {
  if (!obs::kTraceEnabled) {
    GTEST_SKIP() << "build with -DSEMSTM_TRACE=ON for windowed metrics";
  }
  obs::MetricsCollector metrics(1u << 12);
  BankWorkload* w = nullptr;
  std::unique_ptr<BankWorkload> holder;
  const RunResult r = hot_bank_run("snorec", &metrics, &w, holder);

  ASSERT_FALSE(r.windows.empty());
  TxStats resummed;
  std::uint64_t last = 0;
  bool first = true;
  for (const obs::WindowRow& row : r.windows) {
    if (!first) {
      EXPECT_GT(row.window, last);
    }
    last = row.window;
    first = false;
    EXPECT_EQ(row.t1 - row.t0, std::uint64_t{1} << 12);
    resummed += row.stats;
  }
  ASSERT_TRUE(stats_eq(resummed, r.stats))
      << "merged windows must reproduce the run totals field-for-field";
}

TEST(CartographyEndToEnd, GateOffRunsStayEmpty) {
  if (obs::kTraceEnabled) {
    GTEST_SKIP() << "verifies the SEMSTM_TRACE=OFF build only";
  }
  obs::MetricsCollector metrics(1u << 12);
  BankWorkload* w = nullptr;
  std::unique_ptr<BankWorkload> holder;
  const RunResult r = hot_bank_run("norec", &metrics, &w, holder);
  EXPECT_TRUE(r.hot_sites.empty()) << "gate off: no conflict recording";
  EXPECT_TRUE(r.windows.empty()) << "gate off: no metrics sampling";
  EXPECT_EQ(r.conflict_overflow, 0u);
}

// ---------------------------------------------------------------------------
// Reporting: writer -> file -> tm_top renderer round trip (synthetic data,
// build-independent).
// ---------------------------------------------------------------------------

TEST(Sparkline, ScalesToMaxAndHandlesEdgeCases) {
  EXPECT_EQ(obs::sparkline({}), "");
  EXPECT_EQ(obs::sparkline({0.0, 0.0}), "  ");
  const std::string line = obs::sparkline({0.0, 50.0, 100.0});
  ASSERT_EQ(line.size(), 3u);
  EXPECT_EQ(line[0], ' ');
  EXPECT_EQ(line[2], '#') << "the max value must map to the top ramp level";
  EXPECT_NE(line[1], ' ');
  EXPECT_NE(line[1], '#');
}

TEST(Report, RenderHotSitesEmptyAndRanked) {
  EXPECT_NE(obs::render_hot_sites({}).find("none recorded"),
            std::string::npos);
  ConflictMap map(4);
  long x = 0;
  map.record(AbortCause::kWriteLockConflict, &x, 11, &map);
  const std::string table = obs::render_hot_sites(obs::top_sites(map, 5));
  EXPECT_NE(table.find("11"), std::string::npos);
  EXPECT_NE(table.find("write_lock_conflict"), std::string::npos);
}

TEST(Report, WriterRoundTripsThroughRenderer) {
  const std::string path = testing::TempDir() + "semstm_metrics_unit.jsonl";
  {
    obs::MetricsWriter writer(path);
    ASSERT_TRUE(writer.ok());
    std::vector<obs::WindowRow> rows(2);
    rows[0].window = 0;
    rows[0].t0 = 0;
    rows[0].t1 = 1000;
    rows[0].stats.starts = 10;
    rows[0].stats.commits = 8;
    rows[0].stats.aborts = 2;
    rows[0].stats.note_abort_cause(AbortCause::kReadValidation);
    rows[0].stats.note_abort_cause(AbortCause::kReadValidation);
    rows[1].window = 3;
    rows[1].t0 = 3000;
    rows[1].t1 = 4000;
    rows[1].stats.starts = 5;
    rows[1].stats.commits = 5;
    std::vector<ConflictMap::Site> sites(1);
    long hot = 0;
    sites[0].addr = &hot;
    sites[0].orec = 42;
    sites[0].counts[static_cast<std::size_t>(
        AbortCause::kWriteLockConflict)] = 7;
    sites[0].edges = 3;
    writer.add_run("NOrec/4t", "ticks", 1000, 4, rows, sites, 0);
    ASSERT_TRUE(writer.close());
  }

  std::string report;
  ASSERT_EQ(obs::render_metrics_report(path, 10, report), obs::kReportOk)
      << report;
  EXPECT_NE(report.find("NOrec/4t"), std::string::npos);
  EXPECT_NE(report.find("windows: 2"), std::string::npos);
  EXPECT_NE(report.find("write_lock_conflict"), std::string::npos);
  EXPECT_NE(report.find("throughput |"), std::string::npos);
}

TEST(Report, ExitStatusContract) {
  std::string out;
  EXPECT_EQ(obs::render_metrics_report(testing::TempDir() + "nope.jsonl", 5,
                                       out),
            obs::kReportIoError);

  // Schema-invalid: a window line with no preceding run line.
  const std::string bad = testing::TempDir() + "semstm_metrics_bad.jsonl";
  {
    std::ofstream f(bad);
    f << "{\"type\":\"window\",\"window\":0}\n";
  }
  out.clear();
  EXPECT_EQ(obs::render_metrics_report(bad, 5, out), obs::kReportInvalid);

  // Truncation detection: run declares more windows than it carries.
  const std::string trunc = testing::TempDir() + "semstm_metrics_trunc.jsonl";
  {
    std::ofstream f(trunc);
    f << "{\"type\":\"run\",\"label\":\"x\",\"units\":\"ticks\","
         "\"window_ticks\":10,\"threads\":1,\"windows\":2,\"hot_sites\":0,"
         "\"conflict_overflow\":0}\n";
  }
  out.clear();
  EXPECT_EQ(obs::render_metrics_report(trunc, 5, out), obs::kReportInvalid);
}

TEST(Report, AcceptsDriverUnitsField) {
  // The driver's units tag must be one the renderer accepts for both
  // modes (sim ticks and real-thread ns).
  BankWorkload::Params p;
  std::unique_ptr<BankWorkload> w =
      std::make_unique<BankWorkload>(p, false);
  RunConfig cfg;
  cfg.threads = 2;
  cfg.ops_per_thread = 10;
  const RunResult r = run_workload(cfg, *w);
  EXPECT_STREQ(r.units, "ticks");
  RunConfig real_cfg;
  real_cfg.threads = 2;
  real_cfg.ops_per_thread = 10;
  real_cfg.mode = ExecMode::kReal;
  std::unique_ptr<BankWorkload> w2 =
      std::make_unique<BankWorkload>(p, false);
  const RunResult rr = run_workload(real_cfg, *w2);
  EXPECT_STREQ(rr.units, "ns");
}

}  // namespace
}  // namespace semstm
