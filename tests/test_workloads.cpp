// Integration tests: every evaluation workload runs under every algorithm
// on the simulator, its invariants verified after the run; plus checks
// that the semantic builds actually emit semantic operations (the premise
// of Table 3).
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "semstm.hpp"
#include "workloads/registry.hpp"

namespace semstm {
namespace {

using Param = std::tuple<std::string, std::string>;  // (workload, algorithm)

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  return std::get<0>(info.param) + "_" + std::get<1>(info.param);
}

class WorkloadRuns : public ::testing::TestWithParam<Param> {};

TEST_P(WorkloadRuns, InvariantsHoldAfterConcurrentRun) {
  const auto& [wl_name, algo] = GetParam();
  // Pair semantic workload builds with semantic algorithms, mirroring the
  // paper's configurations (NOrec runs base, S-NOrec runs semantic).
  const bool semantic = (algo == "snorec" || algo == "stl2");
  auto w = make_workload(wl_name, semantic);
  RunConfig cfg;
  cfg.algo = algo;
  cfg.mode = ExecMode::kSim;
  cfg.threads = 4;
  cfg.ops_per_thread = (wl_name == "labyrinth" || wl_name == "labyrinth2")
                           ? 8
                           : 150;
  cfg.seed = 0x5EA5C0DE;
  const RunResult r = run_workload(cfg, *w);
  EXPECT_EQ(r.stats.commits,
            r.stats.starts - r.stats.aborts);  // accounting identity
  ASSERT_NO_THROW(w->verify());
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, WorkloadRuns,
    ::testing::Combine(
        ::testing::Values("hashtable", "bank", "lru", "vacation", "kmeans",
                          "labyrinth", "labyrinth2", "yada", "ssca2", "genome",
                          "intruder"),
        ::testing::Values("cgl", "norec", "snorec", "tl2", "stl2")),
    param_name);

// ---------------------------------------------------------------------------
// Table 3 premises: the semantic builds must transform the operations the
// paper says they transform.
// ---------------------------------------------------------------------------

TxStats profile(const std::string& wl, bool semantic) {
  auto w = make_workload(wl, semantic);
  RunConfig cfg;
  cfg.algo = semantic ? "snorec" : "norec";
  cfg.mode = ExecMode::kSim;
  cfg.threads = 2;
  cfg.ops_per_thread = (wl == "labyrinth" || wl == "labyrinth2") ? 10 : 200;
  return run_workload(cfg, *w).stats;
}

TEST(WorkloadProfiles, HashtableTurnsAllReadsIntoCompares) {
  const TxStats s = profile("hashtable", true);
  EXPECT_GT(s.compares, 0u);
  // Paper Table 3: base reads -> ~all compares. The only residual plain
  // reads come from cmp_or's read-after-write fallback (probing a cell the
  // same transaction already wrote), which is a tiny fraction.
  EXPECT_LT(s.reads, s.compares / 20);
  const TxStats base = profile("hashtable", false);
  EXPECT_EQ(base.compares, 0u);
  EXPECT_GT(base.reads, 0u);
}

TEST(WorkloadProfiles, BankUsesComparesAndIncrements) {
  const TxStats s = profile("bank", true);
  EXPECT_GT(s.compares, 0u);    // overdraft TM_GTE
  EXPECT_GT(s.increments, 0u);  // TM_INC / TM_DEC
  EXPECT_EQ(s.writes, 0u);      // no plain writes remain (Table 3)
}

TEST(WorkloadProfiles, KmeansIsPureIncrements) {
  const TxStats s = profile("kmeans", true);
  EXPECT_GT(s.increments, 0u);
  EXPECT_EQ(s.reads, 0u);
  EXPECT_EQ(s.writes, 0u);
  EXPECT_EQ(s.compares, 0u);
}

TEST(WorkloadProfiles, VacationPromotesItsIncrements) {
  const TxStats s = profile("vacation", true);
  EXPECT_GT(s.compares, 0u);
  EXPECT_GT(s.promotions, 0u);  // the sanity check re-reads numFree
  // Most reads are tree-internal and stay plain (Table 3: ~7% compares).
  EXPECT_GT(s.reads, s.compares);
}

TEST(WorkloadProfiles, LabyrinthComparesDominateItsReads) {
  const TxStats s = profile("labyrinth", true);
  EXPECT_GT(s.compares, 0u);
  EXPECT_GT(s.writes, 0u);
  EXPECT_GT(s.compares, s.reads);  // Table 3: 172 cmp vs 4 reads
}

TEST(WorkloadProfiles, YadaKeepsMostReadsPlain) {
  const TxStats s = profile("yada", true);
  EXPECT_GT(s.compares, 0u);
  EXPECT_GT(s.reads, 5 * s.compares);  // Table 3: 135 reads vs 7 compares
}

TEST(WorkloadProfiles, GenomeAndIntruderHaveNoSemantics) {
  for (const char* wl : {"genome", "intruder"}) {
    const TxStats s = profile(wl, true);
    EXPECT_EQ(s.compares, 0u) << wl;
    EXPECT_EQ(s.increments, 0u) << wl;
    EXPECT_GT(s.reads, 0u) << wl;
  }
}

TEST(WorkloadProfiles, Ssca2TradesAReadWritePairForAnIncrement) {
  const TxStats base = profile("ssca2", false);
  const TxStats sem = profile("ssca2", true);
  EXPECT_GT(sem.increments, 0u);
  EXPECT_LT(sem.reads, base.reads);
  EXPECT_LT(sem.writes, base.writes);
}

TEST(WorkloadRegistry, RejectsUnknownNames) {
  EXPECT_THROW(make_workload("nope", false), std::invalid_argument);
  EXPECT_EQ(workload_names().size(), 11u);
}

}  // namespace
}  // namespace semstm
