// Unit tests for the transactional word encoding.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/semantics.hpp"
#include "core/word.hpp"

namespace semstm {
namespace {

TEST(Word, RoundTripsIntegrals) {
  EXPECT_EQ(from_word<int>(to_word(42)), 42);
  EXPECT_EQ(from_word<int>(to_word(-42)), -42);
  EXPECT_EQ(from_word<std::int64_t>(to_word<std::int64_t>(-1)), -1);
  EXPECT_EQ(from_word<std::uint8_t>(to_word<std::uint8_t>(200)), 200);
  EXPECT_EQ(from_word<std::uint64_t>(to_word<std::uint64_t>(~0ULL)), ~0ULL);
  EXPECT_EQ(from_word<bool>(to_word(true)), true);
  EXPECT_EQ(from_word<char>(to_word('z')), 'z');
}

TEST(Word, SignExtendsNarrowSignedTypes) {
  // Essential for ordered semantic comparisons across widths: a negative
  // int32 must compare as negative in the 64-bit word.
  const word_t w = to_word<std::int32_t>(-7);
  EXPECT_TRUE(eval(Rel::SLT, w, to_word<std::int32_t>(0)));
  EXPECT_TRUE(eval(Rel::SLT, w, to_word<std::int64_t>(3)));
  EXPECT_EQ(from_word<std::int32_t>(w), -7);
}

TEST(Word, ZeroExtendsUnsignedTypes) {
  const word_t w = to_word<std::uint32_t>(0xFFFFFFFFu);
  EXPECT_EQ(w, 0xFFFFFFFFull);
  EXPECT_TRUE(eval(Rel::ULT, w, to_word<std::uint64_t>(1ull << 40)));
}

TEST(Word, RoundTripsFloatingPoint) {
  EXPECT_DOUBLE_EQ(from_word<double>(to_word(3.25)), 3.25);
  EXPECT_FLOAT_EQ(from_word<float>(to_word(1.5f)), 1.5f);
  EXPECT_DOUBLE_EQ(from_word<double>(to_word(-0.0)), -0.0);
}

TEST(Word, RoundTripsPointers) {
  int x = 0;
  EXPECT_EQ(from_word<int*>(to_word(&x)), &x);
  EXPECT_EQ(from_word<int*>(to_word<int*>(nullptr)), nullptr);
}

TEST(Word, EnumsRoundTrip) {
  enum class Color : std::uint8_t { kRed = 1, kBlue = 9 };
  EXPECT_EQ(from_word<Color>(to_word(Color::kBlue)), Color::kBlue);
}

// Increment arithmetic is two's-complement on the raw word: adding the
// encoding of a negative delta must decrement the decoded value.
TEST(Word, TwosComplementDeltaArithmetic) {
  const word_t base = to_word<std::int64_t>(10);
  const word_t delta = to_word<std::int64_t>(-3);
  EXPECT_EQ(from_word<std::int64_t>(base + delta), 7);
}

}  // namespace
}  // namespace semstm
