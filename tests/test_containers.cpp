// Transactional container tests: sequential behaviour against std::
// oracles, structural invariants, and concurrent stress on the simulator.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>

#include "containers/tlru.hpp"
#include "containers/topen_hashtable.hpp"
#include "containers/tqueue.hpp"
#include "containers/trbtree.hpp"
#include "semstm.hpp"
#include "workloads/driver.hpp"

namespace semstm {
namespace {

// Param: (algorithm, container-in-semantic-mode)
using Param = std::tuple<std::string, bool>;

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  return std::get<0>(info.param) +
         (std::get<1>(info.param) ? "_semantic" : "_base");
}

class Containers : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    algo_ = make_algorithm(std::get<0>(GetParam()));
    ctx_ = std::make_unique<ThreadCtx>(algo_->make_tx());
    binder_ = std::make_unique<CtxBinder>(*ctx_);
    semantic_ = std::get<1>(GetParam());
  }

  bool semantic_ = false;
  std::unique_ptr<Algorithm> algo_;
  std::unique_ptr<ThreadCtx> ctx_;
  std::unique_ptr<CtxBinder> binder_;
};

// ---------------------------------------------------------------------------
// Open-addressing hashtable (Algorithm 2)
// ---------------------------------------------------------------------------

TEST_P(Containers, HashtableInsertContainsRemove) {
  TOpenHashTable ht(256, semantic_);
  atomically([&](Tx& tx) {
    EXPECT_FALSE(ht.contains(tx, 5));
    EXPECT_TRUE(ht.insert(tx, 5));
    EXPECT_TRUE(ht.contains(tx, 5));
    EXPECT_FALSE(ht.insert(tx, 5));  // duplicate
    EXPECT_TRUE(ht.remove(tx, 5));
    EXPECT_FALSE(ht.contains(tx, 5));
    EXPECT_FALSE(ht.remove(tx, 5));  // already gone
  });
}

TEST_P(Containers, HashtableMatchesSetOracle) {
  TOpenHashTable ht(1024, semantic_);
  std::set<std::int64_t> oracle;
  Rng rng(123);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t key = rng.between(0, 500);
    const auto action = rng.below(3);
    atomically([&](Tx& tx) {
      switch (action) {
        case 0:
          EXPECT_EQ(ht.insert(tx, key), oracle.insert(key).second);
          break;
        case 1:
          EXPECT_EQ(ht.remove(tx, key), oracle.erase(key) > 0);
          break;
        default:
          EXPECT_EQ(ht.contains(tx, key), oracle.count(key) > 0);
          break;
      }
    });
  }
  EXPECT_EQ(ht.unsafe_size(), oracle.size());
}

TEST_P(Containers, HashtablePerOperatorProbeMatchesOracle) {
  // The ablation's middle configuration: every probe comparison is an
  // independent semantic cmp (no cmp_or clause). Functionally it must be
  // indistinguishable from the other modes.
  TOpenHashTable ht(512, TOpenHashTable::ProbeMode::kPerOperator);
  std::set<std::int64_t> oracle;
  Rng rng(31337);
  for (int i = 0; i < 1200; ++i) {
    const std::int64_t key = rng.between(0, 300);
    atomically([&](Tx& tx) {
      switch (rng.below(3)) {
        case 0: EXPECT_EQ(ht.insert(tx, key), oracle.insert(key).second); break;
        case 1: EXPECT_EQ(ht.remove(tx, key), oracle.erase(key) > 0); break;
        default: EXPECT_EQ(ht.contains(tx, key), oracle.count(key) > 0); break;
      }
    });
  }
  EXPECT_EQ(ht.unsafe_size(), oracle.size());
}

TEST_P(Containers, HashtableReusesTombstones) {
  TOpenHashTable ht(16, semantic_);
  atomically([&](Tx& tx) {
    for (int k = 0; k < 10; ++k) EXPECT_TRUE(ht.insert(tx, k));
    for (int k = 0; k < 10; ++k) EXPECT_TRUE(ht.remove(tx, k));
    for (int k = 10; k < 20; ++k) EXPECT_TRUE(ht.insert(tx, k));
    for (int k = 10; k < 20; ++k) EXPECT_TRUE(ht.contains(tx, k));
  });
  EXPECT_EQ(ht.unsafe_size(), 10u);
}

// ---------------------------------------------------------------------------
// Bounded queue (Algorithm 3)
// ---------------------------------------------------------------------------

TEST_P(Containers, QueueFifoOrder) {
  TQueue q(8, semantic_);
  std::deque<std::int64_t> oracle;
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    if (rng.percent(55)) {
      const std::int64_t v = rng.between(0, 1 << 20);
      const bool ok = atomically([&](Tx& tx) { return q.enqueue(tx, v); });
      if (oracle.size() < 8) {
        EXPECT_TRUE(ok);
        oracle.push_back(v);
      } else {
        EXPECT_FALSE(ok) << "enqueue into a full queue must fail";
      }
    } else {
      const auto got =
          atomically([&](Tx& tx) { return q.dequeue(tx); });
      if (oracle.empty()) {
        EXPECT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, oracle.front());
        oracle.pop_front();
      }
    }
  }
  EXPECT_EQ(static_cast<std::size_t>(q.unsafe_size()), oracle.size());
}

TEST_P(Containers, QueueWrapsAround) {
  TQueue q(4, semantic_);
  for (std::int64_t round = 0; round < 10; ++round) {
    atomically([&](Tx& tx) {
      EXPECT_TRUE(q.enqueue(tx, round * 2));
      EXPECT_TRUE(q.enqueue(tx, round * 2 + 1));
    });
    atomically([&](Tx& tx) {
      EXPECT_EQ(q.dequeue(tx), std::optional<std::int64_t>(round * 2));
      EXPECT_EQ(q.dequeue(tx), std::optional<std::int64_t>(round * 2 + 1));
      EXPECT_TRUE(q.empty(tx));
    });
  }
}

// ---------------------------------------------------------------------------
// Red-black tree map
// ---------------------------------------------------------------------------

TEST_P(Containers, RbTreeMatchesMapOracle) {
  TRbMap tree(8192, semantic_);
  std::map<std::int64_t, std::int64_t> oracle;
  Rng rng(2024);
  for (int i = 0; i < 4000; ++i) {
    const std::int64_t key = rng.between(0, 800);
    const std::int64_t val = rng.between(0, 1 << 30);
    switch (rng.below(4)) {
      case 0:
        atomically([&](Tx& tx) {
          EXPECT_EQ(tree.insert(tx, key, val), oracle.emplace(key, val).second);
        });
        break;
      case 1:
        atomically([&](Tx& tx) {
          EXPECT_EQ(tree.erase(tx, key), oracle.erase(key) > 0);
        });
        break;
      case 2:
        atomically([&](Tx& tx) {
          const bool present = oracle.count(key) > 0;
          EXPECT_EQ(tree.update(tx, key, val), present);
          if (present) oracle[key] = val;
        });
        break;
      default:
        atomically([&](Tx& tx) {
          auto got = tree.find(tx, key);
          auto it = oracle.find(key);
          if (it == oracle.end()) {
            EXPECT_FALSE(got.has_value());
          } else {
            ASSERT_TRUE(got.has_value());
            EXPECT_EQ(*got, it->second);
          }
        });
        break;
    }
  }
  EXPECT_EQ(tree.unsafe_count(), oracle.size());
  EXPECT_GT(tree.unsafe_validate(), 0) << "red-black invariants violated";
}

TEST_P(Containers, RbTreeBalancesSequentialInserts) {
  // Sorted insertion is the worst case for an unbalanced BST; the RB
  // invariants bound the black height to O(log n).
  TRbMap tree(5000, semantic_);
  for (std::int64_t k = 0; k < 2048; ++k) {
    atomically([&](Tx& tx) { EXPECT_TRUE(tree.insert(tx, k, k * 10)); });
  }
  EXPECT_EQ(tree.unsafe_count(), 2048u);
  const int bh = tree.unsafe_validate();
  ASSERT_GT(bh, 0);
  EXPECT_LE(bh, 12);  // 2*log2(2049) bound on black height
  atomically([&](Tx& tx) {
    EXPECT_EQ(tree.find(tx, 1000), std::optional<std::int64_t>(10000));
  });
}

TEST_P(Containers, RbTreeFindSlotPinsRecord) {
  TRbMap tree(64, semantic_);
  atomically([&](Tx& tx) { tree.insert(tx, 7, 100); });
  atomically([&](Tx& tx) {
    TVar<std::int64_t>* slot = tree.find_slot(tx, 7);
    ASSERT_NE(slot, nullptr);
    if (semantic_) {
      EXPECT_TRUE(slot->gt(tx, 0));
      slot->sub(tx, 1);
    } else {
      slot->set(tx, slot->get(tx) - 1);
    }
  });
  atomically([&](Tx& tx) {
    EXPECT_EQ(tree.find(tx, 7), std::optional<std::int64_t>(99));
    EXPECT_EQ(tree.find_slot(tx, 12345), nullptr);
  });
}

// ---------------------------------------------------------------------------
// LRU cache grid
// ---------------------------------------------------------------------------

TEST_P(Containers, LruHitAfterSet) {
  TLruCache cache(8, 4, semantic_);
  atomically([&](Tx& tx) { cache.set(tx, 42, 4200); });
  const auto got = atomically([&](Tx& tx) { return cache.lookup(tx, 42); });
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 4200);
  EXPECT_FALSE(
      atomically([&](Tx& tx) { return cache.lookup(tx, 43); }).has_value());
}

TEST_P(Containers, LruEvictsLeastFrequentlyUsed) {
  TLruCache cache(1, 3, semantic_);  // one line, three buckets
  atomically([&](Tx& tx) {
    cache.set(tx, 1, 10);
    cache.set(tx, 2, 20);
    cache.set(tx, 3, 30);
  });
  // Heat up keys 1 and 3; key 2 stays cold.
  for (int i = 0; i < 5; ++i) {
    atomically([&](Tx& tx) {
      (void)cache.lookup(tx, 1);
      (void)cache.lookup(tx, 3);
    });
  }
  atomically([&](Tx& tx) { cache.set(tx, 9, 90); });  // must evict key 2
  atomically([&](Tx& tx) {
    EXPECT_TRUE(cache.lookup(tx, 1).has_value());
    EXPECT_TRUE(cache.lookup(tx, 3).has_value());
    EXPECT_TRUE(cache.lookup(tx, 9).has_value());
    EXPECT_FALSE(cache.lookup(tx, 2).has_value());
  });
}

TEST_P(Containers, LruUpdateInPlace) {
  TLruCache cache(4, 4, semantic_);
  atomically([&](Tx& tx) { cache.set(tx, 5, 1); });
  atomically([&](Tx& tx) { cache.set(tx, 5, 2); });
  EXPECT_EQ(atomically([&](Tx& tx) { return cache.lookup(tx, 5); }),
            std::optional<std::int64_t>(2));
  EXPECT_EQ(cache.unsafe_occupied(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsByMode, Containers,
    ::testing::Combine(::testing::Values("cgl", "norec", "snorec", "tl2",
                                         "stl2"),
                       ::testing::Bool()),
    param_name);

// ---------------------------------------------------------------------------
// Concurrent container stress (simulator; semantic containers on semantic
// algorithms, which is the paper's pairing).
// ---------------------------------------------------------------------------

class ContainerStress : public ::testing::TestWithParam<std::string> {};

TEST_P(ContainerStress, HashtableConcurrentDistinctInserts) {
  class W final : public Workload {
   public:
    explicit W(const std::string& algo)
        : ht(4096, /*use_semantics=*/algo == "snorec" || algo == "stl2") {}
    void op(unsigned tid, Rng& rng) override {
      const auto key =
          static_cast<std::int64_t>(tid) * 1000000 +
          static_cast<std::int64_t>(rng.below(100000));
      atomically([&](Tx& tx) { (void)ht.insert(tx, key); });
      ++attempted;
    }
    TOpenHashTable ht;
    std::uint64_t attempted = 0;
  };
  W w(GetParam());
  RunConfig cfg;
  cfg.algo = GetParam();
  cfg.mode = ExecMode::kSim;
  cfg.threads = 4;
  cfg.ops_per_thread = 300;
  run_workload(cfg, w);
  // Keys are thread-disjoint; duplicates within a thread are possible, so
  // the size is <= attempts but must be substantial and consistent.
  EXPECT_GT(w.ht.unsafe_size(), 1000u);
  EXPECT_LE(w.ht.unsafe_size(), 1200u);
}

TEST_P(ContainerStress, QueueConservesItems) {
  class W final : public Workload {
   public:
    explicit W(const std::string& algo)
        : q(1024, algo == "snorec" || algo == "stl2") {}
    void op(unsigned tid, Rng&) override {
      if (tid % 2 == 0) {
        const bool ok = atomically([&](Tx& tx) { return q.enqueue(tx, 7); });
        if (ok) ++enqueued;
      } else {
        const auto got = atomically([&](Tx& tx) { return q.dequeue(tx); });
        if (got) ++dequeued;
      }
    }
    TQueue q;
    std::uint64_t enqueued = 0, dequeued = 0;
  };
  W w(GetParam());
  RunConfig cfg;
  cfg.algo = GetParam();
  cfg.mode = ExecMode::kSim;
  cfg.threads = 4;
  cfg.ops_per_thread = 400;
  run_workload(cfg, w);
  EXPECT_EQ(static_cast<std::int64_t>(w.enqueued) -
                static_cast<std::int64_t>(w.dequeued),
            w.q.unsafe_size());
}

TEST_P(ContainerStress, RbTreeConcurrentInsertsKeepInvariants) {
  class W final : public Workload {
   public:
    W() : tree(32768) {}
    void op(unsigned tid, Rng& rng) override {
      const auto key = static_cast<std::int64_t>(rng.below(5000)) * 8 +
                       static_cast<std::int64_t>(tid);
      atomically([&](Tx& tx) { (void)tree.insert(tx, key, key); });
    }
    TRbMap tree;
  };
  W w;
  RunConfig cfg;
  cfg.algo = GetParam();
  cfg.mode = ExecMode::kSim;
  cfg.threads = 4;
  cfg.ops_per_thread = 500;
  run_workload(cfg, w);
  EXPECT_GT(w.tree.unsafe_count(), 1500u);
  EXPECT_GT(w.tree.unsafe_validate(), 0)
      << "red-black invariants violated after concurrent inserts";
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ContainerStress,
                         ::testing::Values("cgl", "norec", "snorec", "tl2",
                                           "stl2"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace semstm
