// Fixed-total-work splitting (PR 3). figure_common's fixed_total_work mode
// used to compute ops/threads with integer division, silently losing the
// remainder — a 100k-op "completion time" sweep ran 99,996 ops at 7
// threads. split_total_ops distributes the remainder so the sum is exact
// at every thread count, and run_workload honours the per-thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "workloads/driver.hpp"

namespace semstm {
namespace {

TEST(SplitTotalOps, EvenSplitGivesEqualShares) {
  const auto per = split_total_ops(100, 4);
  ASSERT_EQ(per.size(), 4u);
  for (const auto p : per) EXPECT_EQ(p, 25u);
}

TEST(SplitTotalOps, RemainderGoesToLeadingThreads) {
  const auto per = split_total_ops(10, 3);
  ASSERT_EQ(per.size(), 3u);
  EXPECT_EQ(per[0], 4u);
  EXPECT_EQ(per[1], 3u);
  EXPECT_EQ(per[2], 3u);
}

TEST(SplitTotalOps, SumIsExactAcrossThreadSweep) {
  // The invariant the completion-time figures rely on: the same total at
  // every point of the sweep, including counts that do not divide evenly.
  const std::uint64_t total = 100000;
  for (unsigned threads : {1u, 2u, 3u, 5u, 6u, 7u, 8u, 12u, 16u, 31u}) {
    const auto per = split_total_ops(total, threads);
    ASSERT_EQ(per.size(), threads);
    const std::uint64_t sum =
        std::accumulate(per.begin(), per.end(), std::uint64_t{0});
    EXPECT_EQ(sum, total) << "threads=" << threads;
    // Fair split: shares differ by at most one op.
    EXPECT_LE(per.front() - per.back(), 1u) << "threads=" << threads;
  }
}

TEST(SplitTotalOpsDeath, RejectsMoreThreadsThanOps) {
  EXPECT_EXIT(split_total_ops(3, 8), ::testing::ExitedWithCode(2),
              "cannot be split over");
}

TEST(SplitTotalOpsDeath, RejectsZeroThreads) {
  EXPECT_EXIT(split_total_ops(100, 0), ::testing::ExitedWithCode(2),
              "cannot be split over");
}

/// Counts op() invocations per thread — the ground truth for what the
/// driver actually executed.
class CountingWorkload final : public Workload {
 public:
  explicit CountingWorkload(unsigned threads) : per_thread_(threads) {
    for (auto& c : per_thread_) c.store(0);
  }

  void op(unsigned tid, Rng& rng) override {
    (void)rng;
    per_thread_[tid].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t total() const {
    std::uint64_t s = 0;
    for (const auto& c : per_thread_) s += c.load();
    return s;
  }

  std::uint64_t at(unsigned tid) const { return per_thread_[tid].load(); }

 private:
  std::vector<std::atomic<std::uint64_t>> per_thread_;
};

TEST(FixedTotalWork, DriverExecutesExactlyTotalOpsAtEveryThreadCount) {
  const std::uint64_t total = 1001;  // prime-ish: nonzero remainder mostly
  for (unsigned threads : {1u, 2u, 3u, 4u, 7u}) {
    CountingWorkload wl(threads);
    RunConfig cfg;
    cfg.algo = "norec";
    cfg.threads = threads;
    cfg.mode = ExecMode::kSim;
    cfg.ops_by_thread = split_total_ops(total, threads);
    run_workload(cfg, wl);
    EXPECT_EQ(wl.total(), total) << "threads=" << threads;
    for (unsigned t = 0; t + 1 < threads; ++t) {
      EXPECT_GE(wl.at(t), wl.at(t + 1)) << "threads=" << threads;
    }
  }
}

TEST(FixedTotalWork, UniformPathStillUsesOpsPerThread) {
  CountingWorkload wl(3);
  RunConfig cfg;
  cfg.algo = "norec";
  cfg.threads = 3;
  cfg.mode = ExecMode::kSim;
  cfg.ops_per_thread = 50;  // ops_by_thread left empty: uniform path
  run_workload(cfg, wl);
  EXPECT_EQ(wl.total(), 150u);
  for (unsigned t = 0; t < 3; ++t) EXPECT_EQ(wl.at(t), 50u);
}

TEST(FixedTotalWorkDeath, MismatchedPerThreadVectorFailsLoudly) {
  CountingWorkload wl(4);
  RunConfig cfg;
  cfg.algo = "norec";
  cfg.threads = 4;
  cfg.mode = ExecMode::kSim;
  cfg.ops_by_thread = {10, 10};  // wrong size for 4 threads
  EXPECT_EXIT(run_workload(cfg, wl), ::testing::ExitedWithCode(2),
              "ops_by_thread");
}

}  // namespace
}  // namespace semstm
