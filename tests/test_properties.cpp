// Property-based tests.
//
// 1. Sequential specification (paper §5): random programs of read / write
//    / cmp / cmp2 / cmp_or / inc operations executed transactionally must
//    agree, operation by operation, with a plain reference interpreter —
//    "every read returns v + sum of deltas since the latest write; every
//    cmp returns the relation over that value".
// 2. Concurrent conservation: randomly composed balanced-transfer
//    transactions preserve a global sum under every algorithm and
//    simulated contention.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "semstm.hpp"
#include "util/rng.hpp"
#include "workloads/driver.hpp"

namespace semstm {
namespace {

constexpr Rel kRels[] = {Rel::EQ,  Rel::NEQ, Rel::SLT, Rel::SLE,
                         Rel::SGT, Rel::SGE};

using SeqParam = std::tuple<std::string, int>;  // (algorithm, seed)

class SequentialSpec : public ::testing::TestWithParam<SeqParam> {};

TEST_P(SequentialSpec, RandomProgramMatchesReference) {
  const auto& [algo_name, seed] = GetParam();
  auto algo = make_algorithm(algo_name);
  ThreadCtx ctx(algo->make_tx());
  CtxBinder bind(ctx);

  constexpr std::size_t kVars = 6;
  std::vector<std::unique_ptr<TVar<std::int64_t>>> vars;
  std::int64_t ref[kVars];
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 17);
  for (std::size_t i = 0; i < kVars; ++i) {
    const std::int64_t init = rng.between(-50, 50);
    vars.push_back(std::make_unique<TVar<std::int64_t>>(init));
    ref[i] = init;
  }

  // A few transactions of random operations each; the reference model is
  // updated only when the transaction commits (it always does here — one
  // thread — but user aborts via exceptions are also exercised).
  for (int txn = 0; txn < 60; ++txn) {
    std::int64_t shadow[kVars];
    for (std::size_t i = 0; i < kVars; ++i) shadow[i] = ref[i];
    const bool user_abort = rng.percent(10);
    struct UserAbort {};
    try {
      atomically([&](Tx& tx) {
        const unsigned ops = 1 + static_cast<unsigned>(rng.below(12));
        for (unsigned o = 0; o < ops; ++o) {
          const auto v = static_cast<std::size_t>(rng.below(kVars));
          const auto w = static_cast<std::size_t>(rng.below(kVars));
          const std::int64_t operand = rng.between(-60, 60);
          const Rel rel = kRels[rng.below(std::size(kRels))];
          switch (rng.below(6)) {
            case 0:
              ASSERT_EQ(vars[v]->get(tx), shadow[v]) << "read mismatch";
              break;
            case 1:
              vars[v]->set(tx, operand);
              shadow[v] = operand;
              break;
            case 2:
              ASSERT_EQ(tx.cmp(vars[v]->word(), rel, to_word(operand)),
                        eval(rel, to_word(shadow[v]), to_word(operand)))
                  << "cmp mismatch";
              break;
            case 3:
              ASSERT_EQ(tx.cmp2(vars[v]->word(), rel, vars[w]->word()),
                        eval(rel, to_word(shadow[v]), to_word(shadow[w])))
                  << "cmp2 mismatch";
              break;
            case 4: {
              const CmpTerm terms[2] = {
                  term<std::int64_t>(*vars[v], rel, operand),
                  term<std::int64_t>(*vars[w], Rel::SGT, operand / 2),
              };
              const bool expect =
                  eval(rel, to_word(shadow[v]), to_word(operand)) ||
                  eval(Rel::SGT, to_word(shadow[w]), to_word(operand / 2));
              ASSERT_EQ(tx.cmp_or(terms, 2), expect) << "cmp_or mismatch";
              break;
            }
            default:
              vars[v]->add(tx, operand);
              shadow[v] += operand;
              break;
          }
        }
        if (user_abort) throw UserAbort{};
      });
      for (std::size_t i = 0; i < kVars; ++i) ref[i] = shadow[i];
    } catch (const UserAbort&) {
      // Rolled back: reference state unchanged.
    }
    for (std::size_t i = 0; i < kVars; ++i) {
      ASSERT_EQ(vars[i]->unsafe_get(), ref[i]) << "post-tx state, var " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsBySeed, SequentialSpec,
    ::testing::Combine(::testing::Values("cgl", "norec", "snorec", "tl2",
                                         "stl2"),
                       ::testing::Range(0, 8)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------

using ConsParam = std::tuple<std::string, int>;

class ConcurrentConservation : public ::testing::TestWithParam<ConsParam> {};

constexpr std::size_t kVars = 8;
constexpr std::int64_t kInit = 500;

class TransferWorkload final : public Workload {
 public:
  TransferWorkload() {
      for (auto& v : vars) v = std::make_unique<TVar<std::int64_t>>(kInit);
    }
    void op(unsigned, Rng& rng) override {
      const auto a = static_cast<std::size_t>(rng.below(kVars));
      const auto b = static_cast<std::size_t>(rng.below(kVars));
      if (a == b) return;
      const std::int64_t d = rng.between(1, 20);
      const unsigned style = static_cast<unsigned>(rng.below(3));
      atomically([&](Tx& tx) {
        switch (style) {
          case 0:  // semantic guarded transfer
            if (vars[a]->gte(tx, d)) {
              vars[a]->sub(tx, d);
              vars[b]->add(tx, d);
            }
            break;
          case 1:  // plain read/write transfer
            if (vars[a]->get(tx) >= d) {
              vars[a]->set(tx, vars[a]->get(tx) - d);
              vars[b]->set(tx, vars[b]->get(tx) + d);
            }
            break;
          default: {  // clause-guarded: move only if either side is rich
            const CmpTerm terms[2] = {
                term<std::int64_t>(*vars[a], Rel::SGT, kInit / 2),
                term<std::int64_t>(*vars[b], Rel::SGT, kInit / 2),
            };
            if (tx.cmp_or(terms, 2) && vars[a]->gte(tx, d)) {
              vars[a]->sub(tx, d);
              vars[b]->add(tx, d);
            }
            break;
          }
        }
      });
    }
    void verify() override {
      std::int64_t total = 0;
      for (const auto& v : vars) {
        ASSERT_GE(v->unsafe_get(), 0);
        total += v->unsafe_get();
      }
      ASSERT_EQ(total, static_cast<std::int64_t>(kVars) * kInit);
    }
  std::unique_ptr<TVar<std::int64_t>> vars[kVars];
};

TEST_P(ConcurrentConservation, BalancedTransfersPreserveTotal) {
  const auto& [algo_name, seed] = GetParam();
  TransferWorkload w;
  RunConfig cfg;
  cfg.algo = algo_name;
  cfg.mode = ExecMode::kSim;
  cfg.threads = 6;
  cfg.ops_per_thread = 250;
  cfg.seed = static_cast<std::uint64_t>(seed) * 104729 + 31;
  run_workload(cfg, w);
  w.verify();
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsBySeed, ConcurrentConservation,
    ::testing::Combine(::testing::Values("cgl", "norec", "snorec", "tl2",
                                         "stl2"),
                       ::testing::Range(0, 6)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace semstm
