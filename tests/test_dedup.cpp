// Read-set deduplication through the full algorithm stack (PR 3).
//
// NOrec-family transactions dedup identical value snapshots in the
// ReadSet's trailing window; TL2-family transactions dedup repeated orec
// appends through an epoch-stamped direct-mapped cache. These tests pin
// down (a) the accounting — `readset_dups` counts skipped appends,
// `readset_adds` actual growth — and (b) that dedup never changes what a
// transaction observes or commits.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "semstm.hpp"

namespace semstm {
namespace {

class DedupStats : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    algo_ = make_algorithm(GetParam());
    ctx_ = std::make_unique<ThreadCtx>(algo_->make_tx());
    binder_ = std::make_unique<CtxBinder>(*ctx_);
  }

  bool has_read_set() const { return GetParam() != "cgl"; }

  TxStats& stats() { return ctx_->tx->stats; }

  std::unique_ptr<Algorithm> algo_;
  std::unique_ptr<ThreadCtx> ctx_;
  std::unique_ptr<CtxBinder> binder_;
};

TEST_P(DedupStats, RepeatedReadsOfOneLocationCollapse) {
  constexpr int kReads = 100;
  TVar<long> x(5);
  TVar<long> acc(0);
  const long sum = atomically([&](Tx& tx) {
    long s = 0;
    for (int i = 0; i < kReads; ++i) s += x.get(tx);
    acc.set(tx, s);  // non-empty write-set: commit must validate reads
    return s;
  });
  EXPECT_EQ(sum, 5L * kReads);
  EXPECT_EQ(acc.unsafe_get(), 5L * kReads);
  if (!has_read_set()) return;  // cgl tracks nothing
  // One tracked entry, kReads-1 skipped duplicates.
  EXPECT_GT(stats().readset_dups, 0u);
  EXPECT_LT(stats().readset_adds, static_cast<std::uint64_t>(kReads));
  EXPECT_EQ(stats().readset_adds + stats().readset_dups,
            static_cast<std::uint64_t>(kReads));
}

TEST_P(DedupStats, DistinctReadsAreAllTracked) {
  constexpr std::size_t kVars = 64;
  std::vector<TVar<long>> vars(kVars);
  for (std::size_t i = 0; i < kVars; ++i) {
    vars[i].unsafe_set(static_cast<long>(i));
  }
  TVar<long> acc(0);
  atomically([&](Tx& tx) {
    long s = 0;
    for (auto& v : vars) s += v.get(tx);
    acc.set(tx, s);
  });
  EXPECT_EQ(acc.unsafe_get(), static_cast<long>(kVars * (kVars - 1) / 2));
  if (!has_read_set()) return;
  // A single pass over distinct locations must not under-track: every
  // location needs an entry for commit-time validation. (TL2's orec table
  // may alias several addresses to one orec — adds + dups still accounts
  // for every read, and dups stay a small fraction.)
  EXPECT_EQ(stats().readset_adds + stats().readset_dups, kVars);
  EXPECT_GE(stats().readset_adds, kVars / 2);
}

TEST_P(DedupStats, InterleavedRereadsStillCommitCorrectValues) {
  // a, b, a, b, ... re-reads interleaved with writes derived from them:
  // dedup must never make a read observe a stale or wrong value.
  TVar<long> a(1);
  TVar<long> b(10);
  TVar<long> out(0);
  atomically([&](Tx& tx) {
    long s = 0;
    for (int i = 0; i < 8; ++i) s += a.get(tx) + b.get(tx);
    // Two back-to-back reads of one location: the second is a dup under
    // both schemes no matter how a and b alias in TL2's direct-mapped
    // cache (their slots are address-dependent, so the interleaved loop
    // alone can thrash to zero dups under ASLR).
    s += a.get(tx) - a.get(tx);
    out.set(tx, s);
  });
  EXPECT_EQ(out.unsafe_get(), 8 * 11L);
  if (!has_read_set()) return;
  EXPECT_GT(stats().readset_dups, 0u);
}

TEST_P(DedupStats, ReadAfterWriteIsNotCountedAsTrackedRead) {
  // RAW hits the write-set fast path; it must not inflate either counter.
  TVar<long> x(0);
  atomically([&](Tx& tx) {
    x.set(tx, 3);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(x.get(tx), 3);
  });
  if (!has_read_set()) return;
  EXPECT_EQ(stats().readset_adds + stats().readset_dups, 0u);
}

TEST_P(DedupStats, ValidationExaminesOnlyTrackedEntries) {
  // validate_entries counts per-entry validation work; with dedup it is
  // bounded by adds per pass, never by raw read count.
  constexpr int kReads = 50;
  TVar<long> x(2);
  TVar<long> y(0);
  atomically([&](Tx& tx) {
    long s = 0;
    for (int i = 0; i < kReads; ++i) s += x.get(tx);
    y.set(tx, s);
  });
  if (!has_read_set()) return;
  if (stats().validations > 0) {
    EXPECT_LE(stats().validate_entries,
              stats().validations * stats().readset_adds);
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, DedupStats,
                         ::testing::Values("cgl", "norec", "snorec", "tl2",
                                           "stl2"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace semstm
